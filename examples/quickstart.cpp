// Quickstart: FPISA floating-point addition — as a software library call,
// running on the simulated PISA switch pipeline, and through the unified
// collective API that every aggregation fabric in this repo sits behind.
#include <cstdio>
#include <vector>

#include "collective/communicator.h"
#include "core/accumulator.h"
#include "pisa/fpisa_program.h"

int main() {
  using namespace fpisa;

  // 1) Software reference: accumulate floats in the decomposed
  //    (exponent register, signed mantissa register) representation.
  core::FpisaAccumulator acc;  // full FPISA, FP32, 32-bit register
  acc.add(3.0f);
  acc.add(1.0f);
  std::printf("software FPISA:   3.0 + 1.0 = %g\n", acc.read());
  std::printf("  register state: exponent=%d mantissa=0x%llx (denormalized)\n",
              acc.state().exp,
              static_cast<unsigned long long>(acc.state().man));

  // 2) The same computation on the simulated switch: packets carrying FP32
  //    values traverse parser -> 5 ingress MAUs -> 4 egress MAUs.
  pisa::SwitchConfig tofino;  // today's hardware: FPISA-A only
  pisa::FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  pisa::FpisaSwitch sw(tofino, opts);

  const std::uint32_t three[] = {core::fp32_bits(3.0f)};
  const std::uint32_t one[] = {core::fp32_bits(1.0f)};
  sw.add(/*slot=*/0, /*worker=*/0, three);
  const pisa::FpisaResult r = sw.add(0, 1, one);
  std::printf("switch FPISA-A:   3.0 + 1.0 = %g (bitmap=0x%x, count=%u)\n",
              core::fp32_value(r.values[0]), r.bitmap, r.count);

  // 3) FPISA-A's approximation: values differing by more than 2^7 trigger
  //    the overwrite path (the error the full-FPISA hardware extension
  //    eliminates).
  core::AccumulatorConfig approx;
  approx.variant = core::Variant::kApproximate;
  core::FpisaAccumulator a(approx);
  a.add(1.0f);
  a.add(512.0f);  // ratio 2^9 > headroom 2^7: 1.0 is overwritten
  std::printf("FPISA-A overwrite: 1.0 + 512.0 = %g (overwrites=%llu)\n",
              a.read(),
              static_cast<unsigned long long>(a.counters().overwrites));

  // 4) The collective API: frameworks call allreduce on a Communicator and
  //    never learn which fabric runs it — host aggregator, one switch, a
  //    sharded rack service, or a ToR->spine tree, all behind one factory.
  //    Gradients travel as zero-copy views; the result lands in `out`.
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kSwitch;  // the pipeline from (2)
  const auto comm = collective::make_communicator(copts);
  const std::vector<std::vector<float>> workers = {{3.0f, 10.0f},
                                                   {1.0f, 20.0f}};
  std::vector<float> out(2);
  const collective::ReduceStats stats =
      comm->allreduce(collective::WorkerViews(workers), out);
  std::printf("collective (%s): allreduce -> {%g, %g} in %llu packets\n",
              std::string(comm->name()).c_str(), out[0], out[1],
              static_cast<unsigned long long>(stats.network.packets_sent));
  return 0;
}
