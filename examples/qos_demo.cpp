// Admission control & QoS on the shared aggregation service: three tenants
// — a training job (kTraining), a query engine merging partial aggregates
// (kQuery), and a streaming-telemetry EWMA pipeline (kTelemetry) — share
// ONE 4-shard cluster with a single job-runner thread, so every job rides
// the same queue.
//
// The demo runs the identical mixed workload twice: first with QoS off
// (plain FIFO — the chatty telemetry tenant's backlog sits in front of
// everyone), then with QoS on (weighted-deficit scheduling by priority
// class, plus a token-bucket rate limit and a bounded admission queue on
// the telemetry tenant). A before/after table shows per-class p50/p99
// latency and the per-tenant SLO books, including the distinct
// jobs_rejected entry that typed admission backpressure feeds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <vector>

#include "collective/communicator.h"
#include "qos/qos.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(pos + 0.5)];
}

struct TenantOutcome {
  std::vector<double> latency_ms;
  int rejected = 0;
};

/// One mixed-workload round: telemetry floods a backlog, then training and
/// query jobs arrive and must get through it. Returns per-tenant latency
/// samples plus rejection counts.
std::array<TenantOutcome, 3> run_mix(fpisa::collective::Communicator& comm) {
  using namespace fpisa;
  using Clock = std::chrono::steady_clock;
  collective::TenantHandle training = comm.tenant("training");
  collective::TenantHandle query = comm.tenant("query");
  collective::TenantHandle telemetry = comm.tenant("telemetry");

  const auto grads = make_workers(4, 16384, 500);
  const auto partials = make_workers(2, 8192, 501);
  const auto samples = make_workers(2, 4096, 502);
  std::vector<float> grads_out(16384), partials_out(8192),
      samples_out(4096);

  std::array<TenantOutcome, 3> out;  // [0]=training [1]=query [2]=telemetry
  std::deque<collective::JobHandle> backlog;
  const auto flood = [&] {
    // Keep ~16 telemetry jobs queued; a bounded admission queue (QoS on)
    // pushes back with a typed error instead of letting this grow.
    while (backlog.size() < 16) {
      try {
        const auto t0 = Clock::now();
        backlog.push_back(telemetry.submit(samples, samples_out));
        (void)t0;
      } catch (const qos::AdmissionRejectedError&) {
        ++out[2].rejected;
        break;
      }
    }
  };
  // Foreground jobs go through submit() so they ride the shared runner
  // queue — the resource QoS arbitrates — rather than the inline path.
  const auto timed = [&](collective::TenantHandle& h,
                         const std::vector<std::vector<float>>& w,
                         std::vector<float>& dst, TenantOutcome& o) {
    const auto t0 = Clock::now();
    h.submit(w, dst).wait();
    o.latency_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count());
  };

  for (int round = 0; round < 12; ++round) {
    flood();
    timed(training, grads, grads_out, out[0]);
    timed(query, partials, partials_out, out[1]);
    // The telemetry tenant also takes its own foreground sample.
    const auto t0 = Clock::now();
    try {
      telemetry.submit(samples, samples_out).wait();
      out[2].latency_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
    } catch (const qos::AdmissionRejectedError&) {
      ++out[2].rejected;
    }
  }
  while (!backlog.empty()) {
    backlog.front().wait();
    backlog.pop_front();
  }
  return out;
}

fpisa::collective::CommunicatorOptions mix_options(bool qos_on) {
  using namespace fpisa;
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kCluster;
  copts.cluster.num_shards = 4;
  copts.cluster.slots_per_shard = 64;
  copts.cluster.slots_per_job = 16;
  copts.cluster.loss_rate = 0.02;
  copts.cluster.job_runner_threads = 1;  // one shared queue: QoS's arena
  if (qos_on) {
    copts.qos.enabled = true;
    qos::TenantQosConfig training;
    training.priority = qos::Priority::kTraining;
    qos::TenantQosConfig query;
    query.priority = qos::Priority::kQuery;
    qos::TenantQosConfig telemetry;
    telemetry.priority = qos::Priority::kTelemetry;
    telemetry.rate_jobs_per_s = 600.0;  // token bucket: cap the firehose
    telemetry.burst_jobs = 8;
    telemetry.max_queued_jobs = 8;  // bounded queue -> typed backpressure
    telemetry.policy = qos::AdmissionPolicy::kReject;
    copts.qos.tenants["training"] = training;
    copts.qos.tenants["query"] = query;
    copts.qos.tenants["telemetry"] = telemetry;
  }
  return copts;
}

}  // namespace

int main() {
  using namespace fpisa;
  std::printf("=== admission control & QoS: 3 tenants, 4 shards, one "
              "runner ===\n\n");

  const auto comm_off = collective::make_communicator(mix_options(false));
  const auto outcomes_off = run_mix(*comm_off);
  const auto comm_on = collective::make_communicator(mix_options(true));
  const auto outcomes_on = run_mix(*comm_on);

  const char* tenants[] = {"training", "query", "telemetry"};
  const char* classes[] = {"kTraining", "kQuery", "kTelemetry"};
  util::Table t({"Tenant", "Class", "p50 off (ms)", "p99 off (ms)",
                 "p50 on (ms)", "p99 on (ms)", "p99 change"});
  for (int i = 0; i < 3; ++i) {
    const double off99 = percentile(outcomes_off[i].latency_ms, 0.99);
    const double on99 = percentile(outcomes_on[i].latency_ms, 0.99);
    t.add_row({tenants[i], classes[i],
               util::Table::num(percentile(outcomes_off[i].latency_ms, 0.50),
                                2),
               util::Table::num(off99, 2),
               util::Table::num(percentile(outcomes_on[i].latency_ms, 0.50),
                                2),
               util::Table::num(on99, 2),
               util::Table::num(100.0 * (on99 - off99) / off99, 0) + "%"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("training and query jobs overtake the telemetry backlog under "
              "QoS; telemetry pays for its own firehose (rate limit + "
              "bounded queue, %d submissions rejected with typed "
              "backpressure).\n\n",
              outcomes_on[2].rejected);

  // The per-tenant SLO books through the uniform Communicator surface:
  // rejected admissions land in their own jobs_rejected entry — never in
  // jobs_failed, which stays reserved for jobs that ran and blew up.
  util::Table s({"Tenant", "Completed", "Failed", "Rejected", "p50 (ms)",
                 "p99 (ms)"});
  for (const char* name : tenants) {
    const collective::TenantSlo slo = comm_on->tenant_slo(name);
    s.add_row({name, std::to_string(slo.jobs_completed),
               std::to_string(slo.jobs_failed),
               std::to_string(slo.jobs_rejected),
               util::Table::num(slo.p50_wall_s * 1e3, 2),
               util::Table::num(slo.p99_wall_s * 1e3, 2)});
  }
  std::printf("per-tenant SLO books (QoS on):\n%s\n", s.render().c_str());

  const qos::QosOptions* qopts = comm_on->qos_options();
  std::printf("admission plane: enabled=%s, class weights "
              "training:query:telemetry = %u:%u:%u\n",
              qopts && qopts->enabled ? "yes" : "no",
              qopts ? qopts->class_weights[0] : 0,
              qopts ? qopts->class_weights[1] : 0,
              qopts ? qopts->class_weights[2] : 0);
  return 0;
}
