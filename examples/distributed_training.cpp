// Distributed ML training with in-network gradient aggregation (paper §5):
// 8 data-parallel workers train an MLP; every aggregation strategy is a
// collective::Communicator handed to the same trainer — the exact host
// reference, SwitchML-quantized, and FPISA-A, swapped without the trainer
// knowing which fabric runs its allreduce.
#include <cstdio>

#include "collective/communicator.h"
#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "switchml/aggregator.h"

int main() {
  using namespace fpisa;

  const ml::Dataset ds = ml::make_blobs(/*classes=*/4, /*dim=*/16,
                                        /*train=*/1024, /*test=*/256,
                                        /*seed=*/7);

  auto train = [&](collective::Communicator& comm) {
    ml::Network net = ml::make_mlp(16, 24, 4, /*seed=*/11);
    ml::DataParallelTrainer trainer(net, ds, comm, {});
    for (int epoch = 0; epoch < 10; ++epoch) trainer.train_epoch();
    return trainer.evaluate();
  };

  // The communicators wrap caller-owned aggregators so their protocol and
  // error counters stay readable after training.
  switchml::ExactAggregator exact;
  switchml::SwitchMlAggregator swml;
  core::AccumulatorConfig cfg;
  cfg.variant = core::Variant::kApproximate;
  switchml::FpisaAggregator fpisa(cfg);
  collective::HostCommunicator exact_comm(exact);
  collective::HostCommunicator swml_comm(swml);
  collective::HostCommunicator fpisa_comm(fpisa);

  std::printf("8 workers x 10 epochs, identical init/data order:\n");
  std::printf("  exact aggregation      -> accuracy %.3f\n",
              train(exact_comm));
  const float swml_acc = train(swml_comm);  // before reading its RTT counter
  std::printf("  SwitchML (int32+scale) -> accuracy %.3f (%llu extra RTTs)\n",
              swml_acc,
              static_cast<unsigned long long>(swml.extra_round_trips()));
  std::printf("  FPISA-A (in-switch FP) -> accuracy %.3f\n",
              train(fpisa_comm));
  const auto& c = fpisa.counters();
  std::printf(
      "  FPISA-A events: %llu adds, %llu rounded, %llu overwrites, "
      "%llu left-shift overflows\n",
      static_cast<unsigned long long>(c.adds),
      static_cast<unsigned long long>(c.rounded_adds),
      static_cast<unsigned long long>(c.overwrites),
      static_cast<unsigned long long>(c.lshift_overflows));
  return 0;
}
