// Multi-tenant rack-scale aggregation: three tenants submit reduce jobs
// concurrently to one AggregationService backed by four FpisaSwitch shards
// (one lossy tenant exercises recovery), then a two-level ToR->spine tree
// reduces across sixteen hosts. Demonstrates the src/cluster/ service API.
#include <cmath>
#include <cstdio>

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Gradient-like values with bounded magnitude spread (the paper's Fig 7
/// premise: most element-wise max/min ratios stay under 2^7 — exactly the
/// regime where FPISA-A's limited alignment headroom is safe).
std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) {
      v = static_cast<float>((rng.next_u64() & 1 ? 1.0 : -1.0) *
                             rng.uniform(0.01, 0.08));
    }
  }
  return out;
}

double max_abs_error(const std::vector<float>& got,
                     const std::vector<std::vector<float>>& workers) {
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    double ref = 0.0;
    for (const auto& w : workers) ref += static_cast<double>(w[i]);
    worst = std::max(worst, std::fabs(static_cast<double>(got[i]) - ref));
  }
  return worst;
}

}  // namespace

int main() {
  using namespace fpisa;
  using namespace fpisa::cluster;

  std::printf("=== multi-tenant aggregation service (4 switch shards) ===\n\n");
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  opts.loss_rate = 0.05;  // every tenant rides a mildly lossy fabric
  AggregationService service(opts);

  const auto grads_a = make_workers(8, 500, 300);
  const auto grads_b = make_workers(4, 800, 301);
  const auto grads_c = make_workers(2, 1200, 302);
  auto fa = service.submit({"resnet-job", grads_a});
  auto fb = service.submit({"bert-job", grads_b});
  auto fc = service.submit({"telemetry", grads_c});
  const JobReport ra = fa.get();
  const JobReport rb = fb.get();
  const JobReport rc = fc.get();

  util::Table t({"Tenant", "Workers", "Values", "Packets", "Lost", "Retrans",
                 "Dups absorbed", "Max abs error"});
  const struct {
    const JobReport* r;
    const std::vector<std::vector<float>>* w;
  } rows[] = {{&ra, &grads_a}, {&rb, &grads_b}, {&rc, &grads_c}};
  for (const auto& row : rows) {
    t.add_row({row.r->tenant, std::to_string(row.w->size()),
               std::to_string(row.r->result.size()),
               std::to_string(row.r->stats.packets_sent),
               std::to_string(row.r->stats.packets_lost),
               std::to_string(row.r->stats.retransmissions),
               std::to_string(row.r->stats.duplicates_absorbed),
               util::Table::num(max_abs_error(row.r->result, *row.w), 8)});
  }
  std::printf("%s\n", t.render().c_str());

  util::Table s({"Shard", "Packets", "Lost", "Slot reuses"});
  for (int i = 0; i < service.num_shards(); ++i) {
    const auto st = service.shard_stats(i);
    s.add_row({std::to_string(i), std::to_string(st.packets_sent),
               std::to_string(st.packets_lost),
               std::to_string(st.slot_reuses)});
  }
  std::printf("%s\n", s.render().c_str());
  std::printf("jobs completed: %llu (tenants never share aggregation slots; "
              "chunk routing policy: %s)\n\n",
              static_cast<unsigned long long>(service.jobs_completed()),
              routing_policy_name(service.options().routing));

  std::printf("=== two-level ToR -> spine tree (4 racks x 4 hosts) ===\n\n");
  HierarchyOptions hopts;
  hopts.leaves = 4;
  hopts.workers_per_leaf = 4;
  hopts.slots = 32;
  hopts.lanes = 2;
  HierarchicalAggregator tree(hopts);
  const auto rack_grads = make_workers(tree.total_workers(), 2000, 303);
  const auto reduced = tree.reduce(rack_grads);
  const HierarchyTiming flat = flat_baseline_timing(hopts, reduced.size());
  std::printf("reduced %zu values across %d hosts: max abs error %.2e\n",
              reduced.size(), tree.total_workers(),
              max_abs_error(reduced, rack_grads));
  std::printf("tree:  done in %.3f ms (%llu packets, %.1f KB on the wire)\n",
              tree.timing().done_s * 1e3,
              static_cast<unsigned long long>(tree.timing().packets),
              static_cast<double>(tree.timing().wire_bytes) / 1024.0);
  std::printf("flat:  done in %.3f ms (%llu packets) but needs %d switch "
              "ports at the root instead of %d\n",
              flat.done_s * 1e3,
              static_cast<unsigned long long>(flat.packets),
              tree.total_workers(), hopts.leaves);
  return 0;
}
