// Multi-tenant rack-scale aggregation through the unified collective API:
// three tenants hold persistent TenantHandles on ONE ClusterCommunicator
// (four FpisaSwitch shards, mildly lossy fabric) and submit reduce jobs
// concurrently — gradients travel as zero-copy views from submission to
// result, and the service's bounded job-runner pool executes the burst.
// The same interface then drives a two-level ToR->spine TreeCommunicator
// across sixteen hosts.
#include <cmath>
#include <cstdio>

#include "collective/communicator.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Gradient-like values with bounded magnitude spread (the paper's Fig 7
/// premise: most element-wise max/min ratios stay under 2^7 — exactly the
/// regime where FPISA-A's limited alignment headroom is safe).
std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) {
      v = static_cast<float>((rng.next_u64() & 1 ? 1.0 : -1.0) *
                             rng.uniform(0.01, 0.08));
    }
  }
  return out;
}

double max_abs_error(const std::vector<float>& got,
                     const std::vector<std::vector<float>>& workers) {
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    double ref = 0.0;
    for (const auto& w : workers) ref += static_cast<double>(w[i]);
    worst = std::max(worst, std::fabs(static_cast<double>(got[i]) - ref));
  }
  return worst;
}

}  // namespace

int main() {
  using namespace fpisa;
  using namespace fpisa::collective;

  std::printf("=== multi-tenant aggregation service (4 switch shards) ===\n\n");
  cluster::ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  opts.loss_rate = 0.05;  // every tenant rides a mildly lossy fabric
  ClusterCommunicator comm(opts);

  // Persistent per-tenant handles: one per training job, held across
  // submissions; gradients stay in the tenants' own buffers (views only).
  TenantHandle resnet = comm.tenant("resnet-job");
  TenantHandle bert = comm.tenant("bert-job");
  TenantHandle telemetry = comm.tenant("telemetry");

  const auto grads_a = make_workers(8, 500, 300);
  const auto grads_b = make_workers(4, 800, 301);
  const auto grads_c = make_workers(2, 1200, 302);
  std::vector<float> out_a(500), out_b(800), out_c(1200);
  JobHandle ha = resnet.submit(WorkerViews(grads_a), out_a);
  JobHandle hb = bert.submit(WorkerViews(grads_b), out_b);
  JobHandle hc = telemetry.submit(WorkerViews(grads_c), out_c);
  const ReduceStats ra = ha.wait();
  const ReduceStats rb = hb.wait();
  const ReduceStats rc = hc.wait();

  util::Table t({"Tenant", "Workers", "Values", "Packets", "Lost", "Retrans",
                 "Dups absorbed", "Max abs error"});
  const struct {
    const TenantHandle* tenant;
    const ReduceStats* r;
    const std::vector<float>* out;
    const std::vector<std::vector<float>>* w;
  } rows[] = {{&resnet, &ra, &out_a, &grads_a},
              {&bert, &rb, &out_b, &grads_b},
              {&telemetry, &rc, &out_c, &grads_c}};
  for (const auto& row : rows) {
    t.add_row({row.tenant->name(), std::to_string(row.w->size()),
               std::to_string(row.out->size()),
               std::to_string(row.r->network.packets_sent),
               std::to_string(row.r->network.packets_lost),
               std::to_string(row.r->network.retransmissions),
               std::to_string(row.r->network.duplicates_absorbed),
               util::Table::num(max_abs_error(*row.out, *row.w), 8)});
  }
  std::printf("%s\n", t.render().c_str());

  cluster::AggregationService& service = comm.service();
  util::Table s({"Shard", "Packets", "Lost", "Slot reuses"});
  for (int i = 0; i < service.num_shards(); ++i) {
    const auto st = service.shard_stats(i);
    s.add_row({std::to_string(i), std::to_string(st.packets_sent),
               std::to_string(st.packets_lost),
               std::to_string(st.slot_reuses)});
  }
  std::printf("%s\n", s.render().c_str());
  std::printf("jobs completed: %llu on %d bounded job-runner threads "
              "(peak concurrency %llu; tenants never share aggregation "
              "slots; chunk routing policy: %s)\n\n",
              static_cast<unsigned long long>(service.jobs_completed()),
              service.job_runner_threads(),
              static_cast<unsigned long long>(service.peak_concurrent_jobs()),
              cluster::routing_policy_name(service.options().routing));

  std::printf("=== two-level ToR -> spine tree (4 racks x 4 hosts) ===\n\n");
  cluster::HierarchyOptions hopts;
  hopts.leaves = 4;
  hopts.workers_per_leaf = 4;
  hopts.slots = 32;
  hopts.lanes = 2;
  TreeCommunicator tree_comm(hopts);
  const auto rack_grads =
      make_workers(tree_comm.tree().total_workers(), 2000, 303);
  std::vector<float> reduced(2000);
  // Same interface as the service above — only the backend changed.
  (void)tree_comm.allreduce(WorkerViews(rack_grads), reduced);
  const cluster::HierarchyTiming flat =
      cluster::flat_baseline_timing(hopts, reduced.size());
  const cluster::HierarchyTiming& timing = tree_comm.tree().timing();
  std::printf("reduced %zu values across %d hosts: max abs error %.2e\n",
              reduced.size(), tree_comm.tree().total_workers(),
              max_abs_error(reduced, rack_grads));
  std::printf("tree:  done in %.3f ms (%llu packets, %.1f KB on the wire)\n",
              timing.done_s * 1e3,
              static_cast<unsigned long long>(timing.packets),
              static_cast<double>(timing.wire_bytes) / 1024.0);
  std::printf("flat:  done in %.3f ms (%llu packets) but needs %d switch "
              "ports at the root instead of %d\n",
              flat.done_s * 1e3,
              static_cast<unsigned long long>(flat.packets),
              tree_comm.tree().total_workers(), hopts.leaves);
  return 0;
}
