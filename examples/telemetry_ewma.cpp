// Beyond the paper's two case studies: floating-point telemetry in the
// switch (the §7 "resource allocation" direction). An EWMA of per-port
// utilization normally needs FP multiply-by-alpha; with alpha = 2^-k the
// multiply is an exponent decrement, so the whole filter runs on FPISA
// addition plus the Appendix-A multiply building blocks.
#include <cmath>
#include <cstdio>
#include <vector>

#include "collective/communicator.h"
#include "core/accumulator.h"
#include "core/advanced_ops.h"
#include "util/rng.h"

int main() {
  using namespace fpisa;

  // EWMA with alpha = 1/8: ewma += (sample - ewma) >> 3, done in FP via
  // FPISA add (signed) and exponent-decrement "multiplication".
  constexpr int kShift = 3;  // alpha = 2^-3
  core::FpisaAccumulator ewma;  // holds the running average
  util::Rng rng(42);

  double reference = 0.0;
  for (int t = 0; t < 2000; ++t) {
    // Synthetic port utilization in [0, 100] Gbps with a step change.
    const float sample =
        static_cast<float>((t < 1000 ? 20.0 : 80.0) + rng.normal(0.0, 3.0));

    // delta = (sample - ewma) * 2^-kShift, via exponent arithmetic only.
    const float current = ewma.read();
    const float delta = (sample - current) / (1 << kShift);
    ewma.add(delta);

    reference += (static_cast<double>(sample) - reference) / (1 << kShift);
    if (t % 400 == 399) {
      std::printf("t=%4d  fpisa-ewma=%7.3f  double-ewma=%7.3f  |err|=%.2e\n",
                  t, ewma.read(), reference,
                  std::abs(static_cast<double>(ewma.read()) - reference));
    }
  }

  // Appendix-A ops usable for richer telemetry: log2 for entropy sketches,
  // sqrt for stddev thresholds — all table-driven, switch-feasible.
  const core::Log2Table log2_table;
  const core::SqrtTable sqrt_table;
  const float x = 1500.0f;  // bytes
  std::printf("\ntable-driven log2(%.0f)  = %.4f (true %.4f)\n", x,
              log2_table.log2(core::fp32_bits(x)),
              std::log2(static_cast<double>(x)));
  std::printf("table-driven sqrt(%.0f) = %.3f (true %.3f)\n", x,
              core::fp32_value(static_cast<std::uint32_t>(
                  sqrt_table.sqrt(core::fp32_bits(x)))),
              std::sqrt(static_cast<double>(x)));

  // Rack-scale roll-up: each ToR keeps a per-port EWMA vector; the fleet
  // view is one allreduce over the same collective API the training stack
  // uses (ReduceOp::kMean -> fleet-average utilization per port class).
  util::Rng fleet_rng(7);
  const int kSwitches = 4;
  const std::size_t kPorts = 16;
  std::vector<std::vector<float>> per_switch(
      kSwitches, std::vector<float>(kPorts));
  for (auto& sw : per_switch) {
    for (auto& port : sw) {
      port = static_cast<float>(fleet_rng.uniform(10.0, 90.0));
    }
  }
  const auto comm = collective::make_communicator({});  // host FPISA backend
  std::vector<float> fleet_mean(kPorts);
  (void)comm->allreduce(collective::WorkerViews(per_switch), fleet_mean,
                        collective::ReduceOp::kMean);
  double hottest = 0.0;
  std::size_t hottest_port = 0;
  for (std::size_t p = 0; p < kPorts; ++p) {
    if (fleet_mean[p] > hottest) {
      hottest = fleet_mean[p];
      hottest_port = p;
    }
  }
  std::printf("\nfleet telemetry: %d switches x %zu ports averaged via one "
              "%s allreduce; hottest port class %zu at %.1f Gbps\n",
              kSwitches, kPorts, std::string(comm->name()).c_str(),
              hottest_port, hottest);
  return 0;
}
