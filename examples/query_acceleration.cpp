// In-network query acceleration (paper §6): Top-N and group-by queries
// over floating-point data, Spark-like baseline vs FPISA switch pruning
// and aggregation — plus the distributed closing step: per-partition
// group-by partials combined through the unified collective API.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "collective/communicator.h"
#include "query/data.h"
#include "query/queries.h"

int main() {
  using namespace fpisa::query;

  const UserVisits uv = make_uservisits(/*rows=*/200000, /*seed=*/3);
  const CostModel cm;

  const auto base = run_top_n(uv, 100, Engine::kSparkBaseline, cm);
  const auto fp = run_top_n(uv, 100, Engine::kFpisaSwitch, cm);
  std::printf("Top-100 over %zu rows (adRevenue is FP32):\n", uv.rows());
  std::printf("  Spark-like baseline : %.3f s\n", base.stats.time_s);
  std::printf("  FPISA switch pruning: %.3f s (%.2fx), %zu of %zu rows reached "
              "the master\n",
              fp.stats.time_s, base.stats.time_s / fp.stats.time_s,
              fp.stats.rows_to_master, uv.rows());
  std::printf("  answers identical: %s\n",
              fp.values == base.values ? "yes" : "NO");

  const auto gbase = run_group_by_sum(uv, Engine::kSparkBaseline, cm);
  const auto gfp = run_group_by_sum(uv, Engine::kFpisaSwitch, cm);
  std::printf("\nGroup-by SUM(adRevenue) into %zu groups:\n",
              gbase.group_sum.size());
  std::printf("  Spark-like baseline  : %.3f s\n", gbase.stats.time_s);
  std::printf("  FPISA in-switch aggregation: %.3f s (%.2fx), %llu FP adds "
              "performed in the switch\n",
              gfp.stats.time_s, gbase.stats.time_s / gfp.stats.time_s,
              static_cast<unsigned long long>(gfp.stats.switch_adds));

  // Distributed flavor: four data partitions each produce per-group partial
  // sums; merging them IS an allreduce, so the query path rides the same
  // collective API as gradient aggregation (here: the switch backend).
  using namespace fpisa;
  const std::size_t groups = gbase.group_sum.size();
  const int kPartitions = 4;
  std::map<std::uint32_t, std::size_t> group_index;
  for (const auto& [key, sum] : gbase.group_sum) {
    group_index.emplace(key, group_index.size());
  }
  std::vector<std::vector<float>> partials(
      kPartitions, std::vector<float>(groups, 0.0f));
  for (std::size_t r = 0; r < uv.rows(); ++r) {
    const std::size_t part = r % kPartitions;
    partials[part][group_index.at(uv.source_ip[r])] += uv.ad_revenue[r];
  }
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kSwitch;
  const auto comm = collective::make_communicator(copts);
  std::vector<float> merged(groups);
  const collective::ReduceStats rstats =
      comm->allreduce(collective::WorkerViews(partials), merged);
  double worst = 0.0;
  for (const auto& [key, sum] : gbase.group_sum) {
    worst = std::max(worst,
                     std::fabs(static_cast<double>(merged[group_index.at(key)]) -
                               static_cast<double>(sum)));
  }
  std::printf("\n%d-partition group-by merge via %s allreduce: %zu groups in "
              "%llu packets, max |err| vs single-node %.3g\n",
              kPartitions, std::string(comm->name()).c_str(), groups,
              static_cast<unsigned long long>(rstats.network.packets_sent),
              worst);
  return 0;
}
