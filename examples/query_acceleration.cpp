// In-network query acceleration (paper §6): Top-N and group-by queries
// over floating-point data, Spark-like baseline vs FPISA switch pruning
// and aggregation.
#include <cstdio>

#include "query/data.h"
#include "query/queries.h"

int main() {
  using namespace fpisa::query;

  const UserVisits uv = make_uservisits(/*rows=*/200000, /*seed=*/3);
  const CostModel cm;

  const auto base = run_top_n(uv, 100, Engine::kSparkBaseline, cm);
  const auto fp = run_top_n(uv, 100, Engine::kFpisaSwitch, cm);
  std::printf("Top-100 over %zu rows (adRevenue is FP32):\n", uv.rows());
  std::printf("  Spark-like baseline : %.3f s\n", base.stats.time_s);
  std::printf("  FPISA switch pruning: %.3f s (%.2fx), %zu of %zu rows reached "
              "the master\n",
              fp.stats.time_s, base.stats.time_s / fp.stats.time_s,
              fp.stats.rows_to_master, uv.rows());
  std::printf("  answers identical: %s\n",
              fp.values == base.values ? "yes" : "NO");

  const auto gbase = run_group_by_sum(uv, Engine::kSparkBaseline, cm);
  const auto gfp = run_group_by_sum(uv, Engine::kFpisaSwitch, cm);
  std::printf("\nGroup-by SUM(adRevenue) into %zu groups:\n",
              gbase.group_sum.size());
  std::printf("  Spark-like baseline  : %.3f s\n", gbase.stats.time_s);
  std::printf("  FPISA in-switch aggregation: %.3f s (%.2fx), %llu FP adds "
              "performed in the switch\n",
              gfp.stats.time_s, gbase.stats.time_s / gfp.stats.time_s,
              static_cast<unsigned long long>(gfp.stats.switch_adds));
  return 0;
}
