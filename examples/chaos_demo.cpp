// Chaos replay harness: expands a seed into a Byzantine fault mix (the
// SAME expansion the chaos soak test uses, so a seed printed by a failing
// CI soak replays byte-identically here), runs the scenario through the
// session or cluster fabric, and checks the recovery contract:
//   - recoverable runs end bit-identical to the fault-free reference
//     (survivor reference when a worker dies under the degrade policy);
//   - unrecoverable runs (kAbort worker death) raise the typed
//     WorkerDeadError with the failure books intact.
// Fault telemetry counters are printed from the metrics registry.
//
//   example_chaos_demo --seed 7            replay soak seed 7
//   example_chaos_demo --seed 0 --runs 50  mini-soak over seeds [0, 50)
//   example_chaos_demo --fault-mix corrupt=0.3,stale=0.3,wipe=1
//                                          override the drawn mix
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/aggregation_service.h"
#include "core/packed.h"
#include "fault/fault.h"
#include "switchml/session.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

constexpr std::size_t kVectorLen = 96;  // 48 chunks @ 2 lanes -> 3 waves

// One-binade integers: every in-switch add is exact, so recovery is
// checkable as bit-identity.
std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

std::vector<std::vector<float>> survivors_of(
    const std::vector<std::vector<float>>& workers, int dead) {
  std::vector<std::vector<float>> out;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (static_cast<int>(w) != dead) out.push_back(workers[w]);
  }
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fpisa::core::fp32_bits(a[i]) != fpisa::core::fp32_bits(b[i])) {
      return false;
    }
  }
  return true;
}

bool expects_abort(const fpisa::fault::ChaosMix& mix) {
  return mix.fault.dead_worker >= 0 &&
         mix.fault.dead_worker_policy ==
             fpisa::fault::DeadWorkerPolicy::kAbort;
}

void print_mix(std::uint64_t seed, const fpisa::fault::ChaosMix& mix) {
  const auto& f = mix.fault;
  std::printf("seed %llu: %s, %d workers%s, loss %.3f\n",
              static_cast<unsigned long long>(seed),
              mix.cluster ? "cluster fabric" : "single-switch session",
              mix.num_workers,
              mix.cluster ? (", " + std::to_string(mix.num_shards) +
                             " shards").c_str()
                          : "",
              mix.loss_rate);
  std::printf("  corrupt %.3f  reorder %.3f  dup %.3f  stale %.3f\n",
              f.corrupt_rate, f.reorder_rate, f.dup_rate, f.stale_dup_rate);
  if (f.wipe_switch) {
    std::printf("  switch state wiped after wave %zu\n", f.wipe_wave);
  }
  if (f.dead_worker >= 0) {
    std::printf("  worker %d dies at wave %zu, policy %s\n", f.dead_worker,
                f.dead_worker_wave,
                f.dead_worker_policy ==
                        fpisa::fault::DeadWorkerPolicy::kAbort
                    ? "abort"
                    : "degrade");
  }
}

// Runs one scenario; returns true when the recovery contract held, and
// accumulates the run's fault counters into `totals`.
bool run_seed(std::uint64_t seed, const fpisa::fault::ChaosMix& mix,
              fpisa::fault::FaultCounters& totals) {
  using namespace fpisa;
  const auto workers =
      make_exact_workers(mix.num_workers, kVectorLen, seed * 7 + 1);
  const bool degrade_death =
      mix.fault.dead_worker >= 0 && !expects_abort(mix);
  const auto ref_workers =
      degrade_death ? survivors_of(workers, mix.fault.dead_worker) : workers;

  if (!mix.cluster) {
    switchml::SessionOptions opts;
    opts.num_workers = static_cast<int>(ref_workers.size());
    opts.slots = 16;
    opts.lanes = 2;
    switchml::AggregationSession ref(pisa::SwitchConfig{}, opts);
    const auto want = ref.reduce(ref_workers);

    opts.num_workers = mix.num_workers;
    opts.loss_rate = mix.loss_rate;
    opts.loss_seed = seed * 11 + 3;
    opts.fault = mix.fault;
    switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
    if (expects_abort(mix)) {
      try {
        (void)session.reduce(workers);
        std::printf("  FAIL: abort-policy death did not raise\n");
        return false;
      } catch (const fault::WorkerDeadError& e) {
        std::printf("  typed failure as designed: %s\n", e.what());
        totals += session.stats().faults;
        return true;
      }
    }
    const auto got = session.reduce(workers);
    totals += session.stats().faults;
    const bool ok = bits_equal(got, want) &&
                    session.fpisa_switch().occupied_slots() == 0;
    std::printf("  recovered bit-identical, no leaked switch state: %s\n",
                ok ? "YES" : "NO (bug!)");
    return ok;
  }

  cluster::ClusterOptions opts;
  opts.num_shards = mix.num_shards;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  cluster::ClusterOptions ref_opts = opts;
  cluster::AggregationService ref(ref_opts);
  cluster::JobRequest ref_job;
  ref_job.tenant = "chaos";
  ref_job.workers = ref_workers;
  const auto want = ref.reduce(ref_job).result;

  opts.loss_rate = mix.loss_rate;
  opts.fault = mix.fault;
  cluster::AggregationService svc(opts);
  cluster::JobRequest job;
  job.tenant = "chaos";
  job.workers = workers;
  if (expects_abort(mix)) {
    try {
      (void)svc.reduce(job);
      std::printf("  FAIL: abort-policy death did not raise\n");
      return false;
    } catch (const fault::WorkerDeadError& e) {
      const bool books = svc.jobs_failed() == 1 &&
                         svc.tenant_slo("chaos").jobs_failed == 1;
      std::printf("  typed failure as designed: %s (books intact: %s)\n",
                  e.what(), books ? "YES" : "NO (bug!)");
      return books;
    }
  }
  const cluster::JobReport report = svc.reduce(job);
  totals += report.stats.faults;
  const bool ok = bits_equal(report.result, want);
  std::printf("  recovered bit-identical: %s\n", ok ? "YES" : "NO (bug!)");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpisa;

  std::uint64_t seed = 0;
  int runs = 1;
  std::string mix_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (arg == "--fault-mix" && i + 1 < argc) {
      mix_spec = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed <n>] [--runs <n>] "
                   "[--fault-mix k=v,k=v,...]\n"
                   "  fault-mix keys: corrupt reorder dup stale loss wipe "
                   "dead dead_wave policy\n",
                   argv[0]);
      return 2;
    }
  }
  if (runs < 1) runs = 1;

  std::printf("=== chaos replay: %d seeded fault mix%s from seed %llu ===\n\n",
              runs, runs == 1 ? "" : "es",
              static_cast<unsigned long long>(seed));

  int failures = 0;
  fault::FaultCounters totals{};
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(r);
    fault::ChaosMix mix = fault::draw_chaos_mix(s);
    if (!mix_spec.empty()) {
      mix.fault = {};
      mix.fault.seed = s + 1;
      if (!fault::parse_fault_mix(mix_spec, mix.fault, &mix.loss_rate)) {
        std::fprintf(stderr, "error: bad --fault-mix spec '%s'\n",
                     mix_spec.c_str());
        return 2;
      }
    }
    print_mix(s, mix);
    if (!run_seed(s, mix, totals)) ++failures;
  }

  // Per-run counters (from the stats books) and the registry's view (the
  // switch-side guard counts land there even for session runs).
  const telemetry::Snapshot snap = telemetry::snapshot();
  util::Table t({"Fault telemetry", "Value"});
  t.add_row({"corrupt copies rejected (runs)",
             std::to_string(totals.corrupt_rejected)});
  t.add_row({"stale duplicates rejected (runs)",
             std::to_string(totals.stale_dups_rejected)});
  t.add_row({"epoch bumps (runs)", std::to_string(totals.epoch_bumps)});
  t.add_row({"workers declared dead (runs)",
             std::to_string(totals.workers_declared_dead)});
  t.add_row({"waves replayed (runs)", std::to_string(totals.waves_replayed)});
  t.add_row({"fpisa_switch_corrupt_rejected_total",
             std::to_string(
                 snap.counter_total("fpisa_switch_corrupt_rejected_total"))});
  t.add_row({"fpisa_switch_stale_dups_rejected_total",
             std::to_string(snap.counter_total(
                 "fpisa_switch_stale_dups_rejected_total"))});
  t.add_row({"cluster_fault_epoch_bumps_total",
             std::to_string(
                 snap.counter_total("cluster_fault_epoch_bumps_total"))});
  t.add_row({"cluster_fault_workers_declared_dead_total",
             std::to_string(snap.counter_total(
                 "cluster_fault_workers_declared_dead_total"))});
  t.add_row({"cluster_fault_waves_replayed_total",
             std::to_string(
                 snap.counter_total("cluster_fault_waves_replayed_total"))});
  std::printf("\n%s\n", t.render().c_str());

  if (failures != 0) {
    std::fprintf(stderr,
                 "%d of %d runs violated the recovery contract; reproduce "
                 "with: example_chaos_demo --seed <printed seed>\n",
                 failures, runs);
    return 1;
  }
  std::printf("all %d run%s honored the recovery contract.\n", runs,
              runs == 1 ? "" : "s");
  return 0;
}
