// Shard-failure failover end to end: a tenant's reduce job is running on a
// four-shard rack fabric when one shard dies mid-wave. The service marks
// the shard dead, scrubs and releases its slot range, re-routes its chunk
// set onto the survivors (deterministic, salt-stable) and retries those
// chunks cleanly — the job completes with a sum BIT-IDENTICAL to the
// no-failure run, and the whole episode is visible in the failover
// counters and the per-tenant SLO stats. Jobs arriving afterwards route
// around the corpse at partition time (degraded N-1 mode). The same story
// then plays out one level up: a ToR leaf of the aggregation tree dies and
// its rack's workers collapse into the spine fan-in.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "collective/communicator.h"
#include "core/packed.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fpisa::core::fp32_bits(a[i]) != fpisa::core::fp32_bits(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace fpisa;
  using namespace fpisa::collective;

  std::printf("=== shard failover on the rack fabric ===\n\n");
  const auto workers = make_workers(4, 4096, 42);

  // Reference: the same job on a healthy fabric.
  cluster::ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 64;
  opts.slots_per_job = 32;
  opts.lanes = 2;
  opts.failover.enabled = true;
  ClusterCommunicator healthy(opts);
  std::vector<float> want(4096);
  (void)healthy.allreduce(WorkerViews(workers), want, ReduceOp::kSum, "ml");

  // Same job, but shard 2 dies halfway through an add wave.
  opts.failover.faults = {cluster::ShardFault{
      2, cluster::FaultKind::kKill, cluster::FaultPhase::kMidAdd, 0, 0.0}};
  ClusterCommunicator comm(opts);
  std::vector<float> out(4096);
  const ReduceStats stats =
      comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");

  std::printf("shard 2 killed mid-add-wave; job completed anyway.\n");
  std::printf("result bit-identical to the no-failure run: %s\n\n",
              bits_equal(out, want) ? "YES" : "NO (bug!)");

  util::Table t({"Metric", "Value"});
  t.add_row({"shard failures", std::to_string(stats.network.shard_failures)});
  t.add_row({"chunks re-routed",
             std::to_string(stats.network.chunks_rerouted)});
  t.add_row({"failover retry passes",
             std::to_string(stats.network.failover_retries)});
  t.add_row({"packets sent", std::to_string(stats.network.packets_sent)});
  t.add_row({"alive shards",
             std::to_string(comm.service().health().num_alive()) + " / 4"});
  std::printf("%s\n", t.render().c_str());

  // The degraded steady state: later jobs route around the corpse up
  // front — re-routed chunks, but no failure and no retry pass.
  (void)comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");
  (void)comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");

  const TenantSlo slo = comm.tenant_slo("ml");
  util::Table s({"Tenant SLO", "Value"});
  s.add_row({"jobs completed", std::to_string(slo.jobs_completed)});
  s.add_row({"jobs failed", std::to_string(slo.jobs_failed)});
  s.add_row({"jobs failed over", std::to_string(slo.jobs_failed_over)});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f ms", slo.p50_wall_s * 1e3);
  s.add_row({"p50 job wall", buf});
  std::snprintf(buf, sizeof buf, "%.3f ms", slo.p99_wall_s * 1e3);
  s.add_row({"p99 job wall", buf});
  std::printf("%s\n", s.render().c_str());

  std::printf("=== ToR leaf death on the aggregation tree ===\n\n");
  cluster::HierarchyOptions hopts;
  hopts.leaves = 4;
  hopts.workers_per_leaf = 2;
  hopts.slots = 32;
  const auto tree_workers = make_workers(8, 2048, 43);

  TreeCommunicator tree_healthy(hopts);
  std::vector<float> tree_want(2048);
  (void)tree_healthy.allreduce(WorkerViews(tree_workers), tree_want);

  TreeCommunicator tree_comm(hopts);
  tree_comm.tree().kill_leaf(1);
  std::vector<float> tree_out(2048);
  (void)tree_comm.allreduce(WorkerViews(tree_workers), tree_out);

  std::printf("leaf 1 dead: its %d workers now feed the spine directly "
              "(%d flows at the spine instead of %d partials).\n",
              hopts.workers_per_leaf,
              tree_comm.tree().alive_leaves() + hopts.workers_per_leaf,
              hopts.leaves);
  double worst = 0.0;
  for (std::size_t i = 0; i < tree_out.size(); ++i) {
    worst = std::max(
        worst, std::fabs(static_cast<double>(tree_out[i] - tree_want[i])));
  }
  std::printf("max |collapsed-tree - healthy-tree| = %.3g "
              "(regrouping changes rounding, not meaning)\n",
              worst);
  std::printf("tree completion time %.3f ms (healthy %.3f ms)\n",
              tree_comm.tree().timing().done_s * 1e3,
              tree_healthy.tree().timing().done_s * 1e3);
  return 0;
}
