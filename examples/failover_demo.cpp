// Shard-failure failover end to end: a tenant's reduce job is running on a
// four-shard rack fabric when one shard dies mid-wave. The service marks
// the shard dead, scrubs and releases its slot range, re-routes its chunk
// set onto the survivors (deterministic, salt-stable) and retries those
// chunks cleanly — the job completes with a sum BIT-IDENTICAL to the
// no-failure run, and the whole episode is visible in the failover
// counters and the per-tenant SLO stats. Jobs arriving afterwards route
// around the corpse at partition time (degraded N-1 mode). The same story
// then plays out one level up: a ToR leaf of the aggregation tree dies and
// its rack's workers collapse into the spine fan-in.
// Observability hooks (exercised by the CI telemetry smoke job):
//   --trace <path>     record the failover job as a span tree, print it,
//                      and write Chrome trace_event JSON to <path>
//   --metrics <prefix> write two Prometheus text scrapes of the metrics
//                      registry: <prefix>.1.prom after the failover job
//                      and <prefix>.2.prom at exit (two scrapes so counter
//                      monotonicity can be linted)
//   --fault-mix <spec> layer Byzantine wire faults on top of the shard
//                      kill (corrupt=0.2,stale=0.3,... — see
//                      fault::parse_fault_mix) and print the fault
//                      telemetry counters after the job
//   --seed <n>         fault RNG stream seed for --fault-mix (default 1)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "collective/communicator.h"
#include "core/packed.h"
#include "fault/fault.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fpisa::core::fp32_bits(a[i]) != fpisa::core::fp32_bits(b[i])) {
      return false;
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << body;
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpisa;
  using namespace fpisa::collective;

  std::string trace_path, metrics_prefix, fault_mix;
  std::uint64_t fault_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_prefix = argv[++i];
    } else if (arg == "--fault-mix" && i + 1 < argc) {
      fault_mix = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace <file.json>] [--metrics <prefix>] "
                   "[--fault-mix k=v,...] [--seed <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  fault::FaultOptions fault_opts;
  double fault_loss = 0.0;
  if (!fault_mix.empty()) {
    fault_opts.seed = fault_seed;
    if (!fault::parse_fault_mix(fault_mix, fault_opts, &fault_loss)) {
      std::fprintf(stderr, "error: bad --fault-mix spec '%s'\n",
                   fault_mix.c_str());
      return 2;
    }
    if (fault_opts.dead_worker >= 0) {
      // Keep this demo's story about SHARD death; worker death belongs to
      // example_chaos_demo, which builds the right survivor reference.
      std::fprintf(stderr,
                   "error: dead= is not supported here; use "
                   "example_chaos_demo for worker-death scenarios\n");
      return 2;
    }
  }

  std::printf("=== shard failover on the rack fabric ===\n\n");
  const auto workers = make_workers(4, 4096, 42);

  // Reference: the same job on a healthy fabric.
  cluster::ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 64;
  opts.slots_per_job = 32;
  opts.lanes = 2;
  opts.failover.enabled = true;
  ClusterCommunicator healthy(opts);
  std::vector<float> want(4096);
  (void)healthy.allreduce(WorkerViews(workers), want, ReduceOp::kSum, "ml");

  // Same job, but shard 2 dies halfway through an add wave — optionally
  // with a Byzantine wire-fault mix layered on top. Either way the result
  // must stay bit-identical to the clean reference: wire faults are
  // detected and retransmitted, never absorbed.
  opts.failover.faults = {cluster::ShardFault{
      2, cluster::FaultKind::kKill, cluster::FaultPhase::kMidAdd, 0, 0.0}};
  if (!fault_mix.empty()) {
    opts.fault = fault_opts;
    opts.loss_rate = fault_loss;
    std::printf("byzantine wire faults on (seed %llu): %s\n",
                static_cast<unsigned long long>(fault_seed),
                fault_mix.c_str());
  }
  ClusterCommunicator comm(opts);
  telemetry::Trace trace;
  if (!trace_path.empty()) comm.set_trace(&trace);
  std::vector<float> out(4096);
  const ReduceStats stats =
      comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");
  if (!trace_path.empty()) comm.set_trace(nullptr);

  std::printf("shard 2 killed mid-add-wave; job completed anyway.\n");
  std::printf("result bit-identical to the no-failure run: %s\n\n",
              bits_equal(out, want) ? "YES" : "NO (bug!)");

  if (!trace_path.empty()) {
    std::printf("--- span tree of the failover job ---\n%s\n",
                trace.tree().c_str());
    if (write_file(trace_path, trace.chrome_trace_json())) {
      std::printf("chrome trace written to %s (open in chrome://tracing "
                  "or Perfetto)\n\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (!metrics_prefix.empty() &&
      !write_file(metrics_prefix + ".1.prom",
                  telemetry::snapshot().prometheus_text())) {
    std::fprintf(stderr, "error: cannot write %s.1.prom\n",
                 metrics_prefix.c_str());
    return 1;
  }

  util::Table t({"Metric", "Value"});
  t.add_row({"shard failures", std::to_string(stats.network.shard_failures)});
  t.add_row({"chunks re-routed",
             std::to_string(stats.network.chunks_rerouted)});
  t.add_row({"failover retry passes",
             std::to_string(stats.network.failover_retries)});
  t.add_row({"packets sent", std::to_string(stats.network.packets_sent)});
  t.add_row({"alive shards",
             std::to_string(comm.service().health().num_alive()) + " / 4"});
  std::printf("%s\n", t.render().c_str());

  if (!fault_mix.empty()) {
    // Fault recovery books: the per-job stats plus the registry's view of
    // the switch-side guard (PR-wide counters, not per-job deltas).
    const telemetry::Snapshot snap = telemetry::snapshot();
    const fault::FaultCounters& fc = stats.network.faults;
    util::Table ft({"Fault telemetry", "Value"});
    ft.add_row({"corrupt copies rejected",
                std::to_string(fc.corrupt_rejected)});
    ft.add_row({"stale duplicates rejected",
                std::to_string(fc.stale_dups_rejected)});
    ft.add_row({"epoch bumps", std::to_string(fc.epoch_bumps)});
    ft.add_row({"waves replayed", std::to_string(fc.waves_replayed)});
    ft.add_row({"fpisa_switch_corrupt_rejected_total",
                std::to_string(snap.counter_total(
                    "fpisa_switch_corrupt_rejected_total"))});
    ft.add_row({"fpisa_switch_stale_dups_rejected_total",
                std::to_string(snap.counter_total(
                    "fpisa_switch_stale_dups_rejected_total"))});
    ft.add_row({"cluster_fault_waves_replayed_total",
                std::to_string(snap.counter_total(
                    "cluster_fault_waves_replayed_total"))});
    std::printf("%s\n", ft.render().c_str());
  }

  // The degraded steady state: later jobs route around the corpse up
  // front — re-routed chunks, but no failure and no retry pass.
  (void)comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");
  (void)comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "ml");

  const TenantSlo slo = comm.tenant_slo("ml");
  util::Table s({"Tenant SLO", "Value"});
  s.add_row({"jobs completed", std::to_string(slo.jobs_completed)});
  s.add_row({"jobs failed", std::to_string(slo.jobs_failed)});
  s.add_row({"jobs failed over", std::to_string(slo.jobs_failed_over)});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f ms", slo.p50_wall_s * 1e3);
  s.add_row({"p50 job wall", buf});
  std::snprintf(buf, sizeof buf, "%.3f ms", slo.p99_wall_s * 1e3);
  s.add_row({"p99 job wall", buf});
  std::printf("%s\n", s.render().c_str());

  std::printf("=== ToR leaf death on the aggregation tree ===\n\n");
  cluster::HierarchyOptions hopts;
  hopts.leaves = 4;
  hopts.workers_per_leaf = 2;
  hopts.slots = 32;
  const auto tree_workers = make_workers(8, 2048, 43);

  TreeCommunicator tree_healthy(hopts);
  std::vector<float> tree_want(2048);
  (void)tree_healthy.allreduce(WorkerViews(tree_workers), tree_want);

  TreeCommunicator tree_comm(hopts);
  tree_comm.tree().kill_leaf(1);
  std::vector<float> tree_out(2048);
  (void)tree_comm.allreduce(WorkerViews(tree_workers), tree_out);

  std::printf("leaf 1 dead: its %d workers now feed the spine directly "
              "(%d flows at the spine instead of %d partials).\n",
              hopts.workers_per_leaf,
              tree_comm.tree().alive_leaves() + hopts.workers_per_leaf,
              hopts.leaves);
  double worst = 0.0;
  for (std::size_t i = 0; i < tree_out.size(); ++i) {
    worst = std::max(
        worst, std::fabs(static_cast<double>(tree_out[i] - tree_want[i])));
  }
  std::printf("max |collapsed-tree - healthy-tree| = %.3g "
              "(regrouping changes rounding, not meaning)\n",
              worst);
  std::printf("tree completion time %.3f ms (healthy %.3f ms)\n",
              tree_comm.tree().timing().done_s * 1e3,
              tree_healthy.tree().timing().done_s * 1e3);

  // Second scrape at exit: more jobs have run since the first one, so the
  // two files let a lint check counter monotonicity across scrapes.
  if (!metrics_prefix.empty()) {
    if (!write_file(metrics_prefix + ".2.prom",
                    telemetry::snapshot().prometheus_text())) {
      std::fprintf(stderr, "error: cannot write %s.2.prom\n",
                   metrics_prefix.c_str());
      return 1;
    }
    std::printf("prometheus scrapes written to %s.{1,2}.prom\n",
                metrics_prefix.c_str());
  }
  return 0;
}
