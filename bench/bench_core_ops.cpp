// Microbenchmarks + ablations for the core FPISA operations:
//   * add throughput: full vs FPISA-A vs host float
//   * batched branchless datapath vs the scalar reference loop, per backend
//   * batched egress (read/renormalize) vs the per-slot read loop, per backend
//   * read (delayed renorm) vs hypothetical renormalize-every-add
//   * LPM-table CLZ vs native countl_zero
//   * advanced ops (multiply / table-multiply / log2 / sqrt)
#include <benchmark/benchmark.h>

#include <bit>
#include <string>
#include <string_view>
#include <vector>

#include "core/accumulator.h"
#include "core/advanced_ops.h"
#include "core/batch_accumulator.h"
#include "core/clz_table.h"
#include "core/vector_accumulator.h"
#include "util/rng.h"

namespace {

using namespace fpisa;

std::vector<float> values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 0.1));
  return v;
}

void BM_FpisaAddFull(benchmark::State& state) {
  const auto vals = values(4096, 1);
  core::FpisaAccumulator acc;
  for (auto _ : state) {
    for (const float v : vals) acc.add(v);
    benchmark::DoNotOptimize(acc.state());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FpisaAddFull);

void BM_FpisaAddApprox(benchmark::State& state) {
  const auto vals = values(4096, 2);
  core::AccumulatorConfig cfg;
  cfg.variant = core::Variant::kApproximate;
  core::FpisaAccumulator acc(cfg);
  for (auto _ : state) {
    for (const float v : vals) acc.add(v);
    benchmark::DoNotOptimize(acc.state());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FpisaAddApprox);

void BM_HostFloatAdd(benchmark::State& state) {
  const auto vals = values(4096, 3);
  float acc = 0;
  for (auto _ : state) {
    for (const float v : vals) acc += v;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HostFloatAdd);

void BM_VectorAggregate8Workers(benchmark::State& state) {
  std::vector<std::vector<float>> workers;
  for (int w = 0; w < 8; ++w) workers.push_back(values(1024, 10 + w));
  for (auto _ : state) {
    auto r = core::aggregate(workers);
    benchmark::DoNotOptimize(r.sum.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 1024);
  state.SetLabel(std::string("backend=") +
                 std::string(core::batch_backend_name()));
}
BENCHMARK(BM_VectorAggregate8Workers);

// --- batched branchless datapath vs the scalar reference -------------------
// The reference is the pre-batching FpisaVector loop: extract + branchy
// fpisa_add per element. The batched kernels are bit-identical to it
// (test_core_batch_equivalence), so these rows measure pure datapath shape.

std::vector<std::uint32_t> value_bits(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) {
    x = core::fp32_bits(static_cast<float>(rng.normal(0.0, 0.1)));
  }
  return v;
}

core::AccumulatorConfig bench_cfg(core::Variant v) {
  core::AccumulatorConfig cfg;
  cfg.variant = v;
  return cfg;
}

void run_reference_loop(benchmark::State& state, core::Variant variant) {
  const auto bits = value_bits(4096, 40);
  const core::AccumulatorConfig cfg = bench_cfg(variant);
  std::vector<std::int32_t> exp(4096, 0);
  std::vector<std::int64_t> man(4096, 0);
  core::OpCounters counters;
  for (auto _ : state) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const auto ex = core::extract(bits[i], cfg.format);
      if (ex.cls == core::FpClass::kInf || ex.cls == core::FpClass::kNaN) {
        ++counters.nonfinite_inputs;
        continue;
      }
      core::FpState s{exp[i], man[i]};
      core::fpisa_add(s, ex.value, cfg, counters);
      exp[i] = s.exp;
      man[i] = s.man;
    }
    benchmark::DoNotOptimize(man.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void run_batch(benchmark::State& state, core::Variant variant,
               core::BatchBackend backend) {
  bool available = false;
  for (const auto b : core::available_batch_backends()) {
    available = available || b == backend;
  }
  if (!available) {
    state.SkipWithError("backend not available on this CPU/build");
    return;
  }
  core::force_batch_backend(backend);
  const auto bits = value_bits(4096, 40);
  const core::AccumulatorConfig cfg = bench_cfg(variant);
  std::vector<std::int32_t> exp(4096, 0);
  std::vector<std::int64_t> man(4096, 0);
  core::OpCounters counters;
  for (auto _ : state) {
    core::fpisa_add_batch(bits, exp, man, cfg, counters);
    benchmark::DoNotOptimize(man.data());
  }
  core::reset_batch_backend();
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_BatchAddFullReference(benchmark::State& state) {
  run_reference_loop(state, core::Variant::kFull);
}
BENCHMARK(BM_BatchAddFullReference);

void BM_BatchAddFullScalar(benchmark::State& state) {
  run_batch(state, core::Variant::kFull, core::BatchBackend::kScalar);
}
BENCHMARK(BM_BatchAddFullScalar);

void BM_BatchAddFullAvx2(benchmark::State& state) {
  run_batch(state, core::Variant::kFull, core::BatchBackend::kAvx2);
}
BENCHMARK(BM_BatchAddFullAvx2);

void BM_BatchAddApproxReference(benchmark::State& state) {
  run_reference_loop(state, core::Variant::kApproximate);
}
BENCHMARK(BM_BatchAddApproxReference);

void BM_BatchAddApproxScalar(benchmark::State& state) {
  run_batch(state, core::Variant::kApproximate, core::BatchBackend::kScalar);
}
BENCHMARK(BM_BatchAddApproxScalar);

void BM_BatchAddApproxAvx2(benchmark::State& state) {
  run_batch(state, core::Variant::kApproximate, core::BatchBackend::kAvx2);
}
BENCHMARK(BM_BatchAddApproxAvx2);

// --- batched egress (read/renormalize) vs the per-slot reference -----------
// The reference is the pre-batching collect shape: one fpisa_read
// (renormalize + assemble) per register pair. The batched kernels are
// bit-identical to it (test_core_batch_equivalence), so these rows measure
// pure datapath shape for the collect phase.

/// Registers pre-loaded with a gradient stream: realistic exponent spread
/// for the renormalize path.
struct ReadState {
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
};

ReadState make_read_state(std::size_t n, const core::AccumulatorConfig& cfg) {
  ReadState s;
  s.exp.assign(n, 0);
  s.man.assign(n, 0);
  core::OpCounters counters;
  for (int round = 0; round < 4; ++round) {
    const auto bits = value_bits(n, 50 + static_cast<std::uint64_t>(round));
    core::fpisa_add_batch(bits, s.exp, s.man, cfg, counters);
  }
  return s;
}

void run_read_reference_loop(benchmark::State& state) {
  const core::AccumulatorConfig cfg = bench_cfg(core::Variant::kFull);
  const ReadState s = make_read_state(4096, cfg);
  std::vector<std::uint32_t> out(4096);
  for (auto _ : state) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::uint32_t>(
          core::fpisa_read({s.exp[i], s.man[i]}, cfg).bits);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void run_read_batch(benchmark::State& state, core::BatchBackend backend,
                    int reg_bits = 0) {
  bool available = false;
  for (const auto b : core::available_batch_backends()) {
    available = available || b == backend;
  }
  if (!available) {
    state.SkipWithError("backend not available on this CPU/build");
    return;
  }
  core::force_batch_backend(backend);
  core::AccumulatorConfig cfg = bench_cfg(core::Variant::kFull);
  cfg.reg_bits = reg_bits;
  const ReadState s = make_read_state(4096, cfg);
  std::vector<std::uint32_t> out(4096);
  for (auto _ : state) {
    core::fpisa_read_batch(s.exp, s.man, out, cfg);
    benchmark::DoNotOptimize(out.data());
  }
  core::reset_batch_backend();
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_BatchReadReference(benchmark::State& state) {
  run_read_reference_loop(state);
}
BENCHMARK(BM_BatchReadReference);

void BM_BatchReadScalar(benchmark::State& state) {
  run_read_batch(state, core::BatchBackend::kScalar);
}
BENCHMARK(BM_BatchReadScalar);

// Default 32-bit register: the 8-lane 32-bit AVX2 read kernel.
void BM_BatchReadAvx2(benchmark::State& state) {
  run_read_batch(state, core::BatchBackend::kAvx2);
}
BENCHMARK(BM_BatchReadAvx2);

// 40-bit register: the generic 4x64-bit-lane AVX2 read kernel, kept as the
// comparison row for the 8-lane specialization above.
void BM_BatchReadAvx2Wide64(benchmark::State& state) {
  run_read_batch(state, core::BatchBackend::kAvx2, 40);
}
BENCHMARK(BM_BatchReadAvx2Wide64);

// Ablation: delayed renormalization (read once at the end) vs
// renormalizing after every add — the data-dependency the design removes.
void BM_DelayedRenorm(benchmark::State& state) {
  const auto vals = values(1024, 20);
  for (auto _ : state) {
    core::FpisaAccumulator acc;
    for (const float v : vals) acc.add(v);
    benchmark::DoNotOptimize(acc.read());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DelayedRenorm);

void BM_RenormEveryAdd(benchmark::State& state) {
  const auto vals = values(1024, 20);
  for (auto _ : state) {
    core::FpisaAccumulator acc;
    float out = 0;
    for (const float v : vals) {
      acc.add(v);
      out = acc.read();  // forced renormalize each step
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RenormEveryAdd);

void BM_ClzLpmTable(benchmark::State& state) {
  const auto table = core::build_clz_lpm_table(32, 23);
  util::Rng rng(30);
  std::vector<std::uint32_t> keys(1024);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_u64());
  for (auto _ : state) {
    int sum = 0;
    for (const auto k : keys) sum += core::lpm_lookup_shift(table, k, 32);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ClzLpmTable);

void BM_NativeCountlZero(benchmark::State& state) {
  util::Rng rng(31);
  std::vector<std::uint32_t> keys(1024);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_u64());
  for (auto _ : state) {
    int sum = 0;
    for (const auto k : keys) sum += std::countl_zero(k);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NativeCountlZero);

void BM_FpisaMultiply(benchmark::State& state) {
  util::Rng rng(32);
  std::vector<std::uint32_t> a(512), b(512);
  for (std::size_t i = 0; i < 512; ++i) {
    a[i] = core::fp32_bits(static_cast<float>(rng.normal(0, 2)));
    b[i] = core::fp32_bits(static_cast<float>(rng.normal(0, 2)));
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 512; ++i) {
      sum ^= core::fpisa_multiply(a[i], b[i], core::kFp32);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FpisaMultiply);

void BM_Log2Table(benchmark::State& state) {
  const core::Log2Table table;
  util::Rng rng(33);
  std::vector<std::uint32_t> xs(512);
  for (auto& x : xs) {
    x = core::fp32_bits(static_cast<float>(rng.uniform(0.001, 1000.0)));
  }
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (const auto x : xs) sum += table.log2_q16(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Log2Table);

}  // namespace

// BENCHMARK_MAIN, plus JSON file output so the results land in
// BENCH_core_ops.json like every other bench (see src/util/bench_json.h).
// Explicit --benchmark_out flags still win over the injected defaults.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_core_ops.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  bool has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    has_out = has_out || arg.starts_with("--benchmark_out=");
    has_fmt = has_fmt || arg.starts_with("--benchmark_out_format=");
  }
  if (!has_out) args.push_back(out_flag.data());
  if (!has_out && !has_fmt) args.push_back(fmt_flag.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
