// Table 2 + Fig 13: the five distributed queries with FP32 data, baseline
// (Spark-like) vs FPISA switch acceleration, plus the no-switch ablation.
#include <cmath>
#include <cstdio>

#include "query/data.h"
#include "query/queries.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa::query;
  std::printf("=== Table 2 + Fig 13: distributed DB queries with FP32 data ===\n");
  std::printf("(paper datasets: 30M-row Big Data + TPC-H SF1; here scaled to "
              "1M rows / SF0.5 — documented substitution)\n\n");

  fpisa::util::Table t2({"Query", "Acceleration method", "FP operation"});
  t2.add_row({"Top-N", "In-switch pruning", "Comparison"});
  t2.add_row({"Group-by-having max/min", "In-switch pruning", "Comparison"});
  t2.add_row({"Group-by (hash-based aggregation)", "In-switch aggregation",
              "Addition"});
  t2.add_row({"TPC-H Q3", "In-switch pruning", "Comparison"});
  t2.add_row({"TPC-H Q20", "In-switch aggregation", "Addition"});
  std::printf("%s\n", t2.render().c_str());

  const UserVisits uv = make_uservisits(1000000, 77, 1024);
  const TpchData tpch = make_tpch(0.5, 78);
  const CostModel cm;

  struct Row {
    const char* name;
    QueryStats base, fp, raw;
    bool correct;
  };
  std::vector<Row> rows;

  {
    auto b = run_top_n(uv, 100, Engine::kSparkBaseline, cm);
    auto f = run_top_n(uv, 100, Engine::kFpisaSwitch, cm);
    auto r = run_top_n(uv, 100, Engine::kDpdkNoSwitch, cm);
    rows.push_back({"Top-N", b.stats, f.stats, r.stats, f.values == b.values});
  }
  {
    auto b = run_group_by_max(uv, 10.0f, Engine::kSparkBaseline, cm);
    auto f = run_group_by_max(uv, 10.0f, Engine::kFpisaSwitch, cm);
    auto r = run_group_by_max(uv, 10.0f, Engine::kDpdkNoSwitch, cm);
    rows.push_back({"Group-by (max)", b.stats, f.stats, r.stats,
                    f.group_max == b.group_max});
  }
  {
    auto b = run_group_by_sum(uv, Engine::kSparkBaseline, cm);
    auto f = run_group_by_sum(uv, Engine::kFpisaSwitch, cm);
    auto r = run_group_by_sum(uv, Engine::kDpdkNoSwitch, cm);
    bool ok = f.group_sum.size() == b.group_sum.size();
    for (const auto& [k, v] : b.group_sum) {
      const auto it = f.group_sum.find(k);
      ok = ok && it != f.group_sum.end() &&
           std::fabs(it->second - v) <= std::fabs(v) * 2e-3f + 1e-3f;
    }
    rows.push_back({"Group-by (agg)", b.stats, f.stats, r.stats, ok});
  }
  {
    auto b = run_tpch_q3(tpch, 1, 1200, Engine::kSparkBaseline, cm);
    auto f = run_tpch_q3(tpch, 1, 1200, Engine::kFpisaSwitch, cm);
    auto r = run_tpch_q3(tpch, 1, 1200, Engine::kDpdkNoSwitch, cm);
    bool ok = b.top.size() == f.top.size();
    for (std::size_t i = 0; ok && i < b.top.size(); ++i) {
      ok = f.top[i].orderkey == b.top[i].orderkey;
    }
    rows.push_back({"TPC-H Q3", b.stats, f.stats, r.stats, ok});
  }
  {
    auto b = run_tpch_q20(tpch, 600, 900, Engine::kSparkBaseline, cm);
    auto f = run_tpch_q20(tpch, 600, 900, Engine::kFpisaSwitch, cm);
    auto r = run_tpch_q20(tpch, 600, 900, Engine::kDpdkNoSwitch, cm);
    bool ok = f.excess.size() == b.excess.size();
    rows.push_back({"TPC-H Q20", b.stats, f.stats, r.stats, ok});
  }
  {
    // Extension beyond the paper's five: join + top-N over rankings.
    const Rankings rk = make_rankings(20000, 79);
    const UserVisits uvj = make_uservisits(400000, 80, 1024, 20000);
    auto b = run_join_top_n(uvj, rk, 5000, 100, Engine::kSparkBaseline, cm);
    auto f = run_join_top_n(uvj, rk, 5000, 100, Engine::kFpisaSwitch, cm);
    auto r = run_join_top_n(uvj, rk, 5000, 100, Engine::kDpdkNoSwitch, cm);
    bool ok = b.top.size() == f.top.size();
    for (std::size_t i = 0; ok && i < b.top.size(); ++i) {
      ok = f.top[i].dest_url == b.top[i].dest_url;
    }
    rows.push_back({"Join+Top-N (ext)", b.stats, f.stats, r.stats, ok});
  }

  fpisa::util::Table t({"Query", "Baseline (s)", "FPISA (s)", "Speedup",
                        "No-switch abl. (s)", "Rows to master (FPISA)",
                        "Answer matches"});
  fpisa::util::BenchJson json("fig13_queries");
  for (const Row& r : rows) {
    t.add_row({r.name, fpisa::util::Table::num(r.base.time_s, 3),
               fpisa::util::Table::num(r.fp.time_s, 3),
               fpisa::util::Table::num(r.base.time_s / r.fp.time_s, 2) + "x",
               fpisa::util::Table::num(r.raw.time_s, 3),
               std::to_string(r.fp.rows_to_master), r.correct ? "yes" : "NO"});
    json.set(std::string(r.name) + "_speedup", r.base.time_s / r.fp.time_s);
    json.set(std::string(r.name) + "_correct", r.correct ? 1.0 : 0.0);
  }
  json.write();
  std::printf("%s", t.render().c_str());
  std::printf("\npaper Fig 13: 1.9-2.7x speedups over Spark across these five "
              "queries; integer vs FP32 in-switch task complexity does not "
              "change switch throughput (emulation argument, §6.2).\n");
  return 0;
}
