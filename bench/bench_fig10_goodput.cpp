// Fig 10: aggregation goodput of the five host-pipeline approaches —
// cores sweep at 16 KB messages (left panel) and message-size sweep at
// 4 cores (right panel). Host per-element rates are measured live; the
// GPU/NIC constants are documented in src/host/goodput_model.h.
#include <cstdio>

#include "host/endianness.h"
#include "host/goodput_model.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa::host;
  std::printf("=== Fig 10: goodput (max theoretical 92 Gbps) ===\n\n");
  const MeasuredRates rates = measure_host_rates(40.0);
  std::printf("measured per-core rates: quantize %.2fe9/s, dequantize %.2fe9/s "
              "(SIMD), staging memcpy %.1f GB/s\n\n",
              rates.quantize_vector_eps / 1e9, rates.dequantize_vector_eps / 1e9,
              rates.memcpy_bytes_per_s / 1e9);

  const Approach order[] = {Approach::kFpisaCpu, Approach::kFpisaCpuOpt,
                            Approach::kFpisaGpu, Approach::kSwitchMlCpu,
                            Approach::kSwitchMlGpu};

  {
    std::printf("--- cores vs goodput (16 KB messages) ---\n");
    std::vector<std::string> hdr{"Approach"};
    for (int c = 1; c <= 10; ++c) hdr.push_back(std::to_string(c));
    fpisa::util::Table t(hdr);
    for (const Approach a : order) {
      std::vector<std::string> row{approach_name(a)};
      for (int c = 1; c <= 10; ++c) {
        row.push_back(fpisa::util::Table::num(
            goodput_gbps(a, c, 16 * 1024, rates), 1));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
  }
  {
    std::printf("--- message size vs goodput (4 cores) ---\n");
    std::vector<std::string> hdr{"Approach"};
    for (double s = 4 * 1024; s <= 2 * 1024 * 1024; s *= 2) {
      hdr.push_back(s < 1024 * 1024
                        ? std::to_string(static_cast<int>(s / 1024)) + "KB"
                        : std::to_string(static_cast<int>(s / 1024 / 1024)) +
                              "MB");
    }
    fpisa::util::Table t(hdr);
    for (const Approach a : order) {
      std::vector<std::string> row{approach_name(a)};
      for (double s = 4 * 1024; s <= 2 * 1024 * 1024; s *= 2) {
        row.push_back(fpisa::util::Table::num(goodput_gbps(a, 4, s, rates), 1));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
  }

  auto cores_to = [&](Approach a) {
    for (int c = 1; c <= 10; ++c) {
      if (goodput_gbps(a, c, 16 * 1024, rates) >= 91.0) return c;
    }
    return 11;
  };
  const int swml = cores_to(Approach::kSwitchMlCpu);
  const int fp = cores_to(Approach::kFpisaCpu);
  const int fpo = cores_to(Approach::kFpisaCpuOpt);
  std::printf("cores to saturate: SwitchML/CPU=%d, FPISA-A/CPU=%d, "
              "FPISA-A/CPU(Opt)=%d -> FPISA uses %.0f%%/%.0f%% fewer cores "
              "(paper: 25%%/75%%; paper cores 4/3/1)\n",
              swml, fp, fpo, 100.0 * (swml - fp) / swml,
              100.0 * (swml - fpo) / swml);

  fpisa::util::BenchJson json("fig10_goodput");
  json.set("cores_to_saturate_switchml_cpu", swml);
  json.set("cores_to_saturate_fpisa_cpu", fp);
  json.set("cores_to_saturate_fpisa_cpu_opt", fpo);
  for (const Approach a : order) {
    json.set(std::string(approach_name(a)) + "_goodput_4core_16kb",
             goodput_gbps(a, 4, 16 * 1024, rates));
  }
  json.write();
  return 0;
}
