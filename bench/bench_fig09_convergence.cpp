// Fig 9: training accuracy curves for four model architectures, with
// default (host FP) vs FPISA-A aggregation, in FP32 and FP16 — the paper's
// convergence-parity result. 40 epochs, batch 16 (8 workers x 2).
#include <cstdio>
#include <functional>

#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "switchml/aggregator.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa;
  std::printf("=== Fig 9: accuracy curves, default vs FPISA-A aggregation ===\n");
  std::printf("(4 architectures x {FP32, FP16} x {default, FPISA-A}; "
              "40 epochs, global batch 16)\n\n");

  struct ModelDef {
    const char* name;
    std::function<ml::Network()> make;
    ml::Dataset data;
  };
  const std::uint64_t kSeed = 33;
  ModelDef models[] = {
      {"MLP        (GoogleNet-slot)",
       [&] { return ml::make_mlp(12, 24, 8, kSeed); },
       ml::make_blobs(8, 12, 960, 240, 40)},
      {"DeepMLP    (ResNet-50-slot)",
       [&] { return ml::make_deep_mlp(12, 24, 8, kSeed); },
       ml::make_blobs(8, 12, 960, 240, 41)},
      {"LogReg     (VGG19-slot)",
       [&] { return ml::make_logreg(12, 8, kSeed); },
       ml::make_blobs(8, 12, 960, 240, 42)},
      {"CNN        (MobileNetV2-slot)",
       [&] { return ml::make_cnn(8, 8, kSeed); },
       ml::make_images(8, 8, 960, 240, 43)},
  };

  util::BenchJson json("fig09_convergence");
  for (auto& m : models) {
    std::printf("--- %s ---\n", m.name);
    util::Table t({"Aggregation", "ep5", "ep10", "ep20", "ep30", "ep40"});

    auto run = [&](const char* label, bool fp16, bool use_fpisa) {
      ml::Network net = m.make();
      core::AccumulatorConfig cfg;
      cfg.variant = core::Variant::kApproximate;
      if (fp16) {
        cfg.format = core::kFp16;
        cfg.reg_bits = 32;  // wide register accumulation
      }
      switchml::FpisaAggregator fpisa(cfg);
      switchml::FloatSumAggregator host32;
      switchml::PackedSumAggregator host16(core::kFp16);
      switchml::GradientAggregator* agg =
          use_fpisa ? static_cast<switchml::GradientAggregator*>(&fpisa)
                    : (fp16 ? static_cast<switchml::GradientAggregator*>(&host16)
                            : &host32);
      ml::TrainerOptions opts;
      if (fp16) opts.grad_format = core::kFp16;
      // Stable learning rates per architecture (divergence would swamp the
      // aggregator comparison with optimization noise).
      opts.lr = 0.05f;
      if (std::string_view(m.name).find("DeepMLP") != std::string_view::npos) {
        opts.lr = 0.02f;
      }
      ml::DataParallelTrainer trainer(net, m.data, *agg, opts);
      std::vector<std::string> row{label};
      for (int epoch = 1; epoch <= 40; ++epoch) {
        trainer.train_epoch();
        if (epoch == 5 || epoch == 10 || epoch == 20 || epoch == 30 ||
            epoch == 40) {
          row.push_back(util::Table::pct(trainer.evaluate(), 1));
        }
      }
      t.add_row(row);
      return trainer.evaluate();
    };

    const float d32 = run("FP32 default", false, false);
    const float f32 = run("FP32 FPISA-A", false, true);
    const float d16 = run("FP16 default", true, false);
    const float f16 = run("FP16 FPISA-A", true, true);
    std::printf("%s", t.render().c_str());
    std::printf("final accuracy gap (FPISA-A - default): FP32 %+0.2fpp, "
                "FP16 %+0.2fpp (paper: < 0.1pp)\n\n",
                (f32 - d32) * 100, (f16 - d16) * 100);
    const std::string slug(
        std::string_view(m.name).substr(0, std::string_view(m.name).find(' ')));
    json.set(slug + "_fp32_gap_pp", (f32 - d32) * 100);
    json.set(slug + "_fp16_gap_pp", (f16 - d16) * 100);
    json.set(slug + "_fp32_final_acc", f32);
  }
  json.write();
  std::printf("shape check vs paper: FPISA-A curves track default addition "
              "for both formats; FP16 converges no faster than FP32.\n");
  return 0;
}
