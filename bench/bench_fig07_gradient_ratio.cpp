// Fig 7: element-wise max/min gradient-magnitude ratio across 8 workers,
// first training epoch, for three model configurations (stand-ins for
// VGG/CIFAR-10, DeepLight/Criteo, LSTM/GBW — see DESIGN.md).
#include <cstdio>

#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "switchml/aggregator.h"
#include "util/bench_json.h"
#include "util/stats.h"

int main() {
  using namespace fpisa;
  std::printf("=== Fig 7: element-wise max/min ratio across 8 workers ===\n");
  std::printf("(paper: ~83%% of ratios < 2^7 across VGG/DeepLight/LSTM)\n\n");

  struct Config {
    const char* name;
    ml::Network net;
    ml::Dataset data;
  };
  Config configs[] = {
      {"MLP (stand-in: VGG/CIFAR-10)", ml::make_mlp(24, 48, 6, 1),
       ml::make_blobs(6, 24, 4096, 64, 2)},
      {"LogReg (stand-in: DeepLight/Criteo)", ml::make_logreg(32, 2, 3),
       ml::make_blobs(2, 32, 4096, 64, 4)},
      {"DeepMLP (stand-in: LSTM/GBW)", ml::make_deep_mlp(16, 32, 8, 5),
       ml::make_blobs(8, 16, 4096, 64, 6)},
  };

  util::BenchJson json("fig07_gradient_ratio");
  for (auto& cfg : configs) {
    switchml::ExactAggregator agg;
    ml::TrainerOptions opts;
    opts.batch_per_worker = 32;
    ml::DataParallelTrainer trainer(cfg.net, cfg.data, agg, opts);

    util::Log2Histogram hist(0, 20);
    trainer.train_epoch([&](const std::vector<std::vector<float>>& grads) {
      for (const double r : ml::elementwise_max_min_ratio(grads)) hist.add(r);
    });

    std::printf("--- %s (first epoch, %llu elements) ---\n", cfg.name,
                static_cast<unsigned long long>(hist.total()));
    std::vector<std::pair<std::string, double>> bars;
    for (int e = 0; e <= 20; e += 2) {
      double f = 0;
      for (std::size_t b = 0; b < hist.buckets(); ++b) {
        const int lo = hist.bucket_log2_lo(b);
        if (lo >= e && lo < e + 2) f += hist.frequency(b);
      }
      bars.emplace_back("2^" + std::to_string(e) + "..2^" + std::to_string(e + 2),
                        f);
    }
    std::printf("%s", util::ascii_bars(bars).c_str());
    std::printf("fraction with ratio < 2^7: %.1f%%  (paper: ~83%%)\n\n",
                hist.fraction_below_pow2(7) * 100);
    json.set(std::string(cfg.name, 0, std::string(cfg.name).find(' ')) +
                 "_frac_below_2e7",
             hist.fraction_below_pow2(7));
  }
  json.write();
  return 0;
}
