// Fig 11: end-to-end training-throughput speedup of FPISA-A over SwitchML
// (both on the DPDK transport) for seven DNN workload cards, at 2 and 8
// communication cores — grounded by an actual mini training run through
// the unified collective API (the speedup model's premise is that swapping
// the aggregation fabric does not change what the model learns).
#include <cstdio>
#include <vector>

#include "collective/communicator.h"
#include "host/endianness.h"
#include "host/goodput_model.h"
#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa::host;
  std::printf("=== Fig 11: end-to-end training speedup, FPISA-A vs SwitchML ===\n\n");
  const MeasuredRates rates = measure_host_rates(40.0);
  const auto rows = training_speedups(rates);

  // The paper's measured speedups for side-by-side comparison.
  struct Paper {
    const char* model;
    double s2, s8;
  };
  const Paper paper[] = {
      {"DeepLight", 85.9, 31.6}, {"LSTM", 56.3, 16.7}, {"BERT", 35.4, 9.9},
      {"VGG19", 20.3, 0.2},      {"GoogleNet", 0.9, 0.3},
      {"ResNet-50", 0.6, 3.6},   {"MobileNetV2", 0.8, 0.6},
  };

  fpisa::util::Table t({"Model", "2-core speedup", "8-core speedup",
                        "Paper 2-core", "Paper 8-core"});
  fpisa::util::BenchJson json("fig11_training_speedup");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].model,
               fpisa::util::Table::num(rows[i].speedup_2core * 100, 1) + "%",
               fpisa::util::Table::num(rows[i].speedup_8core * 100, 1) + "%",
               fpisa::util::Table::num(paper[i].s2, 1) + "%",
               fpisa::util::Table::num(paper[i].s8, 1) + "%"});
    json.set(std::string(rows[i].model) + "_speedup_2core",
             rows[i].speedup_2core);
    json.set(std::string(rows[i].model) + "_speedup_8core",
             rows[i].speedup_8core);
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nshape checks: comm-bound models (DeepLight/LSTM/BERT/VGG19) "
              "gain most; compute-bound models gain ~0; 2-core speedups "
              "exceed 8-core (fewer cores -> communication matters more).\n"
              "Gradient volumes and compute times per model are the cards in "
              "src/host/goodput_model.cpp.\n");

  // Convergence-parity grounding: the same trainer over two Communicator
  // backends (exact host reference vs FPISA-A) — the accuracies must agree
  // within noise or the modeled speedups above would be comparing fabrics
  // that train different models.
  {
    using namespace fpisa;
    const ml::Dataset ds = ml::make_blobs(4, 16, 768, 256, 123);
    auto run = [&](collective::CommunicatorOptions copts) {
      const auto comm = collective::make_communicator(copts);
      ml::Network net = ml::make_mlp(16, 24, 4, 124);
      ml::DataParallelTrainer trainer(net, ds, *comm, {});
      for (int e = 0; e < 8; ++e) trainer.train_epoch();
      return trainer.evaluate();
    };
    collective::CommunicatorOptions exact;
    exact.host_algorithm = collective::HostAlgorithm::kExact;
    collective::CommunicatorOptions fpisa_a;
    fpisa_a.host_algorithm = collective::HostAlgorithm::kFpisa;
    fpisa_a.accumulator.variant = core::Variant::kApproximate;
    const float acc_exact = run(exact);
    const float acc_fpisa = run(fpisa_a);
    json.set("collective_acc_exact", acc_exact);
    json.set("collective_acc_fpisa_a", acc_fpisa);
    std::printf("\ncollective-API grounding: 8-worker MLP, 8 epochs — exact "
                "allreduce %.3f vs FPISA-A allreduce %.3f accuracy "
                "(|delta| %.3f)\n",
                acc_exact, acc_fpisa,
                acc_exact > acc_fpisa ? acc_exact - acc_fpisa
                                      : acc_fpisa - acc_exact);
  }
  json.write();
  return 0;
}
