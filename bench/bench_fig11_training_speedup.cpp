// Fig 11: end-to-end training-throughput speedup of FPISA-A over SwitchML
// (both on the DPDK transport) for seven DNN workload cards, at 2 and 8
// communication cores.
#include <cstdio>

#include "host/endianness.h"
#include "host/goodput_model.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa::host;
  std::printf("=== Fig 11: end-to-end training speedup, FPISA-A vs SwitchML ===\n\n");
  const MeasuredRates rates = measure_host_rates(40.0);
  const auto rows = training_speedups(rates);

  // The paper's measured speedups for side-by-side comparison.
  struct Paper {
    const char* model;
    double s2, s8;
  };
  const Paper paper[] = {
      {"DeepLight", 85.9, 31.6}, {"LSTM", 56.3, 16.7}, {"BERT", 35.4, 9.9},
      {"VGG19", 20.3, 0.2},      {"GoogleNet", 0.9, 0.3},
      {"ResNet-50", 0.6, 3.6},   {"MobileNetV2", 0.8, 0.6},
  };

  fpisa::util::Table t({"Model", "2-core speedup", "8-core speedup",
                        "Paper 2-core", "Paper 8-core"});
  fpisa::util::BenchJson json("fig11_training_speedup");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].model,
               fpisa::util::Table::num(rows[i].speedup_2core * 100, 1) + "%",
               fpisa::util::Table::num(rows[i].speedup_8core * 100, 1) + "%",
               fpisa::util::Table::num(paper[i].s2, 1) + "%",
               fpisa::util::Table::num(paper[i].s8, 1) + "%"});
    json.set(std::string(rows[i].model) + "_speedup_2core",
             rows[i].speedup_2core);
    json.set(std::string(rows[i].model) + "_speedup_8core",
             rows[i].speedup_8core);
  }
  json.write();
  std::printf("%s", t.render().c_str());
  std::printf("\nshape checks: comm-bound models (DeepLight/LSTM/BERT/VGG19) "
              "gain most; compute-bound models gain ~0; 2-core speedups "
              "exceed 8-core (fewer cores -> communication matters more).\n"
              "Gradient volumes and compute times per model are the cards in "
              "src/host/goodput_model.cpp.\n");
  return 0;
}
