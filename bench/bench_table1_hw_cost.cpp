// Table 1: area / power / minimum delay of the Banzai-style functional
// units, from the structural cell-count model (substitute for Synopsys DC +
// FreePDK15 synthesis; see DESIGN.md). Paper values printed alongside.
#include <cstdio>

#include "hw/units.h"
#include "util/bench_json.h"

int main() {
  using namespace fpisa::hw;
  std::printf("=== Table 1: functional-unit synthesis estimates (1 GHz) ===\n\n");
  std::printf("%s", render_table1().c_str());

  const UnitCost alu = default_alu_cost();
  const UnitCost fp = fpisa_alu_cost();
  const UnitCost raw = raw_unit_cost();
  const UnitCost rsaw = rsaw_unit_cost();
  const UnitCost fpu = alu_with_fpu_cost();
  std::printf("\nKey ratios (paper in parentheses):\n");
  std::printf("  FPISA ALU vs default: area +%.1f%% (22.4%%), power +%.1f%% (13.0%%)\n",
              (fp.area_um2 / alu.area_um2 - 1) * 100,
              (fp.dynamic_uw / alu.dynamic_uw - 1) * 100);
  std::printf("  RSAW vs RAW:          area +%.1f%% (35.0%%), delay +%.1f%% (13.5%%)\n",
              (rsaw.area_um2 / raw.area_um2 - 1) * 100,
              (rsaw.min_delay_ps / raw.min_delay_ps - 1) * 100);
  std::printf("  ALU+FPU vs default:   area %.1fx (7.6x), dyn power %.1fx (6.0x), "
              "leakage %.1fx (5.9x)\n",
              fpu.area_um2 / alu.area_um2, fpu.dynamic_uw / alu.dynamic_uw,
              fpu.leakage_uw / alu.leakage_uw);
  std::printf("  All units close timing at 1 GHz (< 1000 ps): %s\n",
              rsaw.min_delay_ps < 1000 && fpu.min_delay_ps < 1000 ? "yes" : "NO");

  fpisa::util::BenchJson json("table1_hw_cost");
  json.set("fpisa_alu_area_overhead_pct", (fp.area_um2 / alu.area_um2 - 1) * 100);
  json.set("fpisa_alu_power_overhead_pct",
           (fp.dynamic_uw / alu.dynamic_uw - 1) * 100);
  json.set("rsaw_vs_raw_area_pct", (rsaw.area_um2 / raw.area_um2 - 1) * 100);
  json.set("rsaw_vs_raw_delay_pct",
           (rsaw.min_delay_ps / raw.min_delay_ps - 1) * 100);
  json.set("fpu_area_ratio", fpu.area_um2 / alu.area_um2);
  json.set("timing_closes_1ghz",
           rsaw.min_delay_ps < 1000 && fpu.min_delay_ps < 1000 ? 1.0 : 0.0);
  json.write();
  return 0;
}
