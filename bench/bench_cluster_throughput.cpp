// Rack-scale aggregation throughput: aggregate values/s of the sharded
// multi-switch service vs shard count (1 -> 8), plus the two-level
// ToR->spine tree vs the flat single-switch baseline. The switches run at
// line rate (the paper's emulation argument), so modeled completion time
// comes from per-shard ingress-pipe serialization (net::Link / EventSim);
// functional results are produced by the real pisa pipelines either way.
#include <chrono>
#include <cstdio>

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "pisa/fpisa_program.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

}  // namespace

int main() {
  using namespace fpisa;
  using namespace fpisa::cluster;
  std::printf("=== Rack-scale aggregation throughput vs shard count ===\n\n");

  const int kWorkers = 4;
  const std::size_t kValues = 8192;
  const int kLanes = 2;
  const double kGbps = 100.0;
  const double kLatencyUs = 1.0;
  const std::size_t pkt_bytes =
      static_cast<std::size_t>(pisa::kFpisaHeaderBytes) + 4u * kLanes + 46u;
  const auto workers = make_workers(kWorkers, kValues, 200);

  util::BenchJson json("cluster_throughput");
  json.set("workers", static_cast<double>(kWorkers));
  json.set("values", static_cast<double>(kValues));
  json.set("lanes", static_cast<double>(kLanes));
  json.set("link_gbps", kGbps);

  util::Table t({"Shards", "Packets", "Modeled time (ms)", "Values/s (x1e6)",
                 "Speedup", "Sim wall (ms)"});
  double base_rate = 0.0;
  double rate_at_4 = 0.0;
  for (const int shards : {1, 2, 4, 8}) {
    ClusterOptions opts;
    opts.num_shards = shards;
    opts.lanes = kLanes;
    opts.slots_per_shard = 64;
    opts.slots_per_job = 64;
    AggregationService service(opts);

    const auto t0 = std::chrono::steady_clock::now();
    const JobReport report = service.reduce({"bench", workers});
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const double modeled_s = modeled_shard_parallel_seconds(
        report.per_shard, pkt_bytes, kGbps, kLatencyUs);
    const double rate = static_cast<double>(kValues) / modeled_s;
    if (shards == 1) base_rate = rate;
    if (shards == 4) rate_at_4 = rate;

    t.add_row({std::to_string(shards),
               std::to_string(report.stats.packets_sent),
               util::Table::num(modeled_s * 1e3, 3),
               util::Table::num(rate / 1e6, 1),
               util::Table::num(rate / base_rate, 2) + "x",
               util::Table::num(wall_ms, 1)});
    json.set("values_per_s_shards_" + std::to_string(shards), rate);
    json.set("sim_wall_ms_shards_" + std::to_string(shards), wall_ms);
  }
  std::printf("%s", t.render().c_str());
  const double speedup_4 = rate_at_4 / base_rate;
  json.set("speedup_1_to_4", speedup_4);
  std::printf("\naggregate throughput scaling 1 -> 4 shards: %.2fx "
              "(acceptance target: >= 2x)\n\n",
              speedup_4);

  std::printf("=== Two-level ToR->spine tree vs flat single switch ===\n");
  util::Table h({"Leaves", "Workers", "Tree done (ms)", "Flat done (ms)",
                 "Tree pkts", "Flat pkts", "Spine flows vs flat ports"});
  for (const int leaves : {2, 4, 8}) {
    HierarchyOptions hopts;
    hopts.leaves = leaves;
    hopts.workers_per_leaf = 2;
    hopts.slots = 64;
    hopts.lanes = kLanes;
    hopts.link_gbps = kGbps;
    hopts.link_latency_us = kLatencyUs;
    HierarchicalAggregator tree(hopts);

    const std::size_t n = 4096;
    const auto tw = make_workers(tree.total_workers(), n, 201);
    (void)tree.reduce(tw);
    const HierarchyTiming flat = flat_baseline_timing(hopts, n);

    h.add_row({std::to_string(leaves), std::to_string(tree.total_workers()),
               util::Table::num(tree.timing().done_s * 1e3, 3),
               util::Table::num(flat.done_s * 1e3, 3),
               std::to_string(tree.timing().packets),
               std::to_string(flat.packets),
               std::to_string(leaves) + " vs " +
                   std::to_string(tree.total_workers())});
    json.set("tree_done_ms_leaves_" + std::to_string(leaves),
             tree.timing().done_s * 1e3);
    json.set("flat_done_ms_leaves_" + std::to_string(leaves),
             flat.done_s * 1e3);
  }
  std::printf("%s", h.render().c_str());
  std::printf("\nthe tree matches flat completion time while its root "
              "terminates `leaves` flows instead of one port per worker — "
              "that is what lets aggregation outgrow a single switch's "
              "port count.\n");

  if (!json.write()) std::printf("warning: could not write BENCH json\n");
  return 0;
}
