// Rack-scale aggregation throughput: aggregate values/s of the sharded
// multi-switch service vs shard count (1 -> 8), plus the two-level
// ToR->spine tree vs the flat single-switch baseline. The switches run at
// line rate (the paper's emulation argument), so modeled completion time
// comes from per-shard ingress-pipe serialization (net::Link / EventSim);
// functional results are produced by the real pisa pipelines either way.
//
// The datapath is the batched one end to end: 32-lane chunk packets
// (amortizing the FPISA header + frame overhead over 32 values on the
// modeled wire), encoded into reused buffers and applied through
// FpisaSwitch::add_batch with one shard-mutex hold per wave, and collect
// phases drained through the compiled egress read_and_reset_batch. The
// add/collect wall-time split is reported per shard count, plus a per-slot
// collect baseline row (read/reset round trips through the packet sim) to
// track the batched egress speedup. A 2-lane single-shard row is kept for
// continuity with the pre-batching numbers.
// The bench drives everything through the unified collective API
// (collective::ClusterCommunicator / TreeCommunicator): gradients enter as
// zero-copy views and the result lands in a caller-owned buffer, exactly
// as a framework integration would run it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "collective/communicator.h"
#include "pisa/fpisa_program.h"
#include "telemetry/metrics.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  fpisa::util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

struct RunResult {
  double modeled_s = 0;
  double wall_ms = 0;
  double add_phase_ms = 0;
  double collect_phase_ms = 0;
  std::uint64_t packets = 0;
};

RunResult run_once(int shards, int lanes, std::size_t values,
                   const std::vector<std::vector<float>>& workers,
                   double gbps, double latency_us,
                   bool batched_collect = true, int kill_shard = -1,
                   bool fault_guard = false, bool pipeline = true) {
  using namespace fpisa;
  using namespace fpisa::cluster;
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.lanes = lanes;
  opts.slots_per_shard = 64;
  opts.slots_per_job = 64;
  opts.batched_collect = batched_collect;
  opts.pipeline_waves = pipeline;
  opts.failover.enabled = kill_shard >= 0;
  // Guarded datapath with every injection rate at zero: measures what the
  // epoch/checksum machinery itself costs, with no faults to recover.
  opts.fault.enabled = fault_guard;
  opts.fault.seed = 9;
  collective::ClusterCommunicator comm(opts);
  if (kill_shard >= 0) comm.service().kill_shard(kill_shard);

  std::vector<float> out(workers.front().size());
  const auto t0 = std::chrono::steady_clock::now();
  const collective::ReduceStats stats =
      comm.allreduce(collective::WorkerViews(workers), out,
                     collective::ReduceOp::kSum, "bench");
  const auto t1 = std::chrono::steady_clock::now();

  const std::size_t pkt_bytes =
      static_cast<std::size_t>(pisa::kFpisaHeaderBytes) +
      4u * static_cast<std::size_t>(lanes) + 46u;
  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.add_phase_ms = comm.service().phase_breakdown().add_s * 1e3;
  r.collect_phase_ms = comm.service().phase_breakdown().collect_s * 1e3;
  r.modeled_s = modeled_shard_parallel_seconds(stats.per_shard, pkt_bytes,
                                               gbps, latency_us);
  r.packets = stats.network.packets_sent;
  (void)values;
  return r;
}

}  // namespace

int main() {
  using namespace fpisa;
  using namespace fpisa::cluster;
  std::printf("=== Rack-scale aggregation throughput vs shard count ===\n\n");

  const int kWorkers = 4;
  const std::size_t kValues = 8192;
  const int kLanes = 32;        // batched chunk geometry (values per packet)
  const int kLegacyLanes = 2;   // pre-batching geometry, kept for reference
  const double kGbps = 100.0;
  const double kLatencyUs = 1.0;
  const auto workers = make_workers(kWorkers, kValues, 200);

  util::BenchJson json("cluster_throughput");
  json.set("workers", static_cast<double>(kWorkers));
  json.set("values", static_cast<double>(kValues));
  json.set("lanes", static_cast<double>(kLanes));
  json.set("link_gbps", kGbps);

  util::Table t({"Shards", "Packets", "Modeled time (ms)", "Values/s (x1e6)",
                 "Speedup", "Sim wall (ms)", "Add (ms)", "Collect (ms)",
                 "Wall values/s (x1e6)"});
  double base_rate = 0.0;
  double rate_at_4 = 0.0;
  double wall_rate_1 = 0.0;
  for (const int shards : {1, 2, 4, 8}) {
    // Best-of-3 for the wall rows: the scaling-efficiency keys gate CI, so
    // keep scheduler noise out of the numerator and denominator alike.
    RunResult r = run_once(shards, kLanes, kValues, workers, kGbps,
                           kLatencyUs);
    for (int rep = 1; rep < 3; ++rep) {
      const RunResult again =
          run_once(shards, kLanes, kValues, workers, kGbps, kLatencyUs);
      if (again.wall_ms < r.wall_ms) r = again;
    }
    const double rate = static_cast<double>(kValues) / r.modeled_s;
    const double wall_rate =
        static_cast<double>(kValues) / (r.wall_ms * 1e-3);
    if (shards == 1) {
      base_rate = rate;
      wall_rate_1 = wall_rate;
    }
    if (shards == 4) rate_at_4 = rate;
    if (shards > 1) {
      // Parallel efficiency of the execution engine itself: wall-clock
      // speedup over 1 shard divided by the shard count (1.0 = perfect).
      json.set("wall_scaling_efficiency_shards_" + std::to_string(shards),
               wall_rate / wall_rate_1 / static_cast<double>(shards));
    }

    t.add_row({std::to_string(shards), std::to_string(r.packets),
               util::Table::num(r.modeled_s * 1e3, 3),
               util::Table::num(rate / 1e6, 1),
               util::Table::num(rate / base_rate, 2) + "x",
               util::Table::num(r.wall_ms, 1),
               util::Table::num(r.add_phase_ms, 2),
               util::Table::num(r.collect_phase_ms, 2),
               util::Table::num(wall_rate / 1e6, 1)});
    json.set("values_per_s_shards_" + std::to_string(shards), rate);
    json.set("sim_wall_ms_shards_" + std::to_string(shards), r.wall_ms);
    json.set("add_phase_ms_shards_" + std::to_string(shards), r.add_phase_ms);
    json.set("collect_phase_ms_shards_" + std::to_string(shards),
             r.collect_phase_ms);
    json.set("wall_values_per_s_shards_" + std::to_string(shards), wall_rate);
  }
  std::printf("%s", t.render().c_str());

  // The wall rows depend on how many cores actually back the shard
  // workers — record it so downstream checks (scripts/check_bench_scaling)
  // can gate the scaling assertion on real parallel hardware.
  const double host_cpus =
      static_cast<double>(std::thread::hardware_concurrency());
  json.set("host_cpus", host_cpus);

  // Dispatch overhead: a minimal job (one chunk per shard) over many reps,
  // mailbox workers vs inline on the same fabric. The delta prices one
  // fan-out/join round trip — the tickets, wakeups, and the epoch join —
  // with almost no shard work to hide behind.
  {
    constexpr int kDispatchReps = 200;
    const auto tiny = make_workers(
        kWorkers, static_cast<std::size_t>(4 * kLanes), 202);
    const auto time_mode = [&](cluster::ClusterOptions::DispatchMode mode) {
      ClusterOptions opts;
      opts.num_shards = 4;
      opts.lanes = kLanes;
      opts.slots_per_shard = 64;
      opts.slots_per_job = 64;
      opts.dispatch = mode;
      AggregationService svc(opts);
      std::vector<std::vector<float>> one(tiny);
      // Warm-up pass so thread creation / first-touch costs stay out.
      (void)svc.reduce({"bench", one});
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kDispatchReps; ++i) {
        (void)svc.reduce({"bench", one});
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::micro>(t1 - t0).count() /
             kDispatchReps;
    };
    const double inline_us =
        time_mode(cluster::ClusterOptions::DispatchMode::kInline);
    const double workers_us =
        time_mode(cluster::ClusterOptions::DispatchMode::kWorkers);
    const double overhead_us = workers_us - inline_us;
    json.set("dispatch_pass_us_inline", inline_us);
    json.set("dispatch_pass_us_workers", workers_us);
    json.set("dispatch_overhead_us_per_pass", overhead_us);
    std::printf("\ndispatch overhead (4 shards, 1-chunk waves, %d reps): "
                "inline %.1f us/pass, mailbox workers %.1f us/pass = "
                "%+.1f us fan-out/join cost\n",
                kDispatchReps, inline_us, workers_us, overhead_us);
  }

  // Wave-pipeline A/B on the same fabric: encode wave N+1 while wave N's
  // collect drains, vs the serial wave loop (ClusterOptions::pipeline_waves
  // off). Same results either way — this row prices the overlap.
  {
    double on_ms = 1e300, off_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      on_ms = std::min(on_ms, run_once(4, kLanes, kValues, workers, kGbps,
                                       kLatencyUs, true, -1, false,
                                       /*pipeline=*/true)
                                  .wall_ms);
      off_ms = std::min(off_ms, run_once(4, kLanes, kValues, workers, kGbps,
                                         kLatencyUs, true, -1, false,
                                         /*pipeline=*/false)
                                    .wall_ms);
    }
    const double on_rate = static_cast<double>(kValues) / (on_ms * 1e-3);
    const double off_rate = static_cast<double>(kValues) / (off_ms * 1e-3);
    json.set("wall_values_per_s_shards_4_pipeline_on", on_rate);
    json.set("wall_values_per_s_shards_4_pipeline_off", off_rate);
    json.set("pipeline_speedup_shards_4", on_rate / off_rate);
    std::printf("wave pipeline A/B (4 shards): off %.2f ms, on %.2f ms = "
                "%.2fx\n",
                off_ms, on_ms, on_rate / off_rate);
  }

  // Compiled batched egress vs the per-slot collect baseline (read/reset
  // round trips through the packet sim) on one shard: the collect-phase
  // wall time is the PR 3 acceptance metric (target >= 3x).
  const RunResult per_slot =
      run_once(1, kLanes, kValues, workers, kGbps, kLatencyUs,
               /*batched_collect=*/false);
  const RunResult batched_collect =
      run_once(1, kLanes, kValues, workers, kGbps, kLatencyUs,
               /*batched_collect=*/true);
  const double collect_speedup =
      per_slot.collect_phase_ms / batched_collect.collect_phase_ms;
  json.set("collect_phase_ms_per_slot_baseline", per_slot.collect_phase_ms);
  json.set("collect_phase_ms_batched", batched_collect.collect_phase_ms);
  json.set("collect_speedup_vs_per_slot", collect_speedup);
  json.set("sim_wall_ms_per_slot_collect", per_slot.wall_ms);
  std::printf("\ncollect phase, 1 shard: per-slot %.2f ms -> batched "
              "read_batch %.2f ms = %.1fx (acceptance target: >= 3x)\n",
              per_slot.collect_phase_ms, batched_collect.collect_phase_ms,
              collect_speedup);
  if (collect_speedup < 3.0) {
    std::printf("warning: collect-phase speedup below the 3x target on this "
                "machine\n");
  }
  const double speedup_4 = rate_at_4 / base_rate;
  json.set("speedup_1_to_4", speedup_4);
  std::printf("\naggregate throughput scaling 1 -> 4 shards: %.2fx "
              "(acceptance target: >= 2x)\n",
              speedup_4);

  // Degraded mode: the same 4-shard fabric with one shard dead — its chunk
  // set re-routes onto the 3 survivors (ShardRouter::reroute), so capacity
  // gracefully steps down to roughly the N-1 line instead of the job
  // failing. This is the failover subsystem's throughput story.
  const RunResult degraded =
      run_once(4, kLanes, kValues, workers, kGbps, kLatencyUs,
               /*batched_collect=*/true, /*kill_shard=*/3);
  const double degraded_rate =
      static_cast<double>(kValues) / degraded.modeled_s;
  json.set("values_per_s_shards_4_degraded", degraded_rate);
  json.set("sim_wall_ms_shards_4_degraded", degraded.wall_ms);
  json.set("degraded_fraction_of_healthy_4", degraded_rate / rate_at_4);
  std::printf("degraded mode (4 shards, 1 dead): %.1fM values/s modeled = "
              "%.0f%% of the healthy 4-shard fabric (expect ~N-1/N)\n",
              degraded_rate / 1e6, 100.0 * degraded_rate / rate_at_4);

  // Telemetry overhead: the same 4-shard job with the registry kill switch
  // off vs on (every inc/observe collapses to a relaxed load + branch when
  // off). Acceptance: the instrumented run within 2% of the dark one —
  // wall times are noisy at ms scale, so take the best of a few reps and
  // warn rather than fail, like the other wall-clock targets.
  constexpr int kTelemetryReps = 5;
  const auto best_wall_ms = [&] {
    double best = 1e300;
    for (int i = 0; i < kTelemetryReps; ++i) {
      const RunResult r =
          run_once(4, kLanes, kValues, workers, kGbps, kLatencyUs);
      best = std::min(best, r.wall_ms);
    }
    return best;
  };
  telemetry::set_enabled(false);
  const double wall_off_ms = best_wall_ms();
  telemetry::set_enabled(true);
  const double wall_on_ms = best_wall_ms();
  const double rate_off = static_cast<double>(kValues) / (wall_off_ms * 1e-3);
  const double rate_on = static_cast<double>(kValues) / (wall_on_ms * 1e-3);
  const double overhead_pct = 100.0 * (wall_on_ms - wall_off_ms) / wall_off_ms;
  json.set("wall_values_per_s_shards_4_telemetry_off", rate_off);
  json.set("wall_values_per_s_shards_4_telemetry_on", rate_on);
  json.set("telemetry_overhead_pct", overhead_pct);
  std::printf("telemetry overhead, 4 shards (best of %d): off %.2f ms, on "
              "%.2f ms = %+.2f%% (acceptance target: <= 2%%)\n",
              kTelemetryReps, wall_off_ms, wall_on_ms, overhead_pct);
  if (overhead_pct > 2.0) {
    std::printf("warning: telemetry overhead above the 2%% target on this "
                "machine\n");
  }

  // Fault-injection overhead, two rows. With fault.enabled=false the
  // session/cluster datapath is the byte-for-byte legacy one (a single
  // branch guards the whole subsystem), so the "off" row vs the
  // instrumented baseline above must sit inside run-to-run noise —
  // acceptance: <= 2%. The "guard on, zero rates" row prices the guarded
  // datapath itself (per-packet epoch stamps + checksums + engine
  // pass-through) for anyone who wants detection always-armed.
  // The legs are interleaved (baseline, off, guard, baseline, ...) so
  // thermal/frequency drift across the process lands on all three
  // equally instead of inflating whichever leg runs last.
  double wall_fault_base_ms = 1e300, wall_fault_off_ms = 1e300,
         wall_guard_on_ms = 1e300;
  for (int i = 0; i < 2 * kTelemetryReps; ++i) {
    const auto leg = [&](bool guard) {
      return run_once(4, kLanes, kValues, workers, kGbps, kLatencyUs,
                      /*batched_collect=*/true, /*kill_shard=*/-1, guard)
          .wall_ms;
    };
    wall_fault_base_ms = std::min(wall_fault_base_ms, leg(false));
    wall_fault_off_ms = std::min(wall_fault_off_ms, leg(false));
    wall_guard_on_ms = std::min(wall_guard_on_ms, leg(true));
  }
  const double fault_off_pct =
      100.0 * (wall_fault_off_ms - wall_fault_base_ms) / wall_fault_base_ms;
  const double fault_guard_pct =
      100.0 * (wall_guard_on_ms - wall_fault_off_ms) / wall_fault_off_ms;
  json.set("wall_values_per_s_shards_4_fault_off",
           static_cast<double>(kValues) / (wall_fault_off_ms * 1e-3));
  json.set("wall_values_per_s_shards_4_fault_guard_on",
           static_cast<double>(kValues) / (wall_guard_on_ms * 1e-3));
  json.set("fault_off_overhead_pct", fault_off_pct);
  json.set("fault_guard_overhead_pct", fault_guard_pct);
  std::printf("fault injection off, 4 shards (best of %d): %.2f ms = "
              "%+.2f%% vs baseline (acceptance target: <= 2%%)\n",
              2 * kTelemetryReps, wall_fault_off_ms, fault_off_pct);
  if (fault_off_pct > 2.0) {
    std::printf("warning: fault-off overhead above the 2%% target on this "
                "machine\n");
  }
  std::printf("guarded datapath, zero fault rates: %.2f ms = %+.2f%% over "
              "fault-off (stamps + checksums, no recovery work)\n",
              wall_guard_on_ms, fault_guard_pct);

  // Continuity row: the pre-batching 2-lane geometry on one shard.
  const RunResult legacy =
      run_once(1, kLegacyLanes, kValues, workers, kGbps, kLatencyUs);
  const double legacy_rate = static_cast<double>(kValues) / legacy.modeled_s;
  json.set("values_per_s_shards_1_lanes2", legacy_rate);
  json.set("sim_wall_ms_shards_1_lanes2", legacy.wall_ms);
  std::printf("legacy 2-lane geometry, 1 shard: %.1fM values/s modeled "
              "(batched 32-lane: %.2fx over it)\n\n",
              legacy_rate / 1e6, base_rate / legacy_rate);

  std::printf("=== Two-level ToR->spine tree vs flat single switch ===\n");
  util::Table h({"Leaves", "Workers", "Tree done (ms)", "Flat done (ms)",
                 "Tree pkts", "Flat pkts", "Spine flows vs flat ports"});
  std::vector<double> tree_done, flat_done;
  for (const int leaves : {2, 4, 8}) {
    HierarchyOptions hopts;
    hopts.leaves = leaves;
    hopts.workers_per_leaf = 2;
    hopts.slots = 64;
    hopts.lanes = kLegacyLanes;
    hopts.link_gbps = kGbps;
    hopts.link_latency_us = kLatencyUs;
    collective::TreeCommunicator comm(hopts);
    HierarchicalAggregator& tree = comm.tree();

    const std::size_t n = 4096;
    const auto tw = make_workers(tree.total_workers(), n, 201);
    std::vector<float> out(n);
    (void)comm.allreduce(collective::WorkerViews(tw), out);
    const HierarchyTiming flat = flat_baseline_timing(hopts, n);
    tree_done.push_back(tree.timing().done_s);
    flat_done.push_back(flat.done_s);

    h.add_row({std::to_string(leaves), std::to_string(tree.total_workers()),
               util::Table::num(tree.timing().done_s * 1e3, 3),
               util::Table::num(flat.done_s * 1e3, 3),
               std::to_string(tree.timing().packets),
               std::to_string(flat.packets),
               std::to_string(leaves) + " vs " +
                   std::to_string(tree.total_workers())});
    json.set("tree_done_ms_leaves_" + std::to_string(leaves),
             tree.timing().done_s * 1e3);
    json.set("flat_done_ms_leaves_" + std::to_string(leaves),
             flat.done_s * 1e3);
  }
  std::printf("%s", h.render().c_str());
  std::printf("\nfan-in through the shared switch pipeline is what varies "
              "with topology: the tree's root terminates `leaves` flows "
              "while the flat switch's one pipeline absorbs every worker — "
              "that is what lets aggregation outgrow a single switch.\n");

  // Guard against the timing model degenerating into constants again: the
  // completion times must actually respond to the leaf count.
  for (std::size_t i = 1; i < tree_done.size(); ++i) {
    if (tree_done[i] == tree_done[i - 1] || flat_done[i] == flat_done[i - 1]) {
      std::printf("ERROR: hierarchy timing is degenerate across leaf "
                  "counts (tree %g vs %g, flat %g vs %g)\n",
                  tree_done[i - 1], tree_done[i], flat_done[i - 1],
                  flat_done[i]);
      return 1;
    }
  }

  // Embed the registry's end-of-run state so BENCH json carries the
  // fabric's metric samples (packets, ops taxonomy, phase histograms).
  json.set_raw("telemetry", telemetry::snapshot().json());

  if (!json.write()) std::printf("warning: could not write BENCH json\n");
  return 0;
}
