// Ablation: the design choices DESIGN.md calls out.
//  (a) FPISA-A error vs left-shift headroom (register width sweep)
//  (b) guard bits vs aggregation error (rounding-mode interaction)
//  (c) switch throughput leverage: values per packet with the 2-operand
//      shift extension (instances-per-pipeline from the allocator)
#include <cmath>
#include <cstdio>

#include "core/accumulator.h"
#include "pisa/fpisa_program.h"
#include "pisa/resources.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace fpisa;
  std::printf("=== Ablations ===\n\n");
  util::BenchJson json("ablation_headroom");

  // (a) Headroom sweep: aggregate 64 gradient-like values into registers of
  // different widths; fewer headroom bits -> more overwrite error.
  {
    std::printf("--- (a) FPISA-A error vs headroom (register width sweep) ---\n");
    util::Table t({"reg bits", "headroom", "mean |err| / |sum|",
                   "overwrite rate"});
    for (const int reg_bits : {26, 28, 32, 40, 48}) {
      util::Rng rng(70);
      double rel_err = 0;
      std::uint64_t overwrites = 0;
      std::uint64_t adds = 0;
      const int trials = 3000;
      for (int trial = 0; trial < trials; ++trial) {
        core::AccumulatorConfig cfg;
        cfg.variant = core::Variant::kApproximate;
        cfg.reg_bits = reg_bits;
        core::FpisaAccumulator acc(cfg);
        double ref = 0;
        for (int i = 0; i < 64; ++i) {
          const float v = static_cast<float>(
              (rng.next_u64() & 1 ? 1 : -1) * rng.lognormal(-3.0, 2.0));
          acc.add(v);
          ref += static_cast<double>(v);
        }
        rel_err += std::fabs(static_cast<double>(acc.read()) - ref) /
                   (std::fabs(ref) + 1e-12);
        overwrites += acc.counters().overwrites;
        adds += acc.counters().adds;
      }
      core::AccumulatorConfig cfg;
      cfg.reg_bits = reg_bits;
      t.add_row({std::to_string(reg_bits), std::to_string(cfg.headroom()),
                 util::Table::num(rel_err / trials, 6),
                 util::Table::pct(static_cast<double>(overwrites) /
                                      static_cast<double>(adds),
                                  2)});
      json.set("rel_err_reg" + std::to_string(reg_bits), rel_err / trials);
      json.set("overwrite_rate_reg" + std::to_string(reg_bits),
               static_cast<double>(overwrites) / static_cast<double>(adds));
    }
    std::printf("%s\n", t.render().c_str());
  }

  // (b) Guard bits: same stream, error vs guard configuration.
  {
    std::printf("--- (b) guard bits + read rounding vs error ---\n");
    util::Table t({"guard bits", "read rounding", "mean |err|"});
    struct Cfg {
      int guard;
      core::Rounding r;
      const char* name;
    };
    const Cfg cfgs[] = {{0, core::Rounding::kTowardZero, "truncate"},
                        {2, core::Rounding::kNearestEven, "RNE"},
                        {4, core::Rounding::kNearestEven, "RNE"}};
    for (const auto& c : cfgs) {
      util::Rng rng(71);
      double err = 0;
      const int trials = 3000;
      for (int trial = 0; trial < trials; ++trial) {
        core::AccumulatorConfig cfg;
        cfg.guard_bits = c.guard;
        cfg.read_rounding = c.r;
        core::FpisaAccumulator acc(cfg);
        double ref = 0;
        for (int i = 0; i < 16; ++i) {
          const float v = static_cast<float>(rng.uniform(0.5, 2.0));
          acc.add(v);
          ref += static_cast<double>(v);
        }
        err += std::fabs(static_cast<double>(acc.read()) - ref);
      }
      t.add_row({std::to_string(c.guard), c.name,
                 util::Table::num(err / trials * 1e7, 3) + "e-7"});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // (c) Parallelism unlocked by the shift extension.
  {
    std::printf("--- (c) FPISA modules per pipeline (allocator) ---\n");
    pisa::FpisaProgramOptions opts;
    opts.variant = core::Variant::kApproximate;
    pisa::SwitchConfig base;
    pisa::SwitchConfig ext = base;
    ext.ext.two_operand_shift = true;
    ext.ext.rsaw = true;
    const int n0 = pisa::max_instances(
        pisa::fpisa_resource_descriptors(base, opts), base);
    const int n1 =
        pisa::max_instances(pisa::fpisa_resource_descriptors(ext, opts), ext);
    std::printf("baseline Tofino: %d module(s); with 2-operand shift: %d "
                "modules -> %dx more FP values per packet at line rate\n",
                n0, n1, n1 / (n0 ? n0 : 1));
    json.set("modules_baseline", n0);
    json.set("modules_extended", n1);
  }
  json.write();
  return 0;
}
