// Fig 8: FPISA-A aggregation error (absolute, vs double-precision exact)
// at the early / middle / final stages of a real training run, plus the
// error-source breakdown (§5.2.1: rounding dominates; overwrite < 0.9% and
// left-shift < 0.1% of operations).
#include <cmath>
#include <cstdio>

#include "core/vector_accumulator.h"
#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "switchml/aggregator.h"
#include "util/bench_json.h"
#include "util/stats.h"

int main() {
  using namespace fpisa;
  std::printf("=== Fig 8: FPISA-A aggregation error across training stages ===\n\n");

  const ml::Dataset ds = ml::make_blobs(6, 24, 2048, 128, 8);
  ml::Network net = ml::make_mlp(24, 48, 6, 9);
  switchml::ExactAggregator exact;
  ml::TrainerOptions opts;
  opts.batch_per_worker = 8;
  ml::DataParallelTrainer trainer(net, ds, exact, opts);

  const int kEpochs[] = {1, 20, 40};
  int next = 0;
  core::OpCounters totals;
  for (int epoch = 1; epoch <= 40 && next < 3; ++epoch) {
    const bool capture = epoch == kEpochs[next];
    util::Log2Histogram err_hist(-70, 0);  // |error| in 2^-70 .. 1
    core::OpCounters epoch_counters;

    trainer.train_epoch([&](const std::vector<std::vector<float>>& grads) {
      if (!capture) return;
      core::AccumulatorConfig cfg;
      cfg.variant = core::Variant::kApproximate;
      core::FpisaVector acc(grads.front().size(), cfg);
      std::vector<double> ref(grads.front().size(), 0.0);
      for (const auto& g : grads) {
        acc.add(g);
        for (std::size_t i = 0; i < g.size(); ++i) {
          ref[i] += static_cast<double>(g[i]);
        }
      }
      std::vector<float> out(ref.size());
      acc.read(out);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        const double e = std::fabs(static_cast<double>(out[i]) - ref[i]);
        if (e > 0) err_hist.add(e);
      }
      epoch_counters += acc.counters();
    });

    if (capture) {
      std::printf("--- epoch %d (%llu nonzero errors) ---\n", epoch,
                  static_cast<unsigned long long>(err_hist.total()));
      std::vector<std::pair<std::string, double>> bars;
      for (int e = -66; e <= -6; e += 10) {
        double f = 0;
        for (std::size_t b = 0; b < err_hist.buckets(); ++b) {
          const int lo = err_hist.bucket_log2_lo(b);
          if (lo >= e && lo < e + 10) f += err_hist.frequency(b);
        }
        char label[48];
        std::snprintf(label, sizeof label, "1e%+03d..1e%+03d",
                      static_cast<int>(e * 0.30103),
                      static_cast<int>((e + 10) * 0.30103));
        bars.emplace_back(label, f);
      }
      std::printf("%s", util::ascii_bars(bars).c_str());
      const auto& c = epoch_counters;
      std::printf("events: adds=%llu rounded=%.2f%% overwrite=%.3f%% "
                  "left-shift=%.3f%% (paper: <0.9%% / <0.1%%)\n\n",
                  static_cast<unsigned long long>(c.adds),
                  100.0 * static_cast<double>(c.rounded_adds) / c.adds,
                  100.0 * static_cast<double>(c.overwrites) / c.adds,
                  100.0 * static_cast<double>(c.lshift_overflows) / c.adds);
      totals += c;
      ++next;
    }
  }
  std::printf(
      "shape check vs paper: error distribution stable across "
      "early/middle/final stages. Overwrite/left-shift/saturation events "
      "(%.2f%%/%.2f%%/%.2f%% of adds) are more frequent than the paper's "
      "<0.9%%/<0.1%% because our small-model gradients have the wider "
      "Fig 7 ratio spread; the library's saturating registers clamp and "
      "count them (the paper's 8-worker setting keeps them near zero).\n",
      100.0 * static_cast<double>(totals.overwrites) / totals.adds,
      100.0 * static_cast<double>(totals.lshift_overflows) / totals.adds,
      100.0 * static_cast<double>(totals.saturations) / totals.adds);

  util::BenchJson json("fig08_error_dist");
  json.set("adds", static_cast<double>(totals.adds));
  json.set("rounded_frac",
           static_cast<double>(totals.rounded_adds) / totals.adds);
  json.set("overwrite_frac",
           static_cast<double>(totals.overwrites) / totals.adds);
  json.set("lshift_frac",
           static_cast<double>(totals.lshift_overflows) / totals.adds);
  json.set("saturation_frac",
           static_cast<double>(totals.saturations) / totals.adds);
  json.write();
  return 0;
}
