// Fig 6: single-core endianness-conversion rate vs the rate needed for
// 100 Gbps line rate, per FP format. Measured live on this machine.
#include <cmath>
#include <cstdio>

#include "host/endianness.h"
#include "util/bench_json.h"
#include "util/table.h"

int main() {
  using namespace fpisa;
  std::printf("=== Fig 6: endianness conversion rate vs 100 Gbps line rate ===\n");
  std::printf("(paper: 2.3 GHz Xeon, DPDK per-element APIs; this run: live "
              "measurement on the current CPU)\n\n");

  const host::MeasuredRates r = host::measure_host_rates(80.0);

  util::Table t({"Format", "Scalar rate (x1e9/s)", "SIMD rate (x1e9/s)",
                 "Desired for 100Gbps (x1e9/s)", "Cores needed (scalar)",
                 "Cores needed (SIMD)"});
  struct Row {
    const char* fmt;
    double scalar, simd;
    int bits;
  };
  const Row rows[] = {
      {"FP16", r.bswap16_scalar_eps, r.bswap16_vector_eps, 16},
      {"FP32", r.bswap32_scalar_eps, r.bswap32_vector_eps, 32},
      {"FP64", r.bswap64_scalar_eps, r.bswap64_vector_eps, 64},
  };
  util::BenchJson json("fig06_endianness");
  for (const Row& row : rows) {
    const double desired = host::desired_rate_eps(100.0, row.bits);
    t.add_row({row.fmt, util::Table::num(row.scalar / 1e9, 2),
               util::Table::num(row.simd / 1e9, 2),
               util::Table::num(desired / 1e9, 2),
               util::Table::num(std::ceil(desired / row.scalar), 0),
               util::Table::num(std::ceil(desired / row.simd), 0)});
    json.set(std::string(row.fmt) + "_scalar_eps", row.scalar);
    json.set(std::string(row.fmt) + "_simd_eps", row.simd);
    json.set(std::string(row.fmt) + "_cores_scalar",
             std::ceil(desired / row.scalar));
  }
  json.set("quantize_eps", r.quantize_eps);
  json.set("dequantize_eps", r.dequantize_eps);
  json.write();
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nPaper's observation holds when conversion is per-element (DPDK "
      "API): the gap to line rate is largest for FP16 (paper: >= 11 cores). "
      "SwitchML additionally pays quantize/dequantize: %.2f / %.2f x1e9 "
      "elements/s per core (scalar), %.2f / %.2f with SIMD.\n",
      r.quantize_eps / 1e9, r.dequantize_eps / 1e9,
      r.quantize_vector_eps / 1e9, r.dequantize_vector_eps / 1e9);
  return 0;
}
