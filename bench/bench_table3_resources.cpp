// Table 3 (Appendix B): FPISA's Tofino resource utilization from the
// allocator, and the instances-per-pipeline result with and without the
// §4.2 two-operand-shift extension.
#include <cstdio>

#include "pisa/fpisa_program.h"
#include "pisa/resources.h"
#include "util/bench_json.h"

int main() {
  using namespace fpisa::pisa;
  std::printf("=== Table 3: FPISA resource utilization (one module) ===\n\n");

  FpisaProgramOptions opts;
  opts.variant = fpisa::core::Variant::kApproximate;

  SwitchConfig baseline;  // today's Tofino
  const auto base_descs = fpisa_resource_descriptors(baseline, opts);
  std::printf("--- baseline Tofino ---\n%s",
              analyze(base_descs, baseline).render().c_str());
  std::printf("paper: SRAM 1.15%%/5.00%%, TCAM 0.03%%/4.17%%, sALU "
              "8.33%%/50%%, VLIW 19.01%%/96.88%%, xbar 0.09%%/4.38%%, "
              "result bus 2.34%%/12.50%%, hash 1.06%%/7.93%%; 9 of 12 stages\n\n");

  SwitchConfig extended = baseline;
  extended.ext.two_operand_shift = true;
  extended.ext.rsaw = true;
  extended.ext.parser_endianness = true;
  const auto ext_descs = fpisa_resource_descriptors(extended, opts);
  std::printf("--- with the 2-operand-shift extension (Sec 4.2) ---\n%s\n",
              analyze(ext_descs, extended).render().c_str());

  const int n_base = max_instances(base_descs, baseline);
  const int n_ext = max_instances(ext_descs, extended);
  std::printf("FPISA modules per pipeline: baseline = %d (paper: 1 — "
              "per-stage VLIW pressure from emulated variable shifts), "
              "extended = %d (the paper's motivation for the proposed shift "
              "instruction)\n",
              n_base, n_ext);

  fpisa::util::BenchJson json("table3_resources");
  json.set("modules_per_pipeline_baseline", n_base);
  json.set("modules_per_pipeline_extended", n_ext);
  json.write();
  return 0;
}
