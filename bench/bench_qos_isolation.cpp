// Multi-tenant QoS isolation: victim-tenant job latency under aggressor
// load, with and without the admission/QoS plane.
//
// One 4-shard cluster, one job-runner thread — so the shared resource
// under contention is the job queue itself (head-of-line blocking), which
// makes the experiment meaningful on any host including single-core CI
// runners. The victim is a training tenant submitting medium allreduce
// jobs and timing submit -> result; the aggressor is a telemetry tenant
// keeping a deep backlog of smaller jobs queued at all times.
//
// Four phases, fresh service each:
//   baseline      QoS off, no aggressor   (uncontended floor)
//   qos_idle      QoS on,  no aggressor   (prices the admission plane)
//   unthrottled   QoS off, aggressor on   (FIFO: victim waits the backlog)
//   qos           QoS on,  aggressor on   (WDRR: training overtakes)
//
// Acceptance (checked by scripts/check_qos_isolation.py): victim p99 with
// QoS on stays within 2x of the uncontended baseline while the
// unthrottled phase shows real degradation — the isolation the subsystem
// exists to provide.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "cluster/aggregation_service.h"
#include "qos/qos.h"
#include "telemetry/metrics.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace fpisa;
using cluster::AggregationService;
using cluster::ClusterOptions;
using cluster::JobReport;
using cluster::JobRequest;

constexpr int kVictimSamples = 40;
constexpr std::size_t kAggressorDepth = 24;  ///< queued jobs kept pending
constexpr std::size_t kVictimValues = 16384;
constexpr std::size_t kAggressorValues = 4096;

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(pos + 0.5)];
}

struct PhaseResult {
  std::vector<double> victim_ms;
  std::vector<double> aggressor_ms;
  std::uint64_t aggressor_submitted = 0;
  std::uint64_t aggressor_completed = 0;
  std::uint64_t aggressor_rejected = 0;
};

PhaseResult run_phase(bool qos_on, bool contended) {
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 64;
  opts.slots_per_job = 16;
  opts.loss_rate = 0.0;
  opts.job_runner_threads = 1;  // the contended resource: one runner
  if (qos_on) {
    opts.qos.enabled = true;
    qos::TenantQosConfig victim;
    victim.priority = qos::Priority::kTraining;
    qos::TenantQosConfig aggressor;
    aggressor.priority = qos::Priority::kTelemetry;
    aggressor.max_queued_jobs = 4 * kAggressorDepth;
    opts.qos.tenants["victim"] = victim;
    opts.qos.tenants["aggressor"] = aggressor;
  }
  AggregationService svc(opts);

  const auto victim_workers = make_workers(2, kVictimValues, 41);
  const auto aggressor_workers = make_workers(2, kAggressorValues, 43);
  svc.submit(JobRequest{"victim", victim_workers}).get();  // warm-up

  using Clock = std::chrono::steady_clock;
  struct Pending {
    std::future<JobReport> fut;
    Clock::time_point t0;
  };
  std::deque<Pending> backlog;
  PhaseResult r;

  // Jobs within one tenant finish FIFO (same WDRR class), so the front of
  // the deque is always the next to complete.
  const auto drain_ready = [&] {
    while (!backlog.empty() &&
           backlog.front().fut.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      r.aggressor_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    backlog.front().t0)
              .count());
      backlog.front().fut.get();
      ++r.aggressor_completed;
      backlog.pop_front();
    }
  };
  const auto top_up = [&] {
    drain_ready();
    while (backlog.size() < kAggressorDepth) {
      try {
        const auto t0 = Clock::now();
        backlog.push_back(
            {svc.submit(JobRequest{"aggressor", aggressor_workers}), t0});
        ++r.aggressor_submitted;
      } catch (const qos::AdmissionRejectedError&) {
        ++r.aggressor_rejected;
        break;  // queue bound hit; sample against what is queued
      }
    }
  };

  for (int i = 0; i < kVictimSamples; ++i) {
    if (contended) top_up();
    const auto t0 = Clock::now();
    svc.submit(JobRequest{"victim", victim_workers}).get();
    r.victim_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count());
  }
  while (!backlog.empty()) {
    backlog.front().fut.wait();
    drain_ready();
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== Multi-tenant QoS isolation: victim latency under "
              "aggressor load ===\n\n");
  std::printf("1 runner thread, 4 shards; victim %zu values (training), "
              "aggressor backlog of %zu x %zu-value jobs (telemetry)\n\n",
              kVictimValues, kAggressorDepth, kAggressorValues);

  const PhaseResult baseline = run_phase(/*qos_on=*/false, false);
  const PhaseResult qos_idle = run_phase(/*qos_on=*/true, false);
  const PhaseResult unthrottled = run_phase(/*qos_on=*/false, true);
  const PhaseResult qos = run_phase(/*qos_on=*/true, true);

  const double base_p50 = percentile(baseline.victim_ms, 0.50);
  const double base_p99 = percentile(baseline.victim_ms, 0.99);
  const double ratio_unthrottled =
      percentile(unthrottled.victim_ms, 0.99) / base_p99;
  const double ratio_qos = percentile(qos.victim_ms, 0.99) / base_p99;

  util::BenchJson json("qos_isolation");
  json.set("host_cpus",
           static_cast<double>(std::thread::hardware_concurrency()));
  json.set("victim_samples", static_cast<double>(kVictimSamples));
  json.set("aggressor_depth", static_cast<double>(kAggressorDepth));

  util::Table t({"Phase", "QoS", "Victim p50 (ms)", "Victim p99 (ms)",
                 "p99 vs baseline", "Aggr p50 (ms)", "Aggr done/rej"});
  const auto row = [&](const char* phase, const char* key, bool on,
                       const PhaseResult& r) {
    const double p50 = percentile(r.victim_ms, 0.50);
    const double p99 = percentile(r.victim_ms, 0.99);
    t.add_row({phase, on ? "on" : "off", util::Table::num(p50, 2),
               util::Table::num(p99, 2),
               util::Table::num(p99 / base_p99, 2) + "x",
               r.aggressor_ms.empty()
                   ? "-"
                   : util::Table::num(percentile(r.aggressor_ms, 0.50), 2),
               std::to_string(r.aggressor_completed) + "/" +
                   std::to_string(r.aggressor_rejected)});
    json.set(std::string("victim_p50_ms_") + key, p50);
    json.set(std::string("victim_p99_ms_") + key, p99);
    if (!r.aggressor_ms.empty()) {
      json.set(std::string("aggressor_p50_ms_") + key,
               percentile(r.aggressor_ms, 0.50));
      json.set(std::string("aggressor_p99_ms_") + key,
               percentile(r.aggressor_ms, 0.99));
    }
    json.set(std::string("aggressor_submitted_") + key,
             static_cast<double>(r.aggressor_submitted));
    json.set(std::string("aggressor_completed_") + key,
             static_cast<double>(r.aggressor_completed));
    json.set(std::string("aggressor_rejected_") + key,
             static_cast<double>(r.aggressor_rejected));
  };
  row("uncontended", "uncontended", false, baseline);
  row("qos idle", "qos_idle", true, qos_idle);
  row("unthrottled", "unthrottled", false, unthrottled);
  row("qos", "qos", true, qos);
  std::printf("%s", t.render().c_str());

  json.set("victim_p99_ratio_unthrottled", ratio_unthrottled);
  json.set("victim_p99_ratio_qos", ratio_qos);
  json.set("qos_isolation_speedup", ratio_unthrottled / ratio_qos);
  const double idle_overhead_pct =
      100.0 * (percentile(qos_idle.victim_ms, 0.50) - base_p50) / base_p50;
  json.set("qos_idle_overhead_pct", idle_overhead_pct);

  std::printf("\nvictim p99 vs uncontended: unthrottled %.1fx, qos %.1fx "
              "(acceptance: qos <= 2x while unthrottled degrades)\n",
              ratio_unthrottled, ratio_qos);
  std::printf("admission plane idle overhead: %+.1f%% on victim p50\n",
              idle_overhead_pct);
  if (ratio_qos > 2.0) {
    std::printf("warning: QoS victim p99 above the 2x isolation target on "
                "this machine\n");
  }

  // Embed the registry so BENCH json carries the qos_* series (admission
  // queue depths, per-class picks/admissions, reject taxonomy) alongside
  // the fabric metrics.
  json.set_raw("telemetry", telemetry::snapshot().json());
  if (!json.write()) std::printf("warning: could not write BENCH json\n");
  return 0;
}
