// PISA simulator building blocks: PHV, actions, tables, stateful ALUs,
// parser/deparser.
#include <gtest/gtest.h>

#include "pisa/action.h"
#include "pisa/phv.h"
#include "pisa/pipeline.h"
#include "pisa/salu.h"
#include "pisa/table.h"

namespace fpisa::pisa {
namespace {

TEST(Phv, FieldWidthsMaskAndSignExtend) {
  PhvLayout layout;
  const FieldId f8 = layout.declare("f8", 8);
  const FieldId f16 = layout.declare("f16", 16);
  const FieldId f32 = layout.declare("f32", 32);
  Phv phv(layout);

  phv.set(f8, 0x1FF);
  EXPECT_EQ(phv.get(f8), 0xFFu);  // masked to 8 bits
  phv.set(f16, 0xFFFE);
  EXPECT_EQ(phv.get_signed(f16), -2);  // sign-extended
  phv.set(f32, 0x80000000u);
  EXPECT_EQ(phv.get_signed(f32), -2147483648LL);
  EXPECT_EQ(layout.find("f16").index, f16.index);
  EXPECT_FALSE(layout.find("nope").valid());
}

TEST(Action, ArithmeticAndLogicOps) {
  PhvLayout layout;
  const FieldId a = layout.declare("a", 32);
  const FieldId b = layout.declare("b", 32);
  const FieldId c = layout.declare("c", 32);
  Phv phv(layout);
  phv.set(a, 100);
  phv.set(b, 7);

  auto run = [&](OpCode op, std::int64_t imm = 0, std::int64_t imm2 = 0) {
    Action act{"t", {PrimOp{op, c, a, b, imm, imm2}}};
    apply_action(act, phv, /*shift_extension=*/true);
    return phv.get(c);
  };
  EXPECT_EQ(run(OpCode::kAdd), 107u);
  EXPECT_EQ(run(OpCode::kSub), 93u);
  EXPECT_EQ(run(OpCode::kAnd), 100u & 7u);
  EXPECT_EQ(run(OpCode::kOr), 100u | 7u);
  EXPECT_EQ(run(OpCode::kXor), 100u ^ 7u);
  EXPECT_EQ(run(OpCode::kShlImm, 3), 800u);
  EXPECT_EQ(run(OpCode::kShrImm, 2), 25u);
  EXPECT_EQ(run(OpCode::kAddImm, 5), 105u);
  EXPECT_EQ(run(OpCode::kMinImm, 50), 50u);
  EXPECT_EQ(run(OpCode::kMaxImm, 500), 500u);
  EXPECT_EQ(run(OpCode::kExtractBits, 2, 4), (100u >> 2) & 0xF);
  // 2-operand shifts take the distance from a field.
  EXPECT_EQ(run(OpCode::kShlField), 100u << 7);
  EXPECT_EQ(run(OpCode::kShrField), 100u >> 7);
}

TEST(Action, ArithmeticShiftAndNegWrapAtFieldWidth) {
  PhvLayout layout;
  const FieldId a = layout.declare("a", 32);
  const FieldId c = layout.declare("c", 32);
  Phv phv(layout);
  phv.set(a, 0xFFFFFFF0u);  // -16 as 32-bit
  Action asr{"t", {PrimOp{OpCode::kAsrImm, c, a, {}, 2, 0}}};
  apply_action(asr, phv, false);
  EXPECT_EQ(phv.get_signed(c), -4);
  Action neg{"t", {PrimOp{OpCode::kNeg, c, a, {}, 0, 0}}};
  apply_action(neg, phv, false);
  EXPECT_EQ(phv.get_signed(c), 16);
}

TEST(Action, DepositBuildsPackedWords) {
  PhvLayout layout;
  const FieldId sign = layout.declare("sign", 8);
  const FieldId exp = layout.declare("exp", 16);
  const FieldId man = layout.declare("man", 32);
  const FieldId out = layout.declare("out", 32);
  Phv phv(layout);
  phv.set(sign, 1);
  phv.set(exp, 128);
  phv.set(man, 0xC00000 | 0xFF000000);  // upper junk must be masked out
  Action pack{"pack",
              {PrimOp{OpCode::kSetImm, out, {}, {}, 0, 0},
               PrimOp{OpCode::kDeposit, out, man, {}, 0, 23},
               PrimOp{OpCode::kDeposit, out, exp, {}, 23, 8},
               PrimOp{OpCode::kDeposit, out, sign, {}, 31, 1}}};
  apply_action(pack, phv, false);
  EXPECT_EQ(phv.get(out), 0x80000000u | (128u << 23) | 0x400000u);
}

TEST(Table, ExactMatchAndDefault) {
  PhvLayout layout;
  const FieldId k = layout.declare("k", 8);
  const FieldId v = layout.declare("v", 8);
  Action hit{"hit", {PrimOp{OpCode::kSetImm, v, {}, {}, 1, 0}}};
  Action miss{"miss", {PrimOp{OpCode::kSetImm, v, {}, {}, 2, 0}}};
  MatchTable t("t", MatchKind::kExact, {k}, {hit, miss}, 1);
  t.add_entry({{42}, {}, 0});

  Phv phv(layout);
  phv.set(k, 42);
  apply_action(*t.lookup(phv), phv, false);
  EXPECT_EQ(phv.get(v), 1u);
  phv.set(k, 43);
  apply_action(*t.lookup(phv), phv, false);
  EXPECT_EQ(phv.get(v), 2u);
}

TEST(Table, TernaryPriorityOrder) {
  PhvLayout layout;
  const FieldId k = layout.declare("k", 16);
  const FieldId v = layout.declare("v", 8);
  Action a0{"a0", {PrimOp{OpCode::kSetImm, v, {}, {}, 10, 0}}};
  Action a1{"a1", {PrimOp{OpCode::kSetImm, v, {}, {}, 20, 0}}};
  MatchTable t("t", MatchKind::kTernary, {k}, {a0, a1}, -1);
  t.add_entry({{0x0100}, {0x0100}, 0});  // bit 8 set
  t.add_entry({{0x0000}, {0x0000}, 1});  // catch-all, lower priority

  Phv phv(layout);
  phv.set(k, 0x0123);
  apply_action(*t.lookup(phv), phv, false);
  EXPECT_EQ(phv.get(v), 10u);  // first (higher priority) entry wins
  phv.set(k, 0x0023);
  apply_action(*t.lookup(phv), phv, false);
  EXPECT_EQ(phv.get(v), 20u);
}

TEST(Table, NoMatchNoDefaultIsNoOp) {
  PhvLayout layout;
  const FieldId k = layout.declare("k", 8);
  MatchTable t("t", MatchKind::kExact, {k}, {Action{"a", {}}}, -1);
  Phv phv(layout);
  phv.set(k, 5);
  EXPECT_EQ(t.lookup(phv), nullptr);
}

TEST(Salu, MenuSemantics) {
  PhvLayout layout;
  const FieldId idx = layout.declare("idx", 16);
  const FieldId x = layout.declare("x", 32);
  const FieldId out = layout.declare("out", 32);
  Phv phv(layout);
  phv.set(idx, 3);
  phv.set(x, 10);

  RegisterArray reg("r", 32, 8);
  reg.write(3, 5);

  auto run = [&](SaluKind kind) {
    reg.begin_packet();
    SaluSpec s;
    s.kind = kind;
    s.index = idx;
    s.x = x;
    s.out = out;
    apply_salu(s, reg, phv, /*rsaw=*/true);
    return phv.get(out);
  };
  EXPECT_EQ(run(SaluKind::kReadOnly), 5u);
  EXPECT_EQ(run(SaluKind::kAddX), 15u);       // out = new
  EXPECT_EQ(run(SaluKind::kMaxX), 15u);       // out = old; reg stays 15
  EXPECT_EQ(reg.read(3), 15u);
  EXPECT_EQ(run(SaluKind::kMinX), 15u);       // reg becomes 10
  EXPECT_EQ(reg.read(3), 10u);
  EXPECT_EQ(run(SaluKind::kWriteX), 10u);     // out = old
  EXPECT_EQ(run(SaluKind::kClear), 10u);
  EXPECT_EQ(reg.read(3), 0u);
  EXPECT_EQ(run(SaluKind::kIncrement), 1u);
  EXPECT_EQ(run(SaluKind::kOrX), 1u);  // old value emitted
  EXPECT_EQ(reg.read(3), 1u | 10u);
}

TEST(Salu, ExpUpdatePredicates) {
  PhvLayout layout;
  const FieldId idx = layout.declare("idx", 16);
  const FieldId x = layout.declare("x", 16);
  const FieldId out = layout.declare("out", 16);
  Phv phv(layout);
  phv.set(idx, 0);
  RegisterArray reg("e", 8, 4);
  reg.write(0, 100);

  SaluSpec s;
  s.kind = SaluKind::kExpUpdate;
  s.index = idx;
  s.x = x;
  s.out = out;
  s.imm = 7;  // FPISA-A headroom predicate

  phv.set(x, 104);  // within headroom: no write
  reg.begin_packet();
  apply_salu(s, reg, phv, false);
  EXPECT_EQ(reg.read(0), 100u);
  EXPECT_EQ(phv.get(out), 100u);

  phv.set(x, 120);  // beyond headroom: overwrite
  reg.begin_packet();
  apply_salu(s, reg, phv, false);
  EXPECT_EQ(reg.read(0), 120u);
  EXPECT_EQ(phv.get(out), 100u);  // old value emitted
}

TEST(Salu, ManUpdateCodes) {
  PhvLayout layout;
  const FieldId idx = layout.declare("idx", 16);
  const FieldId x = layout.declare("x", 32);
  const FieldId code = layout.declare("code", 8);
  const FieldId dist = layout.declare("dist", 8);
  const FieldId out = layout.declare("out", 32);
  Phv phv(layout);
  phv.set(idx, 0);
  RegisterArray reg("m", 32, 4);

  SaluSpec s;
  s.kind = SaluKind::kManUpdate;
  s.index = idx;
  s.x = x;
  s.code = code;
  s.distance = dist;
  s.out = out;

  reg.write(0, 100);
  phv.set(x, 20);
  phv.set(code, 0);  // add
  reg.begin_packet();
  apply_salu(s, reg, phv, true);
  EXPECT_EQ(reg.read(0), 120u);

  phv.set(code, 1);  // overwrite
  reg.begin_packet();
  apply_salu(s, reg, phv, true);
  EXPECT_EQ(reg.read(0), 20u);

  reg.write(0, 0x80);  // 128
  phv.set(code, 2);    // RSAW: reg = (reg >> 3) + x
  phv.set(dist, 3);
  reg.begin_packet();
  apply_salu(s, reg, phv, true);
  EXPECT_EQ(reg.read(0), 16u + 20u);
}

TEST(Salu, RegisterWrapsAtWidth) {
  PhvLayout layout;
  const FieldId idx = layout.declare("idx", 16);
  const FieldId x = layout.declare("x", 32);
  Phv phv(layout);
  phv.set(idx, 0);
  phv.set(x, 1);
  RegisterArray reg("m", 32, 1);
  reg.write(0, 0x7FFFFFFFu);
  SaluSpec s;
  s.kind = SaluKind::kAddX;
  s.index = idx;
  s.x = x;
  reg.begin_packet();
  apply_salu(s, reg, phv, false);
  // Two's complement wrap: exactly what hardware does (§3.3 overflow).
  EXPECT_EQ(reg.read(0), 0x80000000u);
  EXPECT_EQ(reg.read_signed(0), -2147483648LL);
}

TEST(Pipeline, RecirculationAllowsRepeatedRegisterAccess) {
  // Paper §2.3 footnote: recirculation is the (expensive) exception to the
  // once-per-packet register rule. One injected packet with recirc=2
  // performs three stateful increments.
  SwitchProgram prog;
  const FieldId recirc = prog.phv.declare("recirc", 8);
  const FieldId idx = prog.phv.declare("idx", 8);
  const FieldId out = prog.phv.declare("out", 32);
  prog.recirc_field = recirc;
  prog.parser.push_back({recirc, 0, 1, false});
  prog.deparser.push_back({out, 1, 4, false});
  prog.add_register("counter", 32, 4);

  prog.ingress.resize(1);
  SaluSpec spec;
  spec.kind = SaluKind::kIncrement;
  spec.index = idx;
  spec.out = out;
  prog.ingress[0].salus.push_back({{}, 0, spec, 0, {}, 0});
  prog.ingress[0].salu_post_ops.push_back({"", {}});

  SwitchSim sim(SwitchConfig{}, std::move(prog));
  Packet pkt;
  pkt.bytes.assign(5, 0);
  pkt.bytes[0] = 2;  // recirculate twice
  sim.process(pkt);
  EXPECT_EQ(sim.reg(0).read(0), 3u);  // initial pass + 2 recirculations
  EXPECT_EQ(read_be(&pkt.bytes[1], 4), 3u);
  EXPECT_EQ(sim.recirculations(), 2u);

  // Without the recirc request the same program increments once.
  Packet pkt2;
  pkt2.bytes.assign(5, 0);
  sim.process(pkt2);
  EXPECT_EQ(sim.reg(0).read(0), 4u);
  EXPECT_EQ(sim.recirculations(), 2u);
}

TEST(Pipeline, RecirculationIsBounded) {
  // A runaway recirc request is clamped at kMaxRecirculations — the
  // "bandwidth constrained" part of the paper's caveat.
  SwitchProgram prog;
  const FieldId recirc = prog.phv.declare("recirc", 8);
  const FieldId idx = prog.phv.declare("idx", 8);
  prog.recirc_field = recirc;
  prog.parser.push_back({recirc, 0, 1, false});
  prog.add_register("counter", 32, 1);
  prog.ingress.resize(1);
  SaluSpec spec;
  spec.kind = SaluKind::kIncrement;
  spec.index = idx;
  prog.ingress[0].salus.push_back({{}, 0, spec, 0, {}, 0});
  prog.ingress[0].salu_post_ops.push_back({"", {}});

  SwitchSim sim(SwitchConfig{}, std::move(prog));
  Packet pkt;
  pkt.bytes.assign(1, 200);  // absurd recirculation request
  sim.process(pkt);
  EXPECT_EQ(sim.reg(0).read(0),
            1u + static_cast<unsigned>(SwitchSim::kMaxRecirculations));
}

TEST(Packets, BigEndianHelpers) {
  std::uint8_t buf[4];
  write_be(buf, 4, 0x11223344u);
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[3], 0x44);
  EXPECT_EQ(read_be(buf, 4), 0x11223344u);
  EXPECT_EQ(byteswap(0x11223344u, 4), 0x44332211u);
  EXPECT_EQ(byteswap(0x1122u, 2), 0x2211u);
}

}  // namespace
}  // namespace fpisa::pisa
