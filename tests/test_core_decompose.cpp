// Extract/assemble and packed encode/decode: the representation boundary
// (paper §3.1, Fig 3/4). These must be lossless for canonical inputs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "core/decompose.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

TEST(Packed, DecodeFp32MatchesHardware) {
  const float cases[] = {0.0f,    -0.0f,   1.0f,     -1.0f,  3.0f,
                         0.5f,    1.5f,    1e-38f,   3.4e38f, 1e-45f,
                         -2.75f,  123.456f, -0.0001f, 6.1e-5f};
  for (const float f : cases) {
    EXPECT_EQ(decode(fp32_bits(f), kFp32), static_cast<double>(f)) << f;
  }
}

TEST(Packed, EncodeFp32MatchesHardwareRounding) {
  util::Rng rng(1);
  for (int i = 0; i < 200000; ++i) {
    const double d = rng.normal(0.0, 1.0) * std::exp2(rng.uniform_int(-40, 40));
    const auto expected = fp32_bits(static_cast<float>(d));
    EXPECT_EQ(encode(d, kFp32), expected) << d;
  }
}

TEST(Packed, EncodeDecodeRoundTripAllFormats) {
  util::Rng rng(2);
  for (const FloatFormat* fmt : {&kFp16, &kBf16, &kFp32, &kFp64}) {
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t bits =
          rng.next_u64() & ((fmt->total_bits == 64)
                                ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << fmt->total_bits) - 1));
      if (classify(bits, *fmt) == FpClass::kNaN) continue;
      const double v = decode(bits, *fmt);
      // Re-encoding an exactly representable value must reproduce the bits
      // (modulo -0 for the zero pattern, which we keep signed).
      EXPECT_EQ(encode(v, *fmt), bits) << fmt->name << " bits=" << bits;
    }
  }
}

TEST(Packed, ClassifyEdges) {
  EXPECT_EQ(classify(fp32_bits(0.0f), kFp32), FpClass::kZero);
  EXPECT_EQ(classify(fp32_bits(-0.0f), kFp32), FpClass::kZero);
  EXPECT_EQ(classify(fp32_bits(1.0f), kFp32), FpClass::kNormal);
  EXPECT_EQ(classify(fp32_bits(1e-45f), kFp32), FpClass::kSubnormal);
  EXPECT_EQ(classify(fp32_bits(INFINITY), kFp32), FpClass::kInf);
  EXPECT_EQ(classify(fp32_bits(NAN), kFp32), FpClass::kNaN);
  EXPECT_EQ(classify(encode(65504.0, kFp16), kFp16), FpClass::kNormal);
  EXPECT_EQ(classify(encode(65536.0, kFp16), kFp16), FpClass::kInf);
}

TEST(Decompose, ExtractNormalHasImpliedOne) {
  // 3.0 = 1.1b * 2^1: mantissa 0xC00000, biased exp 128 (paper Fig 4).
  const ExtractResult r = extract(fp32_bits(3.0f), kFp32);
  EXPECT_EQ(r.cls, FpClass::kNormal);
  EXPECT_EQ(r.value.exp, 128);
  EXPECT_EQ(r.value.man, 0xC00000);
}

TEST(Decompose, ExtractNegativeIsTwosComplement) {
  const ExtractResult r = extract(fp32_bits(-1.0f), kFp32);
  EXPECT_EQ(r.value.exp, 127);
  EXPECT_EQ(r.value.man, -0x800000);
}

TEST(Decompose, ExtractSubnormalKeepsScale) {
  const float sub = std::bit_cast<float>(std::uint32_t{0x00000007});
  const ExtractResult r = extract(fp32_bits(sub), kFp32);
  EXPECT_EQ(r.cls, FpClass::kSubnormal);
  EXPECT_EQ(r.value.exp, 1);
  EXPECT_EQ(r.value.man, 7);
  // Invariant: value == man * 2^(exp - bias - man_bits).
  EXPECT_EQ(std::ldexp(static_cast<double>(r.value.man),
                       r.value.exp - 127 - 23),
            static_cast<double>(sub));
}

TEST(Decompose, ExtractAssembleRoundTripFp32) {
  util::Rng rng(3);
  for (int i = 0; i < 200000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng.next_u64());
    const FpClass c = classify(bits, kFp32);
    if (c == FpClass::kInf || c == FpClass::kNaN) continue;
    const ExtractResult r = extract(bits, kFp32);
    const AssembleResult a = assemble(r.value.exp, r.value.man, kFp32);
    // -0 extracts to (0,0) which assembles to +0; all else is exact.
    if (bits == 0x80000000u) {
      EXPECT_EQ(a.bits, 0u);
    } else {
      EXPECT_EQ(a.bits, bits);
    }
  }
}

TEST(Decompose, ExtractAssembleRoundTripEveryFormat) {
  util::Rng rng(4);
  for (const FloatFormat* fmt : {&kFp16, &kBf16, &kFp64}) {
    const std::uint64_t mask = fmt->total_bits == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << fmt->total_bits) - 1;
    for (int i = 0; i < 50000; ++i) {
      const std::uint64_t bits = rng.next_u64() & mask;
      const FpClass c = classify(bits, *fmt);
      if (c == FpClass::kInf || c == FpClass::kNaN) continue;
      const ExtractResult r = extract(bits, *fmt);
      const AssembleResult a = assemble(r.value.exp, r.value.man, *fmt);
      if (bits == fmt->sign_mask()) {
        EXPECT_EQ(a.bits, 0u);
      } else {
        EXPECT_EQ(a.bits, bits) << fmt->name;
      }
    }
  }
}

TEST(Decompose, AssembleDenormalizedState) {
  // Paper Fig 4 step (4)-(6): register holds 0b10.0 x 2^1 (man = 1 << 24,
  // exp biased 128) which must renormalize to 4.0.
  const AssembleResult a = assemble(128, std::int64_t{1} << 24, kFp32);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(a.bits)), 4.0f);
}

TEST(Decompose, AssembleLeftShiftForSmallMantissa) {
  // Cancellation leaves a tiny mantissa: 3 at exp 130 -> 3 * 2^(130-127-23).
  const AssembleResult a = assemble(130, 3, kFp32);
  const double expected = std::ldexp(3.0, 130 - 127 - 23);
  EXPECT_EQ(static_cast<double>(fp32_value(static_cast<std::uint32_t>(a.bits))),
            expected);
}

TEST(Decompose, AssembleOverflowGoesToInf) {
  const AssembleResult a = assemble(254, std::int64_t{1} << 30, kFp32);
  EXPECT_TRUE(a.overflowed);
  EXPECT_TRUE(std::isinf(fp32_value(static_cast<std::uint32_t>(a.bits))));
  const AssembleResult n = assemble(254, -(std::int64_t{1} << 30), kFp32);
  EXPECT_TRUE(std::isinf(fp32_value(static_cast<std::uint32_t>(n.bits))));
  EXPECT_LT(fp32_value(static_cast<std::uint32_t>(n.bits)), 0.0f);
}

TEST(Decompose, AssembleSubnormalAndUnderflow) {
  // exp 1, tiny mantissa -> subnormal output, exact.
  const AssembleResult a = assemble(1, 5, kFp32);
  EXPECT_EQ(decode(a.bits, kFp32), std::ldexp(5.0, 1 - 127 - 23));
  // Negative subnormal.
  const AssembleResult b = assemble(1, -5, kFp32);
  EXPECT_EQ(decode(b.bits, kFp32), -std::ldexp(5.0, 1 - 127 - 23));
}

TEST(Decompose, AssembleRoundingModes) {
  // Guard bits: value 1.5 + 2^-24 at guard=2: man = (0xC00000 << 2) | 1.
  const std::int64_t man = (std::int64_t{0xC00000} << 2) | 1;
  const auto rtz = assemble(127, man, kFp32, 2, Rounding::kTowardZero);
  const auto rne = assemble(127, man, kFp32, 2, Rounding::kNearestEven);
  const auto rtp = assemble(127, man, kFp32, 2, Rounding::kTowardPosInf);
  const auto rtn = assemble(127, man, kFp32, 2, Rounding::kTowardNegInf);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(rtz.bits)), 1.5f);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(rne.bits)), 1.5f);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(rtn.bits)), 1.5f);
  EXPECT_GT(fp32_value(static_cast<std::uint32_t>(rtp.bits)), 1.5f);

  // Negative value: toward-negative-infinity increases magnitude.
  const auto nrtn = assemble(127, -man, kFp32, 2, Rounding::kTowardNegInf);
  EXPECT_LT(fp32_value(static_cast<std::uint32_t>(nrtn.bits)), -1.5f);
  const auto nrtp = assemble(127, -man, kFp32, 2, Rounding::kTowardPosInf);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(nrtp.bits)), -1.5f);
}

TEST(Decompose, AssembleTieToEven) {
  // Exactly representable + exactly half a ulp in the guard bits.
  const std::int64_t even = (std::int64_t{0x800000} << 1) | 1;  // guard=1 tie
  const auto r = assemble(127, even, kFp32, 1, Rounding::kNearestEven);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(r.bits)), 1.0f);  // to even

  const std::int64_t odd = (std::int64_t{0x800001} << 1) | 1;
  const auto r2 = assemble(127, odd, kFp32, 1, Rounding::kNearestEven);
  // 1.0000001..5 ulp rounds up to even significand 0x800002.
  EXPECT_EQ(r2.bits & 0x7FFFFFu, 0x000002u);
}

}  // namespace
}  // namespace fpisa::core
