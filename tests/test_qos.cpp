// Multi-tenant admission control & QoS: token-bucket determinism under the
// virtual clock, weighted-deficit scheduler properties (priority
// overtaking, starvation-freedom), service-level admission (rate-limit /
// queue-bound / kBlock-deadline backpressure), the rejected-vs-failed SLO
// accounting invariant, bit-identical results with QoS on vs. off, and the
// mixed-workload harness (training + query + telemetry tenants sharing one
// cluster through the Communicator surface). Runs on the TSan CI leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "cluster/aggregation_service.h"
#include "collective/communicator.h"
#include "qos/qos.h"
#include "qos/rate_limiter.h"
#include "qos/scheduler.h"
#include "qos/virtual_clock.h"
#include "util/rng.h"

namespace fpisa {
namespace {

using cluster::AggregationService;
using cluster::ClusterOptions;
using cluster::JobReport;
using cluster::JobRequest;

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms * 10; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return pred();
}

// --- token bucket ----------------------------------------------------------

TEST(QosTokenBucket, ExactRefillUnderVirtualClock) {
  // rate 2 jobs/s, burst 2, starts full.
  qos::TokenBucket b(2.0, 2, 0);
  EXPECT_TRUE(b.try_acquire(1, 0));
  EXPECT_TRUE(b.try_acquire(1, 0));
  EXPECT_FALSE(b.try_acquire(1, 0));  // empty
  // One token regenerates in exactly 0.5 s.
  EXPECT_FALSE(b.try_acquire(1, 499'999'999));
  EXPECT_TRUE(b.try_acquire(1, 500'000'000));
  EXPECT_FALSE(b.try_acquire(1, 500'000'000));
  // Capacity clamps: a long sleep refills to burst, not beyond.
  EXPECT_TRUE(b.try_acquire(2, 60'000'000'000ull));
  EXPECT_FALSE(b.try_acquire(1, 60'000'000'000ull));
}

TEST(QosTokenBucket, NsUntilAvailableIsExact) {
  qos::TokenBucket b(4.0, 1, 0);  // 1 token per 250 ms
  EXPECT_TRUE(b.try_acquire(1, 0));
  const std::uint64_t wait = b.ns_until_available(1, 0);
  // The projected wait is exact: one ns early still fails, on time works.
  EXPECT_GT(wait, 0u);
  EXPECT_FALSE(b.try_acquire(1, wait - 1));
  EXPECT_TRUE(b.try_acquire(1, wait));
  // More jobs than capacity can never be served.
  qos::TokenBucket tiny(1.0, 2, 0);
  EXPECT_EQ(tiny.ns_until_available(3, 0),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(QosTokenBucket, DeterministicReplay) {
  // Two buckets fed the same irregular clock script make byte-identical
  // decisions — the seed-reproducibility contract of the admission plane.
  const double rate = 3.7;
  qos::TokenBucket a(rate, 3, 0);
  qos::TokenBucket b(rate, 3, 0);
  util::Rng clock_rng(12345);
  std::uint64_t t = 0;
  int admitted = 0;
  for (int i = 0; i < 2000; ++i) {
    t += clock_rng.next_below(100'000'000);  // 0–100 ms steps
    const bool ra = a.try_acquire(1, t);
    const bool rb = b.try_acquire(1, t);
    ASSERT_EQ(ra, rb) << "diverged at step " << i;
    if (ra) ++admitted;
  }
  // Long-run admitted count is pinned by the rate: burst + rate*T, with no
  // drift from the integer math (allow the one-token boundary).
  const double seconds = static_cast<double>(t) * 1e-9;
  EXPECT_LE(admitted, static_cast<int>(3 + rate * seconds) + 1);
  EXPECT_GE(admitted, static_cast<int>(rate * seconds * 0.99) - 1);
}

TEST(QosTokenBucket, UnlimitedAndTinyRates) {
  qos::TokenBucket unlimited(0.0, 1, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_acquire(1, 0));
  EXPECT_EQ(unlimited.ns_until_available(1, 0), 0u);
  // A rate small enough to round to zero in Q32 must still limit, not
  // silently become unlimited.
  qos::TokenBucket tiny(1e-12, 1, 0);
  EXPECT_FALSE(tiny.unlimited());
  EXPECT_TRUE(tiny.try_acquire(1, 0));
  EXPECT_FALSE(tiny.try_acquire(1, 1'000'000'000ull));
}

// --- weighted-deficit scheduler --------------------------------------------

TEST(QosScheduler, PriorityOvertaking) {
  // Telemetry queued first; training pushed later still pops first.
  qos::WeightedScheduler<int> sched({8, 2, 1});
  sched.push(qos::Priority::kTelemetry, 100);
  sched.push(qos::Priority::kTelemetry, 101);
  sched.push(qos::Priority::kQuery, 200);
  sched.push(qos::Priority::kTraining, 300);
  int v = 0;
  qos::Priority cls;
  ASSERT_TRUE(sched.pop(v, &cls));
  EXPECT_EQ(v, 300);
  EXPECT_EQ(cls, qos::Priority::kTraining);
  ASSERT_TRUE(sched.pop(v, &cls));
  EXPECT_EQ(v, 200);
  ASSERT_TRUE(sched.pop(v, &cls));
  EXPECT_EQ(v, 100);  // FIFO within a class
  ASSERT_TRUE(sched.pop(v, &cls));
  EXPECT_EQ(v, 101);
  EXPECT_FALSE(sched.pop(v));
}

TEST(QosScheduler, StarvationFreedomUnderSustainedHighPriorityLoad) {
  // Keep the training queue permanently non-empty; a lone telemetry job
  // must still be picked within one credit cycle (8 training picks + the
  // empty query class), never starved.
  qos::WeightedScheduler<int> sched({8, 2, 1});
  for (int i = 0; i < 64; ++i) sched.push(qos::Priority::kTraining, i);
  sched.push(qos::Priority::kTelemetry, 999);
  int picks_before_telemetry = 0;
  int v = 0;
  qos::Priority cls;
  for (;;) {
    ASSERT_TRUE(sched.pop(v, &cls));
    sched.push(qos::Priority::kTraining, 1000);  // sustained load
    if (cls == qos::Priority::kTelemetry) break;
    ASSERT_LT(++picks_before_telemetry, 12) << "telemetry starved";
  }
  EXPECT_EQ(v, 999);
  EXPECT_LE(picks_before_telemetry, 10);
}

TEST(QosScheduler, WeightsGuaranteeShares) {
  // With both classes saturated, a full cycle serves 8 training to every
  // 1 telemetry — the configured ratio, not strict priority.
  qos::WeightedScheduler<int> sched({8, 2, 1});
  for (int i = 0; i < 90; ++i) sched.push(qos::Priority::kTraining, i);
  for (int i = 0; i < 10; ++i) sched.push(qos::Priority::kTelemetry, i);
  int v = 0;
  for (int i = 0; i < 90; ++i) ASSERT_TRUE(sched.pop(v));
  EXPECT_EQ(sched.picks(qos::Priority::kTraining), 80u);
  EXPECT_EQ(sched.picks(qos::Priority::kTelemetry), 10u);
}

// --- service admission: rate limiting under the virtual clock --------------

ClusterOptions base_opts() {
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 64;
  opts.slots_per_job = 16;
  opts.loss_rate = 0.0;
  return opts;
}

TEST(QosService, RateLimitRejectsDeterministicallyUnderManualClock) {
  qos::ManualClock clock;
  ClusterOptions opts = base_opts();
  opts.qos.enabled = true;
  opts.qos.clock = &clock;
  qos::TenantQosConfig cfg;
  cfg.rate_jobs_per_s = 1.0;
  cfg.burst_jobs = 2;
  cfg.policy = qos::AdmissionPolicy::kReject;
  opts.qos.tenants["metered"] = cfg;
  AggregationService svc(opts);

  const auto workers = make_workers(2, 512, 7);
  const auto run = [&] {
    return svc.reduce(JobRequest{"metered", workers});
  };
  EXPECT_NO_THROW(run());  // burst token 1
  EXPECT_NO_THROW(run());  // burst token 2
  const auto packets_before = svc.tenant_stats("metered").packets_sent;
  try {
    run();
    FAIL() << "third job should be rate-limited";
  } catch (const qos::AdmissionRejectedError& e) {
    EXPECT_EQ(e.reason(), qos::RejectReason::kRateLimited);
    EXPECT_EQ(e.tenant(), "metered");
  }
  // A rejected job ran no protocol: packet books are untouched.
  EXPECT_EQ(svc.tenant_stats("metered").packets_sent, packets_before);
  clock.advance_s(1.0);  // exactly one token regenerates
  EXPECT_NO_THROW(run());
  EXPECT_THROW(run(), qos::AdmissionRejectedError);
  clock.advance_s(0.5);
  EXPECT_THROW(run(), qos::AdmissionRejectedError);
  clock.advance_s(0.5);
  EXPECT_NO_THROW(run());

  // The accounting invariant: rejections live in their own book — never in
  // jobs_failed (mirrors the PR 5 failed-vs-cumulative invariant).
  EXPECT_EQ(svc.jobs_completed(), 4u);
  EXPECT_EQ(svc.jobs_failed(), 0u);
  EXPECT_EQ(svc.jobs_rejected(), 3u);
  const cluster::TenantSlo slo = svc.tenant_slo("metered");
  EXPECT_EQ(slo.jobs_completed, 4u);
  EXPECT_EQ(slo.jobs_failed, 0u);
  EXPECT_EQ(slo.jobs_rejected, 3u);
}

TEST(QosService, QueueBoundRejectsWhenRunnerSaturated) {
  ClusterOptions opts = base_opts();
  opts.job_runner_threads = 1;
  opts.qos.enabled = true;
  qos::TenantQosConfig flood;
  flood.max_queued_jobs = 2;
  flood.policy = qos::AdmissionPolicy::kReject;
  opts.qos.tenants["flood"] = flood;
  AggregationService svc(opts);

  // Park the lone runner on a long job (high loss => ~25 sim round trips
  // per packet), then flood: with the runner busy, at most 2 flood jobs
  // may sit in the queue — the next submit gets typed backpressure.
  const auto long_workers = make_workers(2, 65536, 11);
  JobRequest long_job{"blocker", long_workers};
  long_job.loss_rate = 0.8;
  long_job.max_retransmits = 512;
  std::future<JobReport> blocker = svc.submit(std::move(long_job));
  ASSERT_TRUE(wait_until([&] {
    return svc.peak_concurrent_jobs() >= 1 &&
           svc.tenant_queue_depth("blocker") == 0;
  })) << "runner never picked up the blocker";

  const auto small = make_workers(2, 256, 13);
  std::vector<std::future<JobReport>> futs;
  bool rejected = false;
  qos::RejectReason reason = qos::RejectReason::kRateLimited;
  for (int i = 0; i < 20 && !rejected; ++i) {
    try {
      futs.push_back(svc.submit(JobRequest{"flood", small}));
    } catch (const qos::AdmissionRejectedError& e) {
      rejected = true;
      reason = e.reason();
    }
  }
  EXPECT_TRUE(rejected) << "queue bound never enforced";
  EXPECT_EQ(reason, qos::RejectReason::kQueueFull);
  EXPECT_GE(svc.tenant_slo("flood").jobs_rejected, 1u);

  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_NO_THROW(blocker.get());
  EXPECT_EQ(svc.jobs_failed(), 0u);
}

TEST(QosService, BlockPolicyWaitsThenAdmits) {
  ClusterOptions opts = base_opts();
  opts.qos.enabled = true;
  qos::TenantQosConfig cfg;
  cfg.rate_jobs_per_s = 20.0;  // one token per 50 ms
  cfg.burst_jobs = 1;
  cfg.policy = qos::AdmissionPolicy::kBlock;
  cfg.block_deadline_s = 5.0;
  opts.qos.tenants["patient"] = cfg;
  AggregationService svc(opts);

  const auto workers = make_workers(2, 256, 17);
  EXPECT_NO_THROW(svc.reduce(JobRequest{"patient", workers}));
  // Bucket now empty: the second reduce blocks ~50 ms and succeeds.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(svc.reduce(JobRequest{"patient", workers}));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.02);  // really blocked (scheduling slop tolerated)
  EXPECT_EQ(svc.jobs_rejected(), 0u);
  EXPECT_EQ(svc.jobs_completed(), 2u);
}

TEST(QosService, BlockPolicyDeadlineExpiresAsRejection) {
  ClusterOptions opts = base_opts();
  opts.qos.enabled = true;
  qos::TenantQosConfig cfg;
  cfg.rate_jobs_per_s = 0.01;  // next token in 100 s
  cfg.burst_jobs = 1;
  cfg.policy = qos::AdmissionPolicy::kBlock;
  cfg.block_deadline_s = 0.05;
  opts.qos.tenants["impatient"] = cfg;
  AggregationService svc(opts);

  const auto workers = make_workers(2, 256, 19);
  EXPECT_NO_THROW(svc.reduce(JobRequest{"impatient", workers}));
  try {
    svc.reduce(JobRequest{"impatient", workers});
    FAIL() << "deadline should have expired";
  } catch (const qos::AdmissionRejectedError& e) {
    EXPECT_EQ(e.reason(), qos::RejectReason::kDeadline);
  }
  EXPECT_EQ(svc.jobs_rejected(), 1u);
  EXPECT_EQ(svc.jobs_failed(), 0u);
}

// --- scheduler integration: overtaking on the job-runner pool ---------------

TEST(QosService, TrainingOvertakesQueuedTelemetry) {
  ClusterOptions opts = base_opts();
  opts.job_runner_threads = 1;
  opts.qos.enabled = true;
  qos::TenantQosConfig train;
  train.priority = qos::Priority::kTraining;
  qos::TenantQosConfig tel;
  tel.priority = qos::Priority::kTelemetry;
  opts.qos.tenants["train"] = train;
  opts.qos.tenants["tel"] = tel;
  AggregationService svc(opts);

  const auto long_workers = make_workers(2, 65536, 23);
  JobRequest long_job{"blocker", long_workers};
  long_job.loss_rate = 0.8;
  long_job.max_retransmits = 512;
  std::future<JobReport> blocker = svc.submit(std::move(long_job));
  ASSERT_TRUE(wait_until([&] {
    return svc.peak_concurrent_jobs() >= 1 &&
           svc.tenant_queue_depth("blocker") == 0;
  }));

  // Telemetry queued FIRST, training LAST — but job ids are assigned in
  // run order, so overtaking is directly observable.
  const auto small = make_workers(2, 256, 29);
  std::vector<std::future<JobReport>> tel_futs;
  for (int i = 0; i < 3; ++i) {
    tel_futs.push_back(svc.submit(JobRequest{"tel", small}));
  }
  std::future<JobReport> train_fut = svc.submit(JobRequest{"train", small});
  // If the blocker is still running, nothing has been picked yet and the
  // overtaking assertion below is exact; a (pathologically slow) machine
  // that finished the blocker already only loses the strictness, not the
  // test.
  const bool strict = svc.jobs_completed() == 0;

  const JobReport train_report = train_fut.get();
  std::vector<JobReport> tel_reports;
  tel_reports.reserve(tel_futs.size());
  for (auto& f : tel_futs) tel_reports.push_back(f.get());
  if (strict) {
    for (const JobReport& r : tel_reports) {
      EXPECT_LT(train_report.job_id, r.job_id)
          << "training job did not overtake queued telemetry";
    }
  }
  EXPECT_GE(svc.class_picks(qos::Priority::kTraining), 1u);
  EXPECT_GE(svc.class_picks(qos::Priority::kTelemetry), 3u);
  EXPECT_NO_THROW(blocker.get());
  EXPECT_EQ(svc.jobs_failed(), 0u);
}

// --- bit-identical results with QoS on vs. off ------------------------------

TEST(QosService, ResultsBitIdenticalQosOnVsOff) {
  ClusterOptions off = base_opts();
  off.loss_rate = 0.4;  // exercise the full retransmission protocol
  ClusterOptions on = off;
  on.qos.enabled = true;
  on.qos.default_tenant.priority = qos::Priority::kTraining;
  AggregationService svc_off(off);
  AggregationService svc_on(on);

  for (int job = 0; job < 5; ++job) {
    const auto workers =
        make_workers(3, 2048 + static_cast<std::size_t>(job) * 100,
                     static_cast<std::uint64_t>(100 + job));
    const JobReport a = svc_off.reduce(JobRequest{"t", workers});
    const JobReport b = svc_on.reduce(JobRequest{"t", workers});
    ASSERT_EQ(a.result.size(), b.result.size());
    EXPECT_EQ(std::memcmp(a.result.data(), b.result.data(),
                          a.result.size() * sizeof(float)),
              0)
        << "job " << job << " diverged with QoS on";
    // The protocol itself is untouched too: same packets, same losses.
    EXPECT_EQ(a.stats.packets_sent, b.stats.packets_sent);
    EXPECT_EQ(a.stats.packets_lost, b.stats.packets_lost);
    EXPECT_EQ(a.stats.retransmissions, b.stats.retransmissions);
  }
}

// --- Communicator surface ---------------------------------------------------

TEST(QosCommunicator, FactoryWiresQosIntoClusterBackend) {
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kCluster;
  copts.cluster = base_opts();
  copts.qos.enabled = true;
  qos::TenantQosConfig cfg;
  cfg.rate_jobs_per_s = 1.0;
  cfg.burst_jobs = 1;
  cfg.policy = qos::AdmissionPolicy::kReject;
  copts.qos.tenants["metered"] = cfg;
  const auto comm = collective::make_communicator(copts);

  ASSERT_NE(comm->qos_options(), nullptr);
  EXPECT_TRUE(comm->qos_options()->enabled);
  // Backends without an admission plane expose none.
  const auto host = collective::make_communicator({});
  EXPECT_EQ(host->qos_options(), nullptr);

  const auto workers = make_workers(2, 512, 31);
  std::vector<float> out(512);
  const collective::WorkerViews views(workers);
  EXPECT_NO_THROW(comm->allreduce(views, out, collective::ReduceOp::kSum,
                                  "metered"));
  // Bucket empty: both the sync and async entry points reject — at call
  // time, with the typed error, not via a poisoned future.
  EXPECT_THROW(comm->allreduce(views, out, collective::ReduceOp::kSum,
                               "metered"),
               qos::AdmissionRejectedError);
  EXPECT_THROW(comm->submit(views, out, collective::ReduceOp::kSum,
                            "metered"),
               qos::AdmissionRejectedError);
  // And the uniform SLO surface carries the distinct rejection book.
  const collective::TenantSlo slo = comm->tenant_slo("metered");
  EXPECT_EQ(slo.jobs_completed, 1u);
  EXPECT_EQ(slo.jobs_failed, 0u);
  EXPECT_EQ(slo.jobs_rejected, 2u);
}

// --- mixed-workload harness -------------------------------------------------

TEST(QosService, MixedWorkloadThreeTenantsShareOneCluster) {
  // Training allreduce + query jobs + streaming telemetry EWMA, three
  // threads through ONE shared 4-shard cluster with QoS on: training gets
  // priority, telemetry is rate-limited with a tight queue bound, and
  // every book must balance when the dust settles.
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kCluster;
  copts.cluster = base_opts();
  copts.cluster.loss_rate = 0.1;
  copts.cluster.job_runner_threads = 2;
  copts.qos.enabled = true;
  qos::TenantQosConfig train;
  train.priority = qos::Priority::kTraining;
  qos::TenantQosConfig query;
  query.priority = qos::Priority::kQuery;
  qos::TenantQosConfig tel;
  tel.priority = qos::Priority::kTelemetry;
  tel.rate_jobs_per_s = 400.0;
  tel.burst_jobs = 4;
  tel.max_queued_jobs = 4;
  tel.policy = qos::AdmissionPolicy::kReject;
  copts.qos.tenants["training"] = train;
  copts.qos.tenants["query"] = query;
  copts.qos.tenants["telemetry"] = tel;
  const auto comm = collective::make_communicator(copts);
  auto& svc =
      dynamic_cast<collective::ClusterCommunicator&>(*comm).service();

  // Loss-free reference fabric with identical routing: sums are a pure
  // function of (workers, chunking), so every concurrent QoS-scheduled
  // result must match it bit for bit.
  AggregationService reference(base_opts());

  constexpr int kTrainJobs = 6;
  constexpr int kQueryJobs = 8;
  constexpr int kTelemetryJobs = 40;
  std::atomic<int> tel_rejected{0};
  std::atomic<bool> mismatch{false};

  std::thread train_thread([&] {
    collective::TenantHandle h = comm->tenant("training");
    for (int j = 0; j < kTrainJobs; ++j) {
      const auto workers =
          make_workers(4, 8192, 1000 + static_cast<std::uint64_t>(j));
      std::vector<float> out(8192);
      h.allreduce(workers, out);
      const JobReport ref = reference.reduce(JobRequest{"ref", workers});
      if (std::memcmp(out.data(), ref.result.data(),
                      out.size() * sizeof(float)) != 0) {
        mismatch.store(true);
      }
    }
  });
  std::thread query_thread([&] {
    collective::TenantHandle h = comm->tenant("query");
    for (int j = 0; j < kQueryJobs; ++j) {
      // Query-engine flavor: partial GROUP-BY aggregates merged across
      // two sites — an allreduce over the partial sums.
      const auto partials =
          make_workers(2, 1024, 2000 + static_cast<std::uint64_t>(j));
      std::vector<float> merged(1024);
      h.allreduce(partials, merged);
      const JobReport ref = reference.reduce(JobRequest{"ref", partials});
      if (std::memcmp(merged.data(), ref.result.data(),
                      merged.size() * sizeof(float)) != 0) {
        mismatch.store(true);
      }
    }
  });
  std::thread telemetry_thread([&] {
    collective::TenantHandle h = comm->tenant("telemetry");
    double ewma = 0.0;
    for (int j = 0; j < kTelemetryJobs; ++j) {
      const auto samples =
          make_workers(2, 64, 3000 + static_cast<std::uint64_t>(j));
      std::vector<float> reduced(64);
      try {
        h.allreduce(samples, reduced);
        ewma = 0.9 * ewma + 0.1 * static_cast<double>(reduced[0]);
      } catch (const qos::AdmissionRejectedError&) {
        tel_rejected.fetch_add(1);
      }
    }
    EXPECT_TRUE(std::isfinite(ewma));
  });
  train_thread.join();
  query_thread.join();
  telemetry_thread.join();

  EXPECT_FALSE(mismatch.load())
      << "QoS scheduling changed a job's aggregation result";
  // Books balance exactly: every submission is completed or rejected,
  // never lost, never misfiled as failed.
  EXPECT_EQ(svc.jobs_failed(), 0u);
  EXPECT_EQ(svc.jobs_completed() + svc.jobs_rejected(),
            static_cast<std::uint64_t>(kTrainJobs + kQueryJobs +
                                       kTelemetryJobs));
  EXPECT_EQ(svc.jobs_rejected(),
            static_cast<std::uint64_t>(tel_rejected.load()));
  const cluster::TenantSlo tel_slo = svc.tenant_slo("telemetry");
  EXPECT_EQ(tel_slo.jobs_completed + tel_slo.jobs_rejected,
            static_cast<std::uint64_t>(kTelemetryJobs));
  EXPECT_EQ(svc.tenant_slo("training").jobs_completed,
            static_cast<std::uint64_t>(kTrainJobs));
  EXPECT_EQ(svc.tenant_slo("query").jobs_completed,
            static_cast<std::uint64_t>(kQueryJobs));
}

}  // namespace
}  // namespace fpisa
