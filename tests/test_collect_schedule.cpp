// Boundary coverage for switchml::draw_collect_schedule and the wave
// retry paths: extreme loss rates (0.9+) and the max_retransmits = 0 / 1
// edges, plus the typed RetransmitExhaustedError the session raises when
// a budget runs out.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/packed.h"
#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa::switchml {
namespace {

std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

TEST(CollectSchedule, LosslessScheduleClearsEverySlotInTwoTraversals) {
  util::Rng rng(1);
  SessionStats stats{};
  const CollectSchedule sched =
      draw_collect_schedule(16, /*loss_rate=*/0.0, /*max_retransmits=*/0,
                            rng, stats);
  EXPECT_EQ(sched.failure, 0);
  EXPECT_EQ(sched.cleared, 16u);
  EXPECT_EQ(sched.delivered, 32u);  // one read + one reset per slot
  EXPECT_EQ(stats.packets_lost, 0u);
}

TEST(CollectSchedule, ExtremeLossInvariantsHoldAcrossSeeds) {
  for (const double loss : {0.9, 0.95, 0.99}) {
    for (const int budget : {0, 1}) {
      for (std::uint64_t seed = 0; seed < 64; ++seed) {
        util::Rng rng(seed * 1000003 + 17);
        SessionStats stats{};
        const CollectSchedule sched =
            draw_collect_schedule(8, loss, budget, rng, stats);
        // The cleared prefix can never outrun the slot count, a failure
        // code is always one of the three, and a failed schedule must
        // leave at least one slot uncleared.
        EXPECT_LE(sched.cleared, 8u);
        EXPECT_GE(sched.failure, 0);
        EXPECT_LE(sched.failure, 2);
        if (sched.failure != 0) {
          EXPECT_LT(sched.cleared, 8u);
        } else {
          EXPECT_EQ(sched.cleared, 8u);
        }
        // Traversal accounting: delivered counts only copies that reached
        // the switch; it is bounded by everything sent minus everything
        // lost.
        EXPECT_LE(sched.delivered, stats.packets_sent);
      }
    }
  }
}

TEST(CollectSchedule, ZeroBudgetAtNinetyPercentLossFailsDeterministically) {
  // Same seed -> same schedule, including the failure point: the replay
  // property the chaos harness depends on.
  const auto draw = [] {
    util::Rng rng(99);
    SessionStats stats{};
    const CollectSchedule s = draw_collect_schedule(8, 0.9, 0, rng, stats);
    return std::tuple(s.delivered, s.cleared, s.failure, stats.packets_sent);
  };
  EXPECT_EQ(draw(), draw());
  const auto [delivered, cleared, failure, sent] = draw();
  EXPECT_NE(failure, 0) << "0.9 loss with zero retries cannot clear 8 slots "
                           "(p ~ 0.01 per slot) under this seed";
}

TEST(CollectSchedule, SessionSurvivesNinetyPercentLossWithDeepBudget) {
  SessionOptions opts;
  opts.num_workers = 3;
  opts.slots = 8;
  opts.lanes = 2;
  const auto workers = make_exact_workers(3, 48, 310);

  AggregationSession clean(pisa::SwitchConfig{}, opts);
  const auto want = clean.reduce(workers);

  opts.loss_rate = 0.9;
  opts.loss_seed = 311;
  opts.max_retransmits = 4096;  // p(fail) ~ (0.99)^4096 per packet
  AggregationSession lossy(pisa::SwitchConfig{}, opts);
  const auto got = lossy.reduce(workers);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << i;
  }
  EXPECT_GT(lossy.stats().retransmissions, 0u);
}

TEST(CollectSchedule, ZeroRetransmitBudgetThrowsTypedAddError) {
  SessionOptions opts;
  opts.num_workers = 4;
  opts.slots = 8;
  opts.loss_rate = 0.9;
  opts.loss_seed = 312;
  opts.max_retransmits = 0;
  AggregationSession session(pisa::SwitchConfig{}, opts);
  try {
    (void)session.reduce(make_exact_workers(4, 32, 313));
    FAIL() << "expected RetransmitExhaustedError";
  } catch (const RetransmitExhaustedError& e) {
    // The typed error carries enough context to identify the packet.
    EXPECT_LT(e.slot(), 8);
    if (e.phase() == RetransmitExhaustedError::Phase::kAdd) {
      EXPECT_GE(e.worker(), 0);
      EXPECT_LT(e.worker(), 4);
    } else {
      EXPECT_EQ(e.worker(), -1);  // collect packets carry no worker
    }
  }
}

TEST(CollectSchedule, TypedErrorIsStillARuntimeErrorWithTheLegacyMessage) {
  // Callers that matched the old bare std::runtime_error (by type or by
  // message prefix) keep working.
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 4;
  opts.loss_rate = 0.95;
  opts.loss_seed = 314;
  opts.max_retransmits = 0;
  AggregationSession session(pisa::SwitchConfig{}, opts);
  try {
    (void)session.reduce(make_exact_workers(2, 8, 315));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("exceeded") != std::string::npos) << what;
  }
}

TEST(CollectSchedule, SingleRetransmitBoundaryIsExactWhenItSurvives) {
  // max_retransmits = 1 at light loss: find seeds where the run completes
  // AFTER using its single retry, and pin those completions to
  // bit-exactness (a schedule that survives the boundary must not
  // half-apply any wave). At 5% loss a packet dies with p ~ 0.0095, so
  // over ~64 packets roughly half the runs complete, and a completed run
  // almost surely burned at least one retry.
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 8;
  opts.lanes = 1;
  const auto workers = make_exact_workers(2, 16, 316);
  AggregationSession clean(pisa::SwitchConfig{}, opts);
  const auto want = clean.reduce(workers);

  opts.loss_rate = 0.05;
  opts.max_retransmits = 1;
  bool completed_with_retry = false;
  for (std::uint64_t seed = 0; seed < 64 && !completed_with_retry; ++seed) {
    opts.loss_seed = 1000 + seed;
    AggregationSession lossy(pisa::SwitchConfig{}, opts);
    try {
      const auto got = lossy.reduce(workers);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << i;
      }
      completed_with_retry = lossy.stats().retransmissions > 0;
    } catch (const RetransmitExhaustedError&) {
      // This seed exhausted the 1-deep budget; try the next.
    }
  }
  EXPECT_TRUE(completed_with_retry)
      << "no seed in [1000,1064) completes 0.05 loss with budget 1 while "
         "using a retry -- statistically implausible, the retry path is "
         "broken";
}

}  // namespace
}  // namespace fpisa::switchml
