// The pipelined multi-core execution engine must be an invisible
// optimization: per-shard mailbox workers + the two-stage wave pipeline
// (encode wave N+1 while wave N's collect drains) produce bit-identical
// results, SessionStats, and switch state to the serial single-thread
// reference — across loss rates up to 0.99, Byzantine fault mixes,
// mid-wave shard kills, and a 64-job concurrent burst. Also pins the
// fan-out economics: a pass wakes only the shards it feeds (idle shards'
// mailbox counters never move, spurious wakeups stay zero) and the SPSC
// mailbox survives a multi-producer stress run (TSan leg).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/aggregation_service.h"
#include "cluster/mailbox.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::cluster {
namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

void expect_bits_eq(const std::vector<float>& got,
                    const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i]))
        << what << " i=" << i;
  }
}

/// Full field-by-field SessionStats comparison — "bit-identical" covers the
/// protocol books, not just the sums.
void expect_stats_eq(const switchml::SessionStats& got,
                     const switchml::SessionStats& want, const char* what) {
  EXPECT_EQ(got.packets_sent, want.packets_sent) << what;
  EXPECT_EQ(got.packets_lost, want.packets_lost) << what;
  EXPECT_EQ(got.retransmissions, want.retransmissions) << what;
  EXPECT_EQ(got.duplicates_absorbed, want.duplicates_absorbed) << what;
  EXPECT_EQ(got.slot_reuses, want.slot_reuses) << what;
  EXPECT_EQ(got.shard_failures, want.shard_failures) << what;
  EXPECT_EQ(got.chunks_rerouted, want.chunks_rerouted) << what;
  EXPECT_EQ(got.failover_retries, want.failover_retries) << what;
  EXPECT_EQ(got.dead_workers, want.dead_workers) << what;
  EXPECT_EQ(got.faults.corrupt_rejected, want.faults.corrupt_rejected) << what;
  EXPECT_EQ(got.faults.stale_dups_rejected, want.faults.stale_dups_rejected)
      << what;
  EXPECT_EQ(got.faults.epoch_bumps, want.faults.epoch_bumps) << what;
  EXPECT_EQ(got.faults.workers_declared_dead,
            want.faults.workers_declared_dead)
      << what;
  EXPECT_EQ(got.faults.waves_replayed, want.faults.waves_replayed) << what;
}

/// Reference configuration: serial wave loop on the calling thread.
ClusterOptions serial_reference(ClusterOptions opts) {
  opts.dispatch = ClusterOptions::DispatchMode::kInline;
  opts.pipeline_waves = false;
  return opts;
}

/// Runs one job under `opts` and under the serial reference, asserting
/// job-level AND cumulative observables are bit-identical.
void expect_matches_serial(const ClusterOptions& opts,
                           const std::vector<std::vector<float>>& workers,
                           const char* what) {
  AggregationService svc(opts);
  AggregationService ref(serial_reference(opts));
  const JobReport got = svc.reduce({"t", workers});
  const JobReport want = ref.reduce({"t", workers});
  expect_bits_eq(got.result, want.result, what);
  expect_stats_eq(got.stats, want.stats, what);
  ASSERT_EQ(got.per_shard.size(), want.per_shard.size()) << what;
  for (std::size_t s = 0; s < want.per_shard.size(); ++s) {
    expect_stats_eq(got.per_shard[s], want.per_shard[s], what);
  }
  // Switch-state / cumulative books: per-shard cumulative traffic and the
  // service totals must agree too (the pipeline may not shift accounting
  // between shards).
  for (int s = 0; s < opts.num_shards; ++s) {
    expect_stats_eq(svc.shard_stats(s), ref.shard_stats(s), what);
  }
  expect_stats_eq(svc.total_stats(), ref.total_stats(), what);
}

// --- bit-exactness across the loss sweep -----------------------------------

TEST(ClusterPipeline, LossSweepBitIdenticalToSerial) {
  const auto workers = make_workers(4, 300, 11);
  for (const double loss : {0.0, 0.3, 0.9, 0.99}) {
    ClusterOptions opts;
    opts.num_shards = 4;
    opts.slots_per_shard = 16;
    opts.slots_per_job = 8;
    opts.lanes = 2;
    opts.loss_rate = loss;
    opts.loss_seed = 21;
    // Round-trip success probability is (1-loss)^2 — at 0.99 that is 1e-4
    // per try, so the budget must scale with the loss rate to keep the
    // per-packet exhaustion probability negligible.
    opts.max_retransmits = loss > 0.95 ? 500000 : 4096;
    opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
    opts.pipeline_waves = true;
    SCOPED_TRACE(loss);
    expect_matches_serial(opts, workers, "loss sweep");
  }
}

TEST(ClusterPipeline, PipelineOffWorkersStillMatchesSerial) {
  // Isolate the dispatch rebuild from the wave pipeline: mailbox workers
  // with the serial wave loop must also be exact.
  const auto workers = make_workers(3, 200, 31);
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.loss_rate = 0.25;
  opts.loss_seed = 5;
  opts.max_retransmits = 256;
  opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
  opts.pipeline_waves = false;
  expect_matches_serial(opts, workers, "workers, pipeline off");
}

TEST(ClusterPipeline, AutoDispatchMatchesSerial) {
  // Whatever kAuto resolves to on this host, the results are the same.
  const auto workers = make_workers(4, 160, 41);
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.loss_rate = 0.1;
  opts.max_retransmits = 128;
  expect_matches_serial(opts, workers, "auto dispatch");
}

// --- fault mixes ------------------------------------------------------------

TEST(ClusterPipeline, ByzantineFaultMixBitIdenticalToSerial) {
  // The guarded protocol keeps the serial wave loop (wave N+1's stamps
  // depend on wave N's collect), but the engine rebuild underneath it —
  // mailbox dispatch, shard-local stats, join protocol — must not move a
  // single counter.
  const auto workers = make_workers(4, 240, 51);
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  opts.loss_rate = 0.1;
  opts.max_retransmits = 512;
  opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
  opts.pipeline_waves = true;
  opts.fault.enabled = true;
  opts.fault.seed = 9;
  opts.fault.corrupt_rate = 0.05;
  opts.fault.dup_rate = 0.05;
  opts.fault.stale_dup_rate = 0.02;
  opts.fault.reorder_rate = 0.1;
  opts.fault.wipe_switch = true;
  opts.fault.wipe_wave = 1;
  expect_matches_serial(opts, workers, "byzantine mix");
}

// --- mid-wave shard kill ----------------------------------------------------

TEST(ClusterPipeline, MidWaveKillFailoverBitIdenticalToSerialAndHealthy) {
  const auto workers = make_workers(4, 200, 61);
  for (const FaultPhase phase : {FaultPhase::kMidAdd, FaultPhase::kMidCollect}) {
    for (const std::size_t wave : {std::size_t{0}, std::size_t{1}}) {
      ClusterOptions opts;
      opts.num_shards = 4;
      opts.slots_per_shard = 16;
      opts.slots_per_job = 8;
      opts.lanes = 2;
      opts.loss_rate = 0.15;
      opts.max_retransmits = 256;
      opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
      opts.pipeline_waves = true;
      opts.failover.enabled = true;
      opts.failover.faults = {
          ShardFault{1, FaultKind::kKill, phase, wave, 0.0}};
      SCOPED_TRACE(static_cast<int>(phase));
      SCOPED_TRACE(wave);
      expect_matches_serial(opts, workers, "mid-wave kill");

      // And the failed-over sum equals the healthy fabric's sum.
      AggregationService svc(opts);
      ClusterOptions healthy = opts;
      healthy.failover.faults.clear();
      AggregationService ref(healthy);
      const auto got = svc.reduce({"t", workers});
      expect_bits_eq(got.result, ref.reduce({"t", workers}).result,
                     "failover vs healthy");
      EXPECT_EQ(got.stats.shard_failures, 1u);
      EXPECT_FALSE(svc.health().alive(1));
    }
  }
}

TEST(ClusterPipeline, MidWaveKillWithoutFailoverFailsIdentically) {
  // No failover: both engines must throw, and the partial traffic that did
  // cross the wire must be identically accounted.
  const auto workers = make_workers(2, 96, 71);
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 8;
  opts.slots_per_job = 4;
  opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
  opts.pipeline_waves = true;
  opts.failover.enabled = false;
  opts.failover.faults = {
      ShardFault{0, FaultKind::kKill, FaultPhase::kMidCollect, 1, 0.0}};
  AggregationService svc(opts);
  AggregationService ref(serial_reference(opts));
  EXPECT_THROW(svc.reduce({"t", workers}), std::runtime_error);
  EXPECT_THROW(ref.reduce({"t", workers}), std::runtime_error);
  expect_stats_eq(svc.total_stats(), ref.total_stats(), "failed-job books");
  EXPECT_EQ(svc.jobs_failed(), 1u);
  EXPECT_EQ(ref.jobs_failed(), 1u);
}

// --- concurrent burst -------------------------------------------------------

TEST(ClusterPipeline, SixtyFourJobBurstBitIdentical) {
  const auto workers = make_workers(4, 220, 81);
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  opts.loss_rate = 0.2;
  opts.max_retransmits = 256;
  opts.job_runner_threads = 4;
  opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
  opts.pipeline_waves = true;
  AggregationService svc(opts);
  AggregationService ref(serial_reference(opts));

  // Each job's loss stream is seeded by its job_id, and the burst assigns
  // ids in whatever order the runners pick jobs up — so individual jobs
  // can't be paired with a reference job. But the SET of ids {0..63} is
  // deterministic, so the cumulative books must equal a serial 64-job run
  // exactly; and every result is bit-identical regardless of the draws.
  constexpr int kJobs = 64;
  const auto want = ref.reduce({"t", workers});
  for (int j = 1; j < kJobs; ++j) (void)ref.reduce({"t", workers});

  std::vector<std::future<JobReport>> futures;
  futures.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    futures.push_back(svc.submit({"tenant-" + std::to_string(j % 8), workers}));
  }
  for (auto& f : futures) {
    expect_bits_eq(f.get().result, want.result, "burst job");
  }
  EXPECT_EQ(svc.jobs_completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(svc.jobs_failed(), 0u);
  expect_stats_eq(svc.total_stats(), ref.total_stats(), "burst books");
  for (int s = 0; s < opts.num_shards; ++s) {
    expect_stats_eq(svc.shard_stats(s), ref.shard_stats(s), "burst shard");
  }
}

// --- fan-out economics: wake only shards with work --------------------------

TEST(ClusterPipeline, IdleShardsAreNeverWokenAndNoSpuriousWakeups) {
  // kRange routing with a one-chunk vector: all work lands on shard 0.
  // The other shards' workers must sleep through the whole job — the old
  // pool broadcast woke every worker for every pass.
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.lanes = 4;
  opts.routing = RoutingPolicy::kRange;
  opts.dispatch = ClusterOptions::DispatchMode::kWorkers;
  AggregationService svc(opts);
  ASSERT_EQ(svc.dispatch_mode(), ClusterOptions::DispatchMode::kWorkers);

  const auto workers = make_workers(2, 4, 91);  // one chunk -> shard 0 only
  for (int j = 0; j < 8; ++j) (void)svc.reduce({"t", workers});

  const MailboxStats active = svc.mailbox_stats(0);
  EXPECT_EQ(active.enqueued, 8u) << "one ticket per pass, shard 0";
  for (int s = 1; s < opts.num_shards; ++s) {
    const MailboxStats idle = svc.mailbox_stats(s);
    EXPECT_EQ(idle.enqueued, 0u) << "idle shard " << s << " got a ticket";
    EXPECT_EQ(idle.wakeups, 0u) << "idle shard " << s << " was woken";
  }
  // Per-cell futex parking: a worker is only notified for a ticket it is
  // about to consume. Regression assert on the spurious counter.
  for (int s = 0; s < opts.num_shards; ++s) {
    EXPECT_EQ(svc.mailbox_stats(s).spurious_wakeups, 0u) << "shard " << s;
  }
}

TEST(ClusterPipeline, InlineDispatchReportsZeroMailboxTraffic) {
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.dispatch = ClusterOptions::DispatchMode::kInline;
  AggregationService svc(opts);
  ASSERT_EQ(svc.dispatch_mode(), ClusterOptions::DispatchMode::kInline);
  const auto workers = make_workers(2, 64, 101);
  (void)svc.reduce({"t", workers});
  for (int s = 0; s < opts.num_shards; ++s) {
    EXPECT_EQ(svc.mailbox_stats(s).enqueued, 0u);
  }
  EXPECT_THROW(svc.mailbox_stats(-1), std::invalid_argument);
  EXPECT_THROW(svc.mailbox_stats(2), std::invalid_argument);
}

// --- SPSC mailbox stress (TSan target) --------------------------------------

TEST(ClusterPipeline, MailboxMultiProducerStress) {
  // Many producers hammer one consumer through the ring (the service's
  // real shape: concurrent job runners posting to one shard worker). Every
  // ticket must arrive exactly once; per-producer sequences stay ordered
  // (the ticket fetch_add linearizes producers; the ring is FIFO).
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  ShardMailbox<std::uint64_t> box(64);  // small ring: exercise the full-spin
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    const std::uint64_t total = kPerProducer * kProducers;
    while (received < total) {
      const std::uint64_t v = box.pop_wait();
      const auto p = static_cast<std::size_t>(v >> 32);
      const std::uint64_t seq = v & 0xffffffffu;
      ASSERT_LT(p, static_cast<std::size_t>(kProducers));
      ASSERT_EQ(seq, last_seen[p] + 1) << "producer " << p << " reordered";
      last_seen[p] = seq;
      ++received;
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        box.push((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, kPerProducer * kProducers);
  const MailboxStats stats = box.stats();
  EXPECT_EQ(stats.enqueued, kPerProducer * kProducers);
  for (std::size_t p = 0; p < last_seen.size(); ++p) {
    EXPECT_EQ(last_seen[p], kPerProducer);
  }
}

TEST(ClusterPipeline, MailboxTryPopAndCapacityRounding) {
  ShardMailbox<int> box(3);  // not a power of two: falls back to 256
  int v = -1;
  EXPECT_FALSE(box.try_pop(v));
  box.push(7);
  ASSERT_TRUE(box.try_pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(box.try_pop(v));
  // Wrap the ring twice through try_pop to exercise cell recycling.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 256; ++i) box.push(i);
    for (int i = 0; i < 256; ++i) {
      ASSERT_TRUE(box.try_pop(v));
      ASSERT_EQ(v, i);
    }
  }
  EXPECT_EQ(box.stats().enqueued, 513u);
}

}  // namespace
}  // namespace fpisa::cluster
