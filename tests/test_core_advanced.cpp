// Block floating point (§3.3) and Appendix A advanced operations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/advanced_ops.h"
#include "core/block_fp.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

// ---------------------------------------------------------------------------
// Block floating point
// ---------------------------------------------------------------------------

TEST(BlockFp, EncodeDecodeBoundedError) {
  util::Rng rng(40);
  const BlockFpFormat fmt;  // 8-bit mantissas
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> vals(16);
    for (auto& v : vals) v = static_cast<float>(rng.normal(0.0, 1.0));
    const BlockFp b = block_encode(vals, fmt);
    const auto back = block_decode(b, fmt);
    float max_abs = 0.0f;
    for (const float v : vals) max_abs = std::max(max_abs, std::fabs(v));
    // Quantization step = max-magnitude scale / 2^frac_bits.
    const double step = static_cast<double>(max_abs) * std::exp2(-fmt.frac_bits() + 1);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      EXPECT_NEAR(back[i], vals[i], step) << i;
    }
  }
}

TEST(BlockFp, AllZeroBlock) {
  const std::vector<float> vals(8, 0.0f);
  const BlockFp b = block_encode(vals, {});
  EXPECT_EQ(b.shared_exp, 0);
  for (const auto m : b.mantissas) EXPECT_EQ(m, 0);
}

TEST(BlockFp, AccumulatorSumsBlocks) {
  util::Rng rng(41);
  const BlockFpFormat fmt;
  const std::size_t lanes = 32;
  BlockFpisaAccumulator acc(lanes, fmt);
  std::vector<double> ref(lanes, 0.0);
  double max_abs = 0.0;
  for (int w = 0; w < 8; ++w) {
    std::vector<float> vals(lanes);
    for (auto& v : vals) v = static_cast<float>(rng.normal(0.0, 0.5));
    const BlockFp b = block_encode(vals, fmt);
    const auto quant = block_decode(b, fmt);  // reference uses quantized vals
    acc.add_block(b);
    for (std::size_t i = 0; i < lanes; ++i) {
      ref[i] += quant[i];
      max_abs = std::max(max_abs, std::fabs(static_cast<double>(quant[i])));
    }
  }
  const auto out = acc.read();
  // Alignment across blocks loses at most one mantissa step per add.
  const double bound = 8.0 * max_abs * std::exp2(-fmt.frac_bits() + 1);
  for (std::size_t i = 0; i < lanes; ++i) {
    EXPECT_NEAR(out[i], ref[i], bound) << i;
  }
}

TEST(BlockFp, ApproximateVariantOverwritesOnLargeJump) {
  const BlockFpFormat fmt;
  BlockFpisaAccumulator acc(2, fmt, Variant::kApproximate, 32);
  acc.add_block(block_encode(std::vector<float>{1.0f, 1.0f}, fmt));
  // Jump of 2^30 in shared exponent: far beyond headroom -> overwrite.
  acc.add_block(block_encode(std::vector<float>{1e12f, 1e12f}, fmt));
  EXPECT_EQ(acc.counters().overwrites, 2u);  // both lanes dropped state
  const auto out = acc.read();
  EXPECT_NEAR(out[0], 1e12f, 1e10f);
}

// ---------------------------------------------------------------------------
// Multiplication
// ---------------------------------------------------------------------------

TEST(Multiply, ExactPowerOfTwoCases) {
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(
                fpisa_multiply(fp32_bits(2.0f), fp32_bits(4.0f), kFp32))),
            8.0f);
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(
                fpisa_multiply(fp32_bits(-0.5f), fp32_bits(0.25f), kFp32))),
            -0.125f);
}

TEST(Multiply, MatchesHardwareOnRandomPairs) {
  util::Rng rng(42);
  int checked = 0;
  for (int i = 0; checked < 100000 && i < 400000; ++i) {
    const auto ab = static_cast<std::uint32_t>(rng.next_u64());
    const auto bb = static_cast<std::uint32_t>(rng.next_u64());
    const FpClass ca = classify(ab, kFp32);
    const FpClass cb = classify(bb, kFp32);
    if (ca == FpClass::kInf || ca == FpClass::kNaN) continue;
    if (cb == FpClass::kInf || cb == FpClass::kNaN) continue;
    const double prod =
        static_cast<double>(fp32_value(ab)) * static_cast<double>(fp32_value(bb));
    const float expected = static_cast<float>(prod);  // RNE, like hardware
    const auto got = static_cast<std::uint32_t>(fpisa_multiply(ab, bb, kFp32));
    if (std::isnan(expected)) continue;
    // Signed zero convention can differ for underflow; compare values and
    // accept one-ulp at the subnormal boundary (double rounding).
    const float gv = fp32_value(got);
    if (expected == 0.0f) {
      EXPECT_NEAR(gv, 0.0f, 1e-44f);
    } else if (std::isinf(expected)) {
      EXPECT_TRUE(std::isinf(gv) || std::fabs(gv) > 3e38f);
    } else {
      const float ulp = std::fabs(expected) * std::exp2(-23.0f);
      EXPECT_NEAR(gv, expected, ulp) << fp32_value(ab) << "*" << fp32_value(bb);
    }
    ++checked;
  }
  EXPECT_GE(checked, 100000);
}

TEST(Multiply, InfAndNanRules) {
  const auto inf = fp32_bits(INFINITY);
  const auto zero = fp32_bits(0.0f);
  EXPECT_EQ(classify(fpisa_multiply(inf, zero, kFp32), kFp32), FpClass::kNaN);
  EXPECT_EQ(classify(fpisa_multiply(inf, fp32_bits(2.0f), kFp32), kFp32),
            FpClass::kInf);
  EXPECT_EQ(classify(fpisa_multiply(fp32_bits(NAN), fp32_bits(1.0f), kFp32),
                     kFp32),
            FpClass::kNaN);
}

TEST(Divide, ViaReciprocalWithinTwoUlp) {
  util::Rng rng(43);
  for (int i = 0; i < 50000; ++i) {
    const float a = static_cast<float>(rng.normal(0.0, 10.0));
    const float b = static_cast<float>(rng.normal(0.0, 10.0));
    if (b == 0.0f) continue;
    const float expected = a / b;
    if (!std::isfinite(expected) || expected == 0.0f) continue;
    const float got = fp32_value(static_cast<std::uint32_t>(
        fpisa_divide_via_reciprocal(fp32_bits(a), fp32_bits(b), kFp32)));
    // One extra rounding step vs true division: within 2 ulp.
    const float tol = std::fabs(expected) * std::exp2(-22.0f);
    EXPECT_NEAR(got, expected, tol) << a << "/" << b;
  }
}

// ---------------------------------------------------------------------------
// Logarithm and square root lookup tables (Appendix A.2)
// ---------------------------------------------------------------------------

TEST(Log2Table, FewerThan2048EntriesUnder1PercentError) {
  const Log2Table table(kFp32, 11);
  EXPECT_LE(table.entries(), 2048u);
  util::Rng rng(44);
  double max_abs_err = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const float x = static_cast<float>(
        rng.uniform(0.5, 2.0) * std::exp2(rng.uniform_int(-30, 30)));
    const double got = table.log2(fp32_bits(x));
    const double expected = std::log2(static_cast<double>(x));
    max_abs_err = std::max(max_abs_err, std::fabs(got - expected));
  }
  // The fractional (mantissa) part of log2 carries error < 2^-11-ish;
  // the paper cites <1% — we are far inside that.
  EXPECT_LT(max_abs_err, 0.001);
}

TEST(Log2Table, ExactOnPowersOfTwo) {
  const Log2Table table(kFp32, 11);
  for (int e = -20; e <= 20; ++e) {
    const float x = std::ldexp(1.0f, e);
    EXPECT_NEAR(table.log2(fp32_bits(x)), e, 0.001) << e;
  }
}

TEST(Log2Table, HandlesSubnormals) {
  const Log2Table table(kFp32, 11);
  const float sub = 1e-41f;
  EXPECT_NEAR(table.log2(fp32_bits(sub)), std::log2(1e-41), 0.01);
}

TEST(SqrtTable, RelativeErrorBounded) {
  const SqrtTable table(kFp32, 10);
  util::Rng rng(45);
  double max_rel = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const float x = static_cast<float>(
        rng.uniform(0.25, 4.0) * std::exp2(2 * rng.uniform_int(-15, 15)));
    const float got =
        fp32_value(static_cast<std::uint32_t>(table.sqrt(fp32_bits(x))));
    const double expected = std::sqrt(static_cast<double>(x));
    max_rel = std::max(max_rel, std::fabs(got - expected) / expected);
  }
  EXPECT_LT(max_rel, 0.001);  // 10-bit table: ~2^-11 resolution
}

TEST(SqrtTable, OddAndEvenExponents) {
  const SqrtTable table(kFp32, 10);
  EXPECT_NEAR(fp32_value(static_cast<std::uint32_t>(table.sqrt(fp32_bits(4.0f)))),
              2.0f, 0.002f);
  EXPECT_NEAR(fp32_value(static_cast<std::uint32_t>(table.sqrt(fp32_bits(2.0f)))),
              std::sqrt(2.0f), 0.002f);
  EXPECT_NEAR(fp32_value(static_cast<std::uint32_t>(table.sqrt(fp32_bits(0.5f)))),
              std::sqrt(0.5f), 0.001f);
}

TEST(SqrtTable, EdgeCases) {
  const SqrtTable table(kFp32, 10);
  EXPECT_EQ(table.sqrt(fp32_bits(0.0f)), 0u);
  EXPECT_EQ(classify(table.sqrt(fp32_bits(-1.0f)), kFp32), FpClass::kNaN);
  EXPECT_EQ(classify(table.sqrt(fp32_bits(INFINITY)), kFp32), FpClass::kInf);
}

TEST(TableMultiplier, SmallFormatWithoutHardwareMultiplier) {
  const TableMultiplier mul(kFp16, 10);
  // Table space: within what a couple of SRAM blocks hold.
  EXPECT_LE(mul.table_entries(), 4096u);
  util::Rng rng(46);
  double max_rel = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double a = rng.uniform(0.5, 2.0) * std::exp2(rng.uniform_int(-5, 5));
    const double b = rng.uniform(0.5, 2.0) * std::exp2(rng.uniform_int(-5, 5));
    const std::uint64_t ab = encode(a, kFp16);
    const std::uint64_t bb = encode(b, kFp16);
    const double expected = decode(ab, kFp16) * decode(bb, kFp16);
    const double got = decode(mul.multiply(ab, bb), kFp16);
    if (expected == 0.0) continue;
    max_rel = std::max(max_rel, std::fabs(got - expected) / std::fabs(expected));
  }
  // log/antilog at 10-bit resolution plus FP16 quantization.
  EXPECT_LT(max_rel, 0.01);
}

TEST(TableMultiplier, SignsAndSpecials) {
  const TableMultiplier mul(kFp16, 10);
  const auto neg = encode(-1.5, kFp16);
  const auto pos = encode(2.0, kFp16);
  EXPECT_LT(decode(mul.multiply(neg, pos), kFp16), 0.0);
  EXPECT_GT(decode(mul.multiply(neg, neg), kFp16), 0.0);
  EXPECT_EQ(decode(mul.multiply(encode(0.0, kFp16), pos), kFp16), 0.0);
}

}  // namespace
}  // namespace fpisa::core
