// Distributed queries (§6): the switch-side primitives and all five Table 2
// queries, validated for correctness and for the Fig 13 speedup shape.
#include <gtest/gtest.h>

#include <cmath>

#include "query/data.h"
#include "query/queries.h"
#include "util/rng.h"

namespace fpisa::query {
namespace {

TEST(ThresholdPruner, NeverDropsATopNRow) {
  util::Rng rng(50);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 32;
    ThresholdPruner pruner(n, 64);
    std::vector<float> all;
    for (int i = 0; i < 20000; ++i) {
      const float v = static_cast<float>(rng.lognormal(0.0, 2.0));
      all.push_back(v);
      pruner.offer(v);
    }
    std::sort(all.begin(), all.end(), std::greater<>());
    auto top = pruner.master_top();
    std::sort(top.begin(), top.end(), std::greater<>());
    ASSERT_EQ(top.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(top[i], all[i]) << i;
    // And it actually prunes: far fewer rows reach the master.
    EXPECT_LT(pruner.forwarded(), 4000u);
  }
}

TEST(SwitchHashAggregator, SumsMatchReferenceAndCollisionsFallThrough) {
  util::Rng rng(51);
  SwitchHashAggregator agg(64);  // deliberately small: force collisions
  std::map<std::uint64_t, double> ref;
  std::map<std::uint64_t, double> master;  // collision fallthrough
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.next_below(200);
    const float v = static_cast<float>(rng.uniform(0.0, 10.0));
    ref[key] += static_cast<double>(v);
    if (!agg.offer(key, v)) master[key] += static_cast<double>(v);
  }
  EXPECT_GT(agg.collisions(), 0u);
  std::map<std::uint64_t, double> got = master;
  for (const auto& [k, v] : agg.drain()) got[k] += static_cast<double>(v);
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [k, v] : ref) {
    EXPECT_NEAR(got[k], v, std::fabs(v) * 1e-4 + 1e-3) << k;
  }
}

class QuerySuite : public ::testing::Test {
 protected:
  UserVisits uv_ = make_uservisits(120000, 52, 512);
  TpchData tpch_ = make_tpch(0.2, 53);
  CostModel cm_{};
};

TEST_F(QuerySuite, TopNAllEnginesAgree) {
  const auto base = run_top_n(uv_, 100, Engine::kSparkBaseline, cm_);
  const auto fp = run_top_n(uv_, 100, Engine::kFpisaSwitch, cm_);
  const auto raw = run_top_n(uv_, 100, Engine::kDpdkNoSwitch, cm_);
  ASSERT_EQ(base.values.size(), 100u);
  EXPECT_EQ(fp.values, base.values);
  EXPECT_EQ(raw.values, base.values);
  // Pruning: the switch forwards a small fraction of the table.
  EXPECT_LT(fp.stats.rows_to_master, uv_.rows() / 10);
  EXPECT_GT(fp.stats.switch_compares, 0u);
}

TEST_F(QuerySuite, GroupByMaxAllEnginesAgree) {
  const float having = 5.0f;
  const auto base = run_group_by_max(uv_, having, Engine::kSparkBaseline, cm_);
  const auto fp = run_group_by_max(uv_, having, Engine::kFpisaSwitch, cm_);
  ASSERT_FALSE(base.group_max.empty());
  EXPECT_EQ(fp.group_max, base.group_max);
  EXPECT_LT(fp.stats.rows_to_master, uv_.rows() / 4);
}

TEST_F(QuerySuite, GroupBySumMatchesWithinFpisaTolerance) {
  const auto base = run_group_by_sum(uv_, Engine::kSparkBaseline, cm_);
  const auto fp = run_group_by_sum(uv_, Engine::kFpisaSwitch, cm_);
  ASSERT_EQ(fp.group_sum.size(), base.group_sum.size());
  for (const auto& [k, v] : base.group_sum) {
    const auto it = fp.group_sum.find(k);
    ASSERT_NE(it, fp.group_sum.end()) << k;
    EXPECT_NEAR(it->second, v, std::fabs(v) * 2e-3f + 1e-3f) << k;
  }
  EXPECT_GT(fp.stats.switch_adds, 0u);
  // Aggregation collapses the stream to ~#groups rows.
  EXPECT_LT(fp.stats.rows_to_master, uv_.rows() / 20);
}

TEST_F(QuerySuite, TpchQ3AllEnginesAgree) {
  const auto base = run_tpch_q3(tpch_, 1, 1200, Engine::kSparkBaseline, cm_);
  const auto fp = run_tpch_q3(tpch_, 1, 1200, Engine::kFpisaSwitch, cm_);
  ASSERT_FALSE(base.top.empty());
  ASSERT_EQ(fp.top.size(), base.top.size());
  for (std::size_t i = 0; i < base.top.size(); ++i) {
    EXPECT_EQ(fp.top[i].orderkey, base.top[i].orderkey) << i;
    EXPECT_EQ(fp.top[i].revenue, base.top[i].revenue) << i;
  }
}

TEST_F(QuerySuite, TpchQ20MatchesWithinFpisaTolerance) {
  const auto base = run_tpch_q20(tpch_, 600, 900, Engine::kSparkBaseline, cm_);
  const auto fp = run_tpch_q20(tpch_, 600, 900, Engine::kFpisaSwitch, cm_);
  ASSERT_FALSE(base.excess.empty());
  // FPISA rounding can flip rows sitting exactly at the HAVING boundary;
  // quantities are integers so sums match exactly here.
  ASSERT_EQ(fp.excess.size(), base.excess.size());
  for (const auto& [k, v] : base.excess) {
    const auto it = fp.excess.find(k);
    ASSERT_NE(it, fp.excess.end());
    EXPECT_NEAR(it->second, v, std::fabs(v) * 1e-3f);
  }
}

TEST_F(QuerySuite, Fig13SpeedupShape) {
  // FPISA beats the Spark-like baseline by roughly the paper's 1.9-2.7x on
  // every query, and the no-switch ablation shows the master bottleneck.
  const auto check = [&](double base_s, double fp_s, const char* q) {
    const double speedup = base_s / fp_s;
    EXPECT_GT(speedup, 1.5) << q;
    EXPECT_LT(speedup, 4.0) << q;
  };
  check(run_top_n(uv_, 100, Engine::kSparkBaseline, cm_).stats.time_s,
        run_top_n(uv_, 100, Engine::kFpisaSwitch, cm_).stats.time_s, "topn");
  check(run_group_by_max(uv_, 5.0f, Engine::kSparkBaseline, cm_).stats.time_s,
        run_group_by_max(uv_, 5.0f, Engine::kFpisaSwitch, cm_).stats.time_s,
        "gmax");
  check(run_group_by_sum(uv_, Engine::kSparkBaseline, cm_).stats.time_s,
        run_group_by_sum(uv_, Engine::kFpisaSwitch, cm_).stats.time_s, "gagg");
  check(run_tpch_q3(tpch_, 1, 1200, Engine::kSparkBaseline, cm_).stats.time_s,
        run_tpch_q3(tpch_, 1, 1200, Engine::kFpisaSwitch, cm_).stats.time_s,
        "q3");
  check(run_tpch_q20(tpch_, 600, 900, Engine::kSparkBaseline, cm_).stats.time_s,
        run_tpch_q20(tpch_, 600, 900, Engine::kFpisaSwitch, cm_).stats.time_s,
        "q20");

  // Ablation: without the switch, the cheap streaming pipeline loses its
  // edge on scan-heavy queries (the master must touch every row).
  const auto fp = run_top_n(uv_, 100, Engine::kFpisaSwitch, cm_);
  const auto raw = run_top_n(uv_, 100, Engine::kDpdkNoSwitch, cm_);
  EXPECT_GT(raw.stats.time_s, fp.stats.time_s * 1.5);
}

TEST(ThresholdPruner, DescendingOrderIsWorstCaseButStillExact) {
  // Adversarial arrival order: strictly descending values mean nothing is
  // ever below the threshold — zero pruning, but the answer stays exact.
  ThresholdPruner pruner(10, 16);
  std::vector<float> all;
  for (int i = 5000; i > 0; --i) {
    const float v = static_cast<float>(i);
    all.push_back(v);
    pruner.offer(v);
  }
  auto top = pruner.master_top();
  std::sort(top.begin(), top.end(), std::greater<>());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(top[static_cast<std::size_t>(i)], all[static_cast<std::size_t>(i)]);

  // Ascending order is equally adversarial (each arrival beats the
  // current threshold), but still exact; a random shuffle of the same
  // stream prunes heavily.
  ThresholdPruner asc(10, 16);
  for (int i = 1; i <= 5000; ++i) asc.offer(static_cast<float>(i));
  auto top2 = asc.master_top();
  std::sort(top2.begin(), top2.end(), std::greater<>());
  EXPECT_EQ(top2.front(), 5000.0f);
  EXPECT_EQ(top2.back(), 4991.0f);

  util::Rng rng(56);
  rng.shuffle(all.data(), all.size());
  ThresholdPruner shuffled(10, 16);
  for (const float v : all) shuffled.offer(v);
  EXPECT_LT(shuffled.forwarded(), 500u);
  auto top3 = shuffled.master_top();
  std::sort(top3.begin(), top3.end(), std::greater<>());
  EXPECT_EQ(top3.front(), 5000.0f);
}

TEST(SwitchHashAggregator, QueriesNeedFullFpisaNotApproximate) {
  // §6.1: query data "can be arbitrary" (no narrow exponent range), so the
  // FPISA-A overwrite path corrupts sums — the full-FPISA RSAW extension
  // is required. Demonstrate with a wide-magnitude revenue stream.
  util::Rng rng(55);
  core::AccumulatorConfig approx_cfg;
  approx_cfg.variant = core::Variant::kApproximate;
  SwitchHashAggregator full(256);  // default: full FPISA
  SwitchHashAggregator approx(256, approx_cfg);

  double ref = 0;
  for (int i = 0; i < 3000; ++i) {
    // Revenues spanning 12 orders of magnitude (micro-cents to millions).
    const float v =
        static_cast<float>(rng.uniform(1.0, 10.0) *
                           std::pow(10.0, rng.uniform_int(-5, 6)));
    full.offer(1, v);
    approx.offer(1, v);
    ref += static_cast<double>(v);
  }
  const double full_err =
      std::fabs(static_cast<double>(full.drain()[0].second) - ref) / ref;
  const double approx_err =
      std::fabs(static_cast<double>(approx.drain()[0].second) - ref) / ref;
  EXPECT_LT(full_err, 1e-3);  // full FPISA: only rounding
  EXPECT_GT(approx_err, full_err);  // FPISA-A: overwrite errors on top
}

TEST(JoinTopN, AllEnginesAgreeAndSwitchPrunes) {
  const Rankings rk = make_rankings(5000, 58);
  const UserVisits uv = make_uservisits(80000, 59, 512, /*url_domain=*/5000);
  const CostModel cm;
  const auto base = run_join_top_n(uv, rk, 5000, 50, Engine::kSparkBaseline, cm);
  const auto fp = run_join_top_n(uv, rk, 5000, 50, Engine::kFpisaSwitch, cm);
  const auto raw = run_join_top_n(uv, rk, 5000, 50, Engine::kDpdkNoSwitch, cm);
  ASSERT_EQ(base.top.size(), 50u);
  ASSERT_EQ(fp.top.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(fp.top[i].dest_url, base.top[i].dest_url) << i;
    EXPECT_EQ(fp.top[i].ad_revenue, base.top[i].ad_revenue) << i;
    EXPECT_EQ(raw.top[i].dest_url, base.top[i].dest_url) << i;
    EXPECT_GT(fp.top[i].page_rank, 5000) << i;  // join filter applied
  }
  EXPECT_LT(fp.stats.rows_to_master, uv.rows() / 10);
  EXPECT_GT(base.stats.time_s / fp.stats.time_s, 1.5);
}

TEST(QueryData, GeneratorsAreDeterministic) {
  const auto a = make_uservisits(1000, 7);
  const auto b = make_uservisits(1000, 7);
  EXPECT_EQ(a.ad_revenue, b.ad_revenue);
  EXPECT_EQ(a.source_ip, b.source_ip);
  const auto t1 = make_tpch(0.05, 9);
  const auto t2 = make_tpch(0.05, 9);
  EXPECT_EQ(t1.lineitem.extendedprice, t2.lineitem.extendedprice);
}

}  // namespace
}  // namespace fpisa::query
