// Utility substrate: deterministic RNG, streaming stats, histograms,
// table rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace fpisa::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(43);
  EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    const auto v = rng.next_below(17);
    ASSERT_LT(v, 17u);
    const auto s = rng.uniform_int(-5, 5);
    ASSERT_GE(s, -5);
    ASSERT_LE(s, 5);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(2);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(4);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v.data(), v.size());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RunningStats, TracksMinMaxCount) {
  RunningStats s;
  for (const double x : {3.0, -1.0, 4.0, 1.5}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.mean(), 1.875, 1e-12);
}

TEST(Log2Histogram, BucketsAndFractions) {
  Log2Histogram h(0, 10);
  h.add(1.5);    // bucket [2^0, 2^1)
  h.add(3.0);    // [2^1, 2^2)
  h.add(200.0);  // [2^7, 2^8)
  h.add(0.0);    // underflow bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.fraction_below_pow2(4), 0.75, 1e-12);  // 1.5, 3.0, and 0
  EXPECT_NEAR(h.fraction_below_pow2(8), 1.0, 1e-12);
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.0, 1.0);
  EXPECT_NEAR(p.percentile(0.9), 90.0, 1.0);
  EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-12);
}

TEST(Percentiles, EmptyReturnsZeroForEveryQuantile) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.median(), 0.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 0.0);
}

TEST(Percentiles, SingleSampleAnswersEveryQuantile) {
  Percentiles p;
  p.add(7.5);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(p.median(), 7.5);
  EXPECT_DOUBLE_EQ(p.percentile(0.99), 7.5);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 7.5);
}

TEST(Percentiles, NearestRankRounding) {
  // idx = floor(q*(n-1) + 0.5): nearest rank, ties round up.
  Percentiles p;
  for (double v : {1.0, 2.0, 3.0, 4.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);   // idx 0
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 3.0);   // idx 2.0 exactly
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 4.0);   // idx 3, clamped in range
  Percentiles two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.median(), 20.0);  // idx 0.5+0.5 = 1: upper of the pair
}

TEST(Reservoir, EmptyAndCountVsSampleSize) {
  Reservoir r(4);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.sample_size(), 0u);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
  for (int i = 0; i < 100; ++i) r.add(i);
  // count() keeps the full stream length; the sample stays capped.
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.sample_size(), 4u);
}

TEST(Reservoir, CapacityOneAlwaysHoldsOneStreamElement) {
  Reservoir r(1);
  for (int i = 0; i < 50; ++i) r.add(10.0 * i);
  EXPECT_EQ(r.sample_size(), 1u);
  const double kept = r.percentile(0.5);
  // Whatever survived, it came from the stream.
  EXPECT_GE(kept, 0.0);
  EXPECT_LE(kept, 490.0);
  EXPECT_DOUBLE_EQ(std::fmod(kept, 10.0), 0.0);
}

TEST(Reservoir, ZeroCapacityIsClampedToOne) {
  Reservoir r(0);
  r.add(3.0);
  r.add(4.0);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_EQ(r.sample_size(), 1u);
}

TEST(Reservoir, SameSeedSameStreamSameSample) {
  Reservoir a(8, 77);
  Reservoir b(8, 77);
  for (int i = 0; i < 1000; ++i) {
    a.add(i * 0.5);
    b.add(i * 0.5);
  }
  EXPECT_EQ(a.sorted_samples(), b.sorted_samples());
}

TEST(Reservoir, UnderCapacityKeepsEverySample) {
  Reservoir r(128);
  for (int i = 1; i <= 10; ++i) r.add(i);
  EXPECT_EQ(r.sample_size(), 10u);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 10.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"A", "Bee"});
  t.add_row({"1", "22"});
  t.add_row({"333"});  // short row padded
  const std::string s = t.render();
  EXPECT_NE(s.find("| A "), std::string::npos);
  EXPECT_NE(s.find("| 333 "), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(AsciiBars, ScalesToMaximum) {
  const std::string s =
      ascii_bars({{"a", 1.0}, {"b", 0.5}}, 10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // full bar for max
  EXPECT_NE(s.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace fpisa::util
