// Rack-scale aggregation: chunk->shard routing, slot-range isolation,
// the multi-tenant service runtime, and the two-level ToR->spine tree —
// including the acceptance property that the hierarchy is bit-identical
// to single-switch FPISA aggregation on the same inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <set>
#include <stdexcept>

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "cluster/shard_router.h"
#include "core/packed.h"
#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa::cluster {
namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

/// Integer-valued magnitudes from one binade ([256, 512)): every FPISA-A
/// add is exact (alignment never drops set bits, exponent gaps stay inside
/// the left-shift headroom), so ANY grouping of the additions — flat,
/// sharded, or two-level tree — must produce bit-identical results.
std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) {
      v = static_cast<float>(256 + rng.next_below(256));
    }
  }
  return out;
}

std::vector<double> exact_sum(const std::vector<std::vector<float>>& w) {
  std::vector<double> ref(w.front().size(), 0.0);
  for (const auto& vec : w) {
    for (std::size_t i = 0; i < vec.size(); ++i) {
      ref[i] += static_cast<double>(vec[i]);
    }
  }
  return ref;
}

// --- routing ---------------------------------------------------------------

TEST(ShardRouter, PartitionCoversEveryChunkExactlyOnce) {
  for (const RoutingPolicy policy :
       {RoutingPolicy::kHash, RoutingPolicy::kRange}) {
    for (const int shards : {1, 3, 4, 8}) {
      ShardRouter router(shards, policy, 7);
      const std::size_t total = 103;
      const auto parts = router.partition(total);
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(shards));
      std::set<std::size_t> seen;
      for (int s = 0; s < shards; ++s) {
        for (const std::size_t c : parts[static_cast<std::size_t>(s)]) {
          EXPECT_EQ(router.route(c, total), s);
          EXPECT_TRUE(seen.insert(c).second) << "chunk assigned twice: " << c;
        }
      }
      EXPECT_EQ(seen.size(), total);
    }
  }
}

TEST(ShardRouter, RangePolicyIsContiguousAndBalanced) {
  ShardRouter router(4, RoutingPolicy::kRange);
  const auto parts = router.partition(10);  // 3,3,2,2
  ASSERT_EQ(parts.size(), 4u);
  std::size_t next = 0;
  for (const auto& p : parts) {
    ASSERT_FALSE(p.empty());
    EXPECT_GE(p.size(), 2u);
    EXPECT_LE(p.size(), 3u);
    for (const std::size_t c : p) EXPECT_EQ(c, next++);
  }
}

TEST(ShardRouter, HashPolicySpreadsChunks) {
  ShardRouter router(4, RoutingPolicy::kHash, 99);
  const auto parts = router.partition(4000);
  for (const auto& p : parts) {
    EXPECT_GT(p.size(), 700u);   // roughly balanced
    EXPECT_LT(p.size(), 1300u);
  }
}

// --- slot-range allocation -------------------------------------------------

TEST(SlotRangeAllocator, RangesAreDisjointAndCoalesceOnRelease) {
  SlotRangeAllocator alloc(16);
  const auto a = alloc.allocate(8);
  const auto b = alloc.allocate(8);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->size() + b->size(), 16u);
  EXPECT_TRUE(a->hi <= b->lo || b->hi <= a->lo);
  EXPECT_FALSE(alloc.allocate(1));  // exhausted

  alloc.release(*a);
  EXPECT_EQ(alloc.free_slots(), 8u);
  alloc.release(*b);
  EXPECT_EQ(alloc.free_slots(), 16u);
  const auto all = alloc.allocate(16);  // coalesced back into one block
  ASSERT_TRUE(all);
  EXPECT_EQ(all->size(), 16u);
  alloc.release(*all);
}

TEST(SlotRangeAllocator, ShrinksRequestsRatherThanFailing) {
  SlotRangeAllocator alloc(8);
  const auto a = alloc.allocate(6);
  ASSERT_TRUE(a);
  const auto b = alloc.allocate(6);  // only 2 left: allocator hands them out
  ASSERT_TRUE(b);
  EXPECT_EQ(b->size(), 2u);
}

// --- service ---------------------------------------------------------------

TEST(ClusterService, MatchesSingleSwitchBitExactOnAnyInput) {
  // Per element, the service performs the same add sequence (worker order,
  // one register) as a single switch — results must be bit-identical even
  // on inputs where FPISA rounds.
  const auto workers = make_workers(4, 120, 91);

  switchml::SessionOptions sopts;
  sopts.num_workers = 4;
  sopts.slots = 16;
  sopts.lanes = 2;
  switchml::AggregationSession single(pisa::SwitchConfig{}, sopts);
  const auto want = single.reduce(workers);

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.lanes = 2;
  copts.slots_per_shard = 16;
  copts.slots_per_job = 8;
  AggregationService service(copts);
  const auto report = service.reduce({"tenant-a", workers});

  ASSERT_EQ(report.result.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(report.result[i]), core::fp32_bits(want[i]))
        << i;
  }
  EXPECT_EQ(report.stats.packets_lost, 0u);
  EXPECT_EQ(report.stats.retransmissions, 0u);
}

TEST(ClusterService, RoutingPoliciesAgreeBitwise) {
  const auto workers = make_workers(3, 77, 92);
  std::vector<float> results[2];
  int r = 0;
  for (const RoutingPolicy policy :
       {RoutingPolicy::kHash, RoutingPolicy::kRange}) {
    ClusterOptions opts;
    opts.num_shards = 4;
    opts.routing = policy;
    AggregationService service(opts);
    results[r++] = service.reduce({"t", workers}).result;
  }
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(core::fp32_bits(results[0][i]), core::fp32_bits(results[1][i]))
        << i;
  }
}

TEST(ClusterService, PerShardStatsSumToJobTotals) {
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 8;
  opts.slots_per_job = 4;
  AggregationService service(opts);
  const auto report = service.reduce({"t", make_workers(2, 64, 93)});

  switchml::SessionStats sum{};
  int active_shards = 0;
  for (const auto& s : report.per_shard) {
    sum.packets_sent += s.packets_sent;
    sum.slot_reuses += s.slot_reuses;
    if (s.packets_sent) ++active_shards;
  }
  EXPECT_EQ(sum.packets_sent, report.stats.packets_sent);
  EXPECT_EQ(sum.slot_reuses, report.stats.slot_reuses);
  EXPECT_GT(active_shards, 1) << "sharding should engage multiple switches";
  EXPECT_EQ(service.jobs_completed(), 1u);
  EXPECT_EQ(service.total_stats().packets_sent, report.stats.packets_sent);
}

TEST(ClusterService, LossInjectionIsBitExactVsLossless) {
  const auto workers = make_exact_workers(4, 48, 94);
  ClusterOptions opts;
  opts.num_shards = 3;
  opts.slots_per_shard = 8;
  opts.slots_per_job = 4;

  AggregationService clean(opts);
  const auto want = clean.reduce({"t", workers}).result;

  opts.loss_rate = 0.25;
  opts.loss_seed = 95;
  AggregationService lossy(opts);
  const auto report = lossy.reduce({"t", workers});

  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(report.result[i]), core::fp32_bits(want[i]))
        << i;
  }
  EXPECT_GT(report.stats.packets_lost, 0u);
  EXPECT_GT(report.stats.retransmissions, 0u);
}

TEST(ClusterService, BatchedCollectIsBitExactVsPerSlot) {
  // The compiled-egress collect (one read_and_reset_batch per wave) must be
  // observably indistinguishable from the per-slot read/reset round trips
  // through the packet sim: identical results and protocol stats, with and
  // without loss (the batched path pre-draws the same loss schedule).
  const auto workers = make_workers(4, 150, 190);
  for (const double loss : {0.0, 0.2}) {
    ClusterOptions opts;
    opts.num_shards = 3;
    opts.slots_per_shard = 16;
    opts.slots_per_job = 8;
    opts.lanes = 2;
    opts.loss_rate = loss;
    opts.loss_seed = 191;
    opts.max_retransmits = 256;

    ClusterOptions per_slot = opts;
    per_slot.batched_collect = false;
    AggregationService fast(opts);
    AggregationService slow(per_slot);

    const auto got = fast.reduce({"t", workers});
    const auto want = slow.reduce({"t", workers});
    ASSERT_EQ(got.result.size(), want.result.size());
    for (std::size_t i = 0; i < want.result.size(); ++i) {
      EXPECT_EQ(core::fp32_bits(got.result[i]),
                core::fp32_bits(want.result[i]))
          << "loss=" << loss << " i=" << i;
    }
    EXPECT_EQ(got.stats.packets_sent, want.stats.packets_sent) << loss;
    EXPECT_EQ(got.stats.packets_lost, want.stats.packets_lost) << loss;
    EXPECT_EQ(got.stats.retransmissions, want.stats.retransmissions) << loss;
    EXPECT_EQ(got.stats.duplicates_absorbed, want.stats.duplicates_absorbed)
        << loss;
    EXPECT_EQ(got.stats.slot_reuses, want.stats.slot_reuses) << loss;
  }
}

TEST(ClusterService, RetransmitExhaustionFailsLoudly) {
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.loss_rate = 1.0;  // nothing ever gets through
  opts.max_retransmits = 2;
  AggregationService service(opts);
  EXPECT_THROW(service.reduce({"t", make_workers(2, 8, 96)}),
               std::runtime_error);
}

TEST(ClusterService, FailedJobDoesNotPoisonNextTenant) {
  // A job that dies mid-flight has delivered some adds: its slots hold
  // partial sums and set dedup-bitmap bits. The service must scrub the
  // slot range before the next tenant reuses it, or that tenant's adds
  // get silently swallowed as duplicates.
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 4;
  opts.slots_per_job = 4;
  AggregationService service(opts);

  JobRequest flaky{"flaky", make_exact_workers(2, 24, 120)};
  flaky.loss_rate = 0.5;       // per-tenant override: terrible fabric...
  flaky.max_retransmits = 0;   // ...and no patience: dies on first loss
  EXPECT_THROW(service.reduce(flaky), std::runtime_error);

  const auto workers = make_exact_workers(2, 24, 121);
  const auto got = service.reduce({"stable", workers}).result;
  AggregationService fresh(opts);
  const auto want = fresh.reduce({"stable", workers}).result;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << i;
  }
}

TEST(ClusterService, ConcurrentTenantsAreIsolated) {
  // Three tenants race over 2 shards with a slot pool sized so they must
  // share: results must match each tenant's own exact sum, and per-tenant
  // accounting must see all three.
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 8;
  opts.slots_per_job = 4;
  opts.worker_threads = 3;
  AggregationService service(opts);

  const auto wa = make_workers(3, 60, 97);
  const auto wb = make_workers(4, 45, 98);
  const auto wc = make_workers(2, 80, 99);
  auto fa = service.submit({"alice", wa});
  auto fb = service.submit({"bob", wb});
  auto fc = service.submit({"carol", wc});
  const auto ra = fa.get();
  const auto rb = fb.get();
  const auto rc = fc.get();

  const auto check = [](const JobReport& r,
                        const std::vector<std::vector<float>>& w) {
    const auto ref = exact_sum(w);
    ASSERT_EQ(r.result.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(r.result[i], ref[i], std::fabs(ref[i]) * 1e-5 + 1e-6) << i;
    }
  };
  check(ra, wa);
  check(rb, wb);
  check(rc, wc);

  EXPECT_EQ(service.jobs_completed(), 3u);
  const auto tenants = service.tenants();
  EXPECT_EQ(tenants.size(), 3u);
  EXPECT_GT(service.tenant_stats("alice").packets_sent, 0u);
  EXPECT_GT(service.tenant_stats("bob").packets_sent, 0u);
  EXPECT_GT(service.tenant_stats("carol").packets_sent, 0u);
  const auto total = service.total_stats();
  EXPECT_EQ(total.packets_sent, service.tenant_stats("alice").packets_sent +
                                    service.tenant_stats("bob").packets_sent +
                                    service.tenant_stats("carol").packets_sent);
}

TEST(ClusterService, BurstOf64SubmitsIsBoundedAndDeterministic) {
  // 64 concurrent submissions may never grow the thread count: the control
  // loops run on the bounded job-runner pool (here 3 threads), so the
  // job-concurrency high-water mark is capped at 3 no matter the burst
  // size — and every report must be identical to a lone job on a fresh
  // service (lossless fabric: results and stats are schedule-independent).
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.job_runner_threads = 3;
  AggregationService service(opts);
  ASSERT_EQ(service.job_runner_threads(), 3);

  const auto workers = make_workers(4, 96, 140);
  AggregationService fresh(opts);
  const auto want = fresh.reduce({"t", workers});

  constexpr int kBurst = 64;
  std::vector<std::future<JobReport>> futures;
  futures.reserve(kBurst);
  for (int j = 0; j < kBurst; ++j) {
    futures.push_back(service.submit({"t", workers}));
  }
  for (auto& f : futures) {
    const JobReport got = f.get();
    ASSERT_EQ(got.result.size(), want.result.size());
    for (std::size_t i = 0; i < want.result.size(); ++i) {
      ASSERT_EQ(core::fp32_bits(got.result[i]),
                core::fp32_bits(want.result[i]))
          << i;
    }
    EXPECT_EQ(got.stats.packets_sent, want.stats.packets_sent);
    EXPECT_EQ(got.stats.slot_reuses, want.stats.slot_reuses);
    EXPECT_EQ(got.stats.packets_lost, 0u);
  }
  EXPECT_EQ(service.jobs_completed(), static_cast<std::uint64_t>(kBurst));
  EXPECT_GE(service.peak_concurrent_jobs(), 1u);
  EXPECT_LE(service.peak_concurrent_jobs(), 3u)
      << "burst must not run more jobs at once than the runner pool has "
         "threads";
}

TEST(ClusterService, ViewReduceIsBitExactVsOwningReduceWithoutCopies) {
  // The zero-copy JobView entry: gradients live in one flat caller buffer,
  // results land in a caller span, and the bits match the legacy owning
  // path exactly — with and without loss.
  for (const double loss : {0.0, 0.2}) {
    ClusterOptions opts;
    opts.num_shards = 3;
    opts.slots_per_shard = 16;
    opts.slots_per_job = 8;
    opts.lanes = 2;
    opts.loss_rate = loss;
    opts.loss_seed = 150;
    opts.max_retransmits = 256;

    const auto workers = make_workers(4, 130, 151);
    AggregationService legacy_service(opts);
    const auto want = legacy_service.reduce({"t", workers});

    std::vector<float> flat;
    for (const auto& w : workers) flat.insert(flat.end(), w.begin(), w.end());
    std::vector<std::span<const float>> views;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      views.push_back({flat.data() + w * 130, 130});
    }
    AggregationService service(opts);
    std::vector<float> out(130);
    const JobReport got = service.reduce(JobView{"t", views}, out);
    EXPECT_TRUE(got.result.empty()) << "view path must not allocate a result";
    EXPECT_EQ(got.stats.packets_sent, want.stats.packets_sent) << loss;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(core::fp32_bits(out[i]), core::fp32_bits(want.result[i]))
          << "loss=" << loss << " i=" << i;
    }
  }
}

TEST(ClusterService, ModeledSecondsGuardsDegenerateInputs) {
  // Satellite regression: empty shard lists, all-zero packet counts or a
  // non-positive line rate model no traffic — the answer is 0 seconds,
  // never NaN/inf/garbage.
  EXPECT_EQ(modeled_shard_parallel_seconds({}, 64, 100.0, 1.0), 0.0);
  const std::vector<switchml::SessionStats> idle(3);  // zero-packet shards
  EXPECT_EQ(modeled_shard_parallel_seconds(idle, 64, 100.0, 1.0), 0.0);
  switchml::SessionStats busy{};
  busy.packets_sent = 1000;
  const std::vector<switchml::SessionStats> mixed{busy, {}, {}};
  EXPECT_EQ(modeled_shard_parallel_seconds(mixed, 64, 0.0, 1.0), 0.0);
  EXPECT_EQ(modeled_shard_parallel_seconds(mixed, 0, 100.0, 1.0), 0.0);
  const double t = modeled_shard_parallel_seconds(mixed, 64, 100.0, 1.0);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(ClusterService, TenantLookupIsHeterogeneous) {
  // Satellite: string_view / literal lookups must hit the tenant books
  // without materializing a temporary std::string (std::less<> map).
  ClusterOptions opts;
  opts.num_shards = 2;
  AggregationService service(opts);
  (void)service.reduce({"alice", make_workers(2, 16, 321)});
  const std::string_view sv = "alice";
  EXPECT_GT(service.tenant_stats(sv).packets_sent, 0u);
  EXPECT_EQ(service.tenant_slo(sv).jobs_completed, 1u);
  EXPECT_EQ(service.tenant_stats("nobody").packets_sent, 0u);
  EXPECT_EQ(service.tenant_slo("nobody").jobs_completed, 0u);
}

// --- hierarchy -------------------------------------------------------------

TEST(Hierarchy, BitIdenticalToSingleSwitchWithFourLeaves) {
  // Acceptance property: a 2-level tree with 4 leaf shards produces the
  // exact bits of single-switch FPISA aggregation on the same inputs.
  HierarchyOptions opts;
  opts.leaves = 4;
  opts.workers_per_leaf = 2;
  opts.slots = 8;
  opts.lanes = 2;
  HierarchicalAggregator tree(opts);

  const auto workers = make_exact_workers(8, 72, 100);
  const auto got = tree.reduce(workers);

  switchml::SessionOptions sopts;
  sopts.num_workers = 8;
  sopts.slots = 8;
  sopts.lanes = 2;
  switchml::AggregationSession single(pisa::SwitchConfig{}, sopts);
  const auto want = single.reduce(workers);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << i;
  }
  // And both equal the exact sum (these inputs make every add exact).
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(static_cast<double>(got[i]), ref[i]) << i;
  }
}

TEST(Hierarchy, CloseToExactOnGaussianGradients) {
  HierarchyOptions opts;
  opts.leaves = 4;
  opts.workers_per_leaf = 2;
  opts.slots = 16;
  HierarchicalAggregator tree(opts);

  const auto workers = make_workers(8, 96, 101);
  const auto got = tree.reduce(workers);
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], std::fabs(ref[i]) * 1e-4 + 1e-5) << i;
  }
}

TEST(Hierarchy, TimingModelIsConsistent) {
  HierarchyOptions opts;
  opts.leaves = 4;
  opts.workers_per_leaf = 2;
  opts.slots = 16;
  HierarchicalAggregator tree(opts);
  (void)tree.reduce(make_workers(8, 64, 102));

  const HierarchyTiming& t = tree.timing();
  EXPECT_GT(t.leaf_done_s, 0.0);
  EXPECT_GT(t.done_s, t.leaf_done_s);  // spine + return hop come after
  EXPECT_GT(t.packets, 0u);
  EXPECT_EQ(t.wire_bytes, t.packets * tree.packet_bytes());
  EXPECT_GT(t.values_per_s(64), 0.0);

  // The tree's worker uplink load equals the flat switch's, so completion
  // times are comparable; the tree only adds the ToR->spine hop.
  const HierarchyTiming flat = flat_baseline_timing(opts, 64);
  EXPECT_GT(flat.done_s, 0.0);
  EXPECT_LT(t.done_s, flat.done_s * 3.0);
  // The spine terminates `leaves` flows instead of every worker's: the
  // tree moves fewer request packets into its root than the flat switch.
  EXPECT_LT(t.packets, flat.packets * 2);
}

TEST(Hierarchy, FullFpisaSpineSurvivesCancelledLeafPartials) {
  // Composition hazard: leaf 0's workers nearly cancel, so its partial
  // (2^-10) pins the spine's FPISA-A register exponent; the other leaves'
  // partials (-0.125, exponent gap exactly 7 = the headroom) left-shift
  // into the register and their sum wraps 32 bits — a value-scale error.
  // The default full-FPISA spine right-shifts the stored mantissa instead.
  const std::vector<std::vector<float>> workers = {
      {1.0009765625f}, {-1.0f},  // leaf 0: partial = 2^-10
      {-0.0625f}, {-0.0625f},    // leaf 1: partial = -0.125
      {-0.0625f}, {-0.0625f},    // leaf 2
      {-0.0625f}, {-0.0625f},    // leaf 3
  };
  const double ref = -0.375 + 0.0009765625;

  HierarchyOptions opts;
  opts.leaves = 4;
  opts.workers_per_leaf = 2;
  opts.slots = 4;

  opts.full_fpisa_spine = false;  // FPISA-A spine: register wraps
  HierarchicalAggregator wrapping(opts);
  const auto bad = wrapping.reduce(workers);
  EXPECT_GT(std::fabs(static_cast<double>(bad[0]) - ref), 0.1)
      << "expected the FPISA-A spine to wrap on this input";

  opts.full_fpisa_spine = true;  // extended spine: exact
  HierarchicalAggregator safe(opts);
  const auto good = safe.reduce(workers);
  EXPECT_EQ(static_cast<double>(good[0]), ref);
}

TEST(Hierarchy, ScalesToEightLeaves) {
  HierarchyOptions opts;
  opts.leaves = 8;
  opts.workers_per_leaf = 2;
  opts.slots = 8;
  HierarchicalAggregator tree(opts);
  const auto workers = make_exact_workers(16, 40, 103);
  const auto got = tree.reduce(workers);
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(static_cast<double>(got[i]), ref[i]) << i;
  }
}

}  // namespace
}  // namespace fpisa::cluster
