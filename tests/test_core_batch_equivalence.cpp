// Differential proof obligations for the batched branchless datapath:
// fpisa_add_batch (every available backend) must be BIT-identical to the
// scalar reference — register state AND OpCounters totals — across:
//   * the exhaustive FP16 value space lifted to FP32 (covers ±0, all
//     subnormals, all normals, ±inf, NaN payloads in 65536 patterns),
//   * adversarial FP32 streams (headroom boundaries, cancellation, huge
//     exponent gaps, denormals),
//   * randomized FP32 streams,
// for both variants (kFull / kApproximate) and both overflow policies
// (kSaturate / kWrap), plus guard-bit configs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batch_accumulator.h"
#include "core/packed.h"
#include "core/vector_accumulator.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

struct ScalarResult {
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
  OpCounters counters;
};

/// Oracle: the per-element reference loop (extract + skip-nonfinite +
/// fpisa_add), exactly as the pre-batching FpisaVector ran it.
ScalarResult run_scalar_reference(std::span<const std::uint32_t> stream,
                                  std::size_t regs,
                                  const AccumulatorConfig& cfg) {
  ScalarResult r;
  r.exp.assign(regs, 0);
  r.man.assign(regs, 0);
  for (std::size_t base = 0; base < stream.size(); base += regs) {
    for (std::size_t i = 0; i < regs && base + i < stream.size(); ++i) {
      const ExtractResult ex = extract(stream[base + i], cfg.format);
      if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
        ++r.counters.nonfinite_inputs;
        continue;
      }
      FpState s{r.exp[i], r.man[i]};
      fpisa_add(s, ex.value, cfg, r.counters);
      r.exp[i] = s.exp;
      r.man[i] = s.man;
    }
  }
  return r;
}

void expect_counters_eq(const OpCounters& got, const OpCounters& want,
                        const std::string& what) {
  EXPECT_EQ(got.adds, want.adds) << what;
  EXPECT_EQ(got.rounded_adds, want.rounded_adds) << what;
  EXPECT_EQ(got.overwrites, want.overwrites) << what;
  EXPECT_EQ(got.lshift_overflows, want.lshift_overflows) << what;
  EXPECT_EQ(got.saturations, want.saturations) << what;
  EXPECT_EQ(got.nonfinite_inputs, want.nonfinite_inputs) << what;
  EXPECT_EQ(got.zero_inputs, want.zero_inputs) << what;
}

std::string backend_tag(BatchBackend b) {
  return b == BatchBackend::kAvx2 ? "avx2" : "scalar";
}

/// Feeds `stream` wave-by-wave into `regs` registers through both paths on
/// every available backend and demands bit-identical state + counters.
void check_stream(std::span<const std::uint32_t> stream, std::size_t regs,
                  const AccumulatorConfig& cfg, const std::string& what) {
  const ScalarResult want = run_scalar_reference(stream, regs, cfg);
  for (const BatchBackend backend : available_batch_backends()) {
    force_batch_backend(backend);
    std::vector<std::int32_t> exp(regs, 0);
    std::vector<std::int64_t> man(regs, 0);
    OpCounters counters;
    for (std::size_t base = 0; base < stream.size(); base += regs) {
      const std::size_t n = std::min(regs, stream.size() - base);
      fpisa_add_batch(stream.subspan(base, n), {exp.data(), n},
                      {man.data(), n}, cfg, counters);
    }
    reset_batch_backend();
    const std::string tag = what + " [" + backend_tag(backend) + "]";
    for (std::size_t i = 0; i < regs; ++i) {
      ASSERT_EQ(exp[i], want.exp[i]) << tag << " exp reg " << i;
      ASSERT_EQ(man[i], want.man[i]) << tag << " man reg " << i;
    }
    expect_counters_eq(counters, want.counters, tag);
  }
}

std::vector<AccumulatorConfig> sweep_configs() {
  std::vector<AccumulatorConfig> cfgs;
  for (const Variant v : {Variant::kFull, Variant::kApproximate}) {
    for (const OverflowPolicy p :
         {OverflowPolicy::kSaturate, OverflowPolicy::kWrap}) {
      AccumulatorConfig c;
      c.variant = v;
      c.overflow = p;
      cfgs.push_back(c);
      c.guard_bits = 4;  // Appendix A.1 guard-bit configuration
      cfgs.push_back(c);
      // Non-default register widths: reg_bits != 32 takes the generic
      // 64-bit-lane kernel on AVX2 (reg_bits 32 has its own 8-lane
      // specialization), and reg_bits 26 stresses tight headroom.
      for (const int reg_bits : {26, 40, 63}) {
        AccumulatorConfig w;
        w.variant = v;
        w.overflow = p;
        w.reg_bits = reg_bits;
        cfgs.push_back(w);
        if (reg_bits >= 30) {
          w.guard_bits = 4;
          cfgs.push_back(w);
        }
      }
    }
  }
  return cfgs;
}

TEST(BatchEquivalence, ExhaustiveFp16LiftedToFp32) {
  // Every FP16 bit pattern decoded to its exact FP32 value: a complete
  // sweep of sign/zero/subnormal/normal/inf/NaN structure in 64Ki inputs.
  std::vector<std::uint32_t> stream;
  stream.reserve(1u << 16);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    stream.push_back(
        fp32_bits(static_cast<float>(decode(h, kFp16))));
  }
  for (const auto& cfg : sweep_configs()) {
    check_stream(stream, 128, cfg,
                 std::string("fp16-exhaustive variant=") +
                     (cfg.variant == Variant::kFull ? "full" : "approx") +
                     " wrap=" +
                     (cfg.overflow == OverflowPolicy::kWrap ? "1" : "0") +
                     " g=" + std::to_string(cfg.guard_bits));
  }
}

TEST(BatchEquivalence, HeadroomBoundaryAndAdversarialCases) {
  // FPISA-A decision boundaries: exponent deltas of exactly headroom,
  // headroom±1, huge gaps both directions, cancellation to zero, denormal
  // feeds, and saturation pressure from same-sign maxed mantissas.
  std::vector<std::uint32_t> stream;
  const float base = 1.0f;  // exponent 127
  auto push = [&](float f) { stream.push_back(fp32_bits(f)); };
  push(base);
  for (int d = 5; d <= 9; ++d) push(std::ldexp(base, d));   // h-2 .. h+2
  for (int d = 5; d <= 9; ++d) push(std::ldexp(base, -d));  // align shifts
  push(-std::ldexp(base, 9));     // negative large: overwrite with sign
  push(0.0f);
  push(-0.0f);
  push(std::numeric_limits<float>::infinity());
  push(-std::numeric_limits<float>::infinity());
  push(std::numeric_limits<float>::quiet_NaN());
  push(std::numeric_limits<float>::denorm_min());
  push(-std::numeric_limits<float>::denorm_min());
  push(std::numeric_limits<float>::max());
  push(std::numeric_limits<float>::max());  // saturate/wrap the register
  push(-std::numeric_limits<float>::max());
  push(std::numeric_limits<float>::min());  // smallest normal
  // Cancellation: +x then -x leaves man == 0 with a pinned exponent.
  push(3.25f);
  push(-3.25f);
  push(std::ldexp(1.0f, -120));  // tiny after cancellation
  for (const auto& cfg : sweep_configs()) {
    // One register: the whole stream hammers the same accumulator state.
    check_stream(stream, 1, cfg, "adversarial single-register");
    check_stream(stream, 5, cfg, "adversarial strided");
  }
}

TEST(BatchEquivalence, RandomizedFp32Streams) {
  util::Rng rng(0xBA7C4);
  for (const auto& cfg : sweep_configs()) {
    for (int round = 0; round < 4; ++round) {
      std::vector<std::uint32_t> stream(8192);
      for (auto& u : stream) {
        switch (rng.next_u64() % 4) {
          case 0:  // well-scaled gradients
            u = fp32_bits(static_cast<float>(rng.normal(0.0, 0.1)));
            break;
          case 1:  // wide exponent spread
            u = fp32_bits(static_cast<float>(
                std::ldexp(rng.uniform(-1.0, 1.0),
                           static_cast<int>(rng.next_u64() % 64) - 32)));
            break;
          case 2:  // raw bit noise (hits inf/NaN/subnormal encodings)
            u = static_cast<std::uint32_t>(rng.next_u64());
            break;
          default:  // exact zeros and sign noise
            u = (rng.next_u64() & 1) ? 0x80000000u : 0u;
            break;
        }
      }
      check_stream(stream, 64, cfg, "random round " + std::to_string(round));
    }
  }
}

TEST(BatchEquivalence, ReadFastPathMatchesGeneralAssemble) {
  // FpisaVector::read's truncating fast path must agree bit-for-bit with
  // the general fpisa_read on every register state a stream can produce —
  // including cancellation-to-zero, saturated registers, and states whose
  // renormalized output is subnormal (FTZ boundary) or overflows.
  util::Rng rng(0xF00D);
  for (const auto& cfg : sweep_configs()) {
    FpisaVector vec(256, cfg);
    std::vector<float> stream(256);
    for (int round = 0; round < 6; ++round) {
      for (auto& v : stream) {
        v = static_cast<float>(
            std::ldexp(rng.uniform(-1.0, 1.0),
                       static_cast<int>(rng.next_u64() % 120) - 60));
      }
      vec.add(stream);
    }
    std::vector<float> got(256);
    vec.read(got);
    for (std::size_t i = 0; i < 256; ++i) {
      const auto want = fpisa_read(vec.state(i), cfg);
      ASSERT_EQ(fp32_bits(got[i]),
                static_cast<std::uint32_t>(want.bits))
          << "element " << i;
    }
  }
}

TEST(BatchEquivalence, NonFp32FormatsFallBackToReference) {
  // bf16 layout is not batch-eligible; add_bits must still agree with the
  // element-wise reference (it IS the reference on this path).
  AccumulatorConfig cfg;
  cfg.format = kBf16;
  EXPECT_FALSE(batch_eligible(cfg));
  FpisaVector vec(32, cfg);
  util::Rng rng(99);
  std::vector<std::uint64_t> bits(32);
  for (auto& b : bits) {
    b = encode(rng.normal(0.0, 1.0), kBf16);
  }
  vec.add_bits(bits);
  FpisaAccumulator ref(cfg);
  ref.add_bits(bits[7]);
  EXPECT_EQ(vec.state(7).exp, ref.state().exp);
  EXPECT_EQ(vec.state(7).man, ref.state().man);
}

TEST(BatchEquivalence, BackendReportsAndDispatch) {
  EXPECT_FALSE(available_batch_backends().empty());
  EXPECT_EQ(available_batch_backends().front(), BatchBackend::kScalar);
  force_batch_backend(BatchBackend::kScalar);
  EXPECT_EQ(batch_backend(), BatchBackend::kScalar);
  EXPECT_EQ(batch_backend_name(), "scalar");
  reset_batch_backend();
#if defined(FPISA_HAVE_AVX2)
  // When compiled in and the CPU supports it, AVX2 must be the default.
  if (available_batch_backends().size() > 1) {
    EXPECT_EQ(batch_backend(), BatchBackend::kAvx2);
  }
#endif
}

}  // namespace
}  // namespace fpisa::core
