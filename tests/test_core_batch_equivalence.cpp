// Differential proof obligations for the batched branchless datapath:
// fpisa_add_batch (every available backend) must be BIT-identical to the
// scalar reference — register state AND OpCounters totals — across:
//   * the exhaustive FP16 value space lifted to FP32 (covers ±0, all
//     subnormals, all normals, ±inf, NaN payloads in 65536 patterns),
//   * adversarial FP32 streams (headroom boundaries, cancellation, huge
//     exponent gaps, denormals),
//   * randomized FP32 streams,
// for both variants (kFull / kApproximate) and both overflow policies
// (kSaturate / kWrap), plus guard-bit configs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batch_accumulator.h"
#include "core/packed.h"
#include "core/vector_accumulator.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

struct ScalarResult {
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
  OpCounters counters;
};

/// Oracle: the per-element reference loop (extract + skip-nonfinite +
/// fpisa_add), exactly as the pre-batching FpisaVector ran it.
ScalarResult run_scalar_reference(std::span<const std::uint32_t> stream,
                                  std::size_t regs,
                                  const AccumulatorConfig& cfg) {
  ScalarResult r;
  r.exp.assign(regs, 0);
  r.man.assign(regs, 0);
  for (std::size_t base = 0; base < stream.size(); base += regs) {
    for (std::size_t i = 0; i < regs && base + i < stream.size(); ++i) {
      const ExtractResult ex = extract(stream[base + i], cfg.format);
      if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
        ++r.counters.nonfinite_inputs;
        continue;
      }
      FpState s{r.exp[i], r.man[i]};
      fpisa_add(s, ex.value, cfg, r.counters);
      r.exp[i] = s.exp;
      r.man[i] = s.man;
    }
  }
  return r;
}

void expect_counters_eq(const OpCounters& got, const OpCounters& want,
                        const std::string& what) {
  EXPECT_EQ(got.adds, want.adds) << what;
  EXPECT_EQ(got.rounded_adds, want.rounded_adds) << what;
  EXPECT_EQ(got.overwrites, want.overwrites) << what;
  EXPECT_EQ(got.lshift_overflows, want.lshift_overflows) << what;
  EXPECT_EQ(got.saturations, want.saturations) << what;
  EXPECT_EQ(got.nonfinite_inputs, want.nonfinite_inputs) << what;
  EXPECT_EQ(got.zero_inputs, want.zero_inputs) << what;
}

std::string backend_tag(BatchBackend b) {
  return b == BatchBackend::kAvx2 ? "avx2" : "scalar";
}

/// Feeds `stream` wave-by-wave into `regs` registers through both paths on
/// every available backend and demands bit-identical state + counters.
void check_stream(std::span<const std::uint32_t> stream, std::size_t regs,
                  const AccumulatorConfig& cfg, const std::string& what) {
  const ScalarResult want = run_scalar_reference(stream, regs, cfg);
  for (const BatchBackend backend : available_batch_backends()) {
    force_batch_backend(backend);
    std::vector<std::int32_t> exp(regs, 0);
    std::vector<std::int64_t> man(regs, 0);
    OpCounters counters;
    for (std::size_t base = 0; base < stream.size(); base += regs) {
      const std::size_t n = std::min(regs, stream.size() - base);
      fpisa_add_batch(stream.subspan(base, n), {exp.data(), n},
                      {man.data(), n}, cfg, counters);
    }
    reset_batch_backend();
    const std::string tag = what + " [" + backend_tag(backend) + "]";
    for (std::size_t i = 0; i < regs; ++i) {
      ASSERT_EQ(exp[i], want.exp[i]) << tag << " exp reg " << i;
      ASSERT_EQ(man[i], want.man[i]) << tag << " man reg " << i;
    }
    expect_counters_eq(counters, want.counters, tag);
  }
}

std::vector<AccumulatorConfig> sweep_configs() {
  std::vector<AccumulatorConfig> cfgs;
  for (const Variant v : {Variant::kFull, Variant::kApproximate}) {
    for (const OverflowPolicy p :
         {OverflowPolicy::kSaturate, OverflowPolicy::kWrap}) {
      AccumulatorConfig c;
      c.variant = v;
      c.overflow = p;
      cfgs.push_back(c);
      c.guard_bits = 4;  // Appendix A.1 guard-bit configuration
      cfgs.push_back(c);
      // Non-default register widths: reg_bits != 32 takes the generic
      // 64-bit-lane kernel on AVX2 (reg_bits 32 has its own 8-lane
      // specialization), and reg_bits 26 stresses tight headroom.
      for (const int reg_bits : {26, 40, 63}) {
        AccumulatorConfig w;
        w.variant = v;
        w.overflow = p;
        w.reg_bits = reg_bits;
        cfgs.push_back(w);
        if (reg_bits >= 30) {
          w.guard_bits = 4;
          cfgs.push_back(w);
        }
      }
    }
  }
  return cfgs;
}

TEST(BatchEquivalence, ExhaustiveFp16LiftedToFp32) {
  // Every FP16 bit pattern decoded to its exact FP32 value: a complete
  // sweep of sign/zero/subnormal/normal/inf/NaN structure in 64Ki inputs.
  std::vector<std::uint32_t> stream;
  stream.reserve(1u << 16);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    stream.push_back(
        fp32_bits(static_cast<float>(decode(h, kFp16))));
  }
  for (const auto& cfg : sweep_configs()) {
    check_stream(stream, 128, cfg,
                 std::string("fp16-exhaustive variant=") +
                     (cfg.variant == Variant::kFull ? "full" : "approx") +
                     " wrap=" +
                     (cfg.overflow == OverflowPolicy::kWrap ? "1" : "0") +
                     " g=" + std::to_string(cfg.guard_bits));
  }
}

TEST(BatchEquivalence, HeadroomBoundaryAndAdversarialCases) {
  // FPISA-A decision boundaries: exponent deltas of exactly headroom,
  // headroom±1, huge gaps both directions, cancellation to zero, denormal
  // feeds, and saturation pressure from same-sign maxed mantissas.
  std::vector<std::uint32_t> stream;
  const float base = 1.0f;  // exponent 127
  auto push = [&](float f) { stream.push_back(fp32_bits(f)); };
  push(base);
  for (int d = 5; d <= 9; ++d) push(std::ldexp(base, d));   // h-2 .. h+2
  for (int d = 5; d <= 9; ++d) push(std::ldexp(base, -d));  // align shifts
  push(-std::ldexp(base, 9));     // negative large: overwrite with sign
  push(0.0f);
  push(-0.0f);
  push(std::numeric_limits<float>::infinity());
  push(-std::numeric_limits<float>::infinity());
  push(std::numeric_limits<float>::quiet_NaN());
  push(std::numeric_limits<float>::denorm_min());
  push(-std::numeric_limits<float>::denorm_min());
  push(std::numeric_limits<float>::max());
  push(std::numeric_limits<float>::max());  // saturate/wrap the register
  push(-std::numeric_limits<float>::max());
  push(std::numeric_limits<float>::min());  // smallest normal
  // Cancellation: +x then -x leaves man == 0 with a pinned exponent.
  push(3.25f);
  push(-3.25f);
  push(std::ldexp(1.0f, -120));  // tiny after cancellation
  for (const auto& cfg : sweep_configs()) {
    // One register: the whole stream hammers the same accumulator state.
    check_stream(stream, 1, cfg, "adversarial single-register");
    check_stream(stream, 5, cfg, "adversarial strided");
  }
}

TEST(BatchEquivalence, RandomizedFp32Streams) {
  util::Rng rng(0xBA7C4);
  for (const auto& cfg : sweep_configs()) {
    for (int round = 0; round < 4; ++round) {
      std::vector<std::uint32_t> stream(8192);
      for (auto& u : stream) {
        switch (rng.next_u64() % 4) {
          case 0:  // well-scaled gradients
            u = fp32_bits(static_cast<float>(rng.normal(0.0, 0.1)));
            break;
          case 1:  // wide exponent spread
            u = fp32_bits(static_cast<float>(
                std::ldexp(rng.uniform(-1.0, 1.0),
                           static_cast<int>(rng.next_u64() % 64) - 32)));
            break;
          case 2:  // raw bit noise (hits inf/NaN/subnormal encodings)
            u = static_cast<std::uint32_t>(rng.next_u64());
            break;
          default:  // exact zeros and sign noise
            u = (rng.next_u64() & 1) ? 0x80000000u : 0u;
            break;
        }
      }
      check_stream(stream, 64, cfg, "random round " + std::to_string(round));
    }
  }
}

// ---------------------------------------------------------------------------
// Egress kernel proof obligations: fpisa_read_batch / fpisa_read_reset_batch
// (every available backend) must be BIT-identical to per-slot fpisa_read —
// output bits, post-read register state, and OpCounters totals (reads are
// stateless: the counters accumulated while building the state must come
// through untouched) — across states reached by the add datapath and raw
// synthesized register states, for both variants and overflow policies.
// ---------------------------------------------------------------------------

/// Renormalizes (exp, man) through both read paths on every backend and
/// demands bit-identical outputs; the reset variant must additionally clear
/// the registers while the plain variant must leave them untouched.
void check_read_state(std::span<const std::int32_t> exp,
                      std::span<const std::int64_t> man,
                      const AccumulatorConfig& cfg, const std::string& what) {
  const std::size_t regs = exp.size();
  std::vector<std::uint32_t> want(regs);
  for (std::size_t i = 0; i < regs; ++i) {
    want[i] =
        static_cast<std::uint32_t>(fpisa_read({exp[i], man[i]}, cfg).bits);
  }
  for (const BatchBackend backend : available_batch_backends()) {
    force_batch_backend(backend);
    const std::string tag = what + " [" + backend_tag(backend) + "]";

    std::vector<std::uint32_t> got(regs, 0xDEADBEEFu);
    fpisa_read_batch(exp, man, got, cfg);
    for (std::size_t i = 0; i < regs; ++i) {
      ASSERT_EQ(got[i], want[i])
          << tag << " reg " << i << " exp=" << exp[i] << " man=" << man[i];
    }

    std::vector<std::int32_t> exp2(exp.begin(), exp.end());
    std::vector<std::int64_t> man2(man.begin(), man.end());
    std::vector<std::uint32_t> got2(regs, 0xDEADBEEFu);
    fpisa_read_reset_batch(exp2, man2, got2, cfg);
    for (std::size_t i = 0; i < regs; ++i) {
      ASSERT_EQ(got2[i], want[i]) << tag << " reset-read reg " << i;
      ASSERT_EQ(exp2[i], 0) << tag << " reset exp reg " << i;
      ASSERT_EQ(man2[i], 0) << tag << " reset man reg " << i;
    }
    reset_batch_backend();
  }
}

TEST(ReadBatchEquivalence, ExhaustiveFp16SingleValueStates) {
  // Every FP16 bit pattern lifted to FP32 and added into its own register:
  // a complete sweep of the single-add state space (±0, all subnormals,
  // all normals — inf/NaN are skipped by the add path and leave (0, 0)),
  // then read back through both paths.
  std::vector<std::uint32_t> stream;
  stream.reserve(1u << 16);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    stream.push_back(fp32_bits(static_cast<float>(decode(h, kFp16))));
  }
  for (const auto& cfg : sweep_configs()) {
    std::vector<std::int32_t> exp(stream.size(), 0);
    std::vector<std::int64_t> man(stream.size(), 0);
    OpCounters counters;
    fpisa_add_batch(stream, exp, man, cfg, counters);
    const OpCounters before = counters;
    check_read_state(exp, man, cfg, "fp16-exhaustive read");
    // Reads are stateless: the counter totals must be exactly what the add
    // phase left behind.
    expect_counters_eq(counters, before, "fp16-exhaustive read counters");
  }
}

TEST(ReadBatchEquivalence, AccumulatedStreamStates) {
  // States produced by whole randomized streams hammering shared registers
  // (cancellation to zero, saturated/wrapped registers, guard-bit configs),
  // via every add backend so both datapaths are crossed.
  util::Rng rng(0x5EED5);
  for (const auto& cfg : sweep_configs()) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::uint32_t> stream(4096);
      for (auto& u : stream) {
        switch (rng.next_u64() % 4) {
          case 0:
            u = fp32_bits(static_cast<float>(rng.normal(0.0, 0.1)));
            break;
          case 1:
            u = fp32_bits(static_cast<float>(
                std::ldexp(rng.uniform(-1.0, 1.0),
                           static_cast<int>(rng.next_u64() % 120) - 60)));
            break;
          case 2:
            u = static_cast<std::uint32_t>(rng.next_u64());
            break;
          default:
            u = (rng.next_u64() & 1) ? 0x80000000u : 0u;
            break;
        }
      }
      std::vector<std::int32_t> exp(64, 0);
      std::vector<std::int64_t> man(64, 0);
      OpCounters counters;
      for (std::size_t base = 0; base < stream.size(); base += 64) {
        fpisa_add_batch(std::span<const std::uint32_t>(stream).subspan(base, 64),
                        exp, man, cfg, counters);
      }
      check_read_state(exp, man, cfg,
                       "stream-state round " + std::to_string(round));
    }
  }
}

TEST(ReadBatchEquivalence, SynthesizedRawRegisterStates) {
  // Raw (exp, man) pairs the add path may never produce — extreme
  // exponents, full-width mantissas, INT64_MIN — must still renormalize
  // bit-identically to the reference (the kernel's shift-clamp rules are
  // exercised here: negative and >= 64 total shifts, subnormal outputs
  // with the leading one far below bit 23).
  util::Rng rng(0xC1Cu);
  AccumulatorConfig cfg;  // default FP32 / 32-bit register config
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
  // Directed corners.
  const std::int32_t exps[] = {0, 1, 18, 23, 127, 254, 255, 300,
                               -1, -300, 100000, -100000};
  const std::int64_t mans[] = {0,  1,  -1, 32, -32, (1 << 23), -(1 << 23),
                               0x7FFFFFFF, -0x7FFFFFFFLL,
                               std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max()};
  for (const auto e : exps) {
    for (const auto m : mans) {
      exp.push_back(e);
      man.push_back(m);
    }
  }
  // Randomized fill.
  while (exp.size() % 4 != 0 || exp.size() < 1024) {
    exp.push_back(static_cast<std::int32_t>(rng.uniform_int(-1000, 1000)));
    man.push_back(static_cast<std::int64_t>(rng.next_u64()) >>
                  (rng.next_u64() % 40));
  }
  check_read_state(exp, man, cfg, "synthesized raw states");
  AccumulatorConfig guarded = cfg;
  guarded.guard_bits = 4;
  check_read_state(exp, man, guarded, "synthesized raw states g=4");
}

TEST(ReadBatchEquivalence, Reg32LaneSpecializationCornersAndFallback) {
  // The 8-lane 32-bit AVX2 read kernel activates for registers of <= 32
  // bits; its invariant gate must route mantissas outside int32 (and
  // exponents near the int32 rim) through the scalar primitive PER 8-BLOCK,
  // so mixed blocks — some lanes in range, some out — are the adversarial
  // shape. Every row must stay bit-identical to per-slot fpisa_read.
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
  const std::int64_t in_range[] = {0, 1, -1, (1 << 23), -(1 << 23),
                                   0x7FFFFFFFLL, -0x80000000LL};
  const std::int64_t out_of_range[] = {
      0x80000000LL, -0x80000001LL, (std::int64_t{1} << 40),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  // Exponents cover the kernel's 2^24 fallback gate both ways; they stop at
  // +-2^30 because the reference assemble's `1 - norm_exp` int cast wraps
  // at the int32 rim, making larger magnitudes ill-defined as an oracle.
  const std::int32_t exps[] = {0, 1, 127, 254, (1 << 24) - 1, (1 << 24),
                               (1 << 24) + 1, -(1 << 24), -(1 << 24) - 1,
                               (1 << 30), -(1 << 30)};
  // Pure in-range blocks, pure out-of-range blocks, and interleavings.
  for (const auto e : exps) {
    for (const auto m : in_range) {
      exp.push_back(e);
      man.push_back(m);
    }
    for (const auto m : out_of_range) {
      exp.push_back(e);
      man.push_back(m);
    }
  }
  // Mixed 8-blocks: alternate one in-range / one out-of-range lane.
  util::Rng rng(0x32B17);
  for (int k = 0; k < 256; ++k) {
    const bool out_lane = (k & 1) != 0;
    exp.push_back(static_cast<std::int32_t>(rng.uniform_int(-300, 300)));
    man.push_back(out_lane
                      ? (std::int64_t{1} << 33) +
                            static_cast<std::int64_t>(rng.next_u64() & 0xFFFF)
                      : static_cast<std::int64_t>(
                            static_cast<std::int32_t>(rng.next_u64())));
  }
  for (const int reg_bits : {0, 26}) {  // 0: default 32-bit register
    AccumulatorConfig cfg;
    cfg.reg_bits = reg_bits;
    check_read_state(exp, man, cfg,
                     "reg32 corners reg_bits=" + std::to_string(reg_bits));
    AccumulatorConfig guarded = cfg;
    guarded.guard_bits = 4;
    check_read_state(exp, man, guarded,
                     "reg32 corners g=4 reg_bits=" + std::to_string(reg_bits));
  }
}

TEST(ReadBatchEquivalence, Reg32BackendsAgreeAtInt32ExponentRim) {
  // Exponents at the int32 rim make the reference assemble ill-defined (its
  // `1 - norm_exp` int cast wraps), so the property that CAN be pinned down
  // is backend consistency: every backend must emit the same bits for the
  // same state regardless of whether it lands in a vectorized 8-block or a
  // scalar tail — i.e. the AVX2 fallback gate must route the rim to the
  // scalar primitive (abs_epi32's INT32_MIN fixed point once let it slip
  // through and wrap norm_exp).
  const std::int32_t rim[] = {std::numeric_limits<std::int32_t>::min(),
                              std::numeric_limits<std::int32_t>::min() + 1,
                              std::numeric_limits<std::int32_t>::max()};
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;
  for (const auto e : rim) {
    for (const std::int64_t m : {1LL, -1LL, 0x7FFFFFLL, -0x800000LL}) {
      exp.push_back(e);
      man.push_back(m);
    }
  }
  while (exp.size() % 8 != 0) {  // full blocks: every lane vector-eligible
    exp.push_back(127);
    man.push_back(1 << 23);
  }
  const AccumulatorConfig cfg;  // default 32-bit register
  std::vector<std::vector<std::uint32_t>> per_backend;
  for (const BatchBackend backend : available_batch_backends()) {
    force_batch_backend(backend);
    std::vector<std::uint32_t> got(exp.size(), 0xDEADBEEFu);
    fpisa_read_batch(exp, man, got, cfg);
    reset_batch_backend();
    per_backend.push_back(std::move(got));
  }
  for (std::size_t b = 1; b < per_backend.size(); ++b) {
    for (std::size_t i = 0; i < exp.size(); ++i) {
      ASSERT_EQ(per_backend[b][i], per_backend[0][i])
          << "backend " << b << " reg " << i << " exp=" << exp[i]
          << " man=" << man[i];
    }
  }
}

TEST(ReadBatchEquivalence, IneligibleConfigsFallBackToReference) {
  // Non-truncating read rounding and non-FP32 layouts are not eligible;
  // the entry points must still produce the per-slot reference results.
  AccumulatorConfig nearest;
  nearest.read_rounding = Rounding::kNearestEven;
  nearest.guard_bits = 4;
  EXPECT_TRUE(batch_eligible(nearest));
  EXPECT_FALSE(read_batch_eligible(nearest));

  std::vector<std::int32_t> exp = {120, 127, 140, 0};
  std::vector<std::int64_t> man = {(1 << 24) + 3, -((1 << 24) + 5), 7, 0};
  check_read_state(exp, man, nearest, "nearest-even fallback");

  AccumulatorConfig bf16;
  bf16.format = kBf16;
  EXPECT_FALSE(read_batch_eligible(bf16));
}

TEST(BatchEquivalence, ReadFastPathMatchesGeneralAssemble) {
  // FpisaVector::read's truncating fast path must agree bit-for-bit with
  // the general fpisa_read on every register state a stream can produce —
  // including cancellation-to-zero, saturated registers, and states whose
  // renormalized output is subnormal (FTZ boundary) or overflows.
  util::Rng rng(0xF00D);
  for (const auto& cfg : sweep_configs()) {
    FpisaVector vec(256, cfg);
    std::vector<float> stream(256);
    for (int round = 0; round < 6; ++round) {
      for (auto& v : stream) {
        v = static_cast<float>(
            std::ldexp(rng.uniform(-1.0, 1.0),
                       static_cast<int>(rng.next_u64() % 120) - 60));
      }
      vec.add(stream);
    }
    std::vector<float> got(256);
    vec.read(got);
    for (std::size_t i = 0; i < 256; ++i) {
      const auto want = fpisa_read(vec.state(i), cfg);
      ASSERT_EQ(fp32_bits(got[i]),
                static_cast<std::uint32_t>(want.bits))
          << "element " << i;
    }
  }
}

TEST(BatchEquivalence, NonFp32FormatsFallBackToReference) {
  // bf16 layout is not batch-eligible; add_bits must still agree with the
  // element-wise reference (it IS the reference on this path).
  AccumulatorConfig cfg;
  cfg.format = kBf16;
  EXPECT_FALSE(batch_eligible(cfg));
  FpisaVector vec(32, cfg);
  util::Rng rng(99);
  std::vector<std::uint64_t> bits(32);
  for (auto& b : bits) {
    b = encode(rng.normal(0.0, 1.0), kBf16);
  }
  vec.add_bits(bits);
  FpisaAccumulator ref(cfg);
  ref.add_bits(bits[7]);
  EXPECT_EQ(vec.state(7).exp, ref.state().exp);
  EXPECT_EQ(vec.state(7).man, ref.state().man);
}

TEST(BatchEquivalence, BackendReportsAndDispatch) {
  EXPECT_FALSE(available_batch_backends().empty());
  EXPECT_EQ(available_batch_backends().front(), BatchBackend::kScalar);
  force_batch_backend(BatchBackend::kScalar);
  EXPECT_EQ(batch_backend(), BatchBackend::kScalar);
  EXPECT_EQ(batch_backend_name(), "scalar");
  reset_batch_backend();
#if defined(FPISA_HAVE_AVX2)
  // When compiled in and the CPU supports it, AVX2 must be the default.
  if (available_batch_backends().size() > 1) {
    EXPECT_EQ(batch_backend(), BatchBackend::kAvx2);
  }
#endif
}

}  // namespace
}  // namespace fpisa::core
