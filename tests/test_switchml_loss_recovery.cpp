// Focused loss-recovery coverage for switchml::AggregationSession: lossy
// runs converge bit-exactly, the retransmission/duplicate counters obey
// their protocol invariants, and retransmit exhaustion fails loudly
// instead of silently dropping a chunk.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/packed.h"
#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa::switchml {
namespace {

/// One-binade integer magnitudes: every FPISA add is exact, so any
/// protocol-level double-count or drop shows up as a bit difference.
std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

TEST(LossRecovery, LossyRunIsBitExactVsLossless) {
  SessionOptions opts;
  opts.num_workers = 8;
  opts.slots = 8;
  opts.lanes = 2;
  const auto workers = make_exact_workers(8, 80, 110);

  AggregationSession clean(pisa::SwitchConfig{}, opts);
  const auto want = clean.reduce(workers);

  opts.loss_rate = 0.2;
  opts.loss_seed = 111;
  AggregationSession lossy(pisa::SwitchConfig{}, opts);
  const auto got = lossy.reduce(workers);

  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(fpisa::core::fp32_bits(got[i]), fpisa::core::fp32_bits(want[i]))
        << i;
  }
  EXPECT_GT(lossy.stats().packets_lost, 0u);
}

TEST(LossRecovery, StatsObeyProtocolInvariants) {
  for (const double loss : {0.1, 0.3, 0.5}) {
    SessionOptions opts;
    opts.num_workers = 4;
    opts.slots = 4;
    opts.loss_rate = loss;
    opts.loss_seed = 112 + static_cast<std::uint64_t>(loss * 10);
    opts.max_retransmits = 512;
    AggregationSession session(pisa::SwitchConfig{}, opts);
    (void)session.reduce(make_exact_workers(4, 32, 113));

    const SessionStats& s = session.stats();
    // Every retransmission is itself a sent packet.
    EXPECT_LT(s.retransmissions, s.packets_sent) << "loss=" << loss;
    // At most one loss is charged per send attempt.
    EXPECT_LE(s.packets_lost, s.packets_sent) << "loss=" << loss;
    // A duplicate needs a prior successful delivery AND a retransmission.
    EXPECT_LE(s.duplicates_absorbed, s.retransmissions) << "loss=" << loss;
    // Loss must actually have been exercised at these rates.
    EXPECT_GT(s.packets_lost, 0u) << "loss=" << loss;
    EXPECT_GT(s.retransmissions, 0u) << "loss=" << loss;
    // Each slot is recycled at least once per completed wave.
    EXPECT_GE(s.slot_reuses, 32u / opts.slots) << "loss=" << loss;
  }
}

TEST(LossRecovery, NoLossMeansNoRecoveryTraffic) {
  SessionOptions opts;
  opts.num_workers = 3;
  opts.slots = 8;
  AggregationSession session(pisa::SwitchConfig{}, opts);
  (void)session.reduce(make_exact_workers(3, 48, 114));
  EXPECT_EQ(session.stats().packets_lost, 0u);
  EXPECT_EQ(session.stats().retransmissions, 0u);
  EXPECT_EQ(session.stats().duplicates_absorbed, 0u);
  // sends = chunks * (workers add + read + reset), no extras
  EXPECT_EQ(session.stats().packets_sent, 48u * (3u + 2u));
}

TEST(LossRecovery, RetransmitExhaustionThrowsOnAdds) {
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 4;
  opts.loss_rate = 1.0;  // the network is gone
  opts.max_retransmits = 3;
  AggregationSession session(pisa::SwitchConfig{}, opts);
  EXPECT_THROW((void)session.reduce(make_exact_workers(2, 8, 115)),
               std::runtime_error);
  // Every attempt was spent before giving up: first chunk's first worker
  // sent 1 + max_retransmits packets, all lost.
  EXPECT_EQ(session.stats().packets_sent, 4u);
  EXPECT_EQ(session.stats().packets_lost, 4u);
  EXPECT_EQ(session.stats().retransmissions, 3u);
}

TEST(LossRecovery, ExtremeLossStillConvergesWithEnoughRetries) {
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 2;
  opts.loss_rate = 0.6;
  opts.loss_seed = 116;
  opts.max_retransmits = 4096;
  AggregationSession session(pisa::SwitchConfig{}, opts);
  const auto workers = make_exact_workers(2, 12, 117);
  const auto got = session.reduce(workers);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double ref = static_cast<double>(workers[0][i]) +
                       static_cast<double>(workers[1][i]);
    EXPECT_EQ(static_cast<double>(got[i]), ref) << i;
  }
  EXPECT_GT(session.stats().duplicates_absorbed, 0u);
}

}  // namespace
}  // namespace fpisa::switchml
