// Structural hardware cost model (Table 1 substitution). The assertions
// check the *ratios* the paper's argument depends on, not absolute values.
#include <gtest/gtest.h>

#include "hw/cell_library.h"
#include "hw/units.h"

namespace fpisa::hw {
namespace {

TEST(CellLibrary, BagAccumulates) {
  CellBag b;
  b.add(Cell::kNand2, 10);
  b.add(Cell::kNand2, 5);
  b.add(Cell::kDff, 2);
  EXPECT_EQ(b.cell_count(), 17);
  EXPECT_DOUBLE_EQ(b.area_um2(),
                   15 * cell(Cell::kNand2).area_um2 + 2 * cell(Cell::kDff).area_um2);
  CellBag c;
  c.add(b, 2);
  EXPECT_EQ(c.cell_count(), 34);
}

TEST(CellLibrary, ChainDelayIsSeries) {
  const double d = chain_delay_ps({Cell::kNand2, Cell::kNand2});
  EXPECT_DOUBLE_EQ(d, 2 * cell(Cell::kNand2).delay_ps);
}

TEST(Components, ScaleWithWidth) {
  EXPECT_GT(adder(64).area_um2(), adder(32).area_um2());
  EXPECT_GT(barrel_shifter(64).area_um2(), barrel_shifter(32).area_um2());
  EXPECT_GT(multiplier(24).area_um2(), adder(24).area_um2());
}

TEST(Table1, FpisaAluOverheadIsSmall) {
  const UnitCost alu = default_alu_cost();
  const UnitCost fp = fpisa_alu_cost();
  // Paper: +22.4% area, +13.0% power, delay nearly unchanged.
  EXPECT_GT(fp.area_um2 / alu.area_um2, 1.05);
  EXPECT_LT(fp.area_um2 / alu.area_um2, 1.40);
  EXPECT_GT(fp.dynamic_uw / alu.dynamic_uw, 1.05);
  EXPECT_LT(fp.dynamic_uw / alu.dynamic_uw, 1.40);
  EXPECT_LT(fp.min_delay_ps / alu.min_delay_ps, 1.05);
}

TEST(Table1, RsawOverheadVsRaw) {
  const UnitCost raw = raw_unit_cost();
  const UnitCost rsaw = rsaw_unit_cost();
  // Paper: +35% area, +13.6% power, +13.5% delay, still < 1 ns.
  EXPECT_GT(rsaw.area_um2 / raw.area_um2, 1.10);
  EXPECT_LT(rsaw.area_um2 / raw.area_um2, 1.50);
  EXPECT_GT(rsaw.min_delay_ps, raw.min_delay_ps);
  EXPECT_LT(rsaw.min_delay_ps / raw.min_delay_ps, 1.30);
  EXPECT_LT(rsaw.min_delay_ps, 1000.0) << "must close timing at 1 GHz";
}

TEST(Table1, HardFpuIsAtLeastFiveTimesTheAlu) {
  const UnitCost alu = default_alu_cost();
  const UnitCost fpu = alu_with_fpu_cost();
  // The paper's core argument: dedicated FP hardware costs > 5x in both
  // area and power — paid even when idle (leakage).
  EXPECT_GE(fpu.area_um2 / alu.area_um2, 5.0);
  EXPECT_GE(fpu.dynamic_uw / alu.dynamic_uw, 5.0);
  EXPECT_GE(fpu.leakage_uw / alu.leakage_uw, 5.0);
}

TEST(Table1, EveryUnitMeetsOneGigahertz) {
  for (const UnitCost& u : table1_units()) {
    EXPECT_LT(u.min_delay_ps, 1000.0) << u.name;
    EXPECT_GT(u.area_um2, 0.0) << u.name;
    EXPECT_GT(u.cells, 0) << u.name;
  }
}

TEST(Table1, MultiplierIsAdderPlusBooleanClass) {
  // Appendix A: the integer multiplier's overhead is "approximately the
  // same as an adder and a boolean module" — i.e. ALU-class, not FPU-class.
  const UnitCost mul = int_multiplier_cost();
  const UnitCost alu = default_alu_cost();
  const UnitCost fpu = alu_with_fpu_cost();
  EXPECT_LT(mul.area_um2, fpu.area_um2 / 2.0);
  EXPECT_LT(mul.area_um2, alu.area_um2 * 3.0);
}

TEST(Table1, RenderIncludesPaperBaseline) {
  const std::string s = render_table1();
  EXPECT_NE(s.find("FPISA RSAW"), std::string::npos);
  EXPECT_NE(s.find("3837.7"), std::string::npos);  // paper column present
}

}  // namespace
}  // namespace fpisa::hw
