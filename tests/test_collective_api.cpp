// The unified collective API's proof obligations: every Communicator
// backend must be BIT-identical — results and SessionStats — to the legacy
// entry point it wraps, under identical seeds; ReduceOp::kMean must equal
// the legacy host-side averaging float-for-float; views must work over
// non-vector<vector> storage (one flat caller-owned buffer), pinning down
// that the API never requires materializing the legacy shape.
#include <gtest/gtest.h>

#include <cmath>

#include "collective/communicator.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::collective {
namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

void expect_bits_eq(std::span<const float> got, std::span<const float> want,
                    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i]))
        << what << " i=" << i;
  }
}

void expect_stats_eq(const switchml::SessionStats& got,
                     const switchml::SessionStats& want,
                     const std::string& what) {
  EXPECT_EQ(got.packets_sent, want.packets_sent) << what;
  EXPECT_EQ(got.packets_lost, want.packets_lost) << what;
  EXPECT_EQ(got.retransmissions, want.retransmissions) << what;
  EXPECT_EQ(got.duplicates_absorbed, want.duplicates_absorbed) << what;
  EXPECT_EQ(got.slot_reuses, want.slot_reuses) << what;
  // The kernel op taxonomy rides along with every stats merge/delta.
  EXPECT_EQ(got.ops.adds, want.ops.adds) << what;
  EXPECT_EQ(got.ops.rounded_adds, want.ops.rounded_adds) << what;
  EXPECT_EQ(got.ops.saturations, want.ops.saturations) << what;
  EXPECT_EQ(got.ops.nonfinite_inputs, want.ops.nonfinite_inputs) << what;
}

// --- host backend ----------------------------------------------------------

TEST(CollectiveHost, EveryAlgorithmMatchesLegacyAggregatorBitExact) {
  const auto workers = make_workers(6, 333, 900);
  const WorkerViews views(workers);

  struct Row {
    HostAlgorithm algo;
    std::unique_ptr<switchml::GradientAggregator> legacy;
  };
  core::AccumulatorConfig fp16_packed;
  fp16_packed.format = core::kFp16;
  std::vector<Row> rows;
  rows.push_back({HostAlgorithm::kExact,
                  std::make_unique<switchml::ExactAggregator>()});
  rows.push_back({HostAlgorithm::kFp32,
                  std::make_unique<switchml::FloatSumAggregator>()});
  rows.push_back({HostAlgorithm::kSwitchMl,
                  std::make_unique<switchml::SwitchMlAggregator>()});
  rows.push_back({HostAlgorithm::kFpisa,
                  std::make_unique<switchml::FpisaAggregator>()});

  for (auto& row : rows) {
    CommunicatorOptions opts;
    opts.backend = Backend::kHost;
    opts.host_algorithm = row.algo;
    const auto comm = make_communicator(opts);
    std::vector<float> got(333);
    const ReduceStats stats = comm->allreduce(views, got);
    const auto want = row.legacy->aggregate(workers);
    expect_bits_eq(got, want, std::string("host ") + std::string(comm->name()));
    EXPECT_EQ(stats.network.packets_sent, 0u);  // no packet protocol on host
  }

  // Packed (FP16 hosts): format plumbed through CommunicatorOptions.
  CommunicatorOptions popts;
  popts.backend = Backend::kHost;
  popts.host_algorithm = HostAlgorithm::kPacked;
  popts.accumulator = fp16_packed;
  const auto packed = make_communicator(popts);
  std::vector<float> got(333);
  (void)packed->allreduce(views, got);
  switchml::PackedSumAggregator legacy(core::kFp16);
  expect_bits_eq(got, legacy.aggregate(workers), "host packed");
}

TEST(CollectiveHost, WrapsCallerOwnedAggregatorWithSharedCounters) {
  // The non-owning adapter: counters accumulate on the caller's object.
  core::AccumulatorConfig cfg;
  cfg.variant = core::Variant::kApproximate;
  switchml::FpisaAggregator agg(cfg);
  HostCommunicator comm(agg);
  EXPECT_EQ(comm.name(), "fpisa-a");

  const auto workers = make_workers(3, 64, 901);
  std::vector<float> out(64);
  (void)comm.allreduce(WorkerViews(workers), out);
  EXPECT_GT(agg.counters().adds, 0u);
  EXPECT_EQ(&comm.aggregator(), &agg);
}

// --- switch backend --------------------------------------------------------

TEST(CollectiveSwitch, MatchesLegacySessionBitExactIncludingStats) {
  for (const double loss : {0.0, 0.2}) {
    switchml::SessionOptions sopts;
    sopts.num_workers = 4;
    sopts.slots = 16;
    sopts.lanes = 2;
    sopts.loss_rate = loss;
    sopts.loss_seed = 902;
    sopts.max_retransmits = 256;

    const auto workers = make_workers(4, 120, 903);
    switchml::AggregationSession legacy(pisa::SwitchConfig{}, sopts);
    const auto want = legacy.reduce(workers);

    CommunicatorOptions opts;
    opts.backend = Backend::kSwitch;
    opts.session = sopts;
    const auto comm = make_communicator(opts);
    std::vector<float> got(120);
    const ReduceStats stats = comm->allreduce(WorkerViews(workers), got);

    expect_bits_eq(got, want, "switch loss=" + std::to_string(loss));
    expect_stats_eq(stats.network, legacy.stats(),
                    "switch loss=" + std::to_string(loss));
    expect_stats_eq(comm->total_stats(), legacy.stats(), "switch cumulative");
  }
}

TEST(CollectiveSwitch, TotalStatsSurviveSessionRecreation) {
  // Changing the worker count recreates the underlying session; the
  // communicator's cumulative stats must keep counting across that.
  switchml::SessionOptions sopts;
  sopts.slots = 16;
  SwitchCommunicator comm(pisa::SwitchConfig{}, sopts);

  std::vector<float> out(40);
  (void)comm.allreduce(WorkerViews(make_workers(4, 40, 910)), out);
  const std::uint64_t after_first = comm.total_stats().packets_sent;
  ASSERT_GT(after_first, 0u);
  (void)comm.allreduce(WorkerViews(make_workers(2, 40, 911)), out);
  EXPECT_GT(comm.total_stats().packets_sent, after_first)
      << "session recreation must not reset the cumulative totals";
}

// --- cluster backend -------------------------------------------------------

TEST(CollectiveCluster, MatchesLegacyServiceBitExactIncludingStats) {
  for (const double loss : {0.0, 0.15}) {
    cluster::ClusterOptions copts;
    copts.num_shards = 3;
    copts.slots_per_shard = 16;
    copts.slots_per_job = 8;
    copts.lanes = 2;
    copts.loss_rate = loss;
    copts.loss_seed = 904;
    copts.max_retransmits = 256;

    const auto workers = make_workers(4, 150, 905);
    cluster::AggregationService legacy(copts);
    const auto want = legacy.reduce({"tenant", workers});

    ClusterCommunicator comm(copts);
    std::vector<float> got(150);
    const ReduceStats stats =
        comm.allreduce(WorkerViews(workers), got, ReduceOp::kSum, "tenant");

    expect_bits_eq(got, want.result, "cluster loss=" + std::to_string(loss));
    expect_stats_eq(stats.network, want.stats,
                    "cluster loss=" + std::to_string(loss));
    ASSERT_EQ(stats.per_shard.size(), want.per_shard.size());
    for (std::size_t s = 0; s < want.per_shard.size(); ++s) {
      expect_stats_eq(stats.per_shard[s], want.per_shard[s],
                      "cluster shard " + std::to_string(s));
    }
    EXPECT_EQ(stats.job_id, want.job_id);
    expect_stats_eq(comm.service().tenant_stats("tenant"), want.stats,
                    "cluster tenant accounting");
  }
}

TEST(CollectiveCluster, SubmitViewsRunZeroCopyOverFlatStorage) {
  // Worker gradients live in ONE flat caller-owned buffer sliced into
  // views — the legacy vector<vector> shape never exists, so nothing can
  // deep-copy it. Async completion via JobHandle + per-tenant handles.
  cluster::ClusterOptions copts;
  copts.num_shards = 2;
  copts.slots_per_shard = 16;
  copts.slots_per_job = 8;
  ClusterCommunicator comm(copts);

  const int w = 4;
  const std::size_t n = 96;
  util::Rng rng(906);
  std::vector<float> flat(w * n);
  for (auto& v : flat) v = static_cast<float>(rng.normal(0.0, 0.1));
  std::vector<std::span<const float>> views;
  for (int i = 0; i < w; ++i) views.push_back({flat.data() + i * n, n});

  TenantHandle tenant = comm.tenant("flat-tenant");
  std::vector<float> out(n);
  JobHandle handle = tenant.submit(WorkerViews(views), out);
  ASSERT_TRUE(handle.valid());
  const ReduceStats stats = handle.wait();
  EXPECT_GT(stats.network.packets_sent, 0u);

  // Same bits as the legacy owning path on a fresh service.
  std::vector<std::vector<float>> legacy_shape;
  for (int i = 0; i < w; ++i) {
    legacy_shape.emplace_back(flat.begin() + i * n,
                              flat.begin() + (i + 1) * n);
  }
  cluster::AggregationService fresh(copts);
  const auto want = fresh.reduce({"flat-tenant", legacy_shape});
  expect_bits_eq(out, want.result, "flat-storage submit");
  EXPECT_GT(comm.service().tenant_stats("flat-tenant").packets_sent, 0u);
}

// --- tree backend ----------------------------------------------------------

TEST(CollectiveTree, MatchesLegacyHierarchyBitExact) {
  cluster::HierarchyOptions hopts;
  hopts.leaves = 4;
  hopts.workers_per_leaf = 2;
  hopts.slots = 16;
  hopts.lanes = 2;

  const auto workers = make_workers(8, 130, 907);
  cluster::HierarchicalAggregator legacy(hopts);
  const auto want = legacy.reduce(workers);

  TreeCommunicator comm(hopts);
  std::vector<float> got(130);
  const ReduceStats stats = comm.allreduce(WorkerViews(workers), got);
  expect_bits_eq(got, want, "tree");
  EXPECT_EQ(stats.network.packets_sent, legacy.timing().packets);
  EXPECT_GT(comm.tree().timing().done_s, 0.0);
}

// --- cross-backend semantics ----------------------------------------------

TEST(Collective, MeanEqualsLegacyHostSideAveragingBitExact) {
  // kMean must reproduce the trainer's historical `sum * (1/W)` exactly.
  const auto workers = make_workers(8, 200, 908);
  const auto comm = make_communicator({});  // host FPISA default
  std::vector<float> sum(200);
  std::vector<float> mean(200);
  (void)comm->allreduce(WorkerViews(workers), sum, ReduceOp::kSum);
  (void)comm->allreduce(WorkerViews(workers), mean, ReduceOp::kMean);
  const float inv_w = 1.0f / 8.0f;
  for (std::size_t i = 0; i < sum.size(); ++i) {
    EXPECT_EQ(core::fp32_bits(sum[i] * inv_w), core::fp32_bits(mean[i])) << i;
  }
}

TEST(Collective, AllBackendsAgreeOnExactInputsThroughOneInterface) {
  // Integer-valued one-binade magnitudes: every FPISA add is exact, so all
  // four fabrics must produce identical bits for the same reduction.
  util::Rng rng(909);
  const int w = 8;
  const std::size_t n = 72;
  std::vector<std::vector<float>> workers(
      w, std::vector<float>(n));
  for (auto& vec : workers) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }

  CommunicatorOptions host;
  CommunicatorOptions sw;
  sw.backend = Backend::kSwitch;
  sw.session.num_workers = w;
  sw.session.slots = 16;
  CommunicatorOptions cl;
  cl.backend = Backend::kCluster;
  cl.cluster.num_shards = 3;
  CommunicatorOptions tr;
  tr.backend = Backend::kTree;
  tr.hierarchy.leaves = 4;
  tr.hierarchy.workers_per_leaf = 2;

  std::vector<float> reference(n);
  bool have_reference = false;
  for (const auto& opts : {host, sw, cl, tr}) {
    const auto comm = make_communicator(opts);
    std::vector<float> out(n);
    (void)comm->allreduce(WorkerViews(workers), out);
    if (!have_reference) {
      reference = out;
      have_reference = true;
      continue;
    }
    expect_bits_eq(out, reference,
                   std::string("backend ") + std::string(comm->name()));
  }
}

TEST(Collective, TenantSloIsUniformAcrossBackends) {
  // Every backend answers the same SLO surface: job outcome counts and
  // p50/p99 job wall time, keyed by tenant ("default" when unnamed).
  const auto workers = make_workers(4, 64, 910);
  CommunicatorOptions tree_opts;
  tree_opts.backend = Backend::kTree;
  tree_opts.hierarchy.leaves = 2;
  tree_opts.hierarchy.workers_per_leaf = 2;
  for (const auto& opts : {CommunicatorOptions{}, tree_opts}) {
    const auto comm = make_communicator(opts);
    std::vector<float> out(64);
    (void)comm->allreduce(WorkerViews(workers), out, ReduceOp::kSum, "team");
    (void)comm->allreduce(WorkerViews(workers), out, ReduceOp::kSum, "team");
    (void)comm->allreduce(WorkerViews(workers), out);  // "default"
    const TenantSlo slo = comm->tenant_slo("team");
    EXPECT_EQ(slo.jobs_completed, 2u) << comm->name();
    EXPECT_EQ(slo.jobs_failed, 0u) << comm->name();
    EXPECT_EQ(slo.jobs_failed_over, 0u) << comm->name();
    EXPECT_GE(slo.p99_wall_s, slo.p50_wall_s) << comm->name();
    EXPECT_EQ(comm->tenant_slo().jobs_completed, 1u) << comm->name();
    EXPECT_EQ(comm->tenant_slo("nobody").jobs_completed, 0u) << comm->name();
  }
}

TEST(CollectiveCluster, FailoverSurfacesThroughCommunicator) {
  // A shard killed mid-wave behind the unified API: the job completes with
  // bits identical to the healthy fabric's, and the re-route is visible in
  // ReduceStats.network and in the per-tenant SLO snapshot.
  const auto workers = make_workers(4, 150, 911);
  cluster::ClusterOptions copts;
  copts.num_shards = 3;
  copts.slots_per_shard = 16;
  copts.slots_per_job = 8;
  copts.failover.enabled = true;

  ClusterCommunicator healthy(copts);
  std::vector<float> want(150);
  (void)healthy.allreduce(WorkerViews(workers), want);

  copts.failover.faults = {cluster::ShardFault{
      1, cluster::FaultKind::kKill, cluster::FaultPhase::kMidAdd, 0, 0.0}};
  ClusterCommunicator comm(copts);
  std::vector<float> out(150);
  const ReduceStats stats =
      comm.allreduce(WorkerViews(workers), out, ReduceOp::kSum, "tenant");

  expect_bits_eq(out, want, "failover through communicator");
  EXPECT_EQ(stats.network.shard_failures, 1u);
  EXPECT_EQ(stats.network.failover_retries, 1u);
  EXPECT_GT(stats.network.chunks_rerouted, 0u);
  EXPECT_EQ(comm.total_stats().packets_sent, stats.network.packets_sent);

  const TenantSlo slo = comm.tenant_slo("tenant");
  EXPECT_EQ(slo.jobs_completed, 1u);
  EXPECT_EQ(slo.jobs_failed_over, 1u);
  EXPECT_FALSE(comm.service().health().alive(1));

  // The substrate-native books also cover jobs submitted asynchronously.
  std::vector<float> out2(150);
  comm.submit(WorkerViews(workers), out2, ReduceOp::kSum, "tenant").wait();
  expect_bits_eq(out2, want, "degraded submit through communicator");
  EXPECT_EQ(comm.tenant_slo("tenant").jobs_completed, 2u);
}

TEST(Collective, ValidatesShapes) {
  const auto comm = make_communicator({});
  std::vector<float> out(4);
  const std::vector<std::vector<float>> empty;
  EXPECT_THROW((void)comm->allreduce(WorkerViews(empty), out),
               std::invalid_argument);
  const auto ragged = std::vector<std::vector<float>>{{1.f, 2.f}, {1.f}};
  EXPECT_THROW((void)comm->allreduce(WorkerViews(ragged), out),
               std::invalid_argument);
  const auto ok = std::vector<std::vector<float>>{{1.f, 2.f}, {3.f, 4.f}};
  EXPECT_THROW((void)comm->allreduce(WorkerViews(ok), out),  // out too long
               std::invalid_argument);
}

}  // namespace
}  // namespace fpisa::collective
