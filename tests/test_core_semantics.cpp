// Semantics documented in Appendix A.1, pinned down as tests:
// reproducibility (same order => same bits), order-dependence (different
// order MAY give different bits — with a concrete witness), divergence
// from IEEE 754, and FP64 accumulation against an exact __int128 reference.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accumulator.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

TEST(Semantics, OrderDependenceWitness) {
  // FPISA-A is order-dependent: the first value pins the exponent
  // register. Witness: {tiny, big} vs {big, tiny} with ratio > 2^7.
  AccumulatorConfig cfg;
  cfg.variant = Variant::kApproximate;
  const float tiny = 1.0f;
  const float big = 512.0f;  // ratio 2^9 > headroom 2^7

  FpisaAccumulator ab(cfg);
  ab.add(tiny);
  ab.add(big);  // overwrites: tiny is lost
  FpisaAccumulator ba(cfg);
  ba.add(big);
  ba.add(tiny);  // aligns tiny under big: kept (within 23 mantissa bits)
  EXPECT_NE(ab.read_bits(), ba.read_bits());
  EXPECT_EQ(ab.read(), 512.0f);
  EXPECT_EQ(ba.read(), 513.0f);
}

TEST(Semantics, SameOrderIsAlwaysBitReproducible) {
  // "the same sequence of operations and values will always produce the
  // same result" — across fresh accumulators and across variants.
  util::Rng rng(90);
  for (const auto variant : {Variant::kFull, Variant::kApproximate}) {
    AccumulatorConfig cfg;
    cfg.variant = variant;
    std::vector<float> stream(500);
    for (auto& v : stream) {
      v = static_cast<float>(rng.normal(0, 1) * std::exp2(rng.uniform_int(-30, 30)));
    }
    std::uint64_t first = 0;
    for (int run = 0; run < 3; ++run) {
      FpisaAccumulator acc(cfg);
      for (const float v : stream) acc.add(v);
      if (run == 0) {
        first = acc.read_bits();
      } else {
        ASSERT_EQ(acc.read_bits(), first);
      }
    }
  }
}

TEST(Semantics, DivergesFromIeeeBySpecifiedRounding) {
  // FPISA rounds toward negative infinity at alignment; IEEE 754 rounds to
  // nearest even. A concrete case where they must differ:
  // 1.0 + (epsilon slightly above half an ulp) in IEEE rounds up;
  // FPISA floors the shifted addend.
  const float big = 1.0f;
  const float eps = std::exp2(-24.0f) * 1.5f;  // 1.5 half-ulps
  FpisaAccumulator acc;
  acc.add(big);
  acc.add(eps);
  const float ieee = big + eps;  // rounds to 1.0 + 2^-23
  EXPECT_GT(ieee, 1.0f);
  EXPECT_EQ(acc.read(), 1.0f);  // floor semantics keep 1.0
  // And symmetric for a negative addend: floor makes the result smaller.
  FpisaAccumulator neg;
  neg.add(big);
  neg.add(-eps);
  EXPECT_LT(neg.read(), 1.0f);
}

TEST(Semantics, Fp64AgainstExactInt128Reference) {
  // For FP64 (64-bit register), validate the full variant against an
  // exact fixed-point reference built with __int128: all inputs share a
  // scale window so the exact sum is representable.
  util::Rng rng(91);
  AccumulatorConfig cfg;
  cfg.format = kFp64;
  for (int trial = 0; trial < 300; ++trial) {
    FpisaAccumulator acc(cfg);
    __int128 exact = 0;
    std::int32_t ref_exp = 0;
    bool first = true;
    const int base = static_cast<int>(rng.uniform_int(-100, 100));
    for (int i = 0; i < 64; ++i) {
      // Same-exponent inputs: FPISA adds exactly; so must the reference.
      const double v = (rng.next_u64() & 1 ? 1.0 : -1.0) *
                       rng.uniform(1.0, 2.0) * std::exp2(base);
      const std::uint64_t bits = encode(v, kFp64);
      acc.add_bits(bits);
      const ExtractResult ex = extract(bits, kFp64);
      if (first) {
        ref_exp = ex.value.exp;
        first = false;
      }
      ASSERT_EQ(ex.value.exp, ref_exp);  // construction guarantees this
      exact += ex.value.man;
    }
    // The accumulator's raw register must equal the exact sum.
    ASSERT_EQ(static_cast<__int128>(acc.state().man), exact);
    ASSERT_EQ(acc.state().exp, ref_exp);
    ASSERT_EQ(acc.counters().saturations, 0u);
  }
}

TEST(Semantics, ReadNeverChangesSubsequentResults) {
  // Interleaving reads anywhere in an add stream must not perturb it.
  util::Rng rng(92);
  std::vector<float> stream(200);
  for (auto& v : stream) v = static_cast<float>(rng.normal(0, 1));

  FpisaAccumulator plain;
  for (const float v : stream) plain.add(v);

  FpisaAccumulator observed;
  for (const float v : stream) {
    (void)observed.read_bits();
    observed.add(v);
    (void)observed.read();
  }
  EXPECT_EQ(observed.read_bits(), plain.read_bits());
}

TEST(Semantics, CancellationPinsExponentRegister) {
  // After full cancellation the exponent register retains the old scale
  // (hardware truth): later tiny adds are aligned against it and floored.
  FpisaAccumulator acc;
  acc.add(std::ldexp(1.0f, 20));
  acc.add(-std::ldexp(1.0f, 20));
  EXPECT_EQ(acc.read(), 0.0f);
  EXPECT_EQ(acc.state().exp, 127 + 20);  // scale survives cancellation
  acc.add(std::ldexp(1.0f, -10));        // 2^30 below the register scale
  // Within the 31 magnitude bits of the register (shift 30 of the 24-bit
  // significand leaves nothing): floored away entirely.
  EXPECT_EQ(acc.read(), 0.0f);
  // A value near the register scale is kept exactly.
  acc.add(std::ldexp(1.0f, 19));
  EXPECT_EQ(acc.read(), std::ldexp(1.0f, 19));
}

}  // namespace
}  // namespace fpisa::core
