// The lock-rank checker's own contract (src/util/ordered_mutex.h):
// in-order nesting passes, every inversion aborts printing BOTH lock
// names, equal ranks never nest in either direction (the job_mu_/stats_mu_
// rule), and the Release wrapper is layout- and behavior-identical to a
// plain std::mutex — the checks exist only where NDEBUG is off.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/ordered_mutex.h"

namespace fpisa::util {
namespace {

namespace lr = lock_rank;

#if !FPISA_LOCK_RANK_CHECKS
// Release: the checker must cost nothing. Layout identity is the proxy the
// bench overhead row rides on — a grown OrderedMutex would change false
// sharing and queue behavior even if every call still inlined away.
static_assert(sizeof(OrderedMutex) == sizeof(std::mutex));
static_assert(alignof(OrderedMutex) == alignof(std::mutex));
#endif

TEST(OrderedMutex, InOrderNestingAndReuse) {
  // The two real nesting chains from the rank table, back to back; the
  // second acquisition proves the first released its bookkeeping.
  OrderedMutex run(lr::kCommRun), slo(lr::kCommSlo);
  OrderedMutex stats(lr::kStats), shard(lr::kShard);
  {
    LockGuard a(run);
    LockGuard b(slo);
  }
  {
    LockGuard a(stats);
    LockGuard b(shard);
  }
  {
    LockGuard again(run);
  }
}

TEST(OrderedMutex, NonLifoReleaseIsLegal) {
  // cv-wait patterns release the outer lock before the inner one; the
  // held-stack search must not require LIFO order.
  OrderedMutex alloc(lr::kAlloc), health(lr::kHealth);
  UniqueLock a(alloc);
  UniqueLock b(health);
  a.unlock();
  b.unlock();
  LockGuard reuse(alloc);  // stack must be empty again
}

TEST(OrderedMutex, TryLockRecordsAndReleases) {
  OrderedMutex fault(lr::kFaultTable);
  ASSERT_TRUE(fault.try_lock());
  fault.unlock();
  LockGuard reuse(fault);
}

TEST(OrderedMutex, DeferLockAndCvWaitKeepTheBooksBalanced) {
  // condition_variable_any routes its unlock/relock through
  // OrderedMutex::unlock/lock, so the rank bookkeeping must survive a
  // real wait (and the wake-side acquisition from another thread).
  OrderedMutex job(lr::kJobQueue);
  std::condition_variable_any cv;
  bool ready = false;
  UniqueLock lk(job, kDeferLock);
  EXPECT_FALSE(lk.owns_lock());
  lk.lock();
  EXPECT_TRUE(lk.owns_lock());
  std::thread waker([&] {
    LockGuard g(job);
    ready = true;
    cv.notify_one();
  });
  cv.wait(lk, [&]() FPISA_REQUIRES(job) { return ready; });
  lk.unlock();
  waker.join();
  LockGuard reuse(job);  // books balanced after the wait round-trip
}

#if FPISA_LOCK_RANK_CHECKS

using OrderedMutexDeathTest = ::testing::Test;

TEST(OrderedMutexDeathTest, RankInversionAbortsNamingBothLocks) {
  OrderedMutex shard(lr::kShard), alloc(lr::kAlloc);
  LockGuard outer(shard);
  EXPECT_DEATH(
      { LockGuard inner(alloc); },
      "fpisa lock-rank inversion: acquiring 'cluster\\.alloc_mu' "
      "\\(rank 40\\) while holding 'cluster\\.shard_mu' \\(rank 70\\)");
}

TEST(OrderedMutexDeathTest, EqualRankFamiliesNeverNestEitherWay) {
  // job_mu_ and stats_mu_ share rank 60: the service's reject path rule
  // (never hold both) is encoded as equal ranks, so BOTH nestings die.
  OrderedMutex job(lr::kJobQueue), stats(lr::kStats);
  EXPECT_DEATH(
      {
        LockGuard a(job);
        LockGuard b(stats);
      },
      "acquiring 'cluster\\.stats_mu' \\(rank 60\\) while holding "
      "'cluster\\.job_mu' \\(rank 60\\)");
  EXPECT_DEATH(
      {
        LockGuard a(stats);
        LockGuard b(job);
      },
      "acquiring 'cluster\\.job_mu' \\(rank 60\\) while holding "
      "'cluster\\.stats_mu' \\(rank 60\\)");
}

TEST(OrderedMutexDeathTest, RelockingTheSameFamilyAborts) {
  // Self-deadlock is just the degenerate equal-rank case — it aborts with
  // both names (identical) instead of hanging.
  OrderedMutex telem(lr::kTelemetry);
  LockGuard outer(telem);
  EXPECT_DEATH(
      { LockGuard inner(telem); },
      "acquiring 'telemetry\\.registry_mu' \\(rank 90\\) while holding "
      "'telemetry\\.registry_mu' \\(rank 90\\)");
}

TEST(OrderedMutexDeathTest, TryLockOutOfOrderIsTheSameViolation) {
  OrderedMutex shard(lr::kShard), alloc(lr::kAlloc);
  LockGuard outer(shard);
  EXPECT_DEATH((void)alloc.try_lock(),
               "acquiring 'cluster\\.alloc_mu'.*while holding "
               "'cluster\\.shard_mu'");
}

#else  // !FPISA_LOCK_RANK_CHECKS

TEST(OrderedMutex, ReleaseModeImposesNoOrderingAtAll) {
  // With NDEBUG the checker is compiled out: an acquisition order that
  // would abort in Debug is indistinguishable from plain std::mutex use.
  OrderedMutex shard(lr::kShard), alloc(lr::kAlloc);
  {
    LockGuard outer(shard);
    LockGuard inner(alloc);  // inversion: legal (unchecked) in Release
  }
  LockGuard reuse(shard);
}

TEST(OrderedMutex, DeathTestsRequireDebugBuild) {
  GTEST_SKIP() << "lock-rank checks compile out under NDEBUG; build Debug "
                  "to exercise the abort paths";
}

#endif  // FPISA_LOCK_RANK_CHECKS

}  // namespace
}  // namespace fpisa::util
