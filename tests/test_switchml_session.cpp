// Packet-level aggregation session over the real switch pipeline:
// chunking, slot reuse, and loss recovery with switch-side dedup
// (failure-injection tests for the paper's SwitchML-style protocol layer).
#include <gtest/gtest.h>

#include <cmath>

#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa::switchml {
namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

/// Same-exponent magnitudes: FPISA adds these exactly (no alignment
/// shifts), so the aggregation result is order-independent — which makes
/// any protocol-level double-count or drop exactly detectable even when
/// packet loss reorders the adds.
std::vector<std::vector<float>> make_same_exponent_workers(
    int w, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) {
      v = static_cast<float>((rng.next_u64() & 1 ? 1.0 : -1.0) *
                             rng.uniform(1.0, 2.0));
    }
  }
  return out;
}

std::vector<double> exact_sum(const std::vector<std::vector<float>>& w) {
  std::vector<double> ref(w.front().size(), 0.0);
  for (const auto& vec : w) {
    for (std::size_t i = 0; i < vec.size(); ++i) {
      ref[i] += static_cast<double>(vec[i]);
    }
  }
  return ref;
}

TEST(Session, LosslessReduceMatchesReference) {
  SessionOptions opts;
  opts.num_workers = 4;
  opts.slots = 16;
  opts.lanes = 2;
  AggregationSession session(pisa::SwitchConfig{}, opts);

  const auto workers = make_workers(4, 100, 60);
  const auto got = session.reduce(workers);
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], std::fabs(ref[i]) * 1e-5 + 1e-7) << i;
  }
  EXPECT_EQ(session.stats().packets_lost, 0u);
  EXPECT_EQ(session.stats().retransmissions, 0u);
  // 100 elements / 2 lanes = 50 chunks in waves of 16 slots: reuse happens.
  EXPECT_GE(session.stats().slot_reuses, 50u);
}

TEST(Session, SurvivesHeavyPacketLoss) {
  SessionOptions opts;
  opts.num_workers = 4;
  opts.slots = 8;
  opts.lanes = 1;
  opts.loss_rate = 0.25;  // every 4th packet (either direction) vanishes
  opts.loss_seed = 61;
  AggregationSession session(pisa::SwitchConfig{}, opts);

  const auto workers = make_same_exponent_workers(4, 64, 62);
  const auto got = session.reduce(workers);

  // Loss + retransmission must not change the arithmetic at all: with
  // same-exponent inputs FPISA is order-independent, so the lossy run must
  // be BIT-IDENTICAL to a lossless one (double-counts would show exactly).
  SessionOptions clean = opts;
  clean.loss_rate = 0.0;
  AggregationSession lossless(pisa::SwitchConfig{}, clean);
  const auto want = lossless.reduce(workers);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << i;
  }
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-5) << i;
  }
  EXPECT_GT(session.stats().packets_lost, 0u);
  EXPECT_GT(session.stats().retransmissions, 0u);
}

TEST(Session, DuplicatesAreAbsorbedNotDoubleCounted) {
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 4;
  opts.loss_rate = 0.35;  // lots of lost acks => duplicates at the switch
  opts.loss_seed = 63;
  AggregationSession session(pisa::SwitchConfig{}, opts);

  const auto workers = make_same_exponent_workers(2, 32, 64);
  const auto got = session.reduce(workers);
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-5) << i;
  }
  EXPECT_GT(session.stats().duplicates_absorbed, 0u);
}

TEST(Session, LossSweepAlwaysExact) {
  // Property: for any loss rate the protocol either completes with the
  // exact aggregation result or throws (never silently wrong).
  for (const double loss : {0.0, 0.05, 0.15, 0.30, 0.45}) {
    SessionOptions opts;
    opts.num_workers = 3;
    opts.slots = 4;
    opts.loss_rate = loss;
    opts.loss_seed = 65 + static_cast<std::uint64_t>(loss * 100);
    opts.max_retransmits = 256;
    AggregationSession session(pisa::SwitchConfig{}, opts);

    const auto workers = make_same_exponent_workers(3, 24, 66);
    const auto got = session.reduce(workers);
    const auto ref = exact_sum(workers);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-5) << "loss=" << loss << " i=" << i;
    }
  }
}

TEST(Session, MultiWaveReusesSlotsCleanly) {
  // More chunks than slots: results from wave k must not leak into k+1.
  SessionOptions opts;
  opts.num_workers = 2;
  opts.slots = 2;  // tiny pool: 16 chunks -> 8 waves
  AggregationSession session(pisa::SwitchConfig{}, opts);

  std::vector<std::vector<float>> workers(2, std::vector<float>(16));
  for (std::size_t i = 0; i < 16; ++i) {
    workers[0][i] = static_cast<float>(i + 1);
    workers[1][i] = static_cast<float>(10 * (i + 1));
  }
  const auto got = session.reduce(workers);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(got[i], static_cast<float>(11 * (i + 1))) << i;
  }
}

TEST(Session, BatchedAndPerPacketSubmissionAreIdentical) {
  // The chunk-batched datapath must be observably indistinguishable from
  // per-packet submission: identical results (bit-for-bit), identical
  // SessionStats, identical switch register state afterwards — including
  // under heavy loss, where the batched path pre-draws the same loss
  // schedule and queues every delivered duplicate.
  for (const double loss : {0.0, 0.2, 0.4}) {
    for (const bool rsaw : {false, true}) {
      pisa::SwitchConfig cfg;
      cfg.ext.rsaw = rsaw;
      cfg.ext.two_operand_shift = rsaw;
      SessionOptions opts;
      opts.num_workers = 3;
      opts.slots = 8;
      opts.lanes = 4;
      opts.loss_rate = loss;
      opts.loss_seed = 71 + static_cast<std::uint64_t>(loss * 10);
      opts.max_retransmits = 256;

      SessionOptions batched = opts;
      batched.batched = true;
      SessionOptions per_packet = opts;
      per_packet.batched = false;
      AggregationSession fast(cfg, batched);
      AggregationSession slow(cfg, per_packet);

      const auto workers = make_workers(3, 100, 72);
      const auto got = fast.reduce(workers);
      const auto want = slow.reduce(workers);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i]))
            << "loss=" << loss << " rsaw=" << rsaw << " i=" << i;
      }
      EXPECT_EQ(fast.stats().packets_sent, slow.stats().packets_sent);
      EXPECT_EQ(fast.stats().packets_lost, slow.stats().packets_lost);
      EXPECT_EQ(fast.stats().retransmissions, slow.stats().retransmissions);
      EXPECT_EQ(fast.stats().duplicates_absorbed,
                slow.stats().duplicates_absorbed);
      EXPECT_EQ(fast.stats().slot_reuses, slow.stats().slot_reuses);
      // Post-job switch state (all lane registers + bitmap + counter).
      for (int r = 0; r < 2 * 4 + 2; ++r) {
        for (std::size_t s = 0; s < 8; ++s) {
          ASSERT_EQ(fast.fpisa_switch().sim().reg(r).read(s),
                    slow.fpisa_switch().sim().reg(r).read(s))
              << "loss=" << loss << " reg=" << r << " slot=" << s;
        }
      }
    }
  }
}

TEST(SessionStatsMerge, OperatorPlusEqualsSumsEveryField) {
  SessionStats a{1, 2, 3, 4, 5};
  const SessionStats b{10, 20, 30, 40, 50};
  SessionStats& ref = (a += b);
  EXPECT_EQ(&ref, &a) << "operator+= must return *this for chaining";
  EXPECT_EQ(a.packets_sent, 11u);
  EXPECT_EQ(a.packets_lost, 22u);
  EXPECT_EQ(a.retransmissions, 33u);
  EXPECT_EQ(a.duplicates_absorbed, 44u);
  EXPECT_EQ(a.slot_reuses, 55u);
  // Merging an empty stats object is the identity.
  const SessionStats before = a;
  a += SessionStats{};
  EXPECT_EQ(a.packets_sent, before.packets_sent);
  EXPECT_EQ(a.slot_reuses, before.slot_reuses);
}

TEST(SessionStatsMerge, OpCountersRideAlongThroughMergeAndDelta) {
  SessionStats a{};
  a.packets_sent = 10;
  a.ops.adds = 7;
  a.ops.rounded_adds = 2;
  SessionStats b{};
  b.packets_sent = 5;
  b.ops.adds = 3;
  b.ops.nonfinite_inputs = 1;
  a += b;
  EXPECT_EQ(a.ops.adds, 10u);
  EXPECT_EQ(a.ops.rounded_adds, 2u);
  EXPECT_EQ(a.ops.nonfinite_inputs, 1u);
  // operator-= recovers the pre-merge snapshot exactly (this is how a
  // long-lived session attributes a single reduce out of its running
  // total; a hand-rolled field list here once silently dropped ops).
  a -= b;
  EXPECT_EQ(a.packets_sent, 10u);
  EXPECT_EQ(a.ops.adds, 7u);
  EXPECT_EQ(a.ops.nonfinite_inputs, 0u);
}

TEST(CollectSchedule, LosslessScheduleClearsEverySlotWithTwoPacketsEach) {
  util::Rng rng(300);
  SessionStats stats{};
  const CollectSchedule sched =
      draw_collect_schedule(/*n=*/17, /*loss_rate=*/0.0,
                            /*max_retransmits=*/4, rng, stats);
  EXPECT_EQ(sched.failure, 0);
  EXPECT_EQ(sched.cleared, 17u);
  EXPECT_EQ(sched.delivered, 2u * 17u);  // one read + one reset per slot
  EXPECT_EQ(stats.packets_sent, 2u * 17u);
  EXPECT_EQ(stats.packets_lost, 0u);
  EXPECT_EQ(stats.slot_reuses, 17u);
}

TEST(CollectSchedule, ReadFailureReportsCode1AndClearedPrefix) {
  // Total loss with a tiny retransmit budget: the FIRST slot's read can
  // never be delivered, so failure == 1 and nothing was cleared — but the
  // doomed attempts must still be accounted as sent + lost.
  util::Rng rng(301);
  SessionStats stats{};
  const CollectSchedule sched =
      draw_collect_schedule(8, /*loss_rate=*/1.0, /*max_retransmits=*/3, rng,
                            stats);
  EXPECT_EQ(sched.failure, 1);
  EXPECT_EQ(sched.cleared, 0u);
  EXPECT_EQ(sched.delivered, 0u);
  EXPECT_EQ(stats.packets_sent, 4u);  // initial + 3 retransmits
  EXPECT_EQ(stats.packets_lost, 4u);
  EXPECT_EQ(stats.slot_reuses, 0u);
}

TEST(CollectSchedule, ResetFailureReportsCode2AndCountsDeliveredRead) {
  // A loss stream crafted so the read succeeds but every reset attempt is
  // lost on the request leg: failure == 2, the read's switch traversal is
  // still in `delivered`, and the slot is NOT counted cleared or reused.
  // Rng draw order per slot: read-request, read-ack, then per reset
  // attempt: request, [ack]. We search seeds for a stream whose first two
  // draws pass at loss 0.5 and whose next 4 request draws all fail.
  const double loss = 0.5;
  const int max_retransmits = 3;
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 4096 && !exercised; ++seed) {
    util::Rng probe(seed);
    if (probe.next_double() < loss) continue;  // read request must pass
    if (probe.next_double() < loss) continue;  // read ack must pass
    bool all_reset_requests_lost = true;
    for (int a = 0; a <= max_retransmits; ++a) {
      all_reset_requests_lost =
          all_reset_requests_lost && probe.next_double() < loss;
    }
    if (!all_reset_requests_lost) continue;

    util::Rng rng(seed);
    SessionStats stats{};
    const CollectSchedule sched =
        draw_collect_schedule(4, loss, max_retransmits, rng, stats);
    EXPECT_EQ(sched.failure, 2);
    EXPECT_EQ(sched.cleared, 0u);
    EXPECT_EQ(sched.delivered, 1u);          // only the read reached the switch
    EXPECT_EQ(stats.packets_sent, 1u + 4u);  // 1 read + 4 doomed resets
    EXPECT_EQ(stats.packets_lost, 4u);
    EXPECT_EQ(stats.slot_reuses, 0u);
    exercised = true;
  }
  ASSERT_TRUE(exercised) << "no seed produced the reset-failure shape";
}

TEST(CollectSchedule, DeliveredCountsSwitchTraversalsNotAcks) {
  // Property sweep: for any lossy stream that completes, `delivered` must
  // equal cleared-slot resets (one physical reset each) plus every read
  // attempt that reached the switch (acks lost or not), and `cleared` must
  // equal n. Cross-check delivered against an independent replay of the
  // rng stream.
  for (const std::uint64_t seed : {41ull, 42ull, 43ull, 44ull}) {
    const double loss = 0.3;
    const int retx = 64;
    const std::size_t n = 25;
    util::Rng rng(seed);
    SessionStats stats{};
    const CollectSchedule sched =
        draw_collect_schedule(n, loss, retx, rng, stats);
    ASSERT_EQ(sched.failure, 0);
    EXPECT_EQ(sched.cleared, n);

    // Independent replay of the identical protocol order.
    util::Rng replay(seed);
    std::uint64_t delivered = 0;
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t reuses = 0;
    for (std::size_t k = 0; k < n; ++k) {
      for (bool have = false; !have;) {
        ++sent;
        if (replay.next_double() < loss) {
          ++lost;
          continue;
        }
        ++delivered;
        if (replay.next_double() < loss) {
          ++lost;
          continue;
        }
        have = true;
      }
      // Resets retransmit until an ACK comes back; every delivered copy
      // re-clears the slot (harmless) and counts as a traversal + reuse.
      for (bool acked = false; !acked;) {
        ++sent;
        if (replay.next_double() < loss) {
          ++lost;
          continue;
        }
        ++delivered;
        ++reuses;
        if (replay.next_double() >= loss) {
          acked = true;
        } else {
          ++lost;
        }
      }
    }
    EXPECT_EQ(sched.delivered, delivered) << "seed " << seed;
    EXPECT_EQ(stats.packets_sent, sent) << "seed " << seed;
    EXPECT_EQ(stats.packets_lost, lost) << "seed " << seed;
    EXPECT_EQ(stats.slot_reuses, reuses) << "seed " << seed;
  }
}

TEST(Session, FullVariantOnExtendedSwitch) {
  pisa::SwitchConfig ext;
  ext.ext.two_operand_shift = true;
  ext.ext.rsaw = true;
  SessionOptions opts;
  opts.num_workers = 4;
  opts.slots = 8;
  AggregationSession session(ext, opts);

  const auto workers = make_workers(4, 40, 67);
  const auto got = session.reduce(workers);
  const auto ref = exact_sum(workers);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], std::fabs(ref[i]) * 1e-5 + 1e-7) << i;
  }
}

}  // namespace
}  // namespace fpisa::switchml
