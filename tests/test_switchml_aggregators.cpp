// Gradient aggregation strategies (§5): SwitchML quantized baseline vs
// FPISA variants.
#include <gtest/gtest.h>

#include <cmath>

#include "switchml/aggregator.h"
#include "util/rng.h"

namespace fpisa::switchml {
namespace {

std::vector<std::vector<float>> gradient_like(int workers, std::size_t n,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> w(static_cast<std::size_t>(workers),
                                    std::vector<float>(n));
  // Per-element base magnitude with narrow cross-worker spread (§5.1).
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.lognormal(-4.0, 1.5);
    for (auto& vec : w) {
      const double wob = std::exp2(rng.uniform(-2.0, 2.0));
      vec[i] = static_cast<float>((rng.next_u64() & 1 ? 1 : -1) * base * wob);
    }
  }
  return w;
}

TEST(Aggregators, ExactMatchesManualDoubleSum) {
  const auto w = gradient_like(8, 128, 1);
  ExactAggregator exact;
  const auto sum = exact.aggregate(w);
  for (std::size_t i = 0; i < 128; ++i) {
    double ref = 0;
    for (const auto& v : w) ref += static_cast<double>(v[i]);
    EXPECT_FLOAT_EQ(sum[i], static_cast<float>(ref));
  }
}

TEST(Aggregators, SwitchMlQuantizationErrorBounded) {
  const auto w = gradient_like(8, 4096, 2);
  ExactAggregator exact;
  SwitchMlAggregator swml(256);
  const auto ref = exact.aggregate(w);
  const auto got = swml.aggregate(w);
  // Quantization resolution: chunk max scaled to ~30-4 bits.
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float tol = std::max(1e-7f, std::fabs(ref[i]) * 1e-4f) + 1e-6f;
    EXPECT_NEAR(got[i], ref[i], tol) << i;
  }
  // One exponent-exchange round trip per chunk: the protocol overhead
  // FPISA eliminates (§5.2.3).
  EXPECT_EQ(swml.extra_round_trips(), 4096u / 256u);
}

TEST(Aggregators, FpisaTracksExactWithinToleranceAndCountsEvents) {
  const auto w = gradient_like(8, 4096, 3);
  ExactAggregator exact;
  const auto ref = exact.aggregate(w);
  for (const auto variant : {core::Variant::kFull, core::Variant::kApproximate}) {
    core::AccumulatorConfig cfg;
    cfg.variant = variant;
    FpisaAggregator agg(cfg);
    const auto got = agg.aggregate(w);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const float tol = std::max(std::fabs(ref[i]), 1e-4f) * 1e-3f;
      EXPECT_NEAR(got[i], ref[i], tol) << i;
    }
    EXPECT_EQ(agg.counters().adds, 8u * 4096u);
  }
}

TEST(Aggregators, FpisaAOverwriteEventsAreRareOnGradientData) {
  // §5.2.1: overwrite (<0.9%) and left-shift (<0.1%) events are rare for
  // gradient-like distributions.
  const auto w = gradient_like(8, 8192, 4);
  core::AccumulatorConfig cfg;
  cfg.variant = core::Variant::kApproximate;
  FpisaAggregator agg(cfg);
  (void)agg.aggregate(w);
  const auto& c = agg.counters();
  EXPECT_LT(static_cast<double>(c.overwrites) / c.adds, 0.009);
  EXPECT_LT(static_cast<double>(c.lshift_overflows) / c.adds, 0.001);
}

TEST(Aggregators, PackedFp16SumLosesMorePrecisionThanFpisaFp16) {
  // Host-side FP16 chained summation re-rounds every partial; FPISA's wide
  // mantissa register defers that, so its FP16 aggregation is at least as
  // accurate on average.
  const auto w = gradient_like(8, 2048, 5);
  ExactAggregator exact;
  PackedSumAggregator host16(core::kFp16);
  core::AccumulatorConfig cfg16;
  cfg16.format = core::kFp16;
  cfg16.reg_bits = 32;   // wide accumulation register
  cfg16.guard_bits = 4;  // Appendix A.1: guard digits enable better rounding
  cfg16.read_rounding = core::Rounding::kNearestEven;
  FpisaAggregator fpisa16(cfg16);

  const auto ref = exact.aggregate(w);
  const auto host = host16.aggregate(w);
  const auto fp = fpisa16.aggregate(w);
  double host_err = 0;
  double fp_err = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    host_err += std::fabs(static_cast<double>(host[i]) - ref[i]);
    fp_err += std::fabs(static_cast<double>(fp[i]) - ref[i]);
  }
  EXPECT_LE(fp_err, host_err * 1.05);
}

TEST(Aggregators, AllAgreeOnZeroVectors) {
  const std::vector<std::vector<float>> w(8, std::vector<float>(64, 0.0f));
  ExactAggregator exact;
  SwitchMlAggregator swml;
  FpisaAggregator fpisa;
  for (const float v : exact.aggregate(w)) EXPECT_EQ(v, 0.0f);
  for (const float v : swml.aggregate(w)) EXPECT_EQ(v, 0.0f);
  for (const float v : fpisa.aggregate(w)) EXPECT_EQ(v, 0.0f);
}

TEST(Aggregators, SingleWorkerIsIdentity) {
  util::Rng rng(6);
  std::vector<std::vector<float>> w(1, std::vector<float>(256));
  for (auto& v : w[0]) v = static_cast<float>(rng.normal(0, 0.1));
  FpisaAggregator fpisa;
  const auto got = fpisa.aggregate(w);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(got[i], w[0][i]);
}

}  // namespace
}  // namespace fpisa::switchml
