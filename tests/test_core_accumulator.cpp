// FPISA / FPISA-A accumulator semantics (paper §3.2, §3.3, §4.3).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/accumulator.h"
#include "core/vector_accumulator.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

AccumulatorConfig full_cfg() { return {}; }
AccumulatorConfig approx_cfg() {
  AccumulatorConfig c;
  c.variant = Variant::kApproximate;
  return c;
}

TEST(Accumulator, PaperRunningExample) {
  // Fig 4: 3.0 + 1.0 = 4.0 via denormalized intermediate 0b10.0 x 2^1.
  for (const auto& cfg : {full_cfg(), approx_cfg()}) {
    FpisaAccumulator acc(cfg);
    acc.add(3.0f);
    acc.add(1.0f);
    // Intermediate state: exponent register still 128 (2^1), mantissa
    // denormalized 0b10.0...0 (1 << 24).
    EXPECT_EQ(acc.state().exp, 128);
    EXPECT_EQ(acc.state().man, std::int64_t{1} << 24);
    EXPECT_EQ(acc.read(), 4.0f);
  }
}

TEST(Accumulator, ReadIsStatelessAndRepeatable) {
  FpisaAccumulator acc;
  acc.add(3.0f);
  acc.add(1.0f);
  const FpState before = acc.state();
  EXPECT_EQ(acc.read(), 4.0f);
  EXPECT_EQ(acc.state().exp, before.exp);
  EXPECT_EQ(acc.state().man, before.man);
  EXPECT_EQ(acc.read(), 4.0f);  // delayed renorm never mutates the register
}

TEST(Accumulator, SingleValueIdentity) {
  util::Rng rng(10);
  for (const auto& cfg : {full_cfg(), approx_cfg()}) {
    for (int i = 0; i < 100000; ++i) {
      const auto bits = static_cast<std::uint32_t>(rng.next_u64());
      const FpClass c = classify(bits, kFp32);
      if (c == FpClass::kInf || c == FpClass::kNaN) continue;
      FpisaAccumulator acc(cfg);
      acc.add_bits(bits);
      const float in = fp32_value(bits);
      const float out = acc.read();
      if (in == 0.0f) {
        EXPECT_EQ(out, 0.0f);
      } else {
        EXPECT_EQ(out, in) << "bits=" << bits;
      }
    }
  }
}

TEST(Accumulator, ExactWhenExponentsEqual) {
  // Same-exponent adds never shift, so results are exact integers scaled.
  FpisaAccumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(1.0f);
  EXPECT_EQ(acc.read(), 100.0f);
  EXPECT_EQ(acc.counters().rounded_adds, 0u);
}

TEST(Accumulator, SignedAdditionAndCancellation) {
  FpisaAccumulator acc;
  acc.add(5.5f);
  acc.add(-2.25f);
  EXPECT_EQ(acc.read(), 3.25f);
  acc.add(-3.25f);
  EXPECT_EQ(acc.read(), 0.0f);
  // After cancellation the exponent register still holds the old scale;
  // subsequent adds must align against it (hardware-faithful).
  acc.add(1.0f);
  EXPECT_EQ(acc.read(), 1.0f);
}

TEST(Accumulator, ZeroInputsAreNoOps) {
  for (const auto& cfg : {full_cfg(), approx_cfg()}) {
    FpisaAccumulator acc(cfg);
    acc.add(0.0f);
    acc.add(-0.0f);
    EXPECT_EQ(acc.read(), 0.0f);
    acc.add(42.5f);
    acc.add(0.0f);
    EXPECT_EQ(acc.read(), 42.5f);
    EXPECT_EQ(acc.counters().zero_inputs, 3u);
  }
}

TEST(Accumulator, NonFiniteInputsFlaggedAndSkipped) {
  FpisaAccumulator acc;
  acc.add(1.0f);
  acc.add(INFINITY);
  acc.add(-INFINITY);
  acc.add(NAN);
  EXPECT_EQ(acc.read(), 1.0f);
  EXPECT_EQ(acc.counters().nonfinite_inputs, 3u);
}

TEST(Accumulator, HeadroomAbsorbs128MaxMantissaAdds) {
  // §3.3: 7 headroom bits hold 128 same-exponent max-mantissa additions.
  FpisaAccumulator acc;
  const float max_man = std::nextafterf(2.0f, 0.0f);  // 1.11...1 x 2^0
  for (int i = 0; i < 128; ++i) acc.add(max_man);
  EXPECT_EQ(acc.counters().saturations, 0u);
  const double expected = 128.0 * static_cast<double>(max_man);
  EXPECT_NEAR(static_cast<double>(acc.read()), expected, expected * 1e-6);
  // The 129th addition overflows the register and is flagged.
  acc.add(max_man);
  EXPECT_EQ(acc.counters().saturations, 1u);
}

TEST(Accumulator, OverflowPolicyWrapMatchesTwosComplement) {
  AccumulatorConfig cfg;
  cfg.overflow = OverflowPolicy::kWrap;
  FpisaAccumulator acc(cfg);
  const float max_man = std::nextafterf(2.0f, 0.0f);
  for (int i = 0; i < 129; ++i) acc.add(max_man);
  EXPECT_EQ(acc.counters().saturations, 1u);
  // Wrapped state is negative (sign bit reached), exactly as hardware would.
  EXPECT_LT(acc.state().man, 0);
}

TEST(Accumulator, FullVariantAlignsStoredMantissaRight) {
  // Stored 1.0 (exp 127); add 2^30: full FPISA right-shifts the stored
  // mantissa by 30 — it vanishes (round toward -inf) leaving exactly 2^30.
  FpisaAccumulator acc;
  acc.add(1.0f);
  acc.add(std::ldexp(1.0f, 30));
  EXPECT_EQ(acc.read(), std::ldexp(1.0f, 30));
  EXPECT_EQ(acc.state().exp, 127 + 30);
  EXPECT_GE(acc.counters().rounded_adds, 1u);
}

TEST(Accumulator, FullVariantKeepsPrecisionWithinRegister) {
  // 2^6 and 1.0 differ by 6: both fit in the 31 magnitude bits, sum exact.
  FpisaAccumulator acc;
  acc.add(1.0f);
  acc.add(64.0f);
  EXPECT_EQ(acc.read(), 65.0f);
  EXPECT_EQ(acc.counters().rounded_adds, 0u);
}

TEST(AccumulatorA, LeftShiftWithinHeadroomIsExact) {
  // FPISA-A: incoming value with exponent +7 over stored still adds exactly
  // (left-shift into headroom, §4.3).
  FpisaAccumulator acc(approx_cfg());
  acc.add(1.0f);
  acc.add(128.0f);  // d = 7 == headroom
  EXPECT_EQ(acc.read(), 129.0f);
  EXPECT_EQ(acc.counters().overwrites, 0u);
  EXPECT_EQ(acc.state().exp, 127);  // exponent register unchanged
}

TEST(AccumulatorA, OverwriteBeyondHeadroom) {
  // d = 8 > 7: the stored small value is dropped entirely.
  FpisaAccumulator acc(approx_cfg());
  acc.add(1.0f);
  acc.add(256.0f);
  EXPECT_EQ(acc.read(), 256.0f);  // overwrite error: 1.0 ignored
  EXPECT_EQ(acc.counters().overwrites, 1u);
  EXPECT_EQ(acc.state().exp, 127 + 8);
}

TEST(AccumulatorA, OverwriteErrorIsBounded) {
  // The overwrite drops at most 2^-headroom of the surviving value.
  util::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float small = static_cast<float>(rng.uniform(0.5, 1.0));
    const float big =
        static_cast<float>(rng.uniform(0.5, 1.0) * std::exp2(rng.uniform_int(9, 20)));
    FpisaAccumulator acc(approx_cfg());
    acc.add(small);
    acc.add(big);
    const double err = std::fabs(static_cast<double>(acc.read()) -
                                 (static_cast<double>(small) + big));
    // Dropped value < 2^-8 ratio of big (d >= 9 here): bounded by |small|.
    EXPECT_LE(err, static_cast<double>(small) + big * 1e-6);
  }
}

TEST(AccumulatorA, FirstWriteIntoEmptyRegisterIsNotAnOverwriteError) {
  FpisaAccumulator acc(approx_cfg());
  acc.add(1e20f);
  EXPECT_EQ(acc.counters().overwrites, 0u);
  EXPECT_EQ(acc.read(), 1e20f);
}

TEST(AccumulatorA, NarrowExponentRangeNeverTriggersApproximationErrors) {
  // §5.1: gradient-like data (element-wise max/min ratio < 2^7) never takes
  // FPISA-A's overwrite path, and both variants track the true sum tightly.
  util::Rng rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    FpisaAccumulator full(full_cfg());
    FpisaAccumulator approx(approx_cfg());
    const int base = static_cast<int>(rng.uniform_int(-10, 10));
    double ref = 0.0;
    double max_abs = 0.0;
    for (int i = 0; i < 8; ++i) {
      // Magnitude in [0.5, 1) * 2^(base + [0,3]): element ratio <= 2^4 and
      // the 8-value sum still fits the register headroom even when the
      // first (exponent-pinning) value is the smallest.
      const float v = static_cast<float>(
          rng.uniform(0.5, 1.0) * std::exp2(base + rng.uniform_int(0, 3)));
      full.add(v);
      approx.add(v);
      ref += static_cast<double>(v);
      max_abs = std::max(max_abs, static_cast<double>(v));
    }
    EXPECT_EQ(approx.counters().overwrites, 0u) << "trial " << trial;
    EXPECT_EQ(approx.counters().lshift_overflows, 0u) << "trial " << trial;
    const double bound = 8.0 * max_abs * std::exp2(-23);
    EXPECT_NEAR(static_cast<double>(full.read()), ref, bound);
    EXPECT_NEAR(static_cast<double>(approx.read()), ref, bound);
  }
}

TEST(AccumulatorA, ApproximateIsExactWithinHeadroomWhereFullRounds) {
  // Within headroom FPISA-A left-shifts the *incoming* mantissa (exact),
  // while full FPISA right-shifts the *stored* one (rounds): the
  // approximation is locally more precise — the paper's reason the error
  // analysis focuses on overwrite, not left-shift, events.
  FpisaAccumulator full(full_cfg());
  FpisaAccumulator approx(approx_cfg());
  const float small = 1.0f + std::exp2(-23.0f);  // odd low bit
  for (auto* acc : {&full, &approx}) {
    acc->add(small);
    acc->add(64.0f);  // d = 6 <= headroom
  }
  const double ref = static_cast<double>(small) + 64.0;
  EXPECT_EQ(static_cast<double>(approx.read_value()), ref);
  EXPECT_LE(static_cast<double>(full.read_value()), ref);
}

TEST(Accumulator, SumAccuracyVsDoubleReference) {
  // Aggregating n values of similar magnitude: FPISA error stays within
  // n * one-alignment-ulp of the double-precision sum.
  util::Rng rng(13);
  for (const auto& cfg : {full_cfg(), approx_cfg()}) {
    for (int trial = 0; trial < 500; ++trial) {
      FpisaAccumulator acc(cfg);
      double ref = 0.0;
      double max_abs = 0.0;
      const int n = 64;
      for (int i = 0; i < n; ++i) {
        // Similar magnitudes (exponent spread 2): FPISA-A never overwrites
        // and the register headroom absorbs the 64-value sum.
        const float v = static_cast<float>((rng.next_u64() & 1 ? 1.0 : -1.0) *
                                           rng.uniform(0.5, 2.0));
        acc.add(v);
        ref += static_cast<double>(v);
        max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
      }
      // One alignment step loses < 2^-23 of the largest operand magnitude.
      const double bound = n * max_abs * std::exp2(-23) + 1e-30;
      EXPECT_NEAR(static_cast<double>(acc.read()), ref, bound);
    }
  }
}

TEST(Accumulator, ReproducibleAcrossPermutationsOfEqualExponents) {
  // Appendix A.1: same multiset of same-exponent values => same result in
  // any order (alignment never loses bits when exponents match).
  util::Rng rng(14);
  std::vector<float> vals;
  for (int i = 0; i < 32; ++i) {
    vals.push_back(static_cast<float>(rng.uniform(1.0, 2.0)));
  }
  FpisaAccumulator a;
  for (const float v : vals) a.add(v);
  for (int shuffle = 0; shuffle < 20; ++shuffle) {
    rng.shuffle(vals.data(), vals.size());
    FpisaAccumulator b;
    for (const float v : vals) b.add(v);
    EXPECT_EQ(a.read_bits(), b.read_bits());
  }
}

TEST(Accumulator, DeterministicReproducibility) {
  // Same sequence => bit-identical result, run twice (Appendix A.1).
  util::Rng rng(15);
  std::vector<float> vals;
  for (int i = 0; i < 1000; ++i) {
    vals.push_back(static_cast<float>(rng.normal(0.0, 1.0) *
                                      std::exp2(rng.uniform_int(-20, 20))));
  }
  for (const auto& cfg : {full_cfg(), approx_cfg()}) {
    FpisaAccumulator a(cfg);
    FpisaAccumulator b(cfg);
    for (const float v : vals) a.add(v);
    for (const float v : vals) b.add(v);
    EXPECT_EQ(a.read_bits(), b.read_bits());
  }
}

TEST(Accumulator, GuardBitsReduceRoundingError) {
  // Guard bits keep fractional weight through alignment shifts
  // (Appendix A.1). Note guard bits trade away headroom, so the workload
  // here is sized to fit reg_bits - significand - guard growth bits.
  util::Rng rng(16);
  double err_plain = 0.0;
  double err_guard = 0.0;
  std::uint64_t saturations = 0;
  for (int trial = 0; trial < 500; ++trial) {
    AccumulatorConfig plain;
    AccumulatorConfig guard;
    guard.guard_bits = 2;
    guard.read_rounding = Rounding::kNearestEven;
    FpisaAccumulator a(plain);
    FpisaAccumulator b(guard);
    double ref = 0.0;
    for (int i = 0; i < 16; ++i) {
      const float v = static_cast<float>(rng.uniform(0.5, 2.0));
      a.add(v);
      b.add(v);
      ref += static_cast<double>(v);
    }
    err_plain += std::fabs(static_cast<double>(a.read()) - ref);
    err_guard += std::fabs(static_cast<double>(b.read()) - ref);
    saturations += b.counters().saturations;
  }
  EXPECT_EQ(saturations, 0u);
  EXPECT_LT(err_guard, err_plain);
}

TEST(Accumulator, RoundTowardNegativeInfinitySemantics) {
  // Appendix A.1: no guard digits + two's complement = round toward -inf.
  // Adding a tiny negative value to a large positive one must round down.
  FpisaAccumulator acc;
  acc.add(std::ldexp(1.0f, 10));  // 1024
  acc.add(-std::ldexp(1.0f, -20));
  // True sum is just below 1024; round-to--inf must not return 1024.
  EXPECT_LT(acc.read(), 1024.0f);
  // And adding a tiny positive is dropped (floor).
  FpisaAccumulator acc2;
  acc2.add(std::ldexp(1.0f, 10));
  acc2.add(std::ldexp(1.0f, -20));
  EXPECT_EQ(acc2.read(), 1024.0f);
}

// ---------------------------------------------------------------------------
// Parameterized format sweep: every supported format obeys the same
// invariants with its own widths.
// ---------------------------------------------------------------------------

struct FormatCase {
  const FloatFormat* fmt;
  Variant variant;
};

class FormatSweep : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatSweep, SingleValueIdentity) {
  const auto [fmt, variant] = GetParam();
  AccumulatorConfig cfg;
  cfg.format = *fmt;
  cfg.variant = variant;
  util::Rng rng(17);
  const std::uint64_t mask = fmt->total_bits == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << fmt->total_bits) - 1;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t bits = rng.next_u64() & mask;
    const FpClass c = classify(bits, *fmt);
    if (c == FpClass::kInf || c == FpClass::kNaN) continue;
    FpisaAccumulator acc(cfg);
    acc.add_bits(bits);
    if (c == FpClass::kZero) {
      EXPECT_EQ(acc.read_bits(), 0u);
    } else {
      EXPECT_EQ(acc.read_bits(), bits) << fmt->name;
    }
  }
}

TEST_P(FormatSweep, HeadroomBoundary) {
  const auto [fmt, variant] = GetParam();
  AccumulatorConfig cfg;
  cfg.format = *fmt;
  cfg.variant = variant;
  const int h = cfg.headroom();
  ASSERT_GT(h, 0) << fmt->name;
  // 2^h same-scale max-mantissa adds must not overflow; one more must.
  FpisaAccumulator acc(cfg);
  const std::uint64_t max_man_bits =
      (static_cast<std::uint64_t>(fmt->bias()) << fmt->man_bits) |
      fmt->man_mask();
  const int n = 1 << h;
  for (int i = 0; i < n; ++i) acc.add_bits(max_man_bits);
  EXPECT_EQ(acc.counters().saturations, 0u) << fmt->name;
  acc.add_bits(max_man_bits);
  EXPECT_EQ(acc.counters().saturations, 1u) << fmt->name;
}

TEST_P(FormatSweep, SumTracksDoubleReference) {
  const auto [fmt, variant] = GetParam();
  AccumulatorConfig cfg;
  cfg.format = *fmt;
  cfg.variant = variant;
  util::Rng rng(18);
  for (int trial = 0; trial < 200; ++trial) {
    FpisaAccumulator acc(cfg);
    double ref = 0.0;
    double max_abs = 0.0;
    const int n = std::min(1 << cfg.headroom(), 32);
    for (int i = 0; i < n; ++i) {
      // Narrow magnitude range so FPISA-A never takes the overwrite path
      // (wide ranges are covered by the dedicated overwrite tests).
      const double v = (rng.next_u64() & 1 ? 1.0 : -1.0) * rng.uniform(0.5, 1.0);
      const std::uint64_t b = encode(v, *fmt);
      const double q = decode(b, *fmt);  // quantized input
      acc.add_bits(b);
      ref += q;
      max_abs = std::max(max_abs, std::fabs(q));
    }
    const double bound =
        n * max_abs * std::exp2(-fmt->man_bits) + std::exp2(-fmt->bias());
    EXPECT_NEAR(decode(acc.read_bits(), *fmt), ref, bound) << fmt->name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatSweep,
    ::testing::Values(FormatCase{&kFp32, Variant::kFull},
                      FormatCase{&kFp32, Variant::kApproximate},
                      FormatCase{&kFp16, Variant::kFull},
                      FormatCase{&kFp16, Variant::kApproximate},
                      FormatCase{&kBf16, Variant::kFull},
                      FormatCase{&kBf16, Variant::kApproximate},
                      FormatCase{&kFp64, Variant::kFull},
                      FormatCase{&kFp64, Variant::kApproximate}),
    [](const auto& info) {
      return std::string(info.param.fmt->name) +
             (info.param.variant == Variant::kFull ? "_full" : "_approx");
    });

// ---------------------------------------------------------------------------
// Vector accumulator
// ---------------------------------------------------------------------------

TEST(FpisaVector, MatchesScalarElementwise) {
  util::Rng rng(19);
  const std::size_t n = 257;
  FpisaVector vec(n);
  std::vector<FpisaAccumulator> scalars(n);
  for (int w = 0; w < 8; ++w) {
    std::vector<float> vals(n);
    for (auto& v : vals) {
      v = static_cast<float>(rng.normal(0.0, 0.1));
    }
    vec.add(vals);
    for (std::size_t i = 0; i < n; ++i) scalars[i].add(vals[i]);
  }
  std::vector<float> out(n);
  vec.read(out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], scalars[i].read()) << i;
  }
}

TEST(FpisaVector, AggregateHelper) {
  util::Rng rng(20);
  std::vector<std::vector<float>> workers(8, std::vector<float>(64));
  std::vector<double> ref(64, 0.0);
  for (auto& w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = static_cast<float>(rng.normal(0.0, 0.01));
      ref[i] += static_cast<double>(w[i]);
    }
  }
  const AggregateResult r = aggregate(workers);
  ASSERT_EQ(r.sum.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(static_cast<double>(r.sum[i]), ref[i], 1e-6);
  }
  EXPECT_EQ(r.counters.adds, 8u * 64u);
}

TEST(FpisaVector, ResetClearsStateAndCounters) {
  FpisaVector vec(4);
  const std::vector<float> vals{1.0f, 2.0f, 3.0f, 4.0f};
  vec.add(vals);
  vec.reset();
  std::vector<float> out(4);
  vec.read(out);
  for (const float v : out) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(vec.counters().adds, 0u);
}

TEST(FpisaVector, NonFp32FormatsViaBits) {
  AccumulatorConfig cfg;
  cfg.format = kFp16;
  std::vector<std::vector<float>> workers(4, std::vector<float>(16, 0.25f));
  const AggregateResult r = aggregate(workers, cfg);
  for (const float v : r.sum) EXPECT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace fpisa::core
