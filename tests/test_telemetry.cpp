// Unified telemetry layer: metrics registry semantics (striped counters,
// gauge, `le` histogram boundaries, find-or-create handles, kill switch),
// exposition formats (Prometheus text, JSON), span tracing (nesting,
// explicit timestamps, Chrome export), and the cross-layer integration
// contracts: the cluster job span tree covers submit → partition → shard
// waves → merge (+failover), traced wave time agrees with
// phase_breakdown(), and all four collective backends expose the same
// metrics()/phase_breakdown()/set_trace surface.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cluster/aggregation_service.h"
#include "collective/communicator.h"
#include "core/accumulator.h"
#include "core/packed.h"
#include "pisa/fpisa_program.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace fpisa {
namespace {

using telemetry::Labels;
using telemetry::MetricsRegistry;
using telemetry::Snapshot;
using telemetry::Trace;

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

// --- registry primitives ---------------------------------------------------

TEST(TelemetryCounter, StripedIncrementsFoldAcrossThreads) {
  auto& c = telemetry::registry().counter("test_counter_threads_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  c.inc(5);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread + 5);
}

TEST(TelemetryGauge, SetAndAdd) {
  auto& g = telemetry::registry().gauge("test_gauge_depth");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TelemetryHistogram, LeBoundariesAreInclusive) {
  const double bounds[] = {1.0, 2.0, 4.0};
  auto& h =
      telemetry::registry().histogram("test_hist_bounds", {}, bounds);
  // A sample lands in the FIRST bucket whose upper bound is >= the value.
  h.observe(0.5);  // -> le=1
  h.observe(1.0);  // boundary: inclusive, -> le=1
  h.observe(1.0000001);  // -> le=2
  h.observe(2.0);  // -> le=2
  h.observe(4.0);  // -> le=4
  h.observe(4.5);  // -> +Inf
  h.observe(std::numeric_limits<double>::quiet_NaN());  // -> +Inf
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);  // +Inf overflow bucket
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(TelemetryHistogram, SumIsCumulativeWallTime) {
  const double bounds[] = {1.0, 10.0};
  auto& h = telemetry::registry().histogram("test_hist_sum", {}, bounds);
  h.observe(0.25);
  h.observe(0.5);
  h.observe(100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 100.75);
}

TEST(TelemetryRegistry, FindOrCreateIsLabelOrderInsensitive) {
  auto& reg = telemetry::registry();
  auto& a = reg.counter("test_reg_alias_total",
                        {{"tenant", "ml"}, {"shard", "0"}});
  auto& b = reg.counter("test_reg_alias_total",
                        {{"shard", "0"}, {"tenant", "ml"}});
  EXPECT_EQ(&a, &b);  // same canonical key -> same handle
  auto& c = reg.counter("test_reg_alias_total", {{"shard", "1"}});
  EXPECT_NE(&a, &c);
}

TEST(TelemetryRegistry, KindMismatchThrows) {
  auto& reg = telemetry::registry();
  (void)reg.counter("test_reg_kind_total");
  EXPECT_THROW((void)reg.gauge("test_reg_kind_total"), std::logic_error);
  const double bounds[] = {1.0};
  EXPECT_THROW((void)reg.histogram("test_reg_kind_total", {}, bounds),
               std::logic_error);
  // Histogram re-registered with different bounds is also a bug.
  (void)reg.histogram("test_reg_bounds_hist", {}, bounds);
  const double other[] = {2.0};
  EXPECT_THROW((void)reg.histogram("test_reg_bounds_hist", {}, other),
               std::logic_error);
}

TEST(TelemetryRegistry, KillSwitchStopsRecording) {
  auto& c = telemetry::registry().counter("test_kill_switch_total");
  auto& g = telemetry::registry().gauge("test_kill_switch_gauge");
  const double bounds[] = {1.0};
  auto& h =
      telemetry::registry().histogram("test_kill_switch_hist", {}, bounds);
  c.inc();
  telemetry::set_enabled(false);
  c.inc(100);
  g.set(42.0);
  h.observe(0.5);
  telemetry::set_enabled(true);
  EXPECT_EQ(c.value(), 1u);  // the disabled window recorded nothing
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 2u);  // handles stay valid across the toggle
}

// --- exposition ------------------------------------------------------------

TEST(TelemetrySnapshot, FilterAndCounterTotal) {
  auto& reg = telemetry::registry();
  reg.counter("test_snap_total", {{"k", "a"}}).inc(3);
  reg.counter("test_snap_total", {{"k", "b"}}).inc(4);
  const Snapshot snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter_total("test_snap_total"), 7u);
  EXPECT_EQ(snap.counter_total("test_snap_total", {{"k", "a"}}), 3u);
  const Snapshot only_a = snap.with_label("k", "a");
  EXPECT_EQ(only_a.counter_total("test_snap_total"), 3u);
  EXPECT_EQ(only_a.counter_total("test_snap_total", {{"k", "b"}}), 0u);
}

TEST(TelemetrySnapshot, PrometheusTextFormat) {
  auto& reg = telemetry::registry();
  reg.counter("test_prom_total", {{"tenant", "a\"b\\c\nd"}}).inc(2);
  const double bounds[] = {1.0, 2.0};
  auto& h = reg.histogram("test_prom_seconds", {}, bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);
  const std::string text = telemetry::snapshot().prometheus_text();
  // One # TYPE line per metric name, label escaping, cumulative buckets.
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total{tenant=\"a\\\"b\\\\c\\nd\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_seconds_count 3"), std::string::npos);
  // Counters are monotone across scrapes (the CI lint checks the same).
  reg.counter("test_prom_total", {{"tenant", "a\"b\\c\nd"}}).inc();
  const std::string text2 = telemetry::snapshot().prometheus_text();
  EXPECT_NE(text2.find("test_prom_total{tenant=\"a\\\"b\\\\c\\nd\"} 3"),
            std::string::npos);
}

TEST(TelemetrySnapshot, JsonContainsAllSections) {
  telemetry::registry().counter("test_json_total").inc();
  const std::string j = telemetry::snapshot().json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"test_json_total\""), std::string::npos);
}

// --- trace -----------------------------------------------------------------

TEST(TelemetryTrace, NestingAndDeterministicOrder) {
  Trace tr;
  const auto root = tr.begin("job");
  const auto child = tr.begin("submit", root);
  tr.annotate(child, "tenant", "ml");
  tr.end(child);
  tr.end(root);
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "job");
  EXPECT_EQ(spans[0].parent, Trace::kNone);
  EXPECT_EQ(spans[1].name, "submit");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_GE(spans[1].dur_ns, 0);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "tenant");
  const std::string tree = tr.tree();
  EXPECT_NE(tree.find("job"), std::string::npos);
  EXPECT_NE(tree.find("submit"), std::string::npos);
  EXPECT_NE(tree.find("tenant=ml"), std::string::npos);
}

TEST(TelemetryTrace, ExplicitTimestampsRoundTrip) {
  Trace tr;
  const auto t0 = Trace::Clock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  const auto id = tr.begin_at("wave", Trace::kNone, t0);
  tr.end_at(id, t1);
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].dur_ns, 250000);
  EXPECT_NEAR(tr.total_seconds_of("wave"), 250e-6, 1e-12);
}

TEST(TelemetryTrace, EndIsIdempotentAndClamped) {
  Trace tr;
  const auto id = tr.begin("s");
  tr.end(id);
  const auto dur = tr.spans()[0].dur_ns;
  tr.end(id);  // double-close: no-op
  EXPECT_EQ(tr.spans()[0].dur_ns, dur);
  tr.end(Trace::kNone);  // kNone: no-op
  tr.end(999);           // unknown id: no-op
  EXPECT_EQ(tr.size(), 1u);
  // end_at before the start clamps to a zero-length span, never negative.
  const auto t0 = Trace::Clock::now();
  const auto id2 = tr.begin_at("back", Trace::kNone, t0);
  tr.end_at(id2, t0 - std::chrono::microseconds(5));
  EXPECT_EQ(tr.spans()[1].dur_ns, 0);
}

TEST(TelemetryTrace, ChromeTraceJsonShape) {
  Trace tr;
  const auto root = tr.begin("job");
  tr.begin("open_child", root);  // left open: exported with latest ts
  tr.end(root);
  const std::string j = tr.chrome_trace_json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"job\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"open_child\""), std::string::npos);
  EXPECT_NE(j.find("\"pid\":1"), std::string::npos);
}

TEST(TelemetryTrace, ScopedSpanNullTraceIsNoOp) {
  telemetry::ScopedSpan s(nullptr, "nothing");
  s.annotate("k", "v");  // must not crash
  EXPECT_EQ(s.id(), Trace::kNone);
}

// --- cluster integration ---------------------------------------------------

TEST(TelemetryCluster, JobSpanTreeCoversEveryPhase) {
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 16;
  opts.lanes = 2;
  cluster::AggregationService svc(opts);
  Trace tr;
  svc.attach_trace(&tr);
  const auto workers = make_workers(3, 512, 7);
  cluster::JobRequest req;
  req.tenant = "trace-test";
  req.workers = workers;
  (void)svc.reduce(req);
  svc.attach_trace(nullptr);

  int jobs = 0, submits = 0, partitions = 0, acquires = 0, passes = 0,
      shards = 0, adds = 0, collects = 0, merges = 0;
  for (const auto& s : tr.spans()) {
    if (s.name == "job") ++jobs;
    if (s.name == "submit") ++submits;
    if (s.name == "partition") ++partitions;
    if (s.name == "acquire_slots") ++acquires;
    if (s.name == "pass") ++passes;
    if (s.name == "shard") ++shards;
    if (s.name == "add_wave") ++adds;
    if (s.name == "collect_wave") ++collects;
    if (s.name == "merge") ++merges;
    EXPECT_GE(s.dur_ns, 0) << s.name << " left open";
  }
  EXPECT_EQ(jobs, 1);
  EXPECT_EQ(submits, 1);
  EXPECT_EQ(partitions, 1);
  EXPECT_EQ(acquires, 1);
  EXPECT_EQ(passes, 1);
  EXPECT_EQ(shards, 2);
  EXPECT_GT(adds, 0);
  EXPECT_EQ(adds, collects);  // every wave has both phases
  EXPECT_EQ(merges, 1);

  // The wave spans reuse the exact clock readings that feed the phase
  // histograms, so traced time equals phase_breakdown() to fp rounding.
  const auto pb = svc.phase_breakdown();
  EXPECT_GT(pb.add_s, 0.0);
  EXPECT_NEAR(tr.total_seconds_of("add_wave"), pb.add_s,
              1e-9 + 1e-9 * pb.add_s);
  EXPECT_NEAR(tr.total_seconds_of("collect_wave"), pb.collect_s,
              1e-9 + 1e-9 * pb.collect_s);
}

TEST(TelemetryCluster, FailoverJobRecordsFailoverSpanAndCounters) {
  cluster::ClusterOptions opts;
  opts.num_shards = 3;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 16;
  opts.lanes = 2;
  opts.failover.enabled = true;
  opts.failover.max_consecutive_failures = 1;
  opts.failover.faults = {cluster::ShardFault{
      1, cluster::FaultKind::kKill, cluster::FaultPhase::kMidAdd, 0, 0.0}};
  cluster::AggregationService svc(opts);
  Trace tr;
  svc.attach_trace(&tr);
  const auto workers = make_workers(3, 512, 9);
  cluster::JobRequest req;
  req.tenant = "fo";
  req.workers = workers;
  const auto report = svc.reduce(req);
  svc.attach_trace(nullptr);
  EXPECT_EQ(report.stats.shard_failures, 1u);

  int failovers = 0, passes = 0;
  for (const auto& s : tr.spans()) {
    if (s.name == "failover") ++failovers;
    if (s.name == "pass") ++passes;
  }
  EXPECT_EQ(failovers, 1);
  EXPECT_EQ(passes, 2);  // original + clean retry

  // The fabric-level failover events landed in the registry too.
  const Snapshot snap = telemetry::snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name != "cluster_failover_shard_deaths_total") continue;
    for (const auto& [k, v] : c.labels) {
      if (k == "svc" && c.value == 1) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryCluster, ShardAndTotalStatsCarryOpCounters) {
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 16;
  opts.lanes = 2;
  cluster::AggregationService svc(opts);
  const auto workers = make_workers(3, 512, 11);
  cluster::JobRequest req;
  req.tenant = "ops";
  req.workers = workers;
  (void)svc.reduce(req);
  core::OpCounters folded{};
  for (int s = 0; s < opts.num_shards; ++s) {
    folded += svc.shard_stats(s).ops;
  }
  EXPECT_GT(folded.adds, 0u);
  EXPECT_EQ(svc.total_stats().ops.adds, folded.adds);
}

// --- collective backends: uniform surface ----------------------------------

TEST(TelemetryCollective, AllFourBackendsExposeTheSameSurface) {
  using namespace collective;
  const auto workers = make_workers(4, 256, 13);
  for (const Backend backend :
       {Backend::kHost, Backend::kSwitch, Backend::kCluster, Backend::kTree}) {
    CommunicatorOptions copts;
    copts.backend = backend;
    copts.cluster.num_shards = 2;
    copts.cluster.slots_per_shard = 32;
    copts.cluster.slots_per_job = 16;
    copts.hierarchy.leaves = 2;
    copts.hierarchy.workers_per_leaf = 2;
    const auto comm = make_communicator(copts);

    Trace tr;
    comm->set_trace(&tr);
    std::vector<float> out(256);
    (void)comm->allreduce(WorkerViews(workers), out);
    comm->set_trace(nullptr);

    // metrics(): this communicator's registry slice, identical schema.
    const Snapshot m = comm->metrics();
    EXPECT_EQ(m.counter_total("collective_allreduces_total",
                              {{"backend", std::string(comm->name())}}),
              1u)
        << backend_name(backend);
    ASSERT_EQ(m.histograms.size(), 1u) << backend_name(backend);
    EXPECT_EQ(m.histograms[0].name, "collective_allreduce_seconds");
    EXPECT_EQ(m.histograms[0].count, 1u);

    // phase_breakdown(): non-negative, and real time on the substrates
    // with an internal phase split.
    const auto pb = comm->phase_breakdown();
    EXPECT_GE(pb.add_s, 0.0);
    EXPECT_GE(pb.collect_s, 0.0);
    if (backend == Backend::kSwitch || backend == Backend::kCluster) {
      EXPECT_GT(pb.add_s, 0.0) << backend_name(backend);
      EXPECT_GT(pb.collect_s, 0.0) << backend_name(backend);
    }

    // set_trace(): every backend records at least the allreduce span.
    bool saw_allreduce = false;
    for (const auto& s : tr.spans()) {
      if (s.name == "allreduce") saw_allreduce = true;
    }
    EXPECT_TRUE(saw_allreduce) << backend_name(backend);
    // The cluster backend unfolds the whole job tree underneath.
    if (backend == Backend::kCluster) {
      bool saw_merge = false;
      for (const auto& s : tr.spans()) {
        if (s.name == "merge") saw_merge = true;
      }
      EXPECT_TRUE(saw_merge);
    }
  }
}

TEST(TelemetryCollective, ClusterPhaseBreakdownMatchesLegacyMethod) {
  using namespace collective;
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 32;
  opts.slots_per_job = 16;
  opts.lanes = 2;
  ClusterCommunicator comm(opts);
  const auto workers = make_workers(3, 512, 17);
  std::vector<float> out(512);
  (void)comm.allreduce(WorkerViews(workers), out);
  // The communicator surface is a re-shape of the service's legacy view —
  // both read the same registry histograms, so they agree exactly.
  const auto uniform = comm.phase_breakdown();
  const auto legacy = comm.service().phase_breakdown();
  EXPECT_DOUBLE_EQ(uniform.add_s, legacy.add_s);
  EXPECT_DOUBLE_EQ(uniform.collect_s, legacy.collect_s);
  EXPECT_GT(uniform.add_s, 0.0);
}

TEST(TelemetryCollective, SwitchBackendStatsCarryOpCountersEndToEnd) {
  using namespace collective;
  CommunicatorOptions copts;
  copts.backend = Backend::kSwitch;
  copts.session.slots = 32;
  const auto comm = make_communicator(copts);
  const auto workers = make_workers(4, 256, 19);
  std::vector<float> out(256);
  const ReduceStats first = comm->allreduce(WorkerViews(workers), out);
  // The per-job delta carries the kernel op taxonomy (it used to be
  // dropped by a hand-rolled field list)...
  EXPECT_GT(first.network.ops.adds, 0u);
  const ReduceStats second = comm->allreduce(WorkerViews(workers), out);
  EXPECT_EQ(second.network.ops.adds, first.network.ops.adds);
  // ...and the cumulative books merge it, so per-MAU operation counts
  // survive aggregation end to end.
  EXPECT_EQ(comm->total_stats().ops.adds,
            first.network.ops.adds + second.network.ops.adds);
}

// --- switch-level metrics --------------------------------------------------

TEST(TelemetrySwitch, RegistersPacketsOpsAndOccupancy) {
  pisa::FpisaProgramOptions popts;
  popts.slots = 8;
  popts.lanes = 1;
  pisa::SwitchConfig cfg;
  cfg.ext.rsaw = true;  // full FPISA needs the RSAW extension
  pisa::FpisaSwitch sw(cfg, popts);
  const std::uint32_t one = core::fp32_bits(1.0f);
  (void)sw.add(0, 0, {&one, 1});
  const auto adds_before_dup = sw.op_counters().adds;
  (void)sw.add(0, 0, {&one, 1});  // duplicate: dedup bitmap absorbs it
  EXPECT_EQ(sw.dedup_hits(), 1u);
  EXPECT_EQ(sw.occupied_slots(), 1);
  // The dup never reached the ALU, so the op taxonomy did not move.
  EXPECT_EQ(sw.op_counters().adds, adds_before_dup);
  (void)sw.read_and_reset(0);
  EXPECT_EQ(sw.occupied_slots(), 0);

  // The same numbers are visible through this switch's registry slice.
  const Snapshot snap = telemetry::snapshot();
  bool found_occupancy = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "fpisa_switch_occupied_slots" && g.value == 0.0) {
      found_occupancy = true;
    }
  }
  EXPECT_TRUE(found_occupancy);
}

}  // namespace
}  // namespace fpisa
