// Shard-failure failover: a dead or straggling shard must not stall every
// tenant's job. The matrix kills a shard before the job, mid-add-wave and
// mid-collect-wave and asserts (a) the job completes with a sum
// bit-identical to the no-failure run, (b) the re-route is visible in the
// failover counters and per-tenant SLO stats, (c) the corpse's ranges are
// scrubbed clean for the next tenant, and (d) jobs after the death route
// around it (degraded N-1 mode) without another retry pass.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "cluster/shard_health.h"
#include "cluster/shard_router.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::cluster {
namespace {

std::vector<std::vector<float>> make_workers(int w, std::size_t n,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(rng.normal(0.0, 0.1));
  }
  return out;
}

void expect_bits_eq(const std::vector<float>& got,
                    const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i]))
        << what << " i=" << i;
  }
}

ClusterOptions failover_options() {
  ClusterOptions opts;
  opts.num_shards = 4;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  opts.failover.enabled = true;
  return opts;
}

// --- ShardHealth -----------------------------------------------------------

TEST(ShardHealth, ConsecutiveFailuresCrossThreshold) {
  ShardHealth health(3, /*max_consecutive_failures=*/2);
  EXPECT_EQ(health.num_alive(), 3);
  EXPECT_FALSE(health.record_failure(1));  // 1 of 2
  health.record_success(1);                // streak broken
  EXPECT_FALSE(health.record_failure(1));  // 1 of 2 again
  EXPECT_TRUE(health.record_failure(1));   // dead
  EXPECT_FALSE(health.alive(1));
  EXPECT_EQ(health.num_alive(), 2);
  EXPECT_EQ(health.deaths(), 1u);
  EXPECT_EQ(health.total_failures(1), 3u);
  EXPECT_EQ(health.alive_shards(), (std::vector<int>{0, 2}));

  health.mark_dead(0);
  EXPECT_EQ(health.deaths(), 2u);
  health.mark_dead(0);  // idempotent
  EXPECT_EQ(health.deaths(), 2u);
}

// --- ShardRouter::reroute --------------------------------------------------

TEST(ShardRouterReroute, DeterministicSaltStableAndComplete) {
  std::vector<std::size_t> chunks;
  for (std::size_t c = 0; c < 61; ++c) chunks.push_back(c * 3);

  const ShardRouter a(4, RoutingPolicy::kHash, 42);
  const ShardRouter b(4, RoutingPolicy::kRange, 42);  // policy-independent
  const auto ra = a.reroute(chunks, 2);
  EXPECT_EQ(ra, b.reroute(chunks, 2)) << "reroute must be salt-stable";

  ASSERT_EQ(ra.size(), 4u);
  EXPECT_TRUE(ra[2].empty()) << "nothing may land on the corpse";
  std::set<std::size_t> seen;
  for (const auto& p : ra) {
    for (const std::size_t c : p) {
      EXPECT_TRUE(seen.insert(c).second) << "chunk rerouted twice: " << c;
    }
  }
  EXPECT_EQ(seen.size(), chunks.size());
  // Survivors absorb the load roughly evenly (61 chunks over 3 shards).
  for (const int s : {0, 1, 3}) {
    EXPECT_GT(ra[static_cast<std::size_t>(s)].size(), 8u);
  }

  // Restricted survivor set: only the listed shards receive chunks.
  const std::vector<int> alive{1, 3};
  const auto rr = a.reroute(chunks, 0, alive);
  EXPECT_TRUE(rr[0].empty());
  EXPECT_TRUE(rr[2].empty());
  EXPECT_EQ(rr[1].size() + rr[3].size(), chunks.size());

  EXPECT_THROW(a.reroute(chunks, 0, std::span<const int>{}),
               std::invalid_argument);
}

// --- failover matrix -------------------------------------------------------

TEST(Failover, KillMatrixBitIdenticalToHealthyRun) {
  const auto workers = make_workers(4, 200, 7);
  for (const FaultPhase phase :
       {FaultPhase::kBeforeJob, FaultPhase::kMidAdd,
        FaultPhase::kMidCollect}) {
    ClusterOptions healthy = failover_options();
    AggregationService ref(healthy);
    const auto want = ref.reduce({"t", workers});

    ClusterOptions opts = failover_options();
    opts.failover.faults = {ShardFault{1, FaultKind::kKill, phase, 0, 0.0}};
    AggregationService svc(opts);
    const auto got = svc.reduce({"t", workers});

    expect_bits_eq(got.result, want.result, "failover vs healthy");
    EXPECT_EQ(got.stats.shard_failures, 1u) << static_cast<int>(phase);
    EXPECT_EQ(got.stats.failover_retries, 1u) << static_cast<int>(phase);
    EXPECT_GT(got.stats.chunks_rerouted, 0u) << static_cast<int>(phase);
    EXPECT_FALSE(svc.health().alive(1));
    EXPECT_EQ(svc.health().deaths(), 1u);
    EXPECT_EQ(svc.jobs_completed(), 1u);
    EXPECT_EQ(svc.jobs_failed(), 0u);

    const TenantSlo slo = svc.tenant_slo("t");
    EXPECT_EQ(slo.jobs_completed, 1u);
    EXPECT_EQ(slo.jobs_failed, 0u);
    EXPECT_EQ(slo.jobs_failed_over, 1u);
    EXPECT_GT(slo.p50_wall_s, 0.0);
    EXPECT_GE(slo.p99_wall_s, slo.p50_wall_s);

    // Both cumulative surfaces must agree on the failover counters: the
    // job-level delta lands in total_stats() and the tenant books alike.
    EXPECT_EQ(svc.total_stats().failover_retries, 1u);
    EXPECT_EQ(svc.total_stats().shard_failures, 1u);
    EXPECT_EQ(svc.tenant_stats("t").failover_retries, 1u);
    EXPECT_EQ(svc.total_stats().chunks_rerouted,
              svc.tenant_stats("t").chunks_rerouted);

    // Degraded steady state: the next job routes around the corpse at
    // partition time — rerouted chunks, but no failure and no retry pass.
    const auto again = svc.reduce({"t", workers});
    expect_bits_eq(again.result, want.result, "degraded vs healthy");
    EXPECT_EQ(again.stats.shard_failures, 0u);
    EXPECT_EQ(again.stats.failover_retries, 0u);
    EXPECT_GT(again.stats.chunks_rerouted, 0u);
    EXPECT_EQ(svc.jobs_completed(), 2u);
    EXPECT_EQ(svc.tenant_slo("t").jobs_failed_over, 1u);
  }
}

TEST(Failover, FailoverUnderPacketLossStaysBitIdentical) {
  // Loss on every link AND a shard death: the retried chunks still land
  // bit-identical (per-chunk adds are worker-ordered and dedup'd on any
  // shard), and the healthy comparison run sees the identical loss
  // schedule on the surviving shards.
  const auto workers = make_workers(4, 160, 17);
  ClusterOptions opts = failover_options();
  opts.loss_rate = 0.2;
  opts.loss_seed = 18;
  opts.max_retransmits = 256;

  AggregationService ref(opts);
  const auto want = ref.reduce({"t", workers});

  opts.failover.faults = {
      ShardFault{2, FaultKind::kKill, FaultPhase::kMidAdd, 0, 0.0}};
  AggregationService svc(opts);
  const auto got = svc.reduce({"t", workers});

  expect_bits_eq(got.result, want.result, "lossy failover vs healthy");
  EXPECT_GT(got.stats.packets_lost, 0u);
  EXPECT_EQ(got.stats.failover_retries, 1u);
}

TEST(Failover, MidCollectThrowNeverLeaksDedupBitsIntoReusedRange) {
  // Regression: a mid-collect death leaves the wave's uncollected slots
  // with partial sums AND set dedup-bitmap bits. Whether the job fails
  // (failover off) or fails over, the range must be scrubbed before the
  // next tenant reuses it — otherwise that tenant's adds are silently
  // swallowed as duplicates.
  const auto workers = make_workers(2, 24, 27);
  for (const bool failover_on : {false, true}) {
    ClusterOptions opts;
    opts.num_shards = 2;
    opts.slots_per_shard = 4;
    opts.slots_per_job = 4;  // next tenant must land on the same slots
    opts.failover.enabled = failover_on;
    opts.failover.faults = {
        ShardFault{0, FaultKind::kKill, FaultPhase::kMidCollect, 0, 0.0}};
    AggregationService svc(opts);
    if (failover_on) {
      (void)svc.reduce({"doomed", workers});  // completes via failover
      EXPECT_EQ(svc.jobs_failed(), 0u);
    } else {
      EXPECT_THROW(svc.reduce({"doomed", workers}), std::runtime_error);
      EXPECT_EQ(svc.jobs_failed(), 1u);
    }

    const auto next = make_workers(2, 24, 28);
    const auto got = svc.reduce({"fresh", next}).result;
    ClusterOptions clean_opts = opts;
    clean_opts.failover.faults.clear();
    AggregationService clean(clean_opts);
    if (failover_on) clean.kill_shard(0);  // same degraded topology
    const auto want = clean.reduce({"fresh", next}).result;
    expect_bits_eq(got, want, failover_on ? "failover reuse" : "fail reuse");
  }
}

TEST(Failover, FailedJobStatsInvariant) {
  // Satellite: the error path used to merge the failed job's per-shard
  // traffic into tenant/shard cumulative stats while never counting the
  // job anywhere. Invariant now pinned: failed jobs count in
  // jobs_failed(), their packets stay in the cumulative stats (they did
  // cross the wire), and tenant totals equal shard totals.
  const auto workers = make_workers(2, 48, 37);
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 8;
  opts.slots_per_job = 4;
  opts.failover.enabled = false;  // no recovery: the job must fail
  opts.failover.faults = {
      ShardFault{0, FaultKind::kKill, FaultPhase::kMidAdd, 0, 0.0}};
  AggregationService svc(opts);
  EXPECT_THROW(svc.reduce({"t", workers}), std::runtime_error);

  EXPECT_EQ(svc.jobs_completed(), 0u);
  EXPECT_EQ(svc.jobs_failed(), 1u);
  const auto total = svc.total_stats();
  EXPECT_GT(total.packets_sent, 0u) << "failed traffic must stay accounted";
  EXPECT_EQ(svc.tenant_stats("t").packets_sent, total.packets_sent);
  EXPECT_EQ(svc.tenant_slo("t").jobs_failed, 1u);
  EXPECT_EQ(svc.tenant_slo("t").jobs_completed, 0u);

  // A later successful job keeps both books consistent.
  ClusterOptions ok_opts = opts;
  ok_opts.failover.faults.clear();
  AggregationService ok(ok_opts);
  (void)ok.reduce({"t", workers});
  EXPECT_EQ(ok.jobs_completed(), 1u);
  EXPECT_EQ(ok.jobs_failed(), 0u);
}

TEST(Failover, SlowdownStragglerCompletesWithoutDeath) {
  const auto workers = make_workers(3, 96, 47);
  ClusterOptions opts = failover_options();
  AggregationService ref(opts);
  const auto want = ref.reduce({"t", workers});

  opts.failover.faults = {ShardFault{
      0, FaultKind::kSlowdown, FaultPhase::kBeforeJob, 0, /*ms=*/15.0}};
  AggregationService svc(opts);
  const auto got = svc.reduce({"t", workers});

  expect_bits_eq(got.result, want.result, "straggler vs healthy");
  EXPECT_TRUE(svc.health().alive(0)) << "a straggler is slow, not dead";
  EXPECT_EQ(got.stats.failover_retries, 0u);
  const TenantSlo slo = svc.tenant_slo("t");
  EXPECT_EQ(slo.jobs_completed, 1u);
  EXPECT_EQ(slo.jobs_failed_over, 0u);
  EXPECT_GE(slo.p99_wall_s, 0.010)
      << "the injected per-wave stall must show up in job wall time";
}

TEST(Failover, AllShardsDeadFailsLoudly) {
  const auto workers = make_workers(2, 32, 57);
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.failover.enabled = true;
  opts.failover.faults = {
      ShardFault{0, FaultKind::kKill, FaultPhase::kBeforeJob, 0, 0.0},
      ShardFault{1, FaultKind::kKill, FaultPhase::kBeforeJob, 0, 0.0}};
  AggregationService svc(opts);
  EXPECT_THROW(svc.reduce({"t", workers}), std::runtime_error);
  EXPECT_EQ(svc.health().num_alive(), 0);
  EXPECT_EQ(svc.jobs_failed(), 1u);
  // With no fabric left, later jobs fail fast instead of hanging — and
  // the per-tenant SLO book must agree with the service-level counter.
  EXPECT_THROW(svc.reduce({"t", workers}), std::runtime_error);
  EXPECT_EQ(svc.jobs_failed(), 2u);
  EXPECT_EQ(svc.tenant_slo("t").jobs_failed, 2u);
  EXPECT_EQ(svc.tenant_slo("t").jobs_completed, 0u);
}

TEST(Failover, KillShardRequiresFailoverAndValidates) {
  ClusterOptions opts;
  opts.num_shards = 2;
  {
    AggregationService svc(opts);
    EXPECT_THROW(svc.kill_shard(0), std::logic_error);
  }
  opts.failover.enabled = true;
  AggregationService svc(opts);
  EXPECT_THROW(svc.kill_shard(7), std::invalid_argument);
  svc.kill_shard(1);
  EXPECT_FALSE(svc.health().alive(1));

  // Degraded N-1 service still completes jobs, bit-identical.
  const auto workers = make_workers(2, 40, 67);
  const auto got = svc.reduce({"t", workers});
  AggregationService ref(opts);
  const auto want = ref.reduce({"t", workers});
  expect_bits_eq(got.result, want.result, "N-1 vs N");
  EXPECT_GT(got.stats.chunks_rerouted, 0u);
}

TEST(Failover, ConcurrentTenantsSurviveAShardDeath) {
  // A shard dies while many tenants contend for a tight slot pool: the
  // victim's retry releases every held range before re-acquiring (no
  // hold-and-wait), so the fleet drains — and every job, failed-over or
  // not, returns the same bits as a healthy run.
  const auto workers = make_workers(3, 120, 87);
  ClusterOptions opts = failover_options();
  opts.slots_per_shard = 8;  // one job's range fills a shard: real contention
  opts.slots_per_job = 8;
  opts.job_runner_threads = 4;
  opts.failover.faults = {
      ShardFault{0, FaultKind::kKill, FaultPhase::kMidAdd, 0, 0.0}};
  AggregationService svc(opts);

  AggregationService ref(failover_options());
  const auto want = ref.reduce({"t", workers}).result;

  constexpr int kJobs = 16;
  std::vector<std::future<JobReport>> futures;
  futures.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    futures.push_back(svc.submit({"tenant-" + std::to_string(j % 4), workers}));
  }
  for (auto& f : futures) {
    expect_bits_eq(f.get().result, want, "concurrent failover");
  }
  EXPECT_EQ(svc.jobs_completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(svc.jobs_failed(), 0u);
  EXPECT_FALSE(svc.health().alive(0));
  EXPECT_EQ(svc.health().deaths(), 1u);
  EXPECT_EQ(svc.total_stats().shard_failures, 1u);
}

TEST(Failover, FaultTargetingUnknownShardIsRejected) {
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.failover.faults = {
      ShardFault{5, FaultKind::kKill, FaultPhase::kBeforeJob, 0, 0.0}};
  EXPECT_THROW(AggregationService svc(opts), std::invalid_argument);
}

// --- hierarchy dead-leaf collapse ------------------------------------------

std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

TEST(HierarchyFailover, DeadLeafCollapsesIntoSpineFanIn) {
  HierarchyOptions opts;
  opts.leaves = 4;
  opts.workers_per_leaf = 2;
  opts.slots = 8;
  opts.lanes = 2;
  const auto workers = make_exact_workers(8, 72, 77);

  HierarchicalAggregator healthy(opts);
  const auto want = healthy.reduce(workers);

  HierarchicalAggregator degraded(opts);
  degraded.kill_leaf(2);
  EXPECT_FALSE(degraded.leaf_alive(2));
  EXPECT_EQ(degraded.alive_leaves(), 3);
  const auto got = degraded.reduce(workers);
  expect_bits_eq(got, want, "dead-leaf tree vs healthy tree");

  // The collapse is visible in the timing model: the same packets arrive,
  // and the spine still completes every chunk.
  EXPECT_GT(degraded.timing().done_s, 0.0);
  EXPECT_EQ(degraded.timing().packets, healthy.timing().packets - 72u / 2u)
      << "a dead ToR forwards no partials (one per chunk saved)";
}

TEST(HierarchyFailover, KillLeafValidates) {
  HierarchyOptions opts;
  opts.leaves = 2;
  opts.workers_per_leaf = 2;
  HierarchicalAggregator tree(opts);
  EXPECT_THROW(tree.kill_leaf(-1), std::invalid_argument);
  EXPECT_THROW(tree.kill_leaf(2), std::invalid_argument);
  tree.kill_leaf(0);
  tree.kill_leaf(0);  // idempotent
  EXPECT_THROW(tree.kill_leaf(1), std::invalid_argument)
      << "cannot kill the last leaf";

  // Spine bitmap capacity: 31 leaf-partial ids + 2 direct senders > 32.
  HierarchyOptions wide;
  wide.leaves = 31;
  wide.workers_per_leaf = 2;
  wide.slots = 4;
  HierarchicalAggregator big(wide);
  EXPECT_THROW(big.kill_leaf(0), std::invalid_argument);
}

}  // namespace
}  // namespace fpisa::cluster
