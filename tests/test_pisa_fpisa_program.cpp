// The FPISA switch program (Fig 2) run on the PISA simulator, validated
// bit-exactly against the core software reference, plus the Table 3
// resource analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accumulator.h"
#include "core/packed.h"
#include "pisa/fpisa_program.h"
#include "pisa/resources.h"
#include "util/rng.h"

namespace fpisa::pisa {
namespace {

SwitchConfig baseline_tofino() { return {}; }

SwitchConfig extended_switch() {
  SwitchConfig c;
  c.ext.two_operand_shift = true;
  c.ext.rsaw = true;
  c.ext.parser_endianness = true;
  return c;
}

core::AccumulatorConfig core_cfg(core::Variant v) {
  core::AccumulatorConfig c;
  c.variant = v;
  c.overflow = core::OverflowPolicy::kWrap;  // hardware semantics
  return c;
}

TEST(FpisaSwitch, PaperRunningExample) {
  // Fig 4: 3.0 + 1.0 through the actual pipeline; result must be 4.0 and
  // the registers must hold the denormalized intermediate.
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);

  const std::uint32_t three[] = {core::fp32_bits(3.0f)};
  const std::uint32_t one[] = {core::fp32_bits(1.0f)};
  sw.add(0, 0, three);
  const FpisaResult r = sw.add(0, 1, one);

  EXPECT_EQ(sw.sim().reg(0).read(0), 128u);                // exponent of 2^1
  EXPECT_EQ(sw.sim().reg(1).read(0), std::uint64_t{1} << 24);  // 0b10.0...
  EXPECT_EQ(core::fp32_value(r.values[0]), 4.0f);
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.bitmap, 0b11u);
}

TEST(FpisaSwitch, ReadAndReset) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);
  const std::uint32_t v[] = {core::fp32_bits(2.5f)};
  sw.add(7, 0, v);
  sw.add(7, 1, v);

  EXPECT_EQ(core::fp32_value(sw.read(7).values[0]), 5.0f);
  EXPECT_EQ(core::fp32_value(sw.read(7).values[0]), 5.0f);  // non-destructive
  EXPECT_EQ(core::fp32_value(sw.read_and_reset(7).values[0]), 5.0f);
  EXPECT_EQ(core::fp32_value(sw.read(7).values[0]), 0.0f);  // cleared
}

TEST(FpisaSwitch, SlotsAreIndependent) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);
  const std::uint32_t a[] = {core::fp32_bits(1.0f)};
  const std::uint32_t b[] = {core::fp32_bits(10.0f)};
  sw.add(3, 0, a);
  sw.add(9, 0, b);
  EXPECT_EQ(core::fp32_value(sw.read(3).values[0]), 1.0f);
  EXPECT_EQ(core::fp32_value(sw.read(9).values[0]), 10.0f);
}

TEST(FpisaSwitch, MultiLanePacketsAggregateIndependently) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  opts.lanes = 4;
  FpisaSwitch sw(baseline_tofino(), opts);
  const std::uint32_t v1[] = {core::fp32_bits(1.0f), core::fp32_bits(2.0f),
                              core::fp32_bits(-3.0f), core::fp32_bits(0.5f)};
  const std::uint32_t v2[] = {core::fp32_bits(4.0f), core::fp32_bits(-1.0f),
                              core::fp32_bits(1.0f), core::fp32_bits(0.25f)};
  sw.add(0, 0, v1);
  const FpisaResult r = sw.add(0, 1, v2);
  EXPECT_EQ(core::fp32_value(r.values[0]), 5.0f);
  EXPECT_EQ(core::fp32_value(r.values[1]), 1.0f);
  EXPECT_EQ(core::fp32_value(r.values[2]), -2.0f);
  EXPECT_EQ(core::fp32_value(r.values[3]), 0.75f);
}

// ---------------------------------------------------------------------------
// The central fidelity property: the switch program and the software
// reference are bit-identical, state and output, over random streams.
// ---------------------------------------------------------------------------

struct VariantCase {
  core::Variant variant;
  bool extended;
};

class SwitchEquivalence : public ::testing::TestWithParam<VariantCase> {};

TEST_P(SwitchEquivalence, BitExactAgainstCoreReference) {
  const auto [variant, extended] = GetParam();
  FpisaProgramOptions opts;
  opts.variant = variant;
  FpisaSwitch sw(extended ? extended_switch() : baseline_tofino(), opts);
  core::FpisaAccumulator ref(core_cfg(variant));
  core::OpCounters dummy;

  util::Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    // Exponents within [-60, 60]: results stay normal (no FTZ divergence).
    const float v = static_cast<float>(
        (rng.next_u64() & 1 ? 1.0 : -1.0) * rng.uniform(0.5, 1.0) *
        std::exp2(rng.uniform_int(-60, 60)));
    const std::uint32_t bits[] = {core::fp32_bits(v)};
    // Clear the dedup bitmap so a 4000-add stream is not mistaken for
    // retransmissions (register 2 = shared bitmap for a 1-lane program).
    sw.sim().reg(2).write(0, 0);
    const FpisaResult out = sw.add(0, static_cast<std::uint8_t>(i % 32), bits);
    ref.add(v);

    // Register state must match exactly.
    ASSERT_EQ(static_cast<std::int32_t>(sw.sim().reg(0).read(0)),
              ref.state().exp)
        << "add #" << i << " v=" << v;
    ASSERT_EQ(sw.sim().reg(1).read_signed(0), ref.state().man)
        << "add #" << i << " v=" << v;

    // The piggybacked readout equals the reference's renormalized read.
    const std::uint64_t want = ref.read_bits();
    ASSERT_EQ(out.values[0], static_cast<std::uint32_t>(want))
        << "add #" << i << " v=" << v;
  }
  (void)dummy;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SwitchEquivalence,
    ::testing::Values(VariantCase{core::Variant::kApproximate, false},
                      VariantCase{core::Variant::kApproximate, true},
                      VariantCase{core::Variant::kFull, true}),
    [](const auto& info) {
      return std::string(info.param.variant == core::Variant::kFull
                             ? "full"
                             : "approx") +
             (info.param.extended ? "_ext" : "_baseline");
    });

TEST(FpisaSwitch, MultiLaneBitExactAgainstCoreReferences) {
  // 8 parallel FPISA modules (the extension's multi-instance deployment):
  // every lane must bit-match its own core accumulator across a random
  // stream, for both variants.
  for (const auto variant :
       {core::Variant::kApproximate, core::Variant::kFull}) {
    FpisaProgramOptions opts;
    opts.variant = variant;
    opts.lanes = 8;
    FpisaSwitch sw(extended_switch(), opts);
    std::vector<core::FpisaAccumulator> refs(8,
                                             core::FpisaAccumulator(core_cfg(variant)));
    util::Rng rng(99);
    for (int i = 0; i < 300; ++i) {
      sw.sim().reg(16).write(0, 0);  // clear dedup bitmap (reg 2*lanes)
      std::vector<std::uint32_t> vals(8);
      for (std::size_t l = 0; l < 8; ++l) {
        const float v = static_cast<float>(
            rng.normal(0, 1) * std::exp2(rng.uniform_int(-40, 40)));
        vals[l] = core::fp32_bits(v);
        refs[l].add(v);
      }
      const FpisaResult out = sw.add(0, static_cast<std::uint8_t>(i % 32), vals);
      for (std::size_t l = 0; l < 8; ++l) {
        ASSERT_EQ(out.values[l],
                  static_cast<std::uint32_t>(refs[l].read_bits()))
            << "lane " << l << " add " << i;
        ASSERT_EQ(sw.sim().reg(static_cast<int>(2 * l + 1)).read_signed(0),
                  refs[l].state().man)
            << "lane " << l;
      }
    }
  }
}

TEST(FpisaSwitch, RetransmittedAddsAreDeduplicated) {
  // SwitchML-style loss recovery: a worker that re-sends its packet must
  // not be double-counted. The bitmap stage detects the duplicate and the
  // exponent/mantissa/counter updates are suppressed; the current
  // aggregate is still returned (so the retransmitted packet gets its ack).
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);
  const std::uint32_t v[] = {core::fp32_bits(1.5f)};
  sw.add(0, 0, v);
  const FpisaResult dup = sw.add(0, 0, v);  // retransmission
  EXPECT_EQ(core::fp32_value(dup.values[0]), 1.5f);  // not 3.0
  EXPECT_EQ(dup.count, 1u);
  EXPECT_EQ(dup.bitmap, 0b1u);
  const FpisaResult fresh = sw.add(0, 1, v);
  EXPECT_EQ(core::fp32_value(fresh.values[0]), 3.0f);
  EXPECT_EQ(fresh.count, 2u);
  EXPECT_EQ(fresh.bitmap, 0b11u);
}

TEST(FpisaSwitch, OverflowClampsToInfinity) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);
  const std::uint32_t huge[] = {core::fp32_bits(3e38f)};
  sw.add(0, 0, huge);
  const FpisaResult r = sw.add(0, 1, huge);
  EXPECT_TRUE(std::isinf(core::fp32_value(r.values[0])));
  EXPECT_GT(core::fp32_value(r.values[0]), 0.0f);
}

TEST(FpisaSwitch, SubnormalResultFlushesToZero) {
  // The egress range gateway flushes would-be-subnormal outputs (documented
  // divergence from the software reference, which emits true subnormals).
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  FpisaSwitch sw(baseline_tofino(), opts);
  const float tiny = std::ldexp(1.0f, -120);
  const std::uint32_t a[] = {core::fp32_bits(tiny)};
  const std::uint32_t b[] = {core::fp32_bits(-tiny * 0.999f)};
  sw.add(0, 0, a);
  const FpisaResult r = sw.add(0, 1, b);
  // True result ~ 2^-130: subnormal -> FTZ on the switch.
  EXPECT_EQ(core::fp32_value(r.values[0]), 0.0f);
}

TEST(FpisaSwitch, NativeEndianPayloadNeedsParserExtension) {
  // Hosts that skip htonl() produce garbage on a baseline switch but work
  // with the @convert_endianness parser extension (§4.1/§4.2).
  const float x = 1.5f;
  const float y = 0.25f;

  {  // Extension enabled: correct aggregation of little-endian payloads.
    FpisaProgramOptions opts;
    opts.variant = core::Variant::kApproximate;
    opts.convert_endianness = true;
    FpisaSwitch sw(extended_switch(), opts);
    const std::uint32_t xv[] = {core::fp32_bits(x)};
    const std::uint32_t yv[] = {core::fp32_bits(y)};
    sw.add(0, 0, xv);
    const FpisaResult r = sw.add(0, 1, yv);
    EXPECT_EQ(core::fp32_value(r.values[0]), 1.75f);
  }
  {  // Baseline switch fed little-endian bytes: wrong answer.
    FpisaProgramOptions opts;
    opts.variant = core::Variant::kApproximate;
    FpisaSwitch sw(baseline_tofino(), opts);
    Packet p1 = make_fpisa_packet(FpisaOp::kAdd, 0, 0,
                                  std::vector<std::uint32_t>{core::fp32_bits(x)},
                                  /*little_endian_payload=*/true);
    sw.sim().process(p1);
    Packet p2 = make_fpisa_packet(FpisaOp::kAdd, 0, 1,
                                  std::vector<std::uint32_t>{core::fp32_bits(y)},
                                  /*little_endian_payload=*/true);
    sw.sim().process(p2);
    const FpisaResult r = parse_fpisa_result(p2, 1, true);
    EXPECT_NE(core::fp32_value(r.values[0]), 1.75f);
  }
}

// ---------------------------------------------------------------------------
// Table 3: resource utilization and the one-instance-per-pipeline result.
// ---------------------------------------------------------------------------

TEST(FpisaResources, Table3Shape) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  const SwitchConfig cfg = baseline_tofino();
  const auto descs = fpisa_resource_descriptors(cfg, opts);
  const ResourceReport report = analyze(descs, cfg);

  EXPECT_EQ(report.stages_used, 9);  // "Nine pipeline stages (out of 12)"
  EXPECT_EQ(report.total_stages, 12);

  const ResourceRow* vliw = report.find("VLIW instruction slots");
  ASSERT_NE(vliw, nullptr);
  // Paper: 96.88% max in a MAU (31 of 32 slots), ~19% total.
  EXPECT_NEAR(vliw->max_stage_pct(), 0.9688, 0.001);
  EXPECT_GT(vliw->total_pct(), 0.15);
  EXPECT_LT(vliw->total_pct(), 0.30);

  const ResourceRow* salu = report.find("Stateful ALU");
  ASSERT_NE(salu, nullptr);
  // Paper: 8.33% total (4 of 48), 50% max in a MAU (2 of 4).
  EXPECT_NEAR(salu->total_pct(), 4.0 / 48.0, 1e-9);
  EXPECT_NEAR(salu->max_stage_pct(), 0.5, 1e-9);

  const ResourceRow* tcam = report.find("TCAM");
  ASSERT_NE(tcam, nullptr);
  EXPECT_NEAR(tcam->max_stage_pct(), 1.0 / 24.0, 1e-9);  // 4.17%

  const ResourceRow* sram = report.find("SRAM");
  ASSERT_NE(sram, nullptr);
  EXPECT_LT(sram->total_pct(), 0.05);  // tiny, as in the paper (1.15%)
}

TEST(FpisaResources, BaselineFitsExactlyOneInstance) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  const SwitchConfig cfg = baseline_tofino();
  EXPECT_EQ(max_instances(fpisa_resource_descriptors(cfg, opts), cfg), 1);
}

TEST(FpisaSwitch, BatchAddBitIdenticalToPerPacketPipeline) {
  // The compiled add_batch fast path must leave every register array —
  // exponents, mantissas, dedup bitmap, completion counters — in exactly
  // the state the interpreted per-packet pipeline produces, for the same
  // packet sequence (duplicates, zeros, subnormals and infinities
  // included), and subsequent reads must agree bit-for-bit.
  for (const auto variant :
       {core::Variant::kApproximate, core::Variant::kFull}) {
    FpisaProgramOptions opts;
    opts.variant = variant;
    opts.lanes = 4;
    opts.slots = 16;
    const SwitchConfig cfg = variant == core::Variant::kFull
                                 ? extended_switch()
                                 : baseline_tofino();
    FpisaSwitch per_packet(cfg, opts);
    FpisaSwitch batched(cfg, opts);

    util::Rng rng(0xBA7C);
    std::vector<std::uint16_t> slots;
    std::vector<std::uint8_t> workers;
    std::vector<std::uint32_t> values;
    for (int p = 0; p < 600; ++p) {
      slots.push_back(static_cast<std::uint16_t>(rng.next_u64() % 16));
      workers.push_back(static_cast<std::uint8_t>(rng.next_u64() % 8));
      for (int l = 0; l < 4; ++l) {
        std::uint32_t u;
        switch (rng.next_u64() % 5) {
          case 0:
            u = core::fp32_bits(static_cast<float>(rng.normal(0, 1)));
            break;
          case 1:  // wide exponent spread (hits overwrite + RSAW paths)
            u = core::fp32_bits(static_cast<float>(
                std::exp2(rng.uniform_int(-80, 80)) * rng.normal(0, 1)));
            break;
          case 2:
            u = 0;  // exact zero: exercises the zero-input exp update
            break;
          case 3:
            u = static_cast<std::uint32_t>(rng.next_u64());  // bit noise
            break;
          default:
            u = core::fp32_bits(std::numeric_limits<float>::denorm_min());
            break;
        }
        values.push_back(u);
      }
    }

    for (std::size_t p = 0; p < slots.size(); ++p) {
      (void)per_packet.add(slots[p], workers[p],
                           std::span<const std::uint32_t>(values).subspan(
                               4 * p, 4));
    }
    batched.add_batch(slots, workers, values);

    for (int r = 0; r < 2 * 4 + 2; ++r) {  // all lane regs + bitmap + count
      for (std::size_t s = 0; s < 16; ++s) {
        ASSERT_EQ(batched.sim().reg(r).read(s), per_packet.sim().reg(r).read(s))
            << "variant=" << (variant == core::Variant::kFull ? "full" : "a")
            << " reg=" << r << " slot=" << s;
      }
    }
    for (std::uint16_t s = 0; s < 16; ++s) {
      const FpisaResult a = batched.read(s);
      const FpisaResult b = per_packet.read(s);
      ASSERT_EQ(a.bitmap, b.bitmap) << s;
      ASSERT_EQ(a.count, b.count) << s;
      for (int l = 0; l < 4; ++l) ASSERT_EQ(a.values[l], b.values[l]) << s;
    }
    // Fast-path packets are accounted: both switches saw the same count.
    EXPECT_EQ(batched.sim().packets_processed(),
              per_packet.sim().packets_processed());
  }
}

TEST(FpisaSwitch, ReadBatchBitIdenticalToPerPacketPipeline) {
  // The compiled egress fast path must emit exactly what the interpreted
  // read/read_and_reset packets emit — values (FTZ and overflow-to-inf
  // range handling included), bitmap and count fields — leave the register
  // arrays in the identical state, and account the same packet count.
  for (const auto variant :
       {core::Variant::kApproximate, core::Variant::kFull}) {
    FpisaProgramOptions opts;
    opts.variant = variant;
    opts.lanes = 4;
    opts.slots = 16;
    const SwitchConfig cfg = variant == core::Variant::kFull
                                 ? extended_switch()
                                 : baseline_tofino();
    FpisaSwitch per_packet(cfg, opts);
    FpisaSwitch batched(cfg, opts);

    // Drive both switches into an identical, adversarial state: normals,
    // wide exponent spreads, zeros, bit noise (inf/NaN/subnormals), tiny
    // magnitudes whose renormalized output is subnormal (FTZ), and huge
    // same-sign values that overflow to infinity on read.
    util::Rng rng(0xEC3E55);
    std::vector<std::uint16_t> slots;
    std::vector<std::uint8_t> workers;
    std::vector<std::uint32_t> values;
    for (int p = 0; p < 400; ++p) {
      slots.push_back(static_cast<std::uint16_t>(rng.next_u64() % 16));
      workers.push_back(static_cast<std::uint8_t>(rng.next_u64() % 16));
      for (int l = 0; l < 4; ++l) {
        std::uint32_t u;
        switch (rng.next_u64() % 6) {
          case 0:
            u = core::fp32_bits(static_cast<float>(rng.normal(0, 1)));
            break;
          case 1:
            u = core::fp32_bits(static_cast<float>(
                std::exp2(rng.uniform_int(-80, 80)) * rng.normal(0, 1)));
            break;
          case 2:
            u = 0;
            break;
          case 3:
            u = static_cast<std::uint32_t>(rng.next_u64());
            break;
          case 4:  // near-cancelling tiny pair fodder (FTZ outputs)
            u = core::fp32_bits(std::ldexp((rng.next_u64() & 1) ? 1.0f : -1.0f,
                                           -126 - static_cast<int>(
                                                      rng.next_u64() % 20)));
            break;
          default:  // overflow-to-inf pressure
            u = core::fp32_bits(3e38f);
            break;
        }
        values.push_back(u);
      }
    }
    per_packet.add_batch(slots, workers, values);
    batched.add_batch(slots, workers, values);

    // Non-destructive reads: batch vs interpreter, state untouched.
    std::vector<std::uint32_t> vals(16 * 4);
    std::vector<std::uint32_t> bitmaps(16);
    std::vector<std::uint16_t> counts(16);
    batched.read_batch(0, 16, vals, bitmaps, counts);
    for (std::uint16_t s = 0; s < 16; ++s) {
      const FpisaResult want = per_packet.read(s);
      ASSERT_EQ(bitmaps[s], want.bitmap) << "slot " << s;
      ASSERT_EQ(counts[s], want.count) << "slot " << s;
      for (int l = 0; l < 4; ++l) {
        ASSERT_EQ(vals[4 * s + l], want.values[static_cast<std::size_t>(l)])
            << "variant=" << (variant == core::Variant::kFull ? "full" : "a")
            << " slot=" << s << " lane=" << l;
      }
    }
    EXPECT_EQ(batched.sim().packets_processed(),
              per_packet.sim().packets_processed());

    // Destructive reads: same outputs, and the register arrays (lane
    // exponents/mantissas + bitmap + count) must clear identically.
    std::vector<std::uint32_t> vals2(16 * 4);
    std::vector<std::uint32_t> bitmaps2(16);
    std::vector<std::uint16_t> counts2(16);
    batched.read_and_reset_batch(0, 16, vals2, bitmaps2, counts2);
    for (std::uint16_t s = 0; s < 16; ++s) {
      const FpisaResult want = per_packet.read_and_reset(s);
      ASSERT_EQ(bitmaps2[s], want.bitmap) << "slot " << s;
      ASSERT_EQ(counts2[s], want.count) << "slot " << s;
      for (int l = 0; l < 4; ++l) {
        ASSERT_EQ(vals2[4 * s + l], want.values[static_cast<std::size_t>(l)])
            << "slot=" << s << " lane=" << l;
      }
    }
    for (int r = 0; r < 2 * 4 + 2; ++r) {
      for (std::size_t s = 0; s < 16; ++s) {
        ASSERT_EQ(batched.sim().reg(r).read(s),
                  per_packet.sim().reg(r).read(s))
            << "post-reset reg=" << r << " slot=" << s;
      }
    }
    EXPECT_EQ(batched.sim().packets_processed(),
              per_packet.sim().packets_processed());
  }
}

TEST(FpisaResources, ShiftExtensionUnlocksParallelInstances) {
  FpisaProgramOptions opts;
  opts.variant = core::Variant::kApproximate;
  const SwitchConfig cfg = extended_switch();
  const int n = max_instances(fpisa_resource_descriptors(cfg, opts), cfg);
  EXPECT_GE(n, 4) << "the 2-operand shift should unlock multiple modules";
}

TEST(FpisaResources, ReportRenders) {
  FpisaProgramOptions opts;
  const SwitchConfig cfg = baseline_tofino();
  const std::string s =
      analyze(fpisa_resource_descriptors(cfg, opts), cfg).render();
  EXPECT_NE(s.find("VLIW"), std::string::npos);
  EXPECT_NE(s.find("Stages used: 9 of 12"), std::string::npos);
}

}  // namespace
}  // namespace fpisa::pisa
