// LPM count-leading-zeros table (Fig 5) and FPISA comparison semantics.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "core/clz_table.h"
#include "core/compare.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

TEST(ClzTable, TableShapeMatchesFig5) {
  // 32-bit register, FP32 canonical leading-1 position = bit 23.
  const auto table = build_clz_lpm_table(32, 23);
  ASSERT_EQ(table.size(), 33u);  // 32 positions + default
  // First (longest) entry: 31 leading zeros -> key 1, left shift 23.
  EXPECT_EQ(table.front().prefix_len, 32);
  EXPECT_EQ(table.front().prefix_bits, 1u);
  EXPECT_EQ(table.front().shift, -23);
  // The paper's example: 0.128.0.0/9 (bit 23 set, 8 leading zeros) ->
  // "do nothing"... actually Fig 5 shows /9 -> do nothing for the canonical
  // position; the entry for one position higher shifts right by 1.
  for (const auto& e : table) {
    if (e.leading_zeros == 8) {  // leading 1 at bit 23 == canonical
      EXPECT_EQ(e.shift, 0);
      EXPECT_EQ(e.prefix_len, 9);
      EXPECT_EQ(e.prefix_bits, std::uint64_t{1} << 23);  // 0.128.0.0
    }
    if (e.leading_zeros == 7) {  // leading 1 at bit 24 -> right shift 1
      EXPECT_EQ(e.shift, 1);
    }
    if (e.leading_zeros == 31) {  // 0.0.0.1/32 -> left shift 23
      EXPECT_EQ(e.shift, -23);
    }
  }
  // Default entry last.
  EXPECT_EQ(table.back().prefix_len, 0);
  EXPECT_EQ(table.back().shift, 0);
}

TEST(ClzTable, LookupMatchesCountlZeroExhaustivePositions) {
  const auto table = build_clz_lpm_table(32, 23);
  // Every leading-1 position, with random lower bits.
  util::Rng rng(30);
  for (int p = 0; p < 32; ++p) {
    for (int trial = 0; trial < 64; ++trial) {
      const std::uint32_t low =
          p == 0 ? 0 : static_cast<std::uint32_t>(rng.next_u64()) &
                           ((std::uint32_t{1} << p) - 1);
      const std::uint32_t key = (std::uint32_t{1} << p) | low;
      const int shift = lpm_lookup_shift(table, key, 32);
      EXPECT_EQ(shift, p - 23) << "p=" << p;
      // Applying the shift must put the leading 1 at bit 23.
      const std::uint64_t normalized =
          shift >= 0 ? (std::uint64_t{key} >> shift)
                     : (std::uint64_t{key} << -shift);
      EXPECT_EQ(63 - std::countl_zero(normalized), 23);
    }
  }
  EXPECT_EQ(lpm_lookup_shift(table, 0, 32), 0);  // default entry
}

TEST(ClzTable, WorksForOtherRegisterWidths) {
  for (const int width : {16, 24, 64}) {
    const int target = width / 2;
    const auto table = build_clz_lpm_table(width, target);
    EXPECT_EQ(table.size(), static_cast<std::size_t>(width) + 1);
    util::Rng rng(31);
    for (int trial = 0; trial < 2000; ++trial) {
      std::uint64_t key = rng.next_u64();
      if (width < 64) key &= (std::uint64_t{1} << width) - 1;
      if (key == 0) continue;
      const int p = 63 - std::countl_zero(key);
      EXPECT_EQ(lpm_lookup_shift(table, key, width), p - target);
    }
  }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

int sign3(float a, float b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

TEST(Compare, MatchesIeeeOnRandomPairs) {
  util::Rng rng(32);
  for (int i = 0; i < 300000; ++i) {
    const auto ab = static_cast<std::uint32_t>(rng.next_u64());
    const auto bb = static_cast<std::uint32_t>(rng.next_u64());
    const FpClass ca = classify(ab, kFp32);
    const FpClass cb = classify(bb, kFp32);
    if (ca == FpClass::kInf || ca == FpClass::kNaN) continue;
    if (cb == FpClass::kInf || cb == FpClass::kNaN) continue;
    EXPECT_EQ(fpisa_compare(ab, bb, kFp32),
              sign3(fp32_value(ab), fp32_value(bb)))
        << ab << " vs " << bb;
  }
}

TEST(Compare, AdversarialNeighborPairs) {
  // Adjacent representable values, sign boundaries, subnormals.
  const float vals[] = {0.0f,
                        -0.0f,
                        1e-45f,
                        -1e-45f,
                        std::nextafterf(1.0f, 2.0f),
                        1.0f,
                        std::nextafterf(1.0f, 0.0f),
                        -1.0f,
                        std::nextafterf(-1.0f, 0.0f),
                        65536.0f,
                        std::nextafterf(65536.0f, 0.0f),
                        1.17549435e-38f /* min normal */,
                        std::nextafterf(1.17549435e-38f, 0.0f) /* max subn */};
  for (const float a : vals) {
    for (const float b : vals) {
      EXPECT_EQ(fpisa_compare(fp32_bits(a), fp32_bits(b), kFp32), sign3(a, b))
          << a << " vs " << b;
    }
  }
}

TEST(Compare, SignedZerosCompareEqual) {
  EXPECT_EQ(fpisa_compare(fp32_bits(0.0f), fp32_bits(-0.0f), kFp32), 0);
  EXPECT_EQ(fpisa_compare(fp32_bits(-0.0f), fp32_bits(0.0f), kFp32), 0);
}

TEST(Compare, OtherFormats) {
  util::Rng rng(33);
  for (const FloatFormat* fmt : {&kFp16, &kBf16, &kFp64}) {
    const std::uint64_t mask = fmt->total_bits == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << fmt->total_bits) - 1;
    for (int i = 0; i < 50000; ++i) {
      const std::uint64_t ab = rng.next_u64() & mask;
      const std::uint64_t bb = rng.next_u64() & mask;
      const FpClass ca = classify(ab, *fmt);
      const FpClass cb = classify(bb, *fmt);
      if (ca == FpClass::kInf || ca == FpClass::kNaN) continue;
      if (cb == FpClass::kInf || cb == FpClass::kNaN) continue;
      const double a = decode(ab, *fmt);
      const double b = decode(bb, *fmt);
      const int expected = a < b ? -1 : (a > b ? 1 : 0);
      EXPECT_EQ(fpisa_compare(ab, bb, *fmt), expected) << fmt->name;
    }
  }
}

TEST(PruneRegister, TracksRunningMax) {
  PruneRegister reg(PruneRegister::Mode::kMax);
  EXPECT_TRUE(reg.offer(fp32_bits(1.5f)));   // first value always kept
  EXPECT_FALSE(reg.offer(fp32_bits(1.0f)));  // not a new max: prunable
  EXPECT_TRUE(reg.offer(fp32_bits(2.5f)));
  EXPECT_FALSE(reg.offer(fp32_bits(2.5f)));  // ties are not new extremes
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(reg.value_bits())), 2.5f);
}

TEST(PruneRegister, TracksRunningMinWithNegatives) {
  PruneRegister reg(PruneRegister::Mode::kMin);
  EXPECT_TRUE(reg.offer(fp32_bits(-1.0f)));
  EXPECT_TRUE(reg.offer(fp32_bits(-3.5f)));
  EXPECT_FALSE(reg.offer(fp32_bits(0.0f)));
  EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(reg.value_bits())), -3.5f);
}

TEST(PruneRegister, NeverLosesTheTrueExtreme) {
  // Property: after offering any stream, value_bits() holds the stream max.
  util::Rng rng(34);
  for (int trial = 0; trial < 500; ++trial) {
    PruneRegister reg(PruneRegister::Mode::kMax);
    float best = -INFINITY;
    for (int i = 0; i < 200; ++i) {
      const float v =
          static_cast<float>(rng.normal(0.0, 1.0) * std::exp2(rng.uniform_int(-8, 8)));
      reg.offer(fp32_bits(v));
      best = std::max(best, v);
    }
    EXPECT_EQ(fp32_value(static_cast<std::uint32_t>(reg.value_bits())), best);
  }
}

}  // namespace
}  // namespace fpisa::core
