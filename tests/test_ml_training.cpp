// The ML substrate: layer gradient checks, data-parallel training, and the
// paper's §5 claims on real gradients (convergence parity, error rarity).
#include <gtest/gtest.h>

#include <cmath>

#include "ml/data.h"
#include "ml/nn.h"
#include "ml/trainer.h"
#include "switchml/aggregator.h"
#include "util/rng.h"

namespace fpisa::ml {
namespace {

/// Smoke check: the full forward/backward path of a network yields finite
/// loss and gradients (per-layer numeric checks live in the layer tests).
void gradcheck(Network& net, int dim, int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  const int n = 3;
  std::vector<float> x(static_cast<std::size_t>(n) * dim);
  std::vector<int> y(n);
  for (auto& v : x) v = static_cast<float>(rng.normal(0, 1));
  for (auto& l : y) {
    l = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(classes)));
  }

  net.zero_grads();
  const auto logits = net.forward(x, n);
  std::vector<float> dlogits;
  const float loss = Network::loss_and_grad(logits, y, classes, dlogits);
  net.backward(dlogits, n);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  for (const float g : net.gradient_vector()) {
    ASSERT_TRUE(std::isfinite(g));
  }
}

TEST(Layers, DenseGradCheck) {
  util::Rng rng(10);
  Dense dense(5, 4, rng);
  const int n = 3;
  std::vector<float> x(15);
  for (auto& v : x) v = static_cast<float>(rng.normal(0, 1));
  std::vector<float> dy(12);
  for (auto& v : dy) v = static_cast<float>(rng.normal(0, 1));

  dense.zero_grads();
  (void)dense.forward(x, n);
  (void)dense.backward(dy, n);
  const auto grads = dense.grads();
  auto params = dense.params();

  // Objective: sum(y * dy). d/dtheta should equal the accumulated grads.
  auto objective = [&] {
    const auto y = dense.forward(x, n);
    double s = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += static_cast<double>(y[i]) * dy[i];
    }
    return s;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < params.size(); i += 3) {
    const float save = params[i];
    params[i] = save + static_cast<float>(eps);
    const double up = objective();
    params[i] = save - static_cast<float>(eps);
    const double dn = objective();
    params[i] = save;
    const double numeric = (up - dn) / (2 * eps);
    EXPECT_NEAR(numeric, grads[i], 2e-2) << "param " << i;
  }
}

TEST(Layers, ConvGradCheck) {
  util::Rng rng(11);
  Conv3x3 conv(6, 1, 2, rng);
  const int n = 2;
  std::vector<float> x(static_cast<std::size_t>(n) * 36);
  for (auto& v : x) v = static_cast<float>(rng.normal(0, 1));
  std::vector<float> dy(static_cast<std::size_t>(n) * 2 * 16);
  for (auto& v : dy) v = static_cast<float>(rng.normal(0, 1));

  conv.zero_grads();
  (void)conv.forward(x, n);
  (void)conv.backward(dy, n);
  const auto grads = conv.grads();
  auto params = conv.params();

  auto objective = [&] {
    const auto y = conv.forward(x, n);
    double s = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += static_cast<double>(y[i]) * dy[i];
    }
    return s;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < params.size(); i += 2) {
    const float save = params[i];
    params[i] = save + static_cast<float>(eps);
    const double up = objective();
    params[i] = save - static_cast<float>(eps);
    const double dn = objective();
    params[i] = save;
    EXPECT_NEAR((up - dn) / (2 * eps), grads[i], 3e-2) << "param " << i;
  }
}

TEST(Layers, ReluMasksGradient) {
  Relu relu(4);
  const std::vector<float> x{-1.0f, 2.0f, 0.0f, 3.0f};
  const auto y = relu.forward(x, 1);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  const std::vector<float> dy{1.0f, 1.0f, 1.0f, 1.0f};
  const auto dx = relu.backward(dy, 1);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

TEST(Network, SoftmaxLossDecreasesUnderSgd) {
  const Dataset ds = make_blobs(4, 8, 512, 128, 20);
  Network net = make_mlp(8, 16, 4, 21);
  switchml::ExactAggregator agg;
  DataParallelTrainer trainer(net, ds, agg, {});
  const float acc0 = trainer.evaluate();
  float loss_first = 0;
  float loss_last = 0;
  for (int e = 0; e < 6; ++e) {
    const float l = trainer.train_epoch();
    if (e == 0) loss_first = l;
    loss_last = l;
  }
  EXPECT_LT(loss_last, loss_first);
  EXPECT_GT(trainer.evaluate(), acc0);
  EXPECT_GT(trainer.evaluate(), 0.55f);
}

TEST(Network, GradientVectorRoundTrips) {
  Network net = make_mlp(8, 16, 4, 22);
  const std::size_t n = net.parameter_count();
  std::vector<float> flat(n);
  for (std::size_t i = 0; i < n; ++i) flat[i] = static_cast<float>(i % 7) - 3;
  net.set_gradients(flat);
  EXPECT_EQ(net.gradient_vector(), flat);
}

TEST(Trainer, FpisaAAggregationMatchesExactConvergence) {
  // Fig 9's core claim, in miniature: training with FPISA-A aggregation
  // reaches the same accuracy as exact aggregation (within noise).
  const Dataset ds = make_blobs(4, 16, 768, 256, 23);

  auto run = [&](switchml::GradientAggregator& agg) {
    Network net = make_mlp(16, 24, 4, 24);  // identical init via same seed
    DataParallelTrainer trainer(net, ds, agg, {});
    for (int e = 0; e < 8; ++e) trainer.train_epoch();
    return trainer.evaluate();
  };

  switchml::ExactAggregator exact;
  core::AccumulatorConfig cfg;
  cfg.variant = core::Variant::kApproximate;
  switchml::FpisaAggregator fpisa(cfg);
  const float acc_exact = run(exact);
  const float acc_fpisa = run(fpisa);
  EXPECT_NEAR(acc_fpisa, acc_exact, 0.04f);
  EXPECT_GT(acc_fpisa, 0.55f);
}

TEST(Trainer, GradientRatioDistributionIsNarrow) {
  // Fig 7: on real gradients, most element-wise max/min ratios across
  // 8 workers fall below 2^7.
  const Dataset ds = make_blobs(6, 16, 2048, 64, 25);
  Network net = make_mlp(16, 32, 6, 26);
  switchml::ExactAggregator agg;
  TrainerOptions opts;
  opts.batch_per_worker = 16;  // per-worker averaging, as in real training
  DataParallelTrainer trainer(net, ds, agg, opts);

  std::size_t below = 0;
  std::size_t total = 0;
  trainer.train_epoch([&](const std::vector<std::vector<float>>& grads) {
    for (const double r : elementwise_max_min_ratio(grads)) {
      ++total;
      if (r < 128.0) ++below;
    }
  });
  ASSERT_GT(total, 1000u);
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(total), 0.60);
}

TEST(Trainer, Fp16PathTrains) {
  const Dataset ds = make_blobs(4, 8, 512, 128, 27);
  Network net = make_mlp(8, 16, 4, 28);
  core::AccumulatorConfig cfg;
  cfg.format = core::kFp16;
  cfg.variant = core::Variant::kApproximate;
  switchml::FpisaAggregator agg(cfg);
  TrainerOptions opts;
  opts.grad_format = core::kFp16;
  DataParallelTrainer trainer(net, ds, agg, opts);
  for (int e = 0; e < 8; ++e) trainer.train_epoch();
  EXPECT_GT(trainer.evaluate(), 0.5f);
}

TEST(Trainer, CnnModelTrainsOnImages) {
  const Dataset ds = make_images(3, 8, 384, 96, 29);
  Network net = make_cnn(8, 3, 30);
  switchml::ExactAggregator agg;
  TrainerOptions opts;
  opts.lr = 0.05f;
  DataParallelTrainer trainer(net, ds, agg, opts);
  for (int e = 0; e < 6; ++e) trainer.train_epoch();
  EXPECT_GT(trainer.evaluate(), 0.6f);
}

TEST(Trainer, GradCheckHarnessIsFinite) {
  Network net = make_deep_mlp(6, 8, 3, 31);
  gradcheck(net, 6, 3, 32);
}

}  // namespace
}  // namespace fpisa::ml
