// End-to-end recovery coverage for the guarded protocol: corrupted,
// duplicated, reordered and stale-duplicate deliveries never change the
// aggregated bits; a wiped switch is recovered by wave replay; a dead
// worker either aborts with a typed error or degrades to the survivor sum
// — at the session, cluster and collective layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "cluster/aggregation_service.h"
#include "collective/communicator.h"
#include "core/packed.h"
#include "fault/fault.h"
#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa {
namespace {

/// One-binade integer magnitudes: every FPISA add is exact, so any
/// absorbed duplicate or lost contribution shows up as a bit difference.
std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

switchml::SessionOptions base_session_opts() {
  switchml::SessionOptions opts;
  opts.num_workers = 4;
  opts.slots = 16;  // chunks = 48 -> 3 waves: slot reuse happens
  opts.lanes = 2;
  return opts;
}

std::vector<float> clean_reduce(const std::vector<std::vector<float>>& workers,
                                switchml::SessionOptions opts) {
  opts.num_workers = static_cast<int>(workers.size());
  opts.loss_rate = 0.0;
  opts.fault = {};
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  return session.reduce(workers);
}

void expect_bits_equal(const std::vector<float>& got,
                       const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << "i=" << i;
  }
}

TEST(SessionFaults, CorruptionIsDetectedAndRetransmitted) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 210);
  const auto want = clean_reduce(workers, opts);

  opts.loss_rate = 0.1;
  opts.fault.enabled = true;
  opts.fault.seed = 21;
  opts.fault.corrupt_rate = 0.3;
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  expect_bits_equal(session.reduce(workers), want);
  EXPECT_GT(session.stats().faults.corrupt_rejected, 0u);
  EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
}

TEST(SessionFaults, DuplicatesAndReorderingAreAbsorbed) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 211);
  const auto want = clean_reduce(workers, opts);

  opts.fault.enabled = true;
  opts.fault.seed = 22;
  opts.fault.dup_rate = 0.4;
  opts.fault.reorder_rate = 0.6;
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  expect_bits_equal(session.reduce(workers), want);
  EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
}

// Satellite regression: a delayed duplicate that lands AFTER its slot was
// reset and reused (round-robin) must be rejected by the epoch stamp, not
// absorbed as a fresh contribution.
TEST(SessionFaults, StaleDuplicateAfterSlotReuseIsRejected) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 212);
  const auto want = clean_reduce(workers, opts);

  opts.fault.enabled = true;
  opts.fault.seed = 23;
  opts.fault.stale_dup_rate = 1.0;  // every delivery leaves a ghost behind
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  expect_bits_equal(session.reduce(workers), want);
  // 3 waves: every wave-0 and wave-1 ghost re-arrives one wave later,
  // after its slot's reset bumped the epoch.
  EXPECT_GT(session.stats().faults.stale_dups_rejected, 0u);
  EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
}

// The half of the regression that pins WHY the stamp exists: the plain
// (unguarded) ingress absorbs exactly this stale duplicate, because the
// slot reset cleared the dedup bit that would have caught it.
TEST(SessionFaults, PlainIngressWouldAbsorbTheStaleDuplicate) {
  pisa::FpisaProgramOptions p;
  p.lanes = 1;
  p.slots = 2;
  p.num_workers = 4;
  pisa::SwitchConfig cfg;
  cfg.ext.rsaw = true;  // full FPISA needs the RSAW extension
  cfg.ext.two_operand_shift = true;
  pisa::FpisaSwitch sw(cfg, p);

  const std::vector<std::uint16_t> slots{0};
  const std::vector<std::uint8_t> workers{1};
  const std::vector<std::uint32_t> values{core::fp32_bits(5.0f)};
  const std::uint32_t stamp = sw.slot_stamp(0);
  const std::vector<std::uint32_t> stamps{stamp};
  const std::vector<std::uint16_t> sums{
      pisa::fpisa_checksum(0, 1, stamp, values)};

  // Epoch e: worker 1 contributes, the slot completes and is recycled.
  sw.add_batch(slots, workers, values);
  std::vector<std::uint32_t> drained(1);
  sw.read_and_reset_batch(0, 1, drained);
  ASSERT_EQ(sw.occupied_slots(), 0);

  // Epoch e+1: the delayed duplicate of the epoch-e packet arrives.
  // Unguarded: the cleared bitmap treats it as fresh — state changes.
  sw.add_batch(slots, workers, values);
  EXPECT_EQ(sw.occupied_slots(), 1)
      << "baseline: the plain path DOES absorb the stale duplicate";
  sw.read_and_reset_batch(0, 1, drained);

  // Guarded: the stamp pins the packet to epoch e; the slot is now at a
  // later epoch, so the duplicate is dropped before touching registers.
  pisa::FpisaSwitch::GuardStats guard;
  sw.add_batch_guarded(slots, workers, stamps, sums, values, guard);
  EXPECT_EQ(guard.stale_rejected, 1u);
  EXPECT_EQ(sw.occupied_slots(), 0);
}

TEST(SessionFaults, SwitchWipeIsRecoveredByWaveReplay) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 213);
  const auto want = clean_reduce(workers, opts);

  opts.fault.enabled = true;
  opts.fault.seed = 24;
  opts.fault.wipe_switch = true;
  opts.fault.wipe_wave = 1;  // state loss after wave 1's adds landed
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  expect_bits_equal(session.reduce(workers), want);
  EXPECT_GE(session.stats().faults.waves_replayed, 1u);
  EXPECT_GE(session.stats().faults.epoch_bumps, 1u);
  EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
}

TEST(SessionFaults, DeadWorkerAbortsWithTypedError) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 214);
  opts.fault.enabled = true;
  opts.fault.dead_worker = 2;
  opts.fault.dead_worker_wave = 1;
  opts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kAbort;
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  try {
    (void)session.reduce(workers);
    FAIL() << "expected WorkerDeadError";
  } catch (const fault::WorkerDeadError& e) {
    EXPECT_EQ(e.worker(), 2);
    EXPECT_GE(e.wave(), 1u);
  }
  EXPECT_EQ(session.stats().faults.workers_declared_dead, 1u);
  EXPECT_EQ(session.stats().dead_workers, 1u << 2);
}

TEST(SessionFaults, DeadWorkerDegradesToSurvivorSum) {
  auto opts = base_session_opts();
  const auto workers = make_exact_workers(4, 96, 215);
  // Reference: the survivors aggregated in the same relative order.
  std::vector<std::vector<float>> survivors;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w != 1) survivors.push_back(workers[w]);
  }
  const auto want = clean_reduce(survivors, opts);

  opts.fault.enabled = true;
  opts.fault.seed = 25;
  opts.fault.dead_worker = 1;
  opts.fault.dead_worker_wave = 1;  // wave 0 lands, then the worker dies
  opts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kDegrade;
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);
  expect_bits_equal(session.reduce(workers), want);
  EXPECT_EQ(session.stats().faults.workers_declared_dead, 1u);
  EXPECT_GE(session.stats().faults.epoch_bumps, 1u);
  EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
}

TEST(SessionFaults, FaultInjectionRequiresBatchedDatapath) {
  switchml::SessionOptions opts;
  opts.batched = false;
  opts.fault.enabled = true;
  EXPECT_THROW(switchml::AggregationSession(pisa::SwitchConfig{}, opts),
               std::invalid_argument);
}

// --- cluster ---------------------------------------------------------------

cluster::ClusterOptions base_cluster_opts() {
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.lanes = 2;
  return opts;
}

std::vector<float> cluster_reduce(cluster::ClusterOptions opts,
                                  const std::vector<std::vector<float>>& w,
                                  switchml::SessionStats* stats = nullptr) {
  cluster::AggregationService svc(opts);
  cluster::JobRequest job;
  job.tenant = "t";
  job.workers = w;
  const cluster::JobReport report = svc.reduce(job);
  if (stats) *stats = report.stats;
  return report.result;
}

TEST(ClusterFaults, WireFaultMixIsBitIdenticalToCleanRun) {
  const auto workers = make_exact_workers(4, 96, 220);
  auto opts = base_cluster_opts();
  const auto want = cluster_reduce(opts, workers);

  opts.loss_rate = 0.1;
  opts.fault.enabled = true;
  opts.fault.seed = 31;
  opts.fault.corrupt_rate = 0.25;
  opts.fault.dup_rate = 0.25;
  opts.fault.stale_dup_rate = 0.5;
  opts.fault.reorder_rate = 0.5;
  switchml::SessionStats stats;
  const auto got = cluster_reduce(opts, workers, &stats);
  expect_bits_equal(got, want);
  EXPECT_GT(stats.faults.corrupt_rejected, 0u);
}

TEST(ClusterFaults, SwitchWipeIsRecoveredByWaveReplay) {
  const auto workers = make_exact_workers(3, 96, 221);
  auto opts = base_cluster_opts();
  const auto want = cluster_reduce(opts, workers);

  opts.fault.enabled = true;
  opts.fault.seed = 32;
  opts.fault.wipe_switch = true;
  opts.fault.wipe_wave = 0;
  switchml::SessionStats stats;
  const auto got = cluster_reduce(opts, workers, &stats);
  expect_bits_equal(got, want);
  EXPECT_GE(stats.faults.waves_replayed, 1u);
}

TEST(ClusterFaults, DeadWorkerAbortFailsTheJobWithBooksIntact) {
  const auto workers = make_exact_workers(4, 96, 222);
  auto opts = base_cluster_opts();
  opts.fault.enabled = true;
  opts.fault.dead_worker = 3;
  opts.fault.dead_worker_wave = 0;
  opts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kAbort;
  cluster::AggregationService svc(opts);
  cluster::JobRequest job;
  job.tenant = "t";
  job.workers = workers;
  EXPECT_THROW((void)svc.reduce(job), fault::WorkerDeadError);
  EXPECT_EQ(svc.jobs_failed(), 1u);
  EXPECT_EQ(svc.jobs_completed(), 0u);
  const cluster::TenantSlo slo = svc.tenant_slo("t");
  EXPECT_EQ(slo.jobs_failed, 1u);
}

TEST(ClusterFaults, DeadWorkerDegradeReplaysWholeJobOverSurvivors) {
  const auto workers = make_exact_workers(4, 96, 223);
  std::vector<std::vector<float>> survivors;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w != 0) survivors.push_back(workers[w]);
  }
  auto opts = base_cluster_opts();
  const auto want = cluster_reduce(opts, survivors);

  opts.fault.enabled = true;
  opts.fault.seed = 33;
  opts.fault.dead_worker = 0;
  opts.fault.dead_worker_wave = 0;
  opts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kDegrade;
  switchml::SessionStats stats;
  const auto got = cluster_reduce(opts, workers, &stats);
  expect_bits_equal(got, want);
  EXPECT_EQ(stats.faults.workers_declared_dead, 1u);
  EXPECT_EQ(stats.dead_workers, 1u << 0);
}

TEST(ClusterFaults, FaultTelemetryCountersReachTheRegistry) {
  const auto workers = make_exact_workers(3, 96, 224);
  auto opts = base_cluster_opts();
  opts.fault.enabled = true;
  opts.fault.seed = 34;
  opts.fault.wipe_switch = true;
  opts.fault.wipe_wave = 0;
  opts.fault.corrupt_rate = 0.3;

  const telemetry::Snapshot before = telemetry::snapshot();
  cluster_reduce(opts, workers);
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GT(after.counter_total("cluster_fault_waves_replayed_total"),
            before.counter_total("cluster_fault_waves_replayed_total"));
  EXPECT_GT(after.counter_total("fpisa_switch_corrupt_rejected_total"),
            before.counter_total("fpisa_switch_corrupt_rejected_total"));
}

// --- collective ------------------------------------------------------------

TEST(CollectiveFaults, EveryBackendHonorsTheUnifiedFaultSurface) {
  const auto workers = make_exact_workers(4, 64, 230);
  std::vector<std::vector<float>> survivors;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w != 2) survivors.push_back(workers[w]);
  }

  for (const auto backend :
       {collective::Backend::kHost, collective::Backend::kSwitch,
        collective::Backend::kCluster, collective::Backend::kTree}) {
    collective::CommunicatorOptions copts;
    copts.backend = backend;
    copts.session.slots = 16;
    copts.session.lanes = 2;
    copts.cluster = base_cluster_opts();
    copts.hierarchy.leaves = 2;
    copts.hierarchy.workers_per_leaf = 2;
    copts.fault.enabled = true;
    copts.fault.seed = 41;
    copts.fault.dead_worker = 2;
    copts.fault.dead_worker_wave = 0;
    copts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kDegrade;
    const auto comm = collective::make_communicator(copts);

    std::vector<float> out(workers.front().size());
    const collective::ReduceStats stats = comm->allreduce(
        collective::WorkerViews(workers), out, collective::ReduceOp::kMean);
    EXPECT_EQ(stats.network.dead_workers, 1u << 2)
        << collective::backend_name(backend);
    // kMean must divide by the SURVIVOR count (3), not the full W (4).
    // Survivor sums are exact one-binade integers, so the check is exact.
    double max_rel_err = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      double want = 0.0;
      for (const auto& s : survivors) want += s[i];
      want /= static_cast<double>(survivors.size());
      const double rel =
          std::abs(out[i] - want) / std::max(1.0, std::abs(want));
      max_rel_err = std::max(max_rel_err, rel);
    }
    EXPECT_LT(max_rel_err, 1e-6) << collective::backend_name(backend);
  }
}

TEST(CollectiveFaults, AbortPolicySurfacesTypedErrorThroughAllreduce) {
  const auto workers = make_exact_workers(3, 32, 231);
  collective::CommunicatorOptions copts;
  copts.backend = collective::Backend::kSwitch;
  copts.session.slots = 8;
  copts.fault.enabled = true;
  copts.fault.dead_worker = 0;
  copts.fault.dead_worker_policy = fault::DeadWorkerPolicy::kAbort;
  const auto comm = collective::make_communicator(copts);
  std::vector<float> out(workers.front().size());
  EXPECT_THROW(
      comm->allreduce(collective::WorkerViews(workers), out),
      fault::WorkerDeadError);
}

}  // namespace
}  // namespace fpisa
