// Exhaustive and wide property sweeps over the core representation.
// FP16's 65536 bit patterns allow truly exhaustive checks of the
// extract/assemble boundary, single-value accumulation, and comparison.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accumulator.h"
#include "core/compare.h"
#include "core/decompose.h"
#include "core/packed.h"
#include "util/rng.h"

namespace fpisa::core {
namespace {

bool is_special(std::uint64_t bits, const FloatFormat& fmt) {
  const FpClass c = classify(bits, fmt);
  return c == FpClass::kInf || c == FpClass::kNaN;
}

TEST(ExhaustiveFp16, DecodeEncodeRoundTripsEveryPattern) {
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    if (classify(b, kFp16) == FpClass::kNaN) continue;
    const double v = decode(b, kFp16);
    EXPECT_EQ(encode(v, kFp16), b) << b;
  }
}

TEST(ExhaustiveFp16, ExtractAssembleRoundTripsEveryPattern) {
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    if (is_special(b, kFp16)) continue;
    const ExtractResult r = extract(b, kFp16);
    const AssembleResult a = assemble(r.value.exp, r.value.man, kFp16);
    if (b == kFp16.sign_mask()) {
      EXPECT_EQ(a.bits, 0u);  // -0 canonicalizes to +0
    } else {
      EXPECT_EQ(a.bits, b) << b;
    }
  }
}

TEST(ExhaustiveFp16, SingleAddIsIdentityEveryPattern) {
  for (const auto variant : {Variant::kFull, Variant::kApproximate}) {
    AccumulatorConfig cfg;
    cfg.format = kFp16;
    cfg.variant = variant;
    for (std::uint32_t b = 0; b < 0x10000; ++b) {
      if (is_special(b, kFp16)) continue;
      FpisaAccumulator acc(cfg);
      acc.add_bits(b);
      if (classify(b, kFp16) == FpClass::kZero) {
        EXPECT_EQ(acc.read_bits(), 0u);
      } else {
        EXPECT_EQ(acc.read_bits(), b) << b;
      }
    }
  }
}

TEST(ExhaustiveFp16, ExtractValueInvariantEveryPattern) {
  // The core invariant: value == man * 2^(exp - bias - man_bits), exactly.
  for (std::uint32_t b = 0; b < 0x10000; ++b) {
    if (is_special(b, kFp16)) continue;
    const ExtractResult r = extract(b, kFp16);
    const double reconstructed = std::ldexp(
        static_cast<double>(r.value.man), r.value.exp - kFp16.bias() - 10);
    EXPECT_EQ(reconstructed, decode(b, kFp16)) << b;
  }
}

TEST(ExhaustiveFp16, CompareAgainstDecodeOnStratifiedPairs) {
  // All 2^32 pairs is too many; sweep every pattern against a stratified
  // set of opponents (zeros, subnormals, min/max normals, random).
  util::Rng rng(80);
  std::vector<std::uint32_t> opponents{
      0x0000, 0x8000, 0x0001, 0x8001, 0x0400, 0x8400, 0x7BFF, 0xFBFF,
      0x3C00, 0xBC00};
  for (int i = 0; i < 22; ++i) {
    opponents.push_back(static_cast<std::uint32_t>(rng.next_u64() & 0xFFFF));
  }
  for (std::uint32_t a = 0; a < 0x10000; ++a) {
    if (is_special(a, kFp16)) continue;
    const double av = decode(a, kFp16);
    for (const std::uint32_t b : opponents) {
      if (is_special(b, kFp16)) continue;
      const double bv = decode(b, kFp16);
      const int want = av < bv ? -1 : (av > bv ? 1 : 0);
      ASSERT_EQ(fpisa_compare(a, b, kFp16), want) << a << " vs " << b;
    }
  }
}

TEST(ExhaustiveFp16, PairwiseAddMatchesReferenceSemantics) {
  // a (+) b through the accumulator vs the defined FPISA semantics
  // computed independently with double arithmetic + explicit flooring.
  util::Rng rng(81);
  AccumulatorConfig cfg;  // full variant
  int checked = 0;
  while (checked < 150000) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFF);
    const auto b = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFF);
    if (is_special(a, kFp16) || is_special(b, kFp16)) continue;
    ++checked;
    cfg.format = kFp16;
    FpisaAccumulator acc(cfg);
    acc.add_bits(a);
    acc.add_bits(b);

    // Independent reference: align at the larger stored exponent with
    // floor (round-to-negative-infinity) semantics, then read truncates
    // the magnitude.
    const Decomposed da = extract(a, kFp16).value;
    const Decomposed db = extract(b, kFp16).value;
    std::int64_t man;
    std::int32_t exp;
    if (da.man == 0 && db.man == 0) {
      man = 0;
      exp = std::max(da.exp, db.exp);
    } else if (da.man == 0) {
      man = db.man;  // zero inputs are no-ops: b lands in a fresh register
      exp = db.exp;
    } else {
      exp = std::max(da.exp, db.exp);
      auto floor_shift = [](std::int64_t m, int d) {
        if (d <= 0) return m;
        if (d >= 63) return m < 0 ? std::int64_t{-1} : std::int64_t{0};
        return m >> d;
      };
      man = floor_shift(da.man, exp - da.exp) + floor_shift(db.man, exp - db.exp);
    }
    const AssembleResult want = assemble(exp, man, kFp16);
    ASSERT_EQ(acc.read_bits(), want.bits) << a << " + " << b;
  }
}

// ---------------------------------------------------------------------------
// §3.3 overflow claim, parameterized by worker count: "the number of
// operations per register is equivalent to the number of nodes in the
// distributed system" — as long as workers <= 2^headroom, no overflow.
// ---------------------------------------------------------------------------

class WorkerSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkerSweep, NoOverflowWhileWorkersWithinHeadroom) {
  const int workers = GetParam();
  util::Rng rng(82);
  for (int trial = 0; trial < 200; ++trial) {
    FpisaAccumulator acc;  // FP32: headroom 128 adds
    const int e = static_cast<int>(rng.uniform_int(-20, 20));
    for (int w = 0; w < workers; ++w) {
      // Worst case: maximum mantissa at a shared exponent.
      acc.add(std::nextafterf(2.0f, 0.0f) * std::ldexp(1.0f, e));
    }
    EXPECT_EQ(acc.counters().saturations, 0u) << workers;
    EXPECT_TRUE(std::isfinite(acc.read()));
  }
}

INSTANTIATE_TEST_SUITE_P(UpTo128, WorkerSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

class GuardSweep : public ::testing::TestWithParam<int> {};

TEST_P(GuardSweep, AccumulationStaysWithinBoundsAcrossGuardBits) {
  const int guard = GetParam();
  AccumulatorConfig cfg;
  cfg.guard_bits = guard;
  cfg.read_rounding = guard ? Rounding::kNearestEven : Rounding::kTowardZero;
  util::Rng rng(83);
  for (int trial = 0; trial < 500; ++trial) {
    FpisaAccumulator acc(cfg);
    double ref = 0;
    const int n = 1 << (cfg.headroom() - 1);  // stay inside headroom
    for (int i = 0; i < std::min(n, 32); ++i) {
      const float v = static_cast<float>(rng.uniform(0.5, 1.0));
      acc.add(v);
      ref += static_cast<double>(v);
    }
    EXPECT_EQ(acc.counters().saturations, 0u);
    EXPECT_NEAR(static_cast<double>(acc.read()), ref, ref * 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(GuardBits, GuardSweep, ::testing::Values(0, 1, 2, 4));

}  // namespace
}  // namespace fpisa::core
