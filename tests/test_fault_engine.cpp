// Unit coverage for the deterministic fault engine and the guarded switch
// ingress it feeds: seeded schedules replay exactly, corruption flips
// exactly one bit (and the checksum catches it), reordering never crosses
// a same-slot boundary, ghosts come back stale, and a wiped switch rejects
// everything stamped before the wipe.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "pisa/fpisa_program.h"

namespace fpisa::fault {
namespace {

std::vector<std::uint32_t> payload(std::uint32_t a, std::uint32_t b) {
  return {a, b};
}

TEST(FaultEngine, SameSeedReplaysTheExactSchedule) {
  FaultOptions opts;
  opts.enabled = true;
  opts.corrupt_rate = 0.3;
  opts.dup_rate = 0.3;
  opts.stale_dup_rate = 0.2;
  opts.reorder_rate = 0.5;

  const auto run = [&opts] {
    FaultEngine engine(opts, /*stream_seed=*/42, /*lanes=*/2);
    engine.begin_wave(0);
    for (std::uint16_t slot = 0; slot < 4; ++slot) {
      for (std::uint8_t w = 0; w < 3; ++w) {
        const auto values = payload(0x40000000u + slot, 0x3f800000u + w);
        (void)engine.deliver(slot, w, /*stamp=*/7, values);
      }
    }
    engine.shuffle_pending();
    std::vector<std::uint64_t> fingerprint;
    for (std::size_t i = 0; i < engine.pending(); ++i) {
      fingerprint.push_back((static_cast<std::uint64_t>(engine.slots()[i])
                             << 40) ^
                            (static_cast<std::uint64_t>(engine.workers()[i])
                             << 32) ^
                            engine.values()[2 * i] ^
                            (static_cast<std::uint64_t>(engine.checksums()[i])
                             << 16));
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultEngine, CorruptionFlipsExactlyOneBitAndFailsTheChecksum) {
  FaultOptions opts;
  opts.enabled = true;
  opts.corrupt_rate = 1.0;  // every delivery corrupts
  FaultEngine engine(opts, 7, /*lanes=*/2);
  engine.begin_wave(0);

  const auto values = payload(0x41000000u, 0x42000000u);
  EXPECT_FALSE(engine.deliver(3, 1, /*stamp=*/5, values));
  ASSERT_EQ(engine.pending(), 1u);

  // Exactly one bit differs from the clean payload...
  const std::uint32_t d0 = engine.values()[0] ^ values[0];
  const std::uint32_t d1 = engine.values()[1] ^ values[1];
  EXPECT_EQ(std::popcount(d0) + std::popcount(d1), 1);
  // ...and the carried checksum was computed over the CLEAN payload, so it
  // cannot match the corrupted one.
  EXPECT_NE(engine.checksums()[0],
            pisa::fpisa_checksum(3, 1, 5,
                                 {engine.values().data(), 2}));
  EXPECT_EQ(engine.checksums()[0], pisa::fpisa_checksum(3, 1, 5, values));
}

TEST(FaultEngine, ChecksumDetectsEverySingleBitFlip) {
  const auto values = payload(0xdeadbeefu, 0x00c0ffeeu);
  const std::uint16_t good = pisa::fpisa_checksum(9, 2, 0x00010003u, values);
  for (int lane = 0; lane < 2; ++lane) {
    for (int bit = 0; bit < 32; ++bit) {
      auto flipped = values;
      flipped[static_cast<std::size_t>(lane)] ^= 1u << bit;
      EXPECT_NE(good, pisa::fpisa_checksum(9, 2, 0x00010003u, flipped))
          << "lane " << lane << " bit " << bit;
    }
  }
}

TEST(FaultEngine, ReorderNeverSwapsSameSlotEntries) {
  FaultOptions opts;
  opts.enabled = true;
  opts.reorder_rate = 1.0;  // swap at every eligible boundary
  FaultEngine engine(opts, 11, /*lanes=*/1);
  engine.begin_wave(0);
  // Two slots, three workers each, interleaved: per-slot arrival order is
  // worker 0, 1, 2 and must survive any amount of shuffling.
  for (std::uint8_t w = 0; w < 3; ++w) {
    for (std::uint16_t slot = 0; slot < 2; ++slot) {
      const std::vector<std::uint32_t> v{0x40000000u + w};
      ASSERT_TRUE(engine.deliver(slot, w, 1, v));
    }
  }
  engine.shuffle_pending();
  std::vector<std::uint8_t> order0, order1;
  for (std::size_t i = 0; i < engine.pending(); ++i) {
    (engine.slots()[i] == 0 ? order0 : order1).push_back(engine.workers()[i]);
  }
  EXPECT_EQ(order0, (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(order1, (std::vector<std::uint8_t>{0, 1, 2}));
}

TEST(FaultEngine, GhostsComeBackInALaterWaveWithTheOldStamp) {
  FaultOptions opts;
  opts.enabled = true;
  opts.stale_dup_rate = 1.0;  // capture a ghost of every delivery
  FaultEngine engine(opts, 13, /*lanes=*/1);

  engine.begin_wave(0);
  const std::vector<std::uint32_t> v{0x41800000u};
  ASSERT_TRUE(engine.deliver(5, 2, /*stamp=*/3, v));
  EXPECT_EQ(engine.pending(), 1u);
  engine.clear_pending();

  // The ghost is "in flight" until a LATER wave begins.
  engine.begin_wave(1);
  ASSERT_GE(engine.pending(), 1u);
  EXPECT_EQ(engine.slots()[0], 5);
  EXPECT_EQ(engine.workers()[0], 2);
  EXPECT_EQ(engine.stamps()[0], 3u);  // stamped at capture time: stale now
}

TEST(FaultEngine, WorkerSilenceAndWipeSchedules) {
  FaultOptions opts;
  opts.enabled = true;
  opts.dead_worker = 1;
  opts.dead_worker_wave = 2;
  opts.wipe_switch = true;
  opts.wipe_wave = 1;
  FaultEngine engine(opts, 17, 1);

  EXPECT_FALSE(engine.worker_silent(1, 0));
  EXPECT_FALSE(engine.worker_silent(1, 1));
  EXPECT_TRUE(engine.worker_silent(1, 2));
  EXPECT_TRUE(engine.worker_silent(1, 7));
  EXPECT_FALSE(engine.worker_silent(0, 7));

  EXPECT_FALSE(engine.should_wipe(0));
  EXPECT_TRUE(engine.should_wipe(1));
  EXPECT_FALSE(engine.should_wipe(1)) << "wipe is one-shot";
  EXPECT_FALSE(engine.should_wipe(2));
}

TEST(GuardedIngress, WipeBumpsGenerationAndRejectsPreWipeStamps) {
  pisa::SwitchConfig cfg;
  cfg.ext.rsaw = true;  // full FPISA needs the RSAW extension
  cfg.ext.two_operand_shift = true;
  pisa::FpisaProgramOptions p;
  p.lanes = 1;
  p.slots = 4;
  p.num_workers = 8;
  pisa::FpisaSwitch sw(cfg, p);

  const std::uint32_t stamp = sw.slot_stamp(2);
  const std::vector<std::uint16_t> slots{2};
  const std::vector<std::uint8_t> workers{0};
  const std::vector<std::uint32_t> values{core::fp32_bits(3.0f)};
  const std::vector<std::uint32_t> stamps{stamp};
  const std::vector<std::uint16_t> sums{
      pisa::fpisa_checksum(2, 0, stamp, values)};

  pisa::FpisaSwitch::GuardStats guard;
  sw.add_batch_guarded(slots, workers, stamps, sums, values, guard);
  EXPECT_EQ(guard.corrupt_rejected, 0u);
  EXPECT_EQ(guard.stale_rejected, 0u);
  EXPECT_EQ(sw.occupied_slots(), 1);

  sw.wipe_state();
  EXPECT_EQ(sw.occupied_slots(), 0);
  EXPECT_NE(sw.slot_stamp(2), stamp) << "generation must distinguish eras";

  // A post-reboot arrival of the pre-wipe packet must be rejected, not
  // silently folded into the fresh sums.
  guard = {};
  sw.add_batch_guarded(slots, workers, stamps, sums, values, guard);
  EXPECT_EQ(guard.stale_rejected, 1u);
  EXPECT_EQ(sw.occupied_slots(), 0);
}

}  // namespace
}  // namespace fpisa::fault
