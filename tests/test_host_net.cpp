// Host-side measured rates (Fig 6), the goodput model (Fig 10), training
// speedup cards (Fig 11), and the network timing substrate.
#include <gtest/gtest.h>

#include "host/endianness.h"
#include "host/goodput_model.h"
#include "net/event_sim.h"
#include "net/topology.h"

namespace fpisa {
namespace {

using host::Approach;
using host::MeasuredRates;

TEST(Endianness, SwapsAreCorrectAndInvolutive) {
  std::vector<std::uint32_t> v{0x11223344u, 0xAABBCCDDu};
  host::bswap32_scalar(v);
  EXPECT_EQ(v[0], 0x44332211u);
  host::bswap32_scalar(v);
  EXPECT_EQ(v[0], 0x11223344u);
  std::vector<std::uint16_t> h{0x1122u};
  host::bswap16_vector(h);
  EXPECT_EQ(h[0], 0x2211u);
  std::vector<std::uint64_t> d{0x1122334455667788ull};
  host::bswap64_scalar(d);
  EXPECT_EQ(d[0], 0x8877665544332211ull);
}

TEST(Endianness, QuantizeRoundTrip) {
  std::vector<float> in{1.5f, -2.25f, 0.0f, 100.0f};
  std::vector<std::uint32_t> q(4);
  std::vector<float> out(4);
  host::quantize_block(in, q, 1024.0f);
  host::dequantize_block(q, out, 1.0f / 1024.0f);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(out[i], in[i], 1e-3f);
  host::quantize_block_vector(in, q, 1024.0f);
  host::dequantize_block_vector(q, out, 1.0f / 1024.0f);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(out[i], in[i], 1e-3f);
}

TEST(Endianness, DesiredLineRate) {
  EXPECT_DOUBLE_EQ(host::desired_rate_eps(100.0, 16), 6.25e9);
  EXPECT_DOUBLE_EQ(host::desired_rate_eps(100.0, 32), 3.125e9);
  EXPECT_DOUBLE_EQ(host::desired_rate_eps(100.0, 64), 1.5625e9);
}

TEST(Endianness, MeasurementProducesPositiveRates) {
  const MeasuredRates r = host::measure_host_rates(5.0);
  EXPECT_GT(r.bswap16_scalar_eps, 0);
  EXPECT_GT(r.bswap32_scalar_eps, 0);
  EXPECT_GT(r.quantize_eps, 0);
  EXPECT_GT(r.memcpy_bytes_per_s, 0);
  // Sanity-check the vectorized measurement, not a perf ordering: on
  // shared/unpinned CI hosts the autovectorized loop can legitimately
  // time slower than scalar, so only catch a broken (garbage) reading.
  EXPECT_GT(r.bswap32_vector_eps, 0);
  EXPECT_GE(r.bswap32_vector_eps, r.bswap32_scalar_eps * 0.2);
}

/// Synthetic, machine-independent rates for deterministic model tests
/// (roughly an E5-2630v4-class core).
MeasuredRates synthetic_rates() {
  MeasuredRates r;
  r.bswap16_scalar_eps = 0.6e9;
  r.bswap32_scalar_eps = 0.6e9;
  r.bswap64_scalar_eps = 0.5e9;
  r.quantize_eps = 0.4e9;
  r.dequantize_eps = 0.4e9;
  r.quantize_vector_eps = 1.4e9;
  r.dequantize_vector_eps = 1.4e9;
  r.memcpy_bytes_per_s = 11e9;
  return r;
}

TEST(GoodputModel, Fig10CoreShapes) {
  const MeasuredRates r = synthetic_rates();
  const double msg = 16 * 1024;

  // (1) FPISA-A/CPU(Opt) saturates with a single core.
  EXPECT_NEAR(host::goodput_gbps(Approach::kFpisaCpuOpt, 1, msg, r), 92.0, 0.5);

  // (2) Cores to reach max goodput: FPISA-A/CPU needs fewer than
  // SwitchML/CPU (the 25-75% fewer cores claim).
  auto cores_to_saturate = [&](Approach a) {
    for (int c = 1; c <= 10; ++c) {
      if (host::goodput_gbps(a, c, msg, r) >= 91.0) return c;
    }
    return 11;
  };
  const int swml = cores_to_saturate(Approach::kSwitchMlCpu);
  const int fpisa = cores_to_saturate(Approach::kFpisaCpu);
  EXPECT_LT(fpisa, swml);
  EXPECT_LE(fpisa, 4);

  // (3) Goodput is monotone in cores and capped at 92.
  double prev = 0;
  for (int c = 1; c <= 10; ++c) {
    const double g = host::goodput_gbps(Approach::kSwitchMlCpu, c, msg, r);
    EXPECT_GE(g, prev);
    EXPECT_LE(g, 92.0);
    prev = g;
  }
}

TEST(GoodputModel, Fig10GpuShapes) {
  const MeasuredRates r = synthetic_rates();
  // SwitchML/GPU is poor below 256 KB messages (launch-serialized), decent
  // at 1 MB; FPISA-A/GPU is ~copy-engine-bound and flat across sizes.
  const double small = host::goodput_gbps(Approach::kSwitchMlGpu, 4, 16 * 1024, r);
  const double big = host::goodput_gbps(Approach::kSwitchMlGpu, 4, 1024 * 1024, r);
  EXPECT_LT(small, 15.0);
  EXPECT_GT(big, 40.0);

  const double f_small = host::goodput_gbps(Approach::kFpisaGpu, 1, 4 * 1024, r);
  const double f_big = host::goodput_gbps(Approach::kFpisaGpu, 1, 2 * 1024 * 1024, r);
  EXPECT_NEAR(f_small, f_big, 1.0);      // flat across message sizes
  EXPECT_GT(f_small, 60.0);              // near the 80 Gbps copy bound
  EXPECT_LE(f_small, 80.0);
  EXPECT_GT(f_small, big);               // beats SwitchML/GPU even at 1 MB
}

TEST(GoodputModel, SwitchMlLargeMessagePenalty) {
  const MeasuredRates r = synthetic_rates();
  const double mid = host::goodput_gbps(Approach::kSwitchMlCpu, 4, 256 * 1024, r);
  const double huge =
      host::goodput_gbps(Approach::kSwitchMlCpu, 4, 2 * 1024 * 1024, r);
  EXPECT_LT(huge, mid);  // pipelining loss past the window
}

TEST(TrainingSpeedup, Fig11Shape) {
  const MeasuredRates r = synthetic_rates();
  const auto rows = host::training_speedups(r);
  ASSERT_EQ(rows.size(), 7u);

  auto find = [&](const char* name) {
    for (const auto& row : rows) {
      if (std::string_view(row.model) == name) return row;
    }
    ADD_FAILURE() << name;
    return rows.front();
  };
  // Comm-bound models gain a lot; compute-bound ones barely move.
  EXPECT_GT(find("DeepLight").speedup_2core, 0.3);
  EXPECT_GT(find("LSTM").speedup_2core, 0.2);
  EXPECT_GT(find("BERT").speedup_2core, 0.1);
  EXPECT_LT(find("GoogleNet").speedup_2core, 0.10);
  EXPECT_LT(find("MobileNetV2").speedup_2core, 0.10);
  EXPECT_LT(find("ResNet-50").speedup_2core, 0.15);
  // More cores shrink the gap (2-core speedup > 8-core speedup).
  EXPECT_GT(find("DeepLight").speedup_2core, find("DeepLight").speedup_8core);
  EXPECT_GT(find("VGG19").speedup_2core, find("VGG19").speedup_8core);
  // Ordering: DeepLight > LSTM > BERT > VGG19 (decreasing comm-boundness).
  EXPECT_GT(find("DeepLight").speedup_2core, find("LSTM").speedup_2core);
  EXPECT_GT(find("LSTM").speedup_2core, find("BERT").speedup_2core);
  EXPECT_GT(find("BERT").speedup_2core, find("VGG19").speedup_2core);
}

// ---------------------------------------------------------------------------
// Network substrate
// ---------------------------------------------------------------------------

TEST(EventSim, OrdersEventsByTimeThenFifo) {
  net::EventSim sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });  // FIFO tie-break
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Link, SerializesBackToBack) {
  net::Link link(10.0, 5.0);  // 10 Gbps, 5 us
  const double t1 = link.send(0.0, 1250);  // 1 us of bits
  EXPECT_NEAR(t1, 1e-6 + 5e-6, 1e-12);
  const double t2 = link.send(0.0, 1250);  // queued behind the first
  EXPECT_NEAR(t2, 2e-6 + 5e-6, 1e-12);
  EXPECT_NEAR(link.busy_seconds(), 2e-6, 1e-12);
}

TEST(StarTopology, GatherAccountsForDownlinkContention) {
  net::StarTopology star(3, 10.0, 1.0);  // hosts 0,1 -> master 2
  const std::vector<std::pair<int, std::uint64_t>> flows{{0, 12500},
                                                         {1, 12500}};
  const double done = star.gather(0.0, flows, 2);
  // Each flow is 10 us of bits; uplinks run in parallel but the master
  // downlink serializes both: >= 20 us (+ propagation hops).
  EXPECT_GT(done, 20e-6);
  EXPECT_LT(done, 36e-6);
}

}  // namespace
}  // namespace fpisa
