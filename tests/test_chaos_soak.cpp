// Chaos soak: hundreds of seeded fault mixes through the session and the
// cluster fabric. Every recoverable run must end bit-identical to its
// fault-free reference; every unrecoverable run (kAbort worker death) must
// raise the typed error with the failure books intact; no run may leak
// switch state (occupied slots / dedup bits) behind it.
//
// Each scenario is expanded from its seed by fault::draw_chaos_mix — the
// SAME function example_chaos_demo uses — so any failure printed here
// replays exactly with `example_chaos_demo --seed N`. The seed count
// defaults to 200 and can be lowered for smoke runs (or raised for nightly
// soaks) via the FPISA_CHAOS_SEEDS environment variable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/aggregation_service.h"
#include "core/packed.h"
#include "fault/fault.h"
#include "switchml/session.h"
#include "util/rng.h"

namespace fpisa {
namespace {

constexpr std::size_t kVectorLen = 96;  // 48 chunks @ 2 lanes -> 3 waves

int soak_seeds() {
  const char* env = std::getenv("FPISA_CHAOS_SEEDS");
  if (env == nullptr) return 200;
  const int n = std::atoi(env);
  return n > 0 ? n : 200;
}

std::string repro(std::uint64_t seed) {
  return "chaos seed " + std::to_string(seed) +
         " -- reproduce with: example_chaos_demo --seed " +
         std::to_string(seed);
}

// One-binade integers: every FPISA add is exact, so "recovered correctly"
// is checkable as bit-identity, not a tolerance.
std::vector<std::vector<float>> make_exact_workers(int w, std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(w),
                                      std::vector<float>(n));
  for (auto& vec : out) {
    for (auto& v : vec) v = static_cast<float>(256 + rng.next_below(256));
  }
  return out;
}

std::vector<std::vector<float>> survivors_of(
    const std::vector<std::vector<float>>& workers, int dead) {
  std::vector<std::vector<float>> out;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (static_cast<int>(w) != dead) out.push_back(workers[w]);
  }
  return out;
}

void expect_bits_equal(const std::vector<float>& got,
                       const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(core::fp32_bits(got[i]), core::fp32_bits(want[i])) << "i=" << i;
  }
}

bool expects_abort(const fault::ChaosMix& mix) {
  return mix.fault.dead_worker >= 0 &&
         mix.fault.dead_worker_policy == fault::DeadWorkerPolicy::kAbort;
}

void run_session_seed(std::uint64_t seed, const fault::ChaosMix& mix,
                      fault::FaultCounters& totals) {
  const auto workers =
      make_exact_workers(mix.num_workers, kVectorLen, seed * 7 + 1);

  switchml::SessionOptions opts;
  opts.num_workers = mix.num_workers;
  opts.slots = 16;
  opts.lanes = 2;
  switchml::AggregationSession clean(pisa::SwitchConfig{}, opts);
  const auto want_full = clean.reduce(workers);

  opts.loss_rate = mix.loss_rate;
  opts.loss_seed = seed * 11 + 3;
  opts.fault = mix.fault;
  switchml::AggregationSession session(pisa::SwitchConfig{}, opts);

  if (expects_abort(mix)) {
    try {
      (void)session.reduce(workers);
      FAIL() << "kAbort worker death must surface WorkerDeadError";
    } catch (const fault::WorkerDeadError& e) {
      EXPECT_EQ(e.worker(), mix.fault.dead_worker);
    }
    // Books intact after the typed failure.
    EXPECT_EQ(session.stats().dead_workers,
              1u << static_cast<unsigned>(mix.fault.dead_worker));
    EXPECT_GE(session.stats().faults.workers_declared_dead, 1u);
  } else {
    const auto got = session.reduce(workers);
    if (mix.fault.dead_worker >= 0) {
      // Degrade: the survivors' clean sum, bit for bit.
      switchml::SessionOptions ref = opts;
      ref.num_workers = mix.num_workers - 1;
      ref.loss_rate = 0.0;
      ref.fault = {};
      switchml::AggregationSession survivor_ref(pisa::SwitchConfig{}, ref);
      expect_bits_equal(
          got, survivor_ref.reduce(survivors_of(workers,
                                                mix.fault.dead_worker)));
    } else {
      expect_bits_equal(got, want_full);
    }
    // No leaked dedup bits or partial sums behind a recovered run.
    EXPECT_EQ(session.fpisa_switch().occupied_slots(), 0);
  }
  totals += session.stats().faults;
}

void run_cluster_seed(std::uint64_t seed, const fault::ChaosMix& mix,
                      fault::FaultCounters& totals) {
  const auto workers =
      make_exact_workers(mix.num_workers, kVectorLen, seed * 7 + 1);

  cluster::ClusterOptions opts;
  opts.num_shards = mix.num_shards;
  opts.slots_per_shard = 16;
  opts.slots_per_job = 8;
  opts.lanes = 2;

  const auto clean_run = [&opts](const std::vector<std::vector<float>>& w) {
    cluster::ClusterOptions ref = opts;
    ref.loss_rate = 0.0;
    ref.fault = {};
    cluster::AggregationService svc(ref);
    cluster::JobRequest job;
    job.tenant = "soak";
    job.workers = w;
    return svc.reduce(job).result;
  };
  const auto want_full = clean_run(workers);

  opts.loss_rate = mix.loss_rate;
  opts.fault = mix.fault;
  cluster::AggregationService svc(opts);
  cluster::JobRequest job;
  job.tenant = "soak";
  job.workers = workers;

  if (expects_abort(mix)) {
    try {
      (void)svc.reduce(job);
      FAIL() << "kAbort worker death must surface WorkerDeadError";
    } catch (const fault::WorkerDeadError& e) {
      EXPECT_EQ(e.worker(), mix.fault.dead_worker);
    }
    // SLO and job books survive the typed failure.
    EXPECT_EQ(svc.jobs_failed(), 1u);
    EXPECT_EQ(svc.jobs_completed(), 0u);
    EXPECT_EQ(svc.tenant_slo("soak").jobs_failed, 1u);
  } else {
    const cluster::JobReport report = svc.reduce(job);
    if (mix.fault.dead_worker >= 0) {
      expect_bits_equal(report.result,
                        clean_run(survivors_of(workers,
                                               mix.fault.dead_worker)));
      EXPECT_EQ(report.stats.dead_workers,
                1u << static_cast<unsigned>(mix.fault.dead_worker));
    } else {
      expect_bits_equal(report.result, want_full);
    }
    EXPECT_EQ(svc.jobs_failed(), 0u);
    EXPECT_EQ(svc.jobs_completed(), 1u);
    totals += report.stats.faults;
  }
}

TEST(ChaosSoak, SeededFaultMixesConvergeOrFailTyped) {
  const int seeds = soak_seeds();
  fault::FaultCounters totals{};
  for (int s = 0; s < seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const fault::ChaosMix mix = fault::draw_chaos_mix(seed);
    SCOPED_TRACE(repro(seed));
    if (mix.cluster) {
      run_cluster_seed(seed, mix, totals);
    } else {
      run_session_seed(seed, mix, totals);
    }
  }
  // The soak must actually exercise the machinery, not vacuously pass.
  EXPECT_GT(totals.corrupt_rejected + totals.stale_dups_rejected +
                totals.epoch_bumps + totals.waves_replayed,
            0u)
      << "no fault ever fired across " << seeds << " seeds";
}

// Replaying one seed twice is bit-for-bit stable — the property the
// "reproduce with example_chaos_demo --seed N" workflow depends on.
TEST(ChaosSoak, AnySeedReplaysIdentically) {
  for (const std::uint64_t seed : {2u, 3u}) {
    const fault::ChaosMix mix = fault::draw_chaos_mix(seed);
    if (expects_abort(mix)) continue;  // typed-throw path has no result
    SCOPED_TRACE(repro(seed));
    fault::FaultCounters t0{}, t1{};
    if (mix.cluster) {
      run_cluster_seed(seed, mix, t0);
      run_cluster_seed(seed, mix, t1);
    } else {
      run_session_seed(seed, mix, t0);
      run_session_seed(seed, mix, t1);
    }
    EXPECT_EQ(t0.corrupt_rejected, t1.corrupt_rejected);
    EXPECT_EQ(t0.stale_dups_rejected, t1.stale_dups_rejected);
    EXPECT_EQ(t0.waves_replayed, t1.waves_replayed);
  }
}

}  // namespace
}  // namespace fpisa
