#!/usr/bin/env python3
"""Project lint pass: concurrency hygiene + naming invariants. Stdlib only.

Usage:
    lint_static.py [--repo DIR]   lint the repo; exit 0 clean, 1 on findings
    lint_static.py --self-test    prove the linter catches its seeded bad
                                  corpus and passes the good one; exit 0
                                  iff the linter itself behaves
    lint_static.py --demo-bad     lint only the seeded bad corpus as if it
                                  were a repo; exits nonzero (the CI leg
                                  runs this inverted to pin that a dirty
                                  tree actually fails)

Rules:

  R1 raw-sync   No naked std::mutex / condition_variable / lock_guard /
                unique_lock / scoped_lock outside the sync layer
                (src/util/ordered_mutex.h). Service code must use
                util::OrderedMutex + util::LockGuard/UniqueLock so every
                acquisition carries a lock rank and a thread-safety
                capability. std::condition_variable_any and std::once_flag
                stay legal: both work through the annotated wrappers.

  R2 datapath   No rand() / std::random_device / system_clock / getenv in
                src/. Datapath randomness must route through util::Rng
                (seeded, replayable) and timing through steady_clock;
                tests and scripts are exempt (chaos soak reads its knobs
                from the environment by design).

  R3 series     Every metric name passed to .counter()/.gauge()/
                .histogram() in src/ must be a string literal AND appear
                in src/telemetry/series_catalog.h; every catalog entry
                must be registered somewhere. Scrape spans lines: a
                registration with the literal on the continuation line
                still counts.

  R4 tests      Every tests/test_*.cpp must be registered in
                CMakeLists.txt, either by name or by a tests/*.cpp glob.

Comments and (for R1/R2) string literals are stripped before matching, so
prose about std::mutex does not trip the lint.
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# C++ text utilities

# One alternation so comment markers inside strings and quotes inside
# comments cannot confuse each other.
_TOKEN_RE = re.compile(
    r'//[^\n]*'
    r'|/\*.*?\*/'
    r'|"(?:[^"\\\n]|\\.)*"'
    r"|'(?:[^'\\\n]|\\.)*'",
    re.S)


def _blank_preserving_newlines(text):
    return "".join(c if c == "\n" else " " for c in text)


def strip_comments(text, strip_strings=False):
    """Blank out comments (and optionally string/char literals), keeping
    every byte offset and line number identical to the original."""
    def repl(m):
        tok = m.group(0)
        if tok.startswith("//") or tok.startswith("/*"):
            return _blank_preserving_newlines(tok)
        if strip_strings:
            return tok[0] + " " * (len(tok) - 2) + tok[-1]
        return tok
    return _TOKEN_RE.sub(repl, text)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def cpp_files(root, subdirs):
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cpp", ".h", ".hpp", ".cc")):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


# ---------------------------------------------------------------------------
# Rules

RAW_SYNC_RE = re.compile(
    r'std\s*::\s*('
    r'mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|'
    r'shared_mutex|shared_timed_mutex|'
    r'condition_variable|'          # _any is fine: no \b match on the '_'
    r'lock_guard|unique_lock|scoped_lock|shared_lock'
    r')\b')

# (pattern, label) — matched against comment- and string-stripped text.
DATAPATH_BANS = [
    (re.compile(r'(?<![\w:.])rand\s*\('), "rand()"),
    (re.compile(r'(?<![\w:.])srand\s*\('), "srand()"),
    (re.compile(r'\brandom_device\b'), "std::random_device"),
    (re.compile(r'\bsystem_clock\b'), "system_clock"),
    (re.compile(r'(?<![\w:.])getenv\s*\('), "getenv()"),
]

SERIES_CALL_RE = re.compile(
    r'\.\s*(counter|gauge|histogram)\s*\(\s*("?)', re.S)
SERIES_LITERAL_RE = re.compile(
    r'\.\s*(counter|gauge|histogram)\s*\(\s*"([A-Za-z0-9_:]+)"', re.S)
CATALOG_NAME_RE = re.compile(r'"([a-z0-9_]+)"')


def lint_raw_sync(root, findings, sync_layer):
    for path in cpp_files(root, ("src", "tests", "bench", "examples")):
        rel = os.path.relpath(path, root)
        if rel in sync_layer:
            continue
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments(raw, strip_strings=True)
        for m in RAW_SYNC_RE.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [raw-sync] naked "
                f"std::{m.group(1)}; use util::OrderedMutex / "
                f"util::LockGuard / util::UniqueLock (src/util/"
                f"ordered_mutex.h) so the lock carries a rank")


def lint_datapath(root, findings):
    for path in cpp_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments(raw, strip_strings=True)
        for pat, label in DATAPATH_BANS:
            for m in pat.finditer(text):
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [datapath] {label} "
                    f"in src/; datapaths must stay seeded/replayable "
                    f"(util::Rng, steady_clock) and env-independent")


def load_catalog(root):
    path = os.path.join(root, "src", "telemetry", "series_catalog.h")
    if not os.path.exists(path):
        return path, None
    with open(path, encoding="utf-8") as f:
        text = strip_comments(f.read())
    return path, set(CATALOG_NAME_RE.findall(text))


def lint_series(root, findings):
    cat_path, catalog = load_catalog(root)
    if catalog is None:
        findings.append(
            f"{os.path.relpath(cat_path, root)}: [series] catalog header "
            f"missing; every metric series name must be indexed there")
        return
    registered = {}
    for path in cpp_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        if rel.replace(os.sep, "/") == "src/telemetry/series_catalog.h":
            continue
        with open(path, encoding="utf-8") as f:
            text = strip_comments(f.read())
        literal_starts = {m.start() for m in SERIES_LITERAL_RE.finditer(text)}
        for m in SERIES_CALL_RE.finditer(text):
            if m.start() not in literal_starts:
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [series] "
                    f".{m.group(1)}() call whose name is not a string "
                    f"literal; dynamic names dodge the catalog cross-check")
        for m in SERIES_LITERAL_RE.finditer(text):
            name = m.group(2)
            registered.setdefault(name, f"{rel}:{line_of(text, m.start())}")
            if name not in catalog:
                findings.append(
                    f"{rel}:{line_of(text, m.start())}: [series] series "
                    f"'{name}' not in src/telemetry/series_catalog.h; "
                    f"add it there or fix the drifted name")
    for name in sorted(catalog - set(registered)):
        findings.append(
            f"src/telemetry/series_catalog.h: [series] catalog entry "
            f"'{name}' is registered nowhere in src/; dead entries hide "
            f"real drift")


def lint_tests_registered(root, findings):
    cml = os.path.join(root, "CMakeLists.txt")
    if not os.path.exists(cml):
        findings.append("CMakeLists.txt: [tests] missing")
        return
    with open(cml, encoding="utf-8") as f:
        cmake = f.read()
    # file(GLOB ... tests/*.cpp) registers everything in one shot.
    has_glob = re.search(
        r'file\s*\(\s*GLOB[^)]*tests/\*\.cpp', cmake, re.S) is not None
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return
    for name in sorted(os.listdir(tests_dir)):
        if not (name.startswith("test_") and name.endswith(".cpp")):
            continue
        if has_glob or name in cmake or name[:-len(".cpp")] in cmake:
            continue
        findings.append(
            f"tests/{name}: [tests] not registered in CMakeLists.txt "
            f"(no glob and no mention); it will never run in CI")


SYNC_LAYER = (
    "src/util/ordered_mutex.h",
    # The sync layer's own test: layout static_asserts against std::mutex.
    "tests/test_ordered_mutex.cpp",
)


def lint_repo(root, sync_layer=SYNC_LAYER):
    findings = []
    lint_raw_sync(root, findings, set(sync_layer))
    lint_datapath(root, findings)
    lint_series(root, findings)
    lint_tests_registered(root, findings)
    return findings


# ---------------------------------------------------------------------------
# Self-test corpus: tiny repos seeded in a temp dir.

GOOD_FILES = {
    "CMakeLists.txt": 'file(GLOB FPISA_TEST_SOURCES CONFIGURE_DEPENDS '
                      'tests/*.cpp)\n',
    "src/telemetry/series_catalog.h":
        'inline constexpr std::string_view kOk = "demo_ops_total";\n',
    "src/good.cpp": (
        '// Comment mentioning std::mutex and rand() is fine.\n'
        'const char* s = "std::mutex in a string is fine too";\n'
        'util::OrderedMutex mu{util::lock_rank::kStats};\n'
        'std::condition_variable_any cv;  // _any is legal\n'
        'auto& c = reg.counter(\n'
        '    "demo_ops_total", "ops", {});\n'),
    "tests/test_good.cpp": "// registered via the glob\n",
}

BAD_FILES = {
    "CMakeLists.txt": 'add_executable(test_registered '
                      'tests/test_registered.cpp)\n',
    "src/telemetry/series_catalog.h":
        'inline constexpr std::string_view kGhost = "ghost_series_total";\n',
    "src/bad_sync.cpp": 'static std::mutex naked_mu;\n'
                        'std::lock_guard<std::mutex> lk(naked_mu);\n',
    "src/bad_datapath.cpp": (
        'int jitter = rand() % 7;\n'
        'std::random_device rd;\n'
        'auto t = std::chrono::system_clock::now();\n'
        'const char* knob = getenv("FPISA_KNOB");\n'),
    "src/bad_series.cpp": (
        'auto& c = reg.counter("undeclared_series_total", "x", {});\n'
        'auto& g = reg.gauge(dynamic_name, "x", {});\n'),
    "tests/test_registered.cpp": "// fine\n",
    "tests/test_orphan.cpp": "// never added to CMakeLists\n",
}

# Every rule tag the bad corpus must trip, with a substring that pins the
# specific finding (not just "something failed").
BAD_EXPECT = [
    "bad_sync.cpp:1: [raw-sync] naked std::mutex",
    "bad_sync.cpp:2: [raw-sync] naked std::lock_guard",
    "bad_datapath.cpp:1: [datapath] rand()",
    "bad_datapath.cpp:2: [datapath] std::random_device",
    "bad_datapath.cpp:3: [datapath] system_clock",
    "bad_datapath.cpp:4: [datapath] getenv()",
    "bad_series.cpp:1: [series] series 'undeclared_series_total'",
    "bad_series.cpp:2: [series] .gauge() call whose name is not a string",
    "catalog entry 'ghost_series_total' is registered nowhere",
    "tests/test_orphan.cpp: [tests] not registered",
]


def seed_corpus(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    import tempfile
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "good")
        seed_corpus(good, GOOD_FILES)
        findings = lint_repo(good, sync_layer=())
        if findings:
            ok = False
            print("self-test: good corpus should lint clean but got:")
            for f in findings:
                print(f"  - {f}")
        bad = os.path.join(tmp, "bad")
        seed_corpus(bad, BAD_FILES)
        findings = lint_repo(bad, sync_layer=())
        for expect in BAD_EXPECT:
            if not any(expect in f for f in findings):
                ok = False
                print(f"self-test: bad corpus missed expected finding: "
                      f"{expect!r}")
        print(f"self-test: good corpus 0 findings, bad corpus "
              f"{len(findings)} findings, {len(BAD_EXPECT)} expectations "
              f"{'met' if ok else 'NOT met'}")
    return 0 if ok else 1


def demo_bad():
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        seed_corpus(tmp, BAD_FILES)
        return report(lint_repo(tmp, sync_layer=()))


def report(findings):
    if findings:
        print(f"FAIL: {len(findings)} finding(s)")
        for f in findings:
            print(f"  - {f}")
        return 1
    print("OK: static lint clean (raw-sync, datapath, series, tests)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--self-test", action="store_true")
    mode.add_argument("--demo-bad", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if args.demo_bad:
        return demo_bad()
    return report(lint_repo(args.repo))


if __name__ == "__main__":
    sys.exit(main())
