#!/usr/bin/env python3
"""Check BENCH_qos_isolation.json's tenant-isolation contract.

Usage:
    check_qos_isolation.py <BENCH_qos_isolation.json>

Stdlib only (runs in CI right after the Release bench). Three layers:

  presence — the keys the isolation bench must emit: victim p50/p99 for
  all four phases (uncontended, qos_idle, unthrottled, qos), the two p99
  ratios, the aggressor bookkeeping, and host_cpus.

  telemetry — the embedded registry snapshot must carry the qos_* metric
  series (admission queue depth, per-class admissions/picks, the reject
  taxonomy) plus the exported per-shard mailbox series, proving the
  admission plane is wired into the metrics surface, not just the bench.

  isolation — victim_p99_ratio_qos <= 2.0 (the victim's p99 under
  aggressor load, QoS on, stays within 2x of its uncontended baseline)
  while victim_p99_ratio_unthrottled >= 2.0 (without QoS the same load
  visibly degrades the victim — otherwise the contention the first
  assertion survives never existed). Both ratios are wall-clock, but they
  are ratios of latencies measured seconds apart on the same host, so
  they hold on single-core runners too (the bench contends on the job
  queue, not on cores).
"""

import json
import sys

REQUIRED_KEYS = [
    "victim_p50_ms_uncontended",
    "victim_p99_ms_uncontended",
    "victim_p50_ms_qos_idle",
    "victim_p99_ms_qos_idle",
    "victim_p50_ms_unthrottled",
    "victim_p99_ms_unthrottled",
    "victim_p50_ms_qos",
    "victim_p99_ms_qos",
    "victim_p99_ratio_unthrottled",
    "victim_p99_ratio_qos",
    "qos_isolation_speedup",
    "qos_idle_overhead_pct",
    "aggressor_submitted_unthrottled",
    "aggressor_completed_unthrottled",
    "aggressor_rejected_unthrottled",
    "aggressor_submitted_qos",
    "aggressor_completed_qos",
    "aggressor_rejected_qos",
    "host_cpus",
]

REQUIRED_SERIES = [
    "qos_admission_queue_depth",
    "qos_jobs_admitted_total",
    "qos_sched_picks_total",
    "qos_jobs_rejected_total",
    "cluster_mailbox_enqueued",
]

MAX_VICTIM_P99_RATIO_QOS = 2.0
MIN_VICTIM_P99_RATIO_UNTHROTTLED = 2.0


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"FAIL: {path}: no 'metrics' object")
        return 1

    errors = []
    for key in REQUIRED_KEYS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)):
            errors.append(f"missing or non-numeric metric: {key}")

    telemetry = metrics.get("telemetry")
    if not isinstance(telemetry, dict):
        errors.append("missing embedded 'telemetry' snapshot")
    else:
        names = {s.get("name")
                 for kind in ("counters", "gauges", "histograms")
                 for s in telemetry.get(kind, [])}
        for series in REQUIRED_SERIES:
            if series not in names:
                errors.append(f"telemetry snapshot missing series: {series}")

    if errors:
        for e in errors:
            print(f"FAIL: {path}: {e}")
        return 1

    ratio_unthrottled = metrics["victim_p99_ratio_unthrottled"]
    ratio_qos = metrics["victim_p99_ratio_qos"]
    print(f"host_cpus={metrics['host_cpus']:.0f} "
          f"victim_p99_ratio_unthrottled={ratio_unthrottled:.2f} "
          f"victim_p99_ratio_qos={ratio_qos:.2f} "
          f"isolation_speedup={metrics['qos_isolation_speedup']:.2f}x "
          f"qos_idle_overhead={metrics['qos_idle_overhead_pct']:+.1f}%")

    if ratio_unthrottled < MIN_VICTIM_P99_RATIO_UNTHROTTLED:
        print(f"FAIL: unthrottled victim p99 ratio {ratio_unthrottled:.2f} "
              f"< {MIN_VICTIM_P99_RATIO_UNTHROTTLED} — the aggressor load "
              f"never actually contended; the isolation result is vacuous")
        return 1
    if ratio_qos > MAX_VICTIM_P99_RATIO_QOS:
        print(f"FAIL: QoS victim p99 ratio {ratio_qos:.2f} > "
              f"{MAX_VICTIM_P99_RATIO_QOS} — the scheduler is not "
              f"isolating the victim from the aggressor backlog")
        return 1
    print(f"OK: victim p99 {ratio_unthrottled:.2f}x unthrottled -> "
          f"{ratio_qos:.2f}x with QoS (targets: >= "
          f"{MIN_VICTIM_P99_RATIO_UNTHROTTLED} and <= "
          f"{MAX_VICTIM_P99_RATIO_QOS})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
