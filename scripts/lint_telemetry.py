#!/usr/bin/env python3
"""Lint the telemetry artifacts the failover demo emits.

Usage:
    lint_telemetry.py <trace.json> <scrape1.prom> <scrape2.prom> [catalog.h]

Checks, stdlib only (this runs in CI right after the demo):

  trace.json — parses as Chrome trace_event JSON; every event is a
  complete ("X") event with sane ts/dur; the span tree covers the whole
  cluster job (submit -> partition -> shard waves -> merge) plus the
  injected failover episode.

  *.prom — every line is a well-formed Prometheus text-format sample or
  comment; one # TYPE per metric name, declared before its first sample;
  no duplicate (name, labels) series; histogram `le` buckets are
  cumulative, end in +Inf, and agree with _count.

  across the two scrapes — counters never move backwards (scrape 2 was
  taken after more jobs ran, so *_total series must be monotone).

  catalog.h (optional) — src/telemetry/series_catalog.h; every scraped
  metric name (with _bucket/_sum/_count stripped) must be indexed there,
  so a renamed or ad-hoc series breaks CI instead of forking silently.
"""

import json
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\d*\.\d+(?:[eE][-+]?\d+)?|Inf|NaN))$'
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_SPANS = {
    "allreduce", "job", "submit", "partition", "acquire_slots",
    "pass", "shard", "add_wave", "collect_wave", "failover", "merge",
}

errors = []


def err(msg):
    errors.append(msg)


def lint_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        err(f"{path}: no traceEvents array")
        return
    names = set()
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                err(f"{path}: event {i} missing '{key}'")
        if ev.get("ph") != "X":
            err(f"{path}: event {i} ph={ev.get('ph')!r}, want complete 'X'")
        if ev.get("dur", 0) < 0:
            err(f"{path}: event {i} ({ev.get('name')}) has negative dur")
        if ev.get("ts", 0) < 0:
            err(f"{path}: event {i} ({ev.get('name')}) has negative ts")
        names.add(ev.get("name"))
    missing = REQUIRED_SPANS - names
    if missing:
        err(f"{path}: span tree missing {sorted(missing)}")
    print(f"  {path}: {len(events)} events, "
          f"{len(REQUIRED_SPANS)} required span names present")


def parse_prom(path):
    """Return {series_key: value} and lint the file structurally."""
    series = {}
    typed = {}          # name -> kind
    first_sample = {}   # name -> line no of first sample
    buckets = {}        # (name, labels-without-le) -> [(le, value)]
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = re.match(
                    r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) '
                    r'(counter|gauge|histogram)$', line)
                if m:
                    name, kind = m.group(1), m.group(2)
                    if name in typed:
                        err(f"{path}:{lineno}: duplicate # TYPE for {name}")
                    if name in first_sample:
                        err(f"{path}:{lineno}: # TYPE for {name} "
                            f"after its first sample "
                            f"(line {first_sample[name]})")
                    typed[name] = kind
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                err(f"{path}:{lineno}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            labels_raw = m.group("labels") or ""
            value = float(m.group("value").replace("Inf", "inf"))
            labels = dict(LABEL_RE.findall(labels_raw))
            stripped = LABEL_RE.sub("", labels_raw).replace(",", "").strip()
            if stripped:
                err(f"{path}:{lineno}: malformed labels: {labels_raw!r}")
            base = re.sub(r'_(bucket|sum|count)$', '', name)
            if base not in typed and name not in typed:
                err(f"{path}:{lineno}: sample {name} has no # TYPE")
            first_sample.setdefault(name, lineno)
            key = (name, tuple(sorted(labels.items())))
            if key in series:
                err(f"{path}:{lineno}: duplicate series {key}")
            series[key] = value
            if name.endswith("_bucket") and "le" in labels:
                bkey = (base, tuple(sorted(
                    (k, v) for k, v in labels.items() if k != "le")))
                le = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault(bkey, []).append((le, value))
    for (base, lbls), entries in buckets.items():
        entries.sort(key=lambda e: e[0])
        if entries[-1][0] != float("inf"):
            err(f"{path}: histogram {base}{dict(lbls)} lacks a +Inf bucket")
        values = [v for _, v in entries]
        if values != sorted(values):
            err(f"{path}: histogram {base}{dict(lbls)} buckets not cumulative")
        count_key = (base + "_count", lbls)
        if count_key in series and series[count_key] != entries[-1][1]:
            err(f"{path}: {base}_count{dict(lbls)} != +Inf bucket")
    print(f"  {path}: {len(series)} series, {len(typed)} metric names")
    return series


def lint_catalog(catalog_path, series_maps):
    """Every scraped metric name must be indexed in the catalog header."""
    with open(catalog_path, encoding="utf-8") as f:
        text = f.read()
    # Drop // and /* */ comments so prose in the header can't satisfy
    # (or fake) an entry.
    text = re.sub(r'//[^\n]*|/\*.*?\*/', '', text, flags=re.S)
    catalog = set(re.findall(r'"([a-z0-9_]+)"', text))
    if not catalog:
        err(f"{catalog_path}: no series names found in catalog header")
        return
    checked = set()
    for series in series_maps:
        for name, _labels in series:
            base = re.sub(r'_(bucket|sum|count)$', '', name)
            if base in checked:
                continue
            checked.add(base)
            if base not in catalog:
                err(f"scraped series '{base}' is not in {catalog_path}; "
                    f"add it to the catalog or fix the drifted name")
    print(f"  catalog: {len(checked)} scraped metric names checked "
          f"against {len(catalog)} catalog entries")


def main():
    if len(sys.argv) not in (4, 5):
        print(__doc__)
        return 2
    trace_path, prom1, prom2 = sys.argv[1:4]
    lint_trace(trace_path)
    s1 = parse_prom(prom1)
    s2 = parse_prom(prom2)
    if len(sys.argv) == 5:
        lint_catalog(sys.argv[4], (s1, s2))
    checked = 0
    for key, v1 in s1.items():
        name = key[0]
        if not (name.endswith("_total") or name.endswith("_count")
                or name.endswith("_bucket")):
            continue
        if key in s2:
            checked += 1
            if s2[key] < v1:
                err(f"counter {key} moved backwards across scrapes: "
                    f"{v1} -> {s2[key]}")
    print(f"  monotonicity: {checked} counter series compared across scrapes")
    if errors:
        print(f"\nFAIL: {len(errors)} problem(s)")
        for e in errors:
            print(f"  - {e}")
        return 1
    print("OK: telemetry artifacts are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
