#!/usr/bin/env python3
"""Check BENCH_cluster_throughput.json's multi-core scaling contract.

Usage:
    check_bench_scaling.py <BENCH_cluster_throughput.json>

Stdlib only (runs in CI right after the Release bench). Two layers:

  presence — the execution-engine keys the pipelined engine must emit:
  wall_values_per_s_shards_{1,2,4,8}, wall_scaling_efficiency_shards_{2,4,8},
  dispatch_overhead_us_per_pass, the pipeline A/B pair, and host_cpus.

  scaling — wall_values_per_s_shards_8 / wall_values_per_s_shards_1 > 2.0.
  Wall-clock scaling needs cores to scale ON, so this assertion only arms
  when the bench ran on >= 4 hardware threads (host_cpus is recorded by the
  bench itself); on smaller hosts the engine auto-degrades to inline
  dispatch and the check reports a skip instead of a false failure.
"""

import json
import sys

REQUIRED_KEYS = [
    "wall_values_per_s_shards_1",
    "wall_values_per_s_shards_2",
    "wall_values_per_s_shards_4",
    "wall_values_per_s_shards_8",
    "wall_scaling_efficiency_shards_2",
    "wall_scaling_efficiency_shards_4",
    "wall_scaling_efficiency_shards_8",
    "dispatch_overhead_us_per_pass",
    "dispatch_pass_us_inline",
    "dispatch_pass_us_workers",
    "wall_values_per_s_shards_4_pipeline_on",
    "wall_values_per_s_shards_4_pipeline_off",
    "pipeline_speedup_shards_4",
    "host_cpus",
]

MIN_CORES_FOR_SCALING = 4
MIN_WALL_RATIO_8_OVER_1 = 2.0


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"FAIL: {path}: no 'metrics' object")
        return 1

    errors = []
    for key in REQUIRED_KEYS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)):
            errors.append(f"missing or non-numeric metric: {key}")
    if errors:
        for e in errors:
            print(f"FAIL: {path}: {e}")
        return 1

    host_cpus = metrics["host_cpus"]
    ratio = (metrics["wall_values_per_s_shards_8"]
             / metrics["wall_values_per_s_shards_1"])
    print(f"host_cpus={host_cpus:.0f} "
          f"wall_8/wall_1={ratio:.2f} "
          f"eff_2={metrics['wall_scaling_efficiency_shards_2']:.2f} "
          f"eff_4={metrics['wall_scaling_efficiency_shards_4']:.2f} "
          f"eff_8={metrics['wall_scaling_efficiency_shards_8']:.2f} "
          f"dispatch_overhead={metrics['dispatch_overhead_us_per_pass']:.1f}us "
          f"pipeline_speedup={metrics['pipeline_speedup_shards_4']:.2f}x")

    if host_cpus < MIN_CORES_FOR_SCALING:
        print(f"SKIP scaling assertion: bench host has {host_cpus:.0f} "
              f"hardware threads (< {MIN_CORES_FOR_SCALING}); wall-clock "
              f"scaling needs cores to scale on. Key presence verified.")
        return 0
    if ratio <= MIN_WALL_RATIO_8_OVER_1:
        print(f"FAIL: wall_values_per_s_shards_8 / shards_1 = {ratio:.2f}, "
              f"need > {MIN_WALL_RATIO_8_OVER_1} on a "
              f"{host_cpus:.0f}-thread host")
        return 1
    print(f"OK: wall scaling {ratio:.2f}x (> {MIN_WALL_RATIO_8_OVER_1})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
