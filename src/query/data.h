// Synthetic datasets for the query experiments (§6.2): the "Big Data
// Benchmark" uservisits/rankings tables and a TPC-H subset (lineitem,
// orders, customer, partsupp). Row counts are scaled down from the paper's
// 30M/18M to keep bench runtimes laptop-friendly; each bench prints its
// scale factor. The FP32 columns (adRevenue, l_extendedprice) are the ones
// the paper converts from int32 to float.
#pragma once

#include <cstdint>
#include <vector>

namespace fpisa::query {

struct UserVisits {
  std::vector<std::uint32_t> source_ip;
  std::vector<std::uint32_t> dest_url;   // hashed
  std::vector<std::uint16_t> visit_date; // days since epoch / 16
  std::vector<float> ad_revenue;         // FP32 (the paper's conversion)
  std::size_t rows() const { return ad_revenue.size(); }
};

struct Rankings {
  std::vector<std::uint32_t> page_url;  // hashed
  std::vector<std::int32_t> page_rank;
  std::vector<std::int32_t> avg_duration;
  std::size_t rows() const { return page_url.size(); }
};

/// `url_domain` > 0 bounds dest_url so it can join rankings.page_url
/// (which make_rankings assigns as 0..rows-1).
UserVisits make_uservisits(std::size_t rows, std::uint64_t seed,
                           std::uint32_t key_groups = 1024,
                           std::uint32_t url_domain = 0);
Rankings make_rankings(std::size_t rows, std::uint64_t seed);

// --- TPC-H subset -----------------------------------------------------------

struct LineItem {
  std::vector<std::uint32_t> orderkey;
  std::vector<std::uint32_t> partkey;
  std::vector<std::uint32_t> suppkey;
  std::vector<float> quantity;
  std::vector<float> extendedprice;  // FP32 per the paper's conversion
  std::vector<float> discount;
  std::vector<std::uint16_t> shipdate;
  std::size_t rows() const { return orderkey.size(); }
};

struct Orders {
  std::vector<std::uint32_t> orderkey;
  std::vector<std::uint32_t> custkey;
  std::vector<std::uint16_t> orderdate;
  std::vector<std::uint8_t> shippriority;
  std::size_t rows() const { return orderkey.size(); }
};

struct Customer {
  std::vector<std::uint32_t> custkey;
  std::vector<std::uint8_t> mktsegment;  // 0..4
  std::size_t rows() const { return custkey.size(); }
};

struct PartSupp {
  std::vector<std::uint32_t> partkey;
  std::vector<std::uint32_t> suppkey;
  std::vector<float> availqty;
  std::size_t rows() const { return partkey.size(); }
};

struct TpchData {
  LineItem lineitem;
  Orders orders;
  Customer customer;
  PartSupp partsupp;
};

/// Scale 1.0 ~ 60k orders, 240k lineitems (a laptop-sized TPC-H slice).
TpchData make_tpch(double scale, std::uint64_t seed);

}  // namespace fpisa::query
