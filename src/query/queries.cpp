#include "query/queries.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "core/compare.h"
#include "core/packed.h"
#include "net/topology.h"

namespace fpisa::query {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Stage-time accounting. Spark-like execution has a shuffle barrier
/// between the scan and the merge; the streaming pipelines overlap all
/// three stages (scan, network, master).
QueryStats finish_stats(std::string name, Engine engine, const CostModel& cm,
                        std::size_t rows_scanned_per_worker,
                        std::size_t rows_to_master, std::uint64_t compares,
                        std::uint64_t adds) {
  const bool spark = engine == Engine::kSparkBaseline;
  const double worker_ns = spark ? cm.spark_worker_ns : cm.dpdk_worker_ns;
  const double master_ns = spark ? cm.spark_master_ns : cm.dpdk_master_ns;

  net::StarTopology star(cm.workers + 1, cm.link_gbps, cm.latency_us);
  const int master = cm.workers;
  std::vector<std::pair<int, std::uint64_t>> flows;
  for (int w = 0; w < cm.workers; ++w) {
    flows.emplace_back(
        w, static_cast<std::uint64_t>(
               static_cast<double>(rows_to_master) / cm.workers * cm.row_bytes));
  }
  const double net_s = star.gather(0.0, flows, master);
  const double scan_s =
      static_cast<double>(rows_scanned_per_worker) * worker_ns * 1e-9;
  const double master_s =
      static_cast<double>(rows_to_master) * master_ns * 1e-9;

  QueryStats s;
  s.query = std::move(name);
  s.engine = engine;
  s.rows_scanned = rows_scanned_per_worker;
  s.rows_to_master = rows_to_master;
  s.switch_compares = compares;
  s.switch_adds = adds;
  s.time_s = spark ? scan_s + std::max(net_s, master_s)
                   : std::max({scan_s, net_s, master_s});
  return s;
}

}  // namespace

bool ThresholdPruner::offer(float value) {
  ++compares_;
  if (threshold_valid_ &&
      core::fpisa_compare(core::fp32_bits(value), threshold_bits_,
                          core::kFp32) < 0) {
    return false;  // dropped in the switch
  }
  ++forwarded_;
  auto cmp = std::greater<float>();  // min-heap
  if (heap_.size() < n_) {
    heap_.push_back(value);
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  } else if (value > heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    heap_.back() = value;
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
  if (heap_.size() == n_ && ++since_feedback_ >= feedback_every_) {
    // Master pushes its current N-th largest down into the switch.
    threshold_bits_ = core::fp32_bits(heap_.front());
    threshold_valid_ = true;
    since_feedback_ = 0;
  }
  return true;
}

SwitchHashAggregator::SwitchHashAggregator(std::size_t slots,
                                           core::AccumulatorConfig cfg)
    : keys_(slots, 0), claimed_(slots, false), cfg_(cfg) {
  sums_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) sums_.emplace_back(cfg_);
}

bool SwitchHashAggregator::offer(std::uint64_t key, float value) {
  // Two-choice hashing (two table stages on the switch): a key falls
  // through to the master only when both candidate slots are taken.
  const std::size_t idx1 = mix64(key) % keys_.size();
  const std::size_t idx2 = mix64(key ^ 0x9e3779b97f4a7c15ULL) % keys_.size();
  std::size_t idx = idx1;
  if (claimed_[idx1] && keys_[idx1] != key) {
    if (claimed_[idx2] && keys_[idx2] != key) {
      ++collisions_;
      return false;  // both stages occupied: forward the raw row
    }
    idx = idx2;
  }
  if (!claimed_[idx]) {
    claimed_[idx] = true;
    keys_[idx] = key;
  }
  sums_[idx].add(value);
  ++adds_;
  return true;
}

std::vector<std::pair<std::uint64_t, float>> SwitchHashAggregator::drain()
    const {
  std::vector<std::pair<std::uint64_t, float>> out;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (claimed_[i]) out.emplace_back(keys_[i], sums_[i].read());
  }
  return out;
}

// --- Top-N -------------------------------------------------------------------

TopNResult run_top_n(const UserVisits& t, std::size_t n, Engine engine,
                     const CostModel& cm) {
  TopNResult r;
  const std::size_t rows = t.rows();
  const std::size_t per_worker = rows / static_cast<std::size_t>(cm.workers) + 1;

  auto top_of = [&](std::vector<float> vals) {
    std::partial_sort(vals.begin(),
                      vals.begin() + std::min(n, vals.size()), vals.end(),
                      std::greater<>());
    vals.resize(std::min(n, vals.size()));
    return vals;
  };

  if (engine == Engine::kSparkBaseline) {
    // Workers compute local top-N partials; the master merges W*N rows.
    std::vector<float> partials;
    for (int w = 0; w < cm.workers; ++w) {
      std::vector<float> local;
      for (std::size_t i = static_cast<std::size_t>(w); i < rows;
           i += static_cast<std::size_t>(cm.workers)) {
        local.push_back(t.ad_revenue[i]);
      }
      auto topw = top_of(std::move(local));
      partials.insert(partials.end(), topw.begin(), topw.end());
    }
    r.values = top_of(std::move(partials));
    r.stats = finish_stats("Top-N", engine, cm, per_worker, partials.size(),
                           0, 0);
    return r;
  }

  if (engine == Engine::kFpisaSwitch) {
    ThresholdPruner pruner(n);
    for (std::size_t i = 0; i < rows; ++i) pruner.offer(t.ad_revenue[i]);
    r.values = pruner.master_top();
    std::sort(r.values.begin(), r.values.end(), std::greater<>());
    r.stats = finish_stats("Top-N", engine, cm, per_worker,
                           pruner.forwarded(), pruner.compares(), 0);
    return r;
  }

  // DPDK streaming without the switch: the master sees every row.
  r.values = top_of(t.ad_revenue);
  r.stats = finish_stats("Top-N", engine, cm, per_worker, rows, 0, 0);
  return r;
}

// --- Group-by having max -----------------------------------------------------

GroupMaxResult run_group_by_max(const UserVisits& t, float having_gt,
                                Engine engine, const CostModel& cm) {
  GroupMaxResult r;
  const std::size_t rows = t.rows();
  const std::size_t per_worker = rows / static_cast<std::size_t>(cm.workers) + 1;

  auto apply_having = [&](std::map<std::uint32_t, float>& m) {
    for (auto it = m.begin(); it != m.end();) {
      it = it->second > having_gt ? std::next(it) : m.erase(it);
    }
  };

  if (engine == Engine::kSparkBaseline) {
    std::map<std::uint32_t, float> merged;
    std::size_t partial_rows = 0;
    for (int w = 0; w < cm.workers; ++w) {
      std::map<std::uint32_t, float> local;
      for (std::size_t i = static_cast<std::size_t>(w); i < rows;
           i += static_cast<std::size_t>(cm.workers)) {
        auto [it, fresh] = local.try_emplace(t.source_ip[i], t.ad_revenue[i]);
        if (!fresh) it->second = std::max(it->second, t.ad_revenue[i]);
      }
      partial_rows += local.size();
      for (const auto& [k, v] : local) {
        auto [it, fresh] = merged.try_emplace(k, v);
        if (!fresh) it->second = std::max(it->second, v);
      }
    }
    apply_having(merged);
    r.group_max = std::move(merged);
    r.stats = finish_stats("Group-by (max)", engine, cm, per_worker,
                           partial_rows, 0, 0);
    return r;
  }

  if (engine == Engine::kFpisaSwitch) {
    // One FPISA prune register per group key (bounded key domain).
    std::uint32_t key_max = 0;
    for (const auto k : t.source_ip) key_max = std::max(key_max, k);
    std::vector<core::PruneRegister> regs(
        key_max + 1, core::PruneRegister(core::PruneRegister::Mode::kMax));
    std::uint64_t compares = 0;
    std::size_t forwarded = 0;
    std::map<std::uint32_t, float> merged;
    for (std::size_t i = 0; i < rows; ++i) {
      ++compares;
      if (regs[t.source_ip[i]].offer(core::fp32_bits(t.ad_revenue[i]))) {
        ++forwarded;  // new group maximum: row reaches the master
        auto [it, fresh] =
            merged.try_emplace(t.source_ip[i], t.ad_revenue[i]);
        if (!fresh) it->second = std::max(it->second, t.ad_revenue[i]);
      }
    }
    apply_having(merged);
    r.group_max = std::move(merged);
    r.stats = finish_stats("Group-by (max)", engine, cm, per_worker,
                           forwarded, compares, 0);
    return r;
  }

  std::map<std::uint32_t, float> merged;
  for (std::size_t i = 0; i < rows; ++i) {
    auto [it, fresh] = merged.try_emplace(t.source_ip[i], t.ad_revenue[i]);
    if (!fresh) it->second = std::max(it->second, t.ad_revenue[i]);
  }
  apply_having(merged);
  r.group_max = std::move(merged);
  r.stats = finish_stats("Group-by (max)", engine, cm, per_worker, rows, 0, 0);
  return r;
}

// --- Group-by hash aggregation ----------------------------------------------

GroupSumResult run_group_by_sum(const UserVisits& t, Engine engine,
                                const CostModel& cm) {
  GroupSumResult r;
  const std::size_t rows = t.rows();
  const std::size_t per_worker = rows / static_cast<std::size_t>(cm.workers) + 1;

  if (engine == Engine::kSparkBaseline) {
    std::size_t partial_rows = 0;
    for (int w = 0; w < cm.workers; ++w) {
      std::map<std::uint32_t, float> local;
      for (std::size_t i = static_cast<std::size_t>(w); i < rows;
           i += static_cast<std::size_t>(cm.workers)) {
        local[t.source_ip[i]] += t.ad_revenue[i];
      }
      partial_rows += local.size();
      for (const auto& [k, v] : local) r.group_sum[k] += v;
    }
    r.stats = finish_stats("Group-by (agg)", engine, cm, per_worker,
                           partial_rows, 0, 0);
    return r;
  }

  if (engine == Engine::kFpisaSwitch) {
    std::uint32_t key_max = 0;
    for (const auto k : t.source_ip) key_max = std::max(key_max, k);
    SwitchHashAggregator agg(8 * (key_max + 1) + 64);
    std::size_t forwarded = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      if (!agg.offer(t.source_ip[i], t.ad_revenue[i])) {
        ++forwarded;  // collision path
        r.group_sum[t.source_ip[i]] += t.ad_revenue[i];
      }
    }
    const auto drained = agg.drain();
    for (const auto& [k, v] : drained) {
      r.group_sum[static_cast<std::uint32_t>(k)] += v;
    }
    r.stats = finish_stats("Group-by (agg)", engine, cm, per_worker,
                           forwarded + drained.size(), 0, agg.adds());
    return r;
  }

  for (std::size_t i = 0; i < rows; ++i) {
    r.group_sum[t.source_ip[i]] += t.ad_revenue[i];
  }
  r.stats = finish_stats("Group-by (agg)", engine, cm, per_worker, rows, 0, 0);
  return r;
}

// --- TPC-H Q3 -----------------------------------------------------------------

Q3Result run_tpch_q3(const TpchData& d, std::uint8_t segment,
                     std::uint16_t date, Engine engine, const CostModel& cm) {
  Q3Result r;
  // Shared worker-side plan: hash join customer(segment) |> orders(date)
  // |> lineitem(date), partial revenue per order. Lineitems are partitioned
  // by orderkey, so per-worker partials are complete sums.
  std::unordered_map<std::uint32_t, bool> cust_in_segment;
  for (std::size_t i = 0; i < d.customer.rows(); ++i) {
    if (d.customer.mktsegment[i] == segment) {
      cust_in_segment.emplace(d.customer.custkey[i], true);
    }
  }
  std::unordered_map<std::uint32_t, std::uint16_t> order_date;
  for (std::size_t i = 0; i < d.orders.rows(); ++i) {
    if (d.orders.orderdate[i] < date &&
        cust_in_segment.count(d.orders.custkey[i])) {
      order_date.emplace(d.orders.orderkey[i], d.orders.orderdate[i]);
    }
  }
  std::unordered_map<std::uint32_t, float> revenue;
  for (std::size_t i = 0; i < d.lineitem.rows(); ++i) {
    if (d.lineitem.shipdate[i] <= date) continue;
    const auto it = order_date.find(d.lineitem.orderkey[i]);
    if (it == order_date.end()) continue;
    revenue[d.lineitem.orderkey[i]] +=
        d.lineitem.extendedprice[i] * (1.0f - d.lineitem.discount[i]);
  }

  const std::size_t scanned =
      (d.lineitem.rows() + d.orders.rows() + d.customer.rows()) /
          static_cast<std::size_t>(cm.workers) +
      1;

  auto sort_top10 = [&](std::vector<Q3Row> rows) {
    std::sort(rows.begin(), rows.end(), [](const Q3Row& a, const Q3Row& b) {
      return a.revenue != b.revenue ? a.revenue > b.revenue
                                    : a.orderkey < b.orderkey;
    });
    if (rows.size() > 10) rows.resize(10);
    return rows;
  };

  std::vector<Q3Row> all;
  all.reserve(revenue.size());
  for (const auto& [ok, rev] : revenue) {
    all.push_back({ok, rev, order_date.at(ok)});
  }

  if (engine == Engine::kSparkBaseline) {
    // Each worker ships its local top-10 partials.
    r.top = sort_top10(all);
    r.stats = finish_stats(
        "TPC-H Q3", engine, cm, scanned,
        static_cast<std::size_t>(cm.workers) * 10, 0, 0);
    return r;
  }
  if (engine == Engine::kFpisaSwitch) {
    ThresholdPruner pruner(10);
    std::vector<Q3Row> survivors;
    for (const auto& row : all) {
      if (pruner.offer(row.revenue)) survivors.push_back(row);
    }
    r.top = sort_top10(std::move(survivors));
    r.stats = finish_stats("TPC-H Q3", engine, cm, scanned,
                           pruner.forwarded(), pruner.compares(), 0);
    return r;
  }
  r.top = sort_top10(all);
  r.stats = finish_stats("TPC-H Q3", engine, cm, scanned, all.size(), 0, 0);
  return r;
}

// --- TPC-H Q20 ----------------------------------------------------------------

Q20Result run_tpch_q20(const TpchData& d, std::uint16_t date_lo,
                       std::uint16_t date_hi, Engine engine,
                       const CostModel& cm) {
  Q20Result r;
  auto pskey = [](std::uint32_t pk, std::uint32_t sk) {
    return (static_cast<std::uint64_t>(pk) << 32) | sk;
  };

  // Available quantity per (part, supplier).
  std::unordered_map<std::uint64_t, float> avail;
  for (std::size_t i = 0; i < d.partsupp.rows(); ++i) {
    avail[pskey(d.partsupp.partkey[i], d.partsupp.suppkey[i])] +=
        d.partsupp.availqty[i];
  }

  auto apply_having = [&](const std::unordered_map<std::uint64_t, double>& sums) {
    for (const auto& [k, sum] : sums) {
      const auto it = avail.find(k);
      if (it != avail.end() && sum > 0.5 * it->second) {
        r.excess[k] = static_cast<float>(sum);
      }
    }
  };

  const std::size_t scanned =
      (d.lineitem.rows() + d.partsupp.rows()) /
          static_cast<std::size_t>(cm.workers) +
      1;

  if (engine == Engine::kFpisaSwitch) {
    std::size_t filtered = 0;
    for (std::size_t i = 0; i < d.lineitem.rows(); ++i) {
      if (d.lineitem.shipdate[i] >= date_lo && d.lineitem.shipdate[i] < date_hi) {
        ++filtered;
      }
    }
    SwitchHashAggregator agg(4 * filtered + 64);
    std::unordered_map<std::uint64_t, double> master;
    std::size_t forwarded = 0;
    for (std::size_t i = 0; i < d.lineitem.rows(); ++i) {
      if (d.lineitem.shipdate[i] < date_lo || d.lineitem.shipdate[i] >= date_hi) {
        continue;
      }
      const std::uint64_t k =
          pskey(d.lineitem.partkey[i], d.lineitem.suppkey[i]);
      if (!agg.offer(k, d.lineitem.quantity[i])) {
        ++forwarded;
        master[k] += static_cast<double>(d.lineitem.quantity[i]);
      }
    }
    const auto drained = agg.drain();
    for (const auto& [k, v] : drained) master[k] += static_cast<double>(v);
    apply_having(master);
    r.stats = finish_stats("TPC-H Q20", engine, cm, scanned,
                           forwarded + drained.size(), 0, agg.adds());
    return r;
  }

  // Baseline / no-switch: exact sums on hosts.
  std::unordered_map<std::uint64_t, double> sums;
  std::size_t filtered = 0;
  for (std::size_t i = 0; i < d.lineitem.rows(); ++i) {
    if (d.lineitem.shipdate[i] < date_lo || d.lineitem.shipdate[i] >= date_hi) {
      continue;
    }
    ++filtered;
    sums[pskey(d.lineitem.partkey[i], d.lineitem.suppkey[i])] +=
        static_cast<double>(d.lineitem.quantity[i]);
  }
  apply_having(sums);
  const std::size_t to_master = engine == Engine::kSparkBaseline
                                    ? sums.size() * 2  // W partial maps
                                    : filtered;
  r.stats = finish_stats("TPC-H Q20", engine, cm, scanned, to_master, 0, 0);
  return r;
}

// --- Extension: join + top-N (Big-Data-benchmark style) ----------------------

JoinTopNResult run_join_top_n(const UserVisits& uv, const Rankings& rk,
                              std::int32_t min_rank, std::size_t n,
                              Engine engine, const CostModel& cm) {
  JoinTopNResult r;
  // Worker-side hash join: rankings is the (small) build side; visits
  // stream as the probe side. page_url is dense 0..rows-1 by construction.
  auto rank_of = [&](std::uint32_t url) -> std::int32_t {
    return url < rk.rows() ? rk.page_rank[url] : -1;
  };

  std::vector<JoinTopNResult::Row> joined;
  for (std::size_t i = 0; i < uv.rows(); ++i) {
    const std::int32_t pr = rank_of(uv.dest_url[i]);
    if (pr > min_rank) {
      joined.push_back({uv.dest_url[i], pr, uv.ad_revenue[i]});
    }
  }
  const std::size_t scanned =
      (uv.rows() + rk.rows()) / static_cast<std::size_t>(cm.workers) + 1;

  auto sort_top = [&](std::vector<JoinTopNResult::Row> rows) {
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.ad_revenue != b.ad_revenue ? a.ad_revenue > b.ad_revenue
                                          : a.dest_url < b.dest_url;
    });
    if (rows.size() > n) rows.resize(n);
    return rows;
  };

  if (engine == Engine::kSparkBaseline) {
    r.top = sort_top(joined);
    r.stats = finish_stats("Join+Top-N", engine, cm, scanned,
                           static_cast<std::size_t>(cm.workers) * n, 0, 0);
    return r;
  }
  if (engine == Engine::kFpisaSwitch) {
    ThresholdPruner pruner(n);
    std::vector<JoinTopNResult::Row> survivors;
    for (const auto& row : joined) {
      if (pruner.offer(row.ad_revenue)) survivors.push_back(row);
    }
    r.top = sort_top(std::move(survivors));
    r.stats = finish_stats("Join+Top-N", engine, cm, scanned,
                           pruner.forwarded(), pruner.compares(), 0);
    return r;
  }
  const std::size_t joined_rows = joined.size();
  r.top = sort_top(std::move(joined));
  r.stats =
      finish_stats("Join+Top-N", engine, cm, scanned, joined_rows, 0, 0);
  return r;
}

}  // namespace fpisa::query
