#include "query/data.h"

#include "util/rng.h"

namespace fpisa::query {

UserVisits make_uservisits(std::size_t rows, std::uint64_t seed,
                           std::uint32_t key_groups,
                           std::uint32_t url_domain) {
  util::Rng rng(seed);
  UserVisits t;
  t.source_ip.resize(rows);
  t.dest_url.resize(rows);
  t.visit_date.resize(rows);
  t.ad_revenue.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    // source_ip doubles as the group-by key: bounded domain.
    t.source_ip[i] = static_cast<std::uint32_t>(rng.next_below(key_groups));
    t.dest_url[i] = url_domain ? static_cast<std::uint32_t>(rng.next_below(url_domain))
                               : rng.next_u32();
    t.visit_date[i] = static_cast<std::uint16_t>(rng.next_below(3650));
    // Ad revenue: heavy-tailed positive floats (lognormal), like money.
    t.ad_revenue[i] = static_cast<float>(rng.lognormal(0.0, 1.5));
  }
  return t;
}

Rankings make_rankings(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  Rankings t;
  t.page_url.resize(rows);
  t.page_rank.resize(rows);
  t.avg_duration.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    t.page_url[i] = static_cast<std::uint32_t>(i);  // join key domain
    t.page_rank[i] = static_cast<std::int32_t>(rng.next_below(10000));
    t.avg_duration[i] = static_cast<std::int32_t>(rng.next_below(600));
  }
  return t;
}

TpchData make_tpch(double scale, std::uint64_t seed) {
  util::Rng rng(seed);
  TpchData d;
  const auto n_orders = static_cast<std::size_t>(60000 * scale);
  const auto n_cust = static_cast<std::size_t>(15000 * scale) + 1;
  const auto n_part = static_cast<std::size_t>(20000 * scale) + 1;
  const auto n_supp = static_cast<std::size_t>(1000 * scale) + 1;

  d.customer.custkey.resize(n_cust);
  d.customer.mktsegment.resize(n_cust);
  for (std::size_t i = 0; i < n_cust; ++i) {
    d.customer.custkey[i] = static_cast<std::uint32_t>(i);
    d.customer.mktsegment[i] = static_cast<std::uint8_t>(rng.next_below(5));
  }

  d.orders.orderkey.resize(n_orders);
  d.orders.custkey.resize(n_orders);
  d.orders.orderdate.resize(n_orders);
  d.orders.shippriority.resize(n_orders);
  for (std::size_t i = 0; i < n_orders; ++i) {
    d.orders.orderkey[i] = static_cast<std::uint32_t>(i);
    d.orders.custkey[i] =
        static_cast<std::uint32_t>(rng.next_below(n_cust));
    d.orders.orderdate[i] = static_cast<std::uint16_t>(rng.next_below(2400));
    d.orders.shippriority[i] = 0;
  }

  const std::size_t n_items = n_orders * 4;
  d.lineitem.orderkey.resize(n_items);
  d.lineitem.partkey.resize(n_items);
  d.lineitem.suppkey.resize(n_items);
  d.lineitem.quantity.resize(n_items);
  d.lineitem.extendedprice.resize(n_items);
  d.lineitem.discount.resize(n_items);
  d.lineitem.shipdate.resize(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    d.lineitem.orderkey[i] = static_cast<std::uint32_t>(i / 4);
    d.lineitem.partkey[i] =
        static_cast<std::uint32_t>(rng.next_below(n_part));
    d.lineitem.suppkey[i] =
        static_cast<std::uint32_t>(rng.next_below(n_supp));
    d.lineitem.quantity[i] = static_cast<float>(rng.uniform_int(1, 50));
    d.lineitem.extendedprice[i] =
        static_cast<float>(rng.uniform(900.0, 105000.0));
    d.lineitem.discount[i] = static_cast<float>(rng.uniform_int(0, 10)) / 100.0f;
    d.lineitem.shipdate[i] = static_cast<std::uint16_t>(rng.next_below(2400));
  }

  const std::size_t n_ps = n_part * 4;
  d.partsupp.partkey.resize(n_ps);
  d.partsupp.suppkey.resize(n_ps);
  d.partsupp.availqty.resize(n_ps);
  for (std::size_t i = 0; i < n_ps; ++i) {
    d.partsupp.partkey[i] = static_cast<std::uint32_t>(i / 4);
    d.partsupp.suppkey[i] =
        static_cast<std::uint32_t>(rng.next_below(n_supp));
    d.partsupp.availqty[i] = static_cast<float>(rng.uniform_int(1, 9999));
  }
  return d;
}

}  // namespace fpisa::query
