// The five evaluated queries (paper Table 2) over a master + workers +
// switch deployment (Fig 12), each in three variants:
//   * kSparkBaseline — Spark-like execution: JVM-class per-row costs on
//     workers, partial results merged at the master (no switch help).
//   * kFpisaSwitch   — Cheetah/NETACCEL-style: workers stream rows at
//     DPDK-class cost; the switch prunes (FPISA comparison) or aggregates
//     (FPISA addition); the master finishes on the survivors.
//   * kDpdkNoSwitch  — ablation: the cheap streaming pipeline *without*
//     the switch, to show the master-side bottleneck pruning removes.
//
// Every variant computes the real answer (validated in tests); execution
// time comes from the cost model + the star-topology network (src/net).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/accumulator.h"
#include "query/data.h"

namespace fpisa::query {

enum class Engine { kSparkBaseline, kFpisaSwitch, kDpdkNoSwitch };

/// Per-row processing costs. Spark-class numbers reflect JVM scan +
/// shuffle bookkeeping; DPDK-class numbers reflect a tight native loop
/// that only parses and transmits (Cheetah's design point).
struct CostModel {
  int workers = 2;
  double link_gbps = 40.0;  ///< X710 40GbE, as in the paper's testbed
  double latency_us = 10.0;
  double spark_worker_ns = 260.0;
  double spark_master_ns = 320.0;
  double dpdk_worker_ns = 110.0;
  double dpdk_master_ns = 160.0;
  double row_bytes = 24.0;
};

struct QueryStats {
  std::string query;
  Engine engine{};
  double time_s = 0;
  std::size_t rows_scanned = 0;    ///< max per worker (parallel scan)
  std::size_t rows_to_master = 0;
  std::uint64_t switch_compares = 0;
  std::uint64_t switch_adds = 0;
};

// --- Switch-side primitives -------------------------------------------------

/// Top-N pruning with master feedback: the switch holds one FP32 threshold
/// register (the master's current N-th largest, pushed back periodically);
/// rows strictly below it are dropped. Sound: any dropped row already has
/// >= N forwarded rows above it.
class ThresholdPruner {
 public:
  ThresholdPruner(std::size_t n, std::size_t feedback_every = 256)
      : n_(n), feedback_every_(feedback_every) {}

  /// Returns true if the row survives pruning (reaches the master).
  bool offer(float value);

  const std::vector<float>& master_top() const { return heap_; }
  std::uint64_t compares() const { return compares_; }
  std::size_t forwarded() const { return forwarded_; }

 private:
  std::size_t n_;
  std::size_t feedback_every_;
  std::vector<float> heap_;  // min-heap of the master's current top-N
  bool threshold_valid_ = false;
  std::uint32_t threshold_bits_ = 0;
  std::size_t since_feedback_ = 0;
  std::uint64_t compares_ = 0;
  std::size_t forwarded_ = 0;
};

/// NETACCEL-style in-switch hash aggregation: each slot holds a claimed
/// key plus an FPISA (full variant: exact alignment via RSAW) accumulator.
/// Two-choice hashing (two pipeline stages); keys that lose both probes
/// fall through to the master unaggregated — soundness over coverage.
class SwitchHashAggregator {
 public:
  explicit SwitchHashAggregator(std::size_t slots,
                                core::AccumulatorConfig cfg = full_config());

  static core::AccumulatorConfig full_config() {
    core::AccumulatorConfig c;
    c.variant = core::Variant::kFull;  // §6.1: queries need full FPISA
    return c;
  }

  /// Returns true if absorbed by the switch; false = forward to master.
  bool offer(std::uint64_t key, float value);

  /// Drains (key, sum) pairs from the switch registers.
  std::vector<std::pair<std::uint64_t, float>> drain() const;

  std::uint64_t adds() const { return adds_; }
  std::uint64_t collisions() const { return collisions_; }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<bool> claimed_;
  core::AccumulatorConfig cfg_;
  std::vector<core::FpisaAccumulator> sums_;
  std::uint64_t adds_ = 0;
  std::uint64_t collisions_ = 0;
};

// --- The five queries -------------------------------------------------------

struct TopNResult {
  std::vector<float> values;  // descending
  QueryStats stats;
};
TopNResult run_top_n(const UserVisits& t, std::size_t n, Engine engine,
                     const CostModel& cm = {});

struct GroupMaxResult {
  std::map<std::uint32_t, float> group_max;  // groups passing HAVING
  QueryStats stats;
};
GroupMaxResult run_group_by_max(const UserVisits& t, float having_gt,
                                Engine engine, const CostModel& cm = {});

struct GroupSumResult {
  std::map<std::uint32_t, float> group_sum;
  QueryStats stats;
};
GroupSumResult run_group_by_sum(const UserVisits& t, Engine engine,
                                const CostModel& cm = {});

struct Q3Row {
  std::uint32_t orderkey;
  float revenue;
  std::uint16_t orderdate;
};
struct Q3Result {
  std::vector<Q3Row> top;  // by revenue, descending, limit 10
  QueryStats stats;
};
Q3Result run_tpch_q3(const TpchData& d, std::uint8_t segment,
                     std::uint16_t date, Engine engine,
                     const CostModel& cm = {});

struct Q20Result {
  // (partkey, suppkey) -> summed lineitem quantity, for pairs whose sum
  // exceeds half the available quantity.
  std::map<std::uint64_t, float> excess;
  QueryStats stats;
};
Q20Result run_tpch_q20(const TpchData& d, std::uint16_t date_lo,
                       std::uint16_t date_hi, Engine engine,
                       const CostModel& cm = {});

/// Extension beyond the paper's five queries: a Big-Data-benchmark-style
/// join task. Workers hash-join uservisits onto rankings (dest_url =
/// page_url), filter pageRank > min_rank, then the switch threshold-prunes
/// on FP32 adRevenue for a global top-N (same machinery as Top-N/Q3).
struct JoinTopNResult {
  struct Row {
    std::uint32_t dest_url;
    std::int32_t page_rank;
    float ad_revenue;
  };
  std::vector<Row> top;  // by ad_revenue desc
  QueryStats stats;
};
JoinTopNResult run_join_top_n(const UserVisits& uv, const Rankings& rk,
                              std::int32_t min_rank, std::size_t n,
                              Engine engine, const CostModel& cm = {});

}  // namespace fpisa::query
