// A small discrete-event simulator plus link/queueing primitives — the
// timing substrate for the end-to-end experiments (distributed query
// execution, aggregation transfers). Functional packet processing happens
// in src/pisa; this module only accounts for time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fpisa::net {

/// Event-driven clock: schedule closures at absolute times, run to drain.
class EventSim {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_s_; }

  void at(double time_s, Handler fn) {
    queue_.push(Event{time_s, seq_++, std::move(fn)});
  }
  void after(double delay_s, Handler fn) { at(now_s_ + delay_s, std::move(fn)); }

  /// Runs until the queue drains; returns the final time.
  double run() {
    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      now_s_ = e.time_s;
      e.fn();
    }
    return now_s_;
  }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double time_s;
    std::uint64_t seq;  // FIFO tie-break for determinism
    Handler fn;
    bool operator>(const Event& o) const {
      return time_s != o.time_s ? time_s > o.time_s : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_s_ = 0;
  std::uint64_t seq_ = 0;
};

/// A serializing link: messages transmit back-to-back at `gbps`, then take
/// `latency_us` to propagate. Usable standalone (analytic) or with EventSim.
class Link {
 public:
  Link(double gbps, double latency_us)
      : gbps_(gbps), latency_s_(latency_us * 1e-6) {}

  /// Enqueues `bytes` at time `t`; returns the arrival time at the far end.
  double send(double t, std::uint64_t bytes) {
    const double start = t > next_free_ ? t : next_free_;
    const double tx = static_cast<double>(bytes) * 8.0 / (gbps_ * 1e9);
    next_free_ = start + tx;
    busy_s_ += tx;
    return next_free_ + latency_s_;
  }

  double gbps() const { return gbps_; }
  double latency_s() const { return latency_s_; }
  double busy_seconds() const { return busy_s_; }
  double next_free() const { return next_free_; }
  void reset() {
    next_free_ = 0;
    busy_s_ = 0;
  }

 private:
  double gbps_;
  double latency_s_;
  double next_free_ = 0;
  double busy_s_ = 0;
};

}  // namespace fpisa::net
