// Star topology through one switch: every host has a full-duplex link to
// the switch (the paper's testbed shape). Provides the transfer-time
// accounting used by the query engine (Fig 13) and aggregation models.
#pragma once

#include <cstdint>
#include <vector>

#include "net/event_sim.h"

namespace fpisa::net {

class StarTopology {
 public:
  /// `hosts` endpoints, each with an uplink and a downlink of `gbps`.
  StarTopology(int hosts, double gbps, double latency_us);

  int hosts() const { return static_cast<int>(up_.size()); }

  /// Sends `bytes` from src to dst entering the network at time `t`;
  /// returns delivery time (serialization on src uplink + dst downlink,
  /// plus the switch hop latency).
  double send(double t, int src, int dst, std::uint64_t bytes);

  /// Many-to-one: each (src, bytes) stream starts at `t`, all destined to
  /// `dst`; returns the time the last byte arrives (models the master-side
  /// incast bottleneck a pruning switch relieves).
  double gather(double t, const std::vector<std::pair<int, std::uint64_t>>& flows,
                int dst);

  Link& uplink(int host) { return up_[static_cast<std::size_t>(host)]; }
  Link& downlink(int host) { return down_[static_cast<std::size_t>(host)]; }

  void reset();

 private:
  std::vector<Link> up_;
  std::vector<Link> down_;
  double hop_latency_s_;
};

}  // namespace fpisa::net
