#include "net/topology.h"

#include <algorithm>
#include <cassert>

namespace fpisa::net {

StarTopology::StarTopology(int hosts, double gbps, double latency_us)
    : hop_latency_s_(latency_us * 1e-6) {
  up_.reserve(static_cast<std::size_t>(hosts));
  down_.reserve(static_cast<std::size_t>(hosts));
  for (int i = 0; i < hosts; ++i) {
    up_.emplace_back(gbps, latency_us);
    down_.emplace_back(gbps, latency_us);
  }
}

double StarTopology::send(double t, int src, int dst, std::uint64_t bytes) {
  assert(src != dst);
  const double at_switch = up_[static_cast<std::size_t>(src)].send(t, bytes);
  return down_[static_cast<std::size_t>(dst)].send(at_switch + hop_latency_s_,
                                                   bytes);
}

double StarTopology::gather(
    double t, const std::vector<std::pair<int, std::uint64_t>>& flows,
    int dst) {
  double done = t;
  for (const auto& [src, bytes] : flows) {
    if (bytes == 0) continue;
    done = std::max(done, send(t, src, dst, bytes));
  }
  return done;
}

void StarTopology::reset() {
  for (auto& l : up_) l.reset();
  for (auto& l : down_) l.reset();
}

}  // namespace fpisa::net
