#include "switchml/session.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

#include "core/packed.h"

namespace fpisa::switchml {

using Clock = std::chrono::steady_clock;

namespace {
std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
}  // namespace

AggregationSession::AggregationSession(pisa::SwitchConfig config,
                                       SessionOptions opts)
    : opts_(opts),
      switch_(config,
              [&] {
                pisa::FpisaProgramOptions p;
                p.variant = config.ext.rsaw ? core::Variant::kFull
                                            : core::Variant::kApproximate;
                p.lanes = opts.lanes;
                p.slots = opts.slots;
                p.num_workers = opts.num_workers;
                return p;
              }()),
      loss_rng_(opts.loss_seed),
      lane_buf_(static_cast<std::size_t>(opts.lanes), 0) {
  assert(opts_.num_workers <= 32 && "bitmap is 32 bits wide");
  if (opts_.fault.enabled && !opts_.batched) {
    throw std::invalid_argument(
        "fault injection requires the batched datapath (the guarded ingress "
        "is a batch interface)");
  }
  init_metrics();
}

void AggregationSession::init_metrics() {
  static std::atomic<int> next_id{0};
  const std::string id = std::to_string(next_id.fetch_add(1));
  auto& reg = telemetry::registry();
  m_waves_ = &reg.counter("switchml_session_waves_total", {{"sess", id}});
  m_retrans_ =
      &reg.counter("switchml_session_retransmissions_total", {{"sess", id}});
  m_lost_ =
      &reg.counter("switchml_session_packets_lost_total", {{"sess", id}});
  m_phase_[0] = &reg.histogram("switchml_session_phase_seconds",
                               {{"sess", id}, {"phase", "add"}},
                               telemetry::MetricsRegistry::time_buckets());
  m_phase_[1] = &reg.histogram("switchml_session_phase_seconds",
                               {{"sess", id}, {"phase", "collect"}},
                               telemetry::MetricsRegistry::time_buckets());
}

void AggregationSession::note_wave(std::uint64_t add_ns,
                                   std::uint64_t collect_ns) {
  add_ns_ += add_ns;
  collect_ns_ += collect_ns;
  if (!telemetry::enabled()) return;
  m_waves_->inc();
  m_phase_[0]->observe(static_cast<double>(add_ns) / 1e9);
  m_phase_[1]->observe(static_cast<double>(collect_ns) / 1e9);
  if (stats_.retransmissions != stats_flushed_.retransmissions) {
    m_retrans_->inc(stats_.retransmissions - stats_flushed_.retransmissions);
  }
  if (stats_.packets_lost != stats_flushed_.packets_lost) {
    m_lost_->inc(stats_.packets_lost - stats_flushed_.packets_lost);
  }
  stats_flushed_ = stats_;
}

bool AggregationSession::send_add(std::uint16_t slot, std::uint8_t worker,
                                  std::span<const std::uint32_t> values,
                                  pisa::FpisaResult* out) {
  bool delivered_before = false;
  for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats_.retransmissions;
    ++stats_.packets_sent;

    // Request direction.
    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;  // switch never saw it: retransmit after "timeout"
    }
    if (delivered_before) ++stats_.duplicates_absorbed;
    delivered_before = true;
    const pisa::FpisaResult r = switch_.add(slot, worker, values);

    // Response direction.
    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;  // ack lost: worker retransmits; switch dedups
    }
    *out = r;
    return true;
  }
  return false;
}

bool AggregationSession::queue_add(std::uint16_t slot, std::uint8_t worker,
                                   std::span<const std::uint32_t> values) {
  // The loss schedule depends only on the rng stream, never on the switch,
  // so it can be drawn here in the exact order send_add would draw it;
  // every copy the switch would have seen is queued in arrival order (the
  // dedup bitmap absorbs the duplicates when the batch is applied).
  bool delivered_before = false;
  for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats_.retransmissions;
    ++stats_.packets_sent;

    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;
    }
    if (delivered_before) ++stats_.duplicates_absorbed;
    delivered_before = true;
    pending_slots_.push_back(slot);
    pending_workers_.push_back(worker);
    pending_values_.insert(pending_values_.end(), values.begin(),
                           values.end());

    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;
    }
    return true;
  }
  return false;
}

void AggregationSession::flush_pending() {
  if (pending_slots_.empty()) return;
  switch_.add_batch(pending_slots_, pending_workers_, pending_values_);
  pending_slots_.clear();
  pending_workers_.clear();
  pending_values_.clear();
}

CollectSchedule draw_collect_schedule(std::size_t n, double loss_rate,
                                      int max_retransmits, util::Rng& rng,
                                      SessionStats& stats) {
  CollectSchedule sched;
  for (std::size_t k = 0; k < n; ++k) {
    bool have = false;
    for (int attempt = 0; attempt <= max_retransmits && !have; ++attempt) {
      ++stats.packets_sent;
      if (rng.next_double() < loss_rate) {
        ++stats.packets_lost;
        continue;
      }
      ++sched.delivered;
      if (rng.next_double() < loss_rate) {
        ++stats.packets_lost;
        continue;
      }
      have = true;
    }
    if (!have) {
      sched.failure = 1;
      return sched;
    }
    bool cleared_slot = false;
    for (int attempt = 0; attempt <= max_retransmits; ++attempt) {
      ++stats.packets_sent;
      if (rng.next_double() < loss_rate) {
        ++stats.packets_lost;
        continue;
      }
      ++sched.delivered;
      ++stats.slot_reuses;
      cleared_slot = true;
      if (rng.next_double() >= loss_rate) break;
      ++stats.packets_lost;  // ack lost: re-clearing is harmless
    }
    if (!cleared_slot) {
      sched.failure = 2;
      return sched;
    }
    ++sched.cleared;
  }
  return sched;
}

void AggregationSession::collect_wave(std::size_t base, std::size_t wave_end,
                                      std::size_t n, std::span<float> result) {
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t wave_n = wave_end - base;
  wave_values_.resize(wave_n * lanes);

  const CollectSchedule sched = draw_collect_schedule(
      wave_n, opts_.loss_rate, opts_.max_retransmits, loss_rng_, stats_);

  // Apply the cleared prefix in one compiled-egress call (values are read
  // before the clear, exactly the per-slot read-then-reset order; a
  // failed slot and everything after it stay untouched, as they would).
  switch_.read_and_reset_batch(0, sched.cleared,
                               {wave_values_.data(), sched.cleared * lanes});
  switch_.sim().account_packets(sched.delivered - sched.cleared);
  if (sched.failure == 1) {
    throw RetransmitExhaustedError(RetransmitExhaustedError::Phase::kRead,
                                   static_cast<std::uint16_t>(sched.cleared),
                                   -1);
  }
  if (sched.failure == 2) {
    // A never-reset slot would swallow the next wave's adds through the
    // dedup bitmap — fail loudly rather than aggregate silently wrong.
    throw RetransmitExhaustedError(RetransmitExhaustedError::Phase::kReset,
                                   static_cast<std::uint16_t>(sched.cleared),
                                   -1);
  }

  for (std::size_t k = 0; k < wave_n; ++k) {
    const std::size_t c = base + k;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t i = c * lanes + l;
      if (i < n) result[i] = core::fp32_value(wave_values_[k * lanes + l]);
    }
  }
}

std::vector<float> AggregationSession::reduce(
    std::span<const std::vector<float>> workers) {
  const std::vector<std::span<const float>> views(workers.begin(),
                                                  workers.end());
  std::vector<float> result(workers.empty() ? 0 : workers.front().size(),
                            0.0f);
  reduce_into(views, result);
  return result;
}

void AggregationSession::reduce_into(
    std::span<const std::span<const float>> workers, std::span<float> result) {
  assert(static_cast<int>(workers.size()) == opts_.num_workers);
  const std::size_t n = workers.front().size();
  assert(result.size() == n);
  if (opts_.fault.enabled) {
    // The guarded protocol: every delivered copy runs through the fault
    // engine, every batch through the stamp/checksum guard, and a
    // dead-worker policy drives the retry loop. Kept out of the default
    // path entirely so fault-off behavior is byte-for-byte unchanged.
    fault::FaultEngine engine(opts_.fault, opts_.fault.seed, opts_.lanes);
    resync_stamps();
    std::uint32_t dead_mask = 0;
    for (;;) {
      try {
        run_guarded(workers, result, engine, dead_mask);
        return;
      } catch (const fault::WorkerDeadError& e) {
        stats_.faults.workers_declared_dead++;
        stats_.dead_workers |= 1u << e.worker();
        dead_mask |= 1u << e.worker();
        if (opts_.fault.dead_worker_policy ==
                fault::DeadWorkerPolicy::kAbort ||
            std::popcount(dead_mask) >= opts_.num_workers) {
          throw;
        }
        // Degrade: abandon the partial attempt — scrub every slot (bumps
        // the epochs, so any in-flight stragglers from the dead attempt
        // are stale), forget the engine's ghosts, and rerun the job over
        // the survivors.
        wave_values_.resize(opts_.slots *
                            static_cast<std::size_t>(opts_.lanes));
        switch_.read_and_reset_batch(0, opts_.slots, wave_values_);
        engine.clear_pending();
        engine.drop_ghosts();
        resync_stamps();
        stats_.faults.epoch_bumps++;
      }
    }
  }
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t chunks = (n + lanes - 1) / lanes;
  std::fill(result.begin(), result.end(), 0.0f);

  for (std::size_t base = 0; base < chunks; base += opts_.slots) {
    const std::size_t wave_end = std::min(base + opts_.slots, chunks);
    const Clock::time_point t_wave = Clock::now();
    // All workers stream their packets for this wave of chunks. The
    // batched path encodes the whole wave into reused buffers and applies
    // it in one add_batch call; the per-packet path drives the simulator
    // packet by packet. Both see the identical loss schedule.
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int w = 0; w < opts_.num_workers; ++w) {
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          lane_buf_[l] =
              i < n ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                    : 0;
        }
        bool ok;
        if (opts_.batched) {
          ok = queue_add(slot, static_cast<std::uint8_t>(w), lane_buf_);
        } else {
          pisa::FpisaResult r;
          ok = send_add(slot, static_cast<std::uint8_t>(w), lane_buf_, &r);
        }
        if (!ok) {
          // Deliver what the switch already received before failing, so
          // the register state matches the per-packet path exactly.
          flush_pending();
          throw RetransmitExhaustedError(
              RetransmitExhaustedError::Phase::kAdd, slot, w);
        }
      }
    }
    flush_pending();
    const Clock::time_point t_collect = Clock::now();
    // Collect + recycle every slot of the wave: an idempotent read
    // (retried until acknowledged), then a reset (extra resets re-clear an
    // already-empty slot, which is harmless once the value is captured).
    // The batched path drains the whole wave through one compiled-egress
    // read_and_reset_batch call with the identical loss schedule.
    if (opts_.batched) {
      collect_wave(base, wave_end, n, result);
      note_wave(ns_between(t_wave, t_collect),
                ns_between(t_collect, Clock::now()));
      continue;
    }
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      bool have = false;
      for (int attempt = 0; attempt <= opts_.max_retransmits && !have;
           ++attempt) {
        ++stats_.packets_sent;
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        switch_.read_into(slot, result_buf_);
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        have = true;
      }
      if (!have) {
        throw RetransmitExhaustedError(
            RetransmitExhaustedError::Phase::kRead, slot, -1);
      }

      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t i = c * lanes + l;
        if (i < n) {
          result[i] = core::fp32_value(result_buf_.values[l]);
        }
      }

      bool cleared = false;
      for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
        ++stats_.packets_sent;
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        switch_.read_and_reset_into(slot, result_buf_);
        ++stats_.slot_reuses;
        cleared = true;
        if (loss_rng_.next_double() >= opts_.loss_rate) break;
        ++stats_.packets_lost;  // ack lost: re-clearing is harmless
      }
      if (!cleared) {
        // A never-reset slot would swallow the next wave's adds through the
        // dedup bitmap — fail loudly rather than aggregate silently wrong.
        throw RetransmitExhaustedError(
            RetransmitExhaustedError::Phase::kReset, slot, -1);
      }
    }
    note_wave(ns_between(t_wave, t_collect),
              ns_between(t_collect, Clock::now()));
  }
}

// ---------------------------------------------------------------------------
// Guarded protocol (fault injection enabled). Structure mirrors the batched
// reduce_into body, with three insertions per wave: the engine sits between
// queue_add and the pending batch (corrupting / duplicating / ghosting /
// reordering delivered copies), the batch lands through add_batch_guarded
// (stamp + checksum verification), and after the add phase the wave is
// checked for switch state loss (replay from the host-held gradients — the
// shadow buffers ARE the worker views) and for workers that missed their
// wave deadline.
// ---------------------------------------------------------------------------

void AggregationSession::resync_stamps() {
  stamps_.resize(opts_.slots);
  for (std::size_t s = 0; s < opts_.slots; ++s) {
    stamps_[s] = switch_.slot_stamp(static_cast<std::uint16_t>(s));
  }
  mirror_generation_ = switch_.generation();
}

bool AggregationSession::queue_add_guarded(
    std::uint16_t slot, std::uint8_t worker,
    std::span<const std::uint32_t> values, fault::FaultEngine& engine) {
  bool delivered_before = false;
  for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats_.retransmissions;
    ++stats_.packets_sent;

    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;
    }
    // Delivered to the wire: the engine decides the copy's fate. A
    // corrupted copy still reaches the switch (and is rejected there), but
    // no ack is possible for it — keep retransmitting.
    if (!engine.deliver(slot, worker, stamps_[slot], values)) continue;
    if (delivered_before) ++stats_.duplicates_absorbed;
    delivered_before = true;

    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;
    }
    return true;
  }
  return false;
}

void AggregationSession::flush_pending_guarded(fault::FaultEngine& engine) {
  if (engine.pending() == 0) return;
  pisa::FpisaSwitch::GuardStats guard;
  switch_.add_batch_guarded(engine.slots(), engine.workers(),
                            engine.stamps(), engine.checksums(),
                            engine.values(), guard);
  stats_.faults.corrupt_rejected += guard.corrupt_rejected;
  stats_.faults.stale_dups_rejected += guard.stale_rejected;
  engine.clear_pending();
}

void AggregationSession::recover_wave(
    std::span<const std::span<const float>> workers, std::size_t base,
    std::size_t wave_end, std::size_t n, std::size_t wave_index,
    std::uint32_t dead_mask, fault::FaultEngine& engine) {
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t wave_n = wave_end - base;

  // Switch state loss: a generation bump means every register — including
  // this wave's partial sums — is gone. Resync the stamp mirror, then
  // replay the wave's adds from the host-held gradients over the reliable
  // control channel (the dedup bitmap absorbs any double replay).
  int replays = 0;
  while (switch_.generation() != mirror_generation_) {
    if (replays++ >= opts_.fault.max_wave_replays) {
      throw std::runtime_error(
          "switch state loss not recoverable within the wave-replay budget");
    }
    resync_stamps();
    stats_.faults.epoch_bumps++;
    pending_slots_.clear();
    pending_workers_.clear();
    pending_values_.clear();
    replay_stamps_.clear();
    replay_checksums_.clear();
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int w = 0; w < opts_.num_workers; ++w) {
        if (dead_mask & (1u << w)) continue;
        if (engine.worker_silent(w, wave_index)) continue;
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          lane_buf_[l] =
              i < n ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                    : 0;
        }
        pending_slots_.push_back(slot);
        pending_workers_.push_back(static_cast<std::uint8_t>(w));
        pending_values_.insert(pending_values_.end(), lane_buf_.begin(),
                               lane_buf_.end());
        replay_stamps_.push_back(stamps_[slot]);
        replay_checksums_.push_back(pisa::fpisa_checksum(
            slot, static_cast<std::uint8_t>(w), stamps_[slot], lane_buf_));
      }
    }
    pisa::FpisaSwitch::GuardStats guard;
    switch_.add_batch_guarded(pending_slots_, pending_workers_,
                              replay_stamps_, replay_checksums_,
                              pending_values_, guard);
    pending_slots_.clear();
    pending_workers_.clear();
    pending_values_.clear();
    stats_.faults.waves_replayed++;
  }

  // Wave deadline: every live worker must have its dedup bit set in every
  // wave slot by now (loss is retried to acknowledgment, so only a silent
  // worker can miss). A worker absent from ALL wave slots is dead.
  std::uint32_t expected = 0;
  for (int w = 0; w < opts_.num_workers; ++w) {
    if (!(dead_mask & (1u << w))) expected |= 1u << w;
  }
  wave_values_.resize(wave_n * lanes);
  bitmap_scratch_.resize(wave_n);
  switch_.read_batch(0, wave_n, {wave_values_.data(), wave_n * lanes},
                     bitmap_scratch_);
  std::uint32_t missing_everywhere = expected;
  for (std::size_t k = 0; k < wave_n; ++k) {
    missing_everywhere &= expected & ~bitmap_scratch_[k];
  }
  if (missing_everywhere != 0) {
    throw fault::WorkerDeadError(std::countr_zero(missing_everywhere),
                                 wave_index);
  }
}

void AggregationSession::run_guarded(
    std::span<const std::span<const float>> workers, std::span<float> result,
    fault::FaultEngine& engine, std::uint32_t dead_mask) {
  const std::size_t n = workers.front().size();
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t chunks = (n + lanes - 1) / lanes;
  std::fill(result.begin(), result.end(), 0.0f);

  std::size_t wave_index = 0;
  for (std::size_t base = 0; base < chunks; base += opts_.slots) {
    const std::size_t wave_end = std::min(base + opts_.slots, chunks);
    const std::size_t wave_n = wave_end - base;
    const Clock::time_point t_wave = Clock::now();
    engine.begin_wave(wave_index);  // releases last wave's ghosts first
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int w = 0; w < opts_.num_workers; ++w) {
        if (dead_mask & (1u << w)) continue;
        if (engine.worker_silent(w, wave_index)) continue;
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          lane_buf_[l] =
              i < n ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                    : 0;
        }
        if (!queue_add_guarded(slot, static_cast<std::uint8_t>(w), lane_buf_,
                               engine)) {
          flush_pending_guarded(engine);
          throw RetransmitExhaustedError(
              RetransmitExhaustedError::Phase::kAdd, slot, w);
        }
      }
    }
    engine.shuffle_pending();
    flush_pending_guarded(engine);
    if (engine.should_wipe(wave_index)) switch_.wipe_state();
    recover_wave(workers, base, wave_end, n, wave_index, dead_mask, engine);

    const Clock::time_point t_collect = Clock::now();
    collect_wave(base, wave_end, n, result);
    // Every wave slot was reset: advance the mirror epochs in lockstep.
    for (std::size_t k = 0; k < wave_n; ++k) {
      stamps_[k] = (stamps_[k] & 0xFFFF0000u) | ((stamps_[k] + 1) & 0xFFFFu);
    }
    note_wave(ns_between(t_wave, t_collect),
              ns_between(t_collect, Clock::now()));
    wave_index++;
  }
}

}  // namespace fpisa::switchml
