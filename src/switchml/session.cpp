#include "switchml/session.h"

#include <cassert>
#include <stdexcept>

#include "core/packed.h"

namespace fpisa::switchml {

AggregationSession::AggregationSession(pisa::SwitchConfig config,
                                       SessionOptions opts)
    : opts_(opts),
      switch_(config,
              [&] {
                pisa::FpisaProgramOptions p;
                p.variant = config.ext.rsaw ? core::Variant::kFull
                                            : core::Variant::kApproximate;
                p.lanes = opts.lanes;
                p.slots = opts.slots;
                p.num_workers = opts.num_workers;
                return p;
              }()),
      loss_rng_(opts.loss_seed) {
  assert(opts_.num_workers <= 32 && "bitmap is 32 bits wide");
}

bool AggregationSession::send_add(std::uint16_t slot, std::uint8_t worker,
                                  std::span<const std::uint32_t> values,
                                  pisa::FpisaResult* out) {
  bool delivered_before = false;
  for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats_.retransmissions;
    ++stats_.packets_sent;

    // Request direction.
    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;  // switch never saw it: retransmit after "timeout"
    }
    if (delivered_before) ++stats_.duplicates_absorbed;
    delivered_before = true;
    const pisa::FpisaResult r = switch_.add(slot, worker, values);

    // Response direction.
    if (loss_rng_.next_double() < opts_.loss_rate) {
      ++stats_.packets_lost;
      continue;  // ack lost: worker retransmits; switch dedups
    }
    *out = r;
    return true;
  }
  return false;
}

std::vector<float> AggregationSession::reduce(
    std::span<const std::vector<float>> workers) {
  assert(static_cast<int>(workers.size()) == opts_.num_workers);
  const std::size_t n = workers.front().size();
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t chunks = (n + lanes - 1) / lanes;
  std::vector<float> result(n, 0.0f);

  for (std::size_t base = 0; base < chunks; base += opts_.slots) {
    const std::size_t wave_end = std::min(base + opts_.slots, chunks);
    // All workers stream their packets for this wave of chunks.
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int w = 0; w < opts_.num_workers; ++w) {
        std::vector<std::uint32_t> vals(lanes, 0);
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          if (i < n) {
            vals[l] = core::fp32_bits(
                workers[static_cast<std::size_t>(w)][i]);
          }
        }
        pisa::FpisaResult r;
        if (!send_add(slot, static_cast<std::uint8_t>(w), vals, &r)) {
          throw std::runtime_error("aggregation packet exceeded retransmits");
        }
      }
    }
    // Collect + recycle every slot of the wave: an idempotent read
    // (retried until acknowledged), then a reset (extra resets re-clear an
    // already-empty slot, which is harmless once the value is captured).
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      pisa::FpisaResult read;
      bool have = false;
      for (int attempt = 0; attempt <= opts_.max_retransmits && !have;
           ++attempt) {
        ++stats_.packets_sent;
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        read = switch_.read(slot);
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        have = true;
      }
      if (!have) throw std::runtime_error("read packet exceeded retransmits");

      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t i = c * lanes + l;
        if (i < n) {
          result[i] =
              core::fp32_value(read.values[l]);
        }
      }

      bool cleared = false;
      for (int attempt = 0; attempt <= opts_.max_retransmits; ++attempt) {
        ++stats_.packets_sent;
        if (loss_rng_.next_double() < opts_.loss_rate) {
          ++stats_.packets_lost;
          continue;
        }
        (void)switch_.read_and_reset(slot);
        ++stats_.slot_reuses;
        cleared = true;
        if (loss_rng_.next_double() >= opts_.loss_rate) break;
        ++stats_.packets_lost;  // ack lost: re-clearing is harmless
      }
      if (!cleared) {
        // A never-reset slot would swallow the next wave's adds through the
        // dedup bitmap — fail loudly rather than aggregate silently wrong.
        throw std::runtime_error("reset packet exceeded retransmits");
      }
    }
  }
  return result;
}

}  // namespace fpisa::switchml
