// Gradient aggregation strategies (paper §5): the SwitchML fixed-point
// baseline (host-side quantization + per-chunk scaling-factor exchange) and
// the FPISA in-switch floating-point path, behind one interface so the ML
// substrate can swap them.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/accumulator.h"
#include "core/vector_accumulator.h"

namespace fpisa::switchml {

/// Sums equal-length gradient vectors. The primary entry point is the
/// zero-copy `reduce` over worker *views* (span-of-spans into
/// caller-owned storage — the collective layer's currency); the legacy
/// allocating `aggregate` is a thin adapter over it.
class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;
  virtual std::string_view name() const = 0;
  /// Sums `workers` element-wise into `out` (out.size() == view length).
  virtual void reduce(std::span<const std::span<const float>> workers,
                      std::span<float> out) = 0;
  /// Legacy allocating form: materializes views over `workers` (never the
  /// gradients themselves) and forwards to reduce().
  std::vector<float> aggregate(std::span<const std::vector<float>> workers);
};

/// Double-precision reference (what an ideal aggregator would produce).
class ExactAggregator final : public GradientAggregator {
 public:
  std::string_view name() const override { return "exact"; }
  void reduce(std::span<const std::span<const float>> workers,
              std::span<float> out) override;
};

/// Host-side FP32 summation — the paper's "default addition" baseline.
class FloatSumAggregator final : public GradientAggregator {
 public:
  std::string_view name() const override { return "fp32-host"; }
  void reduce(std::span<const std::span<const float>> workers,
              std::span<float> out) override;
};

/// Host-side summation carried out in an arbitrary packed format (e.g.
/// FP16): every partial sum is re-encoded, modeling low-precision hosts.
class PackedSumAggregator final : public GradientAggregator {
 public:
  explicit PackedSumAggregator(const core::FloatFormat& fmt) : fmt_(&fmt) {}
  std::string_view name() const override { return "packed-host"; }
  void reduce(std::span<const std::span<const float>> workers,
              std::span<float> out) override;

 private:
  const core::FloatFormat* fmt_;
};

/// SwitchML: per-chunk scaling factor from the global max exponent (the
/// extra communication round the paper charges it for), int32 quantization
/// on hosts, integer addition in the switch, dequantization on hosts.
class SwitchMlAggregator final : public GradientAggregator {
 public:
  explicit SwitchMlAggregator(std::size_t chunk_elements = 256)
      : chunk_(chunk_elements) {}

  std::string_view name() const override { return "switchml-int"; }
  void reduce(std::span<const std::span<const float>> workers,
              std::span<float> out) override;

  /// One per chunk: the exponent-exchange round trips the protocol needs.
  std::uint64_t extra_round_trips() const { return round_trips_; }

 private:
  std::size_t chunk_;
  std::uint64_t round_trips_ = 0;
};

/// FPISA in-switch aggregation: values stream to the switch as native FP
/// (any supported format), accumulated by the decomposed representation.
/// Uses the core reference implementation, which is bit-identical to the
/// pisa switch program (proven in tests/test_pisa_fpisa_program.cpp).
class FpisaAggregator final : public GradientAggregator {
 public:
  explicit FpisaAggregator(core::AccumulatorConfig cfg = {}) : cfg_(cfg) {}

  std::string_view name() const override {
    return cfg_.variant == core::Variant::kFull ? "fpisa" : "fpisa-a";
  }
  void reduce(std::span<const std::span<const float>> workers,
              std::span<float> out) override;

  /// Pooled error-event counters across all aggregate() calls (Fig 8's
  /// overwrite / left-shift / rounding taxonomy).
  const core::OpCounters& counters() const { return counters_; }

 private:
  core::AccumulatorConfig cfg_;
  core::OpCounters counters_{};
};

}  // namespace fpisa::switchml
