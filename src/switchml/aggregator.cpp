#include "switchml/aggregator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/packed.h"

namespace fpisa::switchml {

std::vector<float> GradientAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  assert(!workers.empty());
  const std::vector<std::span<const float>> views(workers.begin(),
                                                  workers.end());
  std::vector<float> out(workers.front().size());
  reduce(views, out);
  return out;
}

void ExactAggregator::reduce(std::span<const std::span<const float>> workers,
                             std::span<float> out) {
  assert(!workers.empty());
  std::vector<double> acc(out.size(), 0.0);
  for (const auto w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc[i] += static_cast<double>(w[i]);
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = static_cast<float>(acc[i]);
  }
}

void FloatSumAggregator::reduce(
    std::span<const std::span<const float>> workers, std::span<float> out) {
  assert(!workers.empty());
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) out[i] += w[i];
  }
}

void PackedSumAggregator::reduce(
    std::span<const std::span<const float>> workers, std::span<float> out) {
  assert(!workers.empty());
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      // Quantize the operand and the running sum to the packed format, as
      // a low-precision host pipeline would.
      const double vq = core::decode(core::encode(w[i], *fmt_), *fmt_);
      const double sum = static_cast<double>(out[i]) + vq;
      out[i] =
          static_cast<float>(core::decode(core::encode(sum, *fmt_), *fmt_));
    }
  }
}

void SwitchMlAggregator::reduce(
    std::span<const std::span<const float>> workers, std::span<float> out) {
  assert(!workers.empty());
  const std::size_t n = out.size();
  const auto w_count = static_cast<double>(workers.size());
  std::fill(out.begin(), out.end(), 0.0f);

  for (std::size_t base = 0; base < n; base += chunk_) {
    const std::size_t end = std::min(base + chunk_, n);

    // Round 1: exchange chunk max-magnitude so everyone picks the same
    // scaling factor (the protocol overhead FPISA removes).
    ++round_trips_;
    float max_abs = 0.0f;
    for (const auto w : workers) {
      for (std::size_t i = base; i < end; ++i) {
        max_abs = std::max(max_abs, std::fabs(w[i]));
      }
    }
    if (max_abs == 0.0f) continue;

    // Scale so worker-count times the max cannot overflow int32.
    int max_exp = 0;
    (void)std::frexp(max_abs, &max_exp);
    const int worker_bits =
        static_cast<int>(std::ceil(std::log2(w_count))) + 1;
    const int shift = 30 - max_exp - worker_bits;

    // Round 2: quantize on hosts, integer-add "in the switch", dequantize.
    for (std::size_t i = base; i < end; ++i) {
      std::int64_t acc = 0;
      for (const auto w : workers) {
        acc += static_cast<std::int64_t>(
            std::llrint(std::ldexp(static_cast<double>(w[i]), shift)));
      }
      out[i] = static_cast<float>(std::ldexp(static_cast<double>(acc), -shift));
    }
  }
}

void FpisaAggregator::reduce(std::span<const std::span<const float>> workers,
                             std::span<float> out) {
  counters_ += core::aggregate_into(workers, out, cfg_);
}

}  // namespace fpisa::switchml
