#include "switchml/aggregator.h"

#include <cassert>
#include <cmath>

#include "core/packed.h"

namespace fpisa::switchml {

std::vector<float> ExactAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  assert(!workers.empty());
  std::vector<double> acc(workers.front().size(), 0.0);
  for (const auto& w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      acc[i] += static_cast<double>(w[i]);
    }
  }
  std::vector<float> out(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    out[i] = static_cast<float>(acc[i]);
  }
  return out;
}

std::vector<float> FloatSumAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  assert(!workers.empty());
  std::vector<float> acc(workers.front().size(), 0.0f);
  for (const auto& w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) acc[i] += w[i];
  }
  return acc;
}

std::vector<float> PackedSumAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  assert(!workers.empty());
  std::vector<float> acc(workers.front().size(), 0.0f);
  for (const auto& w : workers) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      // Quantize the operand and the running sum to the packed format, as
      // a low-precision host pipeline would.
      const double vq = core::decode(core::encode(w[i], *fmt_), *fmt_);
      const double sum = static_cast<double>(acc[i]) + vq;
      acc[i] = static_cast<float>(core::decode(core::encode(sum, *fmt_), *fmt_));
    }
  }
  return acc;
}

std::vector<float> SwitchMlAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  assert(!workers.empty());
  const std::size_t n = workers.front().size();
  const auto w_count = static_cast<double>(workers.size());
  std::vector<float> out(n, 0.0f);

  for (std::size_t base = 0; base < n; base += chunk_) {
    const std::size_t end = std::min(base + chunk_, n);

    // Round 1: exchange chunk max-magnitude so everyone picks the same
    // scaling factor (the protocol overhead FPISA removes).
    ++round_trips_;
    float max_abs = 0.0f;
    for (const auto& w : workers) {
      for (std::size_t i = base; i < end; ++i) {
        max_abs = std::max(max_abs, std::fabs(w[i]));
      }
    }
    if (max_abs == 0.0f) continue;

    // Scale so worker-count times the max cannot overflow int32.
    int max_exp = 0;
    (void)std::frexp(max_abs, &max_exp);
    const int worker_bits =
        static_cast<int>(std::ceil(std::log2(w_count))) + 1;
    const int shift = 30 - max_exp - worker_bits;

    // Round 2: quantize on hosts, integer-add "in the switch", dequantize.
    for (std::size_t i = base; i < end; ++i) {
      std::int64_t acc = 0;
      for (const auto& w : workers) {
        acc += static_cast<std::int64_t>(
            std::llrint(std::ldexp(static_cast<double>(w[i]), shift)));
      }
      out[i] = static_cast<float>(std::ldexp(static_cast<double>(acc), -shift));
    }
  }
  return out;
}

std::vector<float> FpisaAggregator::aggregate(
    std::span<const std::vector<float>> workers) {
  const core::AggregateResult r = core::aggregate(workers, cfg_);
  counters_ += r.counters;
  return r.sum;
}

}  // namespace fpisa::switchml
