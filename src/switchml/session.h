// Packet-level in-network aggregation session (paper §5 / SwitchML §4):
// a vector is chunked across aggregation slots; every worker sends one
// packet per (chunk, slot); the switch aggregates and the packet that
// completes a slot's bitmap carries the result back. Lost packets are
// retransmitted after a timeout; the switch's worker bitmap makes
// retransmissions idempotent (dedup), and slots are reused round-robin via
// read-and-reset once their result is collected.
//
// This drives the REAL pisa::FpisaSwitch pipeline — it is the end-to-end
// integration of parser, MAUs, stateful ALUs and deparser, with failure
// injection for the loss-recovery path.
//
// Two datapaths, identical in every observable (results, stats, switch
// register evolution — proven in tests/test_switchml_session.cpp):
//  * batched (default): a whole wave of chunk packets is encoded into
//    reused flat buffers and applied through FpisaSwitch::add_batch, and
//    the wave's collect phase drains every slot through ONE
//    read_and_reset_batch call (the compiled egress); loss is drawn up
//    front in the exact per-packet order, so the loss schedule and
//    statistics match the per-packet path bit-for-bit.
//  * per-packet: one simulator traversal per packet (the reference).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/accumulator.h"
#include "fault/fault.h"
#include "pisa/fpisa_program.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace fpisa::switchml {

struct SessionOptions {
  int num_workers = 4;
  std::size_t slots = 64;        ///< aggregation slots in the switch
  int lanes = 1;                 ///< FP values per packet
  double loss_rate = 0.0;        ///< probability a packet (either way) drops
  std::uint64_t loss_seed = 1;
  int max_retransmits = 64;      ///< per packet, before giving up
  /// Batched fast paths (add_batch waves + read_and_reset_batch collects)
  /// vs the per-packet reference protocol. Identical observables.
  bool batched = true;
  /// Byzantine-wire fault injection + the guarded recovery protocol
  /// (epoch-stamped, checksummed adds; wave replay; dead-worker policy).
  /// Requires the batched datapath.
  fault::FaultOptions fault;
};

/// A packet exhausted its retransmit budget: the protocol cannot make
/// progress without risking a silently wrong aggregate. Carries which
/// protocol phase gave up and the slot/worker context, like ShardDeadError
/// carries the shard (worker is -1 for the read/reset phases, which are
/// not worker-specific).
class RetransmitExhaustedError : public std::runtime_error {
 public:
  enum class Phase { kAdd, kRead, kReset };
  RetransmitExhaustedError(Phase phase, std::uint16_t slot, int worker)
      : std::runtime_error(
            std::string(phase == Phase::kAdd
                            ? "aggregation packet exceeded retransmits"
                        : phase == Phase::kRead
                            ? "read packet exceeded retransmits"
                            : "reset packet exceeded retransmits") +
            " (slot " + std::to_string(slot) +
            (worker >= 0 ? ", worker " + std::to_string(worker) : "") + ")"),
        phase_(phase),
        slot_(slot),
        worker_(worker) {}
  Phase phase() const { return phase_; }
  std::uint16_t slot() const { return slot_; }
  int worker() const { return worker_; }

 private:
  Phase phase_;
  std::uint16_t slot_;
  int worker_;
};

struct SessionStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_absorbed = 0;  ///< dedup hits at the switch
  std::uint64_t slot_reuses = 0;
  // Failover accounting (cluster fabric; zero on single-switch sessions).
  std::uint64_t shard_failures = 0;   ///< shards declared dead serving this
  std::uint64_t chunks_rerouted = 0;  ///< chunks re-homed onto survivors
  std::uint64_t failover_retries = 0; ///< clean retry passes run
  /// Byzantine-fault injection/recovery books (zero with faults disabled).
  fault::FaultCounters faults{};
  /// Bitmask of workers declared dead while serving this. A monotone mask,
  /// not a count: several shards may each declare the same worker dead, and
  /// kMean-over-survivors needs the distinct-worker population.
  std::uint32_t dead_workers = 0;
  /// Per-MAU kernel operation counts (§5.2.1 taxonomy), carried through
  /// every merge so table-level accounting survives aggregation end to
  /// end. Populated where a layer exclusively owns its switch (sessions,
  /// cluster per-shard books); zero where attribution is ambiguous
  /// (concurrent jobs sharing switches).
  core::OpCounters ops{};

  /// Centralized merge (cluster/shard/tenant accounting all use this).
  SessionStats& operator+=(const SessionStats& o) {
    packets_sent += o.packets_sent;
    packets_lost += o.packets_lost;
    retransmissions += o.retransmissions;
    duplicates_absorbed += o.duplicates_absorbed;
    slot_reuses += o.slot_reuses;
    shard_failures += o.shard_failures;
    chunks_rerouted += o.chunks_rerouted;
    failover_retries += o.failover_retries;
    faults += o.faults;
    dead_workers |= o.dead_workers;
    ops += o.ops;
    return *this;
  }
  /// Delta against an earlier snapshot of the same cumulative stats (used
  /// to attribute one reduce out of a long-lived session's running total).
  SessionStats& operator-=(const SessionStats& o) {
    packets_sent -= o.packets_sent;
    packets_lost -= o.packets_lost;
    retransmissions -= o.retransmissions;
    duplicates_absorbed -= o.duplicates_absorbed;
    slot_reuses -= o.slot_reuses;
    shard_failures -= o.shard_failures;
    chunks_rerouted -= o.chunks_rerouted;
    failover_retries -= o.failover_retries;
    faults -= o.faults;
    // Delta semantics for a monotone mask: keep only the workers that died
    // after the `o` snapshot was taken.
    dead_workers &= ~o.dead_workers;
    ops -= o.ops;
    return *this;
  }
};

/// Outcome of drawing a wave's collect (read + reset) loss schedule in the
/// per-packet protocol order, without touching the switch.
struct CollectSchedule {
  std::uint64_t delivered = 0;  ///< switch traversals the schedule implies
  std::size_t cleared = 0;      ///< prefix of slots whose reset was delivered
  int failure = 0;              ///< 0: none, 1: read failed, 2: reset failed
};

/// Draws the per-slot read/reset retry schedule for `n` slots exactly as
/// the per-slot collect loop would — same rng draw order, same
/// packets_sent / packets_lost / slot_reuses counting. Reads are
/// idempotent and re-clearing an already-reset slot is a no-op, so ONE
/// physical read-and-reset per fully-collected slot (the `cleared`
/// prefix) plus `delivered` accounted traversals reproduces the per-slot
/// protocol's register evolution and packet accounting exactly. Shared by
/// AggregationSession and cluster::AggregationService so the two batched
/// collect paths cannot drift apart.
CollectSchedule draw_collect_schedule(std::size_t n, double loss_rate,
                                      int max_retransmits, util::Rng& rng,
                                      SessionStats& stats);

/// Aggregates `workers` equal-length FP32 vectors through a switch,
/// packet by packet, tolerating packet loss. Returns the aggregated sum.
class AggregationSession {
 public:
  AggregationSession(pisa::SwitchConfig config, SessionOptions opts);

  /// Zero-copy reduce over worker views (span-of-spans into caller-owned
  /// storage): the sum lands in `out` (out.size() == view length).
  void reduce_into(std::span<const std::span<const float>> workers,
                   std::span<float> out);
  /// Legacy allocating form — materializes views (never the gradients) and
  /// forwards to reduce_into.
  std::vector<float> reduce(std::span<const std::vector<float>> workers);

  /// Cumulative protocol stats; `.ops` reflects the owned switch's kernel
  /// operation counters at call time (the session has exclusive access).
  const SessionStats& stats() const {
    stats_.ops = switch_.op_counters();
    return stats_;
  }
  pisa::FpisaSwitch& fpisa_switch() { return switch_; }

  /// Wall time split between the add (scatter) and collect (read+reset)
  /// protocol phases across all reduces — the same currency the cluster
  /// service exposes, here for the single-switch backend.
  telemetry::PhaseBreakdown phase_breakdown() const {
    return {static_cast<double>(add_ns_) / 1e9,
            static_cast<double>(collect_ns_) / 1e9};
  }

 private:
  /// Sends one worker's packet for a chunk; applies loss on both
  /// directions; returns the switch's response if it survived.
  bool send_add(std::uint16_t slot, std::uint8_t worker,
                std::span<const std::uint32_t> values,
                pisa::FpisaResult* out);
  /// Batched flavor: draws the identical loss schedule but queues every
  /// delivered copy into the pending batch instead of touching the switch.
  bool queue_add(std::uint16_t slot, std::uint8_t worker,
                 std::span<const std::uint32_t> values);
  void flush_pending();
  /// Batched collect: draws the per-slot read/reset loss schedules in the
  /// per-packet order, then drains the wave's slots [0, wave size) through
  /// one read_and_reset_batch call and scatters the values into `result`.
  /// Throws exactly where (and with the state) the per-slot loop would.
  void collect_wave(std::size_t base, std::size_t wave_end, std::size_t n,
                    std::span<float> result);

  // --- Byzantine-fault guarded protocol (opts_.fault.enabled only) -------
  /// One attempt at the whole job with the given survivor set; throws
  /// WorkerDeadError when a worker misses a wave deadline.
  void run_guarded(std::span<const std::span<const float>> workers,
                   std::span<float> result, fault::FaultEngine& engine,
                   std::uint32_t dead_mask);
  /// queue_add through the fault engine: delivered copies are handed to
  /// deliver(), which may corrupt / duplicate / hold them back as ghosts.
  bool queue_add_guarded(std::uint16_t slot, std::uint8_t worker,
                         std::span<const std::uint32_t> values,
                         fault::FaultEngine& engine);
  /// Drains the engine's pending batch through add_batch_guarded and folds
  /// the guard's rejection counts into stats_.faults.
  void flush_pending_guarded(fault::FaultEngine& engine);
  /// Post-add wave recovery: detect switch state loss (generation bump) and
  /// replay the wave from the host-held gradients; then enforce the wave
  /// deadline — a worker whose bit is clear in every wave slot is dead.
  void recover_wave(std::span<const std::span<const float>> workers,
                    std::size_t base, std::size_t wave_end, std::size_t n,
                    std::size_t wave_index, std::uint32_t dead_mask,
                    fault::FaultEngine& engine);
  /// Re-reads every slot's epoch/generation stamp from the switch's
  /// control plane into the host mirror.
  void resync_stamps();

  void init_metrics();
  /// Accumulates one wave's timings and pushes stats deltas to the registry.
  void note_wave(std::uint64_t add_ns, std::uint64_t collect_ns);

  SessionOptions opts_;
  pisa::FpisaSwitch switch_;
  util::Rng loss_rng_;
  mutable SessionStats stats_{};  ///< mutable: stats() refreshes .ops

  std::uint64_t add_ns_ = 0;      ///< add-phase wall time across reduces
  std::uint64_t collect_ns_ = 0;  ///< collect-phase wall time
  SessionStats stats_flushed_{};  ///< registry high-water marks
  telemetry::Counter* m_waves_ = nullptr;
  telemetry::Counter* m_retrans_ = nullptr;
  telemetry::Counter* m_lost_ = nullptr;
  telemetry::Histogram* m_phase_[2] = {};  ///< [0]=add, [1]=collect

  // Reused across waves: zero steady-state allocation on the hot path.
  std::vector<std::uint16_t> pending_slots_;
  std::vector<std::uint8_t> pending_workers_;
  std::vector<std::uint32_t> pending_values_;
  std::vector<std::uint32_t> lane_buf_;
  std::vector<std::uint32_t> wave_values_;  ///< batched collect results
  pisa::FpisaResult result_buf_;

  // Guarded-protocol state (touched only when opts_.fault.enabled).
  std::vector<std::uint32_t> stamps_;       ///< host mirror of slot stamps
  std::uint16_t mirror_generation_ = 0;
  std::vector<std::uint32_t> bitmap_scratch_;   ///< wave-deadline probe
  std::vector<std::uint32_t> replay_stamps_;    ///< wave-replay batch
  std::vector<std::uint16_t> replay_checksums_;
};

}  // namespace fpisa::switchml
