// Packet-level in-network aggregation session (paper §5 / SwitchML §4):
// a vector is chunked across aggregation slots; every worker sends one
// packet per (chunk, slot); the switch aggregates and the packet that
// completes a slot's bitmap carries the result back. Lost packets are
// retransmitted after a timeout; the switch's worker bitmap makes
// retransmissions idempotent (dedup), and slots are reused round-robin via
// read-and-reset once their result is collected.
//
// This drives the REAL pisa::FpisaSwitch pipeline packet by packet — it is
// the end-to-end integration of parser, MAUs, stateful ALUs and deparser,
// with failure injection for the loss-recovery path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pisa/fpisa_program.h"
#include "util/rng.h"

namespace fpisa::switchml {

struct SessionOptions {
  int num_workers = 4;
  std::size_t slots = 64;        ///< aggregation slots in the switch
  int lanes = 1;                 ///< FP values per packet
  double loss_rate = 0.0;        ///< probability a packet (either way) drops
  std::uint64_t loss_seed = 1;
  int max_retransmits = 64;      ///< per packet, before giving up
};

struct SessionStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_absorbed = 0;  ///< dedup hits at the switch
  std::uint64_t slot_reuses = 0;
};

/// Aggregates `workers` equal-length FP32 vectors through a switch,
/// packet by packet, tolerating packet loss. Returns the aggregated sum.
class AggregationSession {
 public:
  AggregationSession(pisa::SwitchConfig config, SessionOptions opts);

  std::vector<float> reduce(std::span<const std::vector<float>> workers);

  const SessionStats& stats() const { return stats_; }
  pisa::FpisaSwitch& fpisa_switch() { return switch_; }

 private:
  /// Sends one worker's packet for a chunk; applies loss on both
  /// directions; returns the switch's response if it survived.
  bool send_add(std::uint16_t slot, std::uint8_t worker,
                std::span<const std::uint32_t> values,
                pisa::FpisaResult* out);

  SessionOptions opts_;
  pisa::FpisaSwitch switch_;
  util::Rng loss_rng_;
  SessionStats stats_{};
};

}  // namespace fpisa::switchml
