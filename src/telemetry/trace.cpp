#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>

namespace fpisa::telemetry {
namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string human_duration(std::int64_t ns) {
  char buf[32];
  if (ns < 0) {
    return "(open)";
  } else if (ns < 10'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

int Trace::thread_index_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int idx = static_cast<int>(tids_.size());
  tids_.emplace(id, idx);
  return idx;
}

Trace::SpanId Trace::begin(std::string name, SpanId parent) {
  return begin_at(std::move(name), parent, Clock::now());
}

Trace::SpanId Trace::begin_at(std::string name, SpanId parent,
                              Clock::time_point t) {
  util::LockGuard lk(mu_);
  Span s;
  s.name = std::move(name);
  s.parent = parent;
  s.seq = next_seq_++;
  s.start_ns = rel_ns(t);
  s.tid = thread_index_locked(std::this_thread::get_id());
  spans_.push_back(std::move(s));
  return spans_.size();  // 1-based
}

void Trace::end(SpanId id) { end_at(id, Clock::now()); }

void Trace::end_at(SpanId id, Clock::time_point t) {
  if (id == kNone) return;
  util::LockGuard lk(mu_);
  if (id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (s.end_ns >= 0) return;  // already closed
  s.end_ns = std::max(s.start_ns, rel_ns(t));
}

void Trace::annotate(SpanId id, std::string key, std::string value) {
  if (id == kNone) return;
  util::LockGuard lk(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].args.emplace_back(std::move(key), std::move(value));
}

std::size_t Trace::size() const {
  util::LockGuard lk(mu_);
  return spans_.size();
}

std::vector<Trace::SpanView> Trace::spans() const {
  util::LockGuard lk(mu_);
  std::vector<SpanView> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    SpanView v;
    v.name = s.name;
    v.id = i + 1;
    v.parent = s.parent;
    v.seq = s.seq;
    v.start_ns = s.start_ns;
    v.dur_ns = s.end_ns < 0 ? -1 : s.end_ns - s.start_ns;
    v.tid = s.tid;
    v.args = s.args;
    out.push_back(std::move(v));
  }
  return out;
}

double Trace::total_seconds_of(std::string_view name) const {
  util::LockGuard lk(mu_);
  double total = 0;
  for (const Span& s : spans_) {
    if (s.name == name && s.end_ns >= 0) {
      total += static_cast<double>(s.end_ns - s.start_ns) / 1e9;
    }
  }
  return total;
}

std::string Trace::tree() const {
  const std::vector<SpanView> all = spans();
  // children in open order under each parent (0 = roots)
  std::vector<std::vector<std::size_t>> children(all.size() + 1);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SpanId p = all[i].parent <= all.size() ? all[i].parent : kNone;
    children[p].push_back(i);
  }
  std::string out;
  // iterative DFS to keep arbitrarily deep failover-retry trees safe
  std::vector<std::pair<std::size_t, int>> stack;  // (span index, depth)
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [i, depth] = stack.back();
    stack.pop_back();
    const SpanView& s = all[i];
    out += std::string(static_cast<std::size_t>(depth) * 2, ' ');
    out += s.name;
    out += "  ";
    out += human_duration(s.dur_ns);
    if (!s.args.empty()) {
      out += "  [";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        if (a) out += " ";
        out += s.args[a].first + "=" + s.args[a].second;
      }
      out += "]";
    }
    out += "\n";
    for (auto it = children[s.id].rbegin(); it != children[s.id].rend();
         ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

std::string Trace::chrome_trace_json() const {
  const std::vector<SpanView> all = spans();
  // Open spans render with the latest timestamp seen anywhere in the
  // trace, so a crashed job still produces a loadable file.
  std::int64_t latest_ns = 0;
  for (const SpanView& s : all) {
    latest_ns = std::max(latest_ns, s.start_ns);
    if (s.dur_ns >= 0) latest_ns = std::max(latest_ns, s.start_ns + s.dur_ns);
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanView& s : all) {
    if (!first) out += ",";
    first = false;
    const std::int64_t dur_ns =
        s.dur_ns >= 0 ? s.dur_ns : std::max<std::int64_t>(0, latest_ns - s.start_ns);
    char num[64];
    out += "{\"ph\":\"X\",\"name\":\"" + escape_json(s.name) + "\"";
    std::snprintf(num, sizeof num, ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(dur_ns) / 1e3);
    out += num;
    out += ",\"pid\":1,\"tid\":" + std::to_string(s.tid);
    out += ",\"cat\":\"fpisa\",\"args\":{";
    out += "\"span_id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent);
    for (const auto& [k, v] : s.args) {
      out += ",\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace fpisa::telemetry
