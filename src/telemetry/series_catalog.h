#pragma once

// Central catalog of every metric series name the stack registers.
//
// This is the single source of truth for series naming: scripts/
// lint_static.py cross-checks every name passed to
// MetricsRegistry::counter/gauge/histogram in src/ against this list (both
// directions — an unregistered catalog entry is as much drift as an
// uncataloged registration), and scripts/lint_telemetry.py fails a scrape
// that exposes a series missing from it. A pasted-and-drifted metric name
// breaks CI instead of silently forking a time series.
//
// Keep entries sorted by name within each section.

#include <array>
#include <string_view>

namespace fpisa::telemetry::series {

// cluster: the sharded aggregation service (src/cluster/).
inline constexpr std::string_view kClusterFailoverChunksRerouted =
    "cluster_failover_chunks_rerouted_total";
inline constexpr std::string_view kClusterFailoverRetries =
    "cluster_failover_retries_total";
inline constexpr std::string_view kClusterFailoverShardDeaths =
    "cluster_failover_shard_deaths_total";
inline constexpr std::string_view kClusterFaultEpochBumps =
    "cluster_fault_epoch_bumps_total";
inline constexpr std::string_view kClusterFaultWavesReplayed =
    "cluster_fault_waves_replayed_total";
inline constexpr std::string_view kClusterFaultWorkersDeclaredDead =
    "cluster_fault_workers_declared_dead_total";
inline constexpr std::string_view kClusterJobQueueDepth =
    "cluster_job_queue_depth";
inline constexpr std::string_view kClusterJobWallSeconds =
    "cluster_job_wall_seconds";
inline constexpr std::string_view kClusterJobs = "cluster_jobs_total";
inline constexpr std::string_view kClusterMailboxEnqueued =
    "cluster_mailbox_enqueued";
inline constexpr std::string_view kClusterMailboxSpuriousWakeups =
    "cluster_mailbox_spurious_wakeups";
inline constexpr std::string_view kClusterMailboxWakeups =
    "cluster_mailbox_wakeups";
inline constexpr std::string_view kClusterShardPhaseSeconds =
    "cluster_shard_phase_seconds";

// collective: the unified Communicator surface (src/collective/).
inline constexpr std::string_view kCollectiveAllreduceSeconds =
    "collective_allreduce_seconds";
inline constexpr std::string_view kCollectiveAllreduces =
    "collective_allreduces_total";

// fpisa_switch: the simulated switch datapath (src/pisa/).
inline constexpr std::string_view kSwitchCorruptRejected =
    "fpisa_switch_corrupt_rejected_total";
inline constexpr std::string_view kSwitchDedupHits =
    "fpisa_switch_dedup_hits_total";
inline constexpr std::string_view kSwitchOccupiedSlots =
    "fpisa_switch_occupied_slots";
inline constexpr std::string_view kSwitchOps = "fpisa_switch_ops_total";
inline constexpr std::string_view kSwitchPackets =
    "fpisa_switch_packets_total";
inline constexpr std::string_view kSwitchStaleDupsRejected =
    "fpisa_switch_stale_dups_rejected_total";

// qos: admission control + class scheduler (src/qos/).
inline constexpr std::string_view kQosAdmissionQueueDepth =
    "qos_admission_queue_depth";
inline constexpr std::string_view kQosJobsAdmitted = "qos_jobs_admitted_total";
inline constexpr std::string_view kQosJobsRejected = "qos_jobs_rejected_total";
inline constexpr std::string_view kQosSchedPicks = "qos_sched_picks_total";

// switchml: the per-session packet protocol (src/switchml/).
inline constexpr std::string_view kSessionPacketsLost =
    "switchml_session_packets_lost_total";
inline constexpr std::string_view kSessionPhaseSeconds =
    "switchml_session_phase_seconds";
inline constexpr std::string_view kSessionRetransmissions =
    "switchml_session_retransmissions_total";
inline constexpr std::string_view kSessionWaves =
    "switchml_session_waves_total";

// tree: the ToR→spine hierarchy (src/cluster/hierarchy.cpp).
inline constexpr std::string_view kTreeAliveLeaves = "tree_alive_leaves";
inline constexpr std::string_view kTreeLevelSeconds = "tree_level_seconds";
inline constexpr std::string_view kTreePackets = "tree_packets_total";
inline constexpr std::string_view kTreeReduces = "tree_reduces_total";
inline constexpr std::string_view kTreeWireBytes = "tree_wire_bytes_total";

/// Every series above, for programmatic cross-checks.
inline constexpr std::array<std::string_view, 34> kAll = {
    kClusterFailoverChunksRerouted,
    kClusterFailoverRetries,
    kClusterFailoverShardDeaths,
    kClusterFaultEpochBumps,
    kClusterFaultWavesReplayed,
    kClusterFaultWorkersDeclaredDead,
    kClusterJobQueueDepth,
    kClusterJobWallSeconds,
    kClusterJobs,
    kClusterMailboxEnqueued,
    kClusterMailboxSpuriousWakeups,
    kClusterMailboxWakeups,
    kClusterShardPhaseSeconds,
    kCollectiveAllreduceSeconds,
    kCollectiveAllreduces,
    kSwitchCorruptRejected,
    kSwitchDedupHits,
    kSwitchOccupiedSlots,
    kSwitchOps,
    kSwitchPackets,
    kSwitchStaleDupsRejected,
    kQosAdmissionQueueDepth,
    kQosJobsAdmitted,
    kQosJobsRejected,
    kQosSchedPicks,
    kSessionPacketsLost,
    kSessionPhaseSeconds,
    kSessionRetransmissions,
    kSessionWaves,
    kTreeAliveLeaves,
    kTreeLevelSeconds,
    kTreePackets,
    kTreeReduces,
    kTreeWireBytes,
};

}  // namespace fpisa::telemetry::series
