// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms addressed by name + label set (tenant, shard, backend,
// phase...). Built for a threaded aggregation fabric:
//
//  * Registration (name/label resolution) happens once, under a mutex, and
//    hands back a stable handle. Layers register at construction time and
//    keep the pointer — the hot path never touches a map or a string.
//  * Counter increments are lock-free relaxed atomics over per-thread
//    striped cells (folded on read), so two shard workers bumping the same
//    counter never bounce one cache line.
//  * Histograms use explicit ascending upper bounds with Prometheus `le`
//    semantics: a sample lands in the FIRST bucket whose upper bound is
//    >= the value (boundaries are inclusive), overflow in the implicit
//    +Inf bucket. Bucket counts are exported cumulatively, like the
//    Prometheus text format expects.
//  * Exposition: snapshot() returns a structured object; the snapshot
//    renders as a Prometheus-style text dump or a JSON object (which
//    util::BenchJson embeds so BENCH_*.json carries metric state).
//
// A global kill switch (set_enabled) turns every mutation into a relaxed
// load + branch, so benches can measure the instrumented datapath against
// a telemetry-off run. Handles stay valid either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

namespace fpisa::telemetry {

/// Label set: (key, value) pairs. Registration canonicalizes (sorts by
/// key), so {a=1,b=2} and {b=2,a=1} address the same metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Global kill switch (default on). When off, every inc/set/observe is a
/// relaxed load + branch and no state changes; events that occur while
/// disabled are simply not recorded.
void set_enabled(bool on);
bool enabled();

/// Add/collect phase wall-time split, the shape AggregationService has
/// exposed since PR 3 — now the uniform phase-timing currency of the whole
/// stack (every collective backend reports one; the cluster's is a view
/// over this registry's histograms).
struct PhaseBreakdown {
  double add_s = 0;
  double collect_s = 0;
};

/// Monotone counter. Increments are relaxed atomic adds on a per-thread
/// striped cell; value() folds the stripes.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void inc(std::uint64_t n = 1);
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Point-in-time value (queue depth, register occupancy, ...).
class Gauge {
 public:
  void set(double v);
  void add(double delta);  ///< atomic read-modify-write
  double value() const;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with inclusive upper bounds (`le` semantics) and
/// an implicit +Inf overflow bucket. Tracks count and sum as well, so the
/// sum over a phase histogram IS that phase's cumulative wall time.
class Histogram {
 public:
  void observe(double v);

  /// Buckets including the +Inf overflow bucket.
  std::size_t num_buckets() const { return bounds_.size() + 1; }
  /// Upper bound of bucket i; the last bucket reports +infinity.
  double upper_bound(std::size_t i) const;
  /// Non-cumulative per-bucket count.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::span<const double> bounds);
  std::vector<double> bounds_;  ///< ascending, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --- snapshot --------------------------------------------------------------

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::vector<double> bounds;        ///< finite upper bounds
  std::vector<std::uint64_t> counts; ///< per-bucket, bounds.size()+1 entries
  std::uint64_t count = 0;
  double sum = 0;
};

/// Structured point-in-time view of a registry. Samples are ordered by
/// (name, canonical label string), so two snapshots of the same registry
/// line up row for row.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Subset whose label set contains (key, value).
  Snapshot with_label(std::string_view key, std::string_view value) const;
  /// Sum of every counter named `name` whose labels contain all of
  /// `subset` (empty subset matches all). 0 when none match.
  std::uint64_t counter_total(std::string_view name,
                              const Labels& subset = {}) const;
  /// Prometheus text exposition format (# TYPE lines, label escaping,
  /// cumulative `le` buckets + _sum/_count for histograms).
  std::string prometheus_text() const;
  /// JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string json() const;
};

// --- registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  /// Find-or-create. Handles are stable for the registry's lifetime; a
  /// name+labels key re-registered as a different metric kind (or a
  /// histogram with different bounds) throws std::logic_error.
  Counter& counter(std::string_view name, Labels labels = {})
      FPISA_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, Labels labels = {}) FPISA_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, Labels labels,
                       std::span<const double> bounds) FPISA_EXCLUDES(mu_);

  Snapshot snapshot() const FPISA_EXCLUDES(mu_);

  /// Exponential wall-time bounds (seconds) shared by the stack's phase /
  /// job-wall histograms: 1us .. ~8s in powers of 4.
  static std::span<const double> time_buckets();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& resolve(std::string_view name, Labels&& labels, Kind kind,
                 std::span<const double> bounds) FPISA_EXCLUDES(mu_);

  mutable util::OrderedMutex mu_{util::lock_rank::kTelemetry};
  /// key: name + canonical labels
  std::map<std::string, Entry> entries_ FPISA_GUARDED_BY(mu_);
};

/// The process-wide registry every layer of the stack instruments into.
MetricsRegistry& registry();
/// Convenience: registry().snapshot().
Snapshot snapshot();

}  // namespace fpisa::telemetry
