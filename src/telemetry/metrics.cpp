#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace fpisa::telemetry {
namespace {

std::atomic<bool> g_enabled{true};

/// Per-thread stripe index: threads are handed stripes round-robin, so a
/// fixed worker pool spreads evenly over a counter's cells.
std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx % Counter::kStripes;
}

void atomic_add_double(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// `{k="v",k2="v2"}` with escaped values; empty string for no labels.
/// `extra` appends one more pre-rendered pair (the histogram `le` label).
std::string render_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
  }
  out += "}";
  return out;
}

bool labels_contain(const Labels& labels, const Labels& subset) {
  for (const auto& want : subset) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string canonical_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  key += "{";
  for (const auto& [k, v] : labels) {
    key += k;
    key += "\x1f";  // unlikely in identifiers: unambiguous separator
    key += v;
    key += "\x1f";
  }
  key += "}";
  return key;
}

}  // namespace

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

// --- counter ---------------------------------------------------------------

void Counter::inc(std::uint64_t n) {
  if (!enabled()) return;
  cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

// --- gauge -----------------------------------------------------------------

void Gauge::set(double v) {
  if (!enabled()) return;
  v_.store(v, std::memory_order_relaxed);
}

void Gauge::add(double delta) {
  if (!enabled()) return;
  atomic_add_double(v_, delta);
}

double Gauge::value() const { return v_.load(std::memory_order_relaxed); }

// --- histogram -------------------------------------------------------------

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      counts_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::logic_error(
          "telemetry: histogram bounds must be strictly increasing");
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  // First bucket whose (inclusive) upper bound covers v; NaN and anything
  // above the last bound land in the +Inf bucket. NaN must be routed by
  // hand: every `bound < NaN` comparison is false, so lower_bound would
  // otherwise file it under the smallest bucket.
  std::size_t idx = bounds_.size();
  if (!std::isnan(v)) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    idx = static_cast<std::size_t>(it - bounds_.begin());
  }
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return counts_[i].load(std::memory_order_relaxed);
}

// --- snapshot --------------------------------------------------------------

Snapshot Snapshot::with_label(std::string_view key,
                              std::string_view value) const {
  const Labels want{{std::string(key), std::string(value)}};
  Snapshot out;
  for (const auto& s : counters) {
    if (labels_contain(s.labels, want)) out.counters.push_back(s);
  }
  for (const auto& s : gauges) {
    if (labels_contain(s.labels, want)) out.gauges.push_back(s);
  }
  for (const auto& s : histograms) {
    if (labels_contain(s.labels, want)) out.histograms.push_back(s);
  }
  return out;
}

std::uint64_t Snapshot::counter_total(std::string_view name,
                                      const Labels& subset) const {
  std::uint64_t total = 0;
  for (const auto& s : counters) {
    if (s.name == name && labels_contain(s.labels, subset)) total += s.value;
  }
  return total;
}

std::string Snapshot::prometheus_text() const {
  std::string out;
  std::string last_type_line;  // one # TYPE per metric name
  const auto type_line = [&out, &last_type_line](const std::string& name,
                                                 const char* type) {
    const std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      out += line;
      last_type_line = line;
    }
  };
  for (const auto& s : counters) {
    type_line(s.name, "counter");
    out += s.name + render_labels(s.labels) + " " +
           std::to_string(s.value) + "\n";
  }
  for (const auto& s : gauges) {
    type_line(s.name, "gauge");
    out += s.name + render_labels(s.labels) + " " + number(s.value) + "\n";
  }
  for (const auto& s : histograms) {
    type_line(s.name, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      cum += s.counts[i];
      const std::string le =
          i < s.bounds.size() ? "le=\"" + number(s.bounds[i]) + "\""
                              : std::string("le=\"+Inf\"");
      out += s.name + "_bucket" + render_labels(s.labels, le) + " " +
             std::to_string(cum) + "\n";
    }
    out += s.name + "_sum" + render_labels(s.labels) + " " + number(s.sum) +
           "\n";
    out += s.name + "_count" + render_labels(s.labels) + " " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

std::string Snapshot::json() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& s : counters) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + escape_json(s.name) +
           "\",\"labels\":" + labels_json(s.labels) +
           ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& s : gauges) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + escape_json(s.name) +
           "\",\"labels\":" + labels_json(s.labels) +
           ",\"value\":" + number(s.value) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& s : histograms) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + escape_json(s.name) +
           "\",\"labels\":" + labels_json(s.labels) + ",\"bounds\":[";
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      if (i) out += ",";
      out += number(s.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(s.counts[i]);
    }
    out += "],\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + number(s.sum) + "}";
  }
  out += "]}";
  return out;
}

// --- registry --------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::resolve(std::string_view name,
                                                 Labels&& labels, Kind kind,
                                                 std::span<const double> bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = canonical_key(name, labels);
  util::LockGuard lk(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("telemetry: metric '" + std::string(name) +
                             "' re-registered as a different kind");
    }
    if (kind == Kind::kHistogram) {
      const auto& have = it->second.histogram->bounds_;
      if (have.size() != bounds.size() ||
          !std::equal(have.begin(), have.end(), bounds.begin())) {
        throw std::logic_error("telemetry: histogram '" + std::string(name) +
                               "' re-registered with different bounds");
      }
    }
    return it->second;
  }
  Entry e;
  e.name = std::string(name);
  e.labels = std::move(labels);
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter: e.counter.reset(new Counter()); break;
    case Kind::kGauge: e.gauge.reset(new Gauge()); break;
    case Kind::kHistogram: e.histogram.reset(new Histogram(bounds)); break;
  }
  return entries_.emplace(key, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *resolve(name, std::move(labels), Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *resolve(name, std::move(labels), Kind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      std::span<const double> bounds) {
  return *resolve(name, std::move(labels), Kind::kHistogram, bounds)
              .histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  util::LockGuard lk(mu_);
  // entries_ is keyed by name + canonical labels: iteration order is the
  // stable (name, labels) order the Snapshot contract promises.
  for (const auto& [key, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.push_back({e.name, e.labels, e.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({e.name, e.labels, e.gauge->value()});
        break;
      case Kind::kHistogram: {
        HistogramSample h;
        h.name = e.name;
        h.labels = e.labels;
        h.bounds = e.histogram->bounds_;
        h.counts.resize(e.histogram->num_buckets());
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          h.counts[i] = e.histogram->bucket_count(i);
        }
        h.count = e.histogram->count();
        h.sum = e.histogram->sum();
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

std::span<const double> MetricsRegistry::time_buckets() {
  // 1us .. ~8.6s in powers of 4 (12 finite buckets + implicit +Inf): wide
  // enough for a compiled wave (~us) and a straggling failover job (~s).
  static const double kBounds[] = {1e-6,    4e-6,   16e-6,  64e-6,
                                   256e-6,  1e-3,   4e-3,   16e-3,
                                   64e-3,   256e-3, 1.024,  8.6};
  return kBounds;
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never dtor'd
  return *instance;
}

Snapshot snapshot() { return registry().snapshot(); }

}  // namespace fpisa::telemetry
