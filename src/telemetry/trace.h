// Span tracing for aggregation jobs: records a job's life as nested spans
// (submit → acquire slots → partition → per-shard add waves → collect
// waves → merge → failover passes) with deterministic monotonic
// timestamps, and exports the result as a human-readable tree or Chrome
// `trace_event` JSON (load in chrome://tracing or Perfetto).
//
// Design points:
//  * Timestamps are steady_clock nanoseconds relative to the trace's
//    epoch, plus a monotone sequence number, so span ordering is
//    deterministic even when two spans open within the same clock tick.
//  * begin_at()/end_at() accept explicit time_points, letting callers
//    reuse the exact clock readings that feed their metrics (the cluster
//    wave loop does this, which is why traced span wall-times agree with
//    phase_breakdown() to the nanosecond).
//  * Thread-safe: shard workers open spans concurrently during a fan-out
//    pass; each span records a small per-trace thread index that becomes
//    the Chrome `tid`.
//  * A Trace is an opt-in object the caller owns. Layers accept a
//    `Trace*` and treat nullptr as "tracing off"; ScopedSpan does the
//    same, so instrumented code needs no branches.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

namespace fpisa::telemetry {

class Trace {
 public:
  using Clock = std::chrono::steady_clock;
  /// Span handle: 1-based index into the trace; 0 means "no span"
  /// (top-level parent). Handles stay valid for the trace's lifetime.
  using SpanId = std::size_t;
  static constexpr SpanId kNone = 0;

  Trace() : epoch_(Clock::now()) {}

  /// Opens a span now / at an explicit clock reading.
  SpanId begin(std::string name, SpanId parent = kNone) FPISA_EXCLUDES(mu_);
  SpanId begin_at(std::string name, SpanId parent, Clock::time_point t)
      FPISA_EXCLUDES(mu_);
  /// Closes a span now / at an explicit clock reading. Closing an
  /// already-closed span or kNone is a no-op.
  void end(SpanId id) FPISA_EXCLUDES(mu_);
  void end_at(SpanId id, Clock::time_point t) FPISA_EXCLUDES(mu_);
  /// Attaches a key=value argument to a span (shown in both exports).
  void annotate(SpanId id, std::string key, std::string value)
      FPISA_EXCLUDES(mu_);

  struct SpanView {
    std::string name;
    SpanId id = kNone;
    SpanId parent = kNone;
    std::uint64_t seq = 0;       ///< global open order (deterministic)
    std::int64_t start_ns = 0;   ///< relative to trace epoch
    std::int64_t dur_ns = 0;     ///< -1 while still open
    int tid = 0;                 ///< per-trace thread index
    std::vector<std::pair<std::string, std::string>> args;
  };

  std::size_t size() const FPISA_EXCLUDES(mu_);
  /// All spans in open (seq) order.
  std::vector<SpanView> spans() const FPISA_EXCLUDES(mu_);
  /// Sum of closed-span durations (seconds) over spans named `name` —
  /// the bridge for comparing traced time against registry histograms.
  double total_seconds_of(std::string_view name) const FPISA_EXCLUDES(mu_);

  /// Human-readable indented tree, one line per span:
  ///   merge                         123.4us  [shards=4]
  std::string tree() const FPISA_EXCLUDES(mu_);
  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}]}. Open
  /// spans are exported with the trace's latest known timestamp.
  std::string chrome_trace_json() const FPISA_EXCLUDES(mu_);

 private:
  struct Span {
    std::string name;
    SpanId parent = kNone;
    std::uint64_t seq = 0;
    std::int64_t start_ns = 0;
    std::int64_t end_ns = -1;  ///< -1 == still open
    int tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };

  std::int64_t rel_ns(Clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
        .count();
  }
  int thread_index_locked(std::thread::id id) FPISA_REQUIRES(mu_);

  Clock::time_point epoch_;
  mutable util::OrderedMutex mu_{util::lock_rank::kTrace};
  std::vector<Span> spans_ FPISA_GUARDED_BY(mu_);
  std::unordered_map<std::thread::id, int> tids_ FPISA_GUARDED_BY(mu_);
  std::uint64_t next_seq_ FPISA_GUARDED_BY(mu_) = 0;
};

/// RAII span: opens on construction, closes on destruction. A null trace
/// makes every operation a no-op, so instrumented code stays branch-free.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Trace* trace, std::string name,
             Trace::SpanId parent = Trace::kNone)
      : trace_(trace),
        id_(trace ? trace->begin(std::move(name), parent) : Trace::kNone) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& o) noexcept : trace_(o.trace_), id_(o.id_) {
    o.trace_ = nullptr;
  }
  ~ScopedSpan() {
    if (trace_) trace_->end(id_);
  }

  Trace::SpanId id() const { return id_; }
  void annotate(std::string key, std::string value) {
    if (trace_) trace_->annotate(id_, std::move(key), std::move(value));
  }

 private:
  Trace* trace_ = nullptr;
  Trace::SpanId id_ = Trace::kNone;
};

}  // namespace fpisa::telemetry
