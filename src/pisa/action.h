// Action VLIW primitives. Each primitive occupies one VLIW instruction slot
// in its stage (the resource Appendix B / Table 3 shows is FPISA's
// bottleneck). The baseline instruction set has only *immediate* shift
// distances; kShlField/kShrField/kAsrField model the paper's proposed
// 2-operand shift instruction (§4.2) and are rejected unless the switch
// config enables the extension.
//
// Semantics: the primitives of one action execute in order. Real Tofino
// VLIW bundles are parallel, but chains are expressible there by spending
// extra PHV containers and slots — which is exactly what our resource
// accounting charges (one slot per primitive), so the cost model matches
// even where the execution model is simplified.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/phv.h"

namespace fpisa::pisa {

enum class OpCode {
  kSetImm,       ///< dst = imm
  kMove,         ///< dst = src1
  kAdd,          ///< dst = src1 + src2 (wraps at dst width)
  kAddImm,       ///< dst = src1 + imm
  kSub,          ///< dst = src1 - src2
  kSubImm,       ///< dst = src1 - imm
  kAnd,          ///< dst = src1 & src2
  kAndImm,       ///< dst = src1 & imm
  kOr,           ///< dst = src1 | src2
  kOrImm,        ///< dst = src1 | imm
  kXor,          ///< dst = src1 ^ src2
  kNeg,          ///< dst = -src1 (two's complement at dst width)
  kShlImm,       ///< dst = src1 << imm
  kShrImm,       ///< dst = src1 >> imm (logical, at src width)
  kAsrImm,       ///< dst = src1 >> imm (arithmetic, at src width)
  kExtractBits,  ///< dst = (src1 >> imm) & ((1 << imm2) - 1)
  kDeposit,      ///< dst |= (src1 & ((1 << imm2) - 1)) << imm
  kMin,          ///< dst = min_signed(src1, src2)
  kMax,          ///< dst = max_signed(src1, src2)
  kMinImm,       ///< dst = min_signed(src1, imm)
  kMaxImm,       ///< dst = max_signed(src1, imm)
  kShlField,     ///< dst = src1 << src2   [2-operand shift extension, §4.2]
  kShrField,     ///< dst = src1 >> src2 logical [extension]
  kAsrField,     ///< dst = src1 >> src2 arithmetic [extension]
};

/// True for the opcodes added by the §4.2 hardware proposal.
bool requires_shift_extension(OpCode op);

struct PrimOp {
  OpCode op{};
  FieldId dst{};
  FieldId src1{};
  FieldId src2{};
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;
};

/// One match-table action: a bundle of primitives, costing one VLIW slot
/// per primitive in the stage that hosts the table.
struct Action {
  std::string name;
  std::vector<PrimOp> ops;

  int vliw_slots() const { return static_cast<int>(ops.size()); }
};

/// Executes a bundle against a PHV (used by MauStage). Asserts if an
/// extension opcode is used while `shift_extension` is false.
void apply_action(const Action& action, Phv& phv, bool shift_extension);

}  // namespace fpisa::pisa
