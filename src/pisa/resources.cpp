#include "pisa/resources.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/table.h"

namespace fpisa::pisa {
namespace {

constexpr double kSramBlockBits = 128.0 * 1024.0;  // 128 Kb blocks
constexpr int kTcamBlockEntries = 512;
constexpr int kTcamBlockKeyBits = 44;
constexpr int kHashWays = 4;

int sram_blocks_for(const LogicalTableDesc& d) {
  int blocks = 0;
  if (d.kind == MatchKind::kExact && d.entries > 0) {
    // Key + action data per entry; tiny tables still occupy one block.
    const double bits = static_cast<double>(d.entries) * (d.key_bits + 32);
    blocks += std::max(1, static_cast<int>(std::ceil(bits / kSramBlockBits)));
  }
  if (d.register_bits > 0) {
    blocks += static_cast<int>(
        std::ceil(static_cast<double>(d.register_bits) / kSramBlockBits));
  }
  return blocks;
}

int tcam_blocks_for(const LogicalTableDesc& d) {
  if (d.kind == MatchKind::kExact || d.entries == 0) return 0;
  const int rows = (d.entries + kTcamBlockEntries - 1) / kTcamBlockEntries;
  const int cols = (d.key_bits + kTcamBlockKeyBits - 1) / kTcamBlockKeyBits;
  return rows * cols;
}

int hash_bits_for(const LogicalTableDesc& d) {
  if (d.kind != MatchKind::kExact || d.entries == 0) return 0;
  int lg = 1;
  while ((1 << lg) < d.entries) ++lg;
  return lg * kHashWays;
}

int xbar_bytes_for(const LogicalTableDesc& d) {
  return (d.key_bits + 7) / 8;
}

void add_desc(StageUsage& u, const LogicalTableDesc& d) {
  u.vliw += d.vliw_slots;
  u.salus += d.stateful_alus;
  u.sram_blocks += sram_blocks_for(d);
  u.tcam_blocks += tcam_blocks_for(d);
  u.xbar_bytes += xbar_bytes_for(d);
  u.hash_bits += hash_bits_for(d);
  u.result_buses += d.result_buses;
}

bool fits(const StageUsage& used, const StageUsage& extra,
          const StageLimits& lim) {
  return used.vliw + extra.vliw <= lim.vliw_slots &&
         used.salus + extra.salus <= lim.stateful_alus &&
         used.sram_blocks + extra.sram_blocks <= lim.sram_blocks &&
         used.tcam_blocks + extra.tcam_blocks <= lim.tcam_blocks &&
         used.xbar_bytes + extra.xbar_bytes <= lim.xbar_bytes &&
         used.hash_bits + extra.hash_bits <= lim.hash_bits &&
         used.result_buses + extra.result_buses <= lim.result_buses;
}

void accumulate(StageUsage& into, const StageUsage& from) {
  into.vliw += from.vliw;
  into.salus += from.salus;
  into.sram_blocks += from.sram_blocks;
  into.tcam_blocks += from.tcam_blocks;
  into.xbar_bytes += from.xbar_bytes;
  into.hash_bits += from.hash_bits;
  into.result_buses += from.result_buses;
}

}  // namespace

std::vector<StageUsage> stage_usage(const std::vector<LogicalTableDesc>& descs,
                                    int num_stages, bool shared_only) {
  std::vector<StageUsage> stages(static_cast<std::size_t>(num_stages));
  for (const auto& d : descs) {
    if (shared_only && d.per_instance) continue;
    assert(d.stage >= 0 && d.stage < num_stages);
    add_desc(stages[static_cast<std::size_t>(d.stage)], d);
  }
  return stages;
}

const ResourceRow* ResourceReport::find(const std::string& name) const {
  for (const auto& r : rows) {
    if (r.resource == name) return &r;
  }
  return nullptr;
}

std::string ResourceReport::render() const {
  util::Table t({"Resource", "Total usage", "Max usage in a MAU"});
  for (const auto& r : rows) {
    t.add_row({r.resource, util::Table::pct(r.total_pct(), 2),
               util::Table::pct(r.max_stage_pct(), 2)});
  }
  std::string out = t.render();
  out += "Stages used: " + std::to_string(stages_used) + " of " +
         std::to_string(total_stages) + "\n";
  return out;
}

ResourceReport analyze(const std::vector<LogicalTableDesc>& descs,
                       const SwitchConfig& config) {
  const auto stages = stage_usage(descs, config.num_stages);
  const StageLimits& lim = config.limits;
  const double n = config.num_stages;

  ResourceReport report;
  report.total_stages = config.num_stages;
  for (const auto& s : stages) {
    if (s.vliw || s.salus || s.sram_blocks || s.tcam_blocks || s.xbar_bytes ||
        s.hash_bits) {
      ++report.stages_used;
    }
  }

  auto row = [&](const std::string& name, auto member, double cap) {
    ResourceRow r;
    r.resource = name;
    r.stage_capacity = cap;
    r.total_capacity = cap * n;
    for (const auto& s : stages) {
      const double used = static_cast<double>(s.*member);
      r.total_used += used;
      r.max_stage_used = std::max(r.max_stage_used, used);
    }
    report.rows.push_back(r);
  };
  row("SRAM", &StageUsage::sram_blocks, lim.sram_blocks);
  row("TCAM", &StageUsage::tcam_blocks, lim.tcam_blocks);
  row("Stateful ALU", &StageUsage::salus, lim.stateful_alus);
  row("VLIW instruction slots", &StageUsage::vliw, lim.vliw_slots);
  row("Input crossbar", &StageUsage::xbar_bytes, lim.xbar_bytes);
  row("Result bus", &StageUsage::result_buses, lim.result_buses);
  row("Hash bit", &StageUsage::hash_bits, lim.hash_bits);
  return report;
}

int max_instances(const std::vector<LogicalTableDesc>& descs,
                  const SwitchConfig& config) {
  const StageLimits& lim = config.limits;
  const int n = config.num_stages;

  // Residual usage starts with the shared (once-per-pipeline) logic placed
  // at its declared stages.
  std::vector<StageUsage> used = stage_usage(descs, n, /*shared_only=*/true);

  // Per-instance usage at declared stages.
  std::vector<StageUsage> inst(static_cast<std::size_t>(n));
  int span = 0;
  for (const auto& d : descs) {
    if (!d.per_instance) continue;
    add_desc(inst[static_cast<std::size_t>(d.stage)], d);
    span = std::max(span, d.stage + 1);
  }

  int count = 0;
  constexpr int kCap = 256;  // safety bound
  while (count < kCap) {
    bool placed = false;
    // Instances keep their internal stage order but may shift down the pipe.
    for (int delta = 0; delta + span <= n && !placed; ++delta) {
      bool ok = true;
      for (int s = 0; s < span && ok; ++s) {
        ok = fits(used[static_cast<std::size_t>(s + delta)],
                  inst[static_cast<std::size_t>(s)], lim);
      }
      if (ok) {
        for (int s = 0; s < span; ++s) {
          accumulate(used[static_cast<std::size_t>(s + delta)],
                     inst[static_cast<std::size_t>(s)]);
        }
        placed = true;
      }
    }
    if (!placed) break;
    ++count;
  }
  return count;
}

}  // namespace fpisa::pisa
