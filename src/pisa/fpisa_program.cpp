#include "pisa/fpisa_program.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <string>

#include "core/clz_table.h"
#include "core/float_format.h"

namespace fpisa::pisa {
namespace {

constexpr std::uint64_t kOpcodeAdd = static_cast<std::uint64_t>(FpisaOp::kAdd);
constexpr std::uint64_t kOpcodeRead = static_cast<std::uint64_t>(FpisaOp::kRead);
constexpr std::uint64_t kOpcodeReset =
    static_cast<std::uint64_t>(FpisaOp::kReset);

/// FP32 constants the program hardcodes (the builder is format-specialized
/// the way a P4 program would be; other formats re-run the builder with
/// different constants in future work).
constexpr int kManBits = 23;
constexpr std::int64_t kImpliedOne = std::int64_t{1} << kManBits;

int headroom_fp32() { return core::kFp32.headroom(32); }  // 7

/// Per-lane PHV field bundle.
struct LaneFields {
  FieldId val, exp_in, sign, exp_eff, man, d, code, dist;
  FieldId r_exp, r_exp2, r_man, sign2, uman, delta, e_norm, result;
};

struct SharedFields {
  FieldId opcode, slot, worker, wbit, bitmap_old, bitmap_new, count;
  FieldId dup_raw, dup;
};

LaneFields declare_lane(PhvLayout& phv, int lane) {
  const std::string s = std::to_string(lane);
  LaneFields f;
  f.val = phv.declare("val" + s, 32);
  f.exp_in = phv.declare("exp_in" + s, 8);
  f.sign = phv.declare("sign" + s, 8);
  f.exp_eff = phv.declare("exp_eff" + s, 16);
  f.man = phv.declare("man" + s, 32);
  f.d = phv.declare("d" + s, 16);
  f.code = phv.declare("code" + s, 8);
  f.dist = phv.declare("dist" + s, 8);
  f.r_exp = phv.declare("r_exp" + s, 16);
  f.r_exp2 = phv.declare("r_exp2" + s, 16);
  f.r_man = phv.declare("r_man" + s, 32);
  f.sign2 = phv.declare("sign2" + s, 8);
  f.uman = phv.declare("uman" + s, 32);
  f.delta = phv.declare("delta" + s, 16);
  f.e_norm = phv.declare("e_norm" + s, 16);
  f.result = phv.declare("result" + s, 32);
  return f;
}

PrimOp op_imm(OpCode op, FieldId dst, std::int64_t imm) {
  PrimOp p;
  p.op = op;
  p.dst = dst;
  p.imm = imm;
  return p;
}
PrimOp op1(OpCode op, FieldId dst, FieldId src, std::int64_t imm = 0,
           std::int64_t imm2 = 0) {
  PrimOp p;
  p.op = op;
  p.dst = dst;
  p.src1 = src;
  p.imm = imm;
  p.imm2 = imm2;
  return p;
}
PrimOp op2(OpCode op, FieldId dst, FieldId a, FieldId b) {
  PrimOp p;
  p.op = op;
  p.dst = dst;
  p.src1 = a;
  p.src2 = b;
  return p;
}

}  // namespace

Packet make_fpisa_packet(FpisaOp op, std::uint16_t slot, std::uint8_t worker,
                         std::span<const std::uint32_t> values,
                         bool little_endian_payload, std::uint32_t stamp,
                         std::uint16_t checksum) {
  Packet pkt;
  make_fpisa_packet_into(pkt, op, slot, worker, values, little_endian_payload,
                         stamp, checksum);
  return pkt;
}

void make_fpisa_packet_into(Packet& pkt, FpisaOp op, std::uint16_t slot,
                            std::uint8_t worker,
                            std::span<const std::uint32_t> values,
                            bool little_endian_payload, std::uint32_t stamp,
                            std::uint16_t checksum) {
  pkt.bytes.assign(kFpisaHeaderBytes + 4 * values.size(), 0);
  pkt.bytes[0] = static_cast<std::uint8_t>(op);
  write_be(&pkt.bytes[1], 2, slot);
  pkt.bytes[3] = worker;
  write_be(&pkt.bytes[10], 4, stamp);
  write_be(&pkt.bytes[14], 2, checksum);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t v = values[i];
    // A host that skips htonl() leaves the value in little-endian order on
    // the wire; writing the byte-swapped value big-endian models that.
    if (little_endian_payload) v = byteswap(v, 4);
    write_be(&pkt.bytes[kFpisaHeaderBytes + 4 * i], 4, v);
  }
}

FpisaResult parse_fpisa_result(const Packet& pkt, int lanes,
                               bool little_endian_payload) {
  FpisaResult r;
  parse_fpisa_result_into(pkt, lanes, r, little_endian_payload);
  return r;
}

void parse_fpisa_result_into(const Packet& pkt, int lanes, FpisaResult& r,
                             bool little_endian_payload) {
  r.bitmap = static_cast<std::uint32_t>(read_be(&pkt.bytes[4], 4));
  r.count = static_cast<std::uint16_t>(read_be(&pkt.bytes[8], 2));
  r.values.resize(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    std::uint64_t v = read_be(&pkt.bytes[kFpisaHeaderBytes + 4 * i], 4);
    if (little_endian_payload) v = byteswap(v, 4);
    r.values[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(v);
  }
}

SwitchProgram build_fpisa_program(const SwitchConfig& config,
                                  const FpisaProgramOptions& opts) {
  assert(opts.lanes >= 1);
  assert((opts.variant == core::Variant::kApproximate || config.ext.rsaw) &&
         "full FPISA needs the RSAW extension; use FPISA-A on baseline");
  assert((!opts.convert_endianness || config.ext.parser_endianness) &&
         "little-endian payloads need the in-parser conversion extension");
  (void)config;  // only consulted by the assertions above

  SwitchProgram prog;
  SharedFields sh;
  sh.opcode = prog.phv.declare("opcode", 8);
  sh.slot = prog.phv.declare("slot", 16);
  sh.worker = prog.phv.declare("worker", 8);
  sh.wbit = prog.phv.declare("wbit", 32);
  sh.bitmap_old = prog.phv.declare("bitmap_old", 32);
  sh.bitmap_new = prog.phv.declare("bitmap_new", 32);
  sh.count = prog.phv.declare("count", 16);
  sh.dup_raw = prog.phv.declare("dup_raw", 32);
  sh.dup = prog.phv.declare("dup", 8);

  std::vector<LaneFields> lanes;
  lanes.reserve(static_cast<std::size_t>(opts.lanes));
  for (int l = 0; l < opts.lanes; ++l) {
    lanes.push_back(declare_lane(prog.phv, l));
  }

  // Parser / deparser bindings.
  prog.parser.push_back({sh.opcode, 0, 1, false});
  prog.parser.push_back({sh.slot, 1, 2, false});
  prog.parser.push_back({sh.worker, 3, 1, false});
  for (int l = 0; l < opts.lanes; ++l) {
    prog.parser.push_back({lanes[static_cast<std::size_t>(l)].val,
                           kFpisaHeaderBytes + 4 * l, 4,
                           opts.convert_endianness});
    prog.deparser.push_back({lanes[static_cast<std::size_t>(l)].result,
                             kFpisaHeaderBytes + 4 * l, 4,
                             opts.convert_endianness});
  }
  prog.deparser.push_back({sh.bitmap_new, 4, 4, false});
  prog.deparser.push_back({sh.count, 8, 2, false});

  // Registers: per-lane exponent + mantissa arrays, shared bitmap/counter.
  struct LaneRegs {
    int exp, man;
  };
  std::vector<LaneRegs> regs;
  for (int l = 0; l < opts.lanes; ++l) {
    const std::string s = std::to_string(l);
    prog.add_register("exp_arr" + s, 8, opts.slots);
    prog.add_register("man_arr" + s, 32, opts.slots);
    regs.push_back({2 * l, 2 * l + 1});
  }
  const int bitmap_reg = 2 * opts.lanes;
  prog.add_register("bitmap", 32, opts.slots);
  const int count_reg = bitmap_reg + 1;
  prog.add_register("count", 16, opts.slots);

  prog.ingress.resize(5);
  prog.egress.resize(4);

  // --- MAU0: extract -------------------------------------------------------
  {
    StageProgram& st = prog.ingress[0];
    Action extract{"extract", {}};
    for (const auto& f : lanes) {
      extract.ops.push_back(op1(OpCode::kExtractBits, f.sign, f.val, 31, 1));
      extract.ops.push_back(op1(OpCode::kExtractBits, f.exp_in, f.val, 23, 8));
      extract.ops.push_back(op1(OpCode::kExtractBits, f.man, f.val, 0, 23));
    }
    MatchTable t("extract", MatchKind::kExact, {}, {extract}, 0);
    st.tables.push_back(std::move(t));

    // Worker bitmap mask: exact table worker -> (1 << worker).
    std::vector<Action> mask_actions;
    for (int w = 0; w < 32; ++w) {
      mask_actions.push_back(
          {"w" + std::to_string(w),
           {op_imm(OpCode::kSetImm, sh.wbit, std::int64_t{1} << w)}});
    }
    MatchTable wm("worker_mask", MatchKind::kExact, {sh.worker}, mask_actions);
    for (int w = 0; w < 32; ++w) {
      wm.add_entry({{static_cast<std::uint64_t>(w)}, {}, w});
    }
    st.tables.push_back(std::move(wm));
  }

  // --- MAU1: implied 1 + sign fold ----------------------------------------
  {
    StageProgram& st = prog.ingress[1];
    for (const auto& f : lanes) {
      // Subnormal (exp field 0): keep the raw fraction, effective exp 1.
      Action subnormal{"subnormal", {op_imm(OpCode::kSetImm, f.exp_eff, 1)}};
      Action normal{"normal",
                    {op1(OpCode::kOrImm, f.man, f.man, kImpliedOne),
                     op1(OpCode::kMove, f.exp_eff, f.exp_in)}};
      MatchTable t("implied1", MatchKind::kExact, {f.exp_in},
                   {subnormal, normal}, 1);
      t.add_entry({{0}, {}, 0});
      st.tables.push_back(std::move(t));

      Action negate{"negate", {op1(OpCode::kNeg, f.man, f.man)}};
      Action keep{"keep", {}};
      MatchTable s("sign_fold", MatchKind::kExact, {f.sign}, {negate, keep}, 1);
      s.add_entry({{1}, {}, 0});
      st.tables.push_back(std::move(s));
    }
    // Shared worker bitmap: OR in this worker's bit; the OLD value exposes
    // retransmissions (SwitchML-style dedup) which gate the later stages.
    SaluSpec bm_add{SaluKind::kOrX, sh.slot, sh.wbit, {}, {}, sh.bitmap_old, 0};
    st.salus.push_back({sh.opcode, kOpcodeAdd, bm_add, bitmap_reg, {}, 0});
    st.salu_post_ops.push_back(
        {"dup_detect",
         {op2(OpCode::kAnd, sh.dup_raw, sh.bitmap_old, sh.wbit),
          op2(OpCode::kOr, sh.bitmap_new, sh.bitmap_old, sh.wbit)}});
    SaluSpec bm_read{SaluKind::kReadOnly, sh.slot, {}, {}, {}, sh.bitmap_old, 0};
    st.salus.push_back({sh.opcode, kOpcodeRead, bm_read, bitmap_reg, {}, 0});
    st.salu_post_ops.push_back(
        {"", {op1(OpCode::kMove, sh.bitmap_new, sh.bitmap_old)}});
    SaluSpec bm_rst{SaluKind::kClear, sh.slot, {}, {}, {}, sh.bitmap_old, 0};
    st.salus.push_back({sh.opcode, kOpcodeReset, bm_rst, bitmap_reg, {}, 0});
    st.salu_post_ops.push_back(
        {"", {op1(OpCode::kMove, sh.bitmap_new, sh.bitmap_old)}});
  }

  // --- MAU2: exponent register (+ shared worker bitmap) --------------------
  {
    StageProgram& st = prog.ingress[2];
    // Gateway: boolean dup flag from the bitmap-AND result.
    {
      Action fresh{"fresh", {op_imm(OpCode::kSetImm, sh.dup, 0)}};
      Action retransmit{"retransmit", {op_imm(OpCode::kSetImm, sh.dup, 1)}};
      MatchTable g("dup_gate", MatchKind::kTernary, {sh.dup_raw},
                   {fresh, retransmit}, 1);
      g.add_entry({{0}, {0xFFFFFFFFULL}, 0});
      st.tables.push_back(std::move(g));
    }
    const std::int64_t headroom_imm =
        opts.variant == core::Variant::kApproximate ? headroom_fp32() : 0;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const LaneFields& f = lanes[l];
      // Add: conditional exponent update; emits the OLD exponent and then
      // computes the clamped signed exponent difference d.
      SaluSpec add_spec;
      add_spec.kind = SaluKind::kExpUpdate;
      add_spec.index = sh.slot;
      add_spec.x = f.exp_eff;
      add_spec.out = f.r_exp;
      add_spec.imm = headroom_imm;
      st.salus.push_back({sh.opcode, kOpcodeAdd, add_spec, regs[l].exp,
                          sh.dup, 0});
      st.salu_post_ops.push_back(
          {"exp_diff",
           {op2(OpCode::kSub, f.d, f.exp_eff, f.r_exp),
            op1(OpCode::kMinImm, f.d, f.d, 32),
            op1(OpCode::kMaxImm, f.d, f.d, -32)}});

      SaluSpec read_spec;
      read_spec.kind = SaluKind::kReadOnly;
      read_spec.index = sh.slot;
      read_spec.out = f.r_exp;
      // Retransmitted adds fall back to a read (the aggregate is returned
      // but not modified — SwitchML's dedup semantics).
      st.salus.push_back({sh.opcode, kOpcodeAdd, read_spec, regs[l].exp,
                          sh.dup, 1});
      st.salu_post_ops.push_back({"", {}});
      st.salus.push_back({sh.opcode, kOpcodeRead, read_spec, regs[l].exp, {}, 0});
      st.salu_post_ops.push_back({"", {}});

      SaluSpec reset_spec;
      reset_spec.kind = SaluKind::kClear;
      reset_spec.index = sh.slot;
      reset_spec.out = f.r_exp;
      st.salus.push_back({sh.opcode, kOpcodeReset, reset_spec, regs[l].exp, {}, 0});
      st.salu_post_ops.push_back({"", {}});
    }
  }

  // --- MAU3: align ----------------------------------------------------------
  // Exact-match on the clamped exponent difference. On baseline hardware
  // every distance is its own fixed-shift VLIW instruction — the resource
  // bottleneck of Appendix B; with the 2-operand shift extension this whole
  // table collapses to a couple of instructions (§4.2). Functionally both
  // produce the same PHV, so the simulator uses the table form throughout.
  {
    StageProgram& st = prog.ingress[3];
    const int headroom = headroom_fp32();
    for (const auto& f : lanes) {
      std::vector<Action> actions;
      std::vector<TableEntry> entries;
      for (int dd = -32; dd <= 32; ++dd) {
        Action a{"d" + std::to_string(dd), {}};
        if (dd <= 0) {
          if (dd < 0) {
            a.ops.push_back(op1(OpCode::kAsrImm, f.man, f.man, -dd));
          }
          a.ops.push_back(op_imm(OpCode::kSetImm, f.code, 0));
          a.ops.push_back(op1(OpCode::kMove, f.r_exp2, f.r_exp));
        } else if (opts.variant == core::Variant::kApproximate) {
          if (dd <= headroom) {
            a.ops.push_back(op1(OpCode::kShlImm, f.man, f.man, dd));
            a.ops.push_back(op_imm(OpCode::kSetImm, f.code, 0));
            a.ops.push_back(op1(OpCode::kMove, f.r_exp2, f.r_exp));
          } else {
            a.ops.push_back(op_imm(OpCode::kSetImm, f.code, 1));  // overwrite
            a.ops.push_back(op1(OpCode::kMove, f.r_exp2, f.exp_eff));
          }
        } else {  // full FPISA: RSAW shifts the stored mantissa
          a.ops.push_back(op_imm(OpCode::kSetImm, f.code, 2));
          a.ops.push_back(op_imm(OpCode::kSetImm, f.dist, dd));
          a.ops.push_back(op1(OpCode::kMove, f.r_exp2, f.exp_eff));
        }
        actions.push_back(std::move(a));
        entries.push_back(
            {{static_cast<std::uint64_t>(dd) & 0xFFFF}, {},
             static_cast<int>(entries.size())});
      }
      MatchTable table("align", MatchKind::kExact, {f.d}, std::move(actions),
                       /*default: d==0 behaviour*/ 32);
      for (auto& e : entries) table.add_entry(std::move(e));
      st.tables.push_back(std::move(table));
    }
  }

  // --- MAU4: mantissa register (+ shared completion counter) ---------------
  {
    StageProgram& st = prog.ingress[4];
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const LaneFields& f = lanes[l];
      SaluSpec add_spec;
      add_spec.kind = SaluKind::kManUpdate;
      add_spec.index = sh.slot;
      add_spec.x = f.man;
      add_spec.code = f.code;
      add_spec.distance = f.dist;
      add_spec.out = f.r_man;
      st.salus.push_back({sh.opcode, kOpcodeAdd, add_spec, regs[l].man,
                          sh.dup, 0});
      st.salu_post_ops.push_back({"", {}});

      SaluSpec read_spec;
      read_spec.kind = SaluKind::kReadOnly;
      read_spec.index = sh.slot;
      read_spec.out = f.r_man;
      st.salus.push_back({sh.opcode, kOpcodeAdd, read_spec, regs[l].man,
                          sh.dup, 1});
      st.salu_post_ops.push_back({"", {}});
      st.salus.push_back({sh.opcode, kOpcodeRead, read_spec, regs[l].man, {}, 0});
      st.salu_post_ops.push_back({"", {}});

      SaluSpec reset_spec;
      reset_spec.kind = SaluKind::kClear;
      reset_spec.index = sh.slot;
      reset_spec.out = f.r_man;
      st.salus.push_back({sh.opcode, kOpcodeReset, reset_spec, regs[l].man, {}, 0});
      st.salu_post_ops.push_back({"", {}});
    }
    SaluSpec cnt_add{SaluKind::kIncrement, sh.slot, {}, {}, {}, sh.count, 0};
    st.salus.push_back({sh.opcode, kOpcodeAdd, cnt_add, count_reg, sh.dup, 0});
    st.salu_post_ops.push_back({"", {}});
    SaluSpec cnt_read{SaluKind::kReadOnly, sh.slot, {}, {}, {}, sh.count, 0};
    st.salus.push_back({sh.opcode, kOpcodeAdd, cnt_read, count_reg, sh.dup, 1});
    st.salu_post_ops.push_back({"", {}});
    st.salus.push_back({sh.opcode, kOpcodeRead, cnt_read, count_reg, {}, 0});
    st.salu_post_ops.push_back({"", {}});
    SaluSpec cnt_rst{SaluKind::kClear, sh.slot, {}, {}, {}, sh.count, 0};
    st.salus.push_back({sh.opcode, kOpcodeReset, cnt_rst, count_reg, {}, 0});
    st.salu_post_ops.push_back({"", {}});
  }

  // --- MAU5 (egress): two's complement -> sign + magnitude -----------------
  {
    StageProgram& st = prog.egress[0];
    for (const auto& f : lanes) {
      Action negative{"negative",
                      {op1(OpCode::kExtractBits, f.sign2, f.r_man, 31, 1),
                       op1(OpCode::kNeg, f.uman, f.r_man)}};
      Action positive{"positive",
                      {op_imm(OpCode::kSetImm, f.sign2, 0),
                       op1(OpCode::kMove, f.uman, f.r_man)}};
      MatchTable t("sign_split", MatchKind::kTernary, {f.r_man},
                   {negative, positive}, 1);
      t.add_entry({{0x80000000ULL}, {0x80000000ULL}, 0});
      st.tables.push_back(std::move(t));
    }
  }

  // --- MAU6 (egress): LPM count-leading-zeros + shift (Fig 5) --------------
  {
    StageProgram& st = prog.egress[1];
    const auto clz = core::build_clz_lpm_table(32, kManBits);
    for (const auto& f : lanes) {
      std::vector<Action> actions;
      std::vector<TableEntry> entries;
      for (const auto& e : clz) {
        Action a{"lz" + std::to_string(e.leading_zeros), {}};
        if (e.shift > 0) {
          a.ops.push_back(op1(OpCode::kShrImm, f.uman, f.uman, e.shift));
        } else if (e.shift < 0) {
          a.ops.push_back(op1(OpCode::kShlImm, f.uman, f.uman, -e.shift));
        }
        a.ops.push_back(op_imm(OpCode::kSetImm, f.delta,
                               static_cast<std::int64_t>(e.shift) & 0xFFFF));
        actions.push_back(std::move(a));
        if (e.prefix_len == 0) continue;  // default handled below
        const int drop = 32 - e.prefix_len;
        const std::uint64_t mask = (~std::uint64_t{0} << drop) & 0xFFFFFFFFULL;
        entries.push_back({{e.prefix_bits}, {mask},
                           static_cast<int>(actions.size()) - 1});
      }
      MatchTable t("clz_lpm", MatchKind::kLpm, {f.uman}, std::move(actions),
                   static_cast<int>(clz.size()) - 1);
      for (auto& e : entries) t.add_entry(std::move(e));
      st.tables.push_back(std::move(t));
    }
  }

  // --- MAU7 (egress): exponent adjust ---------------------------------------
  {
    StageProgram& st = prog.egress[2];
    Action adjust{"exp_adjust", {}};
    for (const auto& f : lanes) {
      adjust.ops.push_back(op2(OpCode::kAdd, f.e_norm, f.r_exp2, f.delta));
    }
    MatchTable t("exp_adjust", MatchKind::kExact, {}, {adjust}, 0);
    st.tables.push_back(std::move(t));
  }

  // --- MAU8 (egress): range handling + pack ---------------------------------
  {
    StageProgram& st = prog.egress[3];
    for (const auto& f : lanes) {
      Action zero{"zero", {op_imm(OpCode::kSetImm, f.result, 0)}};
      Action ftz{"flush_to_zero",
                 {op_imm(OpCode::kSetImm, f.result, 0),
                  op1(OpCode::kDeposit, f.result, f.sign2, 31, 1)}};
      Action inf{"overflow_inf",
                 {op_imm(OpCode::kSetImm, f.result, 0x7F800000LL),
                  op1(OpCode::kDeposit, f.result, f.sign2, 31, 1)}};
      Action pack{"pack",
                  {op_imm(OpCode::kSetImm, f.result, 0),
                   op1(OpCode::kDeposit, f.result, f.uman, 0, 23),
                   op1(OpCode::kDeposit, f.result, f.e_norm, 23, 8),
                   op1(OpCode::kDeposit, f.result, f.sign2, 31, 1)}};
      MatchTable t("finalize", MatchKind::kTernary, {f.uman, f.e_norm},
                   {zero, ftz, inf, pack}, 3);
      t.add_entry({{0, 0}, {0xFFFFFFFFULL, 0}, 0});      // mantissa == 0
      t.add_entry({{0, 0x8000}, {0, 0x8000}, 1});        // exponent < 0: FTZ
      t.add_entry({{0, 0}, {0, 0xFFFF}, 1});             // exponent == 0: FTZ
      for (int bit = 8; bit <= 14; ++bit) {              // exponent >= 256
        t.add_entry({{0, std::uint64_t{1} << bit}, {0, std::uint64_t{1} << bit},
                     2});
      }
      t.add_entry({{0, 255}, {0, 0xFFFF}, 2});           // exponent == 255
      st.tables.push_back(std::move(t));
    }
  }

  return prog;
}

std::vector<LogicalTableDesc> fpisa_resource_descriptors(
    const SwitchConfig& config, const FpisaProgramOptions& opts) {
  const bool ext = config.ext.two_operand_shift;
  const bool approx = opts.variant == core::Variant::kApproximate;
  const auto slot_bits = [&](int w) {
    return static_cast<std::uint64_t>(opts.slots) * static_cast<std::uint64_t>(w);
  };

  std::vector<LogicalTableDesc> d;
  // MAU0: three extract instructions per lane; shared worker-mask table.
  d.push_back({"extract", 0, MatchKind::kExact, 0, 0, 3, 0, 0, 0, true});
  d.push_back({"worker_mask", 0, MatchKind::kExact, 8, 32, 1, 0, 0, 0, false});
  // MAU1: implied-1 (2 actions) + sign fold (1 negate instruction).
  d.push_back({"implied_sign", 1, MatchKind::kExact, 9, 2, 4, 0, 0, 0, true});
  // MAU2: exponent register + diff ops; FPISA-A also needs the left-shift
  // instruction family here on baseline hardware (7 distances).
  d.push_back({"exponent", 2, MatchKind::kExact, 16, 0,
               3 + (approx && !ext ? 7 : 0), 1, slot_bits(8), 0, true});
  d.push_back({"bitmap", 1, MatchKind::kExact, 0, 0, 0, 1, slot_bits(32), 0,
               false});
  // MAU3: the align table. Baseline: 31 distinct fixed right-shift
  // instructions (Appendix B: "the need to implement variable-length shifts
  // as multiple fixed-length shift operations ... is the limiting
  // bottleneck"). Extension: shl/shr reg,reg + code mux = 4 slots.
  d.push_back({"align", 3, MatchKind::kExact, 16, 65, ext ? 4 : 31, 0, 0, 1,
               true});
  // MAU4: mantissa register + shared completion counter.
  d.push_back({"mantissa", 4, MatchKind::kExact, 0, 0, 0, 1, slot_bits(32), 0,
               true});
  d.push_back({"counter", 4, MatchKind::kExact, 0, 0, 0, 1, slot_bits(16), 0,
               false});
  // MAU5 (egress, stage 5): sign split — gateway + 2 instructions.
  d.push_back({"sign_split", 5, MatchKind::kExact, 32, 2, 2, 0, 0, 0, true});
  // MAU6 (egress): the Fig 5 LPM table. Baseline: one fixed-shift
  // instruction per leading-zero count (31 distinct); extension: 3.
  d.push_back({"clz_lpm", 6, MatchKind::kLpm, 32, 33, ext ? 3 : 31, 0, 0, 1,
               true});
  // MAU7 (egress): exponent adjust.
  d.push_back({"exp_adjust", 7, MatchKind::kExact, 0, 0, 1, 0, 0, 0, true});
  // MAU8 (egress): range gateway + pack (4 deposit/set instructions).
  d.push_back({"finalize", 8, MatchKind::kExact, 48, 12, 4, 0, 0, 0, true});
  return d;
}

// --- observability ---------------------------------------------------------

void FpisaSwitch::init_metrics() {
  static std::atomic<int> next_id{0};
  const std::string id = std::to_string(next_id.fetch_add(1));
  auto& reg = telemetry::registry();
  m_packets_ = &reg.counter("fpisa_switch_packets_total", {{"sw", id}});
  m_dedup_ = &reg.counter("fpisa_switch_dedup_hits_total", {{"sw", id}});
  m_corrupt_ =
      &reg.counter("fpisa_switch_corrupt_rejected_total", {{"sw", id}});
  m_stale_ =
      &reg.counter("fpisa_switch_stale_dups_rejected_total", {{"sw", id}});
  m_occupancy_ = &reg.gauge("fpisa_switch_occupied_slots", {{"sw", id}});
  static constexpr const char* kOps[7] = {
      "adds",        "rounded_adds",     "overwrites", "lshift_overflows",
      "saturations", "nonfinite_inputs", "zero_inputs"};
  for (int i = 0; i < 7; ++i) {
    m_ops_[i] =
        &reg.counter("fpisa_switch_ops_total", {{"sw", id}, {"op", kOps[i]}});
  }
}

void FpisaSwitch::flush_metrics(std::size_t packets) {
  if (!telemetry::enabled()) return;
  m_packets_->inc(packets);
  if (dedup_hits_ != dedup_flushed_) {
    m_dedup_->inc(dedup_hits_ - dedup_flushed_);
    dedup_flushed_ = dedup_hits_;
  }
  if (guard_corrupt_ != guard_corrupt_flushed_) {
    m_corrupt_->inc(guard_corrupt_ - guard_corrupt_flushed_);
    guard_corrupt_flushed_ = guard_corrupt_;
  }
  if (guard_stale_ != guard_stale_flushed_) {
    m_stale_->inc(guard_stale_ - guard_stale_flushed_);
    guard_stale_flushed_ = guard_stale_;
  }
  const std::uint64_t deltas[7] = {
      ops_.adds - ops_flushed_.adds,
      ops_.rounded_adds - ops_flushed_.rounded_adds,
      ops_.overwrites - ops_flushed_.overwrites,
      ops_.lshift_overflows - ops_flushed_.lshift_overflows,
      ops_.saturations - ops_flushed_.saturations,
      ops_.nonfinite_inputs - ops_flushed_.nonfinite_inputs,
      ops_.zero_inputs - ops_flushed_.zero_inputs};
  for (int i = 0; i < 7; ++i) {
    if (deltas[i]) m_ops_[i]->inc(deltas[i]);
  }
  ops_flushed_ = ops_;
  m_occupancy_->set(static_cast<double>(occupied_));
}

void FpisaSwitch::classify_add_lane(int lane, std::size_t slot,
                                    std::uint32_t u) {
  // Mirrors apply_add_lane / the interpreted MAU0-4 step for step, but
  // only reads state; the branch taken IS the classification.
  ops_.adds++;
  const std::uint32_t e_raw = (u >> 23) & 0xFFu;
  if (e_raw == 0xFFu) ops_.nonfinite_inputs++;
  if ((u & 0x7FFFFFFFu) == 0) ops_.zero_inputs++;

  std::uint32_t man32 = u & 0x7FFFFFu;
  const std::uint32_t exp_eff = e_raw == 0 ? 1u : e_raw;
  if (e_raw != 0) man32 |= 1u << 23;
  if (u >> 31) man32 = ~man32 + 1u;
  const std::int64_t m =
      static_cast<std::int64_t>(static_cast<std::int32_t>(man32));
  const std::uint64_t old_e = sim_.reg(2 * lane).read(slot);
  const std::int64_t old_m = sim_.reg(2 * lane + 1).read_signed(slot);
  int d = static_cast<int>(exp_eff) - static_cast<int>(old_e);
  d = std::min(d, 32);
  d = std::max(d, -32);

  std::int64_t nm;
  if (d <= 0) {
    if (core::detail::asr_inexact(m, -d)) ops_.rounded_adds++;
    nm = old_m + (m >> -d);
  } else if (opts_.variant == core::Variant::kFull) {
    if (core::detail::asr_inexact(old_m, d)) ops_.rounded_adds++;
    nm = (old_m >> d) + m;
  } else if (d <= headroom_fp32()) {
    nm = old_m + (m << d);
    if (nm != static_cast<std::int64_t>(static_cast<std::int32_t>(nm))) {
      ops_.lshift_overflows++;
    }
    return;  // lshift overflow is its own bucket, not a saturation
  } else {
    if (old_m != 0) ops_.overwrites++;
    return;  // overwrite cannot wrap
  }
  // Register adds wrap at 32 bits (hardware semantics); count the wrap.
  if (nm != static_cast<std::int64_t>(static_cast<std::int32_t>(nm))) {
    ops_.saturations++;
  }
}

FpisaResult FpisaSwitch::roundtrip(FpisaOp op, std::uint16_t slot,
                                   std::uint8_t worker,
                                   std::span<const std::uint32_t> values) {
  FpisaResult r;
  roundtrip_into(op, slot, worker, values, r);
  return r;
}

void FpisaSwitch::roundtrip_into(FpisaOp op, std::uint16_t slot,
                                 std::uint8_t worker,
                                 std::span<const std::uint32_t> values,
                                 FpisaResult& out) {
  // Accounting happens against the pre-packet register state, so the
  // interpreted path classifies exactly like the compiled batch path.
  const int lanes = opts_.lanes;
  RegisterArray& bitmap_reg = sim_.reg(2 * lanes);
  if (op == FpisaOp::kAdd) {
    const std::uint64_t wbit = std::uint64_t{1} << worker;
    const std::uint64_t old_bm = bitmap_reg.read(slot);
    if (old_bm & wbit) {
      dedup_hits_++;
    } else {
      if (old_bm == 0) occupied_++;
      for (int l = 0; l < lanes; ++l) classify_add_lane(l, slot, values[l]);
    }
  } else if (op == FpisaOp::kReset) {
    if (bitmap_reg.read(slot) != 0) occupied_--;
    slot_epoch_[slot]++;  // the slot's next occupant is a new epoch
  }
  const std::uint32_t stamp = op == FpisaOp::kAdd ? slot_stamp(slot) : 0;
  const std::uint16_t cs =
      op == FpisaOp::kAdd ? fpisa_checksum(slot, worker, stamp, values)
                          : std::uint16_t{0};
  make_fpisa_packet_into(scratch_pkt_, op, slot, worker, values,
                         opts_.convert_endianness, stamp, cs);
  sim_.process(scratch_pkt_);
  parse_fpisa_result_into(scratch_pkt_, opts_.lanes, out,
                          opts_.convert_endianness);
  flush_metrics(1);
}

FpisaResult FpisaSwitch::add(std::uint16_t slot, std::uint8_t worker,
                             std::span<const std::uint32_t> values) {
  assert(static_cast<int>(values.size()) == opts_.lanes);
  return roundtrip(FpisaOp::kAdd, slot, worker, values);
}

FpisaResult FpisaSwitch::read(std::uint16_t slot) {
  return roundtrip(FpisaOp::kRead, slot, 0, zeros_);
}

FpisaResult FpisaSwitch::read_and_reset(std::uint16_t slot) {
  return roundtrip(FpisaOp::kReset, slot, 0, zeros_);
}

void FpisaSwitch::read_into(std::uint16_t slot, FpisaResult& out) {
  roundtrip_into(FpisaOp::kRead, slot, 0, zeros_, out);
}

void FpisaSwitch::read_and_reset_into(std::uint16_t slot, FpisaResult& out) {
  roundtrip_into(FpisaOp::kReset, slot, 0, zeros_, out);
}

// ---------------------------------------------------------------------------
// Batched add fast path: the compiled form of the ingress program
// (MAU0-4), applied straight to the register arrays. Every step mirrors
// the table/SALU semantics the interpreter would execute — including the
// 16-bit clamp of the exponent difference, 32-bit two's-complement
// mantissa arithmetic, and the exponent-register update on zero inputs —
// so the state evolution is bit-identical to per-packet `add` calls
// (tests/test_pisa_fpisa_program.cpp proves it against the interpreter).
// Egress (result emission) is skipped: batch callers collect aggregates
// with read_batch()/read_and_reset_batch() — the compiled egress below.
// ---------------------------------------------------------------------------

void FpisaSwitch::apply_add_lane(int lane, std::size_t slot,
                                 std::uint32_t u) {
  classify_add_lane(lane, slot, u);  // reads pre-update state only
  RegisterArray& exp_reg = sim_.reg(2 * lane);
  RegisterArray& man_reg = sim_.reg(2 * lane + 1);

  // MAU0/1: extract, implied 1 (subnormals keep the raw fraction at
  // effective exponent 1), sign fold into 32-bit two's complement.
  const std::uint32_t e_raw = (u >> 23) & 0xFFu;
  std::uint32_t man32 = u & 0x7FFFFFu;
  const std::uint32_t exp_eff = e_raw == 0 ? 1u : e_raw;
  if (e_raw != 0) man32 |= 1u << 23;
  if (u >> 31) man32 = ~man32 + 1u;

  // MAU2: exponent register (kExpUpdate) + clamped signed difference.
  const std::uint64_t old_e = exp_reg.read(slot);
  const std::int64_t imm =
      opts_.variant == core::Variant::kApproximate ? headroom_fp32() : 0;
  if (exp_eff > old_e + static_cast<std::uint64_t>(imm)) {
    exp_reg.write(slot, exp_eff);
  }
  int d = static_cast<int>(exp_eff) - static_cast<int>(old_e);
  d = std::min(d, 32);
  d = std::max(d, -32);

  // MAU3/4: align + mantissa register. All arithmetic in int64, masked to
  // the 32-bit register width on write — exactly the PHV/SALU semantics.
  const std::int64_t m =
      static_cast<std::int64_t>(static_cast<std::int32_t>(man32));
  const std::int64_t old_m = man_reg.read_signed(slot);
  std::int64_t nm;
  if (d <= 0) {
    nm = old_m + (m >> -d);  // -d in [0, 32]: int64 asr is exact here
  } else if (opts_.variant == core::Variant::kFull) {
    nm = (old_m >> d) + m;  // RSAW: shift the *stored* mantissa
  } else if (d <= headroom_fp32()) {
    nm = old_m + (m << d);  // headroom left-shift (fits: |m| < 2^24, d <= 7)
  } else {
    nm = m;  // overwrite
  }
  man_reg.write(slot, static_cast<std::uint64_t>(nm));
}

void FpisaSwitch::add_batch(std::span<const std::uint16_t> slots,
                            std::span<const std::uint8_t> workers,
                            std::span<const std::uint32_t> values) {
  assert(slots.size() == workers.size());
  assert(values.size() ==
         slots.size() * static_cast<std::size_t>(opts_.lanes));
  const int lanes = opts_.lanes;
  RegisterArray& bitmap = sim_.reg(2 * lanes);
  RegisterArray& count = sim_.reg(2 * lanes + 1);

  for (std::size_t p = 0; p < slots.size(); ++p) {
    const std::size_t slot = slots[p];
    assert(slot < bitmap.size());
    // MAU1 shared bitmap (kOrX): the old value exposes retransmissions.
    const std::uint64_t wbit = std::uint64_t{1} << workers[p];
    const std::uint64_t old_bm = bitmap.read(slot);
    bitmap.write(slot, old_bm | wbit);
    if (old_bm & wbit) {  // duplicate: absorbed, no state change
      dedup_hits_++;
      continue;
    }
    if (old_bm == 0) occupied_++;

    count.write(slot, count.read(slot) + 1);  // completion counter
    const std::uint32_t* lane_vals =
        values.data() + p * static_cast<std::size_t>(lanes);
    for (int l = 0; l < lanes; ++l) apply_add_lane(l, slot, lane_vals[l]);
  }
  sim_.account_packets(slots.size());
  flush_metrics(slots.size());
}

void FpisaSwitch::add_batch_guarded(std::span<const std::uint16_t> slots,
                                    std::span<const std::uint8_t> workers,
                                    std::span<const std::uint32_t> stamps,
                                    std::span<const std::uint16_t> checksums,
                                    std::span<const std::uint32_t> values,
                                    GuardStats& guard) {
  assert(slots.size() == workers.size());
  assert(slots.size() == stamps.size());
  assert(slots.size() == checksums.size());
  assert(values.size() ==
         slots.size() * static_cast<std::size_t>(opts_.lanes));
  const int lanes = opts_.lanes;
  RegisterArray& bitmap = sim_.reg(2 * lanes);
  RegisterArray& count = sim_.reg(2 * lanes + 1);

  for (std::size_t p = 0; p < slots.size(); ++p) {
    const std::size_t slot = slots[p];
    assert(slot < bitmap.size());
    const std::uint32_t* lane_vals =
        values.data() + p * static_cast<std::size_t>(lanes);
    const std::span<const std::uint32_t> payload(
        lane_vals, static_cast<std::size_t>(lanes));
    // Guard 1: payload integrity. A bit flipped in flight breaks the
    // checksum the sender computed over the clean bytes.
    if (fpisa_checksum(slots[p], workers[p], stamps[p], payload) !=
        checksums[p]) {
      guard.corrupt_rejected++;
      guard_corrupt_++;
      continue;
    }
    // Guard 2: liveness of the slot's epoch. A copy stamped before the
    // slot was reset (stale duplicate after round-robin reuse) or before
    // the switch rebooted must not be absorbed as a fresh contribution.
    if (stamps[p] != slot_stamp(slots[p])) {
      guard.stale_rejected++;
      guard_stale_++;
      continue;
    }
    // Accepted: the add_batch ingress, packet by packet.
    const std::uint64_t wbit = std::uint64_t{1} << workers[p];
    const std::uint64_t old_bm = bitmap.read(slot);
    bitmap.write(slot, old_bm | wbit);
    if (old_bm & wbit) {
      dedup_hits_++;
      continue;
    }
    if (old_bm == 0) occupied_++;

    count.write(slot, count.read(slot) + 1);
    for (int l = 0; l < lanes; ++l) apply_add_lane(l, slot, lane_vals[l]);
  }
  sim_.account_packets(slots.size());
  flush_metrics(slots.size());
}

void FpisaSwitch::wipe_state() {
  // Reboot semantics: every register array back to power-on zero. The
  // RegisterArray has no bulk clear, so walk the slots like the control
  // plane would.
  const int lanes = opts_.lanes;
  for (int r = 0; r < 2 * lanes + 2; ++r) {
    RegisterArray& reg = sim_.reg(r);
    for (std::size_t s = 0; s < reg.size(); ++s) reg.write(s, 0);
  }
  occupied_ = 0;
  // The generation bump alone distinguishes pre-wipe stamps, so the
  // per-slot epochs restart at zero like everything else on the switch.
  std::fill(slot_epoch_.begin(), slot_epoch_.end(), 0);
  generation_++;
  flush_metrics(0);
}

// ---------------------------------------------------------------------------
// Batched read fast path: the compiled form of the egress program
// (MAU5-8), applied straight to the register arrays. Each step mirrors the
// interpreter's table semantics on the same PHV widths: the 32-bit
// two's-complement sign split, the LPM CLZ table's fixed shift to bit 23,
// the 16-bit exponent adjust, and the range gateway's zero / FTZ /
// overflow-to-inf / pack priority order — so results and register state
// are bit-identical to per-packet read()/read_and_reset() traversals
// (tests/test_pisa_fpisa_program.cpp proves it against the interpreter).
// ---------------------------------------------------------------------------

namespace {

/// One lane's compiled egress: (exp register, mantissa register) -> packed
/// FP32 result field, exactly as MAU5-8 compute it.
std::uint32_t egress_renormalize(std::uint64_t r_exp, std::uint64_t r_man) {
  // MAU5: two's complement -> sign + 32-bit magnitude.
  const auto man = static_cast<std::uint32_t>(r_man);
  const std::uint32_t sign2 = man >> 31;
  std::uint32_t uman = sign2 ? (0u - man) : man;
  // MAU6: LPM CLZ + fixed shift to bit 23 (the table's default entry for
  // uman == 0 applies no shift and delta 0). delta is a 16-bit field, so
  // negative shifts wrap exactly like the SetImm's masked immediate.
  std::uint16_t delta = 0;
  if (uman != 0) {
    const int shift = 8 - std::countl_zero(uman);
    uman = shift >= 0 ? uman >> shift : uman << -shift;
    delta = static_cast<std::uint16_t>(shift);
  }
  // MAU7: 16-bit exponent adjust.
  const auto e_norm =
      static_cast<std::uint16_t>(static_cast<std::uint32_t>(r_exp) + delta);
  // MAU8: range gateway in the ternary table's priority order.
  if (uman == 0) return 0;                                  // mantissa == 0
  if ((e_norm & 0x8000u) || e_norm == 0) return sign2 << 31;  // FTZ
  if ((e_norm & 0x7F00u) || e_norm == 255) {
    return 0x7F800000u | (sign2 << 31);  // exponent >= 255: clamp to ±inf
  }
  return (uman & 0x7FFFFFu) |
         (static_cast<std::uint32_t>(e_norm) << 23) | (sign2 << 31);
}

}  // namespace

void FpisaSwitch::collect_batch(std::uint16_t slot0, std::size_t n,
                                bool reset,
                                std::span<std::uint32_t> out_values,
                                std::span<std::uint32_t> out_bitmaps,
                                std::span<std::uint16_t> out_counts) {
  const int lanes = opts_.lanes;
  assert(out_values.size() == n * static_cast<std::size_t>(lanes));
  assert(out_bitmaps.empty() || out_bitmaps.size() == n);
  assert(out_counts.empty() || out_counts.size() == n);
  RegisterArray& bitmap = sim_.reg(2 * lanes);
  RegisterArray& count = sim_.reg(2 * lanes + 1);
  assert(slot0 + n <= bitmap.size());

  for (int l = 0; l < lanes; ++l) {
    RegisterArray& exp_reg = sim_.reg(2 * l);
    RegisterArray& man_reg = sim_.reg(2 * l + 1);
    std::uint32_t* out = out_values.data() + l;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = slot0 + k;
      out[k * static_cast<std::size_t>(lanes)] =
          egress_renormalize(exp_reg.read(slot), man_reg.read(slot));
      if (reset) {  // kClear: result computed from the old value
        exp_reg.write(slot, 0);
        man_reg.write(slot, 0);
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t slot = slot0 + k;
    if (!out_bitmaps.empty()) {
      out_bitmaps[k] = static_cast<std::uint32_t>(bitmap.read(slot));
    }
    if (!out_counts.empty()) {
      out_counts[k] = static_cast<std::uint16_t>(count.read(slot));
    }
    if (reset) {
      if (bitmap.read(slot) != 0) occupied_--;
      bitmap.write(slot, 0);
      count.write(slot, 0);
      slot_epoch_[slot]++;  // the slot's next occupant is a new epoch
    }
  }
  sim_.account_packets(n);
  flush_metrics(n);
}

void FpisaSwitch::read_batch(std::uint16_t slot0, std::size_t n,
                             std::span<std::uint32_t> out_values,
                             std::span<std::uint32_t> out_bitmaps,
                             std::span<std::uint16_t> out_counts) {
  collect_batch(slot0, n, /*reset=*/false, out_values, out_bitmaps,
                out_counts);
}

void FpisaSwitch::read_and_reset_batch(std::uint16_t slot0, std::size_t n,
                                       std::span<std::uint32_t> out_values,
                                       std::span<std::uint32_t> out_bitmaps,
                                       std::span<std::uint16_t> out_counts) {
  collect_batch(slot0, n, /*reset=*/true, out_values, out_bitmaps,
                out_counts);
}

}  // namespace fpisa::pisa
