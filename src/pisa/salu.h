// Stateful register arrays and stateful ALUs.
//
// PISA constraint (paper §2.3): "registers are associated with specific
// pipeline stages, and can only be accessed from that stage... each
// register can only be accessed once per packet". RegisterArray enforces
// the once-per-packet rule; MauStage enforces stage binding.
//
// The StatefulAlu offers a menu of hardware-plausible atomic programs
// (Tofino's stateful ALU is a predicated read-modify-write engine).
// kExpUpdate/kManUpdate encode the FPISA exponent and mantissa stage
// programs of Fig 2; kManUpdate's RSAW case (atomic read-shift-add-write,
// §4.2) is only legal when the switch config enables that extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/phv.h"

namespace fpisa::pisa {

/// Stateful register array (SRAM-backed). Values are stored masked to
/// `width_bits`; signed reads sign-extend.
class RegisterArray {
 public:
  RegisterArray(std::string name, int width_bits, std::size_t size)
      : name_(std::move(name)),
        width_bits_(width_bits),
        values_(size, 0) {}

  std::uint64_t read(std::size_t i) const { return values_[i]; }
  std::int64_t read_signed(std::size_t i) const;
  void write(std::size_t i, std::uint64_t v);

  std::size_t size() const { return values_.size(); }
  int width_bits() const { return width_bits_; }
  const std::string& name() const { return name_; }

  /// Once-per-packet access guard (asserted by MauStage execution).
  void begin_packet() { accessed_this_packet_ = false; }
  bool mark_access();

  /// Storage footprint in bits (for the SRAM resource model).
  std::uint64_t storage_bits() const {
    return static_cast<std::uint64_t>(width_bits_) * values_.size();
  }

 private:
  std::string name_;
  int width_bits_;
  std::vector<std::uint64_t> values_;
  bool accessed_this_packet_ = false;
};

/// The atomic programs the stateful ALU can run.
enum class SaluKind {
  kReadOnly,   ///< out = reg
  kWriteX,     ///< out = reg (old); reg = x
  kAddX,       ///< reg += x (wraps at width); out = new value
  kOrX,        ///< reg |= x; out = OLD value (worker-bitmap dedup)
  kIncrement,  ///< reg += 1; out = new value (completion counters)
  kMaxX,       ///< reg = max_signed(reg, x); out = old value
  kMinX,       ///< reg = min_signed(reg, x); out = old value
  kClear,      ///< out = reg (old); reg = 0
  /// FPISA exponent stage (Fig 2 MAU2): out = old reg.
  ///   full variant:       if (x > reg) reg = x
  ///   FPISA-A variant:    if (x > reg + headroom) reg = x   (overwrite)
  kExpUpdate,
  /// FPISA mantissa stage (Fig 2 MAU4), driven by a code field:
  ///   code 0 (add):        reg += x
  ///   code 1 (overwrite):  reg = x
  ///   code 2 (rsaw):       reg = asr(reg, d) + x   [RSAW extension, §4.2]
  /// out = new value.
  kManUpdate,
};

struct SaluSpec {
  SaluKind kind = SaluKind::kReadOnly;
  FieldId index;     ///< which register element to touch
  FieldId x;         ///< data input
  FieldId code;      ///< kManUpdate: branch code
  FieldId distance;  ///< kManUpdate: RSAW shift distance
  FieldId out;       ///< result destination (invalid = discard)
  std::int64_t imm = 0;  ///< kExpUpdate: headroom for the FPISA-A predicate
};

/// Executes one stateful ALU invocation. `rsaw_extension` gates the
/// kManUpdate code-2 path.
void apply_salu(const SaluSpec& spec, RegisterArray& reg, Phv& phv,
                bool rsaw_extension);

}  // namespace fpisa::pisa
