// The switch: programmable parser -> ingress MAU stages -> traffic manager
// -> egress MAU stages -> deparser (paper Fig 1), with the architectural
// knobs of §4 (baseline Tofino vs the proposed extensions) as configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pisa/action.h"
#include "pisa/phv.h"
#include "pisa/salu.h"
#include "pisa/table.h"

namespace fpisa::pisa {

/// The §4.2 hardware proposals. All default off = today's Tofino.
struct Extensions {
  bool two_operand_shift = false;  ///< shl/shr reg.distance, reg.value
  bool rsaw = false;               ///< atomic read-shift-add-write sALU
  bool parser_endianness = false;  ///< @convert_endianness in parser/deparser
};

/// Per-stage resource capacities (public Tofino-generation figures; these
/// drive the Table 3 reproduction — see src/pisa/resources.*).
struct StageLimits {
  int vliw_slots = 32;
  int stateful_alus = 4;
  int sram_blocks = 80;    // 128 Kb blocks
  int tcam_blocks = 24;    // 44b x 512 blocks
  int xbar_bytes = 194;    // 128B exact + 66B ternary crossbar
  int hash_bits = 416;
  int result_buses = 8;
};

struct SwitchConfig {
  int num_stages = 12;  ///< physical MAU stages in the pipe
  StageLimits limits;
  Extensions ext;
};

/// A raw packet: bytes on the wire.
struct Packet {
  std::vector<std::uint8_t> bytes;
};

/// Parser/deparser field binding: bytes [offset, offset+len) of the packet
/// hold this field in network byte order (big-endian). If `convert` is set
/// *and* the parser-endianness extension is enabled, the value is
/// byte-swapped on extract and swap-restored on deparse — modeling hosts
/// that send native little-endian payloads (§4.1 "Endianness conversion").
struct ParsedField {
  FieldId field;
  int byte_offset = 0;
  int byte_len = 0;
  bool convert = false;
};

/// One stateful-ALU invocation in a stage, optionally predicated on a PHV
/// field value (models the sALU's internal predication on packet type).
struct StatefulCall {
  FieldId pred_field;  ///< invalid = unconditional
  std::uint64_t pred_value = 0;
  SaluSpec spec;
  int register_index = -1;  ///< index into SwitchProgram::registers
  FieldId pred2_field;  ///< optional second predicate (e.g. dedup flag)
  std::uint64_t pred2_value = 0;
};

/// One MAU stage's logic: match tables execute first (in order), then
/// stateful calls (each may carry post-ops that run right after it — the
/// sALU's output ALU path).
struct StageProgram {
  std::vector<MatchTable> tables;
  std::vector<StatefulCall> salus;
  std::vector<Action> salu_post_ops;  ///< parallel to `salus`
};

/// A complete dataplane program.
struct SwitchProgram {
  PhvLayout phv;
  std::vector<ParsedField> parser;
  std::vector<ParsedField> deparser;
  std::vector<std::unique_ptr<RegisterArray>> registers;
  std::vector<StageProgram> ingress;  ///< one per physical stage used
  std::vector<StageProgram> egress;
  /// Optional recirculation counter field (paper §2.3 footnote: the one
  /// exception to once-per-packet register access, "costly and bandwidth
  /// constrained"). While nonzero after egress, the packet re-enters the
  /// ingress pipeline with the field decremented; each pass is a fresh
  /// traversal (registers may be touched again). Bounded by
  /// kMaxRecirculations.
  FieldId recirc_field{};

  RegisterArray& add_register(std::string name, int width_bits,
                              std::size_t size);
};

/// Functional switch simulator: runs a program over packets.
class SwitchSim {
 public:
  SwitchSim(SwitchConfig config, SwitchProgram program);

  /// Processes one packet in place (parse, ingress, TM, egress, deparse).
  void process(Packet& pkt);

  /// Direct register inspection for tests.
  const RegisterArray& reg(int index) const {
    return *program_.registers[static_cast<std::size_t>(index)];
  }
  RegisterArray& reg(int index) {
    return *program_.registers[static_cast<std::size_t>(index)];
  }

  const SwitchConfig& config() const { return config_; }
  const SwitchProgram& program() const { return program_; }

  std::uint64_t packets_processed() const { return packets_; }
  /// Accounts packets applied through a program's compiled fast path (e.g.
  /// FpisaSwitch::add_batch) rather than a full `process` traversal, so
  /// packet statistics stay truthful for either datapath.
  void account_packets(std::uint64_t n) { packets_ += n; }
  /// Extra pipeline passes consumed by recirculation: each one costs a
  /// slot of ingress bandwidth (why the paper calls it expensive).
  std::uint64_t recirculations() const { return recirculations_; }

  static constexpr int kMaxRecirculations = 8;

 private:
  void run_stages(std::vector<StageProgram>& stages, Phv& phv);

  SwitchConfig config_;
  SwitchProgram program_;
  std::uint64_t packets_ = 0;
  std::uint64_t recirculations_ = 0;
};

/// Big-endian packet byte helpers (network order).
std::uint64_t read_be(const std::uint8_t* p, int len);
void write_be(std::uint8_t* p, int len, std::uint64_t v);
std::uint64_t byteswap(std::uint64_t v, int len);

}  // namespace fpisa::pisa
