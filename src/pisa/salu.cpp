#include "pisa/salu.h"

#include <algorithm>
#include <cassert>

namespace fpisa::pisa {
namespace {

std::int64_t ashr(std::int64_t v, std::int64_t d) {
  if (d >= 64) return v < 0 ? -1 : 0;
  if (d <= 0) return v;
  return v >> d;
}

}  // namespace

std::int64_t RegisterArray::read_signed(std::size_t i) const {
  std::uint64_t v = values_[i];
  if (width_bits_ < 64 && (v >> (width_bits_ - 1)) != 0) {
    v |= ~((std::uint64_t{1} << width_bits_) - 1);
  }
  return static_cast<std::int64_t>(v);
}

void RegisterArray::write(std::size_t i, std::uint64_t v) {
  if (width_bits_ < 64) v &= (std::uint64_t{1} << width_bits_) - 1;
  values_[i] = v;
}

bool RegisterArray::mark_access() {
  if (accessed_this_packet_) return false;
  accessed_this_packet_ = true;
  return true;
}

void apply_salu(const SaluSpec& spec, RegisterArray& reg, Phv& phv,
                bool rsaw_extension) {
  const bool first_access = reg.mark_access();
  assert(first_access && "register accessed twice in one packet traversal");
  (void)first_access;

  const auto i = static_cast<std::size_t>(phv.get(spec.index));
  assert(i < reg.size());
  const std::int64_t old_signed = reg.read_signed(i);
  const std::uint64_t old_raw = reg.read(i);
  const std::int64_t x =
      spec.x.valid() ? phv.get_signed(spec.x) : std::int64_t{0};

  std::uint64_t out = 0;
  switch (spec.kind) {
    case SaluKind::kReadOnly:
      out = old_raw;
      break;
    case SaluKind::kWriteX:
      reg.write(i, static_cast<std::uint64_t>(x));
      out = old_raw;
      break;
    case SaluKind::kAddX:
      reg.write(i, static_cast<std::uint64_t>(old_signed + x));
      out = reg.read(i);
      break;
    case SaluKind::kOrX:
      reg.write(i, old_raw | static_cast<std::uint64_t>(x));
      out = old_raw;  // old value: lets the pipeline detect retransmissions
      break;
    case SaluKind::kIncrement:
      reg.write(i, old_raw + 1);
      out = reg.read(i);
      break;
    case SaluKind::kMaxX:
      reg.write(i, static_cast<std::uint64_t>(std::max(old_signed, x)));
      out = old_raw;
      break;
    case SaluKind::kMinX:
      reg.write(i, static_cast<std::uint64_t>(std::min(old_signed, x)));
      out = old_raw;
      break;
    case SaluKind::kClear:
      reg.write(i, 0);
      out = old_raw;
      break;
    case SaluKind::kExpUpdate: {
      // Exponents are stored unsigned (biased); compare unsigned.
      const auto xin = static_cast<std::uint64_t>(x);
      if (xin > old_raw + static_cast<std::uint64_t>(spec.imm)) {
        reg.write(i, xin);
      }
      out = old_raw;
      break;
    }
    case SaluKind::kManUpdate: {
      const std::uint64_t code = phv.get(spec.code);
      if (code == 1) {  // overwrite
        reg.write(i, static_cast<std::uint64_t>(x));
      } else if (code == 2) {  // RSAW: read-shift-add-write
        assert(rsaw_extension &&
               "RSAW mantissa update requires the shift+add extension");
        (void)rsaw_extension;
        const std::int64_t d =
            spec.distance.valid()
                ? static_cast<std::int64_t>(phv.get(spec.distance))
                : 0;
        reg.write(i, static_cast<std::uint64_t>(ashr(old_signed, d) + x));
      } else {  // plain add
        reg.write(i, static_cast<std::uint64_t>(old_signed + x));
      }
      out = reg.read(i);
      break;
    }
  }
  if (spec.out.valid()) phv.set(spec.out, out);
}

}  // namespace fpisa::pisa
