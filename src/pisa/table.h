// Match tables: exact (SRAM hash), ternary (TCAM, priority ordered) and LPM
// (a ternary specialization — how FPISA gets count-leading-zeros, Fig 5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pisa/action.h"
#include "pisa/phv.h"

namespace fpisa::pisa {

enum class MatchKind { kExact, kTernary, kLpm };

/// One table entry. For kExact, `masks` is ignored. For kTernary, a key
/// matches if (key & mask) == (value & mask); entries are tried in
/// insertion order (priority). For kLpm the single key's mask must be a
/// prefix mask; insertion order must be longest-prefix-first (the builder
/// in fpisa_program.* guarantees this for the CLZ table).
struct TableEntry {
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> masks;
  int action_index = 0;
};

class MatchTable {
 public:
  MatchTable(std::string name, MatchKind kind, std::vector<FieldId> key_fields,
             std::vector<Action> actions, int default_action = -1)
      : name_(std::move(name)),
        kind_(kind),
        key_fields_(std::move(key_fields)),
        actions_(std::move(actions)),
        default_action_(default_action) {}

  void add_entry(TableEntry entry);

  /// Looks up the PHV's key; returns the selected action (default action if
  /// no entry matches and a default exists, otherwise nullopt = no-op).
  const Action* lookup(const Phv& phv) const;

  const std::string& name() const { return name_; }
  MatchKind kind() const { return kind_; }
  std::size_t entry_count() const { return entries_.size(); }
  const std::vector<FieldId>& key_fields() const { return key_fields_; }
  const std::vector<Action>& actions() const { return actions_; }

  /// Largest VLIW bundle across actions: the per-stage slot cost driver.
  int max_action_slots() const;
  /// Sum of distinct VLIW slots this table's actions occupy in its stage.
  int total_action_slots() const;

 private:
  std::string name_;
  MatchKind kind_;
  std::vector<FieldId> key_fields_;
  std::vector<Action> actions_;
  int default_action_;
  std::vector<TableEntry> entries_;
};

}  // namespace fpisa::pisa
