#include "pisa/phv.h"

#include <cassert>
#include <numeric>

namespace fpisa::pisa {

FieldId PhvLayout::declare(std::string name, int width_bits) {
  assert(width_bits >= 1 && width_bits <= 64);
  assert(!find(name).valid() && "duplicate PHV field");
  names_.push_back(std::move(name));
  widths_.push_back(width_bits);
  return FieldId{static_cast<std::int32_t>(widths_.size() - 1)};
}

FieldId PhvLayout::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return FieldId{static_cast<std::int32_t>(i)};
  }
  return {};
}

int PhvLayout::total_bits() const {
  return std::accumulate(widths_.begin(), widths_.end(), 0);
}

std::int64_t Phv::get_signed(FieldId f) const {
  const int w = layout_->width(f);
  std::uint64_t v = get(f);
  if (w < 64 && (v >> (w - 1)) != 0) {
    v |= ~((std::uint64_t{1} << w) - 1);  // sign-extend
  }
  return static_cast<std::int64_t>(v);
}

void Phv::set(FieldId f, std::uint64_t v) {
  const int w = layout_->width(f);
  if (w < 64) v &= (std::uint64_t{1} << w) - 1;
  values_[static_cast<std::size_t>(f.index)] = v;
}

}  // namespace fpisa::pisa
