#include "pisa/action.h"

#include <algorithm>
#include <cassert>

namespace fpisa::pisa {
namespace {

std::uint64_t mask_bits(std::int64_t n) {
  if (n >= 64) return ~std::uint64_t{0};
  if (n <= 0) return 0;
  return (std::uint64_t{1} << n) - 1;
}

/// Logical right shift within the source field's width.
std::uint64_t lshr(std::uint64_t v, std::int64_t d) {
  if (d >= 64) return 0;
  if (d <= 0) return v;
  return v >> d;
}

std::int64_t ashr(std::int64_t v, std::int64_t d) {
  if (d >= 64) return v < 0 ? -1 : 0;
  if (d <= 0) return v;
  return v >> d;
}

std::uint64_t lshl(std::uint64_t v, std::int64_t d) {
  if (d >= 64) return 0;
  if (d <= 0) return v;
  return v << d;
}

}  // namespace

bool requires_shift_extension(OpCode op) {
  return op == OpCode::kShlField || op == OpCode::kShrField ||
         op == OpCode::kAsrField;
}

void apply_action(const Action& action, Phv& phv, bool shift_extension) {
  for (const PrimOp& p : action.ops) {
    assert((!requires_shift_extension(p.op) || shift_extension) &&
           "2-operand shift used without the hardware extension");
    (void)shift_extension;
    std::uint64_t r = 0;
    switch (p.op) {
      case OpCode::kSetImm:
        r = static_cast<std::uint64_t>(p.imm);
        break;
      case OpCode::kMove:
        r = phv.get(p.src1);
        break;
      case OpCode::kAdd:
        r = phv.get(p.src1) + phv.get(p.src2);
        break;
      case OpCode::kAddImm:
        r = phv.get(p.src1) + static_cast<std::uint64_t>(p.imm);
        break;
      case OpCode::kSub:
        r = phv.get(p.src1) - phv.get(p.src2);
        break;
      case OpCode::kSubImm:
        r = phv.get(p.src1) - static_cast<std::uint64_t>(p.imm);
        break;
      case OpCode::kAnd:
        r = phv.get(p.src1) & phv.get(p.src2);
        break;
      case OpCode::kAndImm:
        r = phv.get(p.src1) & static_cast<std::uint64_t>(p.imm);
        break;
      case OpCode::kOr:
        r = phv.get(p.src1) | phv.get(p.src2);
        break;
      case OpCode::kOrImm:
        r = phv.get(p.src1) | static_cast<std::uint64_t>(p.imm);
        break;
      case OpCode::kXor:
        r = phv.get(p.src1) ^ phv.get(p.src2);
        break;
      case OpCode::kNeg:
        r = ~phv.get(p.src1) + 1;
        break;
      case OpCode::kShlImm:
        r = lshl(phv.get(p.src1), p.imm);
        break;
      case OpCode::kShrImm:
        r = lshr(phv.get(p.src1), p.imm);
        break;
      case OpCode::kAsrImm:
        r = static_cast<std::uint64_t>(ashr(phv.get_signed(p.src1), p.imm));
        break;
      case OpCode::kExtractBits:
        r = lshr(phv.get(p.src1), p.imm) & mask_bits(p.imm2);
        break;
      case OpCode::kDeposit:
        r = phv.get(p.dst) | lshl(phv.get(p.src1) & mask_bits(p.imm2), p.imm);
        break;
      case OpCode::kMin:
        r = static_cast<std::uint64_t>(
            std::min(phv.get_signed(p.src1), phv.get_signed(p.src2)));
        break;
      case OpCode::kMax:
        r = static_cast<std::uint64_t>(
            std::max(phv.get_signed(p.src1), phv.get_signed(p.src2)));
        break;
      case OpCode::kMinImm:
        r = static_cast<std::uint64_t>(std::min(phv.get_signed(p.src1), p.imm));
        break;
      case OpCode::kMaxImm:
        r = static_cast<std::uint64_t>(std::max(phv.get_signed(p.src1), p.imm));
        break;
      case OpCode::kShlField:
        r = lshl(phv.get(p.src1), static_cast<std::int64_t>(phv.get(p.src2)));
        break;
      case OpCode::kShrField:
        r = lshr(phv.get(p.src1), static_cast<std::int64_t>(phv.get(p.src2)));
        break;
      case OpCode::kAsrField:
        r = static_cast<std::uint64_t>(
            ashr(phv.get_signed(p.src1),
                 static_cast<std::int64_t>(phv.get(p.src2))));
        break;
    }
    phv.set(p.dst, r);
  }
}

}  // namespace fpisa::pisa
