// The FPISA dataplane program (paper Fig 2), expressed against the PISA
// simulator's tables/actions/stateful-ALUs — the C++ analogue of the
// paper's ~580-line P4 implementation.
//
// Ingress (per lane = per parallel FPISA module):
//   MAU0  extract sign/exponent/mantissa fields (+ worker bitmap mask)
//   MAU1  add the implied "1", fold sign into two's complement
//   MAU2  exponent register: compare/update, emit old exponent (+ bitmap)
//   MAU3  align: exact-match table on the exponent difference selects the
//         shift. Baseline Tofino: one fixed-shift VLIW instruction per
//         distance (the Table 3 bottleneck). Extension: 2-operand shift.
//   MAU4  mantissa register: RAW add / overwrite / RSAW (+ counter)
// Egress:
//   MAU5  two's complement -> sign + magnitude
//   MAU6  TCAM LPM count-leading-zeros + shift (Fig 5)
//   MAU7  exponent adjust
//   MAU8  range handling (zero / underflow-FTZ / overflow-to-inf) + pack
//
// Fidelity notes (vs src/core): register adds wrap (hardware semantics:
// pair with core's OverflowPolicy::kWrap); reads that would need a
// subnormal output flush to signed zero; exponent overflow clamps to ±inf.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/accumulator.h"
#include "pisa/pipeline.h"
#include "pisa/resources.h"
#include "telemetry/metrics.h"

namespace fpisa::pisa {

enum class FpisaOp : std::uint8_t { kAdd = 1, kRead = 2, kReset = 3 };

struct FpisaProgramOptions {
  core::Variant variant = core::Variant::kFull;  ///< kFull requires RSAW ext
  int lanes = 1;               ///< parallel FPISA modules (FP values/packet)
  std::size_t slots = 256;     ///< aggregation slots per lane
  int num_workers = 8;         ///< completion threshold for the counter
  bool convert_endianness = false;  ///< hosts send little-endian payloads
};

/// Packet layout (big-endian on the wire):
///   [0]      opcode        [1..2]   slot        [3]     worker
///   [4..7]   bitmap (out)  [8..9]   count (out)
///   [10..13] epoch/generation stamp  [14..15] payload checksum
///   [16..]   lanes x 4B FP32 value
/// The stamp is (switch generation << 16) | per-slot epoch: the epoch bumps
/// on every slot reset (round-robin reuse), the generation on switch state
/// loss, so stale duplicates and pre-reboot packets are rejectable. The
/// checksum covers (slot, worker, stamp, payload). Both fields are zero on
/// the legacy (fault-guard-off) paths; only the guarded batch ingress
/// verifies them.
inline constexpr int kFpisaHeaderBytes = 16;

/// Internet-checksum-style fold of (slot, worker, stamp, payload) to 16
/// bits: the end-around-carry folding detects any single flipped bit.
inline std::uint16_t fpisa_checksum(std::uint16_t slot, std::uint8_t worker,
                                    std::uint32_t stamp,
                                    std::span<const std::uint32_t> values) {
  std::uint64_t sum = slot;
  sum += static_cast<std::uint64_t>(worker) << 16;
  sum += stamp;
  for (const std::uint32_t v : values) sum += v;
  sum = (sum & 0xFFFFFFFFull) + (sum >> 32);
  sum = (sum & 0xFFFFull) + (sum >> 16);
  sum = (sum & 0xFFFFull) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Packet make_fpisa_packet(FpisaOp op, std::uint16_t slot, std::uint8_t worker,
                         std::span<const std::uint32_t> values,
                         bool little_endian_payload = false,
                         std::uint32_t stamp = 0, std::uint16_t checksum = 0);
/// Zero-allocation variant: reuses `pkt`'s byte buffer across packets.
void make_fpisa_packet_into(Packet& pkt, FpisaOp op, std::uint16_t slot,
                            std::uint8_t worker,
                            std::span<const std::uint32_t> values,
                            bool little_endian_payload = false,
                            std::uint32_t stamp = 0,
                            std::uint16_t checksum = 0);

struct FpisaResult {
  std::vector<std::uint32_t> values;
  std::uint32_t bitmap = 0;
  std::uint16_t count = 0;
};
FpisaResult parse_fpisa_result(const Packet& pkt, int lanes,
                               bool little_endian_payload = false);
/// Zero-allocation variant: reuses `out.values` across packets.
void parse_fpisa_result_into(const Packet& pkt, int lanes, FpisaResult& out,
                             bool little_endian_payload = false);

/// Builds the executable program for the given switch configuration.
/// Asserts (via the simulator) if the options demand extensions the config
/// does not provide (e.g. kFull variant without ext.rsaw).
SwitchProgram build_fpisa_program(const SwitchConfig& config,
                                  const FpisaProgramOptions& opts);

/// Resource demand of one FPISA module (plus the shared bitmap/counter
/// logic) for the Table 3 analysis. VLIW counts are per distinct
/// instruction, matching how the Tofino compiler accounts them.
std::vector<LogicalTableDesc> fpisa_resource_descriptors(
    const SwitchConfig& config, const FpisaProgramOptions& opts);

/// Convenience wrapper: a switch running the FPISA aggregation program.
///
/// Observability: the switch keeps host-visible per-MAU operation counters
/// (the §5.2.1 add / rounded-add / overwrite / left-shift taxonomy, counted
/// identically by the interpreted and compiled-batch paths), dedup-hit and
/// packet counts, and a live occupied-slot figure. All of it is mirrored
/// into the process telemetry registry under labels {sw=<instance id>}.
/// The switch is not thread-safe (callers already serialize access — the
/// cluster holds a per-shard mutex), so the members are plain integers.
class FpisaSwitch {
 public:
  FpisaSwitch(SwitchConfig config, FpisaProgramOptions opts)
      : opts_(opts),
        sim_(config, build_fpisa_program(config, opts)),
        zeros_(static_cast<std::size_t>(opts.lanes), 0),
        slot_epoch_(opts.slots, 0) {
    init_metrics();
  }

  /// Sends one add packet carrying `values` (one per lane, FP32 bits);
  /// returns the post-add aggregate the switch emits.
  FpisaResult add(std::uint16_t slot, std::uint8_t worker,
                  std::span<const std::uint32_t> values);
  /// Reads the current aggregate without modifying it.
  FpisaResult read(std::uint16_t slot);
  /// Reads and clears a slot (SwitchML-style slot reuse).
  FpisaResult read_and_reset(std::uint16_t slot);

  /// Zero-allocation reads for hot protocol loops (reuse `out.values`).
  void read_into(std::uint16_t slot, FpisaResult& out);
  void read_and_reset_into(std::uint16_t slot, FpisaResult& out);

  /// Batched add fast path: applies `slots.size()` add packets in order,
  /// packet i carrying the `lanes` FP32 values at values[i*lanes ..]. The
  /// register / dedup-bitmap / completion-counter evolution is bit-identical
  /// to calling add() per packet (enforced by tests), but the packets skip
  /// wire encode/parse and table interpretation entirely and no per-packet
  /// result is materialized — callers that want the aggregate use read().
  void add_batch(std::span<const std::uint16_t> slots,
                 std::span<const std::uint8_t> workers,
                 std::span<const std::uint32_t> values);

  /// Per-batch guard rejection counts from add_batch_guarded.
  struct GuardStats {
    std::uint64_t corrupt_rejected = 0;  ///< checksum mismatch
    std::uint64_t stale_rejected = 0;    ///< epoch/generation stamp mismatch
  };

  /// Guarded batched add: like add_batch, but packet i additionally carries
  /// an epoch/generation stamp and a payload checksum. A packet whose
  /// checksum does not cover its bytes (bit flipped in flight) or whose
  /// stamp disagrees with the slot's current stamp (a stale duplicate from
  /// before the slot was reset, or a pre-wipe packet) is dropped before it
  /// can touch register state; the drops are tallied in `guard` and in the
  /// registry. Accepted packets update state exactly as add_batch would.
  void add_batch_guarded(std::span<const std::uint16_t> slots,
                         std::span<const std::uint8_t> workers,
                         std::span<const std::uint32_t> stamps,
                         std::span<const std::uint16_t> checksums,
                         std::span<const std::uint32_t> values,
                         GuardStats& guard);

  /// Whole-switch state loss (reboot): every register — per-lane exponent
  /// and mantissa arrays, dedup bitmap, completion counter — is zeroed and
  /// the generation is bumped so packets stamped before the wipe are
  /// rejected by the guarded ingress instead of corrupting fresh sums.
  void wipe_state();

  /// Current epoch/generation stamp the guarded ingress expects for
  /// `slot`: (generation << 16) | slot epoch. The epoch bumps on every
  /// reset of the slot (both the interpreted kReset path and the batched
  /// read_and_reset), the generation on wipe_state().
  std::uint32_t slot_stamp(std::uint16_t slot) const {
    return (static_cast<std::uint32_t>(generation_) << 16) |
           slot_epoch_[slot];
  }
  std::uint16_t generation() const { return generation_; }

  /// Batched egress fast path: reads `n` consecutive slots [slot0,
  /// slot0 + n) through the compiled renormalize-and-assemble (MAU5-8),
  /// writing lane-major FP32 results into `out_values` (n * lanes
  /// entries; slot k's lane l lands at out_values[k*lanes + l]). Results
  /// and register state are bit-identical to n read() packets — including
  /// the egress FTZ / overflow-to-inf range handling — but skip wire
  /// encode/parse and table interpretation (enforced by
  /// tests/test_pisa_fpisa_program.cpp). `out_bitmaps` / `out_counts`
  /// (size n each) capture the per-slot dedup bitmap and completion
  /// counter the result packets would carry; pass empty spans to skip.
  void read_batch(std::uint16_t slot0, std::size_t n,
                  std::span<std::uint32_t> out_values,
                  std::span<std::uint32_t> out_bitmaps = {},
                  std::span<std::uint16_t> out_counts = {});
  /// Read-and-reset variant (SwitchML-style slot recycling): identical
  /// outputs to read_batch, then clears the slots' exponent / mantissa /
  /// bitmap / counter registers exactly as n read_and_reset() packets
  /// would.
  void read_and_reset_batch(std::uint16_t slot0, std::size_t n,
                            std::span<std::uint32_t> out_values,
                            std::span<std::uint32_t> out_bitmaps = {},
                            std::span<std::uint16_t> out_counts = {});

  const FpisaProgramOptions& options() const { return opts_; }
  SwitchSim& sim() { return sim_; }

  /// Per-MAU operation counts (§5.2.1 taxonomy) for every lane-add this
  /// switch executed, batched or interpreted. Duplicates (absorbed by the
  /// dedup bitmap) are excluded — they caused no register operation.
  const core::OpCounters& op_counters() const { return ops_; }
  /// Add packets absorbed by the dedup bitmap (retransmissions).
  std::uint64_t dedup_hits() const { return dedup_hits_; }
  /// Slots whose dedup bitmap is currently nonzero (in-flight aggregates).
  std::int64_t occupied_slots() const { return occupied_; }

 private:
  FpisaResult roundtrip(FpisaOp op, std::uint16_t slot, std::uint8_t worker,
                        std::span<const std::uint32_t> values);
  void roundtrip_into(FpisaOp op, std::uint16_t slot, std::uint8_t worker,
                      std::span<const std::uint32_t> values, FpisaResult& out);
  /// One lane's ingress register update (the compiled form of MAU0-4).
  void apply_add_lane(int lane, std::size_t slot, std::uint32_t value_bits);
  /// Shared body of the batched read paths (the compiled form of MAU5-8).
  void collect_batch(std::uint16_t slot0, std::size_t n, bool reset,
                     std::span<std::uint32_t> out_values,
                     std::span<std::uint32_t> out_bitmaps,
                     std::span<std::uint16_t> out_counts);
  /// Read-only classification of one lane add against the current register
  /// state — the single source of §5.2.1 accounting for both the compiled
  /// and the interpreted ingress.
  void classify_add_lane(int lane, std::size_t slot, std::uint32_t value_bits);
  void init_metrics();
  /// Pushes (packets, dedup, op-count deltas, occupancy) to the registry.
  void flush_metrics(std::size_t packets);

  FpisaProgramOptions opts_;
  SwitchSim sim_;
  Packet scratch_pkt_;                  ///< reused by the *_into paths
  std::vector<std::uint32_t> zeros_;    ///< read/reset payload template

  core::OpCounters ops_{};
  std::uint64_t dedup_hits_ = 0;
  std::int64_t occupied_ = 0;
  /// Guard state: per-slot reset epoch + whole-switch generation (see
  /// slot_stamp). Maintained unconditionally — a couple of integer bumps
  /// per reset — so guarded and unguarded traffic can interleave.
  std::vector<std::uint16_t> slot_epoch_;
  std::uint16_t generation_ = 0;
  std::uint64_t guard_corrupt_ = 0;
  std::uint64_t guard_stale_ = 0;
  core::OpCounters ops_flushed_{};      ///< registry high-water marks
  std::uint64_t dedup_flushed_ = 0;
  std::uint64_t guard_corrupt_flushed_ = 0;
  std::uint64_t guard_stale_flushed_ = 0;
  telemetry::Counter* m_packets_ = nullptr;
  telemetry::Counter* m_dedup_ = nullptr;
  telemetry::Counter* m_corrupt_ = nullptr;
  telemetry::Counter* m_stale_ = nullptr;
  telemetry::Gauge* m_occupancy_ = nullptr;
  telemetry::Counter* m_ops_[7] = {};
};

}  // namespace fpisa::pisa
