// Packet Header Vector: the per-packet metadata that flows through a PISA
// pipeline (paper Fig 1). Fields are fixed-width integer containers declared
// up front (the "parser ... extracts user-specified fields of the inbound
// packet to per-packet metadata"); match keys and action operands can only
// reference these containers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fpisa::pisa {

/// Handle to a declared PHV field.
struct FieldId {
  std::int32_t index = -1;
  bool valid() const { return index >= 0; }
  friend bool operator==(FieldId a, FieldId b) { return a.index == b.index; }
};

/// Declares the fields a program uses. Widths are in bits (1..64); values
/// are stored masked to their width. Signed interpretation (for arithmetic
/// shifts and signed compares) sign-extends from the declared width.
class PhvLayout {
 public:
  FieldId declare(std::string name, int width_bits);
  FieldId find(std::string_view name) const;  ///< invalid id if absent

  int width(FieldId f) const { return widths_[static_cast<std::size_t>(f.index)]; }
  const std::string& name(FieldId f) const {
    return names_[static_cast<std::size_t>(f.index)];
  }
  std::size_t field_count() const { return widths_.size(); }

  /// Total PHV bits declared (a crude capacity check; Tofino has ~4Kb).
  int total_bits() const;

 private:
  std::vector<std::string> names_;
  std::vector<int> widths_;
};

/// A packet's field values. Cheap to copy; one per packet traversal.
class Phv {
 public:
  explicit Phv(const PhvLayout& layout)
      : layout_(&layout), values_(layout.field_count(), 0) {}

  /// Unsigned value, masked to the field width.
  std::uint64_t get(FieldId f) const {
    return values_[static_cast<std::size_t>(f.index)];
  }
  /// Signed value: sign-extended from the field width.
  std::int64_t get_signed(FieldId f) const;

  void set(FieldId f, std::uint64_t v);

  const PhvLayout& layout() const { return *layout_; }

 private:
  const PhvLayout* layout_;
  std::vector<std::uint64_t> values_;
};

}  // namespace fpisa::pisa
