// Tofino-style MAU resource model and allocator — reproduces the paper's
// Appendix B / Table 3 ("FPISA resource utilization") and its headline
// conclusion: per-stage VLIW pressure from emulating variable-length shifts
// limits baseline Tofino to ONE FPISA module per pipeline, while the §4.2
// 2-operand-shift extension lets many modules share the pipe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/pipeline.h"

namespace fpisa::pisa {

/// Resource demand of one logical table (or register/sALU binding) placed
/// in one stage. Produced by program builders; consumed by the allocator.
struct LogicalTableDesc {
  std::string name;
  int stage = 0;      ///< stage index within the program's layout
  MatchKind kind = MatchKind::kExact;
  int key_bits = 0;
  int entries = 0;
  int vliw_slots = 0;     ///< distinct VLIW instructions this table needs
  int stateful_alus = 0;
  std::uint64_t register_bits = 0;  ///< stateful storage bound to the table
  int result_buses = 1;
  bool per_instance = true;  ///< false: shared across parallel FPISA modules
};

/// Per-resource usage/capacity rollup.
struct ResourceRow {
  std::string resource;
  double total_used = 0;
  double total_capacity = 0;
  double max_stage_used = 0;
  double stage_capacity = 0;

  double total_pct() const {
    return total_capacity > 0 ? total_used / total_capacity : 0.0;
  }
  double max_stage_pct() const {
    return stage_capacity > 0 ? max_stage_used / stage_capacity : 0.0;
  }
};

struct ResourceReport {
  int stages_used = 0;
  int total_stages = 0;
  std::vector<ResourceRow> rows;  ///< SRAM, TCAM, sALU, VLIW, xbar, bus, hash

  const ResourceRow* find(const std::string& name) const;
  std::string render() const;  ///< Table-3-style ASCII table
};

/// Derived per-stage usage for one module instance.
struct StageUsage {
  int vliw = 0;
  int salus = 0;
  int sram_blocks = 0;
  int tcam_blocks = 0;
  int xbar_bytes = 0;
  int hash_bits = 0;
  int result_buses = 0;
};

/// Computes per-stage usage from descriptors (SRAM blocks = 128 Kb;
/// TCAM blocks = 44b x 512 entries; hash bits modeled as
/// 4 ways * ceil(log2(entries)) for exact tables).
std::vector<StageUsage> stage_usage(const std::vector<LogicalTableDesc>& descs,
                                    int num_stages, bool shared_only = false);

/// Analyzes a single module instance against the switch limits.
ResourceReport analyze(const std::vector<LogicalTableDesc>& descs,
                       const SwitchConfig& config);

/// Greedy packer: how many parallel module instances fit in one pipeline?
/// Instances may stagger their stage layout downward within the pipe (the
/// dependency order of the module's tables is preserved); shared
/// (per_instance=false) resources are placed once.
int max_instances(const std::vector<LogicalTableDesc>& descs,
                  const SwitchConfig& config);

}  // namespace fpisa::pisa
