#include "pisa/table.h"

#include <cassert>

namespace fpisa::pisa {

void MatchTable::add_entry(TableEntry entry) {
  assert(entry.values.size() == key_fields_.size());
  if (kind_ != MatchKind::kExact) {
    assert(entry.masks.size() == key_fields_.size());
  }
  assert(entry.action_index >= 0 &&
         entry.action_index < static_cast<int>(actions_.size()));
  entries_.push_back(std::move(entry));
}

const Action* MatchTable::lookup(const Phv& phv) const {
  for (const TableEntry& e : entries_) {
    bool hit = true;
    for (std::size_t i = 0; i < key_fields_.size(); ++i) {
      const std::uint64_t key = phv.get(key_fields_[i]);
      if (kind_ == MatchKind::kExact) {
        if (key != e.values[i]) {
          hit = false;
          break;
        }
      } else {
        if ((key & e.masks[i]) != (e.values[i] & e.masks[i])) {
          hit = false;
          break;
        }
      }
    }
    if (hit) return &actions_[static_cast<std::size_t>(e.action_index)];
  }
  if (default_action_ >= 0) {
    return &actions_[static_cast<std::size_t>(default_action_)];
  }
  return nullptr;
}

int MatchTable::max_action_slots() const {
  int m = 0;
  for (const Action& a : actions_) m = std::max(m, a.vliw_slots());
  return m;
}

int MatchTable::total_action_slots() const {
  int total = 0;
  for (const Action& a : actions_) total += a.vliw_slots();
  return total;
}

}  // namespace fpisa::pisa
