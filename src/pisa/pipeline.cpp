#include "pisa/pipeline.h"

#include <cassert>

namespace fpisa::pisa {

std::uint64_t read_be(const std::uint8_t* p, int len) {
  std::uint64_t v = 0;
  for (int i = 0; i < len; ++i) v = (v << 8) | p[i];
  return v;
}

void write_be(std::uint8_t* p, int len, std::uint64_t v) {
  for (int i = len - 1; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}

std::uint64_t byteswap(std::uint64_t v, int len) {
  std::uint64_t out = 0;
  for (int i = 0; i < len; ++i) {
    out = (out << 8) | (v & 0xFF);
    v >>= 8;
  }
  return out;
}

RegisterArray& SwitchProgram::add_register(std::string name, int width_bits,
                                           std::size_t size) {
  registers.push_back(
      std::make_unique<RegisterArray>(std::move(name), width_bits, size));
  return *registers.back();
}

SwitchSim::SwitchSim(SwitchConfig config, SwitchProgram program)
    : config_(config), program_(std::move(program)) {
  assert(static_cast<int>(program_.ingress.size()) +
                 static_cast<int>(program_.egress.size()) <=
             config_.num_stages &&
         "program uses more MAU stages than the pipe has");
}

void SwitchSim::run_stages(std::vector<StageProgram>& stages, Phv& phv) {
  for (StageProgram& stage : stages) {
    for (const MatchTable& table : stage.tables) {
      if (const Action* a = table.lookup(phv)) {
        apply_action(*a, phv, config_.ext.two_operand_shift);
      }
    }
    for (std::size_t s = 0; s < stage.salus.size(); ++s) {
      const StatefulCall& call = stage.salus[s];
      if (call.pred_field.valid() &&
          phv.get(call.pred_field) != call.pred_value) {
        continue;
      }
      if (call.pred2_field.valid() &&
          phv.get(call.pred2_field) != call.pred2_value) {
        continue;
      }
      RegisterArray& reg =
          *program_.registers[static_cast<std::size_t>(call.register_index)];
      apply_salu(call.spec, reg, phv, config_.ext.rsaw);
      if (s < stage.salu_post_ops.size()) {
        apply_action(stage.salu_post_ops[s], phv,
                     config_.ext.two_operand_shift);
      }
    }
  }
}

void SwitchSim::process(Packet& pkt) {
  ++packets_;
  for (auto& reg : program_.registers) reg->begin_packet();

  Phv phv(program_.phv);
  // Parse: extract declared fields (network byte order; optional
  // endianness conversion if the extension is enabled).
  for (const ParsedField& f : program_.parser) {
    assert(f.byte_offset + f.byte_len <= static_cast<int>(pkt.bytes.size()));
    std::uint64_t v = read_be(pkt.bytes.data() + f.byte_offset, f.byte_len);
    if (f.convert && config_.ext.parser_endianness) {
      v = byteswap(v, f.byte_len);
    }
    phv.set(f.field, v);
  }

  run_stages(program_.ingress, phv);
  // Traffic manager: queueing is modeled by src/net; functionally a pass.
  run_stages(program_.egress, phv);

  // Recirculation: bounded re-entry into the ingress pipeline. Each pass
  // is a new packet traversal, so the once-per-packet register guard
  // resets — this is precisely the paper's "exception" to the single
  // register access rule.
  if (program_.recirc_field.valid()) {
    int passes = 0;
    while (phv.get(program_.recirc_field) != 0 &&
           passes < kMaxRecirculations) {
      ++passes;
      ++recirculations_;
      phv.set(program_.recirc_field, phv.get(program_.recirc_field) - 1);
      for (auto& reg : program_.registers) reg->begin_packet();
      run_stages(program_.ingress, phv);
      run_stages(program_.egress, phv);
    }
  }

  // Deparse: write fields back into the packet.
  for (const ParsedField& f : program_.deparser) {
    assert(f.byte_offset + f.byte_len <= static_cast<int>(pkt.bytes.size()));
    std::uint64_t v = phv.get(f.field);
    if (f.convert && config_.ext.parser_endianness) {
      v = byteswap(v, f.byte_len);
    }
    write_be(pkt.bytes.data() + f.byte_offset, f.byte_len, v);
  }
}

}  // namespace fpisa::pisa
