namespace fpisa::pisa {
// Module translation unit; sources are added as the module grows.
}  // namespace fpisa::pisa
