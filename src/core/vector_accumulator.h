// Vector-wide FPISA accumulation: the in-network-aggregation data layout.
// One exponent register array + one mantissa register array (Fig 3), shared
// configuration and pooled event counters. This is what a SwitchML-style
// aggregation slot region looks like, and what the ML substrate uses to
// aggregate gradient vectors.
//
// Storage is a structure-of-arrays RegisterFile so element-wise adds run
// through the batched branchless kernel (core/batch_accumulator.h) and
// truncating reads run through its egress twin (fpisa_read_batch) — the
// scalar reference loops remain as the fallback for non-FP32 formats and
// are the bit-exactness oracle either way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/accumulator.h"
#include "core/batch_accumulator.h"

namespace fpisa::core {

class FpisaVector {
 public:
  FpisaVector(std::size_t size, AccumulatorConfig cfg = {});

  std::size_t size() const { return regs_.size(); }

  /// Element-wise add of one worker's packed vector (FP32 fast path:
  /// batched branchless kernel when the config is batch-eligible).
  void add(std::span<const float> values);
  /// Element-wise add in the configured format's packed encoding.
  void add_bits(std::span<const std::uint64_t> bits);

  /// Renormalize every element into `out` (state unchanged).
  void read(std::span<float> out) const;
  void read_bits(std::span<std::uint64_t> out) const;
  /// Exact arithmetic value of element i's denormalized state.
  double read_value(std::size_t i) const;

  void reset();

  const OpCounters& counters() const { return counters_; }
  const AccumulatorConfig& config() const { return cfg_; }
  FpState state(std::size_t i) const { return {regs_.exp[i], regs_.man[i]}; }

 private:
  AccumulatorConfig cfg_;
  RegisterFile regs_;
  OpCounters counters_{};
};

/// Convenience: sums `workers` vectors of equal length with the given
/// config; returns the renormalized result and the pooled counters.
struct AggregateResult {
  std::vector<float> sum;
  OpCounters counters;
};
AggregateResult aggregate(std::span<const std::vector<float>> workers,
                          AccumulatorConfig cfg = {});

/// Zero-copy flavor: sums equal-length worker *views* (span-of-spans — the
/// collective layer's currency) into `out` (out.size() == view length);
/// returns the pooled counters. `aggregate` above is a thin adapter over
/// this.
OpCounters aggregate_into(std::span<const std::span<const float>> workers,
                          std::span<float> out, AccumulatorConfig cfg = {});

}  // namespace fpisa::core
