#include "core/clz_table.h"

namespace fpisa::core {

std::vector<ClzLpmEntry> build_clz_lpm_table(int reg_bits, int target_bit) {
  std::vector<ClzLpmEntry> table;
  table.reserve(static_cast<std::size_t>(reg_bits) + 1);
  // Longest prefixes first: "0^(reg_bits-1) 1" down to "1".
  for (int lz = reg_bits - 1; lz >= 0; --lz) {
    const int lead_pos = reg_bits - 1 - lz;  // bit index of the leading 1
    ClzLpmEntry e;
    e.prefix_len = lz + 1;
    e.prefix_bits = std::uint64_t{1} << lead_pos;
    e.shift = lead_pos - target_bit;
    e.leading_zeros = lz;
    table.push_back(e);
  }
  // Default entry: key == 0, "do nothing".
  table.push_back(ClzLpmEntry{0, 0, 0, reg_bits});
  return table;
}

int lpm_lookup_shift(const std::vector<ClzLpmEntry>& table, std::uint64_t key,
                     int reg_bits) {
  for (const auto& e : table) {
    if (e.prefix_len == 0) return e.shift;  // default
    // Compare the top prefix_len bits.
    const int drop = reg_bits - e.prefix_len;
    if ((key >> drop) == (e.prefix_bits >> drop)) return e.shift;
  }
  return 0;
}

}  // namespace fpisa::core
