#include "core/compare.h"

namespace fpisa::core {
namespace {

/// Sign class of a decomposed value: -1, 0, +1.
int sign_of(const Decomposed& d) {
  if (d.man > 0) return 1;
  if (d.man < 0) return -1;
  return 0;
}

}  // namespace

int fpisa_compare(std::uint64_t a_bits, std::uint64_t b_bits,
                  const FloatFormat& fmt) {
  const Decomposed a = extract(a_bits, fmt).value;
  const Decomposed b = extract(b_bits, fmt).value;
  const int sa = sign_of(a);
  const int sb = sign_of(b);
  if (sa != sb) return sa < sb ? -1 : 1;
  if (sa == 0) return 0;  // both zero (±0 equal)

  // Same nonzero sign. extract() yields canonical mantissas (leading 1 at
  // man_bits for normals, smaller only for subnormals which sit at the
  // minimum exponent), so magnitude order is lexicographic on (exp, |man|).
  // The switch reaches the same answer by aligning and subtracting; this
  // form is the exact fixed point of that procedure.
  const std::int64_t ma = a.man < 0 ? -a.man : a.man;
  const std::int64_t mb = b.man < 0 ? -b.man : b.man;
  int mag;  // compare |a| vs |b|
  if (a.exp != b.exp) {
    mag = a.exp < b.exp ? -1 : 1;
  } else if (ma != mb) {
    mag = ma < mb ? -1 : 1;
  } else {
    mag = 0;
  }
  return sa > 0 ? mag : -mag;
}

bool PruneRegister::offer(std::uint64_t bits) {
  if (empty_) {
    empty_ = false;
    value_ = bits;
    return true;
  }
  const int cmp = fpisa_compare(bits, value_, *fmt_);
  const bool keep = mode_ == Mode::kMax ? cmp > 0 : cmp < 0;
  if (keep) value_ = bits;
  return keep;
}

}  // namespace fpisa::core
