// Floating-point format descriptors (paper §2.2, §3.3 "Other FP formats").
//
// FPISA is format-agnostic: any (sign, exponent, mantissa) split can be
// decomposed into the switch's (exponent register, signed mantissa register)
// representation. The descriptors here drive every layer of the stack: the
// software accumulators, the PISA switch program generator, and the
// host-side conversion benchmarks.
#pragma once

#include <cstdint>
#include <string_view>

namespace fpisa::core {

struct FloatFormat {
  std::string_view name;
  int exp_bits;   ///< biased exponent field width
  int man_bits;   ///< explicit fraction bits (excluding the implied 1)
  int total_bits; ///< 1 + exp_bits + man_bits
  int default_reg_bits;  ///< natural switch register width to accumulate in

  constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
  constexpr std::int64_t max_biased_exp() const {
    return (std::int64_t{1} << exp_bits) - 1;  // all-ones: inf/NaN
  }
  /// Significand width including the implied leading 1.
  constexpr int significand_bits() const { return man_bits + 1; }
  /// Headroom bits left of the significand in a reg_bits-wide signed
  /// register (excluding the sign bit): FP32 in 32-bit -> 7 (paper §3.3).
  constexpr int headroom(int reg_bits, int guard_bits = 0) const {
    return reg_bits - significand_bits() - 1 - guard_bits;
  }
  constexpr std::uint64_t exp_mask() const {
    return (std::uint64_t{1} << exp_bits) - 1;
  }
  constexpr std::uint64_t man_mask() const {
    return (std::uint64_t{1} << man_bits) - 1;
  }
  constexpr std::uint64_t sign_mask() const {
    return std::uint64_t{1} << (total_bits - 1);
  }
};

/// IEEE 754 binary32. Accumulated in a 32-bit register: 7 headroom bits.
inline constexpr FloatFormat kFp32{"fp32", 8, 23, 32, 32};
/// IEEE 754 binary16. Accumulated in a 16-bit register: 4 headroom bits.
inline constexpr FloatFormat kFp16{"fp16", 5, 10, 16, 16};
/// bfloat16. Accumulated in a 16-bit register: 7 headroom bits.
inline constexpr FloatFormat kBf16{"bf16", 8, 7, 16, 16};
/// IEEE 754 binary64. Accumulated in a 64-bit register: 10 headroom bits.
inline constexpr FloatFormat kFp64{"fp64", 11, 52, 64, 64};

}  // namespace fpisa::core
