// FPISA comparison (paper §2.2: "comparisons are typically implemented
// using subtraction"; used by the Cheetah-style query pruning of §6).
//
// The switch realizes `a < b` by aligning the decomposed operands and
// subtracting mantissas — exactly the add datapath with the sign flipped.
// These helpers mirror that, plus a register comparator that keeps a
// running max/min the way a pruning stage's stateful register does.
#pragma once

#include <cstdint>

#include "core/decompose.h"
#include "core/float_format.h"

namespace fpisa::core {

/// Three-way compare of two packed finite values via decomposed
/// subtraction. Returns -1, 0, or +1. ±0 compare equal (as in IEEE).
/// Behaviour on inf/NaN is not defined by FPISA; callers must filter.
int fpisa_compare(std::uint64_t a_bits, std::uint64_t b_bits,
                  const FloatFormat& fmt);

/// A stateful max- or min-holding register, as used by in-switch pruning:
/// each incoming value is compared against the stored one and conditionally
/// replaces it. Empty until the first offer.
class PruneRegister {
 public:
  enum class Mode { kMax, kMin };

  explicit PruneRegister(Mode mode, const FloatFormat& fmt = kFp32)
      : mode_(mode), fmt_(&fmt) {}

  /// Offers a value; returns true if the register kept it (i.e. the value
  /// was a new extreme and the packet should be forwarded / retained).
  bool offer(std::uint64_t bits);

  bool empty() const { return empty_; }
  std::uint64_t value_bits() const { return value_; }

  void reset() { empty_ = true; value_ = 0; }

 private:
  Mode mode_;
  const FloatFormat* fmt_;
  bool empty_ = true;
  std::uint64_t value_ = 0;
};

}  // namespace fpisa::core
