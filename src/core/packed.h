// Packed-format encode/decode between native double/float values and the
// bit patterns of any FloatFormat. Used for FP16/BF16 emulation in the ML
// substrate and as the boundary representation entering/leaving the switch.
#pragma once

#include <bit>
#include <cstdint>

#include "core/float_format.h"

namespace fpisa::core {

/// Exact value of a packed bit pattern (inf -> ±inf, NaN -> quiet NaN).
/// Exact for every format with man_bits <= 52; binary64 is the identity.
double decode(std::uint64_t bits, const FloatFormat& fmt);

/// Round-to-nearest-even encoding of `value` into `fmt`. Handles zero,
/// subnormals, overflow to infinity, and NaN propagation.
std::uint64_t encode(double value, const FloatFormat& fmt);

/// Convenience for the ubiquitous binary32 case.
inline std::uint32_t fp32_bits(float v) { return std::bit_cast<std::uint32_t>(v); }
inline float fp32_value(std::uint32_t b) { return std::bit_cast<float>(b); }

/// Classification of a packed value.
enum class FpClass { kZero, kSubnormal, kNormal, kInf, kNaN };
FpClass classify(std::uint64_t bits, const FloatFormat& fmt);

}  // namespace fpisa::core
