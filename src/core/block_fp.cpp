#include "core/block_fp.h"

#include <cassert>
#include <algorithm>
#include <cmath>

namespace fpisa::core {

BlockFp block_encode(std::span<const float> values, const BlockFpFormat& fmt) {
  BlockFp block;
  block.mantissas.assign(values.size(), 0);

  float max_abs = 0.0f;
  for (const float v : values) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0f) return block;  // shared_exp 0, all-zero mantissas

  int ex = 0;
  (void)std::frexp(max_abs, &ex);  // max_abs = m * 2^ex, m in [0.5, 1)
  block.shared_exp = (ex - 1) + fmt.bias();

  const int scale = block.shared_exp - fmt.bias() - fmt.frac_bits();
  const std::int32_t lim = (1 << (fmt.mantissa_bits - 1)) - 1;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto m = static_cast<std::int64_t>(
        std::llrint(std::ldexp(static_cast<double>(values[i]), -scale)));
    block.mantissas[i] =
        static_cast<std::int32_t>(std::clamp<std::int64_t>(m, -lim, lim));
  }
  return block;
}

std::vector<float> block_decode(const BlockFp& block, const BlockFpFormat& fmt) {
  std::vector<float> out(block.mantissas.size());
  const int scale = block.shared_exp - fmt.bias() - fmt.frac_bits();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(
        std::ldexp(static_cast<double>(block.mantissas[i]), scale));
  }
  return out;
}

BlockFpisaAccumulator::BlockFpisaAccumulator(std::size_t lanes,
                                             BlockFpFormat fmt,
                                             Variant variant, int reg_bits)
    : fmt_(fmt), variant_(variant), reg_bits_(reg_bits), man_(lanes, 0) {}

void BlockFpisaAccumulator::add_block(const BlockFp& block) {
  assert(block.mantissas.size() == man_.size());
  ++counters_.adds;

  if (empty_) {
    empty_ = false;
    exp_ = block.shared_exp;
    for (std::size_t i = 0; i < man_.size(); ++i) man_[i] = block.mantissas[i];
    return;
  }

  if (block.shared_exp <= exp_) {
    // One exponent comparison covers all lanes: shift each incoming
    // mantissa right and add (the block-FP efficiency win).
    const int d = exp_ - block.shared_exp;
    for (std::size_t i = 0; i < man_.size(); ++i) {
      const std::int64_t m = block.mantissas[i];
      if (detail::asr_inexact(m, d)) ++counters_.rounded_adds;
      man_[i] = detail::add_register(man_[i], detail::asr(m, d), reg_bits_,
                                     OverflowPolicy::kSaturate, counters_);
    }
    return;
  }

  const int d = block.shared_exp - exp_;
  if (variant_ == Variant::kFull) {
    for (std::size_t i = 0; i < man_.size(); ++i) {
      if (detail::asr_inexact(man_[i], d)) ++counters_.rounded_adds;
      man_[i] = detail::add_register(detail::asr(man_[i], d),
                                     block.mantissas[i], reg_bits_,
                                     OverflowPolicy::kSaturate, counters_);
    }
    exp_ = block.shared_exp;
    return;
  }

  // FPISA-A at block granularity.
  const int headroom = reg_bits_ - fmt_.mantissa_bits - 1;
  if (d <= headroom) {
    for (std::size_t i = 0; i < man_.size(); ++i) {
      const std::uint64_t before = counters_.saturations;
      man_[i] = detail::add_register(
          man_[i], static_cast<std::int64_t>(block.mantissas[i]) << d,
          reg_bits_, OverflowPolicy::kSaturate, counters_);
      if (counters_.saturations != before) ++counters_.lshift_overflows;
    }
    return;
  }
  for (std::size_t i = 0; i < man_.size(); ++i) {
    if (man_[i] != 0) ++counters_.overwrites;
    man_[i] = block.mantissas[i];
  }
  exp_ = block.shared_exp;
}

std::vector<float> BlockFpisaAccumulator::read() const {
  std::vector<float> out(man_.size());
  const int scale = exp_ - fmt_.bias() - fmt_.frac_bits();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] =
        static_cast<float>(std::ldexp(static_cast<double>(man_[i]), scale));
  }
  return out;
}

}  // namespace fpisa::core
