// Internal: the branchless FPISA lane primitive shared by the scalar and
// AVX2 batch backends (and used scalar-side for vector tails). Not part of
// the public core API — include batch_accumulator.h instead.
//
// Every decision of the scalar reference (`fpisa_add`) is re-expressed as
// a select so one instruction stream handles all lanes:
//   * align-vs-grow (full FPISA): shift whichever mantissa has the smaller
//     exponent; the shifted operand and distance are selected, not branched.
//   * headroom / overwrite (FPISA-A): masks `d > 0` and `d > headroom`
//     pick between aligned add, left-shifted add, and overwrite (overwrite
//     is folded into the same adder as `0 + m_in`, which can never
//     saturate because an extracted value always fits the register).
//   * counters: every event is a 0/1 lane contribution summed into
//     BatchTallies.
// Shift distances are clamped to 63 — identical results to the reference's
// 64-clamp because every operand fits in well under 63 magnitude bits —
// and the reference's asymmetric `asr_inexact` rule at the >=64 boundary
// is replicated bit-for-bit.
#pragma once

#include <cstdint>

#include "core/accumulator.h"
#include "core/batch_accumulator.h"

namespace fpisa::core::detail {

/// asr with the distance clamped: for s >= 64 the reference returns the
/// sign (0 or -1), which `v >> 63` also yields for any |v| < 2^63.
inline std::int64_t asr_clamped(std::int64_t v, std::int32_t s) {
  return v >> (s > 63 ? 63 : s);
}

/// Bit-exact replica of detail::asr_inexact, including its distinct rule
/// for distances >= 64 (where v == -1 counts as exact).
inline bool asr_inexact_clamped(std::int64_t v, std::int32_t s) {
  const std::uint64_t mask =
      (std::uint64_t{1} << (s > 63 ? 63 : (s > 0 ? s : 0))) - 1;
  const bool below64 = (static_cast<std::uint64_t>(v) & mask) != 0;
  const bool at_or_above64 = v != 0 && v != -1;
  if (s <= 0) return false;
  return s >= 64 ? at_or_above64 : below64;
}

/// Uniform (per-batch) parameters hoisted out of the lane loop.
struct LaneParams {
  int guard = 0;
  int reg_bits = 0;
  int headroom = 0;
  std::int64_t hi = 0;  ///< register max
  std::int64_t lo = 0;  ///< register min
  std::uint64_t sign_bit = 0;

  static LaneParams from(const AccumulatorConfig& cfg) {
    LaneParams p;
    p.guard = cfg.guard_bits;
    p.reg_bits = cfg.effective_reg_bits();
    p.headroom = cfg.headroom();
    p.hi = (std::int64_t{1} << (p.reg_bits - 1)) - 1;
    p.lo = -p.hi - 1;
    p.sign_bit = std::uint64_t{1} << (p.reg_bits - 1);
    return p;
  }
};

/// One branch-free FPISA add of packed FP32 `u` into (se, sm).
/// Bit-identical (state and counter totals) to
/// `extract` + skip-nonfinite + `fpisa_add` for reg_bits < 64.
template <Variant V, OverflowPolicy P>
inline void lane_add(std::uint32_t u, std::int32_t& se, std::int64_t& sm,
                     const LaneParams& p, BatchTallies& t) {
  const std::uint32_t e_raw = (u >> 23) & 0xFFu;
  const std::uint32_t frac = u & 0x7FFFFFu;
  const bool nonfinite = e_raw == 0xFFu;
  const bool zero = (e_raw | frac) == 0u;
  const bool active = !nonfinite && !zero;
  t.nonfinite += nonfinite;
  t.adds += !nonfinite;
  t.zeros += !nonfinite && zero;

  // Extract (MAU0/1): implied 1, subnormal remap to exponent 1, sign fold.
  const bool sub = e_raw == 0u;
  const std::int32_t e = sub ? 1 : static_cast<std::int32_t>(e_raw);
  const std::int64_t sig = static_cast<std::int64_t>(
      frac | (static_cast<std::uint32_t>(!sub) << 23));
  const std::int64_t m_in = ((u >> 31) ? -sig : sig) << p.guard;

  const std::int32_t d = e - se;

  std::int64_t a;     // first adder operand
  std::int64_t b;     // second adder operand
  std::int32_t ne;    // exponent to commit
  bool rounded;       // alignment shift dropped set bits
  bool is_lsh = false;
  bool is_ovw = false;
  if (V == Variant::kFull) {
    // RSAW symmetry: shift whichever side has the smaller exponent.
    const bool grow = d > 0;
    const std::int32_t sh = grow ? d : -d;
    const std::int64_t shifted = grow ? sm : m_in;
    rounded = asr_inexact_clamped(shifted, sh);
    a = asr_clamped(shifted, sh);
    b = grow ? m_in : sm;
    ne = grow ? e : se;
  } else {
    is_ovw = d > p.headroom;
    is_lsh = d > 0 && !is_ovw;
    const std::int32_t sh = d < 0 ? -d : 0;
    rounded = asr_inexact_clamped(m_in, sh);  // false whenever d >= 0
    const std::int32_t dl = is_lsh ? d : 0;   // clamp: shift stays defined
    a = is_ovw ? 0 : sm;
    b = is_ovw ? m_in : (is_lsh ? (m_in << dl) : asr_clamped(m_in, sh));
    ne = is_ovw ? e : se;
  }

  // add_register, select form. Operands are bounded well inside int64 (the
  // register range plus an extracted mantissa), so the wide add is exact.
  const std::int64_t sum = a + b;
  const bool ovf = sum < p.lo || sum > p.hi;
  const std::uint64_t w =
      static_cast<std::uint64_t>(sum) & ((p.sign_bit << 1) - 1);
  const std::int64_t wrapped =
      static_cast<std::int64_t>((w ^ p.sign_bit) - p.sign_bit);
  const std::int64_t satv = sum < p.lo ? p.lo : p.hi;
  const std::int64_t nm =
      ovf ? (P == OverflowPolicy::kWrap ? wrapped : satv) : sum;

  t.rounded += active && rounded;
  t.saturations += active && ovf;
  t.lshift_overflows += active && is_lsh && ovf;
  t.overwrites += active && is_ovw && sm != 0;

  se = active ? ne : se;
  sm = active ? nm : sm;
}

/// One branch-free renormalize-and-assemble (egress MAU5-8) of register
/// pair (se, sm) into packed FP32 bits: CLZ to locate the leading one,
/// truncating shift to the canonical significand position, sign fold,
/// exponent adjust, pack. Bit-identical to `fpisa_read` with
/// Rounding::kTowardZero — including subnormal outputs (truncation can
/// never carry, so the general assemble's round-up-into-normal branch is
/// unreachable), underflow to signed zero, and overflow to ±inf. The
/// reference's shift-clamp rules are replicated exactly: a non-positive
/// shift keeps the value unshifted and a shift >= 64 drops every bit.
inline std::uint32_t lane_read(std::int32_t se, std::int64_t sm, int guard) {
  const bool neg = sm < 0;
  const std::uint64_t u = neg ? ~static_cast<std::uint64_t>(sm) + 1
                              : static_cast<std::uint64_t>(sm);
  const std::uint32_t sign = neg ? 0x80000000u : 0u;
  // Leading-one position; the |1 keeps countl_zero defined for u == 0
  // (that lane is selected out at the end anyway).
  const int p = 63 - std::countl_zero(u | 1);
  const std::int64_t norm_exp =
      static_cast<std::int64_t>(se) + p - 23 - guard;
  const int shift = p - 23;

  // Subnormal output (norm_exp <= 0): extra right shift of 1 - norm_exp.
  // frac < 2^23 always holds under truncation, so the pack is exact.
  const std::int64_t ts = shift + 1 - norm_exp;
  const std::uint64_t frac =
      ts >= 64 ? 0 : (ts <= 0 ? u : u >> ts);
  const std::uint32_t sub_bits = sign | static_cast<std::uint32_t>(frac);

  // Normal output (0 < norm_exp < 255): leading 1 lands exactly at bit 23.
  const std::uint64_t sig = shift >= 0 ? u >> shift : u << -shift;
  const std::uint32_t norm_bits =
      sign | (static_cast<std::uint32_t>(norm_exp) << 23) |
      (static_cast<std::uint32_t>(sig) & 0x7FFFFFu);

  const std::uint32_t inf_bits = sign | 0x7F800000u;
  return sm == 0        ? 0u
         : norm_exp >= 255 ? inf_bits
         : norm_exp <= 0   ? sub_bits
                           : norm_bits;
}

/// Runs the read primitive over a range (the portable backend's core and
/// the AVX2 backend's tail loop).
inline void lane_read_range(const std::int32_t* exp, const std::int64_t* man,
                            std::uint32_t* out, std::size_t n, int guard) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {  // unrolled: independent lanes pipeline
    out[i + 0] = lane_read(exp[i + 0], man[i + 0], guard);
    out[i + 1] = lane_read(exp[i + 1], man[i + 1], guard);
    out[i + 2] = lane_read(exp[i + 2], man[i + 2], guard);
    out[i + 3] = lane_read(exp[i + 3], man[i + 3], guard);
  }
  for (; i < n; ++i) out[i] = lane_read(exp[i], man[i], guard);
}

/// Runs the lane primitive over a range (the portable backend's core and
/// the AVX2 backend's tail loop).
template <Variant V, OverflowPolicy P>
inline void lane_add_range(const std::uint32_t* bits, std::size_t n,
                           std::int32_t* exp, std::int64_t* man,
                           const LaneParams& p, BatchTallies& t) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {  // unrolled: independent lanes pipeline
    lane_add<V, P>(bits[i + 0], exp[i + 0], man[i + 0], p, t);
    lane_add<V, P>(bits[i + 1], exp[i + 1], man[i + 1], p, t);
    lane_add<V, P>(bits[i + 2], exp[i + 2], man[i + 2], p, t);
    lane_add<V, P>(bits[i + 3], exp[i + 3], man[i + 3], p, t);
  }
  for (; i < n; ++i) lane_add<V, P>(bits[i], exp[i], man[i], p, t);
}

}  // namespace fpisa::core::detail
