#include "core/vector_accumulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fpisa::core {
namespace {

/// Stack chunk for narrowing/bit-casting inputs without heap churn.
constexpr std::size_t kChunk = 256;

}  // namespace

FpisaVector::FpisaVector(std::size_t size, AccumulatorConfig cfg)
    : cfg_(cfg), regs_(size) {}

void FpisaVector::add(std::span<const float> values) {
  assert(values.size() == size());
  assert(cfg_.format.total_bits == 32 && "use add_bits for non-FP32 formats");
  // float and its bit pattern share a layout: reinterpret in place, chunked
  // through a stack buffer only to stay strict-aliasing clean.
  std::uint32_t bits[kChunk];
  for (std::size_t base = 0; base < values.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, values.size() - base);
    for (std::size_t i = 0; i < n; ++i) bits[i] = fp32_bits(values[base + i]);
    fpisa_add_batch({bits, n}, {regs_.exp.data() + base, n},
                    {regs_.man.data() + base, n}, cfg_, counters_);
  }
}

void FpisaVector::add_bits(std::span<const std::uint64_t> bits) {
  assert(bits.size() == size());
  if (batch_eligible(cfg_)) {
    // FP32 layout: narrow to 32-bit lanes chunk-wise and batch.
    std::uint32_t narrow[kChunk];
    for (std::size_t base = 0; base < bits.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, bits.size() - base);
      for (std::size_t i = 0; i < n; ++i) {
        narrow[i] = static_cast<std::uint32_t>(bits[base + i]);
      }
      fpisa_add_batch({narrow, n}, {regs_.exp.data() + base, n},
                      {regs_.man.data() + base, n}, cfg_, counters_);
    }
    return;
  }
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const ExtractResult ex = extract(bits[i], cfg_.format);
    if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
      ++counters_.nonfinite_inputs;
      continue;
    }
    FpState s{regs_.exp[i], regs_.man[i]};
    fpisa_add(s, ex.value, cfg_, counters_);
    regs_.exp[i] = s.exp;
    regs_.man[i] = s.man;
  }
}

void FpisaVector::read(std::span<float> out) const {
  assert(out.size() == size());
  if (read_batch_eligible(cfg_)) {
    // Hardware-faithful truncating read: the batched renormalize kernel
    // (CLZ + shift + pack, bit-identical to the general assemble — proven
    // in tests/test_core_batch_equivalence.cpp), chunked through a stack
    // buffer like the add path.
    std::uint32_t bits[kChunk];
    for (std::size_t base = 0; base < out.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, out.size() - base);
      fpisa_read_batch({regs_.exp.data() + base, n},
                       {regs_.man.data() + base, n}, {bits, n}, cfg_);
      for (std::size_t i = 0; i < n; ++i) out[base + i] = fp32_value(bits[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto r = fpisa_read({regs_.exp[i], regs_.man[i]}, cfg_);
    if (cfg_.format.total_bits == 32) {
      out[i] = fp32_value(static_cast<std::uint32_t>(r.bits));
    } else {
      out[i] = static_cast<float>(decode(r.bits, cfg_.format));
    }
  }
}

void FpisaVector::read_bits(std::span<std::uint64_t> out) const {
  assert(out.size() == size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = fpisa_read({regs_.exp[i], regs_.man[i]}, cfg_).bits;
  }
}

double FpisaVector::read_value(std::size_t i) const {
  return std::ldexp(
      static_cast<double>(regs_.man[i]),
      regs_.exp[i] - cfg_.format.bias() - cfg_.format.man_bits - cfg_.guard_bits);
}

void FpisaVector::reset() {
  regs_.clear();
  counters_ = {};
}

OpCounters aggregate_into(std::span<const std::span<const float>> workers,
                          std::span<float> out, AccumulatorConfig cfg) {
  assert(!workers.empty());
  assert(out.size() == workers.front().size());
  FpisaVector acc(out.size(), cfg);
  if (cfg.format.total_bits == 32) {
    for (const auto w : workers) acc.add(w);
  } else {
    std::vector<std::uint64_t> bits(acc.size());
    for (const auto w : workers) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        bits[i] = encode(w[i], cfg.format);
      }
      acc.add_bits(bits);
    }
  }
  acc.read(out);
  return acc.counters();
}

AggregateResult aggregate(std::span<const std::vector<float>> workers,
                          AccumulatorConfig cfg) {
  assert(!workers.empty());
  const std::vector<std::span<const float>> views(workers.begin(),
                                                  workers.end());
  AggregateResult out;
  out.sum.resize(workers.front().size());
  out.counters = aggregate_into(views, out.sum, cfg);
  return out;
}

}  // namespace fpisa::core
