#include "core/vector_accumulator.h"

#include <cassert>
#include <cmath>

namespace fpisa::core {

FpisaVector::FpisaVector(std::size_t size, AccumulatorConfig cfg)
    : cfg_(cfg), exp_(size, 0), man_(size, 0) {}

void FpisaVector::add(std::span<const float> values) {
  assert(values.size() == size());
  assert(cfg_.format.total_bits == 32 && "use add_bits for non-FP32 formats");
  for (std::size_t i = 0; i < values.size(); ++i) {
    const ExtractResult ex = extract(fp32_bits(values[i]), cfg_.format);
    if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
      ++counters_.nonfinite_inputs;
      continue;
    }
    FpState s{exp_[i], man_[i]};
    fpisa_add(s, ex.value, cfg_, counters_);
    exp_[i] = s.exp;
    man_[i] = s.man;
  }
}

void FpisaVector::add_bits(std::span<const std::uint64_t> bits) {
  assert(bits.size() == size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const ExtractResult ex = extract(bits[i], cfg_.format);
    if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
      ++counters_.nonfinite_inputs;
      continue;
    }
    FpState s{exp_[i], man_[i]};
    fpisa_add(s, ex.value, cfg_, counters_);
    exp_[i] = s.exp;
    man_[i] = s.man;
  }
}

void FpisaVector::read(std::span<float> out) const {
  assert(out.size() == size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto r = fpisa_read({exp_[i], man_[i]}, cfg_);
    if (cfg_.format.total_bits == 32) {
      out[i] = fp32_value(static_cast<std::uint32_t>(r.bits));
    } else {
      out[i] = static_cast<float>(decode(r.bits, cfg_.format));
    }
  }
}

void FpisaVector::read_bits(std::span<std::uint64_t> out) const {
  assert(out.size() == size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = fpisa_read({exp_[i], man_[i]}, cfg_).bits;
  }
}

double FpisaVector::read_value(std::size_t i) const {
  return std::ldexp(
      static_cast<double>(man_[i]),
      exp_[i] - cfg_.format.bias() - cfg_.format.man_bits - cfg_.guard_bits);
}

void FpisaVector::reset() {
  exp_.assign(exp_.size(), 0);
  man_.assign(man_.size(), 0);
  counters_ = {};
}

AggregateResult aggregate(std::span<const std::vector<float>> workers,
                          AccumulatorConfig cfg) {
  assert(!workers.empty());
  FpisaVector acc(workers.front().size(), cfg);
  if (cfg.format.total_bits == 32) {
    for (const auto& w : workers) acc.add(w);
  } else {
    std::vector<std::uint64_t> bits(acc.size());
    for (const auto& w : workers) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        bits[i] = encode(w[i], cfg.format);
      }
      acc.add_bits(bits);
    }
  }
  AggregateResult out;
  out.sum.resize(acc.size());
  acc.read(out.sum);
  out.counters = acc.counters();
  return out;
}

}  // namespace fpisa::core
