#include "core/batch_accumulator.h"

#include <cassert>

#include "core/batch_lane.h"
#include "core/decompose.h"

namespace fpisa::core {
namespace {

bool avx2_available() {
#if defined(FPISA_HAVE_AVX2) && defined(__GNUC__)
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

/// Dispatch override installed by force_batch_backend (tests only).
bool g_forced = false;
BatchBackend g_forced_backend = BatchBackend::kScalar;

template <Variant V, OverflowPolicy P>
void run_scalar(const std::uint32_t* bits, std::size_t n, std::int32_t* exp,
                std::int64_t* man, const AccumulatorConfig& cfg,
                detail::BatchTallies& t) {
  const detail::LaneParams p = detail::LaneParams::from(cfg);
  detail::lane_add_range<V, P>(bits, n, exp, man, p, t);
}

using Kernel = void (*)(const std::uint32_t*, std::size_t, std::int32_t*,
                        std::int64_t*, const AccumulatorConfig&,
                        detail::BatchTallies&);

Kernel pick_scalar(const AccumulatorConfig& cfg) {
  if (cfg.variant == Variant::kFull) {
    return cfg.overflow == OverflowPolicy::kWrap
               ? run_scalar<Variant::kFull, OverflowPolicy::kWrap>
               : run_scalar<Variant::kFull, OverflowPolicy::kSaturate>;
  }
  return cfg.overflow == OverflowPolicy::kWrap
             ? run_scalar<Variant::kApproximate, OverflowPolicy::kWrap>
             : run_scalar<Variant::kApproximate, OverflowPolicy::kSaturate>;
}

/// Reference fallback for configs outside the fast path (non-FP32 layouts,
/// 64-bit registers): the scalar per-element loop, unchanged semantics.
void run_reference(std::span<const std::uint32_t> bits,
                   std::span<std::int32_t> exp, std::span<std::int64_t> man,
                   const AccumulatorConfig& cfg, OpCounters& counters) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const ExtractResult ex = extract(bits[i], cfg.format);
    if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
      ++counters.nonfinite_inputs;
      continue;
    }
    FpState s{exp[i], man[i]};
    fpisa_add(s, ex.value, cfg, counters);
    exp[i] = s.exp;
    man[i] = s.man;
  }
}

}  // namespace

BatchBackend batch_backend() {
  if (g_forced) return g_forced_backend;
  return avx2_available() ? BatchBackend::kAvx2 : BatchBackend::kScalar;
}

std::string_view batch_backend_name() {
  return batch_backend() == BatchBackend::kAvx2 ? "avx2" : "scalar";
}

std::span<const BatchBackend> available_batch_backends() {
  static const BatchBackend with_avx2[] = {BatchBackend::kScalar,
                                           BatchBackend::kAvx2};
  static const BatchBackend scalar_only[] = {BatchBackend::kScalar};
  return avx2_available() ? std::span<const BatchBackend>(with_avx2)
                          : std::span<const BatchBackend>(scalar_only);
}

void force_batch_backend(BatchBackend backend) {
  assert(backend == BatchBackend::kScalar || avx2_available());
  g_forced = true;
  g_forced_backend = backend;
}

void reset_batch_backend() { g_forced = false; }

bool batch_eligible(const AccumulatorConfig& cfg) {
  const FloatFormat& f = cfg.format;
  return f.total_bits == 32 && f.exp_bits == 8 && f.man_bits == 23 &&
         cfg.effective_reg_bits() < 64;
}

void fpisa_add_batch(std::span<const std::uint32_t> bits,
                     std::span<std::int32_t> exp, std::span<std::int64_t> man,
                     const AccumulatorConfig& cfg, OpCounters& counters) {
  assert(bits.size() == exp.size() && bits.size() == man.size());
  if (!batch_eligible(cfg)) {
    run_reference(bits, exp, man, cfg, counters);
    return;
  }
  assert(cfg.format.significand_bits() + cfg.guard_bits + 1 <=
             cfg.effective_reg_bits() &&
         "value does not fit the accumulator register");

  detail::BatchTallies t;
#if defined(FPISA_HAVE_AVX2)
  if (batch_backend() == BatchBackend::kAvx2) {
    detail::add_batch_avx2(bits.data(), bits.size(), exp.data(), man.data(),
                           cfg, t);
  } else
#endif
  {
    pick_scalar(cfg)(bits.data(), bits.size(), exp.data(), man.data(), cfg, t);
  }

  counters.adds += t.adds;
  counters.rounded_adds += t.rounded;
  counters.overwrites += t.overwrites;
  counters.lshift_overflows += t.lshift_overflows;
  counters.saturations += t.saturations;
  counters.nonfinite_inputs += t.nonfinite;
  counters.zero_inputs += t.zeros;
}

}  // namespace fpisa::core
