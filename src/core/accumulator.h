// FPISA floating-point accumulation (paper §3, §4.3).
//
// Two variants, both operating on the decomposed (exponent register, signed
// two's-complement mantissa register) state with delayed renormalization:
//
//  * kFull ("FPISA"): requires the proposed RSAW (read-shift-add-write)
//    stateful unit — when the incoming exponent is larger, the *stored*
//    mantissa is right-shifted before the add (Fig 2 MAU4). Rounding is the
//    only error source (round-toward-negative-infinity via arithmetic
//    right-shift of two's-complement values, Appendix A.1).
//
//  * kApproximate ("FPISA-A"): deployable on today's Tofino — the stored
//    mantissa is never shifted. If the incoming value's exponent exceeds the
//    stored one by d <= headroom, the incoming mantissa is *left*-shifted
//    into the register's headroom bits; beyond the headroom the register is
//    overwritten with the incoming value ("overwrite error", §4.3).
//
// The accumulator never renormalizes its state; `read()` performs the
// stateless renormalize-and-assemble step (LPM count-leading-zeros + shift +
// exponent adjust, Fig 2 MAU5-8).
#pragma once

#include <cstdint>

#include "core/decompose.h"
#include "core/float_format.h"

namespace fpisa::core {

enum class Variant {
  kFull,         ///< FPISA with the RSAW hardware extension
  kApproximate,  ///< FPISA-A, runs on existing Tofino hardware
};

enum class OverflowPolicy {
  kSaturate,  ///< clamp to the register range and flag (safe default)
  kWrap,      ///< two's-complement wraparound (what raw hardware would do)
};

struct AccumulatorConfig {
  FloatFormat format = kFp32;
  Variant variant = Variant::kFull;
  int reg_bits = 0;    ///< 0: use format.default_reg_bits
  int guard_bits = 0;  ///< extra low bits for rounding (Appendix A.1)
  OverflowPolicy overflow = OverflowPolicy::kSaturate;
  Rounding read_rounding = Rounding::kTowardZero;

  int effective_reg_bits() const {
    return reg_bits ? reg_bits : format.default_reg_bits;
  }
  /// Left-shift headroom available to FPISA-A (7 for FP32/32-bit, §4.3).
  int headroom() const {
    return format.headroom(effective_reg_bits(), guard_bits);
  }
};

/// Event counters: the error taxonomy of §5.2.1 (rounding vs overwrite vs
/// left-shift) plus overflow and non-finite-input bookkeeping.
struct OpCounters {
  std::uint64_t adds = 0;
  std::uint64_t rounded_adds = 0;      ///< alignment shift dropped ones
  std::uint64_t overwrites = 0;        ///< FPISA-A replaced nonzero state
  std::uint64_t lshift_overflows = 0;  ///< FPISA-A left-shift add overflowed
  std::uint64_t saturations = 0;       ///< register overflow (either variant)
  std::uint64_t nonfinite_inputs = 0;  ///< inf/NaN inputs skipped
  std::uint64_t zero_inputs = 0;

  /// Centralized merge: every layer that pools counters goes through this
  /// (hand-rolled field lists have already missed late-added fields once).
  OpCounters& operator+=(const OpCounters& o) {
    adds += o.adds;
    rounded_adds += o.rounded_adds;
    overwrites += o.overwrites;
    lshift_overflows += o.lshift_overflows;
    saturations += o.saturations;
    nonfinite_inputs += o.nonfinite_inputs;
    zero_inputs += o.zero_inputs;
    return *this;
  }
  /// Delta against an earlier snapshot of the same monotone counters (how
  /// per-reduce attribution is carved out of a long-lived accumulator).
  OpCounters& operator-=(const OpCounters& o) {
    adds -= o.adds;
    rounded_adds -= o.rounded_adds;
    overwrites -= o.overwrites;
    lshift_overflows -= o.lshift_overflows;
    saturations -= o.saturations;
    nonfinite_inputs -= o.nonfinite_inputs;
    zero_inputs -= o.zero_inputs;
    return *this;
  }
};

/// Raw register state, exposed so the PISA switch program can be checked
/// for bit-exact equivalence against this reference implementation.
struct FpState {
  std::int32_t exp = 0;
  std::int64_t man = 0;
};

/// Stateless kernel: one FPISA add of an extracted value into a register
/// pair. Both the scalar and the vector accumulators funnel through this;
/// so does the reference model used to validate the switch program.
void fpisa_add(FpState& state, Decomposed in, const AccumulatorConfig& cfg,
               OpCounters& counters);

namespace detail {
/// R-bit register add with overflow accounting (shared with block-FP).
std::int64_t add_register(std::int64_t a, std::int64_t b, int reg_bits,
                          OverflowPolicy policy, OpCounters& counters);
/// Arithmetic shift right with the distance clamped at the word width.
std::int64_t asr(std::int64_t v, int d);
/// True if an arithmetic right shift by d would drop set bits.
bool asr_inexact(std::int64_t v, int d);
}  // namespace detail

/// Stateless read: renormalize + assemble (does not modify the state).
AssembleResult fpisa_read(const FpState& state, const AccumulatorConfig& cfg);

/// Single-value accumulator with the full extract/add/read flow.
class FpisaAccumulator {
 public:
  explicit FpisaAccumulator(AccumulatorConfig cfg = {}) : cfg_(cfg) {}

  /// Adds a packed value in the configured format.
  void add_bits(std::uint64_t bits);
  /// FP32 convenience.
  void add(float v) { add_bits(fp32_bits(v)); }

  /// Renormalized packed result; state is unchanged (delayed renorm).
  std::uint64_t read_bits() const { return fpisa_read(state_, cfg_).bits; }
  /// FP32 convenience.
  float read() const { return fp32_value(static_cast<std::uint32_t>(read_bits())); }
  /// Exact arithmetic value of the denormalized register state.
  double read_value() const;

  void reset() { state_ = {}; }
  const FpState& state() const { return state_; }
  const OpCounters& counters() const { return counters_; }
  const AccumulatorConfig& config() const { return cfg_; }

 private:
  AccumulatorConfig cfg_;
  FpState state_{};
  OpCounters counters_{};
};

}  // namespace fpisa::core
