// Batched egress datapath: renormalize-and-assemble over spans of the SoA
// register file (the read-side twin of batch_accumulator.cpp). Dispatch
// shares the backend selection and test hooks of the add kernel — one
// `force_batch_backend` pins both datapaths.
#include "core/batch_accumulator.h"

#include <cassert>

#include "core/batch_lane.h"
#include "core/decompose.h"

namespace fpisa::core {
namespace {

/// Reference fallback for configs outside the fast path (non-FP32 layouts,
/// 64-bit registers, rounding modes other than truncation): the per-slot
/// assemble loop, unchanged semantics.
void read_reference(std::span<const std::int32_t> exp,
                    std::span<const std::int64_t> man,
                    std::span<std::uint32_t> out,
                    const AccumulatorConfig& cfg) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(fpisa_read({exp[i], man[i]}, cfg).bits);
  }
}

void run_read(std::span<const std::int32_t> exp,
              std::span<const std::int64_t> man, std::span<std::uint32_t> out,
              const AccumulatorConfig& cfg) {
  assert(exp.size() == out.size() && man.size() == out.size());
  if (!read_batch_eligible(cfg)) {
    read_reference(exp, man, out, cfg);
    return;
  }
#if defined(FPISA_HAVE_AVX2)
  if (batch_backend() == BatchBackend::kAvx2) {
    detail::read_batch_avx2(exp.data(), man.data(), out.data(), out.size(),
                            cfg.guard_bits, cfg.effective_reg_bits());
    return;
  }
#endif
  detail::lane_read_range(exp.data(), man.data(), out.data(), out.size(),
                          cfg.guard_bits);
}

}  // namespace

bool read_batch_eligible(const AccumulatorConfig& cfg) {
  return batch_eligible(cfg) && cfg.read_rounding == Rounding::kTowardZero;
}

void fpisa_read_batch(std::span<const std::int32_t> exp,
                      std::span<const std::int64_t> man,
                      std::span<std::uint32_t> out,
                      const AccumulatorConfig& cfg) {
  run_read(exp, man, out, cfg);
}

void fpisa_read_reset_batch(std::span<std::int32_t> exp,
                            std::span<std::int64_t> man,
                            std::span<std::uint32_t> out,
                            const AccumulatorConfig& cfg) {
  run_read(exp, man, out, cfg);
  std::fill(exp.begin(), exp.end(), 0);
  std::fill(man.begin(), man.end(), 0);
}

}  // namespace fpisa::core
