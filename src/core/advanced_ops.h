// Advanced floating-point operations (paper Appendix A.2).
//
// Addition and comparison cover the paper's two case studies; these extras
// demonstrate the forward path it sketches:
//  * multiplication — exponents add, mantissas multiply as integers. Small
//    formats can use table lookups (no hardware change); larger formats use
//    the proposed integer-multiplier functional unit (costed in src/hw/).
//  * division — reciprocal computed at the end host, multiply in-switch.
//  * logarithm — integer log of the mantissa via a <2000-entry lookup table
//    with <1% error, plus the exponent contribution.
//  * square root — exponent halving + a parity-indexed mantissa table.
//
// Everything here uses only integer/fixed-point arithmetic and table
// lookups, i.e. operations a PISA pipeline can express.
#pragma once

#include <cstdint>
#include <vector>

#include "core/float_format.h"

namespace fpisa::core {

/// Exact-significand multiplication using an integer multiplier unit:
/// exponents add (minus bias), significands multiply, product renormalized.
/// Round-to-nearest on the discarded low product bits.
std::uint64_t fpisa_multiply(std::uint64_t a_bits, std::uint64_t b_bits,
                             const FloatFormat& fmt);

/// Division via end-host reciprocal + in-switch multiply: the host computes
/// 1/b in the same format; the switch multiplies. Error is one extra
/// rounding step versus true division.
std::uint64_t host_reciprocal(std::uint64_t b_bits, const FloatFormat& fmt);
std::uint64_t fpisa_divide_via_reciprocal(std::uint64_t a_bits,
                                          std::uint64_t b_bits,
                                          const FloatFormat& fmt);

/// Table-driven log2 for positive finite inputs. The result is a Q16
/// fixed-point number: log2(x) * 2^16, computed as
/// (exp - bias) * 2^16 + table[top mantissa bits].
class Log2Table {
 public:
  explicit Log2Table(const FloatFormat& fmt = kFp32, int index_bits = 11);

  /// Q16 fixed-point log2(x); x must be positive finite.
  std::int64_t log2_q16(std::uint64_t bits) const;
  /// Convenience: as double.
  double log2(std::uint64_t bits) const {
    return static_cast<double>(log2_q16(bits)) * 0x1.0p-16;
  }

  std::size_t entries() const { return table_.size(); }

 private:
  FloatFormat fmt_;
  int index_bits_;
  std::vector<std::int32_t> table_;  // Q16 log2(1 + i/2^index_bits) midpoints
};

/// Table-driven square root for nonnegative finite inputs: the exponent is
/// halved; a table indexed by (exponent parity, top mantissa bits) supplies
/// the output significand.
class SqrtTable {
 public:
  explicit SqrtTable(const FloatFormat& fmt = kFp32, int index_bits = 10);

  std::uint64_t sqrt(std::uint64_t bits) const;

  std::size_t entries() const { return table_.size(); }

 private:
  FloatFormat fmt_;
  int index_bits_;
  std::vector<std::uint32_t> table_;  // output significand, 2*2^index_bits
};

/// Multiplication without a hardware multiplier, for small formats:
/// log/antilog tables (significand -> Q-fixed log2; sum of logs -> product
/// significand). Approximate; relative error bounded by table resolution.
class TableMultiplier {
 public:
  explicit TableMultiplier(const FloatFormat& fmt = kFp16, int index_bits = 11);

  std::uint64_t multiply(std::uint64_t a_bits, std::uint64_t b_bits) const;

  std::size_t table_entries() const { return log_.size() + antilog_.size(); }

 private:
  FloatFormat fmt_;
  int index_bits_;
  std::vector<std::int32_t> log_;      // Q16 log2 of significand/2^man
  std::vector<std::uint32_t> antilog_; // significand for fractional log2
};

}  // namespace fpisa::core
