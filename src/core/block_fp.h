// Block floating point support (paper §3.3: "block floating point formats,
// where multiple values share one exponent, can be supported by replicating
// the exponent register"). This models MSFP-style formats: a block of
// narrow signed mantissas sharing a single 8-bit exponent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/accumulator.h"

namespace fpisa::core {

/// One encoded block: `mantissas[i] * 2^(shared_exp - bias - frac_bits)`.
struct BlockFp {
  std::int32_t shared_exp = 0;  ///< biased, 8-bit style (bias 127)
  std::vector<std::int32_t> mantissas;
};

struct BlockFpFormat {
  int mantissa_bits = 8;  ///< signed mantissa width incl. sign (MSFP-12 ~ 8)
  int exp_bits = 8;
  int bias() const { return (1 << (exp_bits - 1)) - 1; }
  /// Fraction bits to the right of the implied leading position.
  int frac_bits() const { return mantissa_bits - 2; }
};

/// Encodes a float block: shared exponent = max exponent over the block,
/// mantissas rounded to nearest. Values too small for the shared scale
/// quantize to zero — the inherent block-FP tradeoff.
BlockFp block_encode(std::span<const float> values, const BlockFpFormat& fmt);

/// Decodes to floats.
std::vector<float> block_decode(const BlockFp& block, const BlockFpFormat& fmt);

/// A switch-resident block accumulator: one shared exponent register + one
/// wide signed mantissa register per lane. Alignment decisions are made
/// once per block against the shared exponent (this is the efficiency win:
/// one exponent comparison serves the whole block).
class BlockFpisaAccumulator {
 public:
  BlockFpisaAccumulator(std::size_t lanes, BlockFpFormat fmt,
                        Variant variant = Variant::kFull, int reg_bits = 32);

  void add_block(const BlockFp& block);

  /// Renormalized result per lane.
  std::vector<float> read() const;

  const OpCounters& counters() const { return counters_; }
  std::int32_t shared_exp() const { return exp_; }

 private:
  BlockFpFormat fmt_;
  Variant variant_;
  int reg_bits_;
  std::int32_t exp_ = 0;
  std::vector<std::int64_t> man_;
  bool empty_ = true;
  OpCounters counters_{};
};

}  // namespace fpisa::core
