// AVX2 backend for fpisa_read_batch: a literal translation of the
// branchless read primitive in batch_lane.h into vector selects. Two lane
// widths, picked by the register width: the generic four 64-bit lanes per
// iteration, and an 8-lane 32-bit specialization (mirroring the add
// kernel's run32) for registers of <= 32 bits, where every in-invariant
// mantissa fits an int32. This translation unit is compiled with -mavx2
// (and only when FPISA_ENABLE_AVX2 is on); callers reach it solely through
// the runtime-dispatched fpisa_read_batch, which checks CPU support first.
//
// AVX2 has no 64-bit lzcnt; the leading-one position comes from the
// classic smear-then-popcount identity: OR-smearing the leading 1 down
// turns u into 2^(p+1) - 1, whose popcount is p+1. The per-lane popcount
// is the pshufb nibble-LUT trick summed across each 64-bit lane with
// vpsadbw. Shift-count clamping mirrors the scalar primitive: vpsrlvq
// already yields 0 for counts >= 64 (the reference's "drop everything"
// rule), and negative counts are masked to 0 (the reference's "keep u"
// rule) before the shift.
#include "core/batch_accumulator.h"

#if defined(FPISA_HAVE_AVX2)

#include <immintrin.h>

#include "core/batch_lane.h"

namespace fpisa::core::detail {
namespace {

inline __m256i set1(std::int64_t v) { return _mm256_set1_epi64x(v); }

inline __m256i blend(__m256i a, __m256i b, __m256i mask) {
  return _mm256_blendv_epi8(a, b, mask);  // mask lanes are all-ones/zeros
}

/// Leading-one position + 1 per 64-bit lane (0 for a zero lane).
inline __m256i leading_one_pos_plus1(__m256i u) {
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 1));
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 2));
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 4));
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 8));
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 16));
  u = _mm256_or_si256(u, _mm256_srli_epi64(u, 32));
  const __m256i lut = _mm256_setr_epi8(  // popcount of each nibble
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(u, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(u, 4), nib);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

// --- specialized 8-lane kernel for registers of <= 32 bits -----------------
// When the mantissa register is at most 32 bits wide (the default FP32
// config), every stored mantissa the add path can produce fits an int32 and
// the whole renormalize runs in native 32-bit SIMD: twice the lanes of the
// generic kernel, srlv/sllv counts >= 32 already drop every bit (the same
// clamp the reference's >= 64 rule reduces to for values < 2^32), and the
// lane sum of the nibble popcounts is a single 0x01010101 multiply. Raw
// synthesized states can violate the register invariant (|man| beyond
// int32, exponents near the int32 rim where `se + p - 23 - guard` could
// wrap); such 8-blocks fall back to the scalar primitive, keeping the
// kernel bit-exact on ANY input, not just add-reachable states.

/// Leading-one position + 1 per 32-bit lane (0 for a zero lane): OR-smear,
/// pshufb nibble popcount, horizontal byte sum via the 0x01010101 multiply
/// (byte counts sum to <= 32, so no inter-byte carry).
inline __m256i leading_one_pos_plus1_32(__m256i u) {
  u = _mm256_or_si256(u, _mm256_srli_epi32(u, 1));
  u = _mm256_or_si256(u, _mm256_srli_epi32(u, 2));
  u = _mm256_or_si256(u, _mm256_srli_epi32(u, 4));
  u = _mm256_or_si256(u, _mm256_srli_epi32(u, 8));
  u = _mm256_or_si256(u, _mm256_srli_epi32(u, 16));
  const __m256i lut = _mm256_setr_epi8(  // popcount of each nibble
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(u, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(u, 4), nib);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_srli_epi32(
      _mm256_mullo_epi32(cnt, _mm256_set1_epi32(0x01010101)), 24);
}

void read_batch_avx2_32(const std::int32_t* exp, const std::int64_t* man,
                        std::uint32_t* out, std::size_t n, int guard) {
  const __m256i k_zero = _mm256_setzero_si256();
  const __m256i k_one = _mm256_set1_epi32(1);
  const __m256i k_bias = _mm256_set1_epi32(23 + guard);
  const __m256i k_23 = _mm256_set1_epi32(23);
  const __m256i k_254 = _mm256_set1_epi32(254);
  const __m256i k_sign32 = _mm256_set1_epi32(
      static_cast<std::int32_t>(0x80000000u));
  const __m256i k_frac_mask = _mm256_set1_epi32(0x7FFFFF);
  const __m256i k_inf = _mm256_set1_epi32(0x7F800000);
  // `se + p - 23 - guard` must not wrap an int32 lane; the add path keeps
  // exponents within [1, 254 + guard], so 2^24 is pure safety margin.
  const __m256i k_exp_lim = _mm256_set1_epi32(1 << 24);
  const __m256i k_exp_lim_neg = _mm256_set1_epi32(-(1 << 24));
  const __m256i k_man_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i man_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i));
    const __m256i man_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i + 4));
    const __m256i a = _mm256_permutevar8x32_epi32(man_lo, k_man_idx);
    const __m256i b = _mm256_permutevar8x32_epi32(man_hi, k_man_idx);
    const __m256i sm = _mm256_permute2x128_si256(a, b, 0x20);
    const __m256i se =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(exp + i));

    // Invariant gate: every mantissa must round-trip through int32 and
    // every exponent stay far from the int32 rim, else the block takes the
    // scalar primitive (raw synthesized states only; add-path states always
    // pass).
    const __m256i widened_lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sm));
    const __m256i widened_hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(sm, 1));
    const __m256i man_ok =
        _mm256_and_si256(_mm256_cmpeq_epi64(widened_lo, man_lo),
                         _mm256_cmpeq_epi64(widened_hi, man_hi));
    // Signed range compare on se itself — NOT abs_epi32, whose INT32_MIN
    // fixed point would slip through the gate and wrap norm_exp.
    const __m256i exp_ok =
        _mm256_and_si256(_mm256_cmpgt_epi32(k_exp_lim, se),
                         _mm256_cmpgt_epi32(se, k_exp_lim_neg));
    if (_mm256_movemask_epi8(_mm256_and_si256(man_ok, exp_ok)) != -1) {
      lane_read_range(exp + i, man + i, out + i, 8, guard);
      continue;
    }

    // Sign fold: |sm| via (sm ^ mask) - mask; INT32_MIN wraps to 2^31
    // unsigned, exactly like the scalar primitive's 64-bit fold.
    const __m256i neg = _mm256_srai_epi32(sm, 31);
    const __m256i u = _mm256_sub_epi32(_mm256_xor_si256(sm, neg), neg);
    const __m256i sign = _mm256_and_si256(neg, k_sign32);

    // CLZ renormalize: p = leading-one position, shift to bit 23.
    const __m256i p = _mm256_sub_epi32(leading_one_pos_plus1_32(u), k_one);
    const __m256i norm_exp =
        _mm256_sub_epi32(_mm256_add_epi32(se, p), k_bias);
    const __m256i shift = _mm256_sub_epi32(p, k_23);

    // Subnormal result: total shift clamped at 0 below; vpsrlvd drops every
    // bit for counts >= 32, which matches the reference's rule for any
    // value that fits 32 bits.
    const __m256i ts =
        _mm256_add_epi32(_mm256_sub_epi32(shift, norm_exp), k_one);
    const __m256i tsc = _mm256_max_epi32(ts, k_zero);
    const __m256i sub_bits = _mm256_or_si256(sign, _mm256_srlv_epi32(u, tsc));

    // Normal result: right or left shift selected by the sign of `shift`
    // (the unselected variant's out-of-range count yields 0 natively).
    const __m256i shift_neg = _mm256_cmpgt_epi32(k_zero, shift);
    const __m256i sig = blend(
        _mm256_srlv_epi32(u, shift),
        _mm256_sllv_epi32(u, _mm256_sub_epi32(k_zero, shift)), shift_neg);
    const __m256i norm_bits = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_slli_epi32(norm_exp, 23)),
        _mm256_and_si256(sig, k_frac_mask));

    // Select: zero register -> +0; overflow -> ±inf; subnormal range ->
    // truncated subnormal; else normal pack.
    const __m256i is_zero = _mm256_cmpeq_epi32(sm, k_zero);
    const __m256i is_ovf = _mm256_cmpgt_epi32(norm_exp, k_254);
    const __m256i is_sub = _mm256_cmpgt_epi32(k_one, norm_exp);
    __m256i bits = blend(norm_bits, sub_bits, is_sub);
    bits = blend(bits, _mm256_or_si256(sign, k_inf), is_ovf);
    bits = _mm256_andnot_si256(is_zero, bits);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
  }
  lane_read_range(exp + i, man + i, out + i, n - i, guard);
}

void read_batch_avx2_64(const std::int32_t* exp, const std::int64_t* man,
                        std::uint32_t* out, std::size_t n, int guard) {
  const __m256i k_zero = _mm256_setzero_si256();
  const __m256i k_one = set1(1);
  const __m256i k_bias = set1(23 + guard);  // norm_exp = se + p - 23 - guard
  const __m256i k_23 = set1(23);
  const __m256i k_254 = set1(254);
  const __m256i k_sign32 = set1(0x80000000LL);
  const __m256i k_frac_mask = set1(0x7FFFFF);
  const __m256i k_inf = set1(0x7F800000LL);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i se = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(exp + i)));
    const __m256i sm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i));

    // Sign fold: |sm| via (sm ^ mask) - mask; INT64_MIN negates correctly
    // through the unsigned wrap, exactly like the scalar primitive.
    const __m256i neg = _mm256_cmpgt_epi64(k_zero, sm);
    const __m256i u = _mm256_sub_epi64(_mm256_xor_si256(sm, neg), neg);
    const __m256i sign = _mm256_and_si256(neg, k_sign32);

    // CLZ renormalize: p = leading-one position, shift to bit 23.
    const __m256i p =
        _mm256_sub_epi64(leading_one_pos_plus1(u), k_one);  // -1 for u==0
    const __m256i norm_exp = _mm256_sub_epi64(_mm256_add_epi64(se, p), k_bias);
    const __m256i shift = _mm256_sub_epi64(p, k_23);

    // Subnormal result: total shift clamped at 0 below (vpsrlvq handles the
    // >= 64 clamp natively by returning 0).
    const __m256i ts =
        _mm256_add_epi64(_mm256_sub_epi64(shift, norm_exp), k_one);
    const __m256i tsc = _mm256_andnot_si256(_mm256_cmpgt_epi64(k_zero, ts), ts);
    const __m256i sub_bits = _mm256_or_si256(sign, _mm256_srlv_epi64(u, tsc));

    // Normal result: right or left shift selected by the sign of `shift`.
    const __m256i shift_neg = _mm256_cmpgt_epi64(k_zero, shift);
    const __m256i sig = blend(
        _mm256_srlv_epi64(u, shift),
        _mm256_sllv_epi64(u, _mm256_sub_epi64(k_zero, shift)), shift_neg);
    const __m256i norm_bits = _mm256_or_si256(
        _mm256_or_si256(sign, _mm256_slli_epi64(norm_exp, 23)),
        _mm256_and_si256(sig, k_frac_mask));

    // Select: zero register -> +0; overflow -> ±inf; subnormal range ->
    // truncated subnormal; else normal pack.
    const __m256i is_zero = _mm256_cmpeq_epi64(sm, k_zero);
    const __m256i is_ovf = _mm256_cmpgt_epi64(norm_exp, k_254);
    const __m256i is_sub = _mm256_cmpgt_epi64(k_one, norm_exp);
    __m256i bits = blend(norm_bits, sub_bits, is_sub);
    bits = blend(bits, _mm256_or_si256(sign, k_inf), is_ovf);
    bits = _mm256_andnot_si256(is_zero, bits);

    // Narrow the 4x int64 results (each fits 32 bits) to 4x uint32.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        bits, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  lane_read_range(exp + i, man + i, out + i, n - i, guard);
}

}  // namespace

void read_batch_avx2(const std::int32_t* exp, const std::int64_t* man,
                     std::uint32_t* out, std::size_t n, int guard,
                     int reg_bits) {
  // The read dataflow never consults the register width — it only bounds
  // the values the add path can have stored. <= 32 bits means every
  // in-invariant mantissa fits an int32, unlocking the 8-lane kernel.
  if (reg_bits <= 32) {
    read_batch_avx2_32(exp, man, out, n, guard);
  } else {
    read_batch_avx2_64(exp, man, out, n, guard);
  }
}

}  // namespace fpisa::core::detail

#endif  // FPISA_HAVE_AVX2
