#include "core/accumulator.h"

#include <cassert>
#include <cmath>

namespace fpisa::core {
namespace detail {

/// Adds two R-bit signed register values with the configured overflow
/// behaviour. Register overflow is the paper's §3.3 "Overflow" case: with
/// kWrap this is what the switch's RAW unit would physically do; kSaturate
/// is the safe library default (the event is always counted so users can
/// "handle it in an application-specific way").
std::int64_t add_register(std::int64_t a, std::int64_t b, int reg_bits,
                          OverflowPolicy policy, OpCounters& counters) {
  std::int64_t sum = 0;
  const bool wide_ovf = __builtin_add_overflow(a, b, &sum);
  if (reg_bits >= 64) {
    if (!wide_ovf) return sum;
    ++counters.saturations;
    if (policy == OverflowPolicy::kWrap) {
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                       static_cast<std::uint64_t>(b));
    }
    return a < 0 ? std::numeric_limits<std::int64_t>::min()
                 : std::numeric_limits<std::int64_t>::max();
  }
  // reg_bits < 64: operands are in range, so the int64 add cannot overflow.
  const std::int64_t hi = (std::int64_t{1} << (reg_bits - 1)) - 1;
  const std::int64_t lo = -hi - 1;
  if (sum >= lo && sum <= hi) return sum;
  ++counters.saturations;
  if (policy == OverflowPolicy::kWrap) {
    const std::uint64_t mask = (std::uint64_t{1} << reg_bits) - 1;
    std::uint64_t w = static_cast<std::uint64_t>(sum) & mask;
    if (w >> (reg_bits - 1)) w |= ~mask;  // sign-extend
    return static_cast<std::int64_t>(w);
  }
  return sum < lo ? lo : hi;
}

/// Arithmetic right shift with shift counts beyond the word width clamped
/// (hardware shifters saturate the distance; the result for d >= width is
/// 0 or -1, which is exactly round-toward-negative-infinity).
std::int64_t asr(std::int64_t v, int d) {
  if (d >= 64) return v < 0 ? -1 : 0;
  return v >> d;
}

/// True if an arithmetic right shift by d dropped any set bits.
bool asr_inexact(std::int64_t v, int d) {
  if (d <= 0) return false;
  if (d >= 64) return v != 0 && v != -1;
  return (static_cast<std::uint64_t>(v) & ((std::uint64_t{1} << d) - 1)) != 0;
}

}  // namespace detail

using detail::add_register;
using detail::asr;
using detail::asr_inexact;

void fpisa_add(FpState& s, Decomposed in, const AccumulatorConfig& cfg,
               OpCounters& counters) {
  ++counters.adds;
  if (in.man == 0) {
    ++counters.zero_inputs;
    return;  // adding zero is a no-op in every variant
  }
  const int reg_bits = cfg.effective_reg_bits();
  const int g = cfg.guard_bits;
  assert(cfg.format.significand_bits() + g + 1 <= reg_bits &&
         "value does not fit the accumulator register");
  const std::int64_t m_in = in.man << g;  // guard-aligned incoming mantissa

  // Note there is deliberately no "empty register" special case: switch
  // registers initialize to (exp 0, man 0) and run the same datapath for
  // the first value. Full FPISA's RSAW then stores the value exactly;
  // FPISA-A overwrites (exp 0 + headroom < any normal exponent), which is
  // also exact since no prior state exists. Keeping the general rules makes
  // this reference bit-identical to the switch program in src/pisa.
  if (in.exp <= s.exp) {
    // Align the (smaller) incoming mantissa: right shift in metadata
    // (Fig 2 MAU3), then a plain stateful add (RAW) into the register.
    const int d = s.exp - in.exp;
    if (asr_inexact(m_in, d)) ++counters.rounded_adds;
    s.man = add_register(s.man, asr(m_in, d), reg_bits, cfg.overflow, counters);
    return;
  }

  const int d = in.exp - s.exp;
  if (cfg.variant == Variant::kFull) {
    // RSAW extension (§4.2): atomically right-shift the stored mantissa to
    // the incoming scale, add, and take the incoming exponent.
    if (asr_inexact(s.man, d)) ++counters.rounded_adds;
    s.man = add_register(asr(s.man, d), m_in, reg_bits, cfg.overflow, counters);
    s.exp = in.exp;
    return;
  }

  // FPISA-A (§4.3): never shift the stored mantissa.
  const int headroom = cfg.headroom();
  if (d <= headroom) {
    // Left-shift the incoming mantissa into the headroom bits. The shifted
    // value itself always fits (significand+guard+headroom < reg_bits), but
    // the *add* can overflow the register if the accumulated state already
    // occupies the headroom — the paper's rare "left-shift" error.
    const std::uint64_t before = counters.saturations;
    s.man = add_register(s.man, m_in << d, reg_bits, cfg.overflow, counters);
    if (counters.saturations != before) ++counters.lshift_overflows;
    return;
  }

  // Incoming value is larger by more than 2^headroom: overwrite the stored
  // value entirely (detected during the exponent comparison in MAU2). This
  // drops the old accumulated value — the bounded "overwrite error".
  if (s.man != 0) ++counters.overwrites;
  s.exp = in.exp;
  s.man = m_in;
}

AssembleResult fpisa_read(const FpState& state, const AccumulatorConfig& cfg) {
  return assemble(state.exp, state.man, cfg.format, cfg.guard_bits,
                  cfg.read_rounding);
}

void FpisaAccumulator::add_bits(std::uint64_t bits) {
  const ExtractResult ex = extract(bits, cfg_.format);
  if (ex.cls == FpClass::kInf || ex.cls == FpClass::kNaN) {
    ++counters_.nonfinite_inputs;
    return;  // policy: flag and skip (paper targets finite data)
  }
  fpisa_add(state_, ex.value, cfg_, counters_);
}

double FpisaAccumulator::read_value() const {
  return std::ldexp(
      static_cast<double>(state_.man),
      state_.exp - cfg_.format.bias() - cfg_.format.man_bits - cfg_.guard_bits);
}

}  // namespace fpisa::core
