#include "core/advanced_ops.h"

#include <cassert>
#include <algorithm>
#include <cmath>

#include "core/decompose.h"
#include "core/packed.h"

namespace fpisa::core {
namespace {

std::uint64_t make_inf(bool neg, const FloatFormat& fmt) {
  return (neg ? fmt.sign_mask() : 0) | (fmt.exp_mask() << fmt.man_bits);
}

std::uint64_t make_nan(const FloatFormat& fmt) {
  return (fmt.exp_mask() << fmt.man_bits) |
         (std::uint64_t{1} << (fmt.man_bits - 1));
}

/// Normalizes a nonzero decomposed value so the leading 1 sits at man_bits
/// (subnormals get their exponent decremented accordingly) — in hardware
/// this is the same LPM + shift machinery as the read path.
void normalize(std::int32_t& exp, std::uint64_t& mag, const FloatFormat& fmt) {
  const int p = 63 - std::countl_zero(mag);
  const int delta = p - fmt.man_bits;
  if (delta > 0) {
    mag >>= delta;
  } else if (delta < 0) {
    mag <<= -delta;
  }
  exp += delta;
}

}  // namespace

std::uint64_t fpisa_multiply(std::uint64_t a_bits, std::uint64_t b_bits,
                             const FloatFormat& fmt) {
  const FpClass ca = classify(a_bits, fmt);
  const FpClass cb = classify(b_bits, fmt);
  const bool neg = ((a_bits ^ b_bits) & fmt.sign_mask()) != 0;

  if (ca == FpClass::kNaN || cb == FpClass::kNaN) return make_nan(fmt);
  if (ca == FpClass::kInf || cb == FpClass::kInf) {
    if (ca == FpClass::kZero || cb == FpClass::kZero) return make_nan(fmt);
    return make_inf(neg, fmt);
  }
  if (ca == FpClass::kZero || cb == FpClass::kZero) {
    return neg ? fmt.sign_mask() : 0;
  }

  const Decomposed a = extract(a_bits, fmt).value;
  const Decomposed b = extract(b_bits, fmt).value;
  const auto ma = static_cast<unsigned __int128>(a.man < 0 ? -a.man : a.man);
  const auto mb = static_cast<unsigned __int128>(b.man < 0 ? -b.man : b.man);

  // value = ma*mb * 2^(ea + eb - bias - man_bits   - bias - man_bits),
  // i.e. assemble-invariant exponent = ea + eb - bias - man_bits.
  unsigned __int128 p = ma * mb;
  std::int64_t exp = std::int64_t{a.exp} + b.exp - fmt.bias() - fmt.man_bits;

  // Reduce the product into 62 bits, folding dropped bits into a sticky
  // LSB so assemble()'s round-to-nearest stays correct.
  bool sticky = false;
  while (p >= (static_cast<unsigned __int128>(1) << 62)) {
    sticky = sticky || (p & 1);
    p >>= 1;
    ++exp;
  }
  auto man = static_cast<std::int64_t>(p);
  if (sticky) man |= 1;
  if (neg) man = -man;

  // Exponent may exceed int32 bounds only for absurd formats; clamp safely.
  const auto exp32 = static_cast<std::int32_t>(
      std::clamp<std::int64_t>(exp, INT32_MIN / 2, INT32_MAX / 2));
  const AssembleResult r =
      assemble(exp32, man, fmt, /*guard_bits=*/0, Rounding::kNearestEven);
  return r.bits;
}

std::uint64_t host_reciprocal(std::uint64_t b_bits, const FloatFormat& fmt) {
  const double v = decode(b_bits, fmt);
  return encode(1.0 / v, fmt);
}

std::uint64_t fpisa_divide_via_reciprocal(std::uint64_t a_bits,
                                          std::uint64_t b_bits,
                                          const FloatFormat& fmt) {
  return fpisa_multiply(a_bits, host_reciprocal(b_bits, fmt), fmt);
}

Log2Table::Log2Table(const FloatFormat& fmt, int index_bits)
    : fmt_(fmt), index_bits_(std::min(index_bits, fmt.man_bits)) {
  const std::size_t n = std::size_t{1} << index_bits_;
  table_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Midpoint of the fraction interval the entry covers.
    const double x = 1.0 + (static_cast<double>(i) + 0.5) /
                               static_cast<double>(n);
    table_[i] = static_cast<std::int32_t>(std::lrint(std::log2(x) * 65536.0));
  }
}

std::int64_t Log2Table::log2_q16(std::uint64_t bits) const {
  assert(classify(bits, fmt_) == FpClass::kNormal ||
         classify(bits, fmt_) == FpClass::kSubnormal);
  assert((bits & fmt_.sign_mask()) == 0 && "log2 requires positive input");
  Decomposed d = extract(bits, fmt_).value;
  auto mag = static_cast<std::uint64_t>(d.man);
  normalize(d.exp, mag, fmt_);
  const std::uint64_t frac = mag & fmt_.man_mask();
  const auto idx = static_cast<std::size_t>(
      frac >> (fmt_.man_bits - index_bits_));
  return (static_cast<std::int64_t>(d.exp) - fmt_.bias()) * 65536 +
         table_[idx];
}

SqrtTable::SqrtTable(const FloatFormat& fmt, int index_bits)
    : fmt_(fmt), index_bits_(std::min(index_bits, fmt.man_bits)) {
  const std::size_t n = std::size_t{1} << index_bits_;
  table_.resize(2 * n);
  for (int parity = 0; parity < 2; ++parity) {
    for (std::size_t i = 0; i < n; ++i) {
      const double x = (1.0 + (static_cast<double>(i) + 0.5) /
                                  static_cast<double>(n)) *
                       (parity ? 2.0 : 1.0);
      const double sig = std::sqrt(x) * std::ldexp(1.0, fmt.man_bits);
      table_[static_cast<std::size_t>(parity) * n + i] =
          static_cast<std::uint32_t>(std::lrint(sig));
    }
  }
}

std::uint64_t SqrtTable::sqrt(std::uint64_t bits) const {
  const FpClass c = classify(bits, fmt_);
  if (c == FpClass::kZero) return 0;
  if ((bits & fmt_.sign_mask()) != 0) return make_nan(fmt_);
  if (c == FpClass::kNaN) return make_nan(fmt_);
  if (c == FpClass::kInf) return make_inf(false, fmt_);

  Decomposed d = extract(bits, fmt_).value;
  auto mag = static_cast<std::uint64_t>(d.man);
  normalize(d.exp, mag, fmt_);

  const std::int32_t unbiased = d.exp - fmt_.bias();
  const int parity = ((unbiased % 2) + 2) % 2;
  const std::int32_t half = (unbiased - parity) / 2;

  const std::uint64_t frac = mag & fmt_.man_mask();
  const auto idx = static_cast<std::size_t>(
      frac >> (fmt_.man_bits - index_bits_));
  const std::uint64_t sig =
      table_[static_cast<std::size_t>(parity) * (table_.size() / 2) + idx];

  const std::int64_t e_out = std::int64_t{half} + fmt_.bias();
  if (e_out <= 0) return 0;  // deep subnormal: flush (outside table range)
  return (static_cast<std::uint64_t>(e_out) << fmt_.man_bits) |
         (sig & fmt_.man_mask());
}

TableMultiplier::TableMultiplier(const FloatFormat& fmt, int index_bits)
    : fmt_(fmt), index_bits_(std::min(index_bits, fmt.man_bits)) {
  const std::size_t n = std::size_t{1} << index_bits_;
  log_.resize(n);
  antilog_.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        1.0 + (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    log_[i] = static_cast<std::int32_t>(std::lrint(std::log2(x) * 65536.0));
  }
  for (std::size_t i = 0; i <= n; ++i) {
    const double l = static_cast<double>(i) / static_cast<double>(n);
    antilog_[i] = static_cast<std::uint32_t>(
        std::lrint(std::exp2(l) * std::ldexp(1.0, fmt.man_bits)));
  }
}

std::uint64_t TableMultiplier::multiply(std::uint64_t a_bits,
                                        std::uint64_t b_bits) const {
  const FpClass ca = classify(a_bits, fmt_);
  const FpClass cb = classify(b_bits, fmt_);
  const bool neg = ((a_bits ^ b_bits) & fmt_.sign_mask()) != 0;
  if (ca == FpClass::kNaN || cb == FpClass::kNaN) return make_nan(fmt_);
  if (ca == FpClass::kInf || cb == FpClass::kInf) {
    if (ca == FpClass::kZero || cb == FpClass::kZero) return make_nan(fmt_);
    return make_inf(neg, fmt_);
  }
  if (ca == FpClass::kZero || cb == FpClass::kZero) {
    return neg ? fmt_.sign_mask() : 0;
  }

  auto sig_log = [&](std::uint64_t bits, std::int32_t& exp) {
    Decomposed d = extract(bits, fmt_).value;
    auto mag = static_cast<std::uint64_t>(d.man < 0 ? -d.man : d.man);
    normalize(d.exp, mag, fmt_);
    exp = d.exp;
    const std::uint64_t frac = mag & fmt_.man_mask();
    return log_[static_cast<std::size_t>(
        frac >> (fmt_.man_bits - index_bits_))];
  };

  std::int32_t ea = 0;
  std::int32_t eb = 0;
  const std::int64_t l = std::int64_t{sig_log(a_bits, ea)} + sig_log(b_bits, eb);
  std::int64_t exp = std::int64_t{ea} + eb - fmt_.bias();
  std::int64_t lfrac = l;
  if (lfrac >= 65536) {
    lfrac -= 65536;
    ++exp;
  }
  // Antilog: significand for the fractional part.
  const auto n = static_cast<std::int64_t>(antilog_.size() - 1);
  const auto idx = static_cast<std::size_t>((lfrac * n + 32768) / 65536);
  std::uint64_t sig = antilog_[idx];
  if (sig >= (std::uint64_t{1} << (fmt_.man_bits + 1))) {
    sig >>= 1;  // antilog table's last entry is exactly 2.0
    ++exp;
  }

  if (exp >= fmt_.max_biased_exp()) return make_inf(neg, fmt_);
  if (exp <= 0) {
    // Subnormal range: shift the significand down.
    const int shift = static_cast<int>(1 - exp);
    const std::uint64_t frac = shift >= 64 ? 0 : sig >> shift;
    return (neg ? fmt_.sign_mask() : 0) | frac;
  }
  return (neg ? fmt_.sign_mask() : 0) |
         (static_cast<std::uint64_t>(exp) << fmt_.man_bits) |
         (sig & fmt_.man_mask());
}

}  // namespace fpisa::core
