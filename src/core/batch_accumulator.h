// Batched, branchless FPISA accumulation over a structure-of-arrays
// register file.
//
// The scalar reference (`fpisa_add`) mirrors the paper's per-packet
// dataflow: one value, one branchy align/overwrite/headroom decision tree.
// That is the right shape for validating the switch program, but it is the
// wrong shape for a software datapath that wants to run "at line rate":
// every branch depends on the incoming exponent, so the host CPU
// mispredicts its way through gradient streams. `fpisa_add_batch` processes
// a span of packed FP32 values against parallel exponent/mantissa register
// arrays with *select-based* (branch-free) decision logic — the same
// restructuring Packet Transactions applies to data-plane algorithms:
// every per-stage decision becomes a mask, every counter becomes a lane
// sum.
//
// Contract: bit-identical to the scalar reference. For every element i,
// the post-state of (exp[i], man[i]) and the OpCounters *totals* equal what
// `extract` + (skip non-finite) + `fpisa_add` would produce, for both
// Variant::kFull and Variant::kApproximate under either OverflowPolicy.
// This is enforced by tests/test_core_batch_equivalence.cpp (exhaustive
// FP16-derived sweep + randomized FP32 streams).
//
// The egress half, `fpisa_read_batch` / `fpisa_read_reset_batch`, applies
// the same restructuring to the paper's Fig 2 MAU5-8 dataflow (CLZ
// renormalize + shift + sign fold + assemble): every register pair is a
// stateless per-slot transform, so the collect phase vectorizes with no
// cross-lane dependencies at all. Contract: bit-identical to per-slot
// `fpisa_read` (same test file).
//
// Backends (runtime-dispatched behind this one interface):
//  * kScalar — portable unrolled scalar code built from the same branchless
//    lane primitive; compiles everywhere.
//  * kAvx2   — 4-wide AVX2 (64-bit lanes) kernel, compiled only when the
//    build enables FPISA_ENABLE_AVX2 and selected only when the CPU
//    reports AVX2 support.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/accumulator.h"

namespace fpisa::core {

/// Structure-of-arrays register file: one exponent array + one mantissa
/// array (paper Fig 3's layout, which is also the SIMD-friendly layout).
struct RegisterFile {
  std::vector<std::int32_t> exp;
  std::vector<std::int64_t> man;

  RegisterFile() = default;
  explicit RegisterFile(std::size_t n) : exp(n, 0), man(n, 0) {}

  std::size_t size() const { return exp.size(); }
  void clear() {
    exp.assign(exp.size(), 0);
    man.assign(man.size(), 0);
  }
};

enum class BatchBackend {
  kScalar,  ///< portable branchless scalar (unrolled)
  kAvx2,    ///< AVX2 4x64-bit lanes (when compiled in + CPU supports it)
};

/// Backend the next fpisa_add_batch call will use.
BatchBackend batch_backend();
std::string_view batch_backend_name();

/// Backends usable on this build + CPU (kScalar always; kAvx2 when
/// available). For differential testing across backends.
std::span<const BatchBackend> available_batch_backends();

/// Test hook: pin the dispatch to one backend (must be available), or pass
/// kScalar to restore the default choice after forcing.
void force_batch_backend(BatchBackend backend);
void reset_batch_backend();

/// True when `cfg` can take the batched fast path: packed binary32 layout
/// and a register narrower than 64 bits. Ineligible configs still work —
/// fpisa_add_batch falls back to the scalar reference loop.
bool batch_eligible(const AccumulatorConfig& cfg);

/// Element-wise batched accumulate: bits[i] (packed FP32) adds into
/// (exp[i], man[i]). Spans must have equal length. Semantics per element
/// match FpisaVector's scalar loop exactly: non-finite inputs bump
/// `nonfinite_inputs` and are skipped (no `adds` tick), zeros tick
/// `adds`/`zero_inputs` and leave the register untouched, everything else
/// runs the configured variant's datapath.
void fpisa_add_batch(std::span<const std::uint32_t> bits,
                     std::span<std::int32_t> exp, std::span<std::int64_t> man,
                     const AccumulatorConfig& cfg, OpCounters& counters);

/// True when `cfg` can take the batched *read* fast path: packed binary32
/// layout, a register narrower than 64 bits, and the hardware-faithful
/// truncating read rounding (kTowardZero — the only mode the egress
/// dataflow implements without guard-bit rounding logic). Ineligible
/// configs still work — the read entry points fall back to the per-slot
/// `fpisa_read` reference loop.
bool read_batch_eligible(const AccumulatorConfig& cfg);

/// Batched egress kernel (paper Fig 2 MAU5–8): renormalize-and-assemble
/// every (exp[i], man[i]) register pair into packed FP32 bits — CLZ to find
/// the leading one, shift to the canonical significand position, fold the
/// two's-complement sign, adjust the exponent, pack — without modifying the
/// register state. Bit-identical to per-slot `fpisa_read` (the kernel
/// behind `FpisaAccumulator::read()`), including subnormal outputs and
/// overflow-to-infinity clamping. Spans must have equal length.
void fpisa_read_batch(std::span<const std::int32_t> exp,
                      std::span<const std::int64_t> man,
                      std::span<std::uint32_t> out,
                      const AccumulatorConfig& cfg);

/// Read-and-reset variant (SwitchML-style slot recycling): identical
/// outputs to fpisa_read_batch, then every (exp[i], man[i]) pair is
/// cleared to the initial (0, 0) state.
void fpisa_read_reset_batch(std::span<std::int32_t> exp,
                            std::span<std::int64_t> man,
                            std::span<std::uint32_t> out,
                            const AccumulatorConfig& cfg);

namespace detail {

/// Per-batch event tallies, merged into OpCounters once per call (the
/// "counters as lane sums" half of the branchless restructuring).
struct BatchTallies {
  std::uint64_t adds = 0;
  std::uint64_t rounded = 0;
  std::uint64_t overwrites = 0;
  std::uint64_t lshift_overflows = 0;
  std::uint64_t saturations = 0;
  std::uint64_t nonfinite = 0;
  std::uint64_t zeros = 0;
};

/// AVX2 kernel entry (defined in batch_accumulator_avx2.cpp, only built
/// when FPISA_ENABLE_AVX2 is on). Tail elements are finished by the scalar
/// lane primitive inside.
void add_batch_avx2(const std::uint32_t* bits, std::size_t n,
                    std::int32_t* exp, std::int64_t* man,
                    const AccumulatorConfig& cfg, BatchTallies& t);

/// AVX2 egress kernel entry (defined in batch_read_avx2.cpp, only built
/// when FPISA_ENABLE_AVX2 is on). Tail elements are finished by the scalar
/// read primitive inside. `reg_bits` picks the lane width: registers of
/// <= 32 bits take the 8-lane 32-bit kernel (mirroring the add kernel's
/// run32), wider registers the generic 4x64-bit kernel.
void read_batch_avx2(const std::int32_t* exp, const std::int64_t* man,
                     std::uint32_t* out, std::size_t n, int guard,
                     int reg_bits);

}  // namespace detail

}  // namespace fpisa::core
