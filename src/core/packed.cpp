#include "core/packed.h"

#include <cmath>

namespace fpisa::core {

FpClass classify(std::uint64_t bits, const FloatFormat& fmt) {
  const std::uint64_t e = (bits >> fmt.man_bits) & fmt.exp_mask();
  const std::uint64_t f = bits & fmt.man_mask();
  if (e == fmt.exp_mask()) return f ? FpClass::kNaN : FpClass::kInf;
  if (e == 0) return f ? FpClass::kSubnormal : FpClass::kZero;
  return FpClass::kNormal;
}

double decode(std::uint64_t bits, const FloatFormat& fmt) {
  const bool neg = (bits & fmt.sign_mask()) != 0;
  const auto e = static_cast<int>((bits >> fmt.man_bits) & fmt.exp_mask());
  const std::uint64_t f = bits & fmt.man_mask();

  double mag;
  if (e == static_cast<int>(fmt.exp_mask())) {
    mag = f ? std::numeric_limits<double>::quiet_NaN()
            : std::numeric_limits<double>::infinity();
  } else if (e == 0) {
    // Subnormal: f * 2^(1 - bias - man_bits).
    mag = std::ldexp(static_cast<double>(f), 1 - fmt.bias() - fmt.man_bits);
  } else {
    const auto sig =
        static_cast<double>(f | (std::uint64_t{1} << fmt.man_bits));
    mag = std::ldexp(sig, e - fmt.bias() - fmt.man_bits);
  }
  return neg ? -mag : mag;
}

std::uint64_t encode(double value, const FloatFormat& fmt) {
  const bool neg = std::signbit(value);
  const std::uint64_t sign = neg ? fmt.sign_mask() : 0;

  if (std::isnan(value)) {
    // Canonical quiet NaN: exponent all-ones, top fraction bit set.
    return sign | (fmt.exp_mask() << fmt.man_bits) |
           (std::uint64_t{1} << (fmt.man_bits - 1));
  }
  const double mag = std::fabs(value);
  if (mag == 0.0) return sign;
  if (std::isinf(value)) return sign | (fmt.exp_mask() << fmt.man_bits);

  int ex = 0;
  (void)std::frexp(mag, &ex);  // mag = m * 2^ex, m in [0.5, 1)
  const int unbiased = ex - 1;
  std::int64_t biased = unbiased + fmt.bias();

  if (biased <= 0) {
    // Subnormal candidate: fraction = round(mag * 2^(man_bits + bias - 1)).
    const double scaled = std::ldexp(mag, fmt.man_bits + fmt.bias() - 1);
    auto f = static_cast<std::uint64_t>(std::llrint(scaled));
    if (f >= (std::uint64_t{1} << fmt.man_bits)) {
      // Rounded up into the smallest normal.
      return sign | (std::uint64_t{1} << fmt.man_bits);
    }
    return sign | f;
  }

  // Normal candidate: significand in [2^man, 2^(man+1)).
  double scaled = std::ldexp(mag, fmt.man_bits - unbiased);
  auto sig = static_cast<std::uint64_t>(std::llrint(scaled));
  if (sig >= (std::uint64_t{1} << (fmt.man_bits + 1))) {
    sig >>= 1;
    ++biased;
  }
  if (biased >= fmt.max_biased_exp()) {
    // Overflow to infinity.
    return sign | (fmt.exp_mask() << fmt.man_bits);
  }
  return sign | (static_cast<std::uint64_t>(biased) << fmt.man_bits) |
         (sig & fmt.man_mask());
}

}  // namespace fpisa::core
