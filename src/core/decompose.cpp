#include "core/decompose.h"

#include <bit>

namespace fpisa::core {
namespace {

/// U >> r with r possibly >= 64, returning the shifted base and whether any
/// ones were dropped plus the tie information needed for round-to-nearest.
struct ShiftOut {
  std::uint64_t base = 0;
  bool any_dropped = false;
  bool above_half = false;
  bool exactly_half = false;
};

ShiftOut shift_right_collect(std::uint64_t u, int r) {
  ShiftOut out;
  if (r <= 0) {
    out.base = u;
    return out;
  }
  if (r >= 64) {
    out.base = 0;
    out.any_dropped = u != 0;
    // Everything dropped; the half bit is below all of u's bits only when
    // r > 64. For r == 64 the half bit is bit 63.
    if (r == 64 && u != 0) {
      const std::uint64_t half = std::uint64_t{1} << 63;
      out.above_half = (u & half) && (u & (half - 1));
      out.exactly_half = (u & half) && !(u & (half - 1));
    }
    return out;
  }
  const std::uint64_t dropped = u & ((std::uint64_t{1} << r) - 1);
  const std::uint64_t half = std::uint64_t{1} << (r - 1);
  out.base = u >> r;
  out.any_dropped = dropped != 0;
  out.above_half = dropped > half;
  out.exactly_half = dropped == half;
  return out;
}

std::uint64_t round_magnitude(std::uint64_t u, int r, bool negative,
                              Rounding mode, bool* inexact) {
  const ShiftOut s = shift_right_collect(u, r);
  *inexact = s.any_dropped;
  std::uint64_t base = s.base;
  switch (mode) {
    case Rounding::kTowardZero:
      break;
    case Rounding::kNearestEven:
      if (s.above_half || (s.exactly_half && (base & 1))) ++base;
      break;
    case Rounding::kTowardNegInf:
      if (negative && s.any_dropped) ++base;  // increase magnitude
      break;
    case Rounding::kTowardPosInf:
      if (!negative && s.any_dropped) ++base;
      break;
  }
  return base;
}

}  // namespace

ExtractResult extract(std::uint64_t bits, const FloatFormat& fmt) {
  ExtractResult out;
  out.cls = classify(bits, fmt);
  const bool neg = (bits & fmt.sign_mask()) != 0;
  const auto e = static_cast<std::int32_t>((bits >> fmt.man_bits) & fmt.exp_mask());
  const auto f = static_cast<std::int64_t>(bits & fmt.man_mask());

  switch (out.cls) {
    case FpClass::kZero:
      out.value = {0, 0};
      break;
    case FpClass::kSubnormal:
      // value = f * 2^(1 - bias - man_bits): same scale as exponent 1,
      // just without the implied leading 1.
      out.value = {1, neg ? -f : f};
      break;
    case FpClass::kNormal: {
      const std::int64_t sig = f | (std::int64_t{1} << fmt.man_bits);
      out.value = {e, neg ? -sig : sig};
      break;
    }
    case FpClass::kInf:
    case FpClass::kNaN:
      out.value = {e, 0};  // caller must consult cls
      break;
  }
  return out;
}

AssembleResult assemble(std::int32_t exp, std::int64_t man,
                        const FloatFormat& fmt, int guard_bits,
                        Rounding rounding) {
  AssembleResult out;
  if (man == 0) {
    out.bits = 0;  // canonical +0
    return out;
  }
  const bool neg = man < 0;
  const std::uint64_t sign = neg ? fmt.sign_mask() : 0;
  // Magnitude; INT64_MIN negates safely through uint64.
  const std::uint64_t u =
      neg ? ~static_cast<std::uint64_t>(man) + 1 : static_cast<std::uint64_t>(man);

  // Position of the leading 1 (this is what the LPM table computes, Fig 5).
  const int p = 63 - std::countl_zero(u);
  // Invariant: value = man * 2^(exp - bias - man_bits - guard_bits).
  // Normalized exponent puts the leading 1 at bit man_bits.
  const std::int64_t norm_exp =
      static_cast<std::int64_t>(exp) + p - fmt.man_bits - guard_bits;
  const int shift = p - fmt.man_bits;  // right shift to canonical position

  if (norm_exp >= fmt.max_biased_exp()) {
    out.bits = sign | (fmt.exp_mask() << fmt.man_bits);  // ±inf
    out.overflowed = true;
    return out;
  }

  bool inexact = false;
  if (norm_exp <= 0) {
    // Subnormal output: exponent field 0, extra right shift of 1 - norm_exp.
    const int total_shift = shift + static_cast<int>(1 - norm_exp);
    std::uint64_t frac = round_magnitude(u, total_shift, neg, rounding, &inexact);
    if (frac == 0) {
      out.bits = sign;
      out.underflowed = true;
      return out;
    }
    if (frac >= (std::uint64_t{1} << fmt.man_bits)) {
      // Rounded up into the smallest normal number.
      out.bits = sign | (std::uint64_t{1} << fmt.man_bits);
      return out;
    }
    out.bits = sign | frac;
    return out;
  }

  std::uint64_t sig;
  std::int64_t e_out = norm_exp;
  if (shift >= 0) {
    sig = round_magnitude(u, shift, neg, rounding, &inexact);
    if (sig >= (std::uint64_t{1} << (fmt.man_bits + 1))) {
      sig >>= 1;  // rounding carried out of the significand
      ++e_out;
      if (e_out >= fmt.max_biased_exp()) {
        out.bits = sign | (fmt.exp_mask() << fmt.man_bits);
        out.overflowed = true;
        return out;
      }
    }
  } else {
    sig = u << -shift;  // exact: brings leading 1 up to bit man_bits
  }
  out.bits = sign | (static_cast<std::uint64_t>(e_out) << fmt.man_bits) |
             (sig & fmt.man_mask());
  return out;
}

}  // namespace fpisa::core
