// The TCAM longest-prefix-match count-leading-zeros trick (paper §3.2,
// Fig 5). No PISA switch has an lzcnt instruction; FPISA builds an LPM table
// where entry i matches "i leading zeros then a 1" and its action is the
// fixed shift that moves the leading 1 to the canonical significand
// position. This module builds those entries; they are consumed both by the
// software read path (for fidelity testing) and by the PISA switch program
// (src/pisa/fpisa_program.*), which installs them into a simulated TCAM.
#pragma once

#include <cstdint>
#include <vector>

namespace fpisa::core {

struct ClzLpmEntry {
  std::uint64_t prefix_bits;  ///< left-aligned in a reg_bits-wide word
  int prefix_len;             ///< number of significant leading bits
  int shift;                  ///< positive = shift right, negative = left
  int leading_zeros;          ///< what a match implies about the key
};

/// Builds the Fig 5 table for a register of `reg_bits` whose canonical
/// leading-1 position is `target_bit` (bit index from LSB; 23 for FP32 with
/// no guard bits). Entries are ordered by descending prefix length, i.e.
/// longest-prefix-first, plus a final default (len 0, shift 0) entry.
std::vector<ClzLpmEntry> build_clz_lpm_table(int reg_bits, int target_bit);

/// Pure-software LPM lookup over the entry list (linear scan in priority
/// order, exactly what a TCAM does). Returns the matched entry's shift.
int lpm_lookup_shift(const std::vector<ClzLpmEntry>& table,
                     std::uint64_t key, int reg_bits);

}  // namespace fpisa::core
