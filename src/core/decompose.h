// Extract / assemble between packed floating-point bit patterns and FPISA's
// decomposed (exponent register, signed two's-complement mantissa register)
// representation (paper §3.1, Fig 3; dataflow MAU0-1 and MAU5-8 in Fig 2).
#pragma once

#include <cstdint>

#include "core/float_format.h"
#include "core/packed.h"

namespace fpisa::core {

/// A value as held in switch registers: `man` is a signed two's-complement
/// significand (implied 1 made explicit; subnormals keep their raw fraction),
/// `exp` is the biased exponent with subnormals remapped to exponent 1 so
/// that `value == man * 2^(exp - bias - man_bits)` holds exactly.
/// No guard shift is applied here; accumulators add guard bits themselves.
struct Decomposed {
  std::int32_t exp = 0;
  std::int64_t man = 0;
};

struct ExtractResult {
  Decomposed value;
  FpClass cls = FpClass::kZero;
};

/// MAU0/MAU1 of Fig 2: split bits, add the implied "1", fold the sign into
/// two's complement. Inf/NaN are reported via `cls` (the value fields are
/// unspecified for them); callers decide policy (the accumulator flags them).
ExtractResult extract(std::uint64_t bits, const FloatFormat& fmt);

/// MAU5-8 of Fig 2: renormalize a (possibly denormalized) register pair and
/// pack to the canonical format. `guard_bits` says how far the register
/// value is pre-shifted left of the canonical significand position.
/// Rounding of dropped low bits:
enum class Rounding {
  kTowardZero,    ///< truncate magnitude (hardware-faithful read path)
  kNearestEven,   ///< requires guard bits to be meaningful
  kTowardNegInf,
  kTowardPosInf,
};

struct AssembleResult {
  std::uint64_t bits = 0;
  bool overflowed = false;   ///< exponent too large: clamped to ±inf
  bool underflowed = false;  ///< result below subnormal range: flushed to ±0
};

AssembleResult assemble(std::int32_t exp, std::int64_t man,
                        const FloatFormat& fmt, int guard_bits = 0,
                        Rounding rounding = Rounding::kTowardZero);

}  // namespace fpisa::core
