// AVX2 backend for fpisa_add_batch: four 64-bit lanes per iteration, a
// literal translation of the branchless lane primitive in batch_lane.h
// into vector selects. This translation unit is compiled with -mavx2 (and
// only when FPISA_ENABLE_AVX2 is on); callers reach it solely through the
// runtime-dispatched fpisa_add_batch, which checks CPU support first.
//
// Notes on the emulated pieces (AVX2 has no 64-bit arithmetic shift and no
// 64-bit min/max):
//  * asr(v, s) for s in [0,63]: (v >>> s) | (sign_mask << (64 - s)); the
//    fill shift count of 64 (s == 0) correctly produces no fill because
//    vpsllvq yields 0 for counts >= 64.
//  * distances >= 64 behave like the reference: results clamp through the
//    s -> min(s, 63) mapping (every operand fits in < 63 magnitude bits),
//    and the inexact rule switches to "v != 0 && v != -1" lanes-wise.
//  * wrap to reg_bits: mask, then xor/sub sign-extension.
#include "core/batch_accumulator.h"

#if defined(FPISA_HAVE_AVX2)

#include <immintrin.h>

#include "core/batch_lane.h"

namespace fpisa::core::detail {
namespace {

inline __m256i set1(std::int64_t v) { return _mm256_set1_epi64x(v); }

/// Per-lane boolean mask (all-ones / all-zeros 64-bit lanes) popcount.
inline unsigned mask_count(__m256i m) {
  return static_cast<unsigned>(__builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(m)))));
}

inline __m256i blend(__m256i a, __m256i b, __m256i mask) {
  return _mm256_blendv_epi8(a, b, mask);  // mask lanes are all-ones/zeros
}

inline __m256i is_nonzero64(__m256i v) {
  return _mm256_xor_si256(_mm256_cmpeq_epi64(v, _mm256_setzero_si256()),
                          set1(-1));
}

/// Arithmetic >> for 64-bit lanes, counts already clamped to [0, 63].
inline __m256i asr64(__m256i v, __m256i s) {
  const __m256i logical = _mm256_srlv_epi64(v, s);
  const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  const __m256i fill = _mm256_sllv_epi64(neg, _mm256_sub_epi64(set1(64), s));
  return _mm256_or_si256(logical, fill);
}

/// Replica of asr_inexact_clamped: `s` unclamped, `sc` = min(s, 63).
inline __m256i asr_inexact64(__m256i v, __m256i s, __m256i sc) {
  const __m256i low_mask =
      _mm256_sub_epi64(_mm256_sllv_epi64(set1(1), sc), set1(1));
  const __m256i below64 = is_nonzero64(_mm256_and_si256(v, low_mask));
  const __m256i at64 = _mm256_and_si256(
      is_nonzero64(v),
      _mm256_xor_si256(_mm256_cmpeq_epi64(v, set1(-1)), set1(-1)));
  const __m256i ge64 = _mm256_cmpgt_epi64(s, set1(63));
  const __m256i pos = _mm256_cmpgt_epi64(s, _mm256_setzero_si256());
  return _mm256_and_si256(pos, blend(below64, at64, ge64));
}

// --- specialized 8-lane kernel for 32-bit registers ------------------------
// The default FP32 config accumulates in a 32-bit register, where the lane
// math fits native 32-bit SIMD: vpsravd already sign-fills for counts > 31
// (exactly the clamp the reference applies), a 32-bit add IS the wrap to
// reg_bits, and signed-overflow detection is the classic (a^sum)&(b^sum)
// sign test. Twice the lanes, fewer emulated ops.

inline __m256i is_nonzero32(__m256i v) {
  return _mm256_xor_si256(_mm256_cmpeq_epi32(v, _mm256_setzero_si256()),
                          _mm256_set1_epi32(-1));
}

inline unsigned mask_count32(__m256i m) {
  return static_cast<unsigned>(__builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)))));
}

/// Inexact rule on 32-bit lanes, s unclamped (>= 0). For s in [1,31] the
/// low-bit mask applies; for s in [32,63] the reference's sign-extended
/// mask covers the whole value, i.e. inexact == (v != 0) — which the
/// uniform `(1 << s) - 1` mask also yields because vpsllvd returns 0 for
/// counts >= 32; for s >= 64 the reference switches to v != 0 && v != -1.
inline __m256i asr_inexact32(__m256i v, __m256i s) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i low_mask =
      _mm256_sub_epi32(_mm256_sllv_epi32(one, s), one);
  const __m256i below = is_nonzero32(_mm256_and_si256(v, low_mask));
  const __m256i at64 = _mm256_and_si256(
      is_nonzero32(v),
      _mm256_xor_si256(_mm256_cmpeq_epi32(v, _mm256_set1_epi32(-1)),
                       _mm256_set1_epi32(-1)));
  const __m256i ge64 = _mm256_cmpgt_epi32(s, _mm256_set1_epi32(63));
  const __m256i pos = _mm256_cmpgt_epi32(s, _mm256_setzero_si256());
  return _mm256_and_si256(pos, blend(below, at64, ge64));
}

/// Pack 8 x int64 (two 256-bit halves, values known to fit int32) into one
/// 8 x int32 vector, and the inverse via sign extension.
inline __m256i pack_man32(__m256i lo, __m256i hi) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i a = _mm256_permutevar8x32_epi32(lo, idx);
  const __m256i b = _mm256_permutevar8x32_epi32(hi, idx);
  return _mm256_permute2x128_si256(a, b, 0x20);  // low(a) | low(b)
}

template <Variant V, OverflowPolicy P>
void run32(const std::uint32_t* bits, std::size_t n, std::int32_t* exp,
           std::int64_t* man, const LaneParams& p, BatchTallies& t) {
  const __m256i k_exp_mask = _mm256_set1_epi32(0xFF);
  const __m256i k_frac_mask = _mm256_set1_epi32(0x7FFFFF);
  const __m256i k_implied = _mm256_set1_epi32(1 << 23);
  const __m256i k_zero = _mm256_setzero_si256();
  const __m256i k_one = _mm256_set1_epi32(1);
  const __m256i k_all = _mm256_set1_epi32(-1);
  const __m256i k_hi = _mm256_set1_epi32(static_cast<std::int32_t>(p.hi));
  const __m256i k_lo = _mm256_set1_epi32(static_cast<std::int32_t>(p.lo));
  const __m256i k_headroom = _mm256_set1_epi32(p.headroom);
  const __m128i k_guard = _mm_cvtsi32_si128(p.guard);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    const __m256i se =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(exp + i));
    const __m256i man_lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i));
    const __m256i man_hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i + 4));
    const __m256i sm = pack_man32(man_lo, man_hi);

    const __m256i e_raw =
        _mm256_and_si256(_mm256_srli_epi32(u, 23), k_exp_mask);
    const __m256i frac = _mm256_and_si256(u, k_frac_mask);
    const __m256i nonfinite = _mm256_cmpeq_epi32(e_raw, k_exp_mask);
    const __m256i zero =
        _mm256_cmpeq_epi32(_mm256_or_si256(e_raw, frac), k_zero);
    const __m256i active =
        _mm256_andnot_si256(_mm256_or_si256(nonfinite, zero), k_all);

    const __m256i sub = _mm256_cmpeq_epi32(e_raw, k_zero);
    const __m256i e = blend(e_raw, k_one, sub);
    const __m256i sig =
        _mm256_or_si256(frac, _mm256_andnot_si256(sub, k_implied));
    const __m256i negm = _mm256_srai_epi32(u, 31);
    const __m256i m_signed =
        _mm256_sub_epi32(_mm256_xor_si256(sig, negm), negm);
    const __m256i m_in = _mm256_sll_epi32(m_signed, k_guard);

    const __m256i d = _mm256_sub_epi32(e, se);
    const __m256i d_neg = _mm256_sub_epi32(k_zero, d);

    __m256i a, b, ne, rounded;
    __m256i is_lsh = k_zero, is_ovw = k_zero;
    if (V == Variant::kFull) {
      const __m256i grow = _mm256_cmpgt_epi32(d, k_zero);
      const __m256i sh = blend(d_neg, d, grow);
      const __m256i shifted = blend(m_in, sm, grow);
      rounded = asr_inexact32(shifted, sh);
      a = _mm256_srav_epi32(shifted, sh);  // counts > 31 sign-fill natively
      b = blend(sm, m_in, grow);
      ne = blend(se, e, grow);
    } else {
      is_ovw = _mm256_cmpgt_epi32(d, k_headroom);
      const __m256i pos = _mm256_cmpgt_epi32(d, k_zero);
      is_lsh = _mm256_andnot_si256(is_ovw, pos);
      const __m256i sh = _mm256_andnot_si256(pos, d_neg);  // max(-d, 0)
      rounded = asr_inexact32(m_in, sh);
      const __m256i dl = _mm256_and_si256(d, is_lsh);
      const __m256i lshifted = _mm256_sllv_epi32(m_in, dl);
      b = blend(_mm256_srav_epi32(m_in, sh), lshifted, is_lsh);
      b = blend(b, m_in, is_ovw);
      a = _mm256_andnot_si256(is_ovw, sm);
      ne = blend(se, e, is_ovw);
    }

    // 32-bit add IS the wrap; signed overflow via the sign-algebra test.
    const __m256i sum = _mm256_add_epi32(a, b);
    const __m256i ovf = _mm256_srai_epi32(
        _mm256_and_si256(_mm256_xor_si256(a, sum), _mm256_xor_si256(b, sum)),
        31);
    const __m256i satv = blend(k_hi, k_lo, _mm256_srai_epi32(a, 31));
    const __m256i nm =
        P == OverflowPolicy::kWrap ? sum : blend(sum, satv, ovf);

    t.nonfinite += mask_count32(nonfinite);
    t.adds += mask_count32(_mm256_xor_si256(nonfinite, k_all));
    t.zeros += mask_count32(_mm256_andnot_si256(nonfinite, zero));
    t.rounded += mask_count32(_mm256_and_si256(active, rounded));
    t.saturations += mask_count32(_mm256_and_si256(active, ovf));
    t.lshift_overflows += mask_count32(
        _mm256_and_si256(active, _mm256_and_si256(is_lsh, ovf)));
    t.overwrites += mask_count32(_mm256_and_si256(
        active, _mm256_and_si256(is_ovw, is_nonzero32(sm))));

    const __m256i se_out = blend(se, ne, active);
    const __m256i sm_out = blend(sm, nm, active);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(exp + i), se_out);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(man + i),
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sm_out)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(man + i + 4),
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(sm_out, 1)));
  }
  lane_add_range<V, P>(bits + i, n - i, exp + i, man + i, p, t);
}

template <Variant V, OverflowPolicy P>
void run(const std::uint32_t* bits, std::size_t n, std::int32_t* exp,
         std::int64_t* man, const LaneParams& p, BatchTallies& t) {
  if (p.reg_bits == 32) {
    run32<V, P>(bits, n, exp, man, p, t);
    return;
  }
  const __m256i k_exp_mask = set1(0xFF);
  const __m256i k_frac_mask = set1(0x7FFFFF);
  const __m256i k_implied = set1(std::int64_t{1} << 23);
  const __m256i k_zero = _mm256_setzero_si256();
  const __m256i k_one = set1(1);
  const __m256i k_63 = set1(63);
  const __m256i k_hi = set1(p.hi);
  const __m256i k_lo = set1(p.lo);
  const __m256i k_sign_bit = set1(static_cast<std::int64_t>(p.sign_bit));
  const __m256i k_width_mask =
      set1(static_cast<std::int64_t>((p.sign_bit << 1) - 1));
  const __m256i k_headroom = set1(p.headroom);
  const __m128i k_guard = _mm_cvtsi32_si128(p.guard);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i u = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bits + i)));
    const __m256i se =
        _mm256_cvtepi32_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
            exp + i)));  // loads 4x int32 (upper lanes ignored by cvt)
    const __m256i sm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(man + i));

    // Extract + classify.
    const __m256i e_raw = _mm256_and_si256(_mm256_srli_epi64(u, 23), k_exp_mask);
    const __m256i frac = _mm256_and_si256(u, k_frac_mask);
    const __m256i nonfinite = _mm256_cmpeq_epi64(e_raw, k_exp_mask);
    const __m256i zero =
        _mm256_cmpeq_epi64(_mm256_or_si256(e_raw, frac), k_zero);
    const __m256i active = _mm256_andnot_si256(
        _mm256_or_si256(nonfinite, zero), set1(-1));

    // Implied 1, subnormal remap, sign fold, guard shift.
    const __m256i sub = _mm256_cmpeq_epi64(e_raw, k_zero);
    const __m256i e = blend(e_raw, k_one, sub);
    const __m256i sig =
        _mm256_or_si256(frac, _mm256_andnot_si256(sub, k_implied));
    const __m256i negm =
        is_nonzero64(_mm256_and_si256(_mm256_srli_epi64(u, 31), k_one));
    const __m256i m_signed =
        _mm256_sub_epi64(_mm256_xor_si256(sig, negm), negm);
    const __m256i m_in = _mm256_sll_epi64(m_signed, k_guard);

    const __m256i d = _mm256_sub_epi64(e, se);
    const __m256i d_neg = _mm256_sub_epi64(k_zero, d);

    __m256i a, b, ne, rounded;
    __m256i is_lsh = k_zero, is_ovw = k_zero;
    if (V == Variant::kFull) {
      const __m256i grow = _mm256_cmpgt_epi64(d, k_zero);
      const __m256i sh = blend(d_neg, d, grow);
      const __m256i shc = blend(sh, k_63, _mm256_cmpgt_epi64(sh, k_63));
      const __m256i shifted = blend(m_in, sm, grow);
      rounded = asr_inexact64(shifted, sh, shc);
      a = asr64(shifted, shc);
      b = blend(sm, m_in, grow);  // grow: add incoming; else add stored
      ne = blend(se, e, grow);
    } else {
      is_ovw = _mm256_cmpgt_epi64(d, k_headroom);
      const __m256i pos = _mm256_cmpgt_epi64(d, k_zero);
      is_lsh = _mm256_andnot_si256(is_ovw, pos);
      const __m256i sh = _mm256_andnot_si256(pos, d_neg);  // max(-d, 0)
      const __m256i shc = blend(sh, k_63, _mm256_cmpgt_epi64(sh, k_63));
      rounded = asr_inexact64(m_in, sh, shc);
      const __m256i dl = _mm256_and_si256(d, is_lsh);  // 0 unless lsh
      const __m256i lshifted = _mm256_sllv_epi64(m_in, dl);
      b = blend(asr64(m_in, shc), lshifted, is_lsh);
      b = blend(b, m_in, is_ovw);
      a = _mm256_andnot_si256(is_ovw, sm);
      ne = blend(se, e, is_ovw);
    }

    // add_register in select form.
    const __m256i sum = _mm256_add_epi64(a, b);
    const __m256i under = _mm256_cmpgt_epi64(k_lo, sum);
    const __m256i over = _mm256_cmpgt_epi64(sum, k_hi);
    const __m256i ovf = _mm256_or_si256(under, over);
    const __m256i w = _mm256_and_si256(sum, k_width_mask);
    const __m256i wrapped =
        _mm256_sub_epi64(_mm256_xor_si256(w, k_sign_bit), k_sign_bit);
    const __m256i satv = blend(k_hi, k_lo, under);
    const __m256i nm = blend(
        sum, P == OverflowPolicy::kWrap ? wrapped : satv, ovf);

    // Tallies: per-lane booleans -> movemask popcounts.
    t.nonfinite += mask_count(nonfinite);
    t.adds += mask_count(_mm256_xor_si256(nonfinite, set1(-1)));
    t.zeros += mask_count(_mm256_andnot_si256(nonfinite, zero));
    t.rounded += mask_count(_mm256_and_si256(active, rounded));
    t.saturations += mask_count(_mm256_and_si256(active, ovf));
    t.lshift_overflows += mask_count(
        _mm256_and_si256(active, _mm256_and_si256(is_lsh, ovf)));
    t.overwrites += mask_count(_mm256_and_si256(
        active, _mm256_and_si256(is_ovw, is_nonzero64(sm))));

    // Commit.
    const __m256i se_out = blend(se, ne, active);
    const __m256i sm_out = blend(sm, nm, active);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(man + i), sm_out);
    // Narrow the 4x int64 exponents (all fit int32) back to the SoA array.
    const __m256i packed = _mm256_permutevar8x32_epi32(
        se_out, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(exp + i),
                     _mm256_castsi256_si128(packed));
  }
  lane_add_range<V, P>(bits + i, n - i, exp + i, man + i, p, t);
}

}  // namespace

void add_batch_avx2(const std::uint32_t* bits, std::size_t n,
                    std::int32_t* exp, std::int64_t* man,
                    const AccumulatorConfig& cfg, BatchTallies& t) {
  const LaneParams p = LaneParams::from(cfg);
  if (cfg.variant == Variant::kFull) {
    if (cfg.overflow == OverflowPolicy::kWrap) {
      run<Variant::kFull, OverflowPolicy::kWrap>(bits, n, exp, man, p, t);
    } else {
      run<Variant::kFull, OverflowPolicy::kSaturate>(bits, n, exp, man, p, t);
    }
  } else {
    if (cfg.overflow == OverflowPolicy::kWrap) {
      run<Variant::kApproximate, OverflowPolicy::kWrap>(bits, n, exp, man, p,
                                                        t);
    } else {
      run<Variant::kApproximate, OverflowPolicy::kSaturate>(bits, n, exp, man,
                                                            p, t);
    }
  }
}

}  // namespace fpisa::core::detail

#endif  // FPISA_HAVE_AVX2
