// Per-tenant admission state: token bucket + queue-depth accounting.
//
// AdmissionControl is a passive book, same discipline as the SLO
// accumulators: it holds per-tenant buckets and queued-job counts and
// answers "may this job enter, and if not, why / how long until it
// may". The caller (cluster::AggregationService) provides the locking
// — every method here must be called under the service's job mutex —
// and implements the actual blocking / rejection / scheduling around
// the answers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "qos/qos.h"
#include "qos/rate_limiter.h"
#include "qos/virtual_clock.h"

namespace fpisa::qos {

class AdmissionControl {
 public:
  struct TenantState {
    TenantQosConfig cfg;
    TokenBucket bucket;
    std::size_t queued = 0;  ///< admitted, not yet picked up by a runner

    TenantState(const TenantQosConfig& c, std::uint64_t now_ns)
        : cfg(c), bucket(c.rate_jobs_per_s, c.burst_jobs, now_ns) {}
  };

  /// Outcome of one admission probe (no state mutated on failure).
  struct Probe {
    bool admitted = false;
    RejectReason reason = RejectReason::kRateLimited;
    /// On rate-limit failure: ns until a token will exist. Lets a
    /// kBlock caller sleep the exact deficit instead of polling.
    std::uint64_t retry_after_ns = 0;
  };

  explicit AdmissionControl(const QosOptions& opts)
      : opts_(opts), clock_(opts.clock) {
    if (clock_ == nullptr) {
      owned_clock_ = std::make_unique<SteadyClock>();
      clock_ = owned_clock_.get();
    }
  }

  std::uint64_t now_ns() { return clock_->now_ns(); }

  /// Read-only lookup: null for a tenant that has never submitted.
  const TenantState* find(std::string_view name) const {
    const auto it = tenants_.find(name);
    return it == tenants_.end() ? nullptr : &it->second;
  }

  TenantState& tenant(std::string_view name) {
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      it = tenants_
               .emplace(std::string(name),
                        TenantState(opts_.config_for(name), now_ns()))
               .first;
    }
    return it->second;
  }

  /// Probe admission for one queued job: queue bound first (a full
  /// queue must not burn a token), then the rate limiter. On success
  /// the token is taken and the queued count incremented.
  Probe try_admit_queued(TenantState& st, std::uint64_t now) {
    Probe p;
    if (st.queued >= opts_.queue_bound_for(st.cfg)) {
      p.reason = RejectReason::kQueueFull;
      return p;
    }
    if (!st.bucket.try_acquire(1, now)) {
      p.reason = RejectReason::kRateLimited;
      p.retry_after_ns = st.bucket.ns_until_available(1, now);
      return p;
    }
    ++st.queued;
    p.admitted = true;
    return p;
  }

  /// Probe admission for a synchronous (never-queued) job: rate limit
  /// only — the caller runs it inline, so queue bounds don't apply.
  Probe try_admit_direct(TenantState& st, std::uint64_t now) {
    Probe p;
    if (!st.bucket.try_acquire(1, now)) {
      p.reason = RejectReason::kRateLimited;
      p.retry_after_ns = st.bucket.ns_until_available(1, now);
      return p;
    }
    p.admitted = true;
    return p;
  }

  /// A runner picked up one of this tenant's queued jobs.
  void on_dequeued(TenantState& st) {
    if (st.queued > 0) --st.queued;
  }

  const QosOptions& options() const { return opts_; }

 private:
  QosOptions opts_;
  VirtualClock* clock_;
  std::unique_ptr<SteadyClock> owned_clock_;
  std::map<std::string, TenantState, std::less<>> tenants_;
};

}  // namespace fpisa::qos
