// Deterministic token-bucket rate limiter.
//
// All arithmetic is integer: tokens are held in nanotokens (1e-9 of a
// job) and the refill rate is a Q32 fixed-point value in nanotokens per
// nanosecond. Refill accumulates through a 128-bit product with the
// fractional remainder carried between calls, so the bucket's state is
// an exact function of the call sequence and clock readings — two runs
// with the same ManualClock script make byte-identical decisions, and
// long-running buckets never drift from their configured rate.
#pragma once

#include <cstdint>

namespace fpisa::qos {

class TokenBucket {
 public:
  /// rate_jobs_per_s <= 0 disables limiting (every acquire succeeds).
  /// burst_jobs is the bucket capacity; the bucket starts full.
  TokenBucket(double rate_jobs_per_s, std::uint32_t burst_jobs,
              std::uint64_t now_ns);

  /// Take `jobs` tokens if available at time `now_ns`. Returns true on
  /// success; on failure the bucket is refilled but not debited.
  bool try_acquire(std::uint32_t jobs, std::uint64_t now_ns);

  /// Nanoseconds from `now_ns` until `jobs` tokens will be available
  /// (0 if available now, ~UINT64_MAX if `jobs` exceeds capacity so
  /// they never will be). Call after a failed try_acquire to size a
  /// kBlock wait.
  std::uint64_t ns_until_available(std::uint32_t jobs,
                                   std::uint64_t now_ns) const;

  bool unlimited() const { return rate_fp_ == 0; }

  /// Whole tokens currently in the bucket (after the last refill).
  std::uint64_t tokens() const { return nanotokens_ / kNanotokensPerJob; }

 private:
  static constexpr std::uint64_t kNanotokensPerJob = 1'000'000'000ull;

  void refill(std::uint64_t now_ns);

  std::uint64_t rate_fp_ = 0;  ///< Q32 nanotokens per ns; 0 = unlimited
  std::uint64_t capacity_nt_ = 0;
  std::uint64_t nanotokens_ = 0;
  std::uint64_t frac_ = 0;  ///< sub-nanotoken remainder (Q32 fraction)
  std::uint64_t last_ns_ = 0;
};

}  // namespace fpisa::qos
