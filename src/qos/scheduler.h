// Weighted-deficit class scheduler for the job-runner pool.
//
// Replaces the PR 8 FIFO pickup: jobs land in one FIFO per Priority
// class and runners pop through this scheduler instead of the front of
// a single deque. Each class carries a credit counter refreshed to its
// configured weight once per cycle; a pop scans classes in priority
// order and takes the first non-empty class with credit remaining.
// The two properties the tests pin:
//
//   * Overtaking — within a cycle, a queued training job is picked
//     before queued query/telemetry jobs regardless of arrival order.
//   * Starvation-freedom — once the high classes exhaust their cycle
//     credits, lower classes are guaranteed their weight's worth of
//     picks before the cycle refreshes, so sustained high-priority
//     load can delay but never block a telemetry job (with weights
//     {8,2,1} a lone telemetry job waits at most 10 picks).
//
// Not thread-safe by design: the caller (AggregationService) already
// serializes queue access under its job mutex, the same discipline as
// the deque this replaces.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "qos/qos.h"

namespace fpisa::qos {

template <typename Job>
class WeightedScheduler {
 public:
  explicit WeightedScheduler(
      const std::array<std::uint32_t, kNumPriorities>& weights = {8, 2, 1}) {
    for (std::size_t c = 0; c < kNumPriorities; ++c) {
      // A zero weight would starve the class outright; clamp to 1 so
      // every class always owns at least one pick per cycle.
      weights_[c] = weights[c] == 0 ? 1u : weights[c];
      credits_[c] = weights_[c];
    }
  }

  void push(Priority p, Job job) {
    queues_[static_cast<std::size_t>(p)].push_back(std::move(job));
    ++size_;
  }

  /// Pop the next job per the weighted-deficit policy. Returns false if
  /// every queue is empty. On success *picked_class (if non-null) is
  /// the class the job came from.
  bool pop(Job& out, Priority* picked_class = nullptr) {
    if (size_ == 0) return false;
    for (;;) {
      for (std::size_t c = 0; c < kNumPriorities; ++c) {
        if (credits_[c] == 0 || queues_[c].empty()) continue;
        out = std::move(queues_[c].front());
        queues_[c].pop_front();
        --credits_[c];
        --size_;
        ++picks_[c];
        if (picked_class != nullptr) *picked_class = static_cast<Priority>(c);
        return true;
      }
      // Every non-empty class is out of credit: start a new cycle.
      for (std::size_t c = 0; c < kNumPriorities; ++c) credits_[c] = weights_[c];
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t class_depth(Priority p) const {
    return queues_[static_cast<std::size_t>(p)].size();
  }
  std::uint64_t picks(Priority p) const {
    return picks_[static_cast<std::size_t>(p)];
  }

 private:
  std::array<std::deque<Job>, kNumPriorities> queues_;
  std::array<std::uint32_t, kNumPriorities> weights_{};
  std::array<std::uint32_t, kNumPriorities> credits_{};
  std::array<std::uint64_t, kNumPriorities> picks_{};
  std::size_t size_ = 0;
};

}  // namespace fpisa::qos
