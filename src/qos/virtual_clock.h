// Clock abstraction behind the QoS admission plane. Token buckets and
// admission deadlines consume time as plain nanosecond readings, so the
// whole rate-limiting datapath is a pure function of (config, call
// sequence, clock readings): tests drive a ManualClock and get
// seed-reproducible admission decisions; production uses SteadyClock,
// a monotonic wall source anchored at construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace fpisa::qos {

/// Nanosecond time source. Implementations must be monotone non-decreasing
/// and safe to read from any thread.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// Production clock: std::chrono::steady_clock, rebased to 0 at
/// construction so readings stay small and comparable across instances.
class SteadyClock final : public VirtualClock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Test clock: time moves only when the test says so, so every token
/// refill and deadline check is exactly reproducible.
class ManualClock final : public VirtualClock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : t_(start_ns) {}
  std::uint64_t now_ns() override {
    return t_.load(std::memory_order_acquire);
  }
  void advance_ns(std::uint64_t delta) {
    t_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void advance_s(double seconds) {
    advance_ns(static_cast<std::uint64_t>(seconds * 1e9));
  }

 private:
  std::atomic<std::uint64_t> t_;
};

}  // namespace fpisa::qos
