#include "qos/rate_limiter.h"

#include <cmath>
#include <limits>

namespace fpisa::qos {

TokenBucket::TokenBucket(double rate_jobs_per_s, std::uint32_t burst_jobs,
                         std::uint64_t now_ns)
    : last_ns_(now_ns) {
  if (rate_jobs_per_s > 0.0) {
    // jobs/s -> nanotokens/ns is numerically the same factor, so the
    // Q32 rate is just rate * 2^32, rounded once at construction.
    const double fp = rate_jobs_per_s * 4294967296.0;  // 2^32
    rate_fp_ = fp >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())
                   ? std::numeric_limits<std::uint64_t>::max()
                   : static_cast<std::uint64_t>(std::llround(fp));
    if (rate_fp_ == 0) rate_fp_ = 1;  // don't let tiny rates round to "unlimited"
    if (burst_jobs == 0) burst_jobs = 1;
    capacity_nt_ = static_cast<std::uint64_t>(burst_jobs) * kNanotokensPerJob;
    nanotokens_ = capacity_nt_;  // start full: the first burst is free
  }
}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (rate_fp_ == 0 || now_ns <= last_ns_) return;
  const std::uint64_t elapsed = now_ns - last_ns_;
  last_ns_ = now_ns;
  // 128-bit product keeps the math exact for any realistic elapsed
  // interval; the Q32 fractional part carries to the next refill so
  // nothing is ever lost to truncation.
  const __uint128_t acc =
      static_cast<__uint128_t>(elapsed) * rate_fp_ + frac_;
  const std::uint64_t whole = static_cast<std::uint64_t>(acc >> 32);
  frac_ = static_cast<std::uint64_t>(acc & 0xffffffffull);
  nanotokens_ += whole;
  if (nanotokens_ >= capacity_nt_) {
    nanotokens_ = capacity_nt_;
    frac_ = 0;  // a full bucket holds no partial progress
  }
}

bool TokenBucket::try_acquire(std::uint32_t jobs, std::uint64_t now_ns) {
  if (rate_fp_ == 0) return true;
  refill(now_ns);
  const std::uint64_t need =
      static_cast<std::uint64_t>(jobs) * kNanotokensPerJob;
  if (nanotokens_ < need) return false;
  nanotokens_ -= need;
  return true;
}

std::uint64_t TokenBucket::ns_until_available(std::uint32_t jobs,
                                              std::uint64_t now_ns) const {
  if (rate_fp_ == 0) return 0;
  const std::uint64_t need =
      static_cast<std::uint64_t>(jobs) * kNanotokensPerJob;
  if (need > capacity_nt_) return std::numeric_limits<std::uint64_t>::max();
  // Project the refill that try_acquire would do at now_ns, then invert
  // the rate for the remaining deficit (ceiling division in Q32).
  std::uint64_t have = nanotokens_;
  std::uint64_t frac = frac_;
  if (now_ns > last_ns_) {
    const __uint128_t acc =
        static_cast<__uint128_t>(now_ns - last_ns_) * rate_fp_ + frac;
    have += static_cast<std::uint64_t>(acc >> 32);
    frac = static_cast<std::uint64_t>(acc & 0xffffffffull);
    if (have >= capacity_nt_) {
      have = capacity_nt_;
      frac = 0;
    }
  }
  if (have >= need) return 0;
  const __uint128_t deficit =
      (static_cast<__uint128_t>(need - have) << 32) - frac;
  return static_cast<std::uint64_t>((deficit + rate_fp_ - 1) / rate_fp_);
}

}  // namespace fpisa::qos
