// Multi-tenant admission control & QoS configuration surface.
//
// The cluster fabric serves three kinds of traffic at once — training
// allreduce (large, latency-critical), query-engine jobs (medium,
// interactive) and streaming telemetry (small, endless). Without
// admission control a burst of cheap telemetry jobs queue-starves a
// training job, and one misbehaving tenant can saturate the job-runner
// pool for everyone. This header defines the policy knobs:
//
//   Priority          — traffic class; the scheduler lets higher classes
//                       overtake queued lower ones (weighted-deficit, so
//                       low classes still drain — no starvation).
//   TenantQosConfig   — per-tenant rate limit (token bucket), queue
//                       bound and backpressure policy.
//   QosOptions        — the service-wide surface: class weights, default
//                       tenant config, per-tenant overrides, and an
//                       optional virtual clock for deterministic tests.
//
// Policy only lives here; mechanism is rate_limiter.h (token bucket),
// scheduler.h (weighted-deficit pickup) and admission.h (per-tenant
// bookkeeping), all driven by cluster::AggregationService.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "qos/virtual_clock.h"

namespace fpisa::qos {

/// Traffic class. Lower numeric value = higher priority; the scheduler
/// scans classes in this order each pickup.
enum class Priority : int {
  kTraining = 0,
  kQuery = 1,
  kTelemetry = 2,
};

inline constexpr std::size_t kNumPriorities = 3;

inline constexpr const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kTraining:
      return "training";
    case Priority::kQuery:
      return "query";
    case Priority::kTelemetry:
      return "telemetry";
  }
  return "unknown";
}

/// What to do with a job that cannot be admitted right now.
enum class AdmissionPolicy {
  kReject,  ///< fail fast with AdmissionRejectedError
  kBlock,   ///< wait for tokens/queue space, up to block_deadline_s
};

/// Why a job was turned away.
enum class RejectReason {
  kRateLimited,  ///< token bucket empty (kReject policy)
  kQueueFull,    ///< per-tenant admission queue at its bound
  kDeadline,     ///< kBlock policy waited past its deadline
};

inline constexpr const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kRateLimited:
      return "rate_limit";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

/// Typed backpressure signal: thrown by submit/reduce when admission
/// fails under the kReject policy (or a kBlock deadline expires).
class AdmissionRejectedError : public std::runtime_error {
 public:
  AdmissionRejectedError(std::string tenant, RejectReason reason)
      : std::runtime_error("qos: tenant '" + tenant + "' rejected (" +
                           reject_reason_name(reason) + ")"),
        tenant_(std::move(tenant)),
        reason_(reason) {}

  const std::string& tenant() const { return tenant_; }
  RejectReason reason() const { return reason_; }

 private:
  std::string tenant_;
  RejectReason reason_;
};

/// Per-tenant policy. The zero-ish defaults mean "unlimited rate, one
/// class below training, inherit the service queue bound, fail fast".
struct TenantQosConfig {
  Priority priority = Priority::kQuery;

  /// Sustained admission rate in jobs/second. <= 0 means unlimited.
  double rate_jobs_per_s = 0.0;

  /// Bucket capacity: how many jobs may arrive back-to-back before the
  /// sustained rate applies. Ignored when rate is unlimited.
  std::uint32_t burst_jobs = 1;

  /// Max jobs this tenant may have queued (admitted but not yet picked
  /// up by a runner). 0 = inherit QosOptions::default_max_queued_jobs.
  std::size_t max_queued_jobs = 0;

  /// Behavior when the bucket is empty or the queue is full.
  AdmissionPolicy policy = AdmissionPolicy::kReject;

  /// kBlock only: give up (RejectReason::kDeadline) after this long.
  double block_deadline_s = 1.0;
};

/// Service-wide QoS configuration, carried by cluster::ClusterOptions
/// and collective::CommunicatorOptions.
struct QosOptions {
  /// Master switch. Off = the service behaves exactly as before: one
  /// FIFO class, no rate limits, unbounded queues.
  bool enabled = false;

  /// Weighted-deficit credits per class, indexed by Priority. Each
  /// scheduling cycle a class may be picked up to its weight times
  /// before lower classes get their guaranteed share.
  std::array<std::uint32_t, kNumPriorities> class_weights = {8, 2, 1};

  /// Queue bound for tenants whose config leaves max_queued_jobs at 0.
  std::size_t default_max_queued_jobs = 256;

  /// Config applied to tenants with no entry in `tenants`.
  TenantQosConfig default_tenant;

  /// Per-tenant overrides, keyed by tenant name.
  std::map<std::string, TenantQosConfig, std::less<>> tenants;

  /// Time source for rate limiting / deadlines. Null = the service
  /// creates its own SteadyClock. Tests inject a ManualClock; the
  /// pointer must outlive the service.
  VirtualClock* clock = nullptr;

  const TenantQosConfig& config_for(std::string_view tenant) const {
    auto it = tenants.find(tenant);
    return it == tenants.end() ? default_tenant : it->second;
  }

  std::size_t queue_bound_for(const TenantQosConfig& cfg) const {
    return cfg.max_queued_jobs != 0 ? cfg.max_queued_jobs
                                    : default_max_queued_jobs;
  }
};

}  // namespace fpisa::qos
