#include "hw/units.h"

#include <bit>
#include <cstdio>

#include "util/table.h"

namespace fpisa::hw {
namespace {

int log2_ceil(int v) {
  int lg = 0;
  while ((1 << lg) < v) ++lg;
  return lg;
}

UnitCost summarize(std::string name, const CellBag& bag, double delay_ps) {
  UnitCost c;
  c.name = std::move(name);
  c.area_um2 = bag.area_um2();
  c.dynamic_uw = bag.dynamic_uw();
  c.leakage_uw = bag.leakage_uw();
  c.min_delay_ps = delay_ps;
  c.cells = bag.cell_count();
  return c;
}

}  // namespace

CellBag adder(int bits) {
  CellBag b;
  b.add(Cell::kFullAdder, bits);
  // Carry-lookahead tree: ~1.5 AOI + 1 NAND per bit.
  b.add(Cell::kAoi21, bits + bits / 2);
  b.add(Cell::kNand2, bits);
  return b;
}

CellBag barrel_shifter(int bits) {
  CellBag b;
  b.add(Cell::kMux2, log2_ceil(bits) * bits);
  b.add(Cell::kInv, log2_ceil(bits) * 4);  // distance decode buffers
  return b;
}

CellBag comparator(int bits) {
  CellBag b;
  b.add(Cell::kXor2, bits);
  b.add(Cell::kAoi21, bits);
  b.add(Cell::kNor2, bits / 4);
  return b;
}

CellBag logic_unit(int bits) {
  CellBag b;
  // AND/OR/XOR/NOT lanes plus a 4:1 select per bit.
  b.add(Cell::kAnd2, bits);
  b.add(Cell::kOr2, bits);
  b.add(Cell::kXor2, bits);
  b.add(Cell::kInv, bits);
  b.add(Cell::kMux2, 3 * bits);
  return b;
}

CellBag priority_encoder(int bits) {
  CellBag b;  // leading-zero counter
  b.add(Cell::kAoi21, 2 * bits);
  b.add(Cell::kNand2, bits);
  b.add(Cell::kMux2, log2_ceil(bits) * 8);
  return b;
}

CellBag register_bank(int bits) {
  CellBag b;
  b.add(Cell::kDff, bits);
  return b;
}

CellBag multiplier(int bits) {
  CellBag b;  // array multiplier: bits^2 partial products + FA reduction
  b.add(Cell::kAnd2, bits * bits);
  b.add(Cell::kFullAdder, bits * (bits - 2));
  b.add(Cell::kHalfAdder, bits);
  return b;
}

namespace {

/// The Banzai-style stateless ALU datapath shared by all variants:
/// two operand latches, opcode decode, 32-bit adder + logic + comparator +
/// immediate-distance barrel shifter, result mux, output latch.
CellBag default_alu_bag() {
  CellBag b;
  b.add(register_bank(2 * 32 + 32));  // operand + result latches
  b.add(register_bank(24));           // opcode + immediate
  b.add(adder(32));
  b.add(logic_unit(32));
  b.add(comparator(32));
  b.add(barrel_shifter(32));
  b.add(Cell::kMux2, 5 * 32);  // result select (6-way)
  b.add(Cell::kNand2, 40);     // opcode decode
  b.add(Cell::kInv, 60);       // clock / fanout buffering
  return b;
}

double default_alu_delay() {
  // DFF clk->q, operand mux, lookahead carry chain, result mux, margin.
  return chain_delay_ps({Cell::kDff, Cell::kMux2, Cell::kNand2, Cell::kAoi21,
                         Cell::kAoi21, Cell::kAoi21, Cell::kAoi21,
                         Cell::kAoi21, Cell::kFullAdder, Cell::kMux2,
                         Cell::kMux2, Cell::kNand2, Cell::kXor2,
                         Cell::kInv, Cell::kInv, Cell::kDff});
}

/// Banzai's atomic predicated read-add-write stateful unit: state port,
/// predicate comparators (dual, Tofino-style), dual adders, write-back mux.
CellBag raw_bag() {
  CellBag b;
  b.add(register_bank(2 * 32));  // state in / state out latches
  b.add(register_bank(32));      // metadata operand latch
  b.add(register_bank(32));      // address/index latch + port staging
  b.add(adder(32), 2);           // hi/lo update ALUs
  b.add(comparator(32), 2);      // dual predicates
  b.add(Cell::kMux2, 3 * 32);    // predicate-selected write-back
  b.add(Cell::kNand2, 110);      // address decode + port control
  b.add(Cell::kInv, 120);        // word-line / bit-line drivers
  return b;
}

double raw_delay() {
  return chain_delay_ps({Cell::kDff, Cell::kMux2, Cell::kNand2, Cell::kAoi21,
                         Cell::kAoi21, Cell::kAoi21, Cell::kAoi21,
                         Cell::kAoi21, Cell::kFullAdder, Cell::kMux2,
                         Cell::kMux2, Cell::kNand2, Cell::kXor2,
                         Cell::kInv, Cell::kInv, Cell::kDff});
}

}  // namespace

UnitCost default_alu_cost() {
  return summarize("Default ALU", default_alu_bag(), default_alu_delay());
}

UnitCost fpisa_alu_cost() {
  // §4.2: "the overhead mainly comes from connecting and storing the second
  // operand in the shifter": a metadata-distance latch, the distance-source
  // mux on every shifter level, and the wider operand crossbar tap.
  CellBag b = default_alu_bag();
  b.add(register_bank(32));    // second (distance) operand latch
  b.add(Cell::kMux2, 5 * 32);  // distance-source mux across shifter levels
  b.add(Cell::kMux2, 32);      // crossbar tap
  b.add(Cell::kInv, 40);       // added fanout buffering
  // One extra mux in the shift path barely moves the critical path.
  const double delay = default_alu_delay() + cell(Cell::kInv).delay_ps / 2.0;
  return summarize("FPISA ALU", b, delay);
}

UnitCost raw_unit_cost() { return summarize("Default RAW", raw_bag(), raw_delay()); }

UnitCost rsaw_unit_cost() {
  // §4.2 RSAW: a barrel shifter inserted between the state read and the
  // adder (serial!), plus the distance latch — more area AND a longer
  // critical path (the paper measures +13.5% delay, still < 1 ns).
  CellBag b = raw_bag();
  b.add(barrel_shifter(32));
  b.add(register_bank(8));     // shift distance latch
  b.add(Cell::kMux2, 32);      // shifter bypass
  b.add(Cell::kInv, 30);
  // Two shifter mux levels land on the critical path before the adder.
  const double delay =
      raw_delay() + chain_delay_ps({Cell::kMux2, Cell::kMux2, Cell::kInv});
  return summarize("FPISA RSAW", b, delay);
}

UnitCost alu_with_fpu_cost() {
  // The Mellanox-style alternative: bolt a hard FP32 adder onto the ALU.
  // A 1 GHz FP adder is a dual-path (near/far) pipelined design: operand
  // swap, exponent datapath, two parallel significand paths each with its
  // own wide shifter, LZA/LZC, rounding, and three ranks of pipeline
  // registers — the 5x area/power the paper reports (§4.2, Table 1).
  CellBag b = default_alu_bag();
  // Operand unpack + swap, duplicated for the dual paths.
  b.add(Cell::kMux2, 4 * 32);
  b.add(comparator(32), 2);
  // Exponent datapath: difference, adjust, overflow/underflow, dual copies.
  b.add(adder(11), 6);
  // Far path: subnormal-capable 48-bit align shifter + sticky tree +
  // 48-bit significand adder + IEEE rounding (4 modes).
  b.add(barrel_shifter(48));
  b.add(Cell::kOr2, 48);
  b.add(adder(48));
  b.add(Cell::kHalfAdder, 48);
  b.add(Cell::kMux2, 4 * 28);  // rounding-mode select
  // Near path: cancellation adder + leading-zero anticipator (parallel
  // tree, runs alongside the add) + LZC + 48-bit normalize shifter.
  b.add(adder(48));
  b.add(Cell::kAoi21, 3 * 48);  // LZA tree
  b.add(priority_encoder(48));
  b.add(barrel_shifter(48));
  // Special cases (inf/NaN/subnormal flags) and result compose.
  b.add(Cell::kAoi21, 240);
  b.add(Cell::kMux2, 5 * 32);
  // Five ranks of pipeline registers over ~192 bits of internal state:
  // what timing closure at 1 GHz costs (the dominant area/leakage term,
  // and the reason the paper calls dedicated FPUs expensive even idle).
  b.add(register_bank(5 * 192));
  b.add(register_bank(2 * 64));  // bypass/result staging
  b.add(Cell::kInv, 400);        // clock tree + fanout buffering
  // Pipelined: the per-stage path is similar to the integer ALU's.
  const double delay = default_alu_delay() + cell(Cell::kMux2).delay_ps / 2.0;
  return summarize("ALU+FPU", b, delay);
}

UnitCost int_multiplier_cost() {
  // Appendix A: integer multiplier for FP multiplication's mantissa product
  // (24x24 for FP32), array organization.
  CellBag b = multiplier(24);
  b.add(register_bank(2 * 24 + 48));
  const double delay = chain_delay_ps(
      {Cell::kDff, Cell::kAnd2, Cell::kFullAdder, Cell::kFullAdder,
       Cell::kFullAdder, Cell::kFullAdder, Cell::kFullAdder, Cell::kFullAdder,
       Cell::kFullAdder, Cell::kMux2, Cell::kDff});
  return summarize("Integer multiplier (24b)", b, delay);
}

std::vector<UnitCost> table1_units() {
  return {default_alu_cost(), fpisa_alu_cost(), raw_unit_cost(),
          rsaw_unit_cost(), alu_with_fpu_cost()};
}

std::string render_table1() {
  // Paper's Table 1 values for side-by-side comparison.
  struct PaperRow {
    const char* name;
    double dyn, leak, area, delay;
  };
  const PaperRow paper[] = {
      {"Default ALU", 594.2, 18.6, 505.4, 133},
      {"FPISA ALU", 669.4, 22.8, 618.6, 135},
      {"Default RAW", 637.6, 16.8, 468.8, 133},
      {"FPISA RSAW", 721.1, 22.1, 633.0, 151},
      {"ALU+FPU", 3590.6, 109.8, 3837.7, 136},
  };

  util::Table t({"Unit", "Dyn power (uW)", "Leakage (uW)", "Area (um^2)",
                 "Min delay (ps)", "Paper dyn/leak/area/delay"});
  const auto units = table1_units();
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitCost& u = units[i];
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.1f / %.1f / %.1f / %.0f", paper[i].dyn,
                  paper[i].leak, paper[i].area, paper[i].delay);
    t.add_row({u.name, util::Table::num(u.dynamic_uw, 1),
               util::Table::num(u.leakage_uw, 1),
               util::Table::num(u.area_um2, 1),
               util::Table::num(u.min_delay_ps, 0), buf});
  }
  std::string out = t.render();

  const auto mul = int_multiplier_cost();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s: %.1f uW dyn, %.1f uW leak, %.1f um^2, %.0f ps "
                "(Appendix A: ~adder+boolean-module class)\n",
                mul.name.c_str(), mul.dynamic_uw, mul.leakage_uw, mul.area_um2,
                mul.min_delay_ps);
  out += buf;
  return out;
}

}  // namespace fpisa::hw
