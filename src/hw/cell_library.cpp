#include "hw/cell_library.h"

namespace fpisa::hw {
namespace {

// 15nm FinFET-class parameters (FreePDK15 ballpark): sub-micron cell areas,
// ~1 uW/GHz-class dynamic power for simple gates at moderate activity,
// single-digit picosecond intrinsic delays.
constexpr CellParams kCells[] = {
    {"INV", 0.20, 0.18, 0.006, 4.0},
    {"NAND2", 0.25, 0.24, 0.008, 5.0},
    {"NOR2", 0.25, 0.24, 0.008, 5.5},
    {"AND2", 0.29, 0.28, 0.009, 6.0},
    {"OR2", 0.29, 0.28, 0.009, 6.5},
    {"XOR2", 0.49, 0.55, 0.015, 7.5},
    {"MUX2", 0.44, 0.42, 0.013, 6.5},
    {"AOI21", 0.34, 0.30, 0.010, 6.0},
    {"FA", 1.17, 1.35, 0.036, 9.0},
    {"HA", 0.73, 0.80, 0.022, 7.5},
    {"DFF", 0.93, 1.10, 0.030, 11.0},
};

}  // namespace

const CellParams& cell(Cell c) { return kCells[static_cast<int>(c)]; }

void CellBag::add(Cell c, int count) {
  for (auto& [cc, n] : cells_) {
    if (cc == c) {
      n += count;
      return;
    }
  }
  cells_.emplace_back(c, count);
}

void CellBag::add(const CellBag& other, int times) {
  for (const auto& [c, n] : other.cells_) add(c, n * times);
}

double CellBag::area_um2() const {
  double a = 0;
  for (const auto& [c, n] : cells_) a += cell(c).area_um2 * n;
  return a;
}

double CellBag::dynamic_uw() const {
  double p = 0;
  for (const auto& [c, n] : cells_) p += cell(c).dyn_uw * n;
  return p;
}

double CellBag::leakage_uw() const {
  double p = 0;
  for (const auto& [c, n] : cells_) p += cell(c).leak_uw * n;
  return p;
}

int CellBag::cell_count() const {
  int t = 0;
  for (const auto& [c, n] : cells_) t += n;
  return t;
}

double chain_delay_ps(const std::vector<Cell>& stages) {
  double d = 0;
  for (const Cell c : stages) d += cell(c).delay_ps;
  return d;
}

}  // namespace fpisa::hw
