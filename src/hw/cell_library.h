// A FreePDK15-style standard-cell library model.
//
// The paper synthesizes its Banzai ALU variants with Synopsys DC and the
// FreePDK15 FinFET library (Table 1). We have no synthesis tools here, so
// src/hw substitutes a structural estimate: every functional unit is
// composed from counted standard cells whose area/power/delay parameters
// are calibrated to the 15nm class. The absolute numbers are estimates;
// the *ratios* between units (what the paper's argument rests on) come
// from the datapath structure itself.
#pragma once

#include <string>
#include <vector>

namespace fpisa::hw {

struct CellParams {
  const char* name;
  double area_um2;    ///< placed cell area
  double dyn_uw;      ///< dynamic power at 1 GHz, typical activity
  double leak_uw;     ///< leakage power
  double delay_ps;    ///< typical loaded propagation delay
};

enum class Cell {
  kInv,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kMux2,
  kAoi21,
  kFullAdder,
  kHalfAdder,
  kDff,
};

const CellParams& cell(Cell c);

/// A bag of cells plus an explicit critical path (in gate stages of given
/// cells). Units compose by merging bags and chaining/maxing paths.
class CellBag {
 public:
  void add(Cell c, int count);
  void add(const CellBag& other, int times = 1);

  double area_um2() const;
  double dynamic_uw() const;
  double leakage_uw() const;
  int cell_count() const;

 private:
  std::vector<std::pair<Cell, int>> cells_;
};

/// Series delay of a chain of cell stages.
double chain_delay_ps(const std::vector<Cell>& stages);

}  // namespace fpisa::hw
