// Structural cost models for the Banzai-style functional units of Table 1:
//   * default stateless ALU (integer add/sub/logic/compare/imm-shift)
//   * FPISA ALU (the §4.2 2-operand shift: distance from metadata)
//   * RAW   (Banzai's atomic predicated read-add-write stateful unit)
//   * RSAW  (the §4.2 read-SHIFT-add-write stateful unit)
//   * ALU+FPU (a hard FP32 adder bolted onto the ALU — the Mellanox-style
//     alternative the paper argues against)
//   * integer multiplier (Appendix A: for FP multiplication support)
#pragma once

#include <string>
#include <vector>

#include "hw/cell_library.h"

namespace fpisa::hw {

struct UnitCost {
  std::string name;
  double area_um2 = 0;
  double dynamic_uw = 0;
  double leakage_uw = 0;
  double min_delay_ps = 0;
  int cells = 0;
};

/// Building blocks (exposed for unit tests of the structural model).
CellBag adder(int bits);               ///< carry-lookahead
CellBag barrel_shifter(int bits);      ///< log2(bits) mux levels
CellBag comparator(int bits);
CellBag logic_unit(int bits);          ///< and/or/xor/not + select
CellBag priority_encoder(int bits);    ///< leading-zero count
CellBag register_bank(int bits);       ///< DFF row
CellBag multiplier(int bits);          ///< array multiplier

UnitCost default_alu_cost();
UnitCost fpisa_alu_cost();
UnitCost raw_unit_cost();
UnitCost rsaw_unit_cost();
UnitCost alu_with_fpu_cost();
UnitCost int_multiplier_cost();

/// All Table 1 rows in order.
std::vector<UnitCost> table1_units();

/// Renders the Table 1 reproduction (ours vs the paper's numbers).
std::string render_table1();

}  // namespace fpisa::hw
