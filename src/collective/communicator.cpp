#include "collective/communicator.h"

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace fpisa::collective {
namespace {

double elapsed_s(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void Communicator::validate(std::span<const std::span<const float>> workers,
                            std::span<float> out) {
  if (workers.empty()) {
    throw std::invalid_argument("collective: allreduce with no workers");
  }
  const std::size_t n = workers.front().size();
  for (const auto w : workers) {
    if (w.size() != n) {
      throw std::invalid_argument(
          "collective: worker views differ in length");
    }
  }
  if (out.size() != n) {
    throw std::invalid_argument("collective: out span length mismatch");
  }
}

void Communicator::ensure_metrics() const {
  std::call_once(metrics_once_, [this] {
    static std::atomic<std::uint64_t> next_id{0};
    comm_id_ = std::to_string(next_id.fetch_add(1, std::memory_order_relaxed));
    auto& reg = telemetry::registry();
    const telemetry::Labels labels{{"comm", comm_id_},
                                   {"backend", std::string(name())}};
    m_jobs_ = &reg.counter("collective_allreduces_total", labels);
    m_wall_ = &reg.histogram("collective_allreduce_seconds", labels,
                             telemetry::MetricsRegistry::time_buckets());
  });
}

telemetry::Snapshot Communicator::metrics() const {
  ensure_metrics();
  return telemetry::snapshot().with_label("comm", comm_id_);
}

telemetry::PhaseBreakdown Communicator::phase_breakdown() const {
  // Backends without an internal phase split: the whole job wall counts as
  // the add (aggregation) phase — the histogram sum is cumulative wall.
  ensure_metrics();
  return {m_wall_->sum(), 0.0};
}

void Communicator::set_trace(telemetry::Trace* trace,
                             telemetry::Trace::SpanId parent) {
  trace_parent_.store(parent, std::memory_order_relaxed);
  trace_.store(trace, std::memory_order_release);
}

ReduceStats Communicator::run_and_finish(
    std::span<const std::span<const float>> workers, std::span<float> out,
    ReduceOp op, std::string_view tenant) {
  validate(workers, out);
  ensure_metrics();

  telemetry::Trace* const tr = trace_.load(std::memory_order_acquire);
  telemetry::ScopedSpan span(tr, "allreduce",
                             trace_parent_.load(std::memory_order_relaxed));
  span.annotate("backend", std::string(name()));
  if (!tenant.empty()) span.annotate("tenant", std::string(tenant));

  // Single-substrate backends (one session / one aggregator / one tree)
  // are not internally synchronized; serialize their jobs so concurrent
  // allreduce calls — or deferred JobHandles waited from several threads —
  // cannot race the substrate.
  std::unique_lock<std::mutex> lock(run_mu_, std::defer_lock);
  if (!substrate_is_thread_safe()) lock.lock();

  const auto t0 = std::chrono::steady_clock::now();
  ReduceStats stats;
  try {
    stats = run(workers, out, tenant);
  } catch (...) {
    record_slo(tenant, elapsed_s(t0, std::chrono::steady_clock::now()),
               /*completed=*/false, /*failed_over=*/false);
    throw;
  }
  if (op == ReduceOp::kMean) {
    // Identical float op to the legacy trainer's host-side averaging.
    const float inv_w = 1.0f / static_cast<float>(workers.size());
    for (auto& v : out) v *= inv_w;
  }
  stats.wall_s = elapsed_s(t0, std::chrono::steady_clock::now());
  m_jobs_->inc();
  m_wall_->observe(stats.wall_s);
  record_slo(tenant, stats.wall_s, /*completed=*/true,
             stats.network.failover_retries > 0);
  return stats;
}

void Communicator::record_slo(std::string_view tenant, double wall_s,
                              bool completed, bool failed_over) {
  if (substrate_keeps_slo()) return;  // tenant_slo() reads the substrate's
  const std::string_view key = tenant.empty() ? "default" : tenant;
  std::lock_guard<std::mutex> lk(slo_mu_);
  auto it = slo_.find(key);
  if (it == slo_.end()) {
    it = slo_.emplace(std::string(key), cluster::SloAccumulator{}).first;
  }
  it->second.record(wall_s, completed, failed_over);
}

TenantSlo Communicator::tenant_slo(std::string_view tenant) const {
  const std::string_view key = tenant.empty() ? "default" : tenant;
  std::lock_guard<std::mutex> lk(slo_mu_);
  const auto it = slo_.find(key);
  return it == slo_.end() ? TenantSlo{} : it->second.snapshot();
}

ReduceStats Communicator::allreduce(const WorkerViews& workers,
                                    std::span<float> out, ReduceOp op,
                                    std::string_view tenant) {
  return run_and_finish(workers.views(), out, op, tenant);
}

JobHandle Communicator::submit(const WorkerViews& workers,
                               std::span<float> out, ReduceOp op,
                               std::string_view tenant) {
  // Deferred: single-substrate backends serialize jobs anyway, so the work
  // runs at wait() on the waiter's thread — no thread is spawned. The span
  // table is copied (W pointers), the gradients are not.
  std::vector<std::span<const float>> views(workers.views().begin(),
                                            workers.views().end());
  return wrap(std::async(
      std::launch::deferred,
      [this, views = std::move(views), out, op, t = std::string(tenant)] {
        return run_and_finish(views, out, op, t);
      }));
}

TenantHandle Communicator::tenant(std::string name) {
  return TenantHandle(*this, std::move(name));
}

// --- host ------------------------------------------------------------------

HostCommunicator::HostCommunicator(HostAlgorithm algo,
                                   core::AccumulatorConfig accumulator)
    : accumulator_(accumulator) {
  switch (algo) {
    case HostAlgorithm::kExact:
      owned_ = std::make_unique<switchml::ExactAggregator>();
      break;
    case HostAlgorithm::kFp32:
      owned_ = std::make_unique<switchml::FloatSumAggregator>();
      break;
    case HostAlgorithm::kPacked:
      owned_ = std::make_unique<switchml::PackedSumAggregator>(
          accumulator_.format);
      break;
    case HostAlgorithm::kSwitchMl:
      owned_ = std::make_unique<switchml::SwitchMlAggregator>();
      break;
    case HostAlgorithm::kFpisa:
      owned_ = std::make_unique<switchml::FpisaAggregator>(accumulator_);
      break;
  }
  agg_ = owned_.get();
}

ReduceStats HostCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  agg_->reduce(workers, out);
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  return stats;  // host path: no packet protocol
}

// --- switch ----------------------------------------------------------------

void SwitchCommunicator::ensure_session(int num_workers) {
  if (session_ && opts_.num_workers == num_workers) return;
  if (session_) {
    // Retire the old session's phase split so phase_breakdown() survives
    // recreation the same way total_ does for the packet counters.
    const telemetry::PhaseBreakdown p = session_->phase_breakdown();
    phase_base_.add_s += p.add_s;
    phase_base_.collect_s += p.collect_s;
  }
  opts_.num_workers = num_workers;
  session_ =
      std::make_unique<switchml::AggregationSession>(config_, opts_);
}

telemetry::PhaseBreakdown SwitchCommunicator::phase_breakdown() const {
  telemetry::PhaseBreakdown p = phase_base_;
  if (session_) {
    const telemetry::PhaseBreakdown cur = session_->phase_breakdown();
    p.add_s += cur.add_s;
    p.collect_s += cur.collect_s;
  }
  return p;
}

switchml::AggregationSession& SwitchCommunicator::session() {
  ensure_session(opts_.num_workers);
  return *session_;
}

ReduceStats SwitchCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  ensure_session(static_cast<int>(workers.size()));
  const switchml::SessionStats before = session_->stats();
  session_->reduce_into(workers, out);
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  // This job's protocol traffic: the session's cumulative delta. The
  // centralized operator-= covers every field — including the per-MAU
  // kernel op counters, which a hand-rolled field list used to drop.
  stats.network = session_->stats();
  stats.network -= before;
  total_ += stats.network;  // survives session recreation, unlike stats()
  return stats;
}

// --- cluster ---------------------------------------------------------------

namespace {

constexpr std::string_view kDefaultTenant = "default";

ReduceStats report_to_stats(const cluster::JobReport& report) {
  ReduceStats stats;
  stats.job_id = report.job_id;
  stats.network = report.stats;
  stats.per_shard = report.per_shard;
  return stats;
}

}  // namespace

TenantSlo ClusterCommunicator::tenant_slo(std::string_view tenant) const {
  return service_.tenant_slo(tenant.empty() ? kDefaultTenant : tenant);
}

telemetry::PhaseBreakdown ClusterCommunicator::phase_breakdown() const {
  const cluster::AggregationService::PhaseBreakdown p =
      service_.phase_breakdown();
  return {p.add_s, p.collect_s};
}

void ClusterCommunicator::set_trace(telemetry::Trace* trace,
                                    telemetry::Trace::SpanId parent) {
  Communicator::set_trace(trace, parent);
  service_.attach_trace(trace, parent);
}

ReduceStats ClusterCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view tenant) {
  const cluster::JobView job{tenant.empty() ? kDefaultTenant : tenant,
                             workers};
  return report_to_stats(service_.reduce(job, out));
}

JobHandle ClusterCommunicator::submit(const WorkerViews& workers,
                                      std::span<float> out, ReduceOp op,
                                      std::string_view tenant) {
  // Shape errors surface here, like every other backend's submit — not at
  // wait(). The job itself runs on the service's bounded job-runner pool;
  // the deferred wrapper only collects the report, applies the kMean scale
  // and stamps the wall clock at wait() time.
  validate(workers.views(), out);
  const cluster::JobView job{tenant.empty() ? kDefaultTenant : tenant,
                             workers.views()};
  const std::size_t w = workers.count();
  const auto t0 = std::chrono::steady_clock::now();
  std::future<cluster::JobReport> inner = service_.submit(job, out);
  return wrap(std::async(
      std::launch::deferred,
      [inner = std::move(inner), out, op, w, t0]() mutable {
        const cluster::JobReport report = inner.get();
        if (op == ReduceOp::kMean && w > 0) {
          const float inv_w = 1.0f / static_cast<float>(w);
          for (auto& v : out) v *= inv_w;
        }
        ReduceStats stats = report_to_stats(report);
        stats.wall_s = elapsed_s(t0, std::chrono::steady_clock::now());
        return stats;
      }));
}

// --- tree ------------------------------------------------------------------

ReduceStats TreeCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  tree_.reduce_into(workers, out);
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  // The tree models its fabric with EventSim links rather than a lossy
  // packet protocol; surface the modeled packet count.
  stats.network.packets_sent = tree_.timing().packets;
  total_ += stats.network;
  return stats;
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<Communicator> make_communicator(
    const CommunicatorOptions& opts) {
  switch (opts.backend) {
    case Backend::kHost:
      return std::make_unique<HostCommunicator>(opts.host_algorithm,
                                                opts.accumulator);
    case Backend::kSwitch:
      return std::make_unique<SwitchCommunicator>(opts.switch_config,
                                                  opts.session);
    case Backend::kCluster:
      return std::make_unique<ClusterCommunicator>(opts.cluster);
    case Backend::kTree:
      return std::make_unique<TreeCommunicator>(opts.hierarchy);
  }
  throw std::invalid_argument("collective: unknown backend");
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kHost:
      return "host";
    case Backend::kSwitch:
      return "switch";
    case Backend::kCluster:
      return "cluster";
    case Backend::kTree:
      return "tree";
  }
  return "?";
}

}  // namespace fpisa::collective
