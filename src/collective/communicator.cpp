#include "collective/communicator.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <stdexcept>

namespace fpisa::collective {
namespace {

double elapsed_s(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// kMean divides by the job's SURVIVOR count: workers the backend declared
/// dead (and degraded around) contributed nothing, so dividing by the full
/// W would bias the mean toward zero. With no deaths this is exactly the
/// legacy 1/W — bit-identical float op.
float mean_scale(std::size_t num_workers, std::uint32_t dead_workers) {
  const int dead = std::popcount(dead_workers);
  const std::size_t survivors =
      num_workers > static_cast<std::size_t>(dead)
          ? num_workers - static_cast<std::size_t>(dead)
          : num_workers;
  return 1.0f / static_cast<float>(survivors);
}

}  // namespace

void Communicator::validate(std::span<const std::span<const float>> workers,
                            std::span<float> out) {
  if (workers.empty()) {
    throw std::invalid_argument("collective: allreduce with no workers");
  }
  const std::size_t n = workers.front().size();
  for (const auto w : workers) {
    if (w.size() != n) {
      throw std::invalid_argument(
          "collective: worker views differ in length");
    }
  }
  if (out.size() != n) {
    throw std::invalid_argument("collective: out span length mismatch");
  }
}

void Communicator::ensure_metrics() const {
  std::call_once(metrics_once_, [this] {
    static std::atomic<std::uint64_t> next_id{0};
    comm_id_ = std::to_string(next_id.fetch_add(1, std::memory_order_relaxed));
    auto& reg = telemetry::registry();
    const telemetry::Labels labels{{"comm", comm_id_},
                                   {"backend", std::string(name())}};
    m_jobs_ = &reg.counter("collective_allreduces_total", labels);
    m_wall_ = &reg.histogram("collective_allreduce_seconds", labels,
                             telemetry::MetricsRegistry::time_buckets());
  });
}

telemetry::Snapshot Communicator::metrics() const {
  ensure_metrics();
  return telemetry::snapshot().with_label("comm", comm_id_);
}

telemetry::PhaseBreakdown Communicator::phase_breakdown() const {
  // Backends without an internal phase split: the whole job wall counts as
  // the add (aggregation) phase — the histogram sum is cumulative wall.
  ensure_metrics();
  return {m_wall_->sum(), 0.0};
}

void Communicator::set_trace(telemetry::Trace* trace,
                             telemetry::Trace::SpanId parent) {
  trace_parent_.store(parent, std::memory_order_relaxed);
  trace_.store(trace, std::memory_order_release);
}

// Conditionally locks run_mu_ (single-substrate backends only) through a
// deferred UniqueLock — a flow the static analysis cannot follow; the
// rank checker still covers it at runtime in Debug.
ReduceStats Communicator::run_and_finish(
    std::span<const std::span<const float>> workers, std::span<float> out,
    ReduceOp op, std::string_view tenant) FPISA_NO_THREAD_SAFETY_ANALYSIS {
  validate(workers, out);
  ensure_metrics();

  telemetry::Trace* const tr = trace_.load(std::memory_order_acquire);
  telemetry::ScopedSpan span(tr, "allreduce",
                             trace_parent_.load(std::memory_order_relaxed));
  span.annotate("backend", std::string(name()));
  if (!tenant.empty()) span.annotate("tenant", std::string(tenant));

  // Single-substrate backends (one session / one aggregator / one tree)
  // are not internally synchronized; serialize their jobs so concurrent
  // allreduce calls — or deferred JobHandles waited from several threads —
  // cannot race the substrate.
  util::UniqueLock lock(run_mu_, util::kDeferLock);
  if (!substrate_is_thread_safe()) lock.lock();

  const auto t0 = std::chrono::steady_clock::now();
  ReduceStats stats;
  try {
    stats = run(workers, out, tenant);
  } catch (...) {
    record_slo(tenant, elapsed_s(t0, std::chrono::steady_clock::now()),
               /*completed=*/false, /*failed_over=*/false);
    throw;
  }
  if (op == ReduceOp::kMean) {
    // Identical float op to the legacy trainer's host-side averaging (the
    // scale degrades to 1/survivors only when a worker was declared dead).
    const float inv_w = mean_scale(workers.size(), stats.network.dead_workers);
    for (auto& v : out) v *= inv_w;
  }
  stats.wall_s = elapsed_s(t0, std::chrono::steady_clock::now());
  m_jobs_->inc();
  m_wall_->observe(stats.wall_s);
  record_slo(tenant, stats.wall_s, /*completed=*/true,
             stats.network.failover_retries > 0);
  return stats;
}

void Communicator::record_slo(std::string_view tenant, double wall_s,
                              bool completed, bool failed_over) {
  if (substrate_keeps_slo()) return;  // tenant_slo() reads the substrate's
  const std::string_view key = tenant.empty() ? "default" : tenant;
  util::LockGuard lk(slo_mu_);
  auto it = slo_.find(key);
  if (it == slo_.end()) {
    it = slo_.emplace(std::string(key), cluster::SloAccumulator{}).first;
  }
  it->second.record(wall_s, completed, failed_over);
}

TenantSlo Communicator::tenant_slo(std::string_view tenant) const {
  const std::string_view key = tenant.empty() ? "default" : tenant;
  util::LockGuard lk(slo_mu_);
  const auto it = slo_.find(key);
  return it == slo_.end() ? TenantSlo{} : it->second.snapshot();
}

ReduceStats Communicator::allreduce(const WorkerViews& workers,
                                    std::span<float> out, ReduceOp op,
                                    std::string_view tenant) {
  return run_and_finish(workers.views(), out, op, tenant);
}

JobHandle Communicator::submit(const WorkerViews& workers,
                               std::span<float> out, ReduceOp op,
                               std::string_view tenant) {
  // Deferred: single-substrate backends serialize jobs anyway, so the work
  // runs at wait() on the waiter's thread — no thread is spawned. The span
  // table is copied (W pointers), the gradients are not.
  std::vector<std::span<const float>> views(workers.views().begin(),
                                            workers.views().end());
  return wrap(std::async(
      std::launch::deferred,
      [this, views = std::move(views), out, op, t = std::string(tenant)] {
        return run_and_finish(views, out, op, t);
      }));
}

TenantHandle Communicator::tenant(std::string name) {
  return TenantHandle(*this, std::move(name));
}

// --- host ------------------------------------------------------------------

HostCommunicator::HostCommunicator(HostAlgorithm algo,
                                   core::AccumulatorConfig accumulator)
    : accumulator_(accumulator) {
  switch (algo) {
    case HostAlgorithm::kExact:
      owned_ = std::make_unique<switchml::ExactAggregator>();
      break;
    case HostAlgorithm::kFp32:
      owned_ = std::make_unique<switchml::FloatSumAggregator>();
      break;
    case HostAlgorithm::kPacked:
      owned_ = std::make_unique<switchml::PackedSumAggregator>(
          accumulator_.format);
      break;
    case HostAlgorithm::kSwitchMl:
      owned_ = std::make_unique<switchml::SwitchMlAggregator>();
      break;
    case HostAlgorithm::kFpisa:
      owned_ = std::make_unique<switchml::FpisaAggregator>(accumulator_);
      break;
  }
  agg_ = owned_.get();
}

ReduceStats HostCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  // Host backends have no packet wave structure: the whole reduce is one
  // "wave", so only a worker dead from wave 0 is ever missing. kDegrade
  // drops the dead view and sums the survivors exactly; the wire-level
  // knobs (corruption/reorder/dup/wipe) have nothing to act on here.
  if (fault_.enabled && fault_.dead_worker >= 0 &&
      static_cast<std::size_t>(fault_.dead_worker) < workers.size() &&
      fault_.dead_worker_wave == 0) {
    if (fault_.dead_worker_policy == fault::DeadWorkerPolicy::kAbort) {
      throw fault::WorkerDeadError(fault_.dead_worker, 0);
    }
    std::vector<std::span<const float>> survivors;
    survivors.reserve(workers.size() - 1);
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (static_cast<int>(w) != fault_.dead_worker) {
        survivors.push_back(workers[w]);
      }
    }
    agg_->reduce(survivors, out);
    stats.network.dead_workers =
        1u << static_cast<unsigned>(fault_.dead_worker);
    ++stats.network.faults.workers_declared_dead;
    return stats;
  }
  agg_->reduce(workers, out);
  return stats;  // host path: no packet protocol
}

// --- switch ----------------------------------------------------------------

void SwitchCommunicator::ensure_session(int num_workers) {
  if (session_ && opts_.num_workers == num_workers) return;
  if (session_) {
    // Retire the old session's phase split so phase_breakdown() survives
    // recreation the same way total_ does for the packet counters.
    const telemetry::PhaseBreakdown p = session_->phase_breakdown();
    phase_base_.add_s += p.add_s;
    phase_base_.collect_s += p.collect_s;
  }
  opts_.num_workers = num_workers;
  session_ =
      std::make_unique<switchml::AggregationSession>(config_, opts_);
}

telemetry::PhaseBreakdown SwitchCommunicator::phase_breakdown() const {
  telemetry::PhaseBreakdown p = phase_base_;
  if (session_) {
    const telemetry::PhaseBreakdown cur = session_->phase_breakdown();
    p.add_s += cur.add_s;
    p.collect_s += cur.collect_s;
  }
  return p;
}

switchml::AggregationSession& SwitchCommunicator::session() {
  ensure_session(opts_.num_workers);
  return *session_;
}

ReduceStats SwitchCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  ensure_session(static_cast<int>(workers.size()));
  const switchml::SessionStats before = session_->stats();
  session_->reduce_into(workers, out);
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  // This job's protocol traffic: the session's cumulative delta. The
  // centralized operator-= covers every field — including the per-MAU
  // kernel op counters, which a hand-rolled field list used to drop.
  stats.network = session_->stats();
  stats.network -= before;
  // dead_workers is a monotone mask, not a count, so the delta would clear
  // it on every job after the first death: the per-job view is the
  // session's current mask (the injected schedule is static per session, so
  // a worker dead in an earlier job is dead in this one too).
  stats.network.dead_workers = session_->stats().dead_workers;
  total_ += stats.network;  // survives session recreation, unlike stats()
  return stats;
}

// --- cluster ---------------------------------------------------------------

namespace {

constexpr std::string_view kDefaultTenant = "default";

ReduceStats report_to_stats(const cluster::JobReport& report) {
  ReduceStats stats;
  stats.job_id = report.job_id;
  stats.network = report.stats;
  stats.per_shard = report.per_shard;
  return stats;
}

}  // namespace

TenantSlo ClusterCommunicator::tenant_slo(std::string_view tenant) const {
  return service_.tenant_slo(tenant.empty() ? kDefaultTenant : tenant);
}

telemetry::PhaseBreakdown ClusterCommunicator::phase_breakdown() const {
  const cluster::AggregationService::PhaseBreakdown p =
      service_.phase_breakdown();
  return {p.add_s, p.collect_s};
}

void ClusterCommunicator::set_trace(telemetry::Trace* trace,
                                    telemetry::Trace::SpanId parent) {
  Communicator::set_trace(trace, parent);
  service_.attach_trace(trace, parent);
}

ReduceStats ClusterCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view tenant) {
  const cluster::JobView job{tenant.empty() ? kDefaultTenant : tenant,
                             workers};
  return report_to_stats(service_.reduce(job, out));
}

JobHandle ClusterCommunicator::submit(const WorkerViews& workers,
                                      std::span<float> out, ReduceOp op,
                                      std::string_view tenant) {
  // Shape errors surface here, like every other backend's submit — not at
  // wait(). The job itself runs on the service's bounded job-runner pool;
  // the deferred wrapper only collects the report, applies the kMean scale
  // and stamps the wall clock at wait() time.
  validate(workers.views(), out);
  const cluster::JobView job{tenant.empty() ? kDefaultTenant : tenant,
                             workers.views()};
  const std::size_t w = workers.count();
  const auto t0 = std::chrono::steady_clock::now();
  std::future<cluster::JobReport> inner = service_.submit(job, out);
  return wrap(std::async(
      std::launch::deferred,
      [inner = std::move(inner), out, op, w, t0]() mutable {
        const cluster::JobReport report = inner.get();
        if (op == ReduceOp::kMean && w > 0) {
          const float inv_w = mean_scale(w, report.stats.dead_workers);
          for (auto& v : out) v *= inv_w;
        }
        ReduceStats stats = report_to_stats(report);
        stats.wall_s = elapsed_s(t0, std::chrono::steady_clock::now());
        return stats;
      }));
}

// --- tree ------------------------------------------------------------------

ReduceStats TreeCommunicator::run(
    std::span<const std::span<const float>> workers, std::span<float> out,
    std::string_view /*tenant*/) {
  ReduceStats stats;
  stats.job_id = next_job_id_++;
  if (fault_.enabled && fault_.dead_worker >= 0 &&
      static_cast<std::size_t>(fault_.dead_worker) < workers.size() &&
      fault_.dead_worker_wave == 0) {
    if (fault_.dead_worker_policy == fault::DeadWorkerPolicy::kAbort) {
      throw fault::WorkerDeadError(fault_.dead_worker, 0);
    }
    // The tree's shape is fixed (worker count must equal the hierarchy's
    // leaves), so the dead leaf contributes zeros instead of being dropped.
    const std::size_t n = workers.empty() ? 0 : workers.front().size();
    std::vector<float> zeros(n, 0.0f);
    std::vector<std::span<const float>> views(workers.begin(), workers.end());
    views[static_cast<std::size_t>(fault_.dead_worker)] = zeros;
    tree_.reduce_into(views, out);
    stats.network.dead_workers =
        1u << static_cast<unsigned>(fault_.dead_worker);
    ++stats.network.faults.workers_declared_dead;
    stats.network.packets_sent = tree_.timing().packets;
    total_ += stats.network;
    return stats;
  }
  tree_.reduce_into(workers, out);
  // The tree models its fabric with EventSim links rather than a lossy
  // packet protocol; surface the modeled packet count.
  stats.network.packets_sent = tree_.timing().packets;
  total_ += stats.network;
  return stats;
}

// --- factory ---------------------------------------------------------------

std::unique_ptr<Communicator> make_communicator(
    const CommunicatorOptions& opts) {
  // One fault surface: when enabled it is copied into the wire backends'
  // own options (so the substrate injects and recovers) and installed on
  // the communicator (worker-death handling, survivor-aware kMean). When
  // disabled, any fault options already present on session/cluster are
  // left exactly as the caller set them.
  switch (opts.backend) {
    case Backend::kHost: {
      auto c = std::make_unique<HostCommunicator>(opts.host_algorithm,
                                                  opts.accumulator);
      c->set_fault_options(opts.fault);
      return c;
    }
    case Backend::kSwitch: {
      switchml::SessionOptions session = opts.session;
      if (opts.fault.enabled) session.fault = opts.fault;
      auto c = std::make_unique<SwitchCommunicator>(opts.switch_config,
                                                    session);
      c->set_fault_options(opts.fault);
      return c;
    }
    case Backend::kCluster: {
      cluster::ClusterOptions cl = opts.cluster;
      if (opts.fault.enabled) cl.fault = opts.fault;
      // Same idiom as the fault surface: the top-level QoS options win when
      // enabled; otherwise whatever the caller put on cluster.qos stands.
      if (opts.qos.enabled) cl.qos = opts.qos;
      auto c = std::make_unique<ClusterCommunicator>(std::move(cl));
      c->set_fault_options(opts.fault);
      return c;
    }
    case Backend::kTree: {
      auto c = std::make_unique<TreeCommunicator>(opts.hierarchy);
      c->set_fault_options(opts.fault);
      return c;
    }
  }
  throw std::invalid_argument("collective: unknown backend");
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kHost:
      return "host";
    case Backend::kSwitch:
      return "switch";
    case Backend::kCluster:
      return "cluster";
    case Backend::kTree:
      return "tree";
  }
  return "?";
}

}  // namespace fpisa::collective
