// Unified zero-copy collective API: ONE communicator-style interface (the
// shape SwitchML exposed to training frameworks, NSDI '21 §5) over every
// aggregation substrate this repo has grown — host reference aggregators,
// a single simulated switch, the sharded multi-tenant rack service, and
// the ToR→spine tree. Frameworks call
//
//   comm.allreduce(workers, out, ReduceOp::kSum);
//
// and never learn which fabric ran it; gradients travel as *views*
// (span-of-spans into caller-owned storage) from submission to result, so
// no backend ever deep-copies a worker vector.
//
// Every backend is differentially tested to be bit-identical — results AND
// SessionStats — to its legacy entry point under identical seeds
// (tests/test_collective_api.cpp); the legacy entry points remain as thin
// adapters.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

#include "cluster/aggregation_service.h"
#include "cluster/hierarchy.h"
#include "cluster/slo.h"
#include "qos/qos.h"
#include "switchml/aggregator.h"
#include "switchml/session.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace fpisa::collective {

/// Per-tenant SLO snapshot, uniform across backends (jobs completed /
/// failed / completed-only-via-failover, p50/p99 job wall time).
using TenantSlo = cluster::TenantSlo;

/// Zero-copy view of W equal-length worker gradient vectors: a span of
/// spans. Constructible straight from span-of-spans, or adapted from the
/// legacy vector<vector<float>> shape — the adapter materializes the span
/// *table* (W pointers + lengths), never the gradients.
class WorkerViews {
 public:
  WorkerViews(std::span<const std::span<const float>> views)  // NOLINT
      : views_(views) {}
  WorkerViews(std::span<const std::vector<float>> workers)  // NOLINT
      : storage_(workers.begin(), workers.end()), views_(storage_) {}
  WorkerViews(const std::vector<std::vector<float>>& workers)  // NOLINT
      : WorkerViews(std::span<const std::vector<float>>(workers)) {}

  // Copying would leave views_ pointing into the source's span table; the
  // type is a per-call view, so pass it by reference instead.
  WorkerViews(const WorkerViews&) = delete;
  WorkerViews& operator=(const WorkerViews&) = delete;

  std::span<const std::span<const float>> views() const { return views_; }
  std::size_t count() const { return views_.size(); }
  std::size_t length() const {
    return views_.empty() ? 0 : views_.front().size();
  }

 private:
  std::vector<std::span<const float>> storage_;  ///< adapter path only
  std::span<const std::span<const float>> views_;
};

enum class ReduceOp {
  kSum,   ///< element-wise sum (what the switch computes)
  kMean,  ///< sum scaled by 1/W on the host (gradient averaging)
};

/// Per-job completion stats, uniform across backends. Backends without a
/// packet protocol (host) report zero network counters; the cluster
/// backend also breaks the job down per shard.
struct ReduceStats {
  std::uint64_t job_id = 0;
  switchml::SessionStats network;
  std::vector<switchml::SessionStats> per_shard;
  double wall_s = 0;
};

/// Handle to an asynchronously submitted job. The gradient buffers viewed
/// by the job and the out span stay caller-owned: keep them alive until
/// wait() returns. wait() rethrows any backend error (e.g. retransmit
/// exhaustion).
class JobHandle {
 public:
  JobHandle() = default;
  bool valid() const { return fut_.valid(); }
  ReduceStats wait() { return fut_.get(); }

 private:
  friend class Communicator;
  explicit JobHandle(std::future<ReduceStats> fut) : fut_(std::move(fut)) {}
  std::future<ReduceStats> fut_;
};

class TenantHandle;

/// The unified collective interface. Synchronous `allreduce` writes the
/// reduction of `workers` into `out` (out.size() == workers.length());
/// `submit` is the asynchronous flavor; `tenant` returns a persistent
/// per-tenant handle (multi-tenant backends key accounting and fabric
/// overrides off the tenant name, others ignore it).
class Communicator {
 public:
  virtual ~Communicator() = default;
  virtual std::string_view name() const = 0;

  ReduceStats allreduce(const WorkerViews& workers, std::span<float> out,
                        ReduceOp op = ReduceOp::kSum,
                        std::string_view tenant = {});
  virtual JobHandle submit(const WorkerViews& workers, std::span<float> out,
                           ReduceOp op = ReduceOp::kSum,
                           std::string_view tenant = {});
  TenantHandle tenant(std::string name);

  /// Cumulative packet-protocol stats across every completed job (zeros
  /// for backends without a packet protocol).
  virtual switchml::SessionStats total_stats() const = 0;

  /// Per-tenant SLO snapshot. The base class accounts every job that runs
  /// through it (any backend); substrate-native multi-tenant backends (the
  /// cluster service) override this to report the substrate's own books,
  /// which also cover jobs submitted around the communicator.
  virtual TenantSlo tenant_slo(std::string_view tenant = {}) const
      FPISA_EXCLUDES(slo_mu_);

  // --- uniform observability surface (identical across all backends) ---

  /// This communicator's slice of the process-wide registry: every sample
  /// carrying this instance's "comm" label (collective_allreduces_total,
  /// collective_allreduce_seconds; substrate series keep their own
  /// sw=/sess=/svc=/tree= instance labels and are read via
  /// telemetry::snapshot() directly).
  telemetry::Snapshot metrics() const;

  /// Add/collect phase wall-time split, cumulative across jobs — the same
  /// currency cluster::AggregationService::phase_breakdown() has exposed
  /// since PR 3, now uniform across backends. Backends without an internal
  /// phase split (host) attribute the whole job wall to the add phase.
  /// Advances only while telemetry::enabled().
  virtual telemetry::PhaseBreakdown phase_breakdown() const;

  /// Opt-in span tracing: every subsequent allreduce/submit records an
  /// "allreduce" span (annotated backend/tenant) under `parent`. The
  /// cluster backend additionally attaches the trace to its service, so
  /// jobs unfold into the full submit → partition → shard waves → merge
  /// tree. Caller owns the trace; pass nullptr to detach (not while jobs
  /// are in flight).
  virtual void set_trace(telemetry::Trace* trace,
                         telemetry::Trace::SpanId parent =
                             telemetry::Trace::kNone);
  telemetry::Trace* trace() const {
    return trace_.load(std::memory_order_acquire);
  }

  /// Unified fault surface: wire-level knobs (corruption / reorder /
  /// duplicates / wipe) take effect on backends with a packet wire — the
  /// factory copies them into the session/cluster options before
  /// construction. Worker death applies to EVERY backend: the wire
  /// backends detect it at the wave deadline; host/tree have no wire, so a
  /// worker dead from wave 0 simply never contributes (kAbort throws
  /// fault::WorkerDeadError, kDegrade reduces over the survivors and
  /// reports the mask in ReduceStats::network.dead_workers). ReduceOp::kMean
  /// always averages over the *survivors* of the job.
  void set_fault_options(const fault::FaultOptions& fault) { fault_ = fault; }
  const fault::FaultOptions& fault_options() const { return fault_; }

  /// Admission/QoS configuration in effect on this communicator's
  /// substrate, or null when the backend has no admission plane (host /
  /// switch / tree run the caller's jobs unconditionally). On the cluster
  /// backend, submissions can throw qos::AdmissionRejectedError (or block
  /// up to the tenant's deadline under kBlock) once
  /// CommunicatorOptions::qos.enabled is set; per-tenant SLO books then
  /// carry a distinct jobs_rejected entry.
  virtual const qos::QosOptions* qos_options() const { return nullptr; }

 protected:
  /// Backend hook: sum `workers` into `out` and report the job's stats.
  virtual ReduceStats run(std::span<const std::span<const float>> workers,
                          std::span<float> out, std::string_view tenant) = 0;

  /// Backends whose substrate is internally thread-safe (the cluster
  /// service) override this to let jobs run concurrently. All others get
  /// their run() calls serialized by the base class, so allreduce — and
  /// wait()ing deferred JobHandles — is safe from multiple threads.
  virtual bool substrate_is_thread_safe() const { return false; }

  /// Backends whose substrate keeps its own per-tenant SLO books (the
  /// cluster service) override to true: the base class then skips its own
  /// bookkeeping entirely — a shadow copy here could never be read (the
  /// backend overrides tenant_slo()) and would miss substrate-side jobs.
  virtual bool substrate_keeps_slo() const { return false; }

  /// Shared driver: validation + (serialized) run() + ReduceOp::kMean
  /// scaling + wall clock. allreduce and the default submit both land here.
  ReduceStats run_and_finish(std::span<const std::span<const float>> workers,
                             std::span<float> out, ReduceOp op,
                             std::string_view tenant);
  /// Shape checks shared by every entry point; throws std::invalid_argument.
  static void validate(std::span<const std::span<const float>> workers,
                       std::span<float> out);
  static JobHandle wrap(std::future<ReduceStats> fut) {
    return JobHandle(std::move(fut));
  }
  /// SLO bookkeeping shared by every backend (run_and_finish calls it on
  /// both outcomes). Empty tenant keys under "default", matching the
  /// cluster backend's naming.
  void record_slo(std::string_view tenant, double wall_s, bool completed,
                  bool failed_over) FPISA_EXCLUDES(slo_mu_);

  fault::FaultOptions fault_;  ///< see set_fault_options()

 private:
  /// Lazy one-shot registration (name() is virtual, so this cannot run in
  /// the base constructor). Safe to call concurrently and from const paths.
  void ensure_metrics() const;

  /// Serializes run() for single-substrate backends. Outermost rank in the
  /// lock table: a job may take every service/telemetry lock beneath it.
  util::OrderedMutex run_mu_{util::lock_rank::kCommRun};
  mutable util::OrderedMutex slo_mu_{util::lock_rank::kCommSlo};
  std::map<std::string, cluster::SloAccumulator, std::less<>> slo_
      FPISA_GUARDED_BY(slo_mu_);

  mutable std::once_flag metrics_once_;
  mutable std::string comm_id_;  ///< "comm" instance label value
  mutable telemetry::Counter* m_jobs_ = nullptr;
  mutable telemetry::Histogram* m_wall_ = nullptr;
  std::atomic<telemetry::Trace*> trace_{nullptr};
  std::atomic<telemetry::Trace::SpanId> trace_parent_{telemetry::Trace::kNone};
};

/// Persistent per-tenant handle: a Communicator bound to one tenant name,
/// so frameworks can hold one handle per training job. Valid as long as
/// the communicator it came from.
class TenantHandle {
 public:
  TenantHandle(Communicator& comm, std::string name)
      : comm_(&comm), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  ReduceStats allreduce(const WorkerViews& workers, std::span<float> out,
                        ReduceOp op = ReduceOp::kSum) {
    return comm_->allreduce(workers, out, op, name_);
  }
  JobHandle submit(const WorkerViews& workers, std::span<float> out,
                   ReduceOp op = ReduceOp::kSum) {
    return comm_->submit(workers, out, op, name_);
  }

 private:
  Communicator* comm_;
  std::string name_;
};

// --- backends --------------------------------------------------------------

/// Which host reference aggregator HostCommunicator wraps.
enum class HostAlgorithm {
  kExact,     ///< double-precision reference
  kFp32,      ///< host FP32 summation (paper's "default addition")
  kPacked,    ///< packed-format host summation (e.g. FP16 pipelines)
  kSwitchMl,  ///< SwitchML int32+scaling-factor protocol
  kFpisa,     ///< FPISA decomposed accumulation (core reference)
};

/// Host backend: the aggregator zoo behind the communicator interface.
/// Either owns an aggregator picked by HostAlgorithm, or wraps a
/// caller-owned switchml::GradientAggregator (the adapter the trainer's
/// legacy constructor rides on).
class HostCommunicator final : public Communicator {
 public:
  explicit HostCommunicator(HostAlgorithm algo = HostAlgorithm::kFpisa,
                            core::AccumulatorConfig accumulator = {});
  /// Non-owning: `agg` must outlive this communicator.
  explicit HostCommunicator(switchml::GradientAggregator& agg) : agg_(&agg) {}

  std::string_view name() const override { return agg_->name(); }
  switchml::SessionStats total_stats() const override { return {}; }
  switchml::GradientAggregator& aggregator() { return *agg_; }

 protected:
  ReduceStats run(std::span<const std::span<const float>> workers,
                  std::span<float> out, std::string_view tenant) override;

 private:
  core::AccumulatorConfig accumulator_;  ///< stable home for format refs
  std::unique_ptr<switchml::GradientAggregator> owned_;
  switchml::GradientAggregator* agg_ = nullptr;
  std::uint64_t next_job_id_ = 0;
};

/// Single-switch backend: the SwitchML-style packet protocol over one
/// simulated FpisaSwitch. The session is created for the first job's
/// worker count and recreated (fresh loss stream and stats, same options)
/// only when the worker count changes.
class SwitchCommunicator final : public Communicator {
 public:
  SwitchCommunicator(pisa::SwitchConfig config, switchml::SessionOptions opts)
      : config_(config), opts_(opts) {}

  std::string_view name() const override { return "switch"; }
  switchml::SessionStats total_stats() const override { return total_; }
  /// Session phase split, accumulated across session recreations.
  telemetry::PhaseBreakdown phase_breakdown() const override;
  /// The underlying session (created on first use).
  switchml::AggregationSession& session();

 protected:
  ReduceStats run(std::span<const std::span<const float>> workers,
                  std::span<float> out, std::string_view tenant) override;

 private:
  void ensure_session(int num_workers);
  pisa::SwitchConfig config_;
  switchml::SessionOptions opts_;
  std::unique_ptr<switchml::AggregationSession> session_;
  switchml::SessionStats total_{};  ///< survives session recreation
  telemetry::PhaseBreakdown phase_base_{};  ///< retired sessions' phases
  std::uint64_t next_job_id_ = 0;
};

/// Rack-scale backend: the sharded multi-tenant AggregationService. Fully
/// view-based — a job's gradients are never copied between submission and
/// result — and submit() rides the service's bounded job-runner pool.
class ClusterCommunicator final : public Communicator {
 public:
  explicit ClusterCommunicator(cluster::ClusterOptions opts)
      : service_(std::move(opts)) {}

  std::string_view name() const override { return "cluster"; }
  switchml::SessionStats total_stats() const override {
    return service_.total_stats();
  }
  /// Substrate-native books: covers submit()ed jobs and failover retries.
  TenantSlo tenant_slo(std::string_view tenant = {}) const override;
  /// View over the service's per-shard phase histograms (the legacy
  /// service_.phase_breakdown(), re-shaped into the uniform currency).
  telemetry::PhaseBreakdown phase_breakdown() const override;
  /// Also attaches the trace to the service, so every job records the full
  /// submit → partition → shard waves → merge (+failover) span tree.
  void set_trace(telemetry::Trace* trace,
                 telemetry::Trace::SpanId parent =
                     telemetry::Trace::kNone) override;
  JobHandle submit(const WorkerViews& workers, std::span<float> out,
                   ReduceOp op = ReduceOp::kSum,
                   std::string_view tenant = {}) override;
  /// The service's live QoS surface (enabled or not — callers check
  /// .enabled). Admission throws/blocks per tenant config on this backend.
  const qos::QosOptions* qos_options() const override {
    return &service_.options().qos;
  }
  cluster::AggregationService& service() { return service_; }

 protected:
  ReduceStats run(std::span<const std::span<const float>> workers,
                  std::span<float> out, std::string_view tenant) override;
  bool substrate_is_thread_safe() const override { return true; }
  bool substrate_keeps_slo() const override { return true; }

 private:
  cluster::AggregationService service_;
};

/// Hierarchy backend: the two-level ToR→spine tree. Worker count must
/// equal the tree's total_workers(). Network stats report the modeled
/// packet count of the most recent timing pass.
class TreeCommunicator final : public Communicator {
 public:
  explicit TreeCommunicator(cluster::HierarchyOptions opts) : tree_(opts) {}

  std::string_view name() const override { return "tree"; }
  switchml::SessionStats total_stats() const override { return total_; }
  /// Per-level fan-in split: leaf level → add, spine level → collect.
  telemetry::PhaseBreakdown phase_breakdown() const override {
    return tree_.phase_breakdown();
  }
  cluster::HierarchicalAggregator& tree() { return tree_; }

 protected:
  ReduceStats run(std::span<const std::span<const float>> workers,
                  std::span<float> out, std::string_view tenant) override;

 private:
  cluster::HierarchicalAggregator tree_;
  switchml::SessionStats total_{};
  std::uint64_t next_job_id_ = 0;
};

// --- factory ---------------------------------------------------------------

enum class Backend { kHost, kSwitch, kCluster, kTree };

struct CommunicatorOptions {
  Backend backend = Backend::kHost;
  // kHost
  HostAlgorithm host_algorithm = HostAlgorithm::kFpisa;
  core::AccumulatorConfig accumulator;  ///< kFpisa/kPacked configuration
  // kSwitch
  pisa::SwitchConfig switch_config;
  switchml::SessionOptions session;
  // kCluster
  cluster::ClusterOptions cluster;
  // kTree
  cluster::HierarchyOptions hierarchy;
  /// One fault surface for every backend: when enabled, the factory copies
  /// it into session.fault / cluster.fault (wire backends) and installs it
  /// on the communicator (worker-death handling + survivor-aware kMean).
  fault::FaultOptions fault;
  /// One admission/QoS surface: when enabled, the factory copies it into
  /// cluster.qos (the only backend with a job queue to schedule). Other
  /// backends ignore it — their qos_options() stays null.
  qos::QosOptions qos;
};

std::unique_ptr<Communicator> make_communicator(
    const CommunicatorOptions& opts = {});

const char* backend_name(Backend backend);

}  // namespace fpisa::collective
