// Data-parallel training over the unified collective API — the paper's §5
// testbed in miniature. Each of W simulated workers computes gradients on
// its shard of the batch; a collective::Communicator (host aggregator zoo,
// single switch, rack-scale cluster service, or ToR→spine tree — all
// interchangeable) allreduces them with ReduceOp::kMean; SGD applies the
// result. A legacy constructor still accepts a bare GradientAggregator and
// wraps it in a host-backend communicator.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "collective/communicator.h"
#include "core/float_format.h"
#include "ml/data.h"
#include "ml/nn.h"
#include "switchml/aggregator.h"

namespace fpisa::ml {

struct TrainerOptions {
  int workers = 8;
  int batch_per_worker = 2;  ///< global batch = workers * batch_per_worker
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Emulate a reduced-precision gradient exchange: gradients are encoded
  /// into this format before aggregation (apex-style mixed precision).
  std::optional<core::FloatFormat> grad_format;
  std::uint64_t shuffle_seed = 99;
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(Network& model, const Dataset& data,
                      collective::Communicator& comm, TrainerOptions opts);
  /// Legacy adapter: trains through `agg` by wrapping it in a host-backend
  /// communicator (agg must outlive the trainer).
  DataParallelTrainer(Network& model, const Dataset& data,
                      switchml::GradientAggregator& agg, TrainerOptions opts);

  /// Runs one epoch over the training set; returns mean loss.
  /// `on_worker_grads`, if set, receives every step's per-worker gradient
  /// vectors (the Fig 7/8 capture hook).
  using GradHook =
      std::function<void(const std::vector<std::vector<float>>&)>;
  float train_epoch(const GradHook& on_worker_grads = nullptr);

  /// Test-set top-1 accuracy in [0,1].
  float evaluate();

  int steps_run() const { return steps_; }

 private:
  Network& model_;
  const Dataset& data_;
  std::unique_ptr<collective::Communicator> owned_comm_;  ///< legacy ctor
  collective::Communicator& comm_;
  TrainerOptions opts_;
  std::vector<int> order_;
  util::Rng shuffle_rng_;
  std::vector<float> mean_grad_;  ///< reused allreduce output buffer
  int steps_ = 0;
};

/// Per-element max/min |gradient| ratio across workers (Fig 7). Elements
/// where any worker's gradient is exactly zero are skipped (no ratio).
std::vector<double> elementwise_max_min_ratio(
    const std::vector<std::vector<float>>& worker_grads);

}  // namespace fpisa::ml
