// A small self-contained neural-network library: enough to train real
// models with real gradients for the paper's ML experiments (Figs 7-9).
// Layers: dense, ReLU, 3x3 conv; loss: softmax cross-entropy; optimizer:
// SGD with momentum + weight decay (the paper's CNN training settings).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fpisa::ml {

/// A layer transforms a batch of flattened activations. Parameters and
/// their gradients are exposed as flat spans for the data-parallel trainer.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;
  virtual int output_size(int input_size) const = 0;

  /// Forward for a batch of `n` rows of `in_size` floats.
  virtual std::vector<float> forward(std::span<const float> x, int n) = 0;
  /// Backward: consumes dL/dy, returns dL/dx; accumulates parameter grads.
  virtual std::vector<float> backward(std::span<const float> dy, int n) = 0;

  virtual std::span<float> params() { return {}; }
  virtual std::span<float> grads() { return {}; }
  virtual void zero_grads() {}
};

class Dense final : public Layer {
 public:
  Dense(int in, int out, util::Rng& rng);
  std::string name() const override { return "dense"; }
  int output_size(int) const override { return out_; }
  std::vector<float> forward(std::span<const float> x, int n) override;
  std::vector<float> backward(std::span<const float> dy, int n) override;
  std::span<float> params() override { return theta_; }
  std::span<float> grads() override { return grad_; }
  void zero_grads() override { grad_.assign(grad_.size(), 0.0f); }

 private:
  int in_;
  int out_;
  std::vector<float> theta_;  // W (out*in) then b (out)
  std::vector<float> grad_;
  std::vector<float> last_x_;
};

class Relu final : public Layer {
 public:
  explicit Relu(int size) : size_(size) {}
  std::string name() const override { return "relu"; }
  int output_size(int input_size) const override { return input_size; }
  std::vector<float> forward(std::span<const float> x, int n) override;
  std::vector<float> backward(std::span<const float> dy, int n) override;

 private:
  int size_;
  std::vector<float> last_x_;
};

/// 3x3 valid convolution over square single/multi-channel inputs.
class Conv3x3 final : public Layer {
 public:
  Conv3x3(int img, int cin, int cout, util::Rng& rng);
  std::string name() const override { return "conv3x3"; }
  int output_size(int) const override { return cout_ * (img_ - 2) * (img_ - 2); }
  std::vector<float> forward(std::span<const float> x, int n) override;
  std::vector<float> backward(std::span<const float> dy, int n) override;
  std::span<float> params() override { return theta_; }
  std::span<float> grads() override { return grad_; }
  void zero_grads() override { grad_.assign(grad_.size(), 0.0f); }

 private:
  int img_;
  int cin_;
  int cout_;
  std::vector<float> theta_;  // cout*cin*9 weights + cout biases
  std::vector<float> grad_;
  std::vector<float> last_x_;
};

/// Sequential network + softmax cross-entropy head.
class Network {
 public:
  Network(int input_size, std::vector<std::unique_ptr<Layer>> layers);

  int input_size() const { return input_size_; }
  int output_size() const { return output_size_; }

  std::vector<float> forward(std::span<const float> x, int n);
  /// Softmax-CE loss for logits vs labels; fills dlogits.
  static float loss_and_grad(std::span<const float> logits,
                             std::span<const int> labels, int classes,
                             std::vector<float>& dlogits);
  void backward(std::span<const float> dlogits, int n);

  void zero_grads();
  /// Flattened copy of all parameter gradients (the "gradient vector").
  std::vector<float> gradient_vector() const;
  /// Overwrites gradients from a flat vector (post-aggregation).
  void set_gradients(std::span<const float> flat);
  std::size_t parameter_count() const;

  /// SGD with momentum and weight decay (paper §5.2: lr .1, mom .9,
  /// wd 5e-4 for the CNN benchmarks).
  void sgd_step(float lr, float momentum, float weight_decay);

 private:
  int input_size_;
  int output_size_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<float> velocity_;
};

/// Model zoo standing in for the paper's four Fig 9 architectures.
Network make_logreg(int dim, int classes, std::uint64_t seed);
Network make_mlp(int dim, int hidden, int classes, std::uint64_t seed);
Network make_deep_mlp(int dim, int hidden, int classes, std::uint64_t seed);
Network make_cnn(int img, int classes, std::uint64_t seed);

}  // namespace fpisa::ml
