#include "ml/nn.h"

#include <cassert>
#include <cmath>

namespace fpisa::ml {
namespace {

float he_init(util::Rng& rng, int fan_in) {
  return static_cast<float>(rng.normal(0.0, std::sqrt(2.0 / fan_in)));
}

}  // namespace

Dense::Dense(int in, int out, util::Rng& rng)
    : in_(in),
      out_(out),
      theta_(static_cast<std::size_t>(out) * in + out, 0.0f),
      grad_(theta_.size(), 0.0f) {
  for (int i = 0; i < out * in; ++i) theta_[static_cast<std::size_t>(i)] = he_init(rng, in);
}

std::vector<float> Dense::forward(std::span<const float> x, int n) {
  last_x_.assign(x.begin(), x.end());
  std::vector<float> y(static_cast<std::size_t>(n) * out_);
  const float* w = theta_.data();
  const float* b = theta_.data() + static_cast<std::size_t>(out_) * in_;
  for (int r = 0; r < n; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * in_;
    float* yr = y.data() + static_cast<std::size_t>(r) * out_;
    for (int o = 0; o < out_; ++o) {
      float acc = b[o];
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      for (int i = 0; i < in_; ++i) acc += wo[i] * xr[i];
      yr[o] = acc;
    }
  }
  return y;
}

std::vector<float> Dense::backward(std::span<const float> dy, int n) {
  std::vector<float> dx(static_cast<std::size_t>(n) * in_, 0.0f);
  float* dw = grad_.data();
  float* db = grad_.data() + static_cast<std::size_t>(out_) * in_;
  const float* w = theta_.data();
  for (int r = 0; r < n; ++r) {
    const float* xr = last_x_.data() + static_cast<std::size_t>(r) * in_;
    const float* gr = dy.data() + static_cast<std::size_t>(r) * out_;
    float* dxr = dx.data() + static_cast<std::size_t>(r) * in_;
    for (int o = 0; o < out_; ++o) {
      const float g = gr[o];
      db[o] += g;
      float* dwo = dw + static_cast<std::size_t>(o) * in_;
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      for (int i = 0; i < in_; ++i) {
        dwo[i] += g * xr[i];
        dxr[i] += g * wo[i];
      }
    }
  }
  return dx;
}

std::vector<float> Relu::forward(std::span<const float> x, int n) {
  last_x_.assign(x.begin(), x.end());
  std::vector<float> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0 ? x[i] : 0.0f;
  (void)n;
  return y;
}

std::vector<float> Relu::backward(std::span<const float> dy, int n) {
  std::vector<float> dx(dy.size());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dx[i] = last_x_[i] > 0 ? dy[i] : 0.0f;
  }
  (void)n;
  return dx;
}

Conv3x3::Conv3x3(int img, int cin, int cout, util::Rng& rng)
    : img_(img),
      cin_(cin),
      cout_(cout),
      theta_(static_cast<std::size_t>(cout) * cin * 9 + cout, 0.0f),
      grad_(theta_.size(), 0.0f) {
  for (int i = 0; i < cout * cin * 9; ++i) {
    theta_[static_cast<std::size_t>(i)] = he_init(rng, cin * 9);
  }
}

std::vector<float> Conv3x3::forward(std::span<const float> x, int n) {
  last_x_.assign(x.begin(), x.end());
  const int o = img_ - 2;
  std::vector<float> y(static_cast<std::size_t>(n) * cout_ * o * o, 0.0f);
  const float* w = theta_.data();
  const float* b = theta_.data() + static_cast<std::size_t>(cout_) * cin_ * 9;
  for (int r = 0; r < n; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * cin_ * img_ * img_;
    float* yr = y.data() + static_cast<std::size_t>(r) * cout_ * o * o;
    for (int co = 0; co < cout_; ++co) {
      for (int i = 0; i < o; ++i) {
        for (int j = 0; j < o; ++j) {
          float acc = b[co];
          for (int ci = 0; ci < cin_; ++ci) {
            const float* xc = xr + static_cast<std::size_t>(ci) * img_ * img_;
            const float* wk =
                w + (static_cast<std::size_t>(co) * cin_ + ci) * 9;
            for (int di = 0; di < 3; ++di) {
              for (int dj = 0; dj < 3; ++dj) {
                acc += wk[di * 3 + dj] * xc[(i + di) * img_ + (j + dj)];
              }
            }
          }
          yr[(static_cast<std::size_t>(co) * o + i) * o + j] = acc;
        }
      }
    }
  }
  return y;
}

std::vector<float> Conv3x3::backward(std::span<const float> dy, int n) {
  const int o = img_ - 2;
  std::vector<float> dx(static_cast<std::size_t>(n) * cin_ * img_ * img_, 0.0f);
  float* dw = grad_.data();
  float* db = grad_.data() + static_cast<std::size_t>(cout_) * cin_ * 9;
  const float* w = theta_.data();
  for (int r = 0; r < n; ++r) {
    const float* xr =
        last_x_.data() + static_cast<std::size_t>(r) * cin_ * img_ * img_;
    const float* gr = dy.data() + static_cast<std::size_t>(r) * cout_ * o * o;
    float* dxr = dx.data() + static_cast<std::size_t>(r) * cin_ * img_ * img_;
    for (int co = 0; co < cout_; ++co) {
      for (int i = 0; i < o; ++i) {
        for (int j = 0; j < o; ++j) {
          const float g = gr[(static_cast<std::size_t>(co) * o + i) * o + j];
          db[co] += g;
          for (int ci = 0; ci < cin_; ++ci) {
            const float* xc = xr + static_cast<std::size_t>(ci) * img_ * img_;
            float* dxc = dxr + static_cast<std::size_t>(ci) * img_ * img_;
            float* dwk = dw + (static_cast<std::size_t>(co) * cin_ + ci) * 9;
            const float* wk = w + (static_cast<std::size_t>(co) * cin_ + ci) * 9;
            for (int di = 0; di < 3; ++di) {
              for (int dj = 0; dj < 3; ++dj) {
                dwk[di * 3 + dj] += g * xc[(i + di) * img_ + (j + dj)];
                dxc[(i + di) * img_ + (j + dj)] += g * wk[di * 3 + dj];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

Network::Network(int input_size, std::vector<std::unique_ptr<Layer>> layers)
    : input_size_(input_size), layers_(std::move(layers)) {
  int size = input_size_;
  for (const auto& l : layers_) size = l->output_size(size);
  output_size_ = size;
  velocity_.assign(parameter_count(), 0.0f);
}

std::vector<float> Network::forward(std::span<const float> x, int n) {
  std::vector<float> a(x.begin(), x.end());
  for (const auto& l : layers_) a = l->forward(a, n);
  return a;
}

float Network::loss_and_grad(std::span<const float> logits,
                             std::span<const int> labels, int classes,
                             std::vector<float>& dlogits) {
  const int n = static_cast<int>(labels.size());
  dlogits.assign(logits.size(), 0.0f);
  double loss = 0.0;
  for (int r = 0; r < n; ++r) {
    const float* lr = logits.data() + static_cast<std::size_t>(r) * classes;
    float* gr = dlogits.data() + static_cast<std::size_t>(r) * classes;
    float mx = lr[0];
    for (int c = 1; c < classes; ++c) mx = std::max(mx, lr[c]);
    double denom = 0.0;
    for (int c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(lr[c] - mx));
    }
    for (int c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(lr[c] - mx)) / denom;
      gr[c] = static_cast<float>((p - (labels[r] == c ? 1.0 : 0.0)) / n);
      if (labels[r] == c) loss -= std::log(std::max(p, 1e-12));
    }
  }
  return static_cast<float>(loss / n);
}

void Network::backward(std::span<const float> dlogits, int n) {
  std::vector<float> g(dlogits.begin(), dlogits.end());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g, n);
  }
}

void Network::zero_grads() {
  for (const auto& l : layers_) l->zero_grads();
}

std::vector<float> Network::gradient_vector() const {
  std::vector<float> out;
  for (const auto& l : layers_) {
    auto g = const_cast<Layer&>(*l).grads();
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

void Network::set_gradients(std::span<const float> flat) {
  std::size_t off = 0;
  for (const auto& l : layers_) {
    auto g = l->grads();
    for (std::size_t i = 0; i < g.size(); ++i) g[i] = flat[off + i];
    off += g.size();
  }
  assert(off == flat.size());
}

std::size_t Network::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += const_cast<Layer&>(*l).params().size();
  return n;
}

void Network::sgd_step(float lr, float momentum, float weight_decay) {
  std::size_t off = 0;
  for (const auto& l : layers_) {
    auto p = l->params();
    auto g = l->grads();
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay * p[i];
      velocity_[off + i] = momentum * velocity_[off + i] + grad;
      p[i] -= lr * velocity_[off + i];
    }
    off += p.size();
  }
}

Network make_logreg(int dim, int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Dense>(dim, classes, rng));
  return Network(dim, std::move(layers));
}

Network make_mlp(int dim, int hidden, int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Dense>(dim, hidden, rng));
  layers.push_back(std::make_unique<Relu>(hidden));
  layers.push_back(std::make_unique<Dense>(hidden, classes, rng));
  return Network(dim, std::move(layers));
}

Network make_deep_mlp(int dim, int hidden, int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Dense>(dim, hidden, rng));
  layers.push_back(std::make_unique<Relu>(hidden));
  layers.push_back(std::make_unique<Dense>(hidden, hidden, rng));
  layers.push_back(std::make_unique<Relu>(hidden));
  layers.push_back(std::make_unique<Dense>(hidden, classes, rng));
  return Network(dim, std::move(layers));
}

Network make_cnn(int img, int classes, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Conv3x3>(img, 1, 8, rng));
  const int conv_out = 8 * (img - 2) * (img - 2);
  layers.push_back(std::make_unique<Relu>(conv_out));
  layers.push_back(std::make_unique<Dense>(conv_out, classes, rng));
  return Network(img * img, std::move(layers));
}

}  // namespace fpisa::ml
