// Deterministic synthetic classification datasets — the stand-in for
// CIFAR-10 / Criteo / GBW (see DESIGN.md substitution table). Real SGD on
// these produces real gradients with the statistical properties Figs 7-9
// depend on.
#pragma once

#include <cstdint>
#include <vector>

namespace fpisa::ml {

struct Dataset {
  int dim = 0;
  int classes = 0;
  std::vector<float> train_x;  // row-major [n x dim]
  std::vector<int> train_y;
  std::vector<float> test_x;
  std::vector<int> test_y;

  int train_size() const { return static_cast<int>(train_y.size()); }
  int test_size() const { return static_cast<int>(test_y.size()); }
};

/// Gaussian-blob classification: `classes` anisotropic clusters in `dim`
/// dimensions with partial overlap (so accuracy is nontrivial).
Dataset make_blobs(int classes, int dim, int train_n, int test_n,
                   std::uint64_t seed);

/// Synthetic "images": per-class spatial templates + noise on an
/// img x img grid (for the conv model).
Dataset make_images(int classes, int img, int train_n, int test_n,
                    std::uint64_t seed);

}  // namespace fpisa::ml
