#include "ml/data.h"

#include "util/rng.h"

namespace fpisa::ml {
namespace {

void fill_split(std::vector<float>& xs, std::vector<int>& ys, int n, int dim,
                int classes, const std::vector<float>& centers, double noise,
                util::Rng& rng) {
  xs.resize(static_cast<std::size_t>(n) * dim);
  ys.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(classes)));
    ys[static_cast<std::size_t>(r)] = c;
    const float* mu = centers.data() + static_cast<std::size_t>(c) * dim;
    float* row = xs.data() + static_cast<std::size_t>(r) * dim;
    for (int d = 0; d < dim; ++d) {
      row[d] = mu[d] + static_cast<float>(rng.normal(0.0, noise));
    }
  }
}

}  // namespace

Dataset make_blobs(int classes, int dim, int train_n, int test_n,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset ds;
  ds.dim = dim;
  ds.classes = classes;

  std::vector<float> centers(static_cast<std::size_t>(classes) * dim);
  for (auto& c : centers) c = static_cast<float>(rng.normal(0.0, 1.0));

  fill_split(ds.train_x, ds.train_y, train_n, dim, classes, centers, 0.9, rng);
  fill_split(ds.test_x, ds.test_y, test_n, dim, classes, centers, 0.9, rng);
  return ds;
}

Dataset make_images(int classes, int img, int train_n, int test_n,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset ds;
  const int dim = img * img;
  ds.dim = dim;
  ds.classes = classes;

  // Per-class template: a few bright spots on the grid.
  std::vector<float> centers(static_cast<std::size_t>(classes) * dim, 0.0f);
  for (int c = 0; c < classes; ++c) {
    float* t = centers.data() + static_cast<std::size_t>(c) * dim;
    for (int s = 0; s < 5; ++s) {
      const auto pos = rng.next_below(static_cast<std::uint64_t>(dim));
      t[pos] = static_cast<float>(rng.uniform(1.0, 2.0));
    }
  }
  fill_split(ds.train_x, ds.train_y, train_n, dim, classes, centers, 0.5, rng);
  fill_split(ds.test_x, ds.test_y, test_n, dim, classes, centers, 0.5, rng);
  return ds;
}

}  // namespace fpisa::ml
