#include "ml/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/packed.h"

namespace fpisa::ml {

DataParallelTrainer::DataParallelTrainer(Network& model, const Dataset& data,
                                         collective::Communicator& comm,
                                         TrainerOptions opts)
    : model_(model),
      data_(data),
      comm_(comm),
      opts_(opts),
      order_(static_cast<std::size_t>(data.train_size())),
      shuffle_rng_(opts.shuffle_seed) {
  std::iota(order_.begin(), order_.end(), 0);
}

DataParallelTrainer::DataParallelTrainer(Network& model, const Dataset& data,
                                         switchml::GradientAggregator& agg,
                                         TrainerOptions opts)
    : model_(model),
      data_(data),
      owned_comm_(std::make_unique<collective::HostCommunicator>(agg)),
      comm_(*owned_comm_),
      opts_(opts),
      order_(static_cast<std::size_t>(data.train_size())),
      shuffle_rng_(opts.shuffle_seed) {
  std::iota(order_.begin(), order_.end(), 0);
}

float DataParallelTrainer::train_epoch(const GradHook& on_worker_grads) {
  shuffle_rng_.shuffle(order_.data(), order_.size());
  const int global_batch = opts_.workers * opts_.batch_per_worker;
  const int steps = data_.train_size() / global_batch;
  const int dim = data_.dim;
  double loss_sum = 0.0;

  for (int step = 0; step < steps; ++step) {
    std::vector<std::vector<float>> worker_grads;
    worker_grads.reserve(static_cast<std::size_t>(opts_.workers));

    for (int w = 0; w < opts_.workers; ++w) {
      // Build this worker's shard.
      const int b = opts_.batch_per_worker;
      std::vector<float> x(static_cast<std::size_t>(b) * dim);
      std::vector<int> y(static_cast<std::size_t>(b));
      for (int r = 0; r < b; ++r) {
        const int idx = order_[static_cast<std::size_t>(
            step * global_batch + w * b + r)];
        std::copy_n(data_.train_x.data() + static_cast<std::size_t>(idx) * dim,
                    dim, x.data() + static_cast<std::size_t>(r) * dim);
        y[static_cast<std::size_t>(r)] = data_.train_y[static_cast<std::size_t>(idx)];
      }

      model_.zero_grads();
      const std::vector<float> logits = model_.forward(x, b);
      std::vector<float> dlogits;
      loss_sum += Network::loss_and_grad(logits, y, data_.classes, dlogits);
      model_.backward(dlogits, b);

      std::vector<float> g = model_.gradient_vector();
      if (opts_.grad_format) {
        // Reduced-precision exchange: what actually leaves the worker.
        for (auto& v : g) {
          v = static_cast<float>(
              core::decode(core::encode(v, *opts_.grad_format),
                           *opts_.grad_format));
        }
      }
      worker_grads.push_back(std::move(g));
    }

    if (on_worker_grads) on_worker_grads(worker_grads);

    // One allreduce over views of the workers' gradients (zero-copy into
    // the communicator); kMean applies the same 1/W scale the legacy
    // host-side averaging did, float-for-float.
    mean_grad_.resize(worker_grads.front().size());
    (void)comm_.allreduce(collective::WorkerViews(worker_grads), mean_grad_,
                          collective::ReduceOp::kMean);
    model_.set_gradients(mean_grad_);
    model_.sgd_step(opts_.lr, opts_.momentum, opts_.weight_decay);
    ++steps_;
  }
  return static_cast<float>(loss_sum /
                            std::max(1, steps * opts_.workers));
}

float DataParallelTrainer::evaluate() {
  const int n = data_.test_size();
  if (n == 0) return 0.0f;
  const std::vector<float> logits = model_.forward(data_.test_x, n);
  int correct = 0;
  for (int r = 0; r < n; ++r) {
    const float* row = logits.data() + static_cast<std::size_t>(r) * data_.classes;
    int arg = 0;
    for (int c = 1; c < data_.classes; ++c) {
      if (row[c] > row[arg]) arg = c;
    }
    if (arg == data_.test_y[static_cast<std::size_t>(r)]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

std::vector<double> elementwise_max_min_ratio(
    const std::vector<std::vector<float>>& worker_grads) {
  std::vector<double> ratios;
  if (worker_grads.empty()) return ratios;
  const std::size_t n = worker_grads.front().size();
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double mn = 1e300;
    double mx = 0.0;
    bool any_zero = false;
    for (const auto& g : worker_grads) {
      const double a = std::fabs(static_cast<double>(g[i]));
      if (a == 0.0) {
        any_zero = true;
        break;
      }
      mn = std::min(mn, a);
      mx = std::max(mx, a);
    }
    if (!any_zero) ratios.push_back(mx / mn);
  }
  return ratios;
}

}  // namespace fpisa::ml
