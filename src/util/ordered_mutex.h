#pragma once

// Rank-ordered mutex: the dynamic backstop for the lock-order invariants
// that thread_annotations.h states statically.
//
// Every service-layer mutex belongs to a named LockFamily with a numeric
// rank. Locks may only be acquired in strictly increasing rank order on any
// one thread; acquiring a lock whose rank is <= the highest rank already
// held aborts immediately, printing both lock names. Two families that
// share a rank therefore "never nest" in either direction — that is how
// the cluster service's job_mu_/stats_mu_ mutual-exclusion rule is encoded.
//
// In Release (NDEBUG) builds the checker compiles out entirely:
// OrderedMutex is layout-identical to std::mutex (static_assert below) and
// every member call is a direct forward, so the Release datapath pays
// nothing (pinned by the bench overhead row and tests/test_ordered_mutex).
//
// The full rank table lives in lock_rank below and is mirrored in the
// README's "Static analysis & concurrency invariants" section.

#include <mutex>

#include "util/thread_annotations.h"

#if !defined(NDEBUG)
#define FPISA_LOCK_RANK_CHECKS 1
#else
#define FPISA_LOCK_RANK_CHECKS 0
#endif

#if FPISA_LOCK_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#endif

namespace fpisa::util {

// A mutex family: a stable name (printed on violation) and its rank in the
// global acquisition order. Families with equal ranks must never nest.
struct LockFamily {
  const char* name;
  int rank;
};

// The global lock-order table, ascending. Acquire top-to-bottom only.
//
//   rank | family               | protects
//   -----+----------------------+------------------------------------------
//     10 | collective.run_mu    | Communicator::run serialization
//     20 | collective.slo_mu    | per-tenant SLO books
//     40 | cluster.alloc_mu     | slot-range allocator + alloc_cv_
//     45 | cluster.fault_mu     | kill-fault schedule table
//     50 | cluster.health_mu    | ShardHealth alive/death bookkeeping
//     60 | cluster.job_mu       | admission queues + job scheduler state
//     60 | cluster.stats_mu     | tenant/fabric stats (== job rank: never nest)
//     70 | cluster.shard_mu     | per-shard switch state (nests under stats)
//     90 | telemetry.registry_mu| metrics registry map (leaf)
//     90 | telemetry.trace_mu   | trace span buffer (leaf)
namespace lock_rank {
inline constexpr LockFamily kCommRun{"collective.run_mu", 10};
inline constexpr LockFamily kCommSlo{"collective.slo_mu", 20};
inline constexpr LockFamily kAlloc{"cluster.alloc_mu", 40};
inline constexpr LockFamily kFaultTable{"cluster.fault_mu", 45};
inline constexpr LockFamily kHealth{"cluster.health_mu", 50};
inline constexpr LockFamily kJobQueue{"cluster.job_mu", 60};
inline constexpr LockFamily kStats{"cluster.stats_mu", 60};
inline constexpr LockFamily kShard{"cluster.shard_mu", 70};
inline constexpr LockFamily kTelemetry{"telemetry.registry_mu", 90};
inline constexpr LockFamily kTrace{"telemetry.trace_mu", 90};
}  // namespace lock_rank

#if FPISA_LOCK_RANK_CHECKS
namespace lock_rank_detail {

// Per-thread stack of held families. Fixed depth: the deepest legal chain
// in the table above is 3 (stats -> shard is the longest real nesting);
// 16 leaves generous headroom for tests.
inline constexpr int kMaxHeld = 16;

struct HeldStack {
  const LockFamily* held[kMaxHeld];
  int depth = 0;
};

inline HeldStack& held_stack() {
  thread_local HeldStack stack;
  return stack;
}

[[noreturn]] inline void die(const char* what, const LockFamily& incoming,
                             const LockFamily* held) {
  if (held != nullptr) {
    std::fprintf(stderr,
                 "fpisa lock-rank %s: acquiring '%s' (rank %d) while holding "
                 "'%s' (rank %d)\n",
                 what, incoming.name, incoming.rank, held->name, held->rank);
  } else {
    std::fprintf(stderr, "fpisa lock-rank %s: acquiring '%s' (rank %d)\n",
                 what, incoming.name, incoming.rank);
  }
  std::abort();
}

inline void note_acquire(const LockFamily& family) {
  HeldStack& s = held_stack();
  for (int i = 0; i < s.depth; ++i) {
    // >= : equal ranks never nest (job_mu_/stats_mu_ rule), higher-held
    // ranks mean the global order is inverted.
    if (s.held[i]->rank >= family.rank) {
      die("inversion", family, s.held[i]);
    }
  }
  if (s.depth >= kMaxHeld) {
    die("stack overflow", family, nullptr);
  }
  s.held[s.depth++] = &family;
}

inline void note_release(const LockFamily& family) {
  HeldStack& s = held_stack();
  // Locks release out of acquisition order across cv waits, so search from
  // the top rather than requiring LIFO.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.held[i] == &family) {
      for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
  }
  die("release of unheld lock", family, nullptr);
}

}  // namespace lock_rank_detail
#endif  // FPISA_LOCK_RANK_CHECKS

// Drop-in std::mutex replacement carrying a LockFamily. Satisfies
// BasicLockable/Lockable, so std::condition_variable_any waits on it and
// the rank bookkeeping rides the cv's unlock/relock automatically.
class FPISA_CAPABILITY("mutex") OrderedMutex {
 public:
  explicit OrderedMutex(const LockFamily& family) noexcept
#if FPISA_LOCK_RANK_CHECKS
      : family_(&family)
#endif
  {
    (void)family;
  }

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() FPISA_ACQUIRE() {
#if FPISA_LOCK_RANK_CHECKS
    // Check before blocking: a would-be deadlock aborts with both names
    // instead of hanging.
    lock_rank_detail::note_acquire(*family_);
#endif
    mu_.lock();
  }

  void unlock() FPISA_RELEASE() {
    mu_.unlock();
#if FPISA_LOCK_RANK_CHECKS
    lock_rank_detail::note_release(*family_);
#endif
  }

  bool try_lock() FPISA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if FPISA_LOCK_RANK_CHECKS
    // A try_lock that succeeds out of rank order is the same discipline
    // violation — it just happened not to deadlock this time.
    lock_rank_detail::note_acquire(*family_);
#endif
    return true;
  }

 private:
  std::mutex mu_;
#if FPISA_LOCK_RANK_CHECKS
  const LockFamily* family_;
#endif
};

#if !FPISA_LOCK_RANK_CHECKS
static_assert(sizeof(OrderedMutex) == sizeof(std::mutex),
              "Release OrderedMutex must be layout-identical to std::mutex");
static_assert(alignof(OrderedMutex) == alignof(std::mutex),
              "Release OrderedMutex must be layout-identical to std::mutex");
#endif

// Annotated replacement for std::lock_guard<std::mutex> (libstdc++'s guard
// types carry no capability attributes, so clang cannot see through them).
class FPISA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(OrderedMutex& mu) FPISA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~LockGuard() FPISA_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  OrderedMutex& mu_;
};

struct DeferLockT {
  explicit DeferLockT() = default;
};
inline constexpr DeferLockT kDeferLock{};

// Annotated replacement for std::unique_lock<std::mutex>: movable-free,
// defer-lock capable, BasicLockable (condition_variable_any waits on it).
class FPISA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(OrderedMutex& mu) FPISA_ACQUIRE(mu)
      : mu_(&mu), owned_(true) {
    mu_->lock();
  }
  UniqueLock(OrderedMutex& mu, DeferLockT) FPISA_EXCLUDES(mu)
      : mu_(&mu), owned_(false) {}
  ~UniqueLock() FPISA_RELEASE() {
    if (owned_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FPISA_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() FPISA_RELEASE() {
    owned_ = false;
    mu_->unlock();
  }
  bool owns_lock() const noexcept { return owned_; }

 private:
  OrderedMutex* mu_;
  bool owned_;
};

}  // namespace fpisa::util
