// Machine-readable bench output: every bench/ binary writes its headline
// metrics to BENCH_<name>.json alongside the human-readable stdout tables,
// so the performance trajectory can be diffed and tracked across PRs.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fpisa::util {

/// Collects key -> metric pairs (insertion order preserved) and serializes
/// them as one JSON object: {"bench": <name>, "build": {...}, "metrics":
/// {...}}. The "build" object carries util::build_info() (git describe,
/// compiler, AVX2 on/off, sanitizer mode) on every file automatically.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  /// Embeds `json` verbatim as the value (caller guarantees it is valid
  /// JSON) — how benches attach a telemetry::Snapshot::json() dump.
  void set_raw(const std::string& key, std::string json);

  const std::string& name() const { return name_; }
  std::string render() const;

  /// Writes `<dir>/BENCH_<name>.json`; returns false on I/O failure.
  bool write(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string key;
    enum class Kind { kNumber, kText, kRaw } kind = Kind::kNumber;
    double number = 0.0;
    std::string text;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace fpisa::util
