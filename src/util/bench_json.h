// Machine-readable bench output: every bench/ binary writes its headline
// metrics to BENCH_<name>.json alongside the human-readable stdout tables,
// so the performance trajectory can be diffed and tracked across PRs.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fpisa::util {

/// Collects key -> metric pairs (insertion order preserved) and serializes
/// them as one flat JSON object: {"bench": <name>, "metrics": {...}}.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }

  const std::string& name() const { return name_; }
  std::string render() const;

  /// Writes `<dir>/BENCH_<name>.json`; returns false on I/O failure.
  bool write(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string key;
    bool is_number = false;
    double number = 0.0;
    std::string text;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace fpisa::util
