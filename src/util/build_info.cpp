#include "util/build_info.h"

// CMake passes these as per-source compile definitions on this file only,
// so a new git revision re-compiles one TU instead of the whole tree.
#ifndef FPISA_BUILD_GIT_DESCRIBE
#define FPISA_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef FPISA_BUILD_COMPILER
#define FPISA_BUILD_COMPILER "unknown"
#endif
#ifndef FPISA_BUILD_TYPE
#define FPISA_BUILD_TYPE "unknown"
#endif
#ifndef FPISA_BUILD_SANITIZER
#define FPISA_BUILD_SANITIZER "none"
#endif

namespace fpisa::util {

const BuildInfo& build_info() {
  static const BuildInfo info{
      FPISA_BUILD_GIT_DESCRIBE,
      FPISA_BUILD_COMPILER,
      FPISA_BUILD_TYPE,
      FPISA_BUILD_SANITIZER,
#ifdef FPISA_HAVE_AVX2
      true,
#else
      false,
#endif
  };
  return info;
}

}  // namespace fpisa::util
