// Minimal ASCII table printer. Every bench that reproduces a paper table or
// figure prints its rows through this so outputs are uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace fpisa::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);  // v in [0,1] -> "x.x%"

  /// Renders with column alignment and +---+ rules.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fpisa::util
