// Build provenance: git revision, compiler, and the configuration knobs
// (AVX2 backend, sanitizer mode, build type) that shape a binary's
// performance. util::BenchJson stamps every BENCH_*.json with this so the
// bench trajectory is attributable to a configuration, not just a date.
#pragma once

#include <string_view>

namespace fpisa::util {

struct BuildInfo {
  std::string_view git_describe;  ///< `git describe --always --dirty`
  std::string_view compiler;      ///< e.g. "GNU 13.2.0"
  std::string_view build_type;    ///< e.g. "Release"
  std::string_view sanitizer;     ///< "none", "address", or "thread"
  bool avx2 = false;              ///< FPISA_ENABLE_AVX2 at configure time
};

/// The configuration this binary was built with (values baked in by CMake;
/// "unknown" fields when built outside the CMake tree).
const BuildInfo& build_info();

}  // namespace fpisa::util
