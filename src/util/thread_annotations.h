#pragma once

// Clang thread-safety analysis attributes behind FPISA_ macros.
//
// Under clang (-Wthread-safety, enabled automatically by CMake when the
// compiler is clang) these expand to the static-analysis attributes; under
// GCC and MSVC they are no-ops, so the annotated tree builds everywhere and
// the clang CI leg is the one that proves the locking discipline.
//
// Cheat-sheet (see README "Static analysis & concurrency invariants"):
//   FPISA_CAPABILITY("mutex")        - class is a lockable capability
//   FPISA_SCOPED_CAPABILITY          - RAII class acquiring in ctor, releasing in dtor
//   FPISA_GUARDED_BY(mu)             - field may only be touched while mu is held
//   FPISA_PT_GUARDED_BY(mu)          - pointee may only be touched while mu is held
//   FPISA_REQUIRES(mu)               - caller must hold mu across the call
//   FPISA_ACQUIRE(mu) / FPISA_RELEASE(mu) - function acquires / releases mu
//   FPISA_TRY_ACQUIRE(ok, mu)        - acquires mu iff it returns `ok`
//   FPISA_EXCLUDES(mu)               - caller must NOT hold mu (anti-nesting rule)
//   FPISA_ASSERT_CAPABILITY(mu)      - runtime assertion that mu is held
//   FPISA_RETURN_CAPABILITY(mu)      - function returns a reference to mu
//   FPISA_NO_THREAD_SAFETY_ANALYSIS  - opt a definition out (non-lexical flows)

#if defined(__clang__) && defined(__has_attribute)
#define FPISA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FPISA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define FPISA_CAPABILITY(x) FPISA_THREAD_ANNOTATION(capability(x))
#define FPISA_SCOPED_CAPABILITY FPISA_THREAD_ANNOTATION(scoped_lockable)
#define FPISA_GUARDED_BY(x) FPISA_THREAD_ANNOTATION(guarded_by(x))
#define FPISA_PT_GUARDED_BY(x) FPISA_THREAD_ANNOTATION(pt_guarded_by(x))
#define FPISA_ACQUIRED_BEFORE(...) \
  FPISA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FPISA_ACQUIRED_AFTER(...) \
  FPISA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define FPISA_REQUIRES(...) \
  FPISA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FPISA_REQUIRES_SHARED(...) \
  FPISA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FPISA_ACQUIRE(...) \
  FPISA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FPISA_ACQUIRE_SHARED(...) \
  FPISA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FPISA_RELEASE(...) \
  FPISA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FPISA_RELEASE_SHARED(...) \
  FPISA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FPISA_TRY_ACQUIRE(...) \
  FPISA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FPISA_EXCLUDES(...) FPISA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FPISA_ASSERT_CAPABILITY(x) \
  FPISA_THREAD_ANNOTATION(assert_capability(x))
#define FPISA_RETURN_CAPABILITY(x) FPISA_THREAD_ANNOTATION(lock_returned(x))
#define FPISA_NO_THREAD_SAFETY_ANALYSIS \
  FPISA_THREAD_ANNOTATION(no_thread_safety_analysis)
