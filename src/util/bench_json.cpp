#include "util/bench_json.h"

#include "util/build_info.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace fpisa::util {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void BenchJson::set(const std::string& key, double value) {
  entries_.push_back({key, Entry::Kind::kNumber, value, {}});
}

void BenchJson::set(const std::string& key, const std::string& value) {
  entries_.push_back({key, Entry::Kind::kText, 0.0, value});
}

void BenchJson::set_raw(const std::string& key, std::string json) {
  entries_.push_back({key, Entry::Kind::kRaw, 0.0, std::move(json)});
}

std::string BenchJson::render() const {
  const BuildInfo& b = build_info();
  std::string out = "{\n  \"bench\": \"" + escape(name_) + "\",\n";
  out += "  \"build\": {\n";
  out += "    \"git\": \"" + escape(std::string(b.git_describe)) + "\",\n";
  out += "    \"compiler\": \"" + escape(std::string(b.compiler)) + "\",\n";
  out += "    \"build_type\": \"" + escape(std::string(b.build_type)) + "\",\n";
  out += "    \"avx2\": " + std::string(b.avx2 ? "true" : "false") + ",\n";
  out += "    \"sanitizer\": \"" + escape(std::string(b.sanitizer)) + "\",\n";
  // Wall-clock numbers mean nothing without the core count they ran on.
  out += "    \"host_cpus\": " +
         std::to_string(std::thread::hardware_concurrency()) + "\n";
  out += "  },\n  \"metrics\": {";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += i ? ",\n    " : "\n    ";
    out += "\"" + escape(e.key) + "\": ";
    switch (e.kind) {
      case Entry::Kind::kNumber: out += number(e.number); break;
      case Entry::Kind::kText: out += "\"" + escape(e.text) + "\""; break;
      case Entry::Kind::kRaw: out += e.text; break;
    }
  }
  out += entries_.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool BenchJson::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace fpisa::util
