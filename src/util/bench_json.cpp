#include "util/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fpisa::util {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void BenchJson::set(const std::string& key, double value) {
  entries_.push_back({key, true, value, {}});
}

void BenchJson::set(const std::string& key, const std::string& value) {
  entries_.push_back({key, false, 0.0, value});
}

std::string BenchJson::render() const {
  std::string out = "{\n  \"bench\": \"" + escape(name_) + "\",\n  \"metrics\": {";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += i ? ",\n    " : "\n    ";
    out += "\"" + escape(e.key) + "\": ";
    out += e.is_number ? number(e.number) : "\"" + escape(e.text) + "\"";
  }
  out += entries_.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool BenchJson::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace fpisa::util
