#include "util/stats.h"

#include <cstdio>

namespace fpisa::util {

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& rows,
                       int width) {
  std::size_t label_w = 0;
  double maxv = 0.0;
  for (const auto& [label, v] : rows) {
    label_w = std::max(label_w, label.size());
    maxv = std::max(maxv, v);
  }
  if (maxv <= 0.0) maxv = 1.0;
  std::string out;
  char buf[64];
  for (const auto& [label, v] : rows) {
    out += "  ";
    out += label;
    out.append(label_w - label.size(), ' ');
    out += " |";
    const int n = static_cast<int>(v / maxv * width + 0.5);
    out.append(static_cast<std::size_t>(n), '#');
    std::snprintf(buf, sizeof buf, " %.4f", v);
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace fpisa::util
