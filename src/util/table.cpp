#include "util/table.h"

#include <cstdio>

namespace fpisa::util {

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (const auto w : widths) {
      s.append(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      s += ' ';
      s += cell;
      s.append(widths[c] - cell.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace fpisa::util
