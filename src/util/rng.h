// Deterministic, seedable random number generation used across all
// experiments so every bench and test is exactly reproducible.
//
// We deliberately avoid <random>'s distributions (their results are
// implementation-defined across standard libraries) and implement
// xoshiro256++ with splitmix64 seeding plus the handful of distributions the
// experiments need.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace fpisa::util {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Fast, high quality, deterministic across platforms.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eedf15aULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  /// Uniform in [0, bound). Unbiased for bound > 0 via rejection.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style rejection on the top bits.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  constexpr float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal() {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -std::log(u) / rate;
  }

  /// Zipf-like skewed integer in [0, n): P(k) ~ 1/(k+1)^alpha.
  /// Uses inverse-CDF on a precomputed-free approximation (rejection).
  std::uint64_t zipf(std::uint64_t n, double alpha) {
    // Rejection sampling per Devroye; adequate for workload generation.
    const double b = std::pow(2.0, alpha - 1.0);
    for (;;) {
      const double u = next_double();
      const double v = next_double();
      const double x = std::floor(std::pow(u, -1.0 / (alpha - 1.0)));
      const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
      if (v * x * (t - 1.0) / (b - 1.0) <= t / b && x <= double(n)) {
        return static_cast<std::uint64_t>(x) - 1;
      }
    }
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(T* data, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = next_below(i);
      std::swap(data[i - 1], data[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fpisa::util
