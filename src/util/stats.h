// Streaming statistics and histogram helpers used by the experiment
// harnesses (error distributions, ratio distributions, latency summaries).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fpisa::util {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over log2(x): bucket i covers [2^(lo+i), 2^(lo+i+1)).
/// Matches the paper's Fig 7 (max/min ratio vs powers of two) and Fig 8
/// (error magnitude vs powers of ten mapped onto log buckets).
class Log2Histogram {
 public:
  Log2Histogram(int lo_exp, int hi_exp)
      : lo_(lo_exp), counts_(static_cast<std::size_t>(hi_exp - lo_exp) + 2) {}

  void add(double x) {
    ++total_;
    if (!(x > 0.0) || !std::isfinite(x)) {
      ++counts_.front();  // underflow bucket (zero / nonpositive / nonfinite)
      return;
    }
    const int e = static_cast<int>(std::floor(std::log2(x)));
    const int idx =
        std::clamp(e - lo_ + 1, 0, static_cast<int>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
  }

  std::uint64_t total() const { return total_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  double frequency(std::size_t i) const {
    return total_ ? static_cast<double>(counts_[i]) /
                        static_cast<double>(total_)
                  : 0.0;
  }
  /// Lower log2 edge of bucket i (bucket 0 is the underflow bucket).
  int bucket_log2_lo(std::size_t i) const { return lo_ + static_cast<int>(i) - 1; }

  /// Fraction of samples with value < 2^e.
  double fraction_below_pow2(int e) const {
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (i == 0 || bucket_log2_lo(i) + 1 <= e) below += counts_[i];
    }
    return total_ ? static_cast<double>(below) / static_cast<double>(total_)
                  : 0.0;
  }

 private:
  int lo_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Nearest-rank percentile over an ascending-sorted sample; q in [0, 1].
/// The single rounding convention behind Percentiles and Reservoir.
inline double sorted_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Exact percentile over a stored sample set (fine for experiment sizes).
class Percentiles {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }

  /// q in [0,1]; nearest-rank.
  double percentile(double q) {
    std::sort(xs_.begin(), xs_.end());
    return sorted_percentile(xs_, q);
  }
  double median() { return percentile(0.5); }

 private:
  std::vector<double> xs_;
};

/// Fixed-capacity uniform sample over an unbounded stream (Vitter's
/// algorithm R) with a deterministic replacement stream, so percentile
/// summaries (per-tenant job wall times in the cluster service's SLO
/// accounting) stay cheap and reproducible no matter how many jobs run.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 128,
                     std::uint64_t seed = 0x510eedULL)
      : cap_(capacity ? capacity : 1), rng_seed_(seed) {}

  void add(double x) {
    ++n_;
    if (xs_.size() < cap_) {
      xs_.push_back(x);
      return;
    }
    const std::uint64_t j = splitmix64(rng_seed_) % n_;
    if (j < cap_) xs_[static_cast<std::size_t>(j)] = x;
  }

  std::uint64_t count() const { return n_; }
  std::size_t sample_size() const { return xs_.size(); }

  /// Ascending copy of the current sample — callers reading several
  /// percentiles sort once and use sorted_percentile directly.
  std::vector<double> sorted_samples() const {
    std::vector<double> sorted(xs_);
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  /// Nearest-rank percentile over the sampled set; q in [0, 1].
  double percentile(double q) const {
    return sorted_percentile(sorted_samples(), q);
  }

 private:
  std::size_t cap_;
  std::uint64_t rng_seed_;
  std::uint64_t n_ = 0;
  std::vector<double> xs_;
};

/// Renders a sequence of (label, fraction) rows as a small ASCII bar chart,
/// used by the figure-reproduction benches.
std::string ascii_bars(const std::vector<std::pair<std::string, double>>& rows,
                       int width = 40);

}  // namespace fpisa::util
