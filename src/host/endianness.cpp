#include "host/endianness.h"

#include <bit>
#include <chrono>
#include <cstring>
#include <vector>

namespace fpisa::host {
namespace {

// Scalar loops carry GCC attributes disabling auto-vectorization so they
// model per-element DPDK API calls (the paper's measurement methodology).
#define FPISA_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

FPISA_NO_VECTORIZE std::uint64_t bswap16_scalar(std::span<std::uint16_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap16(v);
    sum += v;
  }
  return sum;
}

FPISA_NO_VECTORIZE std::uint64_t bswap32_scalar(std::span<std::uint32_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap32(v);
    sum += v;
  }
  return sum;
}

FPISA_NO_VECTORIZE std::uint64_t bswap64_scalar(std::span<std::uint64_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap64(v);
    sum += v;
  }
  return sum;
}

std::uint64_t bswap16_vector(std::span<std::uint16_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap16(v);
    sum += v;
  }
  return sum;
}

std::uint64_t bswap32_vector(std::span<std::uint32_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap32(v);
    sum += v;
  }
  return sum;
}

std::uint64_t bswap64_vector(std::span<std::uint64_t> d) {
  std::uint64_t sum = 0;
  for (auto& v : d) {
    v = __builtin_bswap64(v);
    sum += v;
  }
  return sum;
}

FPISA_NO_VECTORIZE std::uint64_t quantize_block(std::span<const float> in,
                                                std::span<std::uint32_t> out,
                                                float scale) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto q = static_cast<std::int32_t>(in[i] * scale);
    out[i] = __builtin_bswap32(static_cast<std::uint32_t>(q));
    sum += out[i];
  }
  return sum;
}

FPISA_NO_VECTORIZE void dequantize_block(std::span<const std::uint32_t> in,
                                         std::span<float> out,
                                         float inv_scale) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto q =
        static_cast<std::int32_t>(__builtin_bswap32(in[i]));
    out[i] = static_cast<float>(q) * inv_scale;
  }
}

std::uint64_t quantize_block_vector(std::span<const float> in,
                                    std::span<std::uint32_t> out, float scale) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto q = static_cast<std::int32_t>(in[i] * scale);
    out[i] = __builtin_bswap32(static_cast<std::uint32_t>(q));
  }
  for (std::size_t i = 0; i < out.size(); i += 64) sum += out[i];
  return sum;
}

void dequantize_block_vector(std::span<const std::uint32_t> in,
                             std::span<float> out, float inv_scale) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto q = static_cast<std::int32_t>(__builtin_bswap32(in[i]));
    out[i] = static_cast<float>(q) * inv_scale;
  }
}

double desired_rate_eps(double line_gbps, int element_bits) {
  return line_gbps * 1e9 / element_bits;
}

namespace {

/// Runs `body(iteration)` until the time budget elapses; returns ops/sec
/// where one op = `elements_per_call` elements.
template <typename F>
double measure_eps(double budget_ms, std::size_t elements_per_call, F&& body) {
  // Warmup.
  body(0);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t calls = 0;
  double elapsed = 0;
  do {
    body(calls);
    ++calls;
    elapsed = seconds_since(t0);
  } while (elapsed * 1000.0 < budget_ms);
  return static_cast<double>(calls) *
         static_cast<double>(elements_per_call) / elapsed;
}

}  // namespace

MeasuredRates measure_host_rates(double budget_ms) {
  constexpr std::size_t kN = 1 << 18;  // 256K elements: L2-resident-ish
  std::vector<std::uint16_t> b16(kN, 0x1234);
  std::vector<std::uint32_t> b32(kN, 0x12345678u);
  std::vector<std::uint64_t> b64(kN, 0x123456789abcdef0ull);
  std::vector<float> f32(kN, 1.25f);
  std::vector<std::uint32_t> q32(kN);
  std::vector<float> deq(kN);
  std::vector<std::uint8_t> src(1 << 20), dst(1 << 20);

  volatile std::uint64_t sink = 0;
  MeasuredRates r;
  r.bswap16_scalar_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap16_scalar(b16); });
  r.bswap32_scalar_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap32_scalar(b32); });
  r.bswap64_scalar_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap64_scalar(b64); });
  r.bswap16_vector_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap16_vector(b16); });
  r.bswap32_vector_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap32_vector(b32); });
  r.bswap64_vector_eps =
      measure_eps(budget_ms, kN, [&](std::size_t) { sink = sink + bswap64_vector(b64); });
  r.quantize_eps = measure_eps(budget_ms, kN, [&](std::size_t) {
    sink = sink + quantize_block(f32, q32, 1024.0f);
  });
  r.dequantize_eps = measure_eps(budget_ms, kN, [&](std::size_t) {
    dequantize_block(q32, deq, 1.0f / 1024.0f);
    sink = sink + static_cast<std::uint64_t>(deq[0]);
  });
  r.quantize_vector_eps = measure_eps(budget_ms, kN, [&](std::size_t) {
    sink = sink + quantize_block_vector(f32, q32, 1024.0f);
  });
  r.dequantize_vector_eps = measure_eps(budget_ms, kN, [&](std::size_t) {
    dequantize_block_vector(q32, deq, 1.0f / 1024.0f);
    sink = sink + static_cast<std::uint64_t>(deq[0]);
  });
  r.memcpy_bytes_per_s = measure_eps(budget_ms, src.size(), [&](std::size_t) {
    std::memcpy(dst.data(), src.data(), src.size());
    sink = sink + dst[0];
  });
  return r;
}

}  // namespace fpisa::host
