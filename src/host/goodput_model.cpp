#include "host/goodput_model.h"

#include <algorithm>
#include <cmath>

namespace fpisa::host {
namespace {

constexpr double kElementBytes = 4.0;  // FP32

/// Per-core element-processing rate (elements/second) for the CPU-side
/// work each approach performs per element.
double per_core_element_rate(Approach a, const MeasuredRates& r) {
  switch (a) {
    case Approach::kSwitchMlCpu: {
      // Quantize outbound + dequantize inbound, SIMD-optimized loops
      // (SwitchML's workers are vectorized; the scalar DPDK-API rates are
      // what Fig 6 reports, not what SwitchML pays).
      const double q = r.quantize_vector_eps;
      const double d = r.dequantize_vector_eps;
      return 1.0 / (1.0 / q + 1.0 / d);
    }
    case Approach::kFpisaCpu:
      // No numeric transforms; one staging memcpy in each direction.
      return r.memcpy_bytes_per_s / (2.0 * kElementBytes);
    case Approach::kFpisaCpuOpt:
      return 1e18;  // in-place on native FP vectors: no per-element work
    case Approach::kSwitchMlGpu:
    case Approach::kFpisaGpu:
      return 1e18;  // CPU cores only drive control
  }
  return 0;
}

}  // namespace

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kSwitchMlCpu: return "SwitchML/CPU";
    case Approach::kSwitchMlGpu: return "SwitchML/GPU";
    case Approach::kFpisaCpu: return "FPISA-A/CPU";
    case Approach::kFpisaCpuOpt: return "FPISA-A/CPU(Opt)";
    case Approach::kFpisaGpu: return "FPISA-A/GPU";
  }
  return "?";
}

double goodput_gbps(Approach a, int cores, double message_bytes,
                    const MeasuredRates& rates, const PipelineParams& p) {
  const double elements = message_bytes / kElementBytes;

  if (a == Approach::kSwitchMlGpu) {
    // Per chunk: quantize + dequantize kernel launches serialize across
    // streams (CUDA launch serialization: more cores do not help), and the
    // chunk cannot be batched because the scaling factor needs the
    // exponent round trip before dequantization.
    const double t_launch = 2.0 * p.gpu_kernel_launch_us * 1e-6;
    const double t_copy = message_bytes * 8.0 / (p.gpu_copy_gbps * 1e9);
    const double gbps = message_bytes * 8.0 / (t_launch + t_copy) / 1e9;
    return std::min(gbps, p.max_goodput_gbps);
  }
  if (a == Approach::kFpisaGpu) {
    // Batched, always-one-batch-ahead copies: amortized launch cost,
    // bounded by the bidirectional copy-engine bandwidth, independent of
    // the RDMA message size.
    const double batch = p.gpu_copy_batch_bytes;
    const double t = p.gpu_kernel_launch_us * 1e-6 / 2.0 +
                     batch * 8.0 / (p.gpu_copy_gbps * 1e9);
    const double gbps = batch * 8.0 / t / 1e9;
    return std::min(gbps, p.max_goodput_gbps);
  }

  // CPU approaches: cores x (per-message compute + overhead).
  const double rate = per_core_element_rate(a, rates);
  const double t_msg =
      elements / rate + p.per_message_overhead_us * 1e-6;
  double gbps = cores * (message_bytes * 8.0 / t_msg) / 1e9;

  if (a == Approach::kSwitchMlCpu) {
    // SwitchML's streaming aggregation loses pipelining as messages grow
    // (per-chunk scaling-factor sync + full-message retransmit granularity).
    gbps *= p.pipeline_window_bytes / (p.pipeline_window_bytes + message_bytes);
  }
  return std::min(gbps, p.max_goodput_gbps);
}

std::vector<GoodputPoint> sweep_cores(const MeasuredRates& rates,
                                      double message_bytes, int max_cores,
                                      const PipelineParams& p) {
  std::vector<GoodputPoint> out;
  const Approach all[] = {Approach::kFpisaCpu, Approach::kFpisaCpuOpt,
                          Approach::kFpisaGpu, Approach::kSwitchMlCpu,
                          Approach::kSwitchMlGpu};
  for (const Approach a : all) {
    for (int c = 1; c <= max_cores; ++c) {
      out.push_back({a, c, message_bytes,
                     goodput_gbps(a, c, message_bytes, rates, p)});
    }
  }
  return out;
}

std::vector<GoodputPoint> sweep_message_size(const MeasuredRates& rates,
                                             int cores,
                                             const PipelineParams& p) {
  std::vector<GoodputPoint> out;
  const Approach all[] = {Approach::kFpisaCpu, Approach::kFpisaCpuOpt,
                          Approach::kFpisaGpu, Approach::kSwitchMlCpu,
                          Approach::kSwitchMlGpu};
  for (const Approach a : all) {
    for (double s = 4 * 1024; s <= 2 * 1024 * 1024; s *= 2) {
      out.push_back({a, cores, s, goodput_gbps(a, cores, s, rates, p)});
    }
  }
  return out;
}

std::vector<ModelCard> paper_model_cards() {
  // Gradient volume from public parameter counts (MB of FP32 gradients);
  // compute_ms positions each model on the comm-/compute-bound axis with
  // the batch sizes the paper takes from MLPerf/SwitchML.
  return {
      {"DeepLight", 2200.0, 180.0},
      {"LSTM", 1627.0, 330.0},
      {"BERT", 1274.0, 475.0},
      {"VGG19", 548.0, 350.0},
      {"GoogleNet", 26.5, 150.0},
      {"ResNet-50", 97.5, 280.0},
      {"MobileNetV2", 13.5, 110.0},
  };
}

std::vector<SpeedupRow> training_speedups(const MeasuredRates& rates,
                                          const PipelineParams& p,
                                          const DpdkParams& d) {
  auto dpdk_goodput = [&](Approach a, int cores) {
    // Per-core rate taken below the RDMA path's 92 Gbps ceiling (the DPDK
    // backend has its own, lower caps), scaled by the DPDK efficiency.
    PipelineParams uncapped = p;
    uncapped.max_goodput_gbps = 1e9;
    const double per_core = goodput_gbps(a, 1, 64 * 1024, rates, uncapped);
    const double cap = a == Approach::kSwitchMlCpu ? d.switchml_cap_gbps
                                                   : d.fpisa_cap_gbps;
    return std::min(per_core * cores * d.efficiency, cap);
  };

  std::vector<SpeedupRow> rows;
  for (const ModelCard& m : paper_model_cards()) {
    auto iter_ms = [&](Approach a, int cores) {
      const double comm_ms =
          m.grad_mbytes * 8.0 / dpdk_goodput(a, cores) /* Gbps -> ms/MB*8 */;
      return m.compute_ms + comm_ms;
    };
    SpeedupRow r;
    r.model = m.name;
    r.speedup_2core = iter_ms(Approach::kSwitchMlCpu, 2) /
                          iter_ms(Approach::kFpisaCpu, 2) -
                      1.0;
    r.speedup_8core = iter_ms(Approach::kSwitchMlCpu, 8) /
                          iter_ms(Approach::kFpisaCpu, 8) -
                      1.0;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace fpisa::host
