// Host-pipeline goodput model (Fig 10) and end-to-end training speedup
// cards (Fig 11).
//
// The paper's own Fig 10/11 methodology is an emulation: the switch runs at
// line rate regardless of per-packet computation, so end-to-end throughput
// is decided by host-side per-element work (quantization, byteswap, staging
// copies, GPU copy engines and kernel launches). This model reproduces that
// arithmetic with (a) rates measured on the current machine
// (src/host/endianness.*) and (b) documented constants for the GPU/NIC
// parts we cannot measure here.
#pragma once

#include <string>
#include <vector>

#include "host/endianness.h"

namespace fpisa::host {

enum class Approach {
  kSwitchMlCpu,   ///< CPU quantize/byteswap per element (SwitchML baseline)
  kSwitchMlGpu,   ///< GPU quantize, per-chunk kernel launches + copies
  kFpisaCpu,      ///< FPISA-A with RDMA staging memcpy on the CPU
  kFpisaCpuOpt,   ///< FPISA-A operating in place on native FP vectors
  kFpisaGpu,      ///< FPISA-A with batched GPU<->host copies
};

const char* approach_name(Approach a);

struct PipelineParams {
  double line_gbps = 100.0;
  double max_goodput_gbps = 92.0;  ///< framing overhead ceiling (paper)
  double per_message_overhead_us = 1.0;  ///< doorbell/completion per message
  // GPU model (documented constants; our testbed has no GPU):
  double gpu_copy_gbps = 80.0;        ///< bidirectional copy-engine bound
  double gpu_kernel_launch_us = 10.0; ///< serialized launch cost per kernel
  double gpu_copy_batch_bytes = 1 << 20;  ///< FPISA-A/GPU batching size
  // SwitchML's extra exponent round trip per chunk:
  double rtt_us = 12.0;
  double pipeline_window_bytes = 4.0 * (1 << 20);  ///< outstanding data cap
};

/// Goodput in Gbps for one approach at a core count and message size,
/// reducing a large (1 GB) vector between two workers as in Fig 10.
double goodput_gbps(Approach a, int cores, double message_bytes,
                    const MeasuredRates& rates, const PipelineParams& p = {});

/// Fig 10 sweep outputs.
struct GoodputPoint {
  Approach approach;
  int cores;
  double message_bytes;
  double goodput_gbps;
};
std::vector<GoodputPoint> sweep_cores(const MeasuredRates& rates,
                                      double message_bytes = 16 * 1024,
                                      int max_cores = 10,
                                      const PipelineParams& p = {});
std::vector<GoodputPoint> sweep_message_size(const MeasuredRates& rates,
                                             int cores = 4,
                                             const PipelineParams& p = {});

// ---------------------------------------------------------------------------
// Fig 11: end-to-end training speedup
// ---------------------------------------------------------------------------

/// Per-model workload card: gradient volume per iteration and the GPU
/// compute time that communication must hide behind. Values follow the
/// models' public parameter counts and the MLPerf-style batch settings the
/// paper uses; they position each model on the comm- vs compute-bound axis.
struct ModelCard {
  const char* name;
  double grad_mbytes;       ///< gradient bytes exchanged per iteration
  double compute_ms;        ///< forward+backward per iteration
};

std::vector<ModelCard> paper_model_cards();

/// DPDK-transport efficiency factors for the Fig 11 setup (the paper uses
/// the DPDK backend there because SwitchML/RDMA is not framework-integrated).
struct DpdkParams {
  double efficiency = 0.55;       ///< per-core rate scale vs RDMA backend
  double switchml_cap_gbps = 55;  ///< DPDK SwitchML peak goodput
  double fpisa_cap_gbps = 75;     ///< FPISA-A over DPDK peak goodput
};

struct SpeedupRow {
  const char* model;
  double speedup_2core;  ///< fractional, e.g. 0.859 = 85.9%
  double speedup_8core;
};

/// End-to-end training-throughput speedup of FPISA-A vs SwitchML (both on
/// the DPDK transport), per model, for 2- and 8-core configurations.
std::vector<SpeedupRow> training_speedups(const MeasuredRates& rates,
                                          const PipelineParams& p = {},
                                          const DpdkParams& d = {});

}  // namespace fpisa::host
